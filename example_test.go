package repro_test

import (
	"fmt"

	"repro"
)

// Run the paper's protocol on a dense random regular graph and check the
// Theorem 1 diagnostics. Runs are deterministic per seed.
func ExampleRunBestOfThree() {
	g := repro.RandomRegular(4096, 128, repro.NewRNG(1))
	report, err := repro.RunBestOfThree(g, 0.1, repro.Options{Seed: 2})
	if err != nil {
		panic(err)
	}
	fmt.Println("red won:      ", report.RedWon)
	fmt.Println("consensus:    ", report.Consensus)
	fmt.Println("dense enough: ", report.Precondition.DenseEnough)
	fmt.Println("few rounds:   ", report.Rounds <= report.PredictedRounds+5)
	// Output:
	// red won:       true
	// consensus:     true
	// dense enough:  true
	// few rounds:    true
}

// Check Theorem 1's hypotheses without running anything: the cycle fails
// the density gate, a dense regular graph passes it.
func ExampleCheckPrecondition() {
	dense := repro.RandomRegular(4096, 256, repro.NewRNG(3))
	sparse := repro.Cycle(4096)
	fmt.Println("dense graph satisfies Theorem 1:", repro.CheckPrecondition(dense, 0.1).Satisfied())
	fmt.Println("cycle satisfies Theorem 1:      ", repro.CheckPrecondition(sparse, 0.1).Satisfied())
	// Output:
	// dense graph satisfies Theorem 1: true
	// cycle satisfies Theorem 1:       false
}
