package repro_test

import (
	"context"
	"fmt"

	"repro"
)

// Describe a run declaratively and execute it with the v2 Runner. The
// same spec, serialised to JSON, runs identically through `bo3sim -spec`
// and `POST /v1/runs` — per-trial outcomes are byte-identical across all
// three entry points.
func ExampleNewRunner() {
	runner, err := repro.NewRunner(repro.RunSpec{
		Graph:  repro.GraphSpec{Family: "random-regular", N: 4096, D: 128, Seed: 1},
		Delta:  0.1,
		Trials: 4,
		Seed:   2,
	})
	if err != nil {
		panic(err)
	}
	report, err := runner.Run(context.Background())
	if err != nil {
		panic(err)
	}
	fmt.Println("red wins:     ", report.RedWins)
	fmt.Println("consensus:    ", report.ConsensusCount)
	fmt.Println("dense enough: ", report.Precondition.DenseEnough)
	fmt.Println("few rounds:   ", report.MaxRounds <= report.PredictedRounds+5)
	// Output:
	// red wins:      4
	// consensus:     4
	// dense enough:  true
	// few rounds:    true
}

// Consume trial outcomes as they complete instead of waiting for the
// full report: the stream delivers results in completion order, and every
// trial's outcome is a deterministic function of the spec alone.
func ExampleRunner_Stream() {
	runner, err := repro.NewRunner(repro.RunSpec{
		Graph:  repro.GraphSpec{Family: "complete-virtual", N: 1 << 14},
		Delta:  0.1,
		Trials: 8,
		Seed:   7,
	})
	if err != nil {
		panic(err)
	}
	stream, err := runner.Stream(context.Background())
	if err != nil {
		panic(err)
	}
	redWins := 0
	for res := range stream {
		if res.Err == nil && res.Report.RedWon {
			redWins++
		}
	}
	fmt.Println("red wins:", redWins)
	// Output:
	// red wins: 8
}

// Run the paper's protocol on a dense random regular graph and check the
// Theorem 1 diagnostics. Runs are deterministic per seed.
func ExampleRunBestOfThree() {
	g := repro.RandomRegular(4096, 128, repro.NewRNG(1))
	report, err := repro.RunBestOfThree(g, 0.1, repro.Options{Seed: 2})
	if err != nil {
		panic(err)
	}
	fmt.Println("red won:      ", report.RedWon)
	fmt.Println("consensus:    ", report.Consensus)
	fmt.Println("dense enough: ", report.Precondition.DenseEnough)
	fmt.Println("few rounds:   ", report.Rounds <= report.PredictedRounds+5)
	// Output:
	// red won:       true
	// consensus:     true
	// dense enough:  true
	// few rounds:    true
}

// Check Theorem 1's hypotheses without running anything: the cycle fails
// the density gate, a dense regular graph passes it.
func ExampleCheckPrecondition() {
	dense := repro.RandomRegular(4096, 256, repro.NewRNG(3))
	sparse := repro.Cycle(4096)
	fmt.Println("dense graph satisfies Theorem 1:", repro.CheckPrecondition(dense, 0.1).Satisfied())
	fmt.Println("cycle satisfies Theorem 1:      ", repro.CheckPrecondition(sparse, 0.1).Satisfied())
	// Output:
	// dense graph satisfies Theorem 1: true
	// cycle satisfies Theorem 1:       false
}
