// Command bo3exact computes exact quantities of the Best-of-k dynamic on
// the complete graph K_n by iterating the blue-count Markov chain: the red
// consensus probability and the mean absorption time, for a sweep of
// initial blue probabilities.
//
// Usage:
//
//	bo3exact -n 256 -k 3 -pblue 0.45
//	bo3exact -n 256 -sweep                # pBlue from 0.30 to 0.50
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/markov"
	"repro/internal/table"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bo3exact: ")

	var (
		n         = flag.Int("n", 256, "number of vertices (exact iteration is O(n^2) per active state)")
		k         = flag.Int("k", 3, "neighbours sampled per round (odd)")
		pblue     = flag.Float64("pblue", 0.45, "initial blue probability")
		sweep     = flag.Bool("sweep", false, "sweep pBlue over 0.30..0.50 instead of a single value")
		maxRounds = flag.Int("maxrounds", 10000, "absorption horizon")
	)
	flag.Parse()

	if *n > 4096 {
		log.Fatalf("n = %d too large for exact iteration (use the simulator)", *n)
	}
	chain := markov.New(*n, *k)

	ps := []float64{*pblue}
	if *sweep {
		ps = []float64{0.30, 0.35, 0.40, 0.43, 0.45, 0.47, 0.49, 0.50}
	}
	t := table.New(
		fmt.Sprintf("exact best-of-%d on K_%d (i.i.d. initial opinions)", *k, *n),
		"P(blue)", "red wins", "blue wins", "unabsorbed", "mean rounds")
	for _, p := range ps {
		res := chain.Absorb(chain.InitialDistribution(p), 1e-12, *maxRounds)
		t.AddRow(p, res.RedWins, res.BlueWins, res.Escaped, res.MeanRounds)
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
