// Command bo3serve runs the Best-of-Three engine as a long-running
// HTTP/JSON simulation service (see internal/serve and docs/API.md for
// the API).
//
// Usage:
//
//	bo3serve -addr :8080 -workers 8 -cache 32 -seed 1
//
// Jobs are accepted on POST /v1/runs, executed on a bounded worker pool
// with an LRU-cached graph pool, and polled on GET /v1/runs/{id}.
// Parameter grids are accepted on POST /v1/sweeps, expanded server-side
// into child runs (at most -max-grid cells, at most -sweep-concurrency in
// flight per sweep), and streamed back as NDJSON on
// GET /v1/sweeps/{id}/results. SIGINT or SIGTERM starts a graceful
// shutdown: the listener stops, in-flight jobs get -drain to finish, then
// the rest are cancelled.
//
// With -artifact-dir set, the server layers a disk artifact tier under
// its in-memory graph pool: a pool miss first looks for a preprocessed
// binary artifact of the topology (built offline with `bo3graph build`,
// or written through by any server sharing the directory) and loads it
// with one checksummed read instead of re-running the generator; fresh
// CSR builds are written through for the next process. The directory is
// multi-process safe (atomic rename-into-place, checksum-gated loads)
// and -artifact-max-bytes bounds it with least-recently-used eviction.
//
// With -store-dir set, the server keeps a persistent result store there:
// completed jobs are recorded under their content key and identical
// resubmissions are answered from disk without recomputing; sweeps
// journal their lifecycle, and a server restarted over the same directory
// resumes any sweep that was interrupted mid-flight, executing only its
// unfinished cells. The recorded history is queryable over GET
// /v1/results and auditable offline with cmd/bo3store. -store-max-bytes
// caps the directory's size (oldest records dropped first).
//
// With -worker-id set (which requires -store-dir), the store is opened in
// shared mode and the server joins a fleet: any number of bo3serve
// processes with distinct worker IDs may point at the same directory.
// Sweep cells are partitioned through the store's claim/lease protocol —
// no two workers execute the same cell, results are first-write-wins, and
// a worker that dies mid-cell blocks that cell for at most -lease-ttl
// before a peer takes its lease over. Sweep IDs are namespaced per worker
// so fleets never collide in the shared journal. Shared mode is
// incompatible with -store-max-bytes (pruning needs exclusive ownership).
//
// Live telemetry streams from the bounded-backpressure event bus on
// GET /v1/runs/{id}/events, /v1/sweeps/{id}/events, and /v1/events (SSE
// or NDJSON, negotiated by Accept). Each watcher owns a ring of
// -event-buffer frames; a watcher that falls behind loses oldest frames
// first — counted in the `dropped` field of the next frame it receives
// and in /v1/stats events_dropped — and the simulations publish without
// ever waiting on a subscriber.
//
// Observability: every subsystem counts into one metrics registry,
// exposed as a Prometheus text exposition on GET /metrics (the /v1/stats
// JSON reads the same instruments). Logs are structured (log/slog) —
// -log-format json for machine ingestion, -log-level debug to widen —
// and every job-scoped line carries worker_id, job_id/sweep_id, and the
// spec's content key. -slowlog logs any job whose engine stage exceeds
// the threshold with its full queue → graph → engine → persist timing
// breakdown. -pprof serves net/http/pprof on a second listener, kept off
// the public mux so profiling endpoints are never exposed by accident.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/artifact"
	"repro/internal/buildinfo"
	"repro/internal/metrics"
	"repro/internal/serve"
	"repro/internal/store"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		workers   = flag.Int("workers", 0, "concurrent jobs (0 = GOMAXPROCS)")
		queue     = flag.Int("queue", 256, "job backlog before submissions are rejected")
		cacheCap  = flag.Int("cache", 16, "graph-pool capacity in graphs")
		rootSeed  = flag.Uint64("seed", 1, "root seed for jobs that omit one")
		trialPar  = flag.Int("trial-workers", 0, "per-job trial parallelism (0 = GOMAXPROCS/workers)")
		retention = flag.Int("retention", 0, "finished jobs kept queryable (0 = 1024)")
		maxN      = flag.Int("maxn", 0, "largest admissible graph (0 = default limit)")
		maxTrials = flag.Int("maxtrials", 0, "largest admissible trial count (0 = default limit)")
		maxGrid   = flag.Int("max-grid", 0, "largest admissible sweep-grid expansion in cells (0 = default limit)")
		sweepConc = flag.Int("sweep-concurrency", 0, "in-flight child runs per sweep (0 = workers)")
		drain     = flag.Duration("drain", 30*time.Second, "graceful-shutdown budget before jobs are cancelled")
		artDir    = flag.String("artifact-dir", "", "graph artifact directory: graph-pool misses load preprocessed topologies (bo3graph build) from here and write fresh builds through (empty = no artifact tier)")
		artMax    = flag.Int64("artifact-max-bytes", 0, "artifact-directory size cap in bytes; least-recently-used artifacts evicted first (0 = unbounded)")
		storeDir  = flag.String("store-dir", "", "persistent result store directory (empty = no store)")
		storeMax  = flag.Int64("store-max-bytes", 0, "result-store size cap in bytes; oldest records dropped first (0 = unbounded)")
		workerID  = flag.String("worker-id", "", "fleet identity; opens -store-dir shared so several servers coordinate over it (empty = exclusive, single server)")
		leaseTTL  = flag.Duration("lease-ttl", 0, "cell-claim lease duration in fleet mode (0 = 1m)")
		eventBuf  = flag.Int("event-buffer", 0, "per-subscriber event ring on the /events streams; slower watchers drop oldest frames first (0 = 256)")
		logLevel  = flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
		logFormat = flag.String("log-format", "text", "log encoding: text or json")
		slowlog   = flag.Duration("slowlog", 0, "log any job whose engine stage exceeds this, with its full per-stage timing breakdown (0 = disabled)")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this separate address (empty = disabled)")
		version   = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("bo3serve", buildinfo.Short())
		return
	}

	logger, err := newLogger(*logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bo3serve:", err)
		os.Exit(1)
	}
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}
	if *workerID != "" && *storeDir == "" {
		fatal("-worker-id requires -store-dir: fleet coordination lives in the shared store")
	}

	reg := metrics.NewRegistry()

	limits := serve.DefaultLimits()
	if *maxN > 0 {
		limits.MaxN = *maxN
	}
	if *maxTrials > 0 {
		limits.MaxTrials = *maxTrials
	}
	if *maxGrid > 0 {
		limits.MaxSweepCells = *maxGrid
	}
	var artifacts *artifact.Dir
	if *artDir != "" {
		var err error
		artifacts, err = artifact.OpenDir(*artDir, *artMax)
		if err != nil {
			fatal("artifact directory open failed", "dir", *artDir, "err", err)
		}
		logger.Info("artifact directory open", "dir", *artDir, "artifacts", artifacts.Len())
	} else if *artMax != 0 {
		fatal("-artifact-max-bytes requires -artifact-dir")
	}
	var resultStore *store.Store
	if *storeDir != "" {
		var err error
		resultStore, err = store.Open(*storeDir, store.Options{
			MaxBytes: *storeMax,
			Shared:   *workerID != "",
			Metrics:  store.NewMetrics(reg),
			Logger:   logger,
		})
		if err != nil {
			fatal("result store open failed", "dir", *storeDir, "err", err)
		}
		st := resultStore.Stats()
		logger.Info("result store open", "dir", *storeDir,
			"results", st.Results, "sweeps", st.Sweeps, "bytes", st.Bytes)
		if *workerID != "" {
			logger.Info("fleet mode", "worker_id", *workerID, "lease_ttl", max(*leaseTTL, time.Minute))
		}
	}
	mgr := serve.NewManager(serve.Config{
		Workers:          *workers,
		QueueDepth:       *queue,
		CacheCapacity:    *cacheCap,
		RootSeed:         *rootSeed,
		TrialParallelism: *trialPar,
		Retention:        *retention,
		SweepConcurrency: *sweepConc,
		Limits:           limits,
		Artifacts:        artifacts,
		Store:            resultStore,
		WorkerID:         *workerID,
		LeaseTTL:         *leaseTTL,
		EventBuffer:      *eventBuf,
		Metrics:          reg,
		Logger:           logger,
		SlowThreshold:    *slowlog,
	})
	if resultStore != nil {
		// Finish whatever a previous generation left mid-flight before
		// the listener opens: recorded cells answer from the store, the
		// rest execute.
		resumed, err := mgr.ResumeSweeps()
		if err != nil {
			logger.Warn("sweep resume failed", "err", err)
		}
		if resumed > 0 {
			logger.Info("resumed interrupted sweeps", "sweeps", resumed)
		}
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           serve.NewServer(mgr),
		ReadHeaderTimeout: 10 * time.Second,
	}

	if *pprofAddr != "" {
		// An explicit mux on its own listener: the profiling surface never
		// rides the public API mux, and the DefaultServeMux registrations
		// the pprof package performs at init are ignored.
		pm := http.NewServeMux()
		pm.HandleFunc("/debug/pprof/", pprof.Index)
		pm.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pm.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pm.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pm.HandleFunc("/debug/pprof/trace", pprof.Trace)
		psrv := &http.Server{Addr: *pprofAddr, Handler: pm, ReadHeaderTimeout: 10 * time.Second}
		go func() {
			if err := psrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("pprof listener failed", "addr", *pprofAddr, "err", err)
			}
		}()
		logger.Info("pprof listening", "addr", *pprofAddr)
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	logger.Info("listening", "addr", *addr, "version", buildinfo.Get().Version)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		logger.Info("shutdown signal received", "signal", sig.String(), "drain", *drain)
	case err := <-errc:
		fatal("listener failed", "err", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		logger.Warn("http shutdown incomplete", "err", err)
	}
	if err := mgr.Close(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Warn("manager shutdown incomplete", "err", err)
	}
	if resultStore != nil {
		// Closed strictly after the manager: the final journal and result
		// records are written during Close's drain.
		if err := resultStore.Close(); err != nil {
			logger.Warn("store shutdown failed", "err", err)
		}
	}
	logger.Info("bye")
}

// newLogger builds the process logger from the -log-level and -log-format
// flags. Logs go to stderr so NDJSON piped from a future stdout mode
// would stay clean.
func newLogger(level, format string) (*slog.Logger, error) {
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q: want debug, info, warn, or error", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("bad -log-format %q: want text or json", format)
	}
}
