// Command bo3serve runs the Best-of-Three engine as a long-running
// HTTP/JSON simulation service (see internal/serve and docs/API.md for
// the API).
//
// Usage:
//
//	bo3serve -addr :8080 -workers 8 -cache 32 -seed 1
//
// Jobs are accepted on POST /v1/runs, executed on a bounded worker pool
// with an LRU-cached graph pool, and polled on GET /v1/runs/{id}.
// Parameter grids are accepted on POST /v1/sweeps, expanded server-side
// into child runs (at most -max-grid cells, at most -sweep-concurrency in
// flight per sweep), and streamed back as NDJSON on
// GET /v1/sweeps/{id}/results. SIGINT or SIGTERM starts a graceful
// shutdown: the listener stops, in-flight jobs get -drain to finish, then
// the rest are cancelled.
//
// With -artifact-dir set, the server layers a disk artifact tier under
// its in-memory graph pool: a pool miss first looks for a preprocessed
// binary artifact of the topology (built offline with `bo3graph build`,
// or written through by any server sharing the directory) and loads it
// with one checksummed read instead of re-running the generator; fresh
// CSR builds are written through for the next process. The directory is
// multi-process safe (atomic rename-into-place, checksum-gated loads)
// and -artifact-max-bytes bounds it with least-recently-used eviction.
//
// With -store-dir set, the server keeps a persistent result store there:
// completed jobs are recorded under their content key and identical
// resubmissions are answered from disk without recomputing; sweeps
// journal their lifecycle, and a server restarted over the same directory
// resumes any sweep that was interrupted mid-flight, executing only its
// unfinished cells. The recorded history is queryable over GET
// /v1/results and auditable offline with cmd/bo3store. -store-max-bytes
// caps the directory's size (oldest records dropped first).
//
// With -worker-id set (which requires -store-dir), the store is opened in
// shared mode and the server joins a fleet: any number of bo3serve
// processes with distinct worker IDs may point at the same directory.
// Sweep cells are partitioned through the store's claim/lease protocol —
// no two workers execute the same cell, results are first-write-wins, and
// a worker that dies mid-cell blocks that cell for at most -lease-ttl
// before a peer takes its lease over. Sweep IDs are namespaced per worker
// so fleets never collide in the shared journal. Shared mode is
// incompatible with -store-max-bytes (pruning needs exclusive ownership).
//
// Live telemetry streams from the bounded-backpressure event bus on
// GET /v1/runs/{id}/events, /v1/sweeps/{id}/events, and /v1/events (SSE
// or NDJSON, negotiated by Accept). Each watcher owns a ring of
// -event-buffer frames; a watcher that falls behind loses oldest frames
// first — counted in the `dropped` field of the next frame it receives
// and in /v1/stats events_dropped — and the simulations publish without
// ever waiting on a subscriber.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/artifact"
	"repro/internal/serve"
	"repro/internal/store"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bo3serve: ")

	var (
		addr      = flag.String("addr", ":8080", "listen address")
		workers   = flag.Int("workers", 0, "concurrent jobs (0 = GOMAXPROCS)")
		queue     = flag.Int("queue", 256, "job backlog before submissions are rejected")
		cacheCap  = flag.Int("cache", 16, "graph-pool capacity in graphs")
		rootSeed  = flag.Uint64("seed", 1, "root seed for jobs that omit one")
		trialPar  = flag.Int("trial-workers", 0, "per-job trial parallelism (0 = GOMAXPROCS/workers)")
		retention = flag.Int("retention", 0, "finished jobs kept queryable (0 = 1024)")
		maxN      = flag.Int("maxn", 0, "largest admissible graph (0 = default limit)")
		maxTrials = flag.Int("maxtrials", 0, "largest admissible trial count (0 = default limit)")
		maxGrid   = flag.Int("max-grid", 0, "largest admissible sweep-grid expansion in cells (0 = default limit)")
		sweepConc = flag.Int("sweep-concurrency", 0, "in-flight child runs per sweep (0 = workers)")
		drain     = flag.Duration("drain", 30*time.Second, "graceful-shutdown budget before jobs are cancelled")
		artDir    = flag.String("artifact-dir", "", "graph artifact directory: graph-pool misses load preprocessed topologies (bo3graph build) from here and write fresh builds through (empty = no artifact tier)")
		artMax    = flag.Int64("artifact-max-bytes", 0, "artifact-directory size cap in bytes; least-recently-used artifacts evicted first (0 = unbounded)")
		storeDir  = flag.String("store-dir", "", "persistent result store directory (empty = no store)")
		storeMax  = flag.Int64("store-max-bytes", 0, "result-store size cap in bytes; oldest records dropped first (0 = unbounded)")
		workerID  = flag.String("worker-id", "", "fleet identity; opens -store-dir shared so several servers coordinate over it (empty = exclusive, single server)")
		leaseTTL  = flag.Duration("lease-ttl", 0, "cell-claim lease duration in fleet mode (0 = 1m)")
		eventBuf  = flag.Int("event-buffer", 0, "per-subscriber event ring on the /events streams; slower watchers drop oldest frames first (0 = 256)")
	)
	flag.Parse()
	if *workerID != "" && *storeDir == "" {
		log.Fatal("-worker-id requires -store-dir: fleet coordination lives in the shared store")
	}

	limits := serve.DefaultLimits()
	if *maxN > 0 {
		limits.MaxN = *maxN
	}
	if *maxTrials > 0 {
		limits.MaxTrials = *maxTrials
	}
	if *maxGrid > 0 {
		limits.MaxSweepCells = *maxGrid
	}
	var artifacts *artifact.Dir
	if *artDir != "" {
		var err error
		artifacts, err = artifact.OpenDir(*artDir, *artMax)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("artifact directory %s: %d artifacts", *artDir, artifacts.Len())
	} else if *artMax != 0 {
		log.Fatal("-artifact-max-bytes requires -artifact-dir")
	}
	var resultStore *store.Store
	if *storeDir != "" {
		var err error
		resultStore, err = store.Open(*storeDir, store.Options{MaxBytes: *storeMax, Shared: *workerID != ""})
		if err != nil {
			log.Fatal(err)
		}
		st := resultStore.Stats()
		log.Printf("result store %s: %d results, %d sweeps, %d bytes", *storeDir, st.Results, st.Sweeps, st.Bytes)
		if *workerID != "" {
			log.Printf("fleet mode: worker %q, shared store, lease TTL %v", *workerID, max(*leaseTTL, time.Minute))
		}
	}
	mgr := serve.NewManager(serve.Config{
		Workers:          *workers,
		QueueDepth:       *queue,
		CacheCapacity:    *cacheCap,
		RootSeed:         *rootSeed,
		TrialParallelism: *trialPar,
		Retention:        *retention,
		SweepConcurrency: *sweepConc,
		Limits:           limits,
		Artifacts:        artifacts,
		Store:            resultStore,
		WorkerID:         *workerID,
		LeaseTTL:         *leaseTTL,
		EventBuffer:      *eventBuf,
	})
	if resultStore != nil {
		// Finish whatever a previous generation left mid-flight before
		// the listener opens: recorded cells answer from the store, the
		// rest execute.
		resumed, err := mgr.ResumeSweeps()
		if err != nil {
			log.Printf("sweep resume: %v", err)
		}
		if resumed > 0 {
			log.Printf("resumed %d interrupted sweep(s)", resumed)
		}
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           serve.NewServer(mgr),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("listening on %s", *addr)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("received %v, draining for up to %v", sig, *drain)
	case err := <-errc:
		log.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := mgr.Close(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("manager shutdown: %v", err)
	}
	if resultStore != nil {
		// Closed strictly after the manager: the final journal and result
		// records are written during Close's drain.
		if err := resultStore.Close(); err != nil {
			log.Printf("store shutdown: %v", err)
		}
	}
	log.Print("bye")
}
