// Command bo3store inspects and audits a bo3serve persistent result
// store (internal/store) — the store directory a server populates under
// -store-dir. The inspection subcommands (ls, get, verify) open the
// directory read-only and are safe to run against a live server; compact
// rewrites the log and takes the writer lock, so it fails fast unless
// the server is stopped.
//
// Usage:
//
//	bo3store -dir DIR ls [-family f] [-n n] [-limit k] [-json]
//	bo3store -dir DIR get <key>
//	bo3store -dir DIR verify [<key> ...]
//	bo3store -dir DIR claims [-json]
//	bo3store -dir DIR compact
//	bo3store -list
//
// `ls` pages through the recorded results (newest first) with the same
// family/n filters as GET /v1/results. `get` prints one full record by
// content key. `verify` is the audit: it re-executes each record's
// canonical spec through the shared library Runner — the exact code path
// a bo3serve worker runs — and diffs the fresh result against the stored
// body byte-for-byte, exiting non-zero on any mismatch. `claims` lists
// the live cell leases of a fleet of workers sharing the directory —
// which worker holds which content key, under what fence, and whether
// the lease has expired. `compact` rewrites the log keeping only live
// records. `-list` prints the subcommand names (the CI docs check
// consumes it).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/serve"
	"repro/internal/store"
	"repro/spec"
)

// subcommands is the stable registry; docs/API.md lists exactly these
// (checked in CI via `bo3store -list`).
var subcommands = []struct{ name, summary string }{
	{"ls", "list recorded results, newest first, with family/n filters"},
	{"get", "print one stored record by content key"},
	{"verify", "re-execute records and diff against the stored bytes"},
	{"claims", "list live fleet cell leases: key, worker, fence, deadline"},
	{"compact", "rewrite the log keeping only live records"},
}

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bo3store", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("dir", "", "store directory (the server's -store-dir)")
	list := fs.Bool("list", false, "print subcommand names, one per line, and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, sc := range subcommands {
			fmt.Fprintln(stdout, sc.name)
		}
		return 0
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "bo3store: a subcommand is required:")
		for _, sc := range subcommands {
			fmt.Fprintf(stderr, "  %-8s %s\n", sc.name, sc.summary)
		}
		return 2
	}
	if *dir == "" {
		fmt.Fprintln(stderr, "bo3store: -dir is required")
		return 2
	}
	cmd, rest := fs.Arg(0), fs.Args()[1:]
	// Inspection subcommands open read-only — no lock, no mutation — so
	// they are safe against a live server on the same directory. compact
	// rewrites segments and takes the writer lock, failing fast if a
	// server holds it.
	st, err := store.Open(*dir, store.Options{ReadOnly: cmd != "compact"})
	if err != nil {
		fmt.Fprintf(stderr, "bo3store: %v\n", err)
		return 1
	}
	defer st.Close()
	switch cmd {
	case "ls":
		return cmdLs(st, rest, stdout, stderr)
	case "get":
		return cmdGet(st, rest, stdout, stderr)
	case "verify":
		return cmdVerify(st, rest, stdout, stderr)
	case "claims":
		return cmdClaims(st, rest, stdout, stderr)
	case "compact":
		return cmdCompact(st, rest, stdout, stderr)
	default:
		fmt.Fprintf(stderr, "bo3store: unknown subcommand %q\n", cmd)
		return 2
	}
}

// record pairs a result's index entry with its decoded spec.
type record struct {
	info store.ResultInfo
	spec spec.RunSpec
}

// records lists the store's results newest first, skipping undecodable
// specs (reported on stderr, counted in the return).
func records(st *store.Store, stderr io.Writer) ([]record, int) {
	infos := st.Results()
	out := make([]record, 0, len(infos))
	bad := 0
	for i := len(infos) - 1; i >= 0; i-- {
		var rs spec.RunSpec
		if err := json.Unmarshal(infos[i].Spec, &rs); err != nil {
			fmt.Fprintf(stderr, "bo3store: record %s: undecodable spec: %v\n", infos[i].Key, err)
			bad++
			continue
		}
		out = append(out, record{info: infos[i], spec: rs})
	}
	return out, bad
}

func cmdLs(st *store.Store, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bo3store ls", flag.ContinueOnError)
	fs.SetOutput(stderr)
	family := fs.String("family", "", "filter: graph family")
	n := fs.Int("n", 0, "filter: vertex count")
	limit := fs.Int("limit", 0, "print at most this many records (0 = all)")
	asJSON := fs.Bool("json", false, "one JSON object per line instead of the table")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	recs, bad := records(st, stderr)
	printed := 0
	for _, r := range recs {
		if *family != "" && r.spec.Graph.Family != *family {
			continue
		}
		if *n > 0 && r.spec.Graph.N != *n {
			continue
		}
		if *limit > 0 && printed >= *limit {
			break
		}
		printed++
		if *asJSON {
			line, _ := json.Marshal(map[string]any{"key": r.info.Key, "seq": r.info.Seq, "spec": r.spec})
			fmt.Fprintln(stdout, string(line))
			continue
		}
		if printed == 1 {
			fmt.Fprintf(stdout, "%-64s  %-16s %9s %7s %7s  %s\n", "KEY", "FAMILY", "N", "DELTA", "TRIALS", "SEED")
		}
		fmt.Fprintf(stdout, "%-64s  %-16s %9d %7g %7d  %d\n",
			r.info.Key, r.spec.Graph.Family, r.spec.Graph.N, r.spec.Delta, r.spec.Trials, r.spec.Seed)
	}
	if printed == 0 {
		fmt.Fprintln(stdout, "no matching records")
	}
	if bad > 0 {
		return 1
	}
	return 0
}

func cmdGet(st *store.Store, args []string, stdout, stderr io.Writer) int {
	if len(args) != 1 {
		fmt.Fprintln(stderr, "bo3store get: exactly one content key required")
		return 2
	}
	rec, ok, err := st.GetResult(args[0])
	if err != nil {
		fmt.Fprintf(stderr, "bo3store: %v\n", err)
		return 1
	}
	if !ok {
		fmt.Fprintf(stderr, "bo3store: no record with key %s\n", args[0])
		return 1
	}
	out, err := json.MarshalIndent(map[string]json.RawMessage{
		"key":    json.RawMessage(fmt.Sprintf("%q", rec.Key)),
		"spec":   rec.Spec,
		"result": rec.Body,
	}, "", "  ")
	if err != nil {
		fmt.Fprintf(stderr, "bo3store: %v\n", err)
		return 1
	}
	fmt.Fprintln(stdout, string(out))
	return 0
}

// cmdVerify re-executes each record's canonical spec and compares the
// deterministic result projection against the stored body byte-for-byte.
// Any divergence — a mismatched content key, a failed re-execution, or a
// single differing byte — fails the audit.
func cmdVerify(st *store.Store, args []string, stdout, stderr io.Writer) int {
	var targets []record
	if len(args) > 0 {
		for _, key := range args {
			rec, ok, err := st.GetResult(key)
			if err != nil || !ok {
				fmt.Fprintf(stderr, "bo3store: no record with key %s (err %v)\n", key, err)
				return 1
			}
			var rs spec.RunSpec
			if err := json.Unmarshal(rec.Spec, &rs); err != nil {
				fmt.Fprintf(stderr, "bo3store: record %s: undecodable spec: %v\n", key, err)
				return 1
			}
			targets = append(targets, record{info: store.ResultInfo{Key: key, Spec: rec.Spec}, spec: rs})
		}
	} else {
		var bad int
		targets, bad = records(st, stderr)
		if bad > 0 {
			return 1
		}
	}
	failed := 0
	for _, r := range targets {
		if err := verifyOne(st, r); err != nil {
			fmt.Fprintf(stdout, "FAIL %s: %v\n", r.info.Key, err)
			failed++
			continue
		}
		fmt.Fprintf(stdout, "ok   %s %s n=%d trials=%d\n", r.info.Key, r.spec.Graph.Family, r.spec.Graph.N, r.spec.Trials)
	}
	fmt.Fprintf(stdout, "verified %d records, %d failed\n", len(targets), failed)
	if failed > 0 {
		return 1
	}
	return 0
}

func verifyOne(st *store.Store, r record) error {
	if got := r.spec.ContentKey(); got != r.info.Key {
		return fmt.Errorf("stored under key %s but the spec's content key is %s", r.info.Key, got)
	}
	rec, ok, err := st.GetResult(r.info.Key)
	if err != nil || !ok {
		return fmt.Errorf("read back: ok=%v err=%v", ok, err)
	}
	res, err := serve.Execute(context.Background(), r.spec)
	if err != nil {
		return fmt.Errorf("re-execute: %w", err)
	}
	fresh, err := json.Marshal(res)
	if err != nil {
		return err
	}
	if !bytes.Equal(fresh, rec.Body) {
		return fmt.Errorf("re-executed result differs from the stored bytes:\nstored %s\nfresh  %s", rec.Body, fresh)
	}
	return nil
}

// cmdClaims lists the live cell leases — the fleet's in-flight work. A
// claim names the content key one worker is executing; an expired claim
// marks a worker that died mid-cell (a peer will take the lease over the
// next time it schedules that cell).
func cmdClaims(st *store.Store, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bo3store claims", flag.ContinueOnError)
	fs.SetOutput(stderr)
	asJSON := fs.Bool("json", false, "one JSON object per line instead of the table")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	claims := st.Claims()
	if len(claims) == 0 {
		fmt.Fprintln(stdout, "no live claims")
		return 0
	}
	for i, c := range claims {
		if *asJSON {
			line, _ := json.Marshal(map[string]any{
				"key": c.Key, "worker": c.Worker, "fence": c.Fence,
				"deadline": c.Deadline, "expired": c.Expired,
			})
			fmt.Fprintln(stdout, string(line))
			continue
		}
		if i == 0 {
			fmt.Fprintf(stdout, "%-64s  %-12s %7s  %-29s %s\n", "KEY", "WORKER", "FENCE", "DEADLINE", "STATE")
		}
		state := "held"
		if c.Expired {
			state = "expired"
		}
		fmt.Fprintf(stdout, "%-64s  %-12s %7d  %-29s %s\n",
			c.Key, c.Worker, c.Fence, c.Deadline.Format("2006-01-02T15:04:05.000Z07:00"), state)
	}
	return 0
}

func cmdCompact(st *store.Store, args []string, stdout, stderr io.Writer) int {
	if len(args) != 0 {
		fmt.Fprintln(stderr, "bo3store compact: no arguments")
		return 2
	}
	before := st.Stats()
	if err := st.Compact(); err != nil {
		fmt.Fprintf(stderr, "bo3store: %v\n", err)
		return 1
	}
	after := st.Stats()
	fmt.Fprintf(stdout, "compacted: %d -> %d bytes (%d segments -> %d), %d results, %d sweeps\n",
		before.Bytes, after.Bytes, before.Segments, after.Segments, after.Results, after.Sweeps)
	return 0
}
