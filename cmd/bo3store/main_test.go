package main

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/serve"
	"repro/internal/store"
)

// populate runs a small workload through a store-backed manager, exactly
// how a server populates a -store-dir.
func populate(t *testing.T, dir string) {
	t.Helper()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	m := serve.NewManager(serve.Config{Workers: 2, Store: st})
	defer m.Close(context.Background())
	reqs := []serve.RunRequest{
		{Graph: serve.GraphSpec{Family: "complete-virtual", N: 200}, Delta: 0.2, Trials: 3, Seed: 7},
		{Graph: serve.GraphSpec{Family: "cycle", N: 64}, Delta: 0.1, Trials: 2, MaxRounds: 32, Seed: 8},
	}
	for _, req := range reqs {
		v, err := m.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		deadlineWait(t, m, v.ID)
	}
}

func deadlineWait(t *testing.T, m *serve.Manager, id string) {
	t.Helper()
	for {
		v, ok := m.Get(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		switch v.State {
		case serve.StateDone:
			return
		case serve.StateFailed, serve.StateCancelled:
			t.Fatalf("job %s: %s (%s)", id, v.State, v.Error)
		}
	}
}

func runCLI(t *testing.T, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code = run(args, &out, &errBuf)
	return out.String(), errBuf.String(), code
}

func TestListFlagPrintsSubcommands(t *testing.T) {
	out, _, code := runCLI(t, "-list")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	want := []string{"ls", "get", "verify", "claims", "compact"}
	got := strings.Fields(out)
	if len(got) != len(want) {
		t.Fatalf("-list = %q, want %v", out, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("-list[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestLsGetVerifyCompact(t *testing.T) {
	dir := t.TempDir()
	populate(t, dir)

	out, stderr, code := runCLI(t, "-dir", dir, "ls")
	if code != 0 {
		t.Fatalf("ls: exit %d, stderr %s", code, stderr)
	}
	if !strings.Contains(out, "complete-virtual") || !strings.Contains(out, "cycle") {
		t.Fatalf("ls output missing records:\n%s", out)
	}

	out, _, code = runCLI(t, "-dir", dir, "ls", "-family", "cycle", "-json")
	if code != 0 || strings.Contains(out, "complete-virtual") {
		t.Fatalf("filtered ls: exit %d\n%s", code, out)
	}
	var meta struct {
		Key  string `json:"key"`
		Spec struct {
			Seed uint64 `json:"seed"`
		} `json:"spec"`
	}
	if err := json.Unmarshal([]byte(strings.SplitN(out, "\n", 2)[0]), &meta); err != nil {
		t.Fatalf("ls -json line: %v\n%s", err, out)
	}
	if meta.Spec.Seed != 8 {
		t.Errorf("cycle record seed = %d, want 8", meta.Spec.Seed)
	}

	out, stderr, code = runCLI(t, "-dir", dir, "get", meta.Key)
	if code != 0 || !strings.Contains(out, `"result"`) || !strings.Contains(out, meta.Key) {
		t.Fatalf("get: exit %d, stderr %s\n%s", code, stderr, out)
	}
	if _, _, code = runCLI(t, "-dir", dir, "get", "nope"); code == 0 {
		t.Error("get with an unknown key succeeded")
	}

	// The audit: every record re-executes to its stored bytes.
	out, stderr, code = runCLI(t, "-dir", dir, "verify")
	if code != 0 {
		t.Fatalf("verify: exit %d, stderr %s\n%s", code, stderr, out)
	}
	if !strings.Contains(out, "verified 2 records, 0 failed") {
		t.Fatalf("verify summary:\n%s", out)
	}
	// Single-key form.
	if out, _, code = runCLI(t, "-dir", dir, "verify", meta.Key); code != 0 || !strings.Contains(out, "verified 1 records, 0 failed") {
		t.Fatalf("verify <key>: exit %d\n%s", code, out)
	}

	// No fleet is running against this directory, so the lease table is
	// empty — but the subcommand itself must work read-only.
	if out, stderr, code = runCLI(t, "-dir", dir, "claims"); code != 0 || !strings.Contains(out, "no live claims") {
		t.Fatalf("claims: exit %d, stderr %s\n%s", code, stderr, out)
	}

	if out, stderr, code = runCLI(t, "-dir", dir, "compact"); code != 0 {
		t.Fatalf("compact: exit %d, stderr %s\n%s", code, stderr, out)
	}
	// Records survive compaction and still verify.
	if out, _, code = runCLI(t, "-dir", dir, "verify"); code != 0 || !strings.Contains(out, "0 failed") {
		t.Fatalf("verify after compact: exit %d\n%s", code, out)
	}
}

// TestVerifyCatchesTampering: a record whose body was altered on disk
// must fail the audit — this is the property that makes stored results
// trustworthy.
func TestVerifyCatchesTampering(t *testing.T) {
	dir := t.TempDir()
	populate(t, dir)

	// Tamper through the store API surface: rewrite a record under the
	// same key in a fresh directory... not possible by design (first
	// write wins), so instead corrupt the decoded-and-reexecuted path by
	// storing a body produced under a different seed.
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	infos := st.Results()
	if len(infos) == 0 {
		t.Fatal("no records")
	}
	// Forge a record: valid checksum, plausible spec, wrong body.
	var forged serve.RunRequest
	if err := json.Unmarshal(infos[0].Spec, &forged); err != nil {
		t.Fatal(err)
	}
	forged.Seed = 9999 // a spec that was never executed
	forgedJSON, _ := json.Marshal(forged)
	if _, err := st.PutResult(forged.ContentKey(), forgedJSON, []byte(`{"trials":1,"red_wins":1}`)); err != nil {
		t.Fatal(err)
	}
	st.Close()

	out, _, code := runCLI(t, "-dir", dir, "verify")
	if code == 0 {
		t.Fatalf("verify accepted a forged record:\n%s", out)
	}
	if !strings.Contains(out, "FAIL") || !strings.Contains(out, "1 failed") {
		t.Fatalf("verify output:\n%s", out)
	}
}

func TestUsageErrors(t *testing.T) {
	if _, _, code := runCLI(t); code != 2 {
		t.Errorf("no args: exit %d, want 2", code)
	}
	if _, _, code := runCLI(t, "ls"); code != 2 {
		t.Errorf("missing -dir: exit %d, want 2", code)
	}
	if _, _, code := runCLI(t, "-dir", t.TempDir(), "frobnicate"); code != 2 {
		t.Errorf("unknown subcommand: exit %d, want 2", code)
	}
}
