// Command bo3sim runs a single Best-of-k voting simulation and prints the
// round-by-round trajectory together with the Theorem 1 diagnostics.
//
// Usage:
//
//	bo3sim -graph regular -n 16384 -alpha 0.6 -delta 0.05 -k 3 -seed 1
//
// Graph families: regular (random d-regular with d = n^alpha), gnp
// (Erdős–Rényi with p = n^(alpha-1)), complete (virtual K_n), cycle,
// torus, hypercube.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"os"

	"repro/internal/core"
	"repro/internal/dynamics"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bo3sim: ")

	var (
		family    = flag.String("graph", "regular", "graph family: regular|gnp|complete|cycle|torus|hypercube")
		n         = flag.Int("n", 1<<14, "number of vertices")
		alpha     = flag.Float64("alpha", 0.6, "density exponent: min degree ~ n^alpha (regular/gnp)")
		delta     = flag.Float64("delta", 0.05, "initial imbalance: P(blue) = 1/2 - delta")
		k         = flag.Int("k", 3, "neighbours sampled per round (1 = voter model)")
		tie       = flag.String("tie", "keep", "tie rule for even k: keep|random")
		seed      = flag.Uint64("seed", 1, "RNG seed (runs are deterministic per seed)")
		maxRounds = flag.Int("maxrounds", 0, "round budget (0 = auto from prediction)")
		quiet     = flag.Bool("quiet", false, "suppress the per-round trajectory")
		traceCSV  = flag.String("trace", "", "write the trajectory to this CSV file")
		traceJSON = flag.String("tracejson", "", "write the full run record to this JSON file")
	)
	flag.Parse()

	g, err := buildGraph(*family, *n, *alpha, *seed)
	if err != nil {
		log.Fatal(err)
	}

	rule := dynamics.Rule{K: *k}
	switch *tie {
	case "keep":
		rule.Tie = dynamics.TieKeep
	case "random":
		rule.Tie = dynamics.TieRandom
	default:
		log.Fatalf("unknown tie rule %q", *tie)
	}

	rep, err := core.RunBestOfThree(g, *delta, core.Options{
		Seed:      *seed,
		MaxRounds: *maxRounds,
		Rule:      rule,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("graph       %s\n", g.Name())
	fmt.Printf("protocol    %s\n", rule.Name())
	fmt.Printf("delta       %.4f\n", *delta)
	fmt.Printf("theorem 1   %s\n", rep.Precondition)
	if !rep.Precondition.Satisfied() {
		fmt.Println("note        instance is outside Theorem 1's hypotheses; behaviour is not guaranteed")
	}
	if *delta < rep.Precondition.NoiseFloor {
		fmt.Printf("note        delta below the finite-size noise floor %.4f; the sampled majority may be blue\n",
			rep.Precondition.NoiseFloor)
	}
	if !*quiet {
		fmt.Println("round  blue-count  blue-fraction")
		for t, bc := range rep.BlueTrajectory {
			fmt.Printf("%5d  %10d  %.6f\n", t, bc, float64(bc)/math.Max(1, float64(g.N())))
		}
	}
	fmt.Printf("result      consensus=%v redWon=%v rounds=%d predicted=%d\n",
		rep.Consensus, rep.RedWon, rep.Rounds, rep.PredictedRounds)

	if *traceCSV != "" || *traceJSON != "" {
		run := &trace.Run{
			Graph:      g.Name(),
			Protocol:   rule.Name(),
			N:          g.N(),
			Delta:      *delta,
			Seed:       *seed,
			Consensus:  rep.Consensus,
			RedWon:     rep.RedWon,
			Rounds:     rep.Rounds,
			BlueCounts: rep.BlueTrajectory,
		}
		if *traceCSV != "" {
			if err := writeFile(*traceCSV, run.WriteCSV); err != nil {
				log.Fatal(err)
			}
		}
		if *traceJSON != "" {
			if err := writeFile(*traceJSON, run.WriteJSON); err != nil {
				log.Fatal(err)
			}
		}
	}
	if !rep.Consensus {
		os.Exit(2)
	}
}

// writeFile creates path and streams write into it, reporting close errors.
func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func buildGraph(family string, n int, alpha float64, seed uint64) (core.Topology, error) {
	src := rng.New(seed ^ 0x9e3779b97f4a7c15)
	switch family {
	case "regular":
		d := int(math.Ceil(math.Pow(float64(n), alpha)))
		if d >= n {
			return graph.NewKn(n), nil
		}
		if (n*d)%2 != 0 {
			d++
		}
		return graph.RandomRegular(n, d, src), nil
	case "gnp":
		p := math.Pow(float64(n), alpha-1)
		g := graph.Gnp(n, p, src)
		if g.MinDegree() == 0 {
			return nil, fmt.Errorf("sampled G(n,p) has an isolated vertex; raise -alpha")
		}
		return g, nil
	case "complete":
		return graph.NewKn(n), nil
	case "cycle":
		return graph.Cycle(n), nil
	case "torus":
		side := int(math.Round(math.Sqrt(float64(n))))
		if side < 3 {
			side = 3
		}
		return graph.Torus2D(side, side), nil
	case "hypercube":
		dim := int(math.Round(math.Log2(float64(n))))
		if dim < 2 {
			dim = 2
		}
		return graph.Hypercube(dim), nil
	default:
		return nil, fmt.Errorf("unknown graph family %q", family)
	}
}
