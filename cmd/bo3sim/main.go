// Command bo3sim runs Best-of-k voting simulations and prints the
// round-by-round trajectory together with the Theorem 1 diagnostics.
//
// Usage:
//
//	bo3sim -graph regular -n 16384 -alpha 0.6 -delta 0.05 -k 3 -seed 1
//	bo3sim -graph sbm -n 16384 -pin 0.02 -pout 0.005 -trials 8
//	bo3sim -spec run.json -json
//
// The flags bind to the declarative spec layer (package spec), so every
// family in the registry — regular (alias for random-regular with
// d = n^alpha), gnp, dense, complete (materialised K_n),
// complete-virtual (O(1) K_n), cycle, torus, hypercube, sbm — is
// available here, in the library Runner, and in the bo3serve HTTP API with
// identical semantics: the same spec and seed produce byte-identical
// per-trial outcomes through any of the three. With -spec the run
// specification is read as JSON (the same shape POST /v1/runs accepts)
// instead of being assembled from flags.
package main

import (
	"os"

	"repro/internal/cli"
)

func main() {
	os.Exit(cli.SimMain(os.Args[1:], os.Stdout, os.Stderr))
}
