// Command bo3graph is the offline graph preprocessor: it runs a graph
// family's generator once, ahead of serving, and serializes the CSR
// topology to a versioned, checksummed binary artifact (internal/
// artifact) that `bo3serve -artifact-dir` loads near-instantly instead
// of re-generating per process.
//
// Usage:
//
//	bo3graph build -graph FAMILY [flags] (-o FILE | -dir DIR)
//	bo3graph build -spec JSON (-o FILE | -dir DIR)
//	bo3graph verify FILE...
//	bo3graph info FILE...
//	bo3graph -list
//
// `build` resolves the topology exactly like bo3sim/bo3sweep — the same
// flag binder, alias table, and registry validation — or takes a raw
// GraphSpec as -spec JSON, builds it, and writes the artifact. -o names
// the output file explicitly; -dir writes into an artifact directory
// under the spec key's content address, the layout bo3serve reads
// (atomic rename, safe against a live fleet). `verify` is the audit:
// every checksum, the full CSR invariant set (sortedness, symmetry, no
// parallel edges), and a canonical re-encode must all pass. `info`
// prints the header of each file without loading the arrays. `-list`
// prints the subcommand names (the CI docs check consumes it).
package main

import (
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/artifact"
	"repro/internal/cli"
	"repro/spec"
)

// subcommands is the stable registry; docs/API.md lists exactly these
// (checked in CI via `bo3graph -list`).
var subcommands = []struct{ name, summary string }{
	{"build", "generate a topology and write its binary artifact"},
	{"verify", "audit artifact files: checksums, CSR invariants, canonical encoding"},
	{"info", "print artifact headers without loading the arrays"},
}

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bo3graph", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "print subcommand names, one per line, and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, sc := range subcommands {
			fmt.Fprintln(stdout, sc.name)
		}
		return 0
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "bo3graph: a subcommand is required:")
		for _, sc := range subcommands {
			fmt.Fprintf(stderr, "  %-8s %s\n", sc.name, sc.summary)
		}
		return 2
	}
	cmd, rest := fs.Arg(0), fs.Args()[1:]
	switch cmd {
	case "build":
		return cmdBuild(rest, stdout, stderr)
	case "verify":
		return cmdVerify(rest, stdout, stderr)
	case "info":
		return cmdInfo(rest, stdout, stderr)
	default:
		fmt.Fprintf(stderr, "bo3graph: unknown subcommand %q\n", cmd)
		return 2
	}
}

func cmdBuild(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bo3graph build", flag.ContinueOnError)
	fs.SetOutput(stderr)
	gf := cli.GraphFlags{Family: "random-regular", N: 1 << 14, Alpha: 0.75}
	gf.Register(fs)
	seed := fs.Uint64("seed", 1, "generator seed for the seeded families")
	specJSON := fs.String("spec", "", "raw GraphSpec JSON (overrides the graph flags)")
	out := fs.String("o", "", "output artifact file")
	dir := fs.String("dir", "", "artifact directory: write under the spec key's content address (the layout bo3serve -artifact-dir reads)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if (*out == "") == (*dir == "") {
		fmt.Fprintln(stderr, "bo3graph build: exactly one of -o or -dir is required")
		return 2
	}
	var gs spec.GraphSpec
	if *specJSON != "" {
		if err := json.Unmarshal([]byte(*specJSON), &gs); err != nil {
			fmt.Fprintf(stderr, "bo3graph: -spec: %v\n", err)
			return 2
		}
	} else {
		var err error
		gs, err = gf.Spec(*seed)
		if err != nil {
			fmt.Fprintf(stderr, "bo3graph: %v\n", err)
			return 2
		}
	}
	a, err := artifact.FromSpec(gs)
	if err != nil {
		fmt.Fprintf(stderr, "bo3graph: %v\n", err)
		return 1
	}
	path := *out
	if *dir != "" {
		d, err := artifact.OpenDir(*dir, 0)
		if err != nil {
			fmt.Fprintf(stderr, "bo3graph: %v\n", err)
			return 1
		}
		if path, err = d.Store(a); err != nil {
			fmt.Fprintf(stderr, "bo3graph: %v\n", err)
			return 1
		}
	} else {
		data, err := a.Encode()
		if err != nil {
			fmt.Fprintf(stderr, "bo3graph: %v\n", err)
			return 1
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			fmt.Fprintf(stderr, "bo3graph: %v\n", err)
			return 1
		}
	}
	g := a.Graph
	fmt.Fprintf(stdout, "wrote %s: %s  key=%s  n=%d m=%d  %d bytes\n",
		path, g.Name(), a.Key, g.N(), g.M(), a.EncodedSize())
	return 0
}

func cmdVerify(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		fmt.Fprintln(stderr, "bo3graph verify: at least one artifact file required")
		return 2
	}
	failed := 0
	for _, path := range args {
		data, err := os.ReadFile(path)
		if err == nil {
			var a *artifact.Artifact
			if a, err = artifact.Verify(data); err == nil {
				fmt.Fprintf(stdout, "ok   %s: %s  key=%s  n=%d m=%d\n",
					path, a.Graph.Name(), a.Key, a.Graph.N(), a.Graph.M())
				continue
			}
		}
		fmt.Fprintf(stdout, "FAIL %s: %v\n", path, err)
		failed++
	}
	fmt.Fprintf(stdout, "verified %d files, %d failed\n", len(args), failed)
	if failed > 0 {
		return 1
	}
	return 0
}

func cmdInfo(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		fmt.Fprintln(stderr, "bo3graph info: at least one artifact file required")
		return 2
	}
	bad := 0
	for _, path := range args {
		if err := printInfo(path, stdout); err != nil {
			fmt.Fprintf(stdout, "%s: %v\n", path, err)
			bad++
		}
	}
	if bad > 0 {
		return 1
	}
	return 0
}

// printInfo reads only the fixed header and strings — enough to describe
// the file without touching the (possibly huge) array sections. It
// reports the declared shape even for files whose checksums would fail
// full decoding; `verify` is the integrity audit.
func printInfo(path string, stdout io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	head := make([]byte, 36)
	if _, err := io.ReadFull(f, head); err != nil {
		return fmt.Errorf("truncated header: %w", err)
	}
	if string(head[:8]) != artifact.Magic {
		return fmt.Errorf("bad magic (not an artifact file)")
	}
	version := binary.LittleEndian.Uint16(head[8:])
	n := binary.LittleEndian.Uint64(head[12:])
	m := binary.LittleEndian.Uint64(head[20:])
	keyLen := binary.LittleEndian.Uint32(head[28:])
	nameLen := binary.LittleEndian.Uint32(head[32:])
	if keyLen > 1<<16 || nameLen > 1<<16 {
		return fmt.Errorf("implausible key/name lengths %d/%d", keyLen, nameLen)
	}
	strs := make([]byte, keyLen+nameLen)
	if _, err := io.ReadFull(f, strs); err != nil {
		return fmt.Errorf("truncated key/name: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "%s: v%d  key=%s  name=%s  n=%d m=%d  %d bytes\n",
		path, version, strs[:keyLen], strs[keyLen:], n, m, st.Size())
	return nil
}
