package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"time"

	"repro/internal/serve"
	"repro/internal/table"
)

// cellSize reports a cell's vertex count for the result tables, covering
// the families whose size is not carried by the n field.
func cellSize(g serve.GraphSpec) int {
	switch g.Family {
	case "torus":
		return g.Rows * g.Cols
	case "hypercube":
		return 1 << g.Dim
	case "sbm":
		return g.A + g.B
	}
	return g.N
}

// sweepTest replays the grid through a running bo3serve instance as ONE
// server-side sweep: a single POST /v1/sweeps expands it into child runs
// on the server, and the NDJSON results stream is tailed until the final
// aggregate arrives — no per-cell round-trips and no polling, which is
// the batching win over the -serve-runs path. With watch set it also
// attaches an SSE subscriber to the sweep's event topic and prints live
// round-level telemetry to stderr while the results stream runs.
func sweepTest(base string, grid serve.SweepGrid, concurrency int, seed uint64, watch bool) error {
	client := &http.Client{Timeout: 10 * time.Minute}
	if err := checkHealth(client, base); err != nil {
		return err
	}

	req := serve.SweepRequest{
		// One spec.Grid end to end: the same type the experiment registry
		// publishes and the server expands. Topology templates keep one
		// seed per family on purpose: every δ-cell after the first reuses
		// the pooled graph.
		Grid:        grid,
		Seed:        seed,
		Concurrency: concurrency,
	}

	start := time.Now()
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	resp, err := client.Post(base+"/v1/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	var accepted serve.SweepView
	if err := decodeJSON(resp, http.StatusAccepted, &accepted); err != nil {
		return fmt.Errorf("submit sweep: %w", err)
	}

	watched := make(chan struct{})
	if watch {
		go func() {
			defer close(watched)
			watchSweep(client, base, accepted.ID)
		}()
	} else {
		close(watched)
	}

	// Tail the stream: one long-lived GET replaces per-job polling.
	stream, err := client.Get(base + "/v1/sweeps/" + accepted.ID + "/results")
	if err != nil {
		return err
	}
	defer stream.Body.Close()
	if stream.StatusCode != http.StatusOK {
		return fmt.Errorf("results stream returned %s", stream.Status)
	}

	t := table.New(fmt.Sprintf("bo3serve sweep %s against %s (%s)", accepted.ID, base, grid.Graphs[0].Family),
		"graph", "n", "delta", "state", "red wins", "consensus", "mean rounds", "cache hit")
	var final *serve.SweepView
	failures, totalTrials := 0, 0
	sc := bufio.NewScanner(stream.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22) // the final event carries the aggregate
	for sc.Scan() {
		var ev serve.SweepEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return fmt.Errorf("bad NDJSON line: %w", err)
		}
		switch {
		case ev.Cell != nil:
			c := ev.Cell
			if c.State != serve.StateDone || c.Result == nil {
				failures++
				t.AddRow(c.Request.Graph.Family, cellSize(c.Request.Graph), c.Request.Delta, c.State+": "+c.Error, "-", "-", "-", "-")
				continue
			}
			r := c.Result
			totalTrials += r.Trials
			t.AddRow(c.Request.Graph.Family, cellSize(c.Request.Graph), c.Request.Delta, c.State,
				fmt.Sprintf("%d/%d", r.RedWins, r.Trials),
				fmt.Sprintf("%d/%d", r.Consensus, r.Trials),
				fmt.Sprintf("%.1f", r.MeanRounds), r.CacheHit)
		case ev.Sweep != nil:
			final = ev.Sweep
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	// The event topic closes with the sweep's terminal event, so the
	// watcher exits on its own right after the results stream does; wait
	// for it so telemetry never interleaves with the tables below.
	<-watched
	wall := time.Since(start)

	fmt.Println()
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	if final == nil {
		return fmt.Errorf("stream ended without the final sweep event")
	}
	agg := final.Aggregate
	fmt.Printf("\n1 sweep request, %d cells (%d failed, %d cancelled), %d trials, wall %v, %.1f trials/s\n",
		agg.Cells, agg.Failed, agg.Cancelled, totalTrials, wall.Round(time.Millisecond),
		float64(totalTrials)/wall.Seconds())
	fmt.Printf("aggregate: red win rate %.3f [%.3f, %.3f], consensus rate %.3f, mean rounds %.1f\n",
		agg.RedWinRate, agg.RedWinLo, agg.RedWinHi, agg.ConsensusRate, agg.MeanRounds)
	if srvStats, err := fetchStats(client, base); err == nil {
		fmt.Printf("server: %d completed, graph cache %d/%d hits, %d evictions\n",
			srvStats.Completed, srvStats.Cache.Hits, srvStats.Cache.Hits+srvStats.Cache.Misses,
			srvStats.Cache.Evictions)
	}
	if failures > 0 || final.State != serve.StateDone {
		return fmt.Errorf("sweep ended %s with %d failed cells", final.State, failures)
	}
	return nil
}
