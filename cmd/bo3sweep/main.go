// Command bo3sweep regenerates the full reproduction suite (experiments
// E1–E21 of DESIGN.md) and prints one table per experiment, in the format
// recorded in EXPERIMENTS.md.
//
// Usage:
//
//	bo3sweep                 # default scale (minutes)
//	bo3sweep -quick          # reduced scale (seconds)
//	bo3sweep -only E1,E7     # subset
//	bo3sweep -csv out/       # additionally write CSV files
//
// With -serve it instead replays a parameter grid through a running
// bo3serve instance as a load test, submitting the whole grid as one POST
// /v1/sweeps request and tailing the NDJSON results stream; -serve-runs
// replays the same grid the pre-sweep way (one POST /v1/runs per cell,
// polled), for measuring the batching speedup:
//
//	bo3sweep -serve http://localhost:8080 -quick -concurrency 8
//	bo3sweep -serve-runs http://localhost:8080 -quick -concurrency 8
//
// Adding -watch to a -serve session attaches a second, SSE subscription
// to the sweep's live event topic (GET /v1/sweeps/{id}/events) and prints
// round-decimated trajectory frames and cell completions to stderr while
// the sweep runs — including `dropped` notices when this client falls
// behind the server's bounded per-subscriber ring.
//
// The replayed grid is a spec.Grid, the same type the server expands and
// the experiment registry publishes. By default it is the n × δ load-test
// grid over the topology selected by the shared -graph family flags (so
// `-serve … -graph sbm -pin 0.02` sweeps a stochastic block model); with
// -grid it is a registry grid instead:
//
//	bo3sweep -serve http://localhost:8080 -grid E1 -quick
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/cli"
	"repro/internal/experiments"
	"repro/internal/serve"
	"repro/internal/table"
)

type runner struct {
	id  string
	run func(experiments.Config) *table.Table
}

// replayGrid resolves the grid a -serve/-serve-runs session replays:
// a named registry grid, or the load-test grid over the topology the
// shared family flags select.
func replayGrid(gf *cli.GraphFlags, cfg experiments.Config, gridID, variants string, quick bool, trials int) (serve.SweepGrid, error) {
	grid, err := baseGrid(gf, cfg, gridID, quick, trials)
	if err != nil {
		return serve.SweepGrid{}, err
	}
	if variants != "" {
		vs, err := cli.ParseVariants(variants)
		if err != nil {
			return serve.SweepGrid{}, err
		}
		grid.Variants = vs
	}
	return grid, nil
}

// baseGrid resolves the grid before the -variants override: a named
// registry grid, or the load-test grid over the selected topology.
func baseGrid(gf *cli.GraphFlags, cfg experiments.Config, gridID string, quick bool, trials int) (serve.SweepGrid, error) {
	if gridID != "" {
		grid, ok := experiments.Grids(cfg)[strings.ToUpper(gridID)]
		if !ok {
			return serve.SweepGrid{}, fmt.Errorf("unknown registry grid %q (sweepable: %s)",
				gridID, strings.Join(experiments.GridIDs(cfg), ", "))
		}
		return grid, nil
	}
	template, err := gf.Spec(cfg.Seed)
	if err != nil {
		return serve.SweepGrid{}, err
	}
	if trials <= 0 {
		trials = 20
		if quick {
			trials = 8
		}
	}
	return experiments.LoadTestGrid(template, quick, trials), nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("bo3sweep: ")

	gf := &cli.GraphFlags{Family: "regular", N: 1 << 14, Alpha: 0.6, D: 32}
	gf.Register(flag.CommandLine)
	var (
		quick     = flag.Bool("quick", false, "reduced scale (seconds instead of minutes)")
		only      = flag.String("only", "", "comma-separated experiment ids to run (default: all)")
		csvDir    = flag.String("csv", "", "directory to write per-experiment CSV files")
		trials    = flag.Int("trials", 0, "override trial count")
		maxN      = flag.Int("maxn", 0, "override largest graph size")
		seed      = flag.Uint64("seed", 1, "experiment seed")
		workers   = flag.Int("workers", 0, "harness parallelism (0 = GOMAXPROCS)")
		serveURL  = flag.String("serve", "", "bo3serve base URL: replay the grid as one server-side /v1/sweeps request")
		serveRuns = flag.String("serve-runs", "", "bo3serve base URL: replay the grid as per-cell /v1/runs requests (pre-sweep baseline)")
		gridID    = flag.String("grid", "", "in -serve/-serve-runs mode, replay this registry grid (e.g. E1) instead of the -graph load-test grid")
		variants  = flag.String("variants", "", "in -serve/-serve-runs mode, set the grid's variant axis (comma-separated, e.g. sync,async,stubborn:0.05,plurality:4)")
		conc      = flag.Int("concurrency", 4, "concurrent cells in -serve / -serve-runs mode")
		watch     = flag.Bool("watch", false, "in -serve mode, also tail the sweep's live event stream (SSE) and print round-level telemetry to stderr")
	)
	flag.Parse()

	cfg := experiments.Default()
	if *quick {
		cfg = experiments.Quick()
	}
	if *trials > 0 {
		cfg.Trials = *trials
	}
	if *maxN > 0 {
		cfg.MaxN = *maxN
	}
	cfg.Seed = *seed
	cfg.Workers = *workers

	if *serveURL != "" && *serveRuns != "" {
		log.Fatal("-serve and -serve-runs are mutually exclusive")
	}
	if *serveURL != "" || *serveRuns != "" {
		grid, err := replayGrid(gf, cfg, *gridID, *variants, *quick, *trials)
		if err != nil {
			log.Fatal(err)
		}
		if *serveURL != "" {
			err = sweepTest(*serveURL, grid, *conc, *seed, *watch)
		} else {
			err = loadTest(*serveRuns, grid, *conc, *seed)
		}
		if err != nil {
			log.Fatal(err)
		}
		return
	}

	all := []runner{
		{"E1", func(c experiments.Config) *table.Table { return experiments.E1ConsensusScaling(c).Table() }},
		{"E2", func(c experiments.Config) *table.Table { return experiments.E2DeltaSweep(c).Table() }},
		{"E3", func(c experiments.Config) *table.Table { return experiments.E3IdealRecursion(c).Table() }},
		{"E4", func(c experiments.Config) *table.Table { return experiments.E4SprinklingMajorisation(c).Table() }},
		{"E5", func(c experiments.Config) *table.Table { return experiments.E5TernaryThreshold(c).Table() }},
		{"E6", func(c experiments.Config) *table.Table { return experiments.E6CollisionTransform(c).Table() }},
		{"E7", func(c experiments.Config) *table.Table { return experiments.E7CollisionTail(c).Table() }},
		{"E8", func(c experiments.Config) *table.Table { return experiments.E8DeltaGrowth(c).Table() }},
		{"E9", func(c experiments.Config) *table.Table { return experiments.E9BaselineComparison(c).Table() }},
		{"E10", func(c experiments.Config) *table.Table { return experiments.E10DensityGate(c).Table() }},
		{"E11", func(c experiments.Config) *table.Table { return experiments.E11CobraDuality(c).Table() }},
		{"E12", func(c experiments.Config) *table.Table { return experiments.E12SprinklingFigure(c).Table() }},
		{"E13", func(c experiments.Config) *table.Table { return experiments.E13PhaseSchedule(c).Table() }},
		{"E14", func(c experiments.Config) *table.Table { return experiments.E14PluralityConsensus(c).Table() }},
		{"E15", func(c experiments.Config) *table.Table { return experiments.E15StubbornZealots(c).Table() }},
		{"E16", func(c experiments.Config) *table.Table { return experiments.E16AdversarialPlacement(c).Table() }},
		{"E17", func(c experiments.Config) *table.Table { return experiments.E17ForwardBackwardDuality(c).Table() }},
		{"E18", func(c experiments.Config) *table.Table { return experiments.E18AsyncVsSync(c).Table() }},
		{"E19", func(c experiments.Config) *table.Table { return experiments.E19NoiseThreshold(c).Table() }},
		{"E20", func(c experiments.Config) *table.Table { return experiments.E20ExactChainValidation(c).Table() }},
		{"E21", func(c experiments.Config) *table.Table { return experiments.E21SpectralComparison(c).Table() }},
	}

	selected := all
	if *only != "" {
		want := map[string]bool{}
		for _, id := range strings.Split(*only, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
		selected = selected[:0]
		for _, r := range all {
			if want[r.id] {
				selected = append(selected, r)
			}
		}
		if len(selected) == 0 {
			log.Fatalf("no experiments match -only=%q", *only)
		}
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			log.Fatal(err)
		}
	}

	for _, r := range selected {
		start := time.Now()
		t := r.run(cfg)
		fmt.Println()
		if err := t.Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("(%s completed in %v)\n", r.id, time.Since(start).Round(time.Millisecond))
		if *csvDir != "" {
			path := filepath.Join(*csvDir, strings.ToLower(r.id)+".csv")
			f, err := os.Create(path)
			if err != nil {
				log.Fatal(err)
			}
			if err := t.RenderCSV(f); err != nil {
				f.Close()
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}
	}
}
