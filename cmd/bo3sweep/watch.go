package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strings"

	"repro/internal/bus"
	"repro/internal/serve"
)

// watchSweep drives the SSE side of the event bus while sweepTest tails
// the NDJSON results stream: one GET /v1/sweeps/{id}/events with
// `Accept: text/event-stream`, printing live telemetry — round-decimated
// trajectory frames, cell completions, drop counts — to stderr until the
// server closes the stream at the sweep's terminal event. Runs in its own
// goroutine; failures are reported, never fatal, because watching is
// strictly observational.
func watchSweep(client *http.Client, base, id string) {
	req, err := http.NewRequest(http.MethodGet, base+"/v1/sweeps/"+id+"/events", nil)
	if err != nil {
		fmt.Fprintf(os.Stderr, "watch: %v\n", err)
		return
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := client.Do(req)
	if err != nil {
		fmt.Fprintf(os.Stderr, "watch: %v\n", err)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(os.Stderr, "watch: events stream returned %s\n", resp.Status)
		return
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		fmt.Fprintf(os.Stderr, "watch: negotiated %q, want text/event-stream\n", ct)
		return
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for sc.Scan() {
		line := sc.Text()
		// SSE framing: only data: lines carry events; id:/event: lines and
		// ": heartbeat" comments are advisory.
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev bus.Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			fmt.Fprintf(os.Stderr, "watch: bad event: %v\n", err)
			return
		}
		printEvent(ev)
	}
	// EOF after the terminal sweep event is the clean exit; a scan error
	// means the connection died first.
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "watch: stream: %v\n", err)
	}
}

// printEvent renders one bus event as a stderr telemetry line.
func printEvent(ev bus.Event) {
	if ev.Dropped > 0 {
		fmt.Fprintf(os.Stderr, "watch: fell behind, %d frames dropped\n", ev.Dropped)
	}
	switch ev.Type {
	case serve.EventRound:
		var f serve.RoundFrame
		if remarshalData(ev.Data, &f) != nil {
			return
		}
		fmt.Fprintf(os.Stderr, "watch: %s trial=%d round=%d blue=%d/%d\n", f.Job, f.Trial, f.Round, f.Blues, f.N)
	case serve.EventCell:
		var c serve.SweepCellView
		if remarshalData(ev.Data, &c) != nil {
			return
		}
		fmt.Fprintf(os.Stderr, "watch: cell %d (%s) %s\n", c.Index, c.JobID, c.State)
	case serve.EventState:
		var v serve.SweepView
		if remarshalData(ev.Data, &v) != nil {
			return
		}
		fmt.Fprintf(os.Stderr, "watch: sweep %s %s, %d cells\n", v.ID, v.State, v.Aggregate.Cells)
	case serve.EventSweep:
		var v serve.SweepView
		if remarshalData(ev.Data, &v) != nil {
			return
		}
		fmt.Fprintf(os.Stderr, "watch: sweep %s terminal: %s (%d done, %d failed, %d cancelled)\n",
			v.ID, v.State, v.Aggregate.Done, v.Aggregate.Failed, v.Aggregate.Cancelled)
	}
}

// remarshalData converts an any-typed event payload into its wire view.
func remarshalData(data any, out any) error {
	raw, err := json.Marshal(data)
	if err != nil {
		return err
	}
	return json.Unmarshal(raw, out)
}
