package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"time"

	"repro/internal/serve"
	"repro/internal/stats"
	"repro/internal/table"
)

// loadGrid is the shared n × δ grid both -serve (one /v1/sweeps call) and
// -serve-runs (N individual /v1/runs calls) replay, so their wall clocks
// are directly comparable.
func loadGrid(quick bool, trials int) (ns []int, deltas []float64, effTrials int) {
	ns = []int{1 << 10, 1 << 12, 1 << 14}
	deltas = []float64{0.02, 0.05, 0.1, 0.2}
	if quick {
		ns = []int{1 << 9, 1 << 10}
		deltas = []float64{0.05, 0.2}
	}
	if trials <= 0 {
		trials = 20
		if quick {
			trials = 8
		}
	}
	return ns, deltas, trials
}

// loadTest replays the grid through a running bo3serve instance the
// pre-sweep way: every (n, δ) cell becomes one POST /v1/runs job, polled
// to completion — N round-trips plus polling. The sweep visits each
// topology once per δ, so all but the first job per topology should hit
// the server's graph pool; the run ends by printing the per-cell results,
// client-side latency quantiles, and the server's /v1/stats counters so
// cache behaviour is visible. Kept behind -serve-runs as the baseline the
// server-side orchestration of sweepTest is measured against.
func loadTest(base string, quick bool, trials, concurrency int, seed uint64) error {
	client := &http.Client{Timeout: 10 * time.Minute}
	if err := checkHealth(client, base); err != nil {
		return err
	}

	ns, deltas, trials := loadGrid(quick, trials)
	if concurrency <= 0 {
		concurrency = 4
	}

	type cell struct {
		n     int
		delta float64
		view  serve.JobView
		rtt   time.Duration
		err   error
	}
	cells := make([]cell, 0, len(ns)*len(deltas))
	for _, n := range ns {
		for _, d := range deltas {
			cells = append(cells, cell{n: n, delta: d})
		}
	}

	start := time.Now()
	sem := make(chan struct{}, concurrency)
	var wg sync.WaitGroup
	for i := range cells {
		wg.Add(1)
		go func(c *cell) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			req := serve.RunRequest{
				Graph: serve.GraphSpec{Family: "random-regular", N: c.n, D: 32, Seed: seed},
				Delta: c.delta,
				// Same per-topology seed on purpose: every δ-cell after
				// the first reuses the pooled graph.
				Seed:   seed + uint64(c.n)<<8 + uint64(c.delta*1000),
				Trials: trials,
			}
			t0 := time.Now()
			c.view, c.err = submitAndPoll(client, base, req)
			c.rtt = time.Since(t0)
		}(&cells[i])
	}
	wg.Wait()
	wall := time.Since(start)

	t := table.New(fmt.Sprintf("bo3serve load test against %s (random-regular d=32, %d trials/job)", base, trials),
		"n", "delta", "state", "red wins", "consensus", "mean rounds", "cache hit", "latency")
	var lat []float64
	failures := 0
	totalTrials := 0
	for _, c := range cells {
		if c.err != nil {
			failures++
			t.AddRow(c.n, c.delta, "error: "+c.err.Error(), "-", "-", "-", "-", c.rtt.Round(time.Millisecond))
			continue
		}
		lat = append(lat, c.rtt.Seconds())
		r := c.view.Result
		if c.view.State != serve.StateDone || r == nil {
			failures++
			t.AddRow(c.n, c.delta, c.view.State, "-", "-", "-", "-", c.rtt.Round(time.Millisecond))
			continue
		}
		totalTrials += r.Trials
		t.AddRow(c.n, c.delta, c.view.State,
			fmt.Sprintf("%d/%d", r.RedWins, r.Trials),
			fmt.Sprintf("%d/%d", r.Consensus, r.Trials),
			fmt.Sprintf("%.1f", r.MeanRounds), r.CacheHit,
			c.rtt.Round(time.Millisecond))
	}
	fmt.Println()
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("\n%d jobs (%d failed), %d trials, wall %v, %.1f trials/s\n",
		len(cells), failures, totalTrials, wall.Round(time.Millisecond),
		float64(totalTrials)/wall.Seconds())
	if len(lat) > 0 {
		fmt.Printf("job latency p50 %.0fms  p90 %.0fms  max %.0fms\n",
			stats.Quantile(lat, 0.5)*1000, stats.Quantile(lat, 0.9)*1000, stats.Quantile(lat, 1)*1000)
	}
	if srvStats, err := fetchStats(client, base); err == nil {
		fmt.Printf("server: %d completed, graph cache %d/%d hits, %d evictions\n",
			srvStats.Completed, srvStats.Cache.Hits, srvStats.Cache.Hits+srvStats.Cache.Misses,
			srvStats.Cache.Evictions)
	}
	if failures > 0 {
		return fmt.Errorf("%d/%d jobs failed", failures, len(cells))
	}
	return nil
}

func checkHealth(client *http.Client, base string) error {
	resp, err := client.Get(base + "/healthz")
	if err != nil {
		return fmt.Errorf("bo3serve not reachable at %s: %w", base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("bo3serve health check returned %s", resp.Status)
	}
	return nil
}

// submitAndPoll posts one job and polls it to a terminal state.
func submitAndPoll(client *http.Client, base string, req serve.RunRequest) (serve.JobView, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return serve.JobView{}, err
	}
	resp, err := client.Post(base+"/v1/runs", "application/json", bytes.NewReader(body))
	if err != nil {
		return serve.JobView{}, err
	}
	var view serve.JobView
	if err := decodeJSON(resp, http.StatusAccepted, &view); err != nil {
		return serve.JobView{}, err
	}
	for backoff := 10 * time.Millisecond; ; backoff = min(backoff*2, time.Second) {
		switch view.State {
		case serve.StateDone, serve.StateFailed, serve.StateCancelled:
			if view.State != serve.StateDone {
				return view, fmt.Errorf("job %s ended %s: %s", view.ID, view.State, view.Error)
			}
			return view, nil
		}
		time.Sleep(backoff)
		resp, err := client.Get(base + "/v1/runs/" + view.ID)
		if err != nil {
			return view, err
		}
		if err := decodeJSON(resp, http.StatusOK, &view); err != nil {
			return view, err
		}
	}
}

func fetchStats(client *http.Client, base string) (serve.Stats, error) {
	var s serve.Stats
	resp, err := client.Get(base + "/v1/stats")
	if err != nil {
		return s, err
	}
	return s, decodeJSON(resp, http.StatusOK, &s)
}

func decodeJSON(resp *http.Response, wantStatus int, v any) error {
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<10))
		return fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
