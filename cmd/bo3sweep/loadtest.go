package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"time"

	"repro/internal/serve"
	"repro/internal/stats"
	"repro/internal/table"
)

// loadTest replays the grid through a running bo3serve instance the
// pre-sweep way: every cell becomes one POST /v1/runs job, polled to
// completion — N round-trips plus polling. The cells are the server-side
// expansion of the same spec.Grid the -serve path submits (seeds
// included), so the two modes run identical work and their wall clocks
// are directly comparable. The grid visits each topology once per δ, so
// all but the first job per topology should hit the server's graph pool;
// the run ends by printing the per-cell results, client-side latency
// quantiles, and the server's /v1/stats counters so cache behaviour is
// visible. Kept behind -serve-runs as the baseline the server-side
// orchestration of sweepTest is measured against.
func loadTest(base string, grid serve.SweepGrid, concurrency int, seed uint64) error {
	client := &http.Client{Timeout: 10 * time.Minute}
	if err := checkHealth(client, base); err != nil {
		return err
	}

	grid.Normalize()
	if concurrency <= 0 {
		concurrency = 4
	}

	type cell struct {
		req  serve.RunRequest
		view serve.JobView
		rtt  time.Duration
		err  error
	}
	reqs := grid.Expand(seed, 0)
	cells := make([]cell, len(reqs))
	for i, r := range reqs {
		cells[i] = cell{req: r}
	}

	start := time.Now()
	sem := make(chan struct{}, concurrency)
	var wg sync.WaitGroup
	for i := range cells {
		wg.Add(1)
		go func(c *cell) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			t0 := time.Now()
			c.view, c.err = submitAndPoll(client, base, c.req)
			c.rtt = time.Since(t0)
		}(&cells[i])
	}
	wg.Wait()
	wall := time.Since(start)

	t := table.New(fmt.Sprintf("bo3serve load test against %s (%s)", base, grid.Graphs[0].Family),
		"graph", "n", "delta", "state", "red wins", "consensus", "mean rounds", "cache hit", "latency")
	var lat []float64
	failures := 0
	totalTrials := 0
	for _, c := range cells {
		g, delta := c.req.Graph, c.req.Delta
		if c.err != nil {
			failures++
			t.AddRow(g.Family, cellSize(g), delta, "error: "+c.err.Error(), "-", "-", "-", "-", c.rtt.Round(time.Millisecond))
			continue
		}
		lat = append(lat, c.rtt.Seconds())
		r := c.view.Result
		if c.view.State != serve.StateDone || r == nil {
			failures++
			t.AddRow(g.Family, cellSize(g), delta, c.view.State, "-", "-", "-", "-", c.rtt.Round(time.Millisecond))
			continue
		}
		totalTrials += r.Trials
		t.AddRow(g.Family, cellSize(g), delta, c.view.State,
			fmt.Sprintf("%d/%d", r.RedWins, r.Trials),
			fmt.Sprintf("%d/%d", r.Consensus, r.Trials),
			fmt.Sprintf("%.1f", r.MeanRounds), r.CacheHit,
			c.rtt.Round(time.Millisecond))
	}
	fmt.Println()
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("\n%d jobs (%d failed), %d trials, wall %v, %.1f trials/s\n",
		len(cells), failures, totalTrials, wall.Round(time.Millisecond),
		float64(totalTrials)/wall.Seconds())
	if len(lat) > 0 {
		fmt.Printf("job latency p50 %.0fms  p90 %.0fms  max %.0fms\n",
			stats.Quantile(lat, 0.5)*1000, stats.Quantile(lat, 0.9)*1000, stats.Quantile(lat, 1)*1000)
	}
	if srvStats, err := fetchStats(client, base); err == nil {
		fmt.Printf("server: %d completed, graph cache %d/%d hits, %d evictions\n",
			srvStats.Completed, srvStats.Cache.Hits, srvStats.Cache.Hits+srvStats.Cache.Misses,
			srvStats.Cache.Evictions)
	}
	if failures > 0 {
		return fmt.Errorf("%d/%d jobs failed", failures, len(cells))
	}
	return nil
}

func checkHealth(client *http.Client, base string) error {
	resp, err := client.Get(base + "/healthz")
	if err != nil {
		return fmt.Errorf("bo3serve not reachable at %s: %w", base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("bo3serve health check returned %s", resp.Status)
	}
	return nil
}

// submitAndPoll posts one job and polls it to a terminal state.
func submitAndPoll(client *http.Client, base string, req serve.RunRequest) (serve.JobView, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return serve.JobView{}, err
	}
	resp, err := client.Post(base+"/v1/runs", "application/json", bytes.NewReader(body))
	if err != nil {
		return serve.JobView{}, err
	}
	var view serve.JobView
	if err := decodeJSON(resp, http.StatusAccepted, &view); err != nil {
		return serve.JobView{}, err
	}
	for backoff := 10 * time.Millisecond; ; backoff = min(backoff*2, time.Second) {
		switch view.State {
		case serve.StateDone, serve.StateFailed, serve.StateCancelled:
			if view.State != serve.StateDone {
				return view, fmt.Errorf("job %s ended %s: %s", view.ID, view.State, view.Error)
			}
			return view, nil
		}
		time.Sleep(backoff)
		resp, err := client.Get(base + "/v1/runs/" + view.ID)
		if err != nil {
			return view, err
		}
		if err := decodeJSON(resp, http.StatusOK, &view); err != nil {
			return view, err
		}
	}
}

func fetchStats(client *http.Client, base string) (serve.Stats, error) {
	var s serve.Stats
	resp, err := client.Get(base + "/v1/stats")
	if err != nil {
		return s, err
	}
	return s, decodeJSON(resp, http.StatusOK, &s)
}

func decodeJSON(resp *http.Response, wantStatus int, v any) error {
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<10))
		return fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
