// Command bo3dag samples random voting-DAGs (the paper's dual object,
// Section 2) on a chosen graph and prints their structural statistics:
// level sizes, collision levels, sprinkling effects, and the Lemma 5/6
// quantities.
//
// Usage:
//
//	bo3dag -n 4096 -alpha 0.6 -height 6 -samples 200 -seed 1
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"

	"repro/internal/graph"
	"repro/internal/opinion"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/table"
	"repro/internal/theory"
	"repro/internal/votingdag"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bo3dag: ")

	var (
		n       = flag.Int("n", 4096, "number of vertices")
		alpha   = flag.Float64("alpha", 0.6, "density exponent (regular graph d = n^alpha)")
		height  = flag.Int("height", 6, "DAG height T")
		samples = flag.Int("samples", 200, "number of DAGs to sample")
		pblue   = flag.Float64("pblue", 0.4, "leaf blue probability for the colouring stats")
		seed    = flag.Uint64("seed", 1, "RNG seed")
	)
	flag.Parse()

	d := int(math.Ceil(math.Pow(float64(*n), *alpha)))
	if (*n*d)%2 != 0 {
		d++
	}
	if d >= *n {
		log.Fatalf("alpha %.2f yields degree %d >= n", *alpha, d)
	}
	src := rng.New(*seed)
	g := graph.RandomRegular(*n, d, src)
	fmt.Printf("graph %s, DAG height %d, %d samples\n", g.Name(), *height, *samples)

	levelSum := make([]float64, *height+1)
	var collisions, artificial []float64
	blueRootCount := 0
	for s := 0; s < *samples; s++ {
		dag := votingdag.Build(g, src.Intn(*n), *height, src)
		for t, sz := range dag.LevelSizes() {
			levelSum[t] += float64(sz)
		}
		collisions = append(collisions, float64(dag.CollisionLevelCount()))
		spr := dag.Sprinkle(*height)
		artificial = append(artificial, float64(spr.ArtificialCount()))
		leaf := votingdag.RandomLeafColouring(*pblue, src)
		if spr.Colour(leaf).RootColour() == opinion.Blue {
			blueRootCount++
		}
	}

	lvl := table.New("mean level sizes (level 0 = leaves)", "level", "mean size", "ternary-tree max")
	max := 1.0
	for t := *height; t >= 0; t-- {
		lvl.AddRow(t, levelSum[t]/float64(*samples), max)
		max *= 3
	}
	if err := lvl.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	csum := stats.Summarize(collisions)
	asum := stats.Summarize(artificial)
	fmt.Printf("\ncollision levels C: mean=%.3f max=%.0f (Lemma 7 per-level bound %.3g, tail bound %.3g)\n",
		csum.Mean, csum.Max,
		theory.CollisionLevelProb(*height, float64(d)),
		theory.CollisionTailBound(*height, float64(d)))
	fmt.Printf("sprinkled artificial nodes: mean=%.3f max=%.0f\n", asum.Mean, asum.Max)
	rootProp := stats.WilsonInterval(blueRootCount, *samples, 1.96)
	rec := theory.SprinkleRecursion(*pblue, *height, float64(d), false)
	fmt.Printf("sprinkled blue-root rate: %.4f [%.4f, %.4f]; equation (2) recursion p_T = %.4g\n",
		rootProp.P, rootProp.Lo, rootProp.Hi, rec[*height])
	fmt.Printf("Lemma 5 threshold for blue root at height %d: 2^%d = %d blue leaves\n",
		*height, *height, votingdag.MinBlueLeavesForBlueRoot(*height))
	fmt.Printf("equation (6) upper-level bound at leaf prob %.3g: %.4g\n",
		*pblue, theory.RootBlueBound(*height, float64(d), *pblue, stats.BinomialTail))
}
