package main

import (
	"strings"
	"testing"
)

// TestScenarioNamesStable pins the registry shape: names are the keys of
// BENCH_engine.json across PRs and the rows of the docs/PERFORMANCE.md
// table CI checks, so renames must be deliberate.
func TestScenarioNamesStable(t *testing.T) {
	want := []string{
		"round/kn-meanfield",
		"round/kn-general",
		"round/regular",
		"round/regular-noise",
		"trials/kn",
		"trials/regular",
		"graph/artifact-load",
		"serve/jobs",
		"serve/cached-jobs",
		"sweep/variant-sweep",
		"serve/events-fanout",
		"serve/metrics-overhead",
	}
	if len(scenarios) != len(want) {
		t.Fatalf("registered %d scenarios, want %d", len(scenarios), len(want))
	}
	for i, sc := range scenarios {
		if sc.name != want[i] {
			t.Errorf("scenario %d = %q, want %q", i, sc.name, want[i])
		}
		if sc.description == "" || sc.run == nil {
			t.Errorf("scenario %q missing description or runner", sc.name)
		}
	}
}

// TestScenariosRunAtQuickScale executes every scenario at reduced scale
// and sanity-checks the emitted metrics. This keeps the harness itself
// under test: a scenario that errors or reports a zero/negative rate
// fails CI before it poisons a committed baseline.
func TestScenariosRunAtQuickScale(t *testing.T) {
	if testing.Short() {
		t.Skip("bench harness smoke is not -short")
	}
	scale := Scale{KnN: 1 << 12, Seed: 3, Quick: true}
	for _, sc := range scenarios {
		params, metrics, err := sc.run(scale)
		if err != nil {
			t.Fatalf("%s: %v", sc.name, err)
		}
		if len(params) == 0 || len(metrics) == 0 {
			t.Fatalf("%s: empty params or metrics", sc.name)
		}
		for k, v := range metrics {
			// mean_* can be zero by definition; events_dropped is a
			// legitimate zero when every watcher kept up.
			if v <= 0 && !strings.HasPrefix(k, "mean_") && k != "events_dropped" {
				t.Errorf("%s: metric %s = %v, want positive", sc.name, k, v)
			}
		}
	}
}

// TestSummarySpeedup checks the headline ratio derivation.
func TestSummarySpeedup(t *testing.T) {
	res := []scenarioResult{
		{Name: "round/kn-meanfield", Metrics: map[string]float64{"ns_per_round": 500}},
		{Name: "round/kn-general", Metrics: map[string]float64{"ns_per_round": 50_000}},
	}
	sum := summarize(res)
	if got := sum["kn_meanfield_speedup_vs_general"]; got != 100 {
		t.Errorf("speedup = %v, want 100", got)
	}
	if len(summarize(res[:1])) != 0 {
		t.Error("summary produced without both scenarios")
	}
}
