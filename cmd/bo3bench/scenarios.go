package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro"
	"repro/internal/artifact"
	"repro/internal/dynamics"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/opinion"
	"repro/internal/rng"
	"repro/internal/serve"
	"repro/internal/store"
	"repro/spec"
)

// Scale parameterises the scenarios. Quick shrinks everything to CI-smoke
// size; KnN is the vertex count of the K_n engine comparison (the
// committed baseline uses 10⁶).
type Scale struct {
	KnN   int
	Seed  uint64
	Quick bool
}

func (s Scale) pick(full, quick int) int {
	if s.Quick {
		return quick
	}
	return full
}

// scenario is one registered bench. Names are stable identifiers: the
// docs/PERFORMANCE.md scenario table is checked against them in CI, and
// BENCH_engine.json keys results by them across PRs.
type scenario struct {
	name        string
	description string
	run         func(Scale) (params map[string]any, metrics map[string]float64, err error)
}

// scenarios is the registry, in execution order. Keep `-list` output (the
// name column) in sync with docs/PERFORMANCE.md.
var scenarios = []scenario{
	{
		name:        "round/kn-meanfield",
		description: "per-round cost of the mean-field fast path on virtual K_n (two binomial draws per round)",
		run:         func(s Scale) (map[string]any, map[string]float64, error) { return roundKn(s, dynamics.EngineMeanField) },
	},
	{
		name:        "round/kn-general",
		description: "per-round cost of the general sharded engine on the same virtual K_n instance",
		run:         func(s Scale) (map[string]any, map[string]float64, error) { return roundKn(s, dynamics.EngineGeneral) },
	},
	{
		name:        "round/regular",
		description: "general-engine round throughput on random-regular (batched sampling hot path)",
		run:         roundRegular,
	},
	{
		name:        "round/regular-noise",
		description: "general-engine round throughput with per-sample noise (scalar fallback path)",
		run:         roundRegularNoise,
	},
	{
		name:        "trials/kn",
		description: "trial throughput of repro.Runner on complete-virtual (mean-field engine, full init-to-consensus trials)",
		run:         trialsKn,
	},
	{
		name:        "trials/regular",
		description: "trial throughput of repro.Runner on random-regular (general engine)",
		run:         trialsRegular,
	},
	{
		name:        "graph/artifact-load",
		description: "preprocess→serve split: binary artifact load (read + checksums + zero-copy decode) vs the in-process generator path",
		run:         graphArtifactLoad,
	},
	{
		name:        "serve/jobs",
		description: "end-to-end job throughput through an in-process bo3serve HTTP server",
		run:         serveJobs,
	},
	{
		name:        "serve/cached-jobs",
		description: "result-store hit path: identical jobs resubmitted to a store-backed server (miss vs hit throughput)",
		run:         serveCachedJobs,
	},
	{
		name:        "sweep/variant-sweep",
		description: "one /v1/sweeps request crossing the registered opinion dynamics (the grid's variants axis): per-variant trial cost from a single sweep's cells",
		run:         sweepVariantSweep,
	},
	{
		name:        "serve/events-fanout",
		description: "event-bus fan-out: one sweep streamed to K concurrent /events watchers (NDJSON, one deliberately slow), reporting delivered/published/dropped frames",
		run:         serveEventsFanout,
	},
	{
		name:        "serve/metrics-overhead",
		description: "cost of the observability layer on the serve/jobs hot path: the registry operation mix one executed job drives, as a fraction of measured per-job wall time (errors at >= 2%)",
		run:         serveMetricsOverhead,
	},
}

// timedRounds steps the process r times, resetting the blue count to a
// mixed state (0.4·n) after every round so absorption never turns later
// rounds into no-ops; the reset is O(1) on the mean-field engine and an
// O(n/64) word-fill on the general engine, both negligible against a
// sampled round. Returns ns/round.
func timedRounds(p *dynamics.Process, n, r int) float64 {
	b := 2 * n / 5
	p.SetBlueCount(b)
	start := time.Now()
	for i := 0; i < r; i++ {
		p.Step()
		p.SetBlueCount(b)
	}
	return float64(time.Since(start).Nanoseconds()) / float64(r)
}

func roundKn(s Scale, engine dynamics.Engine) (map[string]any, map[string]float64, error) {
	n := s.KnN
	g := graph.NewKn(n)
	init := opinion.RandomConfig(n, 0.4, rng.New(s.Seed))
	p, err := dynamics.New(g, dynamics.BestOfThree, init, dynamics.Options{Seed: s.Seed + 1, Engine: engine})
	if err != nil {
		return nil, nil, err
	}
	rounds := s.pick(16, 8)
	if engine == dynamics.EngineMeanField {
		rounds = s.pick(200_000, 20_000)
	}
	nsPerRound := timedRounds(p, n, rounds)
	return map[string]any{"family": "complete-virtual", "n": n, "k": 3, "engine": engine.String(), "rounds": rounds},
		map[string]float64{
			"ns_per_round":      nsPerRound,
			"rounds_per_sec":    1e9 / nsPerRound,
			"mvertices_per_sec": float64(n) / nsPerRound * 1e3,
		}, nil
}

func roundRegular(s Scale) (map[string]any, map[string]float64, error) {
	n, d := s.pick(1<<17, 1<<14), 32
	g := graph.RandomRegular(n, d, rng.New(s.Seed))
	init := opinion.RandomConfig(n, 0.4, rng.New(s.Seed+1))
	p, err := dynamics.New(g, dynamics.BestOfThree, init, dynamics.Options{Seed: s.Seed + 2})
	if err != nil {
		return nil, nil, err
	}
	rounds := s.pick(128, 64)
	nsPerRound := timedRounds(p, n, rounds)
	return map[string]any{"family": "random-regular", "n": n, "d": d, "k": 3, "engine": p.Engine().String(), "rounds": rounds},
		map[string]float64{
			"ns_per_round":      nsPerRound,
			"rounds_per_sec":    1e9 / nsPerRound,
			"mvertices_per_sec": float64(n) / nsPerRound * 1e3,
		}, nil
}

func roundRegularNoise(s Scale) (map[string]any, map[string]float64, error) {
	n, d := s.pick(1<<17, 1<<14), 32
	g := graph.RandomRegular(n, d, rng.New(s.Seed))
	init := opinion.RandomConfig(n, 0.4, rng.New(s.Seed+1))
	rule := dynamics.Rule{K: 3, Noise: 0.01}
	p, err := dynamics.New(g, rule, init, dynamics.Options{Seed: s.Seed + 2})
	if err != nil {
		return nil, nil, err
	}
	rounds := s.pick(64, 32)
	nsPerRound := timedRounds(p, n, rounds)
	return map[string]any{"family": "random-regular", "n": n, "d": d, "k": 3, "noise": 0.01, "engine": p.Engine().String(), "rounds": rounds},
		map[string]float64{
			"ns_per_round":      nsPerRound,
			"rounds_per_sec":    1e9 / nsPerRound,
			"mvertices_per_sec": float64(n) / nsPerRound * 1e3,
		}, nil
}

func runTrials(s Scale, gs spec.GraphSpec, trials int) (map[string]any, map[string]float64, error) {
	rs := spec.RunSpec{Graph: gs, Delta: 0.1, Trials: trials, Seed: s.Seed}
	runner, err := repro.NewRunner(rs)
	if err != nil {
		return nil, nil, err
	}
	engine, err := runner.EngineName()
	if err != nil {
		return nil, nil, err
	}
	start := time.Now()
	rep, err := runner.Run(context.Background())
	if err != nil {
		return nil, nil, err
	}
	secs := time.Since(start).Seconds()
	rounds := 0
	for _, o := range rep.Outcomes {
		rounds += o.Rounds
	}
	return map[string]any{"family": gs.Family, "n": gs.N, "d": gs.D, "trials": trials, "delta": 0.1, "engine": engine},
		map[string]float64{
			"trials_per_sec": float64(trials) / secs,
			"rounds_per_sec": float64(rounds) / secs,
			"mean_rounds":    rep.MeanRounds,
		}, nil
}

func trialsKn(s Scale) (map[string]any, map[string]float64, error) {
	return runTrials(s, spec.GraphSpec{Family: "complete-virtual", N: s.pick(1<<16, 1<<12)}, s.pick(64, 16))
}

func trialsRegular(s Scale) (map[string]any, map[string]float64, error) {
	return runTrials(s, spec.GraphSpec{Family: "random-regular", N: s.pick(1<<12, 1<<10), D: 32, Seed: 1}, s.pick(32, 8))
}

// graphArtifactLoad times the two cold-start paths for one large
// random-regular topology: the full generator (what every process pays
// without artifacts) against loading the bo3graph-built artifact from
// disk (read + checksum passes + zero-copy CSR adoption). The speedup is
// the PR's acceptance number: artifact load must beat generation.
func graphArtifactLoad(s Scale) (map[string]any, map[string]float64, error) {
	gs := spec.GraphSpec{Family: "random-regular", N: s.pick(1<<17, 1<<12), D: 16, Seed: s.Seed}
	dir, err := os.MkdirTemp("", "bo3bench-artifacts-*")
	if err != nil {
		return nil, nil, err
	}
	defer os.RemoveAll(dir)
	d, err := artifact.OpenDir(dir, 0)
	if err != nil {
		return nil, nil, err
	}
	a, err := artifact.FromSpec(gs)
	if err != nil {
		return nil, nil, err
	}
	if _, err := d.Store(a); err != nil {
		return nil, nil, err
	}

	reps := s.pick(5, 2)
	start := time.Now()
	for i := 0; i < reps; i++ {
		if _, err := gs.Build(); err != nil {
			return nil, nil, err
		}
	}
	buildMS := time.Since(start).Seconds() * 1e3 / float64(reps)

	start = time.Now()
	for i := 0; i < reps; i++ {
		if _, err := d.Load(a.Key); err != nil {
			return nil, nil, err
		}
	}
	loadMS := time.Since(start).Seconds() * 1e3 / float64(reps)

	return map[string]any{"family": gs.Family, "n": gs.N, "d": gs.D, "seed": gs.Seed, "artifact_bytes": a.EncodedSize(), "reps": reps},
		map[string]float64{
			"build_ms": buildMS,
			"load_ms":  loadMS,
			"speedup":  buildMS / loadMS,
		}, nil
}

func serveJobs(s Scale) (map[string]any, map[string]float64, error) {
	mgr := serve.NewManager(serve.Config{Workers: 4, RootSeed: s.Seed})
	srv := httptest.NewServer(serve.NewServer(mgr))
	defer srv.Close()
	defer mgr.Close(context.Background())

	jobs := s.pick(48, 8)
	n, trials := 1<<12, 4
	secs, err := submitAndDrain(srv.URL, jobs, n, trials, s.Seed)
	if err != nil {
		return nil, nil, err
	}
	return map[string]any{"jobs": jobs, "family": "complete-virtual", "n": n, "trials": trials, "workers": 4},
		map[string]float64{
			"jobs_per_sec":   float64(jobs) / secs,
			"trials_per_sec": float64(jobs*trials) / secs,
		}, nil
}

// serveCachedJobs measures the result-store hit path: the same explicit-
// seed jobs are submitted twice against a store-backed server. The first
// pass executes and records (miss); the second is answered from the
// store without touching the worker pool (hit).
func serveCachedJobs(s Scale) (map[string]any, map[string]float64, error) {
	dir, err := os.MkdirTemp("", "bo3bench-store-*")
	if err != nil {
		return nil, nil, err
	}
	defer os.RemoveAll(dir)
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		return nil, nil, err
	}
	defer st.Close()
	mgr := serve.NewManager(serve.Config{Workers: 4, RootSeed: s.Seed, Store: st})
	srv := httptest.NewServer(serve.NewServer(mgr))
	defer srv.Close()
	defer mgr.Close(context.Background())

	jobs := s.pick(48, 8)
	n, trials := 1<<12, 4
	missSecs, err := submitAndDrain(srv.URL, jobs, n, trials, s.Seed)
	if err != nil {
		return nil, nil, err
	}
	hitSecs, err := submitAndDrain(srv.URL, jobs, n, trials, s.Seed)
	if err != nil {
		return nil, nil, err
	}
	var stats serve.Stats
	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		return nil, nil, err
	}
	err = json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	if err != nil {
		return nil, nil, err
	}
	if stats.JobsCached != int64(jobs) {
		return nil, nil, fmt.Errorf("jobs_cached = %d after the hit pass, want %d", stats.JobsCached, jobs)
	}
	return map[string]any{"jobs": jobs, "family": "complete-virtual", "n": n, "trials": trials, "workers": 4},
		map[string]float64{
			"miss_jobs_per_sec": float64(jobs) / missSecs,
			"hit_jobs_per_sec":  float64(jobs) / hitSecs,
			"hit_speedup":       missSecs / hitSecs,
		}, nil
}

// sweepVariantSweep submits one sweep whose grid crosses a single
// random-regular instance with every registered opinion dynamic and
// reports per-variant trial cost from the finished cells. The ratios
// (<variant>_cost_vs_sync) are the number to watch across PRs: they say
// what a non-default dynamic costs relative to the paper's synchronous
// protocol on the identical instance, seeds included.
func sweepVariantSweep(s Scale) (map[string]any, map[string]float64, error) {
	mgr := serve.NewManager(serve.Config{Workers: 4, RootSeed: s.Seed})
	srv := httptest.NewServer(serve.NewServer(mgr))
	defer srv.Close()
	defer mgr.Close(context.Background())

	// stubborn_frac 0.2 makes the frozen-Blue zealots a winning coalition
	// (blue share 0.4·0.8 + 0.2 > 1/2), so the stubborn cell converges to
	// Blue consensus like the others converge to Red — every variant is
	// then measured on an init-to-consensus trial rather than on round-cap
	// exhaustion; the explicit MaxRounds bounds the scenario regardless.
	n, trials := s.pick(1<<14, 1<<11), s.pick(8, 2)
	// Warm the graph pool with one throwaway job on the shared topology so
	// the first sweep cell (sync, the ratios' denominator) is not the one
	// paying the random-regular construction cost.
	if err := warmGraph(srv.URL, serve.GraphSpec{Family: "random-regular", N: n, D: 32, Seed: s.Seed}); err != nil {
		return nil, nil, err
	}
	req := serve.SweepRequest{
		Grid: serve.SweepGrid{
			Graphs: []serve.GraphSpec{{Family: "random-regular", N: n, D: 32, Seed: s.Seed}},
			Deltas: []float64{0.1},
			Trials: []int{trials},
			Variants: []spec.VariantSpec{
				{Name: "sync"},
				{Name: "async"},
				{Name: "stubborn", StubbornFrac: 0.2},
				{Name: "plurality", Q: 4},
			},
		},
		MaxRounds: s.pick(512, 256),
		Seed:      s.Seed,
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, nil, err
	}
	start := time.Now()
	resp, err := http.Post(srv.URL+"/v1/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, nil, err
	}
	var view serve.SweepView
	derr := json.NewDecoder(resp.Body).Decode(&view)
	resp.Body.Close()
	if derr != nil {
		return nil, nil, derr
	}
	if resp.StatusCode != http.StatusAccepted {
		return nil, nil, fmt.Errorf("submit sweep: status %d", resp.StatusCode)
	}

	deadline := time.Now().Add(2 * time.Minute)
	for view.State == serve.StateRunning {
		if time.Now().After(deadline) {
			return nil, nil, fmt.Errorf("sweep %s did not finish in time", view.ID)
		}
		time.Sleep(5 * time.Millisecond)
		resp, err := http.Get(srv.URL + "/v1/sweeps/" + view.ID)
		if err != nil {
			return nil, nil, err
		}
		err = json.NewDecoder(resp.Body).Decode(&view)
		resp.Body.Close()
		if err != nil {
			return nil, nil, err
		}
	}
	secs := time.Since(start).Seconds()
	if view.State != serve.StateDone {
		return nil, nil, fmt.Errorf("sweep ended %s", view.State)
	}

	metrics := map[string]float64{
		"wall_secs":      secs,
		"trials_per_sec": float64(len(view.Cells)*trials) / secs,
	}
	var syncMS float64
	for _, c := range view.Cells {
		if c.Result == nil {
			return nil, nil, fmt.Errorf("cell %d finished without a result", c.Index)
		}
		name := c.Result.Variant
		if name == "" {
			name = "sync"
		}
		// elapsed_ms has 1 ms wire resolution; quick-scale cells can finish
		// under it. Floor at the half-quantum so the metric stays positive —
		// the committed full-scale baseline runs cells well above 1 ms.
		cellMS := float64(c.Result.ElapsedMS)
		if cellMS == 0 {
			cellMS = 0.5
		}
		perTrialMS := cellMS / float64(trials)
		metrics[name+"_trial_ms"] = perTrialMS
		metrics[name+"_mean_rounds"] = c.Result.MeanRounds
		if name == "sync" {
			syncMS = perTrialMS
		}
	}
	if syncMS > 0 {
		for _, c := range view.Cells {
			name := c.Result.Variant
			if name == "" {
				continue
			}
			metrics[name+"_cost_vs_sync"] = metrics[name+"_trial_ms"] / syncMS
		}
	}
	return map[string]any{"family": "random-regular", "n": n, "d": 32, "delta": 0.1,
		"trials": trials, "variants": len(view.Cells), "workers": 4}, metrics, nil
}

// serveEventsFanout measures the event bus end to end over HTTP: one
// sweep publishes round-decimated trajectory frames while K concurrent
// NDJSON watchers tail GET /v1/sweeps/{id}/events, watcher 0 reading
// deliberately slowly. The headline number is delivered frames per
// second across the fan-out; events_dropped records how much the
// drop-oldest rings shed (bursts outrunning a stream goroutine against
// the deliberately small 32-frame ring). The simulations' wall time is
// never a function of the watchers — that invariant is pinned by the
// wedged-subscriber test in internal/serve.
func serveEventsFanout(s Scale) (map[string]any, map[string]float64, error) {
	mgr := serve.NewManager(serve.Config{Workers: 4, RootSeed: s.Seed, EventBuffer: 32})
	srv := httptest.NewServer(serve.NewServer(mgr))
	defer srv.Close()
	defer mgr.Close(context.Background())

	// Cycle runs on the general engine, so rounds cost real wall time and
	// the sweep is still publishing frames when the watchers attach —
	// complete-virtual would finish before the first GET and reduce the
	// scenario to snapshot replay.
	trials, maxRounds := s.pick(64, 8), s.pick(400, 100)
	req := serve.SweepRequest{
		Grid: serve.SweepGrid{
			Graphs: []serve.GraphSpec{{Family: "cycle"}},
			NS:     []int{1 << 12},
			Deltas: []float64{0, 0.05},
			Trials: []int{trials},
		},
		MaxRounds: maxRounds,
		Seed:      s.Seed,
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, nil, err
	}
	start := time.Now()
	resp, err := http.Post(srv.URL+"/v1/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, nil, err
	}
	var accepted serve.SweepView
	derr := json.NewDecoder(resp.Body).Decode(&accepted)
	resp.Body.Close()
	if derr != nil {
		return nil, nil, derr
	}
	if resp.StatusCode != http.StatusAccepted {
		return nil, nil, fmt.Errorf("submit sweep: status %d", resp.StatusCode)
	}

	watchers := s.pick(16, 4)
	// One laggy client per run. Over real TCP the kernel socket buffers
	// absorb a slow *reader*, so server-side drops come from publish
	// bursts outrunning the stream goroutine against the small ring —
	// events_dropped reports whatever load-shedding actually happened.
	slowDelay := time.Millisecond
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		received int64
		firstErr error
	)
	for w := 0; w < watchers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			stream, err := http.Get(srv.URL + "/v1/sweeps/" + accepted.ID + "/events")
			if err == nil && stream.StatusCode != http.StatusOK {
				err = fmt.Errorf("watcher %d: status %d", w, stream.StatusCode)
			}
			var lines int64
			if err == nil {
				sc := bufio.NewScanner(stream.Body)
				sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
				for sc.Scan() {
					lines++
					if w == 0 {
						time.Sleep(slowDelay)
					}
				}
				err = sc.Err()
			}
			if stream != nil {
				stream.Body.Close()
			}
			mu.Lock()
			received += lines
			if err != nil && firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	secs := time.Since(start).Seconds()
	if firstErr != nil {
		return nil, nil, firstErr
	}

	var stats serve.Stats
	resp, err = http.Get(srv.URL + "/v1/stats")
	if err != nil {
		return nil, nil, err
	}
	err = json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	if err != nil {
		return nil, nil, err
	}
	if stats.EventsPublished == 0 {
		return nil, nil, fmt.Errorf("events_published = 0 after a watched sweep")
	}
	return map[string]any{"watchers": watchers, "family": "cycle", "n": 1 << 12, "cells": 2,
			"trials": trials, "max_rounds": maxRounds, "event_buffer": 32},
		map[string]float64{
			"events_delivered_per_sec": float64(received) / secs,
			"events_delivered":         float64(received),
			"events_published":         float64(stats.EventsPublished),
			"events_dropped":           float64(stats.EventsDropped),
		}, nil
}

// warmGraph runs one throwaway single-trial job on gs so the server's
// graph pool holds the topology before a timed scenario touches it.
func warmGraph(url string, gs serve.GraphSpec) error {
	body, err := json.Marshal(spec.RunSpec{Graph: gs, Delta: 0.1, Trials: 1, Seed: 1})
	if err != nil {
		return err
	}
	resp, err := http.Post(url+"/v1/runs", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	var view serve.JobView
	err = json.NewDecoder(resp.Body).Decode(&view)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("warm-up job: status %d", resp.StatusCode)
	}
	deadline := time.Now().Add(time.Minute)
	for {
		if time.Now().After(deadline) {
			return fmt.Errorf("warm-up job %s did not finish in time", view.ID)
		}
		resp, err := http.Get(url + "/v1/runs/" + view.ID)
		if err != nil {
			return err
		}
		err = json.NewDecoder(resp.Body).Decode(&view)
		resp.Body.Close()
		if err != nil {
			return err
		}
		switch view.State {
		case serve.StateDone:
			return nil
		case serve.StateFailed, serve.StateCancelled:
			return fmt.Errorf("warm-up job ended %s: %s", view.State, view.Error)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// submitAndDrain posts `jobs` explicit-seed runs (seed s.Seed+i+1, so a
// repeat pass re-submits the identical specs) and polls them all to
// completion, returning the elapsed seconds.
func submitAndDrain(url string, jobs, n, trials int, seed uint64) (float64, error) {
	body := func(i int) []byte {
		b, _ := json.Marshal(spec.RunSpec{
			Graph:  spec.GraphSpec{Family: "complete-virtual", N: n},
			Delta:  0.1,
			Trials: trials,
			Seed:   seed + uint64(i) + 1,
		})
		return b
	}
	ids := make([]string, 0, jobs)
	start := time.Now()
	for i := 0; i < jobs; i++ {
		resp, err := http.Post(url+"/v1/runs", "application/json", bytes.NewReader(body(i)))
		if err != nil {
			return 0, err
		}
		var view serve.JobView
		err = json.NewDecoder(resp.Body).Decode(&view)
		resp.Body.Close()
		if err != nil {
			return 0, err
		}
		if resp.StatusCode != http.StatusAccepted {
			return 0, fmt.Errorf("submit %d: status %d", i, resp.StatusCode)
		}
		ids = append(ids, view.ID)
	}
	deadline := time.Now().Add(2 * time.Minute)
	for _, id := range ids {
		for {
			if time.Now().After(deadline) {
				return 0, fmt.Errorf("job %s did not finish in time", id)
			}
			resp, err := http.Get(url + "/v1/runs/" + id)
			if err != nil {
				return 0, err
			}
			var view serve.JobView
			err = json.NewDecoder(resp.Body).Decode(&view)
			resp.Body.Close()
			if err != nil {
				return 0, err
			}
			if view.State == serve.StateDone {
				break
			}
			if view.State == serve.StateFailed || view.State == serve.StateCancelled {
				return 0, fmt.Errorf("job %s ended %s: %s", id, view.State, view.Error)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	return time.Since(start).Seconds(), nil
}

// serveMetricsOverhead prices the observability layer against the
// serve/jobs hot path. It runs the same workload on an instrumented
// server, reads back from /metrics how many registry operations that
// workload actually drove (one middleware sample per HTTP request, one
// publish sample per bus event, plus the fixed terminal bundle each
// executed job pays: counters, label lookups, per-stage histograms),
// then times that exact operation mix in isolation against a standalone
// registry with the same label cardinality and bucket layouts. The
// overhead is reported as a fraction of the measured per-job wall time,
// and the scenario errors at >= 2% so an instrumentation regression
// fails CI instead of quietly shifting the baseline.
func serveMetricsOverhead(s Scale) (map[string]any, map[string]float64, error) {
	reg := metrics.NewRegistry()
	mgr := serve.NewManager(serve.Config{Workers: 4, RootSeed: s.Seed, Metrics: reg})
	srv := httptest.NewServer(serve.NewServer(mgr))
	defer srv.Close()
	defer mgr.Close(context.Background())

	jobs := s.pick(48, 8)
	n, trials := 1<<12, 4
	secs, err := submitAndDrain(srv.URL, jobs, n, trials, s.Seed)
	if err != nil {
		return nil, nil, err
	}
	jobNS := secs * 1e9 / float64(jobs)

	reqs, err := scrapeFamilySum(srv.URL, "bo3_http_requests_total")
	if err != nil {
		return nil, nil, err
	}
	pubs, err := scrapeFamilySum(srv.URL, "bo3_bus_published_total")
	if err != nil {
		return nil, nil, err
	}
	reqsPerJob := reqs / float64(jobs)
	pubsPerJob := pubs / float64(jobs)

	micro := metrics.NewRegistry()
	reqC := micro.CounterVec("req_total", "micro", "route", "code")
	reqH := micro.HistogramVec("req_seconds", "micro", metrics.DefBuckets, "route")
	pubC := micro.Counter("pub_total", "micro")
	pubH := micro.Histogram("pub_seconds", "micro", metrics.FastBuckets)
	done := micro.Counter("done_total", "micro")
	engC := micro.CounterVec("eng_total", "micro", "engine")
	varC := micro.CounterVec("var_total", "micro", "variant")
	trialsC := micro.Counter("trials_total", "micro")
	roundsC := micro.Counter("rounds_total", "micro")
	qwH := micro.HistogramVec("qw_seconds", "micro", metrics.DefBuckets, "engine", "variant")
	exH := micro.HistogramVec("ex_seconds", "micro", metrics.DefBuckets, "engine", "variant")
	graphH := micro.Histogram("graph_seconds", "micro", metrics.DefBuckets)
	persistH := micro.Histogram("persist_seconds", "micro", metrics.DefBuckets)
	poolHits := micro.Counter("pool_hits_total", "micro")
	coalesceH := micro.Histogram("coalesce_seconds", "micro", metrics.FastBuckets)

	// Per HTTP request: the ServeHTTP middleware counts the (route, status
	// class) pair and observes the route latency histogram.
	midNS := timePerOp(s.pick(1_000_000, 100_000), func() {
		reqC.With("POST /v1/runs", "2xx").Inc()
		reqH.With("POST /v1/runs").Observe(1.2e-3)
	})
	// Per bus event: the topic counter (resolved at topic creation, so a
	// plain Inc) and the publish-latency observation.
	pubNS := timePerOp(s.pick(1_000_000, 100_000), func() {
		pubC.Inc()
		pubH.Observe(8e-6)
	})
	// Per executed job: the terminal transition's counters and the
	// per-stage queue/exec/graph/persist observations, plus the graph
	// pool's hit count and coalesce-wait sample.
	termNS := timePerOp(s.pick(500_000, 50_000), func() {
		done.Inc()
		engC.With("mean-field").Inc()
		varC.With("sync").Inc()
		trialsC.Add(int64(trials))
		roundsC.Add(64)
		qwH.With("mean-field", "sync").Observe(3e-4)
		exH.With("mean-field", "sync").Observe(2.5e-3)
		graphH.Observe(4e-5)
		persistH.Observe(1e-5)
		poolHits.Inc()
		coalesceH.Observe(2e-6)
	})

	instrNS := reqsPerJob*midNS + pubsPerJob*pubNS + termNS
	frac := instrNS / jobNS
	if frac >= 0.02 {
		return nil, nil, fmt.Errorf("instrumentation costs %.2f%% of the serve/jobs hot path (%.0f ns of %.0f ns/job), want < 2%%",
			frac*100, instrNS, jobNS)
	}
	return map[string]any{"jobs": jobs, "family": "complete-virtual", "n": n, "trials": trials, "workers": 4},
		map[string]float64{
			"job_ns":            jobNS,
			"instr_ns_per_job":  instrNS,
			"overhead_pct":      frac * 100,
			"requests_per_job":  reqsPerJob,
			"publishes_per_job": pubsPerJob,
			"middleware_ns":     midNS,
			"publish_ns":        pubNS,
			"terminal_ns":       termNS,
		}, nil
}

// timePerOp reports the mean cost of op in nanoseconds over a tight loop
// of iters calls.
func timePerOp(iters int, op func()) float64 {
	start := time.Now()
	for i := 0; i < iters; i++ {
		op()
	}
	return float64(time.Since(start)) / float64(iters)
}

// scrapeFamilySum fetches /metrics and sums every sample of one family
// across its label sets, so a scenario can count what a workload
// actually recorded without reaching into server internals.
func scrapeFamilySum(url, name string) (float64, error) {
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var sum float64
	found := false
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, name) {
			continue
		}
		rest := line[len(name):]
		if !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "{") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			return 0, fmt.Errorf("metrics sample %q: %v", line, err)
		}
		sum += v
		found = true
	}
	if err := sc.Err(); err != nil {
		return 0, err
	}
	if !found {
		return 0, fmt.Errorf("no %s samples in /metrics", name)
	}
	return sum, nil
}
