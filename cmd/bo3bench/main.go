// Command bo3bench runs the repository's named performance scenarios and
// emits a machine-readable benchmark report, establishing the perf
// trajectory of the engine across PRs.
//
// Scenarios cover the three layers of the stack: raw round throughput of
// the dynamics engines per graph family and size (including the mean-field
// K_n fast path against the general sharded engine on the same instance),
// trial throughput through the public repro.Runner, and end-to-end job
// throughput through an in-process bo3serve HTTP server.
//
// Usage:
//
//	go run ./cmd/bo3bench                      # all scenarios, report to stdout
//	go run ./cmd/bo3bench -out BENCH_engine.json
//	go run ./cmd/bo3bench -run round/kn       # name-prefix filter
//	go run ./cmd/bo3bench -list               # registered scenario names
//	go run ./cmd/bo3bench -quick              # reduced scale (CI smoke)
//
// The committed BENCH_engine.json at the repository root is regenerated
// with `go run ./cmd/bo3bench -out BENCH_engine.json`; the scenario table
// in docs/PERFORMANCE.md is checked against -list by CI
// (.github/check-api-docs.sh).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"
)

// report is the BENCH_engine.json shape.
type report struct {
	Schema     int                `json:"schema"`
	Generated  string             `json:"generated"`
	GoVersion  string             `json:"go_version"`
	GOMAXPROCS int                `json:"gomaxprocs"`
	Seed       uint64             `json:"seed"`
	Quick      bool               `json:"quick,omitempty"`
	Scenarios  []scenarioResult   `json:"scenarios"`
	Summary    map[string]float64 `json:"summary,omitempty"`
}

type scenarioResult struct {
	Name        string             `json:"name"`
	Description string             `json:"description"`
	Params      map[string]any     `json:"params"`
	Metrics     map[string]float64 `json:"metrics"`
	ElapsedMS   int64              `json:"elapsed_ms"`
}

func main() {
	var (
		list  = flag.Bool("list", false, "print registered scenario names, one per line, and exit")
		runF  = flag.String("run", "", "comma-separated scenario name prefixes to run (default: all)")
		out   = flag.String("out", "", "write the JSON report to this file instead of stdout")
		quick = flag.Bool("quick", false, "reduced scale for CI smoke runs")
		seed  = flag.Uint64("seed", 1, "seed for all scenario randomness")
		knN   = flag.Int("kn-n", 1_000_000, "vertex count for the K_n round-throughput scenarios")
	)
	flag.Parse()

	if *list {
		for _, sc := range scenarios {
			fmt.Println(sc.name)
		}
		return
	}

	scale := Scale{KnN: *knN, Seed: *seed, Quick: *quick}
	if *quick {
		scale.KnN = 1 << 15
	}

	var prefixes []string
	if *runF != "" {
		prefixes = strings.Split(*runF, ",")
	}
	match := func(name string) bool {
		if len(prefixes) == 0 {
			return true
		}
		for _, p := range prefixes {
			if strings.HasPrefix(name, strings.TrimSpace(p)) {
				return true
			}
		}
		return false
	}

	rep := report{
		Schema:     1,
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Seed:       *seed,
		Quick:      *quick,
	}
	for _, sc := range scenarios {
		if !match(sc.name) {
			continue
		}
		fmt.Fprintf(os.Stderr, "bo3bench: running %s...\n", sc.name)
		start := time.Now()
		params, metrics, err := sc.run(scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bo3bench: scenario %s: %v\n", sc.name, err)
			os.Exit(1)
		}
		rep.Scenarios = append(rep.Scenarios, scenarioResult{
			Name:        sc.name,
			Description: sc.description,
			Params:      params,
			Metrics:     metrics,
			ElapsedMS:   time.Since(start).Milliseconds(),
		})
	}
	rep.Summary = summarize(rep.Scenarios)

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bo3bench: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "bo3bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "bo3bench: wrote %s (%d scenarios)\n", *out, len(rep.Scenarios))
}

// summarize derives cross-scenario headline numbers; the mean-field
// speedup is the acceptance criterion the committed report records.
func summarize(results []scenarioResult) map[string]float64 {
	byName := map[string]map[string]float64{}
	for _, r := range results {
		byName[r.Name] = r.Metrics
	}
	sum := map[string]float64{}
	if mf, ok := byName["round/kn-meanfield"]; ok {
		if gen, ok := byName["round/kn-general"]; ok && mf["ns_per_round"] > 0 {
			sum["kn_meanfield_speedup_vs_general"] = gen["ns_per_round"] / mf["ns_per_round"]
		}
	}
	if c, ok := byName["serve/cached-jobs"]; ok && c["hit_speedup"] > 0 {
		sum["serve_cached_hit_speedup"] = c["hit_speedup"]
	}
	return sum
}
