package repro

import (
	"repro/internal/core"
	"repro/internal/dynamics"
	"repro/internal/graph"
	"repro/internal/rng"
)

// Re-exported core types. The aliases keep the public surface in one place
// while the implementations live in focused internal packages.
type (
	// Report summarises one protocol run; see core.Report.
	Report = core.Report
	// Options configures a run; see core.Options.
	Options = core.Options
	// Precondition is the Theorem 1 hypothesis check; see
	// core.Precondition.
	Precondition = core.Precondition
	// Topology is the neighbour-query interface accepted by the engine:
	// any graph-like type with N, Degree, Neighbor, MinDegree and Name.
	Topology = core.Topology
	// Rule selects a Best-of-k protocol; see dynamics.Rule.
	Rule = dynamics.Rule
	// Graph is the CSR graph produced by the generators.
	Graph = graph.Graph
	// RNG is the deterministic random source used across the library.
	RNG = rng.Source
)

// Protocol rules.
var (
	// BestOfThree is the paper's protocol.
	BestOfThree = dynamics.BestOfThree
	// BestOfTwo is the two-sample baseline with keep-own ties.
	BestOfTwo = dynamics.BestOfTwo
	// Voter is the Best-of-1 voter-model baseline.
	Voter = dynamics.Voter
)

// NewRNG returns a deterministic random source for the given seed.
func NewRNG(seed uint64) *RNG { return rng.New(seed) }

// RunBestOfThree runs the paper's protocol (or opt.Rule) on g from an
// i.i.d. initial configuration with P(Blue) = 1/2 − delta.
//
// Deprecated: RunBestOfThree is the v1 entry point, kept as a thin shim.
// It takes no context (so it cannot be cancelled) and specifies the run
// imperatively. New code should describe the run as a RunSpec and execute
// it with NewRunner — the same spec then runs identically through the
// library, the bo3sim CLI, and the bo3serve HTTP API.
func RunBestOfThree(g Topology, delta float64, opt Options) (Report, error) {
	return core.RunBestOfThree(g, delta, opt)
}

// CheckPrecondition evaluates Theorem 1's hypotheses on a concrete
// instance.
func CheckPrecondition(g Topology, delta float64) Precondition {
	return core.CheckPrecondition(g, delta)
}

// Graph generators, re-exported from internal/graph.

// Complete returns the complete graph K_n (materialised; see CompleteVirtual
// for large n).
func Complete(n int) *Graph { return graph.Complete(n) }

// CompleteVirtual returns a virtual K_n that answers neighbour queries
// without storing Θ(n²) edges.
func CompleteVirtual(n int) Topology { return graph.NewKn(n) }

// RandomRegular returns a random d-regular simple graph (n·d even, d < n).
func RandomRegular(n, d int, src *RNG) *Graph { return graph.RandomRegular(n, d, src) }

// Gnp returns an Erdős–Rényi G(n, p) graph.
func Gnp(n int, p float64, src *RNG) *Graph { return graph.Gnp(n, p, src) }

// DenseMinDegree returns a member of the paper's class with minimum degree
// ⌈n^alpha⌉ (a random regular graph, or K_n when alpha = 1).
func DenseMinDegree(n int, alpha float64, src *RNG) *Graph {
	return graph.DenseMinDegree(n, alpha, src)
}

// Cycle returns the n-cycle, a constant-degree graph outside the paper's
// dense class.
func Cycle(n int) *Graph { return graph.Cycle(n) }

// Torus2D returns the rows×cols torus.
func Torus2D(rows, cols int) *Graph { return graph.Torus2D(rows, cols) }

// Hypercube returns the dim-dimensional hypercube.
func Hypercube(dim int) *Graph { return graph.Hypercube(dim) }

// SBM returns a two-community stochastic block model graph.
func SBM(a, b int, pin, pout float64, src *RNG) *Graph {
	return graph.SBM(a, b, pin, pout, src)
}
