package repro_test

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"repro"
)

func testSpec(trials int) repro.RunSpec {
	return repro.RunSpec{
		Graph:  repro.GraphSpec{Family: "random-regular", N: 256, D: 8, Seed: 3},
		Delta:  0.1,
		Trials: trials,
		Seed:   11,
	}
}

// TestRunnerDeterministic: Run is a pure function of the spec — repeated
// runs, and a separately constructed runner, agree outcome for outcome.
func TestRunnerDeterministic(t *testing.T) {
	r1, err := repro.NewRunner(testSpec(5))
	if err != nil {
		t.Fatal(err)
	}
	a, err := r1.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	b, err := r1.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := repro.NewRunner(testSpec(5), repro.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	c, err := r2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Outcomes, b.Outcomes) || !reflect.DeepEqual(a.Outcomes, c.Outcomes) {
		t.Errorf("outcomes differ across identical specs:\n%+v\n%+v\n%+v", a.Outcomes, b.Outcomes, c.Outcomes)
	}
	if a.RedWins+a.ConsensusCount == 0 || a.MeanRounds <= 0 {
		t.Errorf("implausible aggregate: %+v", a)
	}
}

// TestRunnerStreamMatchesRun: the stream delivers exactly the Run
// outcomes, keyed by trial index.
func TestRunnerStreamMatchesRun(t *testing.T) {
	r, err := repro.NewRunner(testSpec(6))
	if err != nil {
		t.Fatal(err)
	}
	want, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	stream, err := r.Stream(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	for res := range stream {
		if res.Err != nil {
			t.Fatalf("trial %d: %v", res.Trial, res.Err)
		}
		seen++
		w := want.Outcomes[res.Trial]
		if res.Seed != w.Seed || res.Report.RedWon != w.RedWon || res.Report.Rounds != w.Rounds {
			t.Errorf("trial %d stream result %+v disagrees with run outcome %+v", res.Trial, res.Report, w)
		}
	}
	if seen != 6 {
		t.Errorf("stream delivered %d results, want 6", seen)
	}
}

// TestRunnerObserver: per-round callbacks replay each trial's trajectory
// exactly.
func TestRunnerObserver(t *testing.T) {
	var mu sync.Mutex
	observed := map[int][]int{} // trial -> blue counts in call order
	r, err := repro.NewRunner(testSpec(3), repro.WithObserver(func(trial, round, blues int) {
		mu.Lock()
		defer mu.Unlock()
		if round != len(observed[trial]) {
			t.Errorf("trial %d: round %d arrived out of order (have %d)", trial, round, len(observed[trial]))
		}
		observed[trial] = append(observed[trial], blues)
	}))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for i, report := range rep.Reports {
		if !reflect.DeepEqual(observed[i], report.BlueTrajectory) {
			t.Errorf("trial %d: observer saw %v, trajectory is %v", i, observed[i], report.BlueTrajectory)
		}
	}
}

// TestRunnerCancellation: a cancelled context surfaces as an error from
// Run, and the stream still closes.
func TestRunnerCancellation(t *testing.T) {
	// A cycle at δ = 0 will not reach consensus: the run burns its full
	// budget, giving cancellation something to interrupt.
	s := repro.RunSpec{
		Graph:     repro.GraphSpec{Family: "cycle", N: 4096},
		Delta:     0,
		Trials:    64,
		MaxRounds: 5000,
		Seed:      1,
	}
	r, err := repro.NewRunner(s)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.Run(ctx); err == nil {
		t.Error("cancelled run returned no error")
	}
}

// TestRunnerOptions: WithMaxRounds overrides the cap, WithTopology injects
// a pre-built graph, and the deprecated v1 shim still works.
func TestRunnerOptions(t *testing.T) {
	s := repro.RunSpec{Graph: repro.GraphSpec{Family: "cycle", N: 64}, Delta: 0, Seed: 2}
	r, err := repro.NewRunner(s, repro.WithMaxRounds(7))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reports[0].Rounds > 7 {
		t.Errorf("WithMaxRounds(7) ran %d rounds", rep.Reports[0].Rounds)
	}

	g := repro.Complete(32)
	r2, err := repro.NewRunner(testSpec(1), repro.WithTopology(g))
	if err != nil {
		t.Fatal(err)
	}
	got, err := r2.Topology()
	if err != nil || got != repro.Topology(g) {
		t.Errorf("WithTopology not honoured: %v, %v", got, err)
	}
	rep2, err := r2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep2.GraphName != g.Name() {
		t.Errorf("report names %q, want injected %q", rep2.GraphName, g.Name())
	}

	// The v1 shim still runs (deprecated, not removed).
	if _, err := repro.RunBestOfThree(repro.Complete(64), 0.2, repro.Options{Seed: 1}); err != nil {
		t.Errorf("v1 shim failed: %v", err)
	}

	// Invalid specs are rejected at construction.
	if _, err := repro.NewRunner(repro.RunSpec{Graph: repro.GraphSpec{Family: "nope"}, Delta: 0.1}); err == nil {
		t.Error("invalid family accepted by NewRunner")
	}
	if _, err := repro.NewRunner(repro.RunSpec{Graph: repro.GraphSpec{Family: "cycle", N: 8}, Delta: 0.9}); err == nil {
		t.Error("invalid delta accepted by NewRunner")
	}
}

func TestRunnerEngineName(t *testing.T) {
	mf, err := repro.NewRunner(repro.RunSpec{
		Graph: repro.GraphSpec{Family: "complete-virtual", N: 128}, Delta: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if name, err := mf.EngineName(); err != nil || name != "mean-field" {
		t.Errorf("complete-virtual EngineName = %q, %v", name, err)
	}

	forced, err := repro.NewRunner(repro.RunSpec{
		Graph: repro.GraphSpec{Family: "complete-virtual", N: 128}, Delta: 0.1, Engine: "general",
	})
	if err != nil {
		t.Fatal(err)
	}
	if name, err := forced.EngineName(); err != nil || name != "general" {
		t.Errorf("forced general EngineName = %q, %v", name, err)
	}

	gen, err := repro.NewRunner(repro.RunSpec{
		Graph: repro.GraphSpec{Family: "random-regular", N: 64, D: 8, Seed: 1}, Delta: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if name, err := gen.EngineName(); err != nil || name != "general" {
		t.Errorf("random-regular EngineName = %q, %v", name, err)
	}
}

// TestRunnerEngineABEquivalence is the A/B-validation knob end to end:
// the same complete-graph spec run on both engines must produce
// statistically compatible aggregates (here: red wins out of trials, with
// a generous tolerance — the engines follow different RNG streams).
func TestRunnerEngineABEquivalence(t *testing.T) {
	base := repro.RunSpec{
		Graph: repro.GraphSpec{Family: "complete-virtual", N: 256}, Delta: 0.15,
		Trials: 64, Seed: 5,
	}
	run := func(engine string) *repro.RunReport {
		s := base
		s.Engine = engine
		r, err := repro.NewRunner(s)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := r.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	mf := run("mean-field")
	gen := run("general")
	// δ = 0.15 on K_256 is far inside the red-wins regime: both engines
	// should win nearly every trial; a large gap means the fast path is
	// sampling a different process.
	if mf.RedWins < 58 || gen.RedWins < 58 {
		t.Errorf("red wins: mean-field %d/64, general %d/64", mf.RedWins, gen.RedWins)
	}
	if mf.ConsensusCount != 64 || gen.ConsensusCount != 64 {
		t.Errorf("consensus: mean-field %d/64, general %d/64", mf.ConsensusCount, gen.ConsensusCount)
	}
}

// TestRunnerVariantStreamRace is the variant tier's concurrency stress: an
// async-variant spec fanned out over parallel trial workers through Stream,
// with a shared observer attached, must (a) race-cleanly execute under `go
// test -race` and (b) deliver outcomes byte-identical to the serial run —
// trial parallelism never changes what a trial computes, for variants
// exactly as for the synchronous default.
func TestRunnerVariantStreamRace(t *testing.T) {
	for _, v := range []*repro.VariantSpec{
		{Name: "async"},
		{Name: "stubborn", StubbornFrac: 0.1},
		{Name: "plurality", Q: 4},
	} {
		v := v
		t.Run(v.Name, func(t *testing.T) {
			s := testSpec(32)
			s.MaxRounds = 200
			s.Variant = v

			serial, err := repro.NewRunner(s, repro.WithWorkers(1))
			if err != nil {
				t.Fatal(err)
			}
			want, err := serial.Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}

			var mu sync.Mutex
			frames := 0
			parallel, err := repro.NewRunner(s, repro.WithWorkers(8),
				repro.WithObserver(func(trial, round, blues int) {
					mu.Lock()
					frames++
					mu.Unlock()
				}))
			if err != nil {
				t.Fatal(err)
			}
			stream, err := parallel.Stream(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			got := make([]repro.TrialOutcome, s.Trials)
			for res := range stream {
				if res.Err != nil {
					t.Fatal(res.Err)
				}
				got[res.Trial] = repro.TrialOutcome{
					Trial:     res.Trial,
					Seed:      res.Seed,
					RedWon:    res.Report.RedWon,
					Consensus: res.Report.Consensus,
					Rounds:    res.Report.Rounds,
				}
			}
			if !reflect.DeepEqual(want.Outcomes, got) {
				t.Errorf("parallel %s outcomes diverge from serial:\nserial   %+v\nparallel %+v", v.Name, want.Outcomes, got)
			}
			if frames == 0 {
				t.Errorf("observer saw no frames")
			}
		})
	}
}
