package repro

import "testing"

func TestPublicAPIEndToEnd(t *testing.T) {
	g := RandomRegular(512, 32, NewRNG(1))
	rep, err := RunBestOfThree(g, 0.1, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Consensus || !rep.RedWon {
		t.Errorf("report = %+v", rep)
	}
	if !CheckPrecondition(g, 0.1).DenseEnough {
		t.Error("dense instance failed the density check")
	}
}

func TestPublicAPIVirtualComplete(t *testing.T) {
	g := CompleteVirtual(1 << 14)
	rep, err := RunBestOfThree(g, 0.05, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.RedWon || rep.Rounds > 20 {
		t.Errorf("K_16384: rounds=%d redWon=%v", rep.Rounds, rep.RedWon)
	}
}

func TestPublicAPIBaselines(t *testing.T) {
	g := Complete(128)
	rep, err := RunBestOfThree(g, 0.2, Options{Seed: 4, Rule: BestOfTwo, MaxRounds: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Consensus {
		t.Error("best-of-2 did not converge on K128")
	}
	repv, err := RunBestOfThree(g, 0.2, Options{Seed: 5, Rule: Voter, MaxRounds: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if !repv.Consensus {
		t.Error("voter model did not converge on K128")
	}
}

func TestPublicAPIGenerators(t *testing.T) {
	src := NewRNG(6)
	if g := Gnp(200, 0.1, src); g.N() != 200 {
		t.Error("Gnp wrong size")
	}
	if g := DenseMinDegree(256, 0.5, src); g.MinDegree() < 16 {
		t.Error("DenseMinDegree too sparse")
	}
	if g := Cycle(10); g.M() != 10 {
		t.Error("Cycle wrong")
	}
	if g := Torus2D(4, 4); g.N() != 16 {
		t.Error("Torus wrong")
	}
	if g := Hypercube(3); g.N() != 8 {
		t.Error("Hypercube wrong")
	}
	if g := SBM(50, 50, 0.3, 0.01, src); g.N() != 100 {
		t.Error("SBM wrong")
	}
}
