// Quickstart: describe a run of the paper's Best-of-Three protocol as a
// declarative RunSpec, execute it with the v2 Runner, and print what
// Theorem 1 predicts versus what happened.
//
//	go run ./examples/quickstart
//
// The same spec — as JSON — is exactly what `bo3sim -spec` runs and what
// `POST /v1/runs` accepts, with byte-identical per-trial outcomes.
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	// A graph inside the paper's class: n = 2^14 vertices with minimum
	// degree d = 128 = n^0.5, i.e. density exponent alpha = 0.5. Each
	// vertex starts Blue with probability 1/2 - delta, Red otherwise.
	spec := repro.RunSpec{
		Graph:  repro.GraphSpec{Family: "random-regular", N: 1 << 14, D: 128, Seed: 1},
		Delta:  0.05,
		Trials: 3,
		Seed:   2,
	}

	runner, err := repro.NewRunner(spec)
	if err != nil {
		log.Fatal(err)
	}

	report, err := runner.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Theorem 1 preconditions:", report.Precondition)
	fmt.Printf("red wins: %d/%d, consensus: %d/%d\n",
		report.RedWins, spec.Trials, report.ConsensusCount, spec.Trials)
	fmt.Printf("mean rounds: %.1f (paper predicts O(log log n + log 1/delta) ~ %d)\n",
		report.MeanRounds, report.PredictedRounds)
	fmt.Println("trial 0 blue count per round:", report.Reports[0].BlueTrajectory)
}
