// Quickstart: run the paper's Best-of-Three protocol once on a dense random
// regular graph and print what Theorem 1 predicts versus what happened.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// A graph inside the paper's class: n = 2^14 vertices with minimum
	// degree d = 128 = n^0.5, i.e. density exponent alpha = 0.5.
	g := repro.RandomRegular(1<<14, 128, repro.NewRNG(1))

	// Each vertex starts Blue with probability 1/2 - delta, Red otherwise.
	const delta = 0.05

	pre := repro.CheckPrecondition(g, delta)
	fmt.Println("Theorem 1 preconditions:", pre)

	report, err := repro.RunBestOfThree(g, delta, repro.Options{Seed: 2})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("consensus reached: %v (red won: %v)\n", report.Consensus, report.RedWon)
	fmt.Printf("rounds: %d (paper predicts O(log log n + log 1/delta) ~ %d)\n",
		report.Rounds, report.PredictedRounds)
	fmt.Println("blue count per round:", report.BlueTrajectory)
}
