// Socialpoll: a scenario from the paper's motivation — distributed
// consensus in a social network. Two communities hold opposing opinions
// (community A is 70% Red, community B is 70% Blue) on a stochastic block
// model; members repeatedly poll three random contacts and adopt the
// majority answer.
//
// With enough cross-community links the network behaves like the paper's
// dense graphs and the global initial majority (Red, since A is larger)
// wins quickly. As the communities segregate, community B converges Blue
// internally and global consensus stalls or flips — the dynamics leave the
// regime Theorem 1 covers.
//
//	go run ./examples/socialpoll
package main

import (
	"fmt"

	"repro/internal/dynamics"
	"repro/internal/graph"
	"repro/internal/opinion"
	"repro/internal/rng"
)

func main() {
	const (
		sizeA  = 3000 // 70% red
		sizeB  = 2000 // 70% blue
		pin    = 0.03
		trials = 15
		budget = 2000
	)

	fmt.Println("two-community polling: A(3000, 70% red) vs B(2000, 70% blue), pin=0.03")
	fmt.Printf("%-28s %12s %10s %12s\n", "network", "mean rounds", "red wins", "consensus")

	for _, tc := range []struct {
		name string
		pout float64
	}{
		{"well-mixed (pout=0.02)", 0.02},
		{"connected  (pout=0.003)", 0.003},
		{"segregated (pout=0.0002)", 0.0002},
	} {
		rounds, redWins, consensus := 0, 0, 0
		for trial := 0; trial < trials; trial++ {
			src := rng.NewFrom(99, uint64(trial))
			g := graph.SBM(sizeA, sizeB, pin, tc.pout, src)

			// Community-correlated initial opinions: A red-leaning, B
			// blue-leaning. Globally red holds (0.7·3000 + 0.3·2000)/5000 =
			// 54% — a delta of 0.04 in the paper's terms.
			init := opinion.NewConfig(g.N())
			for v := 0; v < sizeA; v++ {
				if src.Bernoulli(0.30) {
					init.Set(v, opinion.Blue)
				}
			}
			for v := sizeA; v < g.N(); v++ {
				if src.Bernoulli(0.70) {
					init.Set(v, opinion.Blue)
				}
			}

			p, err := dynamics.New(g, dynamics.BestOfThree, init, dynamics.Options{Seed: uint64(trial)})
			if err != nil {
				panic(err)
			}
			res := p.RunQuiet(budget)
			rounds += res.Rounds
			if res.Winner == opinion.Red {
				redWins++
			}
			if res.Consensus {
				consensus++
			}
		}
		fmt.Printf("%-28s %12.1f %7d/%d %9d/%d\n",
			tc.name, float64(rounds)/trials, redWins, trials, consensus, trials)
	}

	fmt.Println()
	fmt.Println("Well-mixed networks satisfy the paper's dense-graph intuition: the")
	fmt.Println("global majority (red) wins in O(log log n) rounds. Segregated")
	fmt.Println("communities lock into opposing local consensus — the run exhausts its")
	fmt.Println("round budget without global agreement, showing why the theorem needs")
	fmt.Println("the whole graph to be dense, not just each community.")
}
