// Cobra: the duality of Remark 2. A k = 3 COBRA (COalescing-BRAnching)
// random walk started at v0 traces out exactly the random voting-DAG that
// determines v0's opinion T steps later: walk occupancy at time t = DAG
// level size at level T - t. This example runs both on the same graph and
// prints the two trajectories side by side, then measures the walk's cover
// time.
//
//	go run ./examples/cobra
package main

import (
	"fmt"

	"repro/internal/cobra"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/votingdag"
)

func main() {
	const (
		n      = 1 << 12
		d      = 64
		T      = 7
		trials = 400
	)
	src := rng.New(11)
	g := graph.RandomRegular(n, d, src)
	fmt.Printf("graph %s\n\n", g.Name())

	walkSum := make([]float64, T+1)
	dagSum := make([]float64, T+1)
	for i := 0; i < trials; i++ {
		s := rng.NewFrom(11, uint64(i))
		w := cobra.New(g, 3, []int{s.Intn(n)}, s)
		for t, occ := range w.Trajectory(T) {
			walkSum[t] += float64(occ)
		}
		dag := votingdag.Build(g, s.Intn(n), T, s)
		sizes := dag.LevelSizes()
		for t := 0; t <= T; t++ {
			dagSum[t] += float64(sizes[T-t])
		}
	}

	fmt.Println("Remark 2 duality: mean COBRA occupancy vs mean voting-DAG level size")
	fmt.Printf("%6s %18s %18s %10s\n", "step", "walk occupancy", "DAG level size", "3^t cap")
	cap3 := 1.0
	for t := 0; t <= T; t++ {
		fmt.Printf("%6d %18.2f %18.2f %10.0f\n",
			t, walkSum[t]/trials, dagSum[t]/trials, cap3)
		cap3 *= 3
	}

	w := cobra.New(g, 3, []int{0}, rng.New(12))
	fmt.Printf("\ncover time of the k=3 COBRA walk on %s: %d steps\n", g.Name(), w.CoverTime(100000))
	fmt.Println("(polylogarithmic, per Berenbrink–Giakkoupis–Kling / refs [3,6,9])")
}
