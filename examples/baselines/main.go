// Baselines: the introduction's comparison between the voter model
// (Best-of-1), Best-of-2 and Best-of-3 on the same workload — who wins, and
// how fast. The voter model wins Red only in proportion to the initial Red
// share and needs Θ(n) rounds; Best-of-2/3 amplify the majority and finish
// in O(log log n).
//
//	go run ./examples/baselines
package main

import (
	"fmt"

	"repro"
)

func main() {
	const (
		n      = 2048
		delta  = 0.1 // 60% red, 40% blue in expectation
		trials = 20
	)

	fmt.Printf("protocol comparison on K_%d, delta=%.2f, %d trials\n\n", n, delta, trials)
	fmt.Printf("%-16s %12s %10s %12s\n", "protocol", "mean rounds", "red wins", "consensus")

	for _, rule := range []repro.Rule{repro.Voter, repro.BestOfTwo, repro.BestOfThree} {
		budget := 4000
		if rule.K == 1 {
			budget = 20 * n // voter model needs Θ(n) rounds; cap generously
		}
		rounds, redWins, consensus := 0, 0, 0
		for trial := 0; trial < trials; trial++ {
			g := repro.CompleteVirtual(n)
			rep, err := repro.RunBestOfThree(g, delta, repro.Options{
				Seed: uint64(trial), Rule: rule, MaxRounds: budget,
			})
			if err != nil {
				panic(err)
			}
			rounds += rep.Rounds
			if rep.RedWon {
				redWins++
			}
			if rep.Consensus {
				consensus++
			}
		}
		fmt.Printf("%-16s %12.1f %7d/%d %9d/%d\n",
			rule.Name(), float64(rounds)/trials, redWins, trials, consensus, trials)
	}

	fmt.Println()
	fmt.Println("Expected shape (paper, introduction): the voter model is orders of")
	fmt.Println("magnitude slower and only wins red with probability ~(1/2 + delta);")
	fmt.Println("best-of-2 and best-of-3 always drive the initial majority to victory")
	fmt.Println("in a handful of rounds.")
}
