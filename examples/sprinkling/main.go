// Sprinkling walkthrough: reproduce the paper's Figure 1 mechanics on a
// hand-built voting-DAG, then demonstrate the Proposition 3 majorisation on
// sampled DAGs — the pedagogical companion to experiments E4 and E12.
//
//	go run ./examples/sprinkling
package main

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/opinion"
	"repro/internal/rng"
	"repro/internal/theory"
	"repro/internal/votingdag"
)

func main() {
	figure1()
	majorisation()
}

// figure1 builds the 2-level DAG of the paper's Figure 1: two vertices at
// level 1 querying overlapping leaves, so revealing their samples produces
// collisions, which the Sprinkling process re-routes to artificial
// always-Blue leaves.
func figure1() {
	fmt.Println("— Figure 1: the Sprinkling process —")
	d := votingdag.BuildManual([]votingdag.ManualLevel{
		{{V: 20}, {V: 21}, {V: 22}}, // leaves (time 0)
		{{V: 10, Children: [3]int{0, 1, 0}}, {V: 11, Children: [3]int{1, 2, 2}}}, // level 1
		{{V: 1, Children: [3]int{0, 1, 1}}},                                      // root (time 2)
	})
	fmt.Printf("levels: %v, collision levels: %d\n", d.LevelSizes(), d.CollisionLevelCount())

	s := d.Sprinkle(d.T())
	fmt.Printf("after sprinkling: levels %v, %d artificial blue nodes, collision levels: %d\n",
		s.LevelSizes(), s.ArtificialCount(), s.CollisionLevelCount())

	// The coupling X_H <= X_H': a blue root in H forces a blue root in H'.
	fmt.Println("coupling check over all 8 leaf colourings:")
	for mask := 0; mask < 8; mask++ {
		leaf := func(v int) opinion.Colour {
			if mask>>(v-20)&1 == 1 {
				return opinion.Blue
			}
			return opinion.Red
		}
		h := d.Colour(leaf).RootColour()
		hp := s.Colour(leaf).RootColour()
		ok := !(h == opinion.Blue && hp == opinion.Red)
		fmt.Printf("  leaves=%03b  root(H)=%v  root(H')=%v  X_H<=X_H': %v\n", mask, h, hp, ok)
	}
	fmt.Println()
}

// majorisation samples sprinkled DAGs on a dense regular graph and compares
// the empirical blue-root probability with the equation (2) recursion.
func majorisation() {
	fmt.Println("— Proposition 3: the equation (2) recursion majorises the sprinkled DAG —")
	const (
		n      = 1 << 12
		dreg   = 1 << 9 // d = n^0.75
		height = 4
		delta  = 0.1
		trials = 3000
	)
	src := rng.New(7)
	g := graph.RandomRegular(n, dreg, src)

	blue := 0
	for i := 0; i < trials; i++ {
		dag := votingdag.Build(g, src.Intn(n), height, src)
		spr := dag.Sprinkle(height)
		leaf := votingdag.RandomLeafColouring(0.5-delta, src)
		if spr.Colour(leaf).RootColour() == opinion.Blue {
			blue++
		}
	}
	rec := theory.SprinkleRecursion(0.5-delta, height, float64(dreg), false)
	fmt.Printf("graph %s, DAG height %d\n", g.Name(), height)
	fmt.Printf("empirical P(blue root) = %.4f over %d samples\n", float64(blue)/trials, trials)
	fmt.Printf("recursion p_T          = %.4f (must majorise the empirical value)\n", rec[height])
	fmt.Printf("per-level recursion    = %.4v\n", rec)
}
