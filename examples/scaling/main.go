// Scaling study: measure Best-of-Three consensus time as n grows and
// compare against the paper's O(log log n) claim — the laptop-scale version
// of experiment E1.
//
//	go run ./examples/scaling
package main

import (
	"fmt"
	"math"

	"repro"
)

func main() {
	const (
		alpha  = 0.6  // minimum degree n^alpha
		delta  = 0.05 // initial imbalance
		trials = 20
	)

	fmt.Println("Best-of-3 consensus time vs n on random regular graphs (d = n^0.6)")
	fmt.Printf("%8s %6s %12s %14s %10s\n", "n", "d", "mean rounds", "rounds/loglogn", "red wins")

	for exp := 10; exp <= 14; exp++ {
		n := 1 << exp
		d := int(math.Ceil(math.Pow(float64(n), alpha)))
		if (n*d)%2 != 0 {
			d++
		}
		// One graph per size; randomness across trials comes from the
		// initial colouring and the protocol's sampling.
		g := repro.RandomRegular(n, d, repro.NewRNG(uint64(1000*exp)))
		totalRounds, redWins := 0, 0
		for trial := 0; trial < trials; trial++ {
			rep, err := repro.RunBestOfThree(g, delta, repro.Options{Seed: uint64(trial)})
			if err != nil {
				panic(err)
			}
			totalRounds += rep.Rounds
			if rep.RedWon {
				redWins++
			}
		}
		mean := float64(totalRounds) / trials
		loglog := math.Log(math.Log(float64(n)))
		fmt.Printf("%8d %6d %12.2f %14.2f %9d/%d\n",
			n, d, mean, mean/loglog, redWins, trials)
	}

	fmt.Println()
	fmt.Println("The rounds/loglog n column staying flat (while n grows 16x) is the")
	fmt.Println("paper's double-logarithmic scaling; a log n protocol would grow ~1.4x.")
}
