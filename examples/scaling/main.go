// Scaling study: measure Best-of-Three consensus time as n grows and
// compare against the paper's O(log log n) claim — the laptop-scale
// version of experiment E1, written against the v2 spec API. The "dense"
// family derives the minimum degree ⌈n^alpha⌉ itself, so one spec template
// covers every size.
//
//	go run ./examples/scaling
package main

import (
	"context"
	"fmt"
	"math"

	"repro"
)

func main() {
	const (
		alpha  = 0.6  // minimum degree n^alpha
		delta  = 0.05 // initial imbalance
		trials = 20
	)

	fmt.Println("Best-of-3 consensus time vs n on dense random graphs (d = n^0.6)")
	fmt.Printf("%8s %12s %14s %10s\n", "n", "mean rounds", "rounds/loglogn", "red wins")

	for exp := 10; exp <= 14; exp++ {
		n := 1 << exp
		// One graph per size (the generator seed is fixed per spec);
		// randomness across trials comes from the per-trial seed tree.
		runner, err := repro.NewRunner(repro.RunSpec{
			Graph:  repro.GraphSpec{Family: "dense", N: n, Alpha: alpha, Seed: uint64(1000 * exp)},
			Delta:  delta,
			Trials: trials,
			Seed:   uint64(exp),
		})
		if err != nil {
			panic(err)
		}
		rep, err := runner.Run(context.Background())
		if err != nil {
			panic(err)
		}
		loglog := math.Log(math.Log(float64(n)))
		fmt.Printf("%8d %12.2f %14.2f %9d/%d\n",
			n, rep.MeanRounds, rep.MeanRounds/loglog, rep.RedWins, trials)
	}

	fmt.Println()
	fmt.Println("The rounds/loglog n column staying flat (while n grows 16x) is the")
	fmt.Println("paper's double-logarithmic scaling; a log n protocol would grow ~1.4x.")
}
