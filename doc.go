// Package repro is a from-scratch Go reproduction of "Best-of-Three Voting
// on Dense Graphs" (Nan Kang and Nicolás Rivera, SPAA 2019,
// arXiv:1903.09524).
//
// The paper studies the synchronous Best-of-Three opinion dynamic: every
// vertex of a graph holds opinion Red or Blue, and in each round every
// vertex samples three random neighbours (with replacement) and adopts the
// majority opinion among the samples. The main theorem says that on any
// graph with minimum degree d = n^α, α = Ω(1/log log n), started from
// i.i.d. opinions with P(Blue) = 1/2 − δ and δ ≥ (log d)^−C, the dynamic
// reaches Red consensus within O(log log n) + O(log δ⁻¹) rounds with high
// probability.
//
// The root package exposes the high-level API. A run is described
// declaratively as a RunSpec (package spec, re-exported here) and executed
// by a Runner:
//
//	runner, err := repro.NewRunner(repro.RunSpec{
//		Graph:  repro.GraphSpec{Family: "random-regular", N: 1 << 14, D: 128, Seed: 1},
//		Delta:  0.05,
//		Trials: 8,
//		Seed:   2,
//	})
//	report, err := runner.Run(ctx)
//	// report.RedWins, report.MeanRounds, report.PredictedRounds, ...
//
// The same spec — serialised to JSON — is what `bo3sim -spec` runs and
// what `POST /v1/runs` on bo3serve accepts, with byte-identical per-trial
// outcomes across all three entry points: trial i always runs with
// rng.ChildSeed(Seed, i) on the same engine configuration. Runner.Stream
// delivers outcomes as trials complete; WithObserver taps per-round blue
// counts. The imperative v1 entry point RunBestOfThree remains as a
// deprecated shim.
//
// Rounds execute on one of two engines behind an automatic dispatch seam
// (spec field "engine", default "auto"): complete-graph specs
// (complete-virtual) take a mean-field fast path that advances a round in
// O(1) — two binomial draws against the exact blue-count chain — while
// everything else runs the general sharded engine with batched sampling.
// "general" opts a spec out for A/B validation; docs/PERFORMANCE.md
// documents the architecture and the committed BENCH_engine.json baseline
// (regenerable with cmd/bo3bench).
//
// Underneath sit the substrates, each its own package under internal/:
// graph generators and analyses (internal/graph), the parallel Best-of-k
// engine and baselines (internal/dynamics), the voting-DAG dual object
// with the Sprinkling process and the ternary-tree lemmas
// (internal/votingdag), the paper's recursions in exact form
// (internal/theory), the COBRA walk of Remark 2 (internal/cobra), and the
// experiment harness (internal/sim, internal/experiments).
//
// Every quantitative claim of the paper has a reproduction experiment
// (E1–E21, catalogued in DESIGN.md), regenerable via cmd/bo3sweep or the
// benchmarks in bench_test.go; EXPERIMENTS.md records paper-vs-measured
// outcomes.
//
// The engine also runs as a long-lived service: cmd/bo3serve exposes
// simulation jobs over HTTP/JSON (internal/serve), executing them on a
// bounded worker pool with an LRU-cached graph pool and per-job seed
// derivation, so repeated sweeps over one topology skip the generator
// path while staying exactly reproducible. cmd/bo3sweep -serve replays a
// sweep through a running instance as a load test.
package repro
