package spec

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"strings"

	"repro/internal/rng"
)

// Grid is the cross-product parameter grid of a sweep: the one type both
// the experiment suite and the bo3serve /v1/sweeps endpoint enumerate
// cells from. Cells are the product of every non-empty axis; empty
// optional axes take the documented single-value default. Expansion order
// puts the topology axes outermost, so consecutive cells share a graph and
// all but the first per topology hit a graph pool.
type Grid struct {
	// Graphs lists the topology templates. With NS set, each template's N
	// is overridden by every value of the NS axis, so templates may leave
	// it zero; every family must then be n-parameterised (FamilyUsesN).
	Graphs []GraphSpec `json:"graphs"`
	// NS is the optional vertex-count axis crossed with Graphs.
	NS []int `json:"ns,omitempty"`
	// Deltas is the initial-imbalance axis, each in [0, 0.5].
	Deltas []float64 `json:"deltas"`
	// Ks is the Best-of-k sample-count axis (default [3]).
	Ks []int `json:"ks,omitempty"`
	// Ties is the tie-rule axis, "keep" or "random" (default ["keep"]).
	Ties []string `json:"ties,omitempty"`
	// Noises is the per-sample misreporting-probability axis, each in
	// [0, 0.5]. Empty keeps the noiseless protocol (like NS, the default
	// lives in expansion, not Normalize, so wire echoes of noiseless
	// grids are unchanged).
	Noises []float64 `json:"noises,omitempty"`
	// Variants is the opinion-dynamic axis: each entry is a full variant
	// selection (name plus its parameters), so one grid can sweep e.g.
	// sync against async, or plurality at several q values. Empty keeps
	// the synchronous default (like Noises, the default lives in
	// expansion).
	Variants []VariantSpec `json:"variants,omitempty"`
	// Trials is the trials-per-cell axis (default [1]).
	Trials []int `json:"trials,omitempty"`
}

// Normalize applies the single-value axis defaults in place.
func (g *Grid) Normalize() {
	if len(g.Ks) == 0 {
		g.Ks = []int{3}
	}
	if len(g.Ties) == 0 {
		g.Ties = []string{"keep"}
	}
	if len(g.Trials) == 0 {
		g.Trials = []int{1}
	}
}

// Validate checks the grid's shape: at least one topology (of a
// registered family) and one delta, and an NS axis only over families
// that consume N. Per-cell parameter validation happens on the expanded
// RunSpecs.
func (g Grid) Validate() error {
	if len(g.Graphs) == 0 {
		return fmt.Errorf("sweep: grid.graphs must list at least one topology")
	}
	if len(g.Deltas) == 0 {
		return fmt.Errorf("sweep: grid.deltas must list at least one imbalance")
	}
	for _, gs := range g.Graphs {
		// Resolve the family first so an unknown name reports as unknown,
		// not as "does not take n".
		if _, err := gs.family(); err != nil {
			return err
		}
		if len(g.NS) > 0 && !FamilyUsesN(gs.Family) {
			return fmt.Errorf("sweep: family %q does not take n; drop it from grid.graphs or omit grid.ns", gs.Family)
		}
	}
	for _, v := range g.Variants {
		// Resolve the name against the registry up front so a typo fails
		// the whole grid with one message, not one error per expanded
		// cell. Parameter validation happens on the expanded RunSpecs.
		vs := v
		if _, err := variantFor(&vs); err != nil {
			return fmt.Errorf("sweep: %w", err)
		}
	}
	return nil
}

// CellCount multiplies the axis lengths with overflow checks, so a huge
// grid reports "too many cells" instead of wrapping into a small positive
// count that slips past a cap.
func (g Grid) CellCount() (int, error) {
	return safeProduct(len(g.Graphs), max(len(g.NS), 1), len(g.Deltas), len(g.Ks), len(g.Ties), max(len(g.Noises), 1), max(len(g.Variants), 1), len(g.Trials))
}

// safeProduct multiplies axis lengths, treating empty axes as single-value
// and failing on int overflow rather than wrapping.
func safeProduct(axes ...int) (int, error) {
	count := 1
	for _, axis := range axes {
		if axis == 0 {
			axis = 1
		}
		if count > math.MaxInt/axis {
			return 0, fmt.Errorf("sweep: grid cell count overflows")
		}
		count *= axis
	}
	return count, nil
}

// Key returns a canonical identity string for the grid: two grids that
// expand to the identical cells (given equal seed and round cap) render
// identically. Single-value axis defaults are resolved first, so a
// normalized grid and its shorthand share a key; the graph axis renders
// each template's own canonical key.
func (g Grid) Key() string {
	ks, ties, trials := g.Ks, g.Ties, g.Trials
	if len(ks) == 0 {
		ks = []int{3}
	}
	if len(ties) == 0 {
		ties = []string{"keep"}
	}
	if len(trials) == 0 {
		trials = []int{1}
	}
	graphs := make([]string, len(g.Graphs))
	for i, gs := range g.Graphs {
		graphs[i] = gs.Key()
	}
	parts := []string{
		kv("graphs", "["+strings.Join(graphs, ";")+"]"),
		kv("ns", g.NS),
		kv("deltas", g.Deltas),
		kv("ks", ks),
		kv("ties", ties),
		kv("noises", g.Noises),
		kv("trials", trials),
	}
	if len(g.Variants) > 0 {
		// Appended conditionally (like the RunSpec noise fragment) so every
		// pre-variant grid key — and therefore every recorded sweep content
		// key and journal high-water mark — is unchanged.
		variants := make([]string, len(g.Variants))
		for i, v := range g.Variants {
			variants[i] = v.key()
		}
		parts = append(parts, kv("variants", "["+strings.Join(variants, ";")+"]"))
	}
	return strings.Join(parts, "|")
}

// ContentKey returns the content address of the whole sweep: the hex
// SHA-256 over the grid's canonical key plus the sweep seed and round
// cap. Cell outcomes are a pure function of these inputs (Expand derives
// every cell spec and seed from them), so two sweeps with equal content
// keys compute identical aggregates — which is what lets bo3serve answer
// a repeated POST /v1/sweeps of a completed grid entirely from its
// journal.
func (g Grid) ContentKey(sweepSeed uint64, maxRounds int) string {
	id := g.Key() + "|" + kv("seed", sweepSeed) + "|" + kv("max_rounds", maxRounds)
	sum := sha256.Sum256([]byte(id))
	return hex.EncodeToString(sum[:])
}

// Expand enumerates the grid into per-cell run specs, topology axes
// outermost. Cell i gets the deterministic seed rng.ChildSeed(sweepSeed, i)
// regardless of scheduling, so two sweeps with the same seed and grid
// produce identical cells. maxRounds is applied to every cell.
func (g Grid) Expand(sweepSeed uint64, maxRounds int) []RunSpec {
	ns := g.NS
	if len(ns) == 0 {
		ns = []int{0} // keep each template's own N
	}
	noises := g.Noises
	if len(noises) == 0 {
		noises = []float64{0} // noiseless protocol
	}
	variants := g.Variants
	if len(variants) == 0 {
		variants = []VariantSpec{{}} // synchronous default
	}
	cells := make([]RunSpec, 0)
	for _, tmpl := range g.Graphs {
		for _, n := range ns {
			gs := tmpl
			if n > 0 {
				gs.N = n
			}
			for _, delta := range g.Deltas {
				for _, k := range g.Ks {
					for _, tie := range g.Ties {
						for _, noise := range noises {
							for _, vr := range variants {
								for _, trials := range g.Trials {
									cell := RunSpec{
										Graph:     gs,
										Delta:     delta,
										Trials:    trials,
										MaxRounds: maxRounds,
										Seed:      rng.ChildSeed(sweepSeed, uint64(len(cells))),
										Rule:      &RuleSpec{K: k, Tie: tie, Noise: noise},
									}
									if vr != (VariantSpec{}) {
										v := vr
										cell.Variant = &v
									}
									cells = append(cells, cell)
								}
							}
						}
					}
				}
			}
		}
	}
	return cells
}
