package spec

import "math"

// Limits bound what a spec may describe. The zero value is not useful; use
// Unlimited for library contexts or construct explicit limits (the HTTP
// server derives its admission limits from flags and converts to this
// type).
type Limits struct {
	// MaxN is the largest admissible vertex count.
	MaxN int
	// MaxEdges is the largest admissible materialised edge count.
	MaxEdges int64
	// MaxTrials caps trials per run.
	MaxTrials int
	// MaxRounds caps the per-run round budget a spec may request.
	MaxRounds int
}

// Unlimited returns limits that only rule out overflow-scale requests, for
// library and CLI use where the caller owns the machine. The vertex cap
// stays below 2³¹ so downstream int arithmetic (edge counts, bitset sizes)
// cannot overflow even on 32-bit builds.
func Unlimited() Limits {
	return Limits{
		MaxN:      math.MaxInt32,
		MaxEdges:  math.MaxInt64 / 4,
		MaxTrials: math.MaxInt32,
		MaxRounds: math.MaxInt32,
	}
}
