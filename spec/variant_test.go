package spec

import (
	"encoding/json"
	"strings"
	"testing"
)

func variantSpec(v *VariantSpec) RunSpec {
	return RunSpec{
		Graph:   GraphSpec{Family: "complete", N: 32},
		Delta:   0.1,
		Trials:  2,
		Seed:    7,
		Variant: v,
	}
}

// TestVariantsRegistered pins the registered variant set: the wire API, the
// docs table, and the equivalence tests all enumerate exactly these.
func TestVariantsRegistered(t *testing.T) {
	want := []string{"async", "plurality", "stubborn", "sync"}
	got := Variants()
	if len(got) != len(want) {
		t.Fatalf("Variants() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Variants() = %v, want %v", got, want)
		}
	}
}

// TestVariantValidation exercises the registry's per-variant parameter and
// rule checks: every unsupported combination must be rejected at
// validation, before any entry point executes a different dynamic than the
// caller asked for.
func TestVariantValidation(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*RunSpec)
		wantErr string // "" = must validate
	}{
		{"nil variant", func(s *RunSpec) { s.Variant = nil }, ""},
		{"explicit sync", func(s *RunSpec) { s.Variant = &VariantSpec{Name: "sync"} }, ""},
		{"empty name resolves sync", func(s *RunSpec) { s.Variant = &VariantSpec{} }, ""},
		{"async", func(s *RunSpec) { s.Variant = &VariantSpec{Name: "async"} }, ""},
		{"async with noise", func(s *RunSpec) {
			s.Variant = &VariantSpec{Name: "async"}
			s.Rule = &RuleSpec{K: 3, Noise: 0.1}
		}, ""},
		{"stubborn", func(s *RunSpec) { s.Variant = &VariantSpec{Name: "stubborn", StubbornFrac: 0.05} }, ""},
		{"plurality", func(s *RunSpec) { s.Variant = &VariantSpec{Name: "plurality", Q: 5} }, ""},

		{"unknown name", func(s *RunSpec) { s.Variant = &VariantSpec{Name: "turbo"} }, "unknown variant"},
		{"sync stray frac", func(s *RunSpec) { s.Variant = &VariantSpec{Name: "sync", StubbornFrac: 0.1} }, "stubborn_frac"},
		{"sync stray q", func(s *RunSpec) { s.Variant = &VariantSpec{Name: "sync", Q: 4} }, "only consumed by the plurality"},
		{"async stray q", func(s *RunSpec) { s.Variant = &VariantSpec{Name: "async", Q: 4} }, "only consumed by the plurality"},
		{"async noreplace", func(s *RunSpec) {
			s.Variant = &VariantSpec{Name: "async"}
			s.Rule = &RuleSpec{K: 3, WithoutReplacement: true}
		}, "without-replacement"},
		{"stubborn missing frac", func(s *RunSpec) { s.Variant = &VariantSpec{Name: "stubborn"} }, "stubborn_frac in (0, 0.5]"},
		{"stubborn frac too big", func(s *RunSpec) { s.Variant = &VariantSpec{Name: "stubborn", StubbornFrac: 0.6} }, "stubborn_frac in (0, 0.5]"},
		{"stubborn stray q", func(s *RunSpec) { s.Variant = &VariantSpec{Name: "stubborn", StubbornFrac: 0.1, Q: 3} }, "only consumed by the plurality"},
		{"plurality missing q", func(s *RunSpec) { s.Variant = &VariantSpec{Name: "plurality"} }, "q in [2, 256]"},
		{"plurality q too big", func(s *RunSpec) { s.Variant = &VariantSpec{Name: "plurality", Q: 300} }, "q in [2, 256]"},
		{"plurality stray frac", func(s *RunSpec) { s.Variant = &VariantSpec{Name: "plurality", Q: 4, StubbornFrac: 0.1} }, "only consumed by the stubborn"},
		{"plurality k=5", func(s *RunSpec) {
			s.Variant = &VariantSpec{Name: "plurality", Q: 4}
			s.Rule = &RuleSpec{K: 5}
		}, "only k = 3"},
		{"plurality noise", func(s *RunSpec) {
			s.Variant = &VariantSpec{Name: "plurality", Q: 4}
			s.Rule = &RuleSpec{K: 3, Noise: 0.05}
		}, "noise"},
		{"plurality noreplace", func(s *RunSpec) {
			s.Variant = &VariantSpec{Name: "plurality", Q: 4}
			s.Rule = &RuleSpec{K: 3, WithoutReplacement: true}
		}, "without-replacement"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := variantSpec(nil)
			tc.mutate(&s)
			err := s.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want ok", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

// TestVariantEngineRejections proves every non-sync variant × explicit
// mean-field engine combination is rejected at validation — one subtest per
// registered variant, so a newly registered variant is forced to take a
// position.
func TestVariantEngineRejections(t *testing.T) {
	params := map[string]VariantSpec{
		"sync":      {Name: "sync"},
		"async":     {Name: "async"},
		"stubborn":  {Name: "stubborn", StubbornFrac: 0.1},
		"plurality": {Name: "plurality", Q: 4},
	}
	for _, name := range Variants() {
		v, ok := params[name]
		if !ok {
			t.Fatalf("variant %q registered but missing from the engine-rejection cases; add one", name)
		}
		t.Run(name, func(t *testing.T) {
			s := variantSpec(&v)
			s.Graph = GraphSpec{Family: "complete-virtual", N: 32} // mean-field eligible
			s.Engine = "mean-field"
			err := s.Validate()
			if name == "sync" {
				if err != nil {
					t.Fatalf("sync × mean-field must validate, got %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), "mean-field") {
				t.Fatalf("%s × mean-field: Validate() = %v, want mean-field rejection", name, err)
			}
			// The auto engine resolves non-sync variants to the general
			// engine instead of rejecting.
			s.Engine = ""
			if err := s.Validate(); err != nil {
				t.Fatalf("%s × auto engine must validate, got %v", name, err)
			}
		})
	}
}

// TestVariantKeys pins the canonical-key contract of the variant axis:
// the default is key-invisible (every pre-variant key unchanged), each
// non-default variant extends the key, and parameterised variants include
// their parameters — so a stubborn run can never be answered from a plain
// run's store record, nor frac=0.05 from frac=0.1.
func TestVariantKeys(t *testing.T) {
	base := variantSpec(nil)
	baseKey := base.Key()
	if strings.Contains(baseKey, "variant") {
		t.Fatalf("nil-variant key %q mentions the variant axis; pre-variant keys must be unchanged", baseKey)
	}
	for _, v := range []*VariantSpec{{Name: "sync"}, {}} {
		s := variantSpec(v)
		if s.Key() != baseKey {
			t.Fatalf("explicit sync key %q != nil-variant key %q", s.Key(), baseKey)
		}
	}
	keys := map[string]string{"": baseKey}
	for name, v := range map[string]*VariantSpec{
		"async":         {Name: "async"},
		"stubborn-0.05": {Name: "stubborn", StubbornFrac: 0.05},
		"stubborn-0.1":  {Name: "stubborn", StubbornFrac: 0.1},
		"plurality-q4":  {Name: "plurality", Q: 4},
		"plurality-q5":  {Name: "plurality", Q: 5},
	} {
		k := variantSpec(v).Key()
		for other, ok := range keys {
			if k == ok {
				t.Fatalf("variant %q and %q share the key %q", name, other, k)
			}
		}
		keys[name] = k
		if ck := variantSpec(v).ContentKey(); ck == base.ContentKey() {
			t.Fatalf("variant %q content key collides with the plain run's", name)
		}
	}
}

// TestVariantJSONRoundTrip checks that the wire shape round-trips and that
// an absent variant stays absent (no "variant" key is ever emitted for
// plain runs, keeping pre-variant request/response bytes identical).
func TestVariantJSONRoundTrip(t *testing.T) {
	plain, err := json.Marshal(variantSpec(nil))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(plain), "variant") {
		t.Fatalf("plain spec JSON %s mentions variant", plain)
	}
	s := variantSpec(&VariantSpec{Name: "stubborn", StubbornFrac: 0.05})
	raw, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back RunSpec
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Key() != s.Key() {
		t.Fatalf("round-tripped key %q != original %q", back.Key(), s.Key())
	}
}

// TestGridVariantsAxis checks the sweep axis: validation resolves names up
// front, the cell count multiplies in, expansion attaches the variant to
// every cell (leaving the zero-entry default nil so pre-variant grids
// expand byte-identically), and the grid key is extended only when the
// axis is present.
func TestGridVariantsAxis(t *testing.T) {
	base := Grid{
		Graphs: []GraphSpec{{Family: "complete", N: 32}},
		Deltas: []float64{0.1, 0.2},
		Trials: []int{2},
	}
	base.Normalize()
	baseKey := base.Key()
	baseCells := base.Expand(9, 64)

	bad := base
	bad.Variants = []VariantSpec{{Name: "nope"}}
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "unknown variant") {
		t.Fatalf("grid with unknown variant: Validate() = %v, want unknown-variant error", err)
	}

	g := base
	g.Variants = []VariantSpec{{Name: "sync"}, {Name: "async"}}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(g.Key(), "variants=[sync;async]") {
		t.Fatalf("grid key %q missing the variant axis", g.Key())
	}
	if g.Key() == baseKey {
		t.Fatalf("variant axis did not change the grid key")
	}
	n, err := g.CellCount()
	if err != nil {
		t.Fatal(err)
	}
	if want := len(baseCells) * 2; n != want {
		t.Fatalf("CellCount() = %d, want %d", n, want)
	}
	cells := g.Expand(9, 64)
	if len(cells) != n {
		t.Fatalf("Expand produced %d cells, want %d", len(cells), n)
	}
	var syncs, asyncs int
	for _, c := range cells {
		if err := c.Validate(); err != nil {
			t.Fatalf("expanded cell invalid: %v", err)
		}
		switch c.VariantName() {
		case "sync":
			syncs++
		case "async":
			asyncs++
		}
	}
	if syncs != len(baseCells) || asyncs != len(baseCells) {
		t.Fatalf("expansion split sync=%d async=%d, want %d each", syncs, asyncs, len(baseCells))
	}

	// An absent axis expands byte-identically to the pre-variant grid.
	again := base.Expand(9, 64)
	for i := range again {
		if again[i].Variant != nil {
			t.Fatalf("cell %d of a variant-free grid carries a variant", i)
		}
		if again[i].Key() != baseCells[i].Key() {
			t.Fatalf("variant-free expansion changed cell %d's key", i)
		}
	}
}
