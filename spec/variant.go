package spec

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/dynamics"
)

// VariantSpec selects which opinion dynamic a RunSpec executes, plus the
// variant's own parameters. Nil (or Name "" / "sync") is the paper's
// synchronous dynamic; the other registered variants expose the extension
// dynamics end to end (library, CLIs, server, store):
//
//	{"name": "async"}                            sequential activation (E18)
//	{"name": "stubborn", "stubborn_frac": 0.05}  frozen Blue zealots (E15)
//	{"name": "plurality", "q": 5}                q-opinion Best-of-3 (E14)
//
// Like the engine knob, the variant participates in Key()/ContentKey()
// (only when non-default, so pre-existing keys are unchanged): a stubborn
// run is never answered from a plain run's store record.
type VariantSpec struct {
	// Name is a registered variant: "sync" (default), "async", "stubborn",
	// or "plurality". See Variants().
	Name string `json:"name"`
	// StubbornFrac is the fraction of vertices frozen Blue, in (0, 0.5].
	// Required by "stubborn", rejected elsewhere.
	StubbornFrac float64 `json:"stubborn_frac,omitempty"`
	// Q is the opinion-alphabet size, in [2, 256]. Required by
	// "plurality", rejected elsewhere. Opinion 0 plays the Red role with
	// initial share 1/q + delta.
	Q int `json:"q,omitempty"`
}

// variantDef is one registry entry: the per-variant parameter/rule
// validation and the canonical key fragment. The registry mirrors the
// graph-family registry in graph.go — names are validated, parameters are
// checked per variant, and unknown names fail loudly.
type variantDef struct {
	name string
	// validate checks the variant parameters and the resolved protocol
	// rule (some variants implement only part of the rule surface).
	validate func(v VariantSpec, rule dynamics.Rule) error
	// keyParams renders the parameters the variant consumes into canonical
	// key fragments; stray parameters are rejected by validate, never
	// silently folded into a key.
	keyParams func(v VariantSpec) []string
}

var variantDefs = map[string]*variantDef{}

func registerVariant(d *variantDef) {
	if _, dup := variantDefs[d.name]; dup {
		panic("spec: duplicate variant " + d.name)
	}
	variantDefs[d.name] = d
}

func init() {
	noParams := func(VariantSpec) []string { return nil }
	// rejectStray fails on parameters the variant does not consume, so a
	// typo like {"name": "async", "q": 5} surfaces instead of silently
	// running a different dynamic than the caller imagined.
	rejectStray := func(name string, v VariantSpec, frac, q bool) error {
		if !frac && v.StubbornFrac != 0 {
			return fmt.Errorf("variant: stubborn_frac is only consumed by the stubborn variant, not %q", name)
		}
		if !q && v.Q != 0 {
			return fmt.Errorf("variant: q is only consumed by the plurality variant, not %q", name)
		}
		return nil
	}
	registerVariant(&variantDef{
		name: core.VariantSync,
		validate: func(v VariantSpec, _ dynamics.Rule) error {
			return rejectStray(core.VariantSync, v, false, false)
		},
		keyParams: noParams,
	})
	registerVariant(&variantDef{
		name: core.VariantAsync,
		validate: func(v VariantSpec, rule dynamics.Rule) error {
			if err := rejectStray(core.VariantAsync, v, false, false); err != nil {
				return err
			}
			if rule.WithoutReplacement {
				return fmt.Errorf("variant: async does not implement without-replacement sampling")
			}
			return nil
		},
		keyParams: noParams,
	})
	registerVariant(&variantDef{
		name: core.VariantStubborn,
		validate: func(v VariantSpec, _ dynamics.Rule) error {
			if err := rejectStray(core.VariantStubborn, v, true, false); err != nil {
				return err
			}
			if v.StubbornFrac <= 0 || v.StubbornFrac > 0.5 {
				return fmt.Errorf("variant: stubborn requires stubborn_frac in (0, 0.5], got %v", v.StubbornFrac)
			}
			return nil
		},
		keyParams: func(v VariantSpec) []string { return []string{kv("stubborn_frac", v.StubbornFrac)} },
	})
	registerVariant(&variantDef{
		name: core.VariantPlurality,
		validate: func(v VariantSpec, rule dynamics.Rule) error {
			if err := rejectStray(core.VariantPlurality, v, false, true); err != nil {
				return err
			}
			if v.Q < 2 || v.Q > 256 {
				return fmt.Errorf("variant: plurality requires q in [2, 256], got %d", v.Q)
			}
			// The q-opinion engine is hardwired Best-of-Three; only the tie
			// rule carries over (keep → TieKeep, random → TieRandomSample).
			if rule.K != 3 {
				return fmt.Errorf("variant: plurality implements only k = 3 (Best-of-Three), got k = %d", rule.K)
			}
			if rule.Noise > 0 {
				return fmt.Errorf("variant: plurality does not implement per-sample noise")
			}
			if rule.WithoutReplacement {
				return fmt.Errorf("variant: plurality does not implement without-replacement sampling")
			}
			return nil
		},
		keyParams: func(v VariantSpec) []string { return []string{kv("q", v.Q)} },
	})
}

// Variants returns the registered variant names, sorted. CI diffs this
// list (via internal/tools/specvariants) against the variant table in
// docs/API.md.
func Variants() []string {
	names := make([]string, 0, len(variantDefs))
	for name := range variantDefs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// variantFor resolves a (possibly nil) VariantSpec to its registry entry;
// nil and "" resolve to the synchronous default.
func variantFor(v *VariantSpec) (*variantDef, error) {
	name := core.VariantSync
	if v != nil && v.Name != "" {
		name = v.Name
	}
	def, ok := variantDefs[name]
	if !ok {
		return nil, fmt.Errorf("variant: unknown variant %q (registered: %s)", name, strings.Join(Variants(), ", "))
	}
	return def, nil
}

// key renders the variant's canonical key fragment: the resolved name plus
// the parameters the variant consumes, e.g. "stubborn,stubborn_frac=0.05".
func (v VariantSpec) key() string {
	def, err := variantFor(&v)
	if err != nil {
		// Unknown names never validate, so they never reach a stored key;
		// render them verbatim so even an unvalidated Key() is total.
		return v.Name
	}
	return strings.Join(append([]string{def.name}, def.keyParams(v)...), ",")
}

// VariantName resolves the spec's effective variant name ("sync" when the
// field is nil or names the default).
func (s RunSpec) VariantName() string {
	if s.Variant == nil || s.Variant.Name == "" {
		return core.VariantSync
	}
	return s.Variant.Name
}

// CoreVariant converts the spec's variant selection to the core dispatch
// value.
func (s RunSpec) CoreVariant() core.Variant {
	v := core.Variant{Name: s.VariantName()}
	if s.Variant != nil {
		v.StubbornFrac = s.Variant.StubbornFrac
		v.Q = s.Variant.Q
	}
	return v
}

// validateVariant resolves the variant against the registry and checks its
// parameters and engine compatibility: only the synchronous default may run
// the mean-field fast path (frozen vertices, sequential activation, and
// q > 2 opinions all break the exchangeable-blue-count model the fast path
// depends on).
func (s *RunSpec) validateVariant(rule dynamics.Rule) error {
	def, err := variantFor(s.Variant)
	if err != nil {
		return err
	}
	if def.name != core.VariantSync && s.Engine == "mean-field" {
		return fmt.Errorf("variant: engine \"mean-field\" supports only the synchronous default dynamic, not variant %q", def.name)
	}
	var v VariantSpec
	if s.Variant != nil {
		v = *s.Variant
	}
	return def.validate(v, rule)
}
