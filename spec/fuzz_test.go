package spec

import (
	"strings"
	"testing"
)

// FuzzRunSpecVariant fuzzes the variant axis against the registry and
// checks the contract the store and equivalence tiers rest on: validation
// is total (no panics), keys are deterministic, the sync default is
// key-invisible, and any two specs differing in effective variant
// parameters render different keys.
func FuzzRunSpecVariant(f *testing.F) {
	names := append(Variants(), "", "no-such-variant")
	engines := []string{"", "auto", "general", "mean-field"}
	f.Add(0, 0.0, 0, 0, 0.0, false, 0)
	f.Add(2, 0.05, 0, 1, 0.0, false, 1)
	f.Add(3, 0.0, 5, 2, 0.1, true, 3)
	f.Add(5, -1.0, 1<<30, 3, 1.0, false, 99)
	f.Fuzz(func(t *testing.T, nameIdx int, frac float64, q, engIdx int, noise float64, noReplace bool, k int) {
		name := "no-such-variant"
		if nameIdx >= 0 && nameIdx < len(names) {
			name = names[nameIdx]
		}
		engine := "mean-field"
		if engIdx >= 0 && engIdx < len(engines) {
			engine = engines[engIdx]
		}
		s := RunSpec{
			Graph:   GraphSpec{Family: "complete-virtual", N: 32},
			Delta:   0.1,
			Trials:  1,
			Seed:    7,
			Engine:  engine,
			Rule:    &RuleSpec{K: k, Noise: noise, WithoutReplacement: noReplace},
			Variant: &VariantSpec{Name: name, StubbornFrac: frac, Q: q},
		}

		// Validation and the key must be total, and the key deterministic.
		err := s.Validate()
		key := s.Key()
		if key != s.Key() {
			t.Fatalf("key not deterministic: %q vs %q", key, s.Key())
		}
		if err != nil {
			return
		}

		// A valid non-sync spec extends the key; a valid sync spec must be
		// byte-identical to the variant-free form (the store compatibility
		// guarantee).
		bare := s
		bare.Variant = nil
		if s.VariantName() == "sync" {
			if key != bare.Key() {
				t.Fatalf("sync variant changed the key:\nwith    %q\nwithout %q", key, bare.Key())
			}
			return
		}
		if key == bare.Key() {
			t.Fatalf("variant %q key-invisible: %q", s.VariantName(), key)
		}
		// Perturbing an effective parameter must change the key (the store
		// must never answer one parameterisation with another's result).
		switch s.VariantName() {
		case "stubborn":
			other := *s.Variant
			other.StubbornFrac = other.StubbornFrac / 2
			os := s
			os.Variant = &other
			if os.Validate() == nil && os.Key() == key {
				t.Fatalf("stubborn_frac %v and %v share the key %q", s.Variant.StubbornFrac, other.StubbornFrac, key)
			}
		case "plurality":
			other := *s.Variant
			other.Q++
			os := s
			os.Variant = &other
			if os.Validate() == nil && os.Key() == key {
				t.Fatalf("q %d and %d share the key %q", s.Variant.Q, other.Q, key)
			}
		}
	})
}

// FuzzGraphSpecKey fuzzes the family/parameter space and checks the
// canonical-key contract: keys are deterministic, stray parameters never
// split a valid spec's key, and validation never panics (overflow-scale
// parameters included).
func FuzzGraphSpecKey(f *testing.F) {
	fams := Families()
	f.Add(0, 10, 3, 0.5, 0.5, 4, 4, 4, 8, 8, 0.5, 0.1, uint64(1))
	f.Add(5, 0, 0, 0.0, 0.0, 1<<30, 1<<30, 63, 1<<30, 1<<30, 1.5, -0.5, uint64(0))
	f.Add(2, 1<<20, 1<<12, 1.0, 1.0, 3, 3, 30, 1, 2, 1.0, 1.0, uint64(42))
	f.Fuzz(func(t *testing.T, famIdx, n, d int, p, alpha float64, rows, cols, dim, a, b int, pin, pout float64, seed uint64) {
		family := "no-such-family"
		if famIdx >= 0 && famIdx < len(fams) {
			family = fams[famIdx]
		}
		s := GraphSpec{
			Family: family, N: n, D: d, P: p, Alpha: alpha,
			Rows: rows, Cols: cols, Dim: dim, A: a, B: b, PIn: pin, POut: pout,
			Seed: seed,
		}

		// Validation must be total: no panics, no wraparound acceptance.
		err := s.ValidateLimits(Limits{MaxN: 1 << 22, MaxEdges: 1 << 27, MaxTrials: 4096, MaxRounds: 1 << 20})
		_ = s.EdgeEstimate()

		key := s.Key()
		if key != s.Key() {
			t.Fatalf("key not deterministic: %q vs %q", key, s.Key())
		}
		if !strings.HasPrefix(key, "family="+family) {
			t.Fatalf("key %q does not lead with the family", key)
		}

		if err != nil {
			return
		}
		// A valid spec's key must ignore every parameter its family does
		// not consume: rebuild the spec from only the keyed parameters and
		// demand the same key.
		canon := GraphSpec{Family: family, Seed: s.Seed}
		switch family {
		case "complete", "complete-virtual", "cycle":
			canon.N, canon.Seed = s.N, 0
		case "random-regular":
			canon.N, canon.D = s.N, s.D
		case "gnp":
			canon.N, canon.P = s.N, s.P
		case "dense":
			canon.N, canon.Alpha = s.N, s.Alpha
		case "sbm":
			canon.A, canon.B, canon.PIn, canon.POut = s.A, s.B, s.PIn, s.POut
		case "torus":
			canon.Rows, canon.Cols, canon.Seed = s.Rows, s.Cols, 0
		case "hypercube":
			canon.Dim, canon.Seed = s.Dim, 0
		}
		if canon.Key() != key {
			t.Fatalf("stray parameters split the key:\nfull  %+v -> %q\ncanon %+v -> %q", s, key, canon, canon.Key())
		}
		if verr := canon.ValidateLimits(Limits{MaxN: 1 << 22, MaxEdges: 1 << 27, MaxTrials: 4096, MaxRounds: 1 << 20}); verr != nil {
			t.Fatalf("canonical form of a valid spec is invalid: %v", verr)
		}
	})
}
