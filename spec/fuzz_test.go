package spec

import (
	"strings"
	"testing"
)

// FuzzGraphSpecKey fuzzes the family/parameter space and checks the
// canonical-key contract: keys are deterministic, stray parameters never
// split a valid spec's key, and validation never panics (overflow-scale
// parameters included).
func FuzzGraphSpecKey(f *testing.F) {
	fams := Families()
	f.Add(0, 10, 3, 0.5, 0.5, 4, 4, 4, 8, 8, 0.5, 0.1, uint64(1))
	f.Add(5, 0, 0, 0.0, 0.0, 1<<30, 1<<30, 63, 1<<30, 1<<30, 1.5, -0.5, uint64(0))
	f.Add(2, 1<<20, 1<<12, 1.0, 1.0, 3, 3, 30, 1, 2, 1.0, 1.0, uint64(42))
	f.Fuzz(func(t *testing.T, famIdx, n, d int, p, alpha float64, rows, cols, dim, a, b int, pin, pout float64, seed uint64) {
		family := "no-such-family"
		if famIdx >= 0 && famIdx < len(fams) {
			family = fams[famIdx]
		}
		s := GraphSpec{
			Family: family, N: n, D: d, P: p, Alpha: alpha,
			Rows: rows, Cols: cols, Dim: dim, A: a, B: b, PIn: pin, POut: pout,
			Seed: seed,
		}

		// Validation must be total: no panics, no wraparound acceptance.
		err := s.ValidateLimits(Limits{MaxN: 1 << 22, MaxEdges: 1 << 27, MaxTrials: 4096, MaxRounds: 1 << 20})
		_ = s.EdgeEstimate()

		key := s.Key()
		if key != s.Key() {
			t.Fatalf("key not deterministic: %q vs %q", key, s.Key())
		}
		if !strings.HasPrefix(key, "family="+family) {
			t.Fatalf("key %q does not lead with the family", key)
		}

		if err != nil {
			return
		}
		// A valid spec's key must ignore every parameter its family does
		// not consume: rebuild the spec from only the keyed parameters and
		// demand the same key.
		canon := GraphSpec{Family: family, Seed: s.Seed}
		switch family {
		case "complete", "complete-virtual", "cycle":
			canon.N, canon.Seed = s.N, 0
		case "random-regular":
			canon.N, canon.D = s.N, s.D
		case "gnp":
			canon.N, canon.P = s.N, s.P
		case "dense":
			canon.N, canon.Alpha = s.N, s.Alpha
		case "sbm":
			canon.A, canon.B, canon.PIn, canon.POut = s.A, s.B, s.PIn, s.POut
		case "torus":
			canon.Rows, canon.Cols, canon.Seed = s.Rows, s.Cols, 0
		case "hypercube":
			canon.Dim, canon.Seed = s.Dim, 0
		}
		if canon.Key() != key {
			t.Fatalf("stray parameters split the key:\nfull  %+v -> %q\ncanon %+v -> %q", s, key, canon, canon.Key())
		}
		if verr := canon.ValidateLimits(Limits{MaxN: 1 << 22, MaxEdges: 1 << 27, MaxTrials: 4096, MaxRounds: 1 << 20}); verr != nil {
			t.Fatalf("canonical form of a valid spec is invalid: %v", verr)
		}
	})
}
