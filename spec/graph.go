package spec

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
)

// GraphSpec names a topology declaratively. Family selects the generator;
// the remaining fields are family-specific parameters. Seed drives the
// random generators, so equal specs describe (and a graph pool may share)
// the identical graph.
type GraphSpec struct {
	// Family is one of Families(): "complete", "complete-virtual",
	// "random-regular", "gnp", "dense", "sbm", "cycle", "torus",
	// "hypercube".
	Family string `json:"family"`
	// N is the vertex count (complete, complete-virtual, random-regular,
	// gnp, dense, cycle).
	N int `json:"n,omitempty"`
	// D is the degree for random-regular.
	D int `json:"d,omitempty"`
	// P is the edge probability for gnp.
	P float64 `json:"p,omitempty"`
	// Alpha is the density exponent for dense (min degree ⌈n^alpha⌉).
	Alpha float64 `json:"alpha,omitempty"`
	// Rows and Cols size the torus.
	Rows int `json:"rows,omitempty"`
	Cols int `json:"cols,omitempty"`
	// Dim is the hypercube dimension.
	Dim int `json:"dim,omitempty"`
	// A and B are the two community sizes of the stochastic block model.
	A int `json:"a,omitempty"`
	B int `json:"b,omitempty"`
	// PIn and POut are the SBM intra- and inter-community edge
	// probabilities.
	PIn  float64 `json:"pin,omitempty"`
	POut float64 `json:"pout,omitempty"`
	// Seed drives the random generators (random-regular, gnp, dense, sbm).
	Seed uint64 `json:"seed,omitempty"`
}

// familyDef is one registry entry: everything the rest of the system needs
// to know about a graph family lives here, so adding a family is one
// struct literal and it lights up in validation, cache keys, edge
// estimates, builds, and the NS sweep axis at once.
type familyDef struct {
	name string
	// usesN reports whether the family consumes the N field (and may be
	// crossed with a sweep's NS axis).
	usesN bool
	// seeded reports whether the generator consumes Seed.
	seeded bool
	// meanField reports whether the family builds topologies that declare
	// mean-field eligibility (dynamics.MeanFielder), i.e. whose rounds the
	// engine can advance in O(1) via the blue-count chain.
	meanField bool
	// minDegree returns the family's minimum degree when it is determined
	// by the spec alone (deterministic families); ok = false for sampled
	// families (gnp, dense, sbm) whose degrees depend on the draw.
	minDegree func(s GraphSpec) (d int, ok bool)
	// keyParams lists the parameters the family actually consumes, in
	// canonical key order; stray fields never split cache entries.
	keyParams func(s GraphSpec) []string
	validate  func(s GraphSpec, l Limits) error
	edges     func(s GraphSpec) int64
	build     func(s GraphSpec) (core.Topology, error)
}

// families is the registry. Initialised once at package load; read-only
// afterwards, so lookups need no locking.
var families = map[string]*familyDef{}

func register(defs ...*familyDef) {
	for _, d := range defs {
		if _, dup := families[d.name]; dup {
			panic("spec: duplicate family " + d.name)
		}
		families[d.name] = d
	}
}

// Families returns the registered family names, sorted. This is the
// canonical list the documentation and CLIs enumerate.
func Families() []string {
	out := make([]string, 0, len(families))
	for name := range families {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// FamilyUsesN reports whether the named family consumes the N parameter
// (false for torus, hypercube, and sbm, whose sizes are set by their own
// fields). Unknown families report false.
func FamilyUsesN(name string) bool {
	d, ok := families[name]
	return ok && d.usesN
}

// FamilySeeded reports whether the named family's generator consumes the
// Seed parameter. Unknown families report false.
func FamilySeeded(name string) bool {
	d, ok := families[name]
	return ok && d.seeded
}

// FamilyMeanField reports whether the named family builds mean-field-
// eligible topologies, on which the engine's O(1)-per-round fast path is
// available (engine "auto" selects it; "mean-field" requires it). Unknown
// families report false.
func FamilyMeanField(name string) bool {
	d, ok := families[name]
	return ok && d.meanField
}

// MeanFieldFamilies returns the registered families with the mean-field
// fast path, sorted.
func MeanFieldFamilies() []string {
	out := []string{}
	for name, d := range families {
		if d.meanField {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// MinDegreeEstimate returns the spec's minimum degree when the family
// determines it without building the graph (complete, complete-virtual,
// random-regular, cycle, torus, hypercube); ok = false for sampled
// families and unknown families. Validation uses it to reject
// without-replacement rules whose K exceeds every vertex's degree.
func (s GraphSpec) MinDegreeEstimate() (d int, ok bool) {
	def, found := families[s.Family]
	if !found || def.minDegree == nil {
		return 0, false
	}
	return def.minDegree(s)
}

func (s GraphSpec) family() (*familyDef, error) {
	if s.Family == "" {
		return nil, fmt.Errorf("graph: family is required")
	}
	d, ok := families[s.Family]
	if !ok {
		return nil, fmt.Errorf("graph: unknown family %q (known: %s)", s.Family, strings.Join(Families(), ", "))
	}
	return d, nil
}

// Key returns the canonical cache key for the spec: two specs that would
// build the same graph render identically. Only the parameters the family
// actually consumes are included — a stray "d" on a cycle spec, or a seed
// on a deterministic family, does not split cache entries. Unknown
// families key on the family name alone.
func (s GraphSpec) Key() string {
	parts := []string{"family=" + s.Family}
	if d, ok := families[s.Family]; ok {
		parts = append(parts, d.keyParams(s)...)
	}
	return strings.Join(parts, ",")
}

// EdgeEstimate approximates the number of edges the spec materialises, for
// admission control. Virtual families cost O(1); unknown families report
// zero.
func (s GraphSpec) EdgeEstimate() int64 {
	if d, ok := families[s.Family]; ok {
		return d.edges(s)
	}
	return 0
}

// Validate checks the spec structurally, with no size ceiling beyond
// overflow safety. Admission-controlled servers use ValidateLimits.
func (s GraphSpec) Validate() error { return s.ValidateLimits(Unlimited()) }

// ValidateLimits checks the spec against the given limits and returns a
// client-facing error. The family-specific checks (including the torus and
// hypercube overflow guards) live in the registry, so every entry point
// rejects exactly the same specs.
func (s GraphSpec) ValidateLimits(l Limits) error {
	d, err := s.family()
	if err != nil {
		return err
	}
	if err := d.validate(s, l); err != nil {
		return err
	}
	if est := d.edges(s); est > l.MaxEdges {
		return fmt.Errorf("graph: estimated %d edges exceeds the limit %d", est, l.MaxEdges)
	}
	return nil
}

// Build materialises the topology. Randomised families are deterministic
// in Seed; a gnp or sbm draw that leaves an isolated vertex is an error
// (the dynamics need every vertex to be able to sample a neighbour).
func (s GraphSpec) Build() (core.Topology, error) {
	d, err := s.family()
	if err != nil {
		return nil, err
	}
	return d.build(s)
}

func kv(k string, v any) string { return fmt.Sprintf("%s=%v", k, v) }

func needN(s GraphSpec, l Limits) error {
	if s.N < 3 {
		return fmt.Errorf("graph: family %q needs n >= 3, got %d", s.Family, s.N)
	}
	if s.N > l.MaxN {
		return fmt.Errorf("graph: n = %d exceeds the limit %d", s.N, l.MaxN)
	}
	return nil
}

func init() {
	register(
		&familyDef{
			name: "complete", usesN: true,
			minDegree: func(s GraphSpec) (int, bool) { return s.N - 1, true },
			keyParams: func(s GraphSpec) []string { return []string{kv("n", s.N)} },
			validate:  needN,
			edges:     func(s GraphSpec) int64 { return int64(s.N) * int64(s.N-1) / 2 },
			build:     func(s GraphSpec) (core.Topology, error) { return graph.Complete(s.N), nil },
		},
		&familyDef{
			name: "complete-virtual", usesN: true, meanField: true,
			minDegree: func(s GraphSpec) (int, bool) { return s.N - 1, true },
			keyParams: func(s GraphSpec) []string { return []string{kv("n", s.N)} },
			validate:  needN,
			edges:     func(s GraphSpec) int64 { return 0 },
			build:     func(s GraphSpec) (core.Topology, error) { return graph.NewKn(s.N), nil },
		},
		&familyDef{
			name: "random-regular", usesN: true, seeded: true,
			minDegree: func(s GraphSpec) (int, bool) { return s.D, true },
			keyParams: func(s GraphSpec) []string {
				return []string{kv("n", s.N), kv("d", s.D), kv("seed", s.Seed)}
			},
			validate: func(s GraphSpec, l Limits) error {
				if err := needN(s, l); err != nil {
					return err
				}
				if s.D < 1 || s.D >= s.N {
					return fmt.Errorf("graph: random-regular needs 1 <= d < n, got d = %d, n = %d", s.D, s.N)
				}
				if s.N*s.D%2 != 0 {
					return fmt.Errorf("graph: random-regular needs n·d even, got n = %d, d = %d", s.N, s.D)
				}
				return nil
			},
			edges: func(s GraphSpec) int64 { return int64(s.N) * int64(s.D) / 2 },
			build: func(s GraphSpec) (core.Topology, error) {
				return graph.RandomRegular(s.N, s.D, rng.New(s.Seed)), nil
			},
		},
		&familyDef{
			name: "gnp", usesN: true, seeded: true,
			keyParams: func(s GraphSpec) []string {
				return []string{kv("n", s.N), kv("p", s.P), kv("seed", s.Seed)}
			},
			validate: func(s GraphSpec, l Limits) error {
				if err := needN(s, l); err != nil {
					return err
				}
				if s.P <= 0 || s.P > 1 {
					return fmt.Errorf("graph: gnp needs 0 < p <= 1, got %v", s.P)
				}
				return nil
			},
			edges: func(s GraphSpec) int64 { return int64(float64(s.N) * float64(s.N-1) / 2 * s.P) },
			build: func(s GraphSpec) (core.Topology, error) {
				g := graph.Gnp(s.N, s.P, rng.New(s.Seed))
				if g.MinDegree() == 0 {
					return nil, fmt.Errorf("graph: gnp(n=%d, p=%v, seed=%d) has an isolated vertex; raise p or change the seed", s.N, s.P, s.Seed)
				}
				return g, nil
			},
		},
		&familyDef{
			name: "dense", usesN: true, seeded: true,
			keyParams: func(s GraphSpec) []string {
				return []string{kv("n", s.N), kv("alpha", s.Alpha), kv("seed", s.Seed)}
			},
			validate: func(s GraphSpec, l Limits) error {
				if err := needN(s, l); err != nil {
					return err
				}
				if s.Alpha <= 0 || s.Alpha > 1 {
					return fmt.Errorf("graph: dense needs 0 < alpha <= 1, got %v", s.Alpha)
				}
				return nil
			},
			edges: func(s GraphSpec) int64 {
				// min degree ⌈n^alpha⌉ regular-ish
				d := math.Pow(float64(s.N), s.Alpha)
				return int64(float64(s.N) * d / 2)
			},
			build: func(s GraphSpec) (core.Topology, error) {
				return graph.DenseMinDegree(s.N, s.Alpha, rng.New(s.Seed)), nil
			},
		},
		&familyDef{
			name: "sbm", seeded: true,
			keyParams: func(s GraphSpec) []string {
				return []string{kv("a", s.A), kv("b", s.B), kv("pin", s.PIn), kv("pout", s.POut), kv("seed", s.Seed)}
			},
			validate: func(s GraphSpec, l Limits) error {
				if s.A < 1 || s.B < 1 || s.A+s.B < 3 {
					return fmt.Errorf("graph: sbm needs community sizes a, b >= 1 with a+b >= 3, got a = %d, b = %d", s.A, s.B)
				}
				// Bound each community before summing: two near-MaxInt sizes
				// would wrap a+b negative and slip past the limit.
				if s.A > l.MaxN || s.B > l.MaxN || s.A+s.B > l.MaxN {
					return fmt.Errorf("graph: sbm with a+b = %d vertices exceeds the limit %d", s.A+s.B, l.MaxN)
				}
				if s.PIn < 0 || s.PIn > 1 || s.POut < 0 || s.POut > 1 {
					return fmt.Errorf("graph: sbm needs pin, pout in [0, 1], got pin = %v, pout = %v", s.PIn, s.POut)
				}
				if s.PIn == 0 && s.POut == 0 {
					return fmt.Errorf("graph: sbm needs pin or pout positive, got both zero")
				}
				return nil
			},
			edges: func(s GraphSpec) int64 {
				within := float64(s.A)*float64(s.A-1)/2 + float64(s.B)*float64(s.B-1)/2
				across := float64(s.A) * float64(s.B)
				return int64(within*s.PIn + across*s.POut)
			},
			build: func(s GraphSpec) (core.Topology, error) {
				g := graph.SBM(s.A, s.B, s.PIn, s.POut, rng.New(s.Seed))
				if g.MinDegree() == 0 {
					return nil, fmt.Errorf("graph: sbm(a=%d, b=%d, pin=%v, pout=%v, seed=%d) has an isolated vertex; raise pin/pout or change the seed", s.A, s.B, s.PIn, s.POut, s.Seed)
				}
				return g, nil
			},
		},
		&familyDef{
			name: "cycle", usesN: true,
			minDegree: func(s GraphSpec) (int, bool) { return 2, true },
			keyParams: func(s GraphSpec) []string { return []string{kv("n", s.N)} },
			validate:  needN,
			edges:     func(s GraphSpec) int64 { return int64(s.N) },
			build:     func(s GraphSpec) (core.Topology, error) { return graph.Cycle(s.N), nil },
		},
		&familyDef{
			name:      "torus",
			minDegree: func(s GraphSpec) (int, bool) { return 4, true },
			keyParams: func(s GraphSpec) []string {
				return []string{kv("rows", s.Rows), kv("cols", s.Cols)}
			},
			validate: func(s GraphSpec, l Limits) error {
				if s.Rows < 3 || s.Cols < 3 {
					return fmt.Errorf("graph: torus needs rows, cols >= 3, got %d×%d", s.Rows, s.Cols)
				}
				// Bound each dimension before multiplying: with both ≤ MaxN
				// the int64 product cannot wrap, whereas rows = cols = 2^32
				// would overflow straight past the limit.
				if s.Rows > l.MaxN || s.Cols > l.MaxN ||
					int64(s.Rows)*int64(s.Cols) > int64(l.MaxN) {
					return fmt.Errorf("graph: torus %d×%d exceeds the limit of %d vertices", s.Rows, s.Cols, l.MaxN)
				}
				return nil
			},
			edges: func(s GraphSpec) int64 { return 2 * int64(s.Rows) * int64(s.Cols) },
			build: func(s GraphSpec) (core.Topology, error) { return graph.Torus2D(s.Rows, s.Cols), nil },
		},
		&familyDef{
			name:      "hypercube",
			minDegree: func(s GraphSpec) (int, bool) { return s.Dim, true },
			keyParams: func(s GraphSpec) []string {
				return []string{kv("dim", s.Dim)}
			},
			validate: func(s GraphSpec, l Limits) error {
				// Bound dim itself before shifting: 1<<63 is negative and
				// 1<<64 wraps to zero, either of which would sail past the
				// limit check.
				if s.Dim < 2 || s.Dim > 30 || 1<<s.Dim > l.MaxN {
					return fmt.Errorf("graph: hypercube needs 2 <= dim <= 30 and 2^dim <= %d, got dim = %d", l.MaxN, s.Dim)
				}
				return nil
			},
			edges: func(s GraphSpec) int64 {
				// Total on garbage input: validation rejects dims outside
				// [2, 30], and a negative or huge dim must not panic the
				// shift here.
				if s.Dim < 1 || s.Dim > 30 {
					return 0
				}
				return int64(s.Dim) << (s.Dim - 1)
			},
			build: func(s GraphSpec) (core.Topology, error) { return graph.Hypercube(s.Dim), nil },
		},
	)
}
