package spec

import (
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"
)

func validLimits() Limits {
	return Limits{MaxN: 1 << 22, MaxEdges: 1 << 27, MaxTrials: 4096, MaxRounds: 1 << 20}
}

// TestRunSpecJSONRoundTrip: a fully populated spec survives
// marshal→unmarshal unchanged, for every family, so specs are stable
// artifacts (files, wire bodies, cache keys).
func TestRunSpecJSONRoundTrip(t *testing.T) {
	specs := []RunSpec{
		{Graph: GraphSpec{Family: "random-regular", N: 1024, D: 16, Seed: 7}, Delta: 0.1, Trials: 8, MaxRounds: 500, Seed: 42,
			Rule: &RuleSpec{K: 2, Tie: "random", WithoutReplacement: true, Noise: 0.05}},
		{Graph: GraphSpec{Family: "gnp", N: 512, P: 0.25, Seed: 3}, Delta: 0.05},
		{Graph: GraphSpec{Family: "dense", N: 2048, Alpha: 0.7, Seed: 1}, Delta: 0.2, Trials: 2},
		{Graph: GraphSpec{Family: "sbm", A: 300, B: 200, PIn: 0.2, POut: 0.01, Seed: 9}, Delta: 0.1, Seed: 5},
		{Graph: GraphSpec{Family: "torus", Rows: 8, Cols: 16}, Delta: 0.3},
		{Graph: GraphSpec{Family: "hypercube", Dim: 10}, Delta: 0.4, Rule: &RuleSpec{K: 1}},
		{Graph: GraphSpec{Family: "complete-virtual", N: 64}, Delta: 0},
		{Graph: GraphSpec{Family: "cycle", N: 10}, Delta: 0.5},
	}
	for _, want := range specs {
		b, err := json.Marshal(want)
		if err != nil {
			t.Fatalf("%s: marshal: %v", want.Graph.Family, err)
		}
		var got RunSpec
		if err := json.Unmarshal(b, &got); err != nil {
			t.Fatalf("%s: unmarshal: %v", want.Graph.Family, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: round trip changed the spec:\nwant %+v\ngot  %+v", want.Graph.Family, want, got)
		}
		if err := got.Validate(); err != nil {
			t.Errorf("%s: round-tripped spec no longer validates: %v", want.Graph.Family, err)
		}
	}
}

// TestGraphSpecValidationParity pins the validation behaviour the serve
// wire layer used to implement itself — including the torus and hypercube
// overflow guards — now that the spec package is its single source.
func TestGraphSpecValidationParity(t *testing.T) {
	l := validLimits()
	bad := map[string]GraphSpec{
		"missing family": {},
		"unknown family": {Family: "petersen", N: 10},
		"n too small":    {Family: "cycle", N: 2},
		"n over limit":   {Family: "cycle", N: l.MaxN + 1},
		"rr d zero":      {Family: "random-regular", N: 10, D: 0},
		"rr d >= n":      {Family: "random-regular", N: 10, D: 10},
		"rr odd nd":      {Family: "random-regular", N: 9, D: 3},
		"gnp p zero":     {Family: "gnp", N: 10, P: 0},
		"gnp p over one": {Family: "gnp", N: 10, P: 1.5},
		"dense alpha":    {Family: "dense", N: 10, Alpha: 1.5},
		"torus tiny":     {Family: "torus", Rows: 2, Cols: 8},
		"torus too big":  {Family: "torus", Rows: 1 << 12, Cols: 1 << 12},
		"torus overflow": {Family: "torus", Rows: 1 << 32, Cols: 1 << 32},
		"dim too small":  {Family: "hypercube", Dim: 1},
		"dim overflow":   {Family: "hypercube", Dim: 63},
		"dim wraparound": {Family: "hypercube", Dim: 64},
		"complete edges": {Family: "complete", N: 1 << 20},
		"sbm empty side": {Family: "sbm", A: 0, B: 10, PIn: 0.5},
		"sbm bad pin":    {Family: "sbm", A: 10, B: 10, PIn: 1.5},
		"sbm bad pout":   {Family: "sbm", A: 10, B: 10, PIn: 0.5, POut: -0.1},
		"sbm all zero p": {Family: "sbm", A: 10, B: 10},
		"sbm over limit": {Family: "sbm", A: l.MaxN, B: l.MaxN, PIn: 0.5},
		"sbm edge bound": {Family: "sbm", A: 1 << 14, B: 1 << 14, PIn: 1, POut: 1},
		"gnp edge bound": {Family: "gnp", N: 1 << 20, P: 0.9},
		"rr edge bound":  {Family: "random-regular", N: 1 << 20, D: 1 << 10},
	}
	for name, s := range bad {
		if err := s.ValidateLimits(l); err == nil {
			t.Errorf("%s: spec %+v validated", name, s)
		}
	}
	good := map[string]GraphSpec{
		"complete":  {Family: "complete", N: 64},
		"virtual":   {Family: "complete-virtual", N: 1 << 22},
		"rr":        {Family: "random-regular", N: 1024, D: 3, Seed: 1},
		"gnp":       {Family: "gnp", N: 512, P: 0.1},
		"dense":     {Family: "dense", N: 512, Alpha: 0.5},
		"sbm":       {Family: "sbm", A: 100, B: 50, PIn: 0.3, POut: 0.05},
		"sbm pout":  {Family: "sbm", A: 100, B: 50, POut: 0.05},
		"cycle":     {Family: "cycle", N: 3},
		"torus":     {Family: "torus", Rows: 3, Cols: 3},
		"hypercube": {Family: "hypercube", Dim: 10},
	}
	for name, s := range good {
		if err := s.ValidateLimits(l); err != nil {
			t.Errorf("%s: spec %+v rejected: %v", name, s, err)
		}
	}
}

// TestGraphSpecKeyCanonical: parameters a family does not consume never
// split cache keys, and every consumed parameter does.
func TestGraphSpecKeyCanonical(t *testing.T) {
	a := GraphSpec{Family: "cycle", N: 10}
	b := GraphSpec{Family: "cycle", N: 10, D: 7, P: 0.3, Alpha: 0.4, Rows: 2, Dim: 5, A: 1, PIn: 0.2, Seed: 99}
	if a.Key() != b.Key() {
		t.Errorf("stray parameters split the key: %q vs %q", a.Key(), b.Key())
	}
	distinct := []GraphSpec{
		{Family: "cycle", N: 10},
		{Family: "cycle", N: 12},
		{Family: "complete", N: 10},
		{Family: "complete-virtual", N: 10},
		{Family: "random-regular", N: 64, D: 4, Seed: 1},
		{Family: "random-regular", N: 64, D: 4, Seed: 2},
		{Family: "random-regular", N: 64, D: 6, Seed: 1},
		{Family: "gnp", N: 64, P: 0.5, Seed: 1},
		{Family: "dense", N: 64, Alpha: 0.5, Seed: 1},
		{Family: "sbm", A: 32, B: 32, PIn: 0.5, POut: 0.1, Seed: 1},
		{Family: "sbm", A: 32, B: 32, PIn: 0.5, POut: 0.2, Seed: 1},
		{Family: "sbm", A: 16, B: 48, PIn: 0.5, POut: 0.1, Seed: 1},
		{Family: "torus", Rows: 4, Cols: 8},
		{Family: "torus", Rows: 8, Cols: 4},
		{Family: "hypercube", Dim: 4},
	}
	seen := map[string]GraphSpec{}
	for _, s := range distinct {
		k := s.Key()
		if prev, dup := seen[k]; dup {
			t.Errorf("distinct specs share key %q: %+v and %+v", k, prev, s)
		}
		seen[k] = s
	}
}

// TestFamiliesRegistry: the registry is sorted, includes the full paper
// set plus the extensions, and the UsesN/Seeded predicates agree with the
// per-family parameters.
func TestFamiliesRegistry(t *testing.T) {
	fams := Families()
	if !strings.Contains(strings.Join(fams, ","), "sbm") {
		t.Fatalf("registry %v is missing sbm", fams)
	}
	want := []string{"complete", "complete-virtual", "cycle", "dense", "gnp", "hypercube", "random-regular", "sbm", "torus"}
	if !reflect.DeepEqual(fams, want) {
		t.Errorf("Families() = %v, want %v", fams, want)
	}
	for _, f := range []string{"torus", "hypercube", "sbm"} {
		if FamilyUsesN(f) {
			t.Errorf("%s should not consume n", f)
		}
	}
	for _, f := range []string{"complete", "complete-virtual", "cycle", "dense", "gnp", "random-regular"} {
		if !FamilyUsesN(f) {
			t.Errorf("%s should consume n", f)
		}
	}
	for _, f := range []string{"random-regular", "gnp", "dense", "sbm"} {
		if !FamilySeeded(f) {
			t.Errorf("%s should consume the seed", f)
		}
	}
	if FamilySeeded("cycle") || FamilyUsesN("nope") || FamilySeeded("nope") {
		t.Error("predicates wrong on deterministic/unknown families")
	}
}

// TestSBMBuild: the sbm family builds through the registry with the
// declared community sizes, and the isolated-vertex guard fires.
func TestSBMBuild(t *testing.T) {
	g, err := GraphSpec{Family: "sbm", A: 60, B: 40, PIn: 0.4, POut: 0.05, Seed: 1}.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 100 || g.MinDegree() == 0 {
		t.Errorf("sbm built n=%d minDeg=%d", g.N(), g.MinDegree())
	}
	if _, err := (GraphSpec{Family: "sbm", A: 50, B: 50, PIn: 1e-9, POut: 0, Seed: 1}).Build(); err == nil {
		t.Error("near-empty sbm with isolated vertices built without error")
	}
}

// TestRunSpecValidate covers the run-level checks shared by every entry
// point.
func TestRunSpecValidate(t *testing.T) {
	l := validLimits()
	base := RunSpec{Graph: GraphSpec{Family: "cycle", N: 8}, Delta: 0.1}
	if err := base.ValidateLimits(l); err != nil {
		t.Fatalf("base spec rejected: %v", err)
	}
	for name, mut := range map[string]func(*RunSpec){
		"negative delta":  func(s *RunSpec) { s.Delta = -0.1 },
		"delta over half": func(s *RunSpec) { s.Delta = 0.6 },
		"trials negative": func(s *RunSpec) { s.Trials = -1 },
		"trials over cap": func(s *RunSpec) { s.Trials = l.MaxTrials + 1 },
		"rounds over cap": func(s *RunSpec) { s.MaxRounds = l.MaxRounds + 1 },
		"bad tie":         func(s *RunSpec) { s.Rule = &RuleSpec{Tie: "coin"} },
		"bad noise":       func(s *RunSpec) { s.Rule = &RuleSpec{Noise: 0.9} },
		"bad graph":       func(s *RunSpec) { s.Graph.N = 1 },
	} {
		s := base
		mut(&s)
		if err := s.ValidateLimits(l); err == nil {
			t.Errorf("%s: validated", name)
		}
	}
	var s RunSpec
	s = base
	s.Normalize()
	if s.Trials != 1 {
		t.Errorf("Normalize left trials = %d", s.Trials)
	}
}

// TestTrialSeedTree: trial seeds are the ChildSeed tree and differ across
// trials and run seeds.
func TestTrialSeedTree(t *testing.T) {
	s := RunSpec{Graph: GraphSpec{Family: "cycle", N: 8}, Delta: 0.1, Seed: 42}
	if s.TrialSeed(0) == s.TrialSeed(1) {
		t.Error("adjacent trials share a seed")
	}
	s2 := s
	s2.Seed = 43
	if s.TrialSeed(0) == s2.TrialSeed(0) {
		t.Error("distinct run seeds share trial seeds")
	}
	if s.TrialSeed(3) != s.TrialSeed(3) {
		t.Error("trial seeds are not deterministic")
	}
}

// TestContentKey pins the content address: a stable function of the
// canonical key, sensitive to every execution-relevant field and
// insensitive to spelling differences the canonical key already folds.
func TestContentKey(t *testing.T) {
	base := RunSpec{Graph: GraphSpec{Family: "complete-virtual", N: 100}, Delta: 0.1, Trials: 4, Seed: 9}
	if len(base.ContentKey()) != 64 {
		t.Fatalf("content key %q is not a hex sha256", base.ContentKey())
	}
	if base.ContentKey() != base.ContentKey() {
		t.Error("content key not deterministic")
	}
	// Canonical-key equivalences: defaults spelled out or omitted.
	spelled := base
	spelled.Engine = "auto"
	spelled.Rule = &RuleSpec{} // nil rule = Best-of-Three = zero RuleSpec
	if spelled.ContentKey() != base.ContentKey() {
		t.Error("spelled-out defaults change the content key")
	}
	// Every execution-relevant field splits the key.
	for name, mutate := range map[string]func(*RunSpec){
		"seed":       func(s *RunSpec) { s.Seed = 10 },
		"trials":     func(s *RunSpec) { s.Trials = 5 },
		"delta":      func(s *RunSpec) { s.Delta = 0.2 },
		"max_rounds": func(s *RunSpec) { s.MaxRounds = 7 },
		"engine":     func(s *RunSpec) { s.Engine = "general" },
		"n":          func(s *RunSpec) { s.Graph.N = 101 },
		"rule":       func(s *RunSpec) { s.Rule = &RuleSpec{K: 5} },
	} {
		mutated := base
		mutate(&mutated)
		if mutated.ContentKey() == base.ContentKey() {
			t.Errorf("changing %s kept the content key", name)
		}
	}
}

// TestGridCellCountOverflow pins the overflow-safe cell counting: axis
// sizes whose product wraps int must be reported as an error, never as a
// small count.
func TestGridCellCountOverflow(t *testing.T) {
	if n, err := safeProduct(3, 2, 2); err != nil || n != 12 {
		t.Errorf("safeProduct(3,2,2) = %d, %v", n, err)
	}
	if n, err := safeProduct(0, 5, 0); err != nil || n != 5 {
		t.Errorf("empty axes should count as 1: got %d, %v", n, err)
	}
	huge := 1 << 31
	if _, err := safeProduct(huge, huge, huge); err == nil {
		t.Error("2^93 cells did not report overflow")
	}
	if _, err := safeProduct(math.MaxInt, 2); err == nil {
		t.Error("MaxInt×2 did not report overflow")
	}
}

// TestGridExpandDeterministic: expansion order and per-cell seeds depend
// only on (grid, sweep seed).
func TestGridExpandDeterministic(t *testing.T) {
	g := Grid{
		Graphs: []GraphSpec{{Family: "cycle"}, {Family: "complete-virtual"}},
		NS:     []int{8, 16},
		Deltas: []float64{0.1, 0.2},
		Trials: []int{2},
	}
	g.Normalize()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	n, err := g.CellCount()
	if err != nil {
		t.Fatal(err)
	}
	a, b := g.Expand(7, 100), g.Expand(7, 100)
	if len(a) != n || !reflect.DeepEqual(a, b) {
		t.Fatalf("expansion not deterministic: %d cells vs count %d", len(a), n)
	}
	seeds := map[uint64]bool{}
	for i, cell := range a {
		if cell.MaxRounds != 100 {
			t.Errorf("cell %d lost the round cap", i)
		}
		if seeds[cell.Seed] {
			t.Errorf("cell %d duplicates a seed", i)
		}
		seeds[cell.Seed] = true
		if err := cell.Validate(); err != nil {
			t.Errorf("cell %d invalid: %v", i, err)
		}
	}
	// The noises axis multiplies the cell count and lands on the rule.
	ng := Grid{
		Graphs: []GraphSpec{{Family: "complete-virtual"}},
		NS:     []int{16},
		Deltas: []float64{0.1},
		Noises: []float64{0, 0.05, 0.2},
	}
	ng.Normalize()
	if err := ng.Validate(); err != nil {
		t.Fatal(err)
	}
	if n, err := ng.CellCount(); err != nil || n != 3 {
		t.Fatalf("noise grid cell count = %d, %v; want 3", n, err)
	}
	ncells := ng.Expand(7, 0)
	for i, want := range []float64{0, 0.05, 0.2} {
		if ncells[i].Rule == nil || ncells[i].Rule.Noise != want {
			t.Errorf("noise cell %d rule = %+v, want noise %v", i, ncells[i].Rule, want)
		}
		if err := ncells[i].Validate(); err != nil {
			t.Errorf("noise cell %d invalid: %v", i, err)
		}
	}
	// Distinct noise levels give distinct content keys even where the
	// %.3g-rendered rule name collides.
	x, y := ncells[1], ncells[2]
	y.Seed = x.Seed
	if x.ContentKey() == y.ContentKey() {
		t.Error("different noise levels share a content key")
	}
	y.Rule.Noise = 0.0500000001 // folds to "0.05" under %.3g
	if x.ContentKey() == y.ContentKey() {
		t.Error("near-equal noise levels fold into one content key")
	}
	// NS over a fixed-size family is rejected.
	bad := Grid{Graphs: []GraphSpec{{Family: "sbm", A: 8, B: 8, PIn: 0.5}}, NS: []int{16}, Deltas: []float64{0.1}}
	if err := bad.Validate(); err == nil {
		t.Error("ns axis over sbm validated")
	}
	// An unregistered family reports as unknown, not as "does not take n".
	unknown := Grid{Graphs: []GraphSpec{{Family: "petersen", N: 64}}, NS: []int{128}, Deltas: []float64{0.1}}
	err = unknown.Validate()
	if err == nil || !strings.Contains(err.Error(), "unknown family") {
		t.Errorf("unknown family error = %v, want an unknown-family report", err)
	}
}

// TestGridContentKey: equivalent grids (defaults spelled out or omitted)
// share a sweep content key; every execution-relevant input splits it.
func TestGridContentKey(t *testing.T) {
	base := Grid{
		Graphs: []GraphSpec{{Family: "complete-virtual"}},
		NS:     []int{16, 32},
		Deltas: []float64{0.1, 0.2},
		Trials: []int{2},
	}
	ck := base.ContentKey(7, 100)
	if len(ck) != 64 {
		t.Fatalf("grid content key %q is not a hex sha256", ck)
	}
	if base.ContentKey(7, 100) != ck {
		t.Error("grid content key not deterministic")
	}
	// Normalization is identity-preserving: the shorthand grid and its
	// normalized form describe the same cells.
	spelled := base
	spelled.Normalize()
	if spelled.ContentKey(7, 100) != ck {
		t.Error("normalized grid changed the content key")
	}
	// Seed, round cap, and every axis split the key.
	if base.ContentKey(8, 100) == ck {
		t.Error("sweep seed not in the content key")
	}
	if base.ContentKey(7, 101) == ck {
		t.Error("round cap not in the content key")
	}
	for name, mutate := range map[string]func(*Grid){
		"graphs": func(g *Grid) { g.Graphs = []GraphSpec{{Family: "cycle"}} },
		"ns":     func(g *Grid) { g.NS = []int{16} },
		"deltas": func(g *Grid) { g.Deltas = []float64{0.1} },
		"ks":     func(g *Grid) { g.Ks = []int{5} },
		"ties":   func(g *Grid) { g.Ties = []string{"random"} },
		"noises": func(g *Grid) { g.Noises = []float64{0.05} },
		"trials": func(g *Grid) { g.Trials = []int{3} },
	} {
		mutated := base
		mutate(&mutated)
		if mutated.ContentKey(7, 100) == ck {
			t.Errorf("changing %s kept the grid content key", name)
		}
	}
}

// TestRunSpecKeyCanonical: equivalent run specs (defaults applied or not)
// render the identical key; any consumed parameter splits it.
func TestRunSpecKeyCanonical(t *testing.T) {
	a := RunSpec{Graph: GraphSpec{Family: "cycle", N: 8}, Delta: 0.1, Seed: 4}
	b := a
	b.Trials = 1             // = the normalised default of a
	b.Rule = &RuleSpec{K: 3} // = the nil-rule default of a
	if a.Key() != b.Key() {
		t.Errorf("equivalent specs split the key: %q vs %q", a.Key(), b.Key())
	}
	for name, mut := range map[string]func(*RunSpec){
		"delta":  func(s *RunSpec) { s.Delta = 0.2 },
		"trials": func(s *RunSpec) { s.Trials = 2 },
		"rounds": func(s *RunSpec) { s.MaxRounds = 9 },
		"seed":   func(s *RunSpec) { s.Seed = 5 },
		"rule":   func(s *RunSpec) { s.Rule = &RuleSpec{K: 5} },
		"graph":  func(s *RunSpec) { s.Graph.N = 10 },
	} {
		c := a
		mut(&c)
		if c.Key() == a.Key() {
			t.Errorf("%s change did not split the key %q", name, a.Key())
		}
	}
}

func TestRunSpecEngineValidation(t *testing.T) {
	base := RunSpec{Graph: GraphSpec{Family: "complete-virtual", N: 64}, Delta: 0.1}

	for _, engine := range []string{"", "auto", "general"} {
		s := base
		s.Engine = engine
		if err := s.Validate(); err != nil {
			t.Errorf("engine %q rejected: %v", engine, err)
		}
	}
	s := base
	s.Engine = "mean-field"
	if err := s.Validate(); err != nil {
		t.Errorf("mean-field on complete-virtual rejected: %v", err)
	}
	s.Engine = "warp"
	if err := s.Validate(); err == nil {
		t.Error("unknown engine accepted")
	}
	s = RunSpec{Graph: GraphSpec{Family: "random-regular", N: 64, D: 8}, Delta: 0.1, Engine: "mean-field"}
	if err := s.Validate(); err == nil {
		t.Error("mean-field on random-regular accepted")
	}
}

func TestRunSpecKeyIncludesEngine(t *testing.T) {
	a := RunSpec{Graph: GraphSpec{Family: "complete-virtual", N: 64}, Delta: 0.1}
	b := a
	b.Engine = "auto"
	if a.Key() != b.Key() {
		t.Errorf("empty and auto engines key differently:\n%s\n%s", a.Key(), b.Key())
	}
	c := a
	c.Engine = "general"
	if a.Key() == c.Key() {
		t.Error("general engine keys identically to auto")
	}
}

func TestFamilyMeanField(t *testing.T) {
	if !FamilyMeanField("complete-virtual") {
		t.Error("complete-virtual not mean-field")
	}
	for _, f := range []string{"complete", "random-regular", "gnp", "cycle", "nope"} {
		if FamilyMeanField(f) {
			t.Errorf("family %q unexpectedly mean-field", f)
		}
	}
	if got := MeanFieldFamilies(); len(got) != 1 || got[0] != "complete-virtual" {
		t.Errorf("MeanFieldFamilies = %v", got)
	}
}

func TestMinDegreeEstimate(t *testing.T) {
	cases := []struct {
		spec GraphSpec
		d    int
		ok   bool
	}{
		{GraphSpec{Family: "complete", N: 10}, 9, true},
		{GraphSpec{Family: "complete-virtual", N: 10}, 9, true},
		{GraphSpec{Family: "random-regular", N: 10, D: 4}, 4, true},
		{GraphSpec{Family: "cycle", N: 10}, 2, true},
		{GraphSpec{Family: "torus", Rows: 4, Cols: 4}, 4, true},
		{GraphSpec{Family: "hypercube", Dim: 5}, 5, true},
		{GraphSpec{Family: "gnp", N: 10, P: 0.5}, 0, false},
		{GraphSpec{Family: "dense", N: 10, Alpha: 0.5}, 0, false},
		{GraphSpec{Family: "sbm", A: 5, B: 5, PIn: 0.5}, 0, false},
		{GraphSpec{Family: "nope"}, 0, false},
	}
	for _, c := range cases {
		d, ok := c.spec.MinDegreeEstimate()
		if d != c.d || ok != c.ok {
			t.Errorf("%s: MinDegreeEstimate = (%d, %v), want (%d, %v)", c.spec.Family, d, ok, c.d, c.ok)
		}
	}
}

func TestWithoutReplacementDegreeGate(t *testing.T) {
	reject := []RunSpec{
		{Graph: GraphSpec{Family: "cycle", N: 50}, Delta: 0.1, Rule: &RuleSpec{K: 3, WithoutReplacement: true}},
		{Graph: GraphSpec{Family: "random-regular", N: 50, D: 2}, Delta: 0.1, Rule: &RuleSpec{K: 3, WithoutReplacement: true}},
		{Graph: GraphSpec{Family: "hypercube", Dim: 3}, Delta: 0.1, Rule: &RuleSpec{K: 4, WithoutReplacement: true}},
		{Graph: GraphSpec{Family: "complete-virtual", N: 4}, Delta: 0.1, Rule: &RuleSpec{K: 5, WithoutReplacement: true}},
	}
	for _, s := range reject {
		if err := s.Validate(); err == nil {
			t.Errorf("%s: without-replacement K > min degree accepted", s.Graph.Family)
		}
	}
	accept := []RunSpec{
		// Same shapes with replacement, or K within the degree, stay valid.
		{Graph: GraphSpec{Family: "cycle", N: 50}, Delta: 0.1, Rule: &RuleSpec{K: 3}},
		{Graph: GraphSpec{Family: "cycle", N: 50}, Delta: 0.1, Rule: &RuleSpec{K: 2, WithoutReplacement: true}},
		{Graph: GraphSpec{Family: "random-regular", N: 50, D: 8}, Delta: 0.1, Rule: &RuleSpec{K: 3, WithoutReplacement: true}},
		// Sampled families have no spec-determined min degree; the engine's
		// documented per-vertex fallback applies instead.
		{Graph: GraphSpec{Family: "gnp", N: 50, P: 0.5, Seed: 1}, Delta: 0.1, Rule: &RuleSpec{K: 3, WithoutReplacement: true}},
	}
	for _, s := range accept {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: valid without-replacement spec rejected: %v", s.Graph.Family, err)
		}
	}
}
