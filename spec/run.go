package spec

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/dynamics"
	"repro/internal/rng"
)

// RunSpec is the complete declarative description of one simulation job:
// Trials independent Best-of-k runs on one graph from an i.i.d. initial
// configuration with P(Blue) = 1/2 − Delta. It round-trips through JSON
// unchanged and is the request body of the bo3serve POST /v1/runs
// endpoint.
type RunSpec struct {
	Graph GraphSpec `json:"graph"`
	// Delta is the initial imbalance, in [0, 0.5].
	Delta float64 `json:"delta"`
	// Trials is the number of independent runs; 0 defaults to 1.
	Trials int `json:"trials,omitempty"`
	// MaxRounds caps each run; 0 uses the theory-derived default.
	MaxRounds int `json:"max_rounds,omitempty"`
	// Seed is the run seed. Trial i derives its seed as
	// rng.ChildSeed(Seed, i) — see TrialSeed — so a spec pins every
	// trial's randomness no matter which entry point executes it.
	Seed uint64 `json:"seed,omitempty"`
	// Rule selects the protocol; nil means Best-of-Three.
	Rule *RuleSpec `json:"rule,omitempty"`
	// Engine selects the round engine: "" or "auto" (default) takes the
	// O(1)-per-round mean-field fast path on families that declare
	// mean-field eligibility (complete-virtual) and the general sharded
	// engine otherwise; "general" forces the general engine (the opt-out
	// knob for A/B validation of the fast path); "mean-field" requires the
	// fast path and is rejected for ineligible families. The two engines
	// draw from different RNG streams, so they are distributionally — not
	// byte — equivalent; within one engine (and the canonical one-worker
	// engine configuration every entry point defaults to), outcomes remain
	// a deterministic function of the spec.
	Engine string `json:"engine,omitempty"`
	// Variant selects the opinion dynamic: nil (or name "sync") is the
	// paper's synchronous dynamic; "async", "stubborn", and "plurality"
	// expose the extension dynamics, with per-variant parameters validated
	// against the variant registry. Non-default variants participate in
	// Key()/ContentKey(), so the result store and sweep dedupe never
	// conflate a variant run with a plain one.
	Variant *VariantSpec `json:"variant,omitempty"`
}

// Normalize applies the documented defaults in place (Trials 0 → 1).
func (s *RunSpec) Normalize() {
	if s.Trials == 0 {
		s.Trials = 1
	}
}

// Validate checks the spec structurally (library/CLI contexts). It treats
// Trials = 0 as the default 1; call Normalize first to also persist the
// default.
func (s *RunSpec) Validate() error { return s.ValidateLimits(Unlimited()) }

// ValidateLimits checks the spec against the given limits. This is the one
// validation path shared by the library Runner, the CLIs, and the server.
func (s *RunSpec) ValidateLimits(l Limits) error {
	trials := s.Trials
	if trials == 0 {
		trials = 1
	}
	if trials < 0 || trials > l.MaxTrials {
		return fmt.Errorf("trials = %d outside [1, %d]", trials, l.MaxTrials)
	}
	if s.Delta < 0 || s.Delta > 0.5 {
		return fmt.Errorf("delta = %v outside [0, 0.5]", s.Delta)
	}
	if s.MaxRounds < 0 || s.MaxRounds > l.MaxRounds {
		return fmt.Errorf("max_rounds = %d outside [0, %d]", s.MaxRounds, l.MaxRounds)
	}
	rule, err := s.Rule.Rule()
	if err != nil {
		return err
	}
	if _, err := dynamics.ParseEngine(s.Engine); err != nil {
		return err
	}
	if err := s.validateVariant(rule); err != nil {
		return err
	}
	if s.Engine == "mean-field" && !FamilyMeanField(s.Graph.Family) {
		return fmt.Errorf("engine \"mean-field\" requires a mean-field-eligible graph family (%s), got %q",
			strings.Join(MeanFieldFamilies(), ", "), s.Graph.Family)
	}
	if rule.WithoutReplacement {
		// Sampling K distinct neighbours silently degrades to
		// with-replacement sampling at vertices with degree < K (the
		// engine's documented fallback). For families whose minimum degree
		// is known from the spec alone, reject the degenerate combination
		// up front instead of running a different protocol than requested.
		if d, known := s.Graph.MinDegreeEstimate(); known && rule.K > d {
			return fmt.Errorf("rule: without_replacement with k = %d exceeds the %s family's minimum degree %d; the engine would silently fall back to with-replacement sampling",
				rule.K, s.Graph.Family, d)
		}
	}
	return s.Graph.ValidateLimits(l)
}

// EngineMode resolves the engine name to the dynamics-level selector.
func (s RunSpec) EngineMode() (dynamics.Engine, error) { return dynamics.ParseEngine(s.Engine) }

// TrialSeed returns the deterministic seed of trial i: the ChildSeed tree
// rooted at the run seed. Every entry point derives trial seeds through
// this method, which is what makes a RunSpec's outcomes byte-identical
// across the library, the CLIs, and the server.
func (s RunSpec) TrialSeed(i int) uint64 { return rng.ChildSeed(s.Seed, uint64(i)) }

// DynamicsRule resolves the protocol with defaults applied.
func (s RunSpec) DynamicsRule() (dynamics.Rule, error) { return s.Rule.Rule() }

// Build materialises the topology (a convenience for Graph.Build).
func (s RunSpec) Build() (core.Topology, error) { return s.Graph.Build() }

// Key returns a canonical identity string for the whole run: two specs
// that would execute the identical trials render identically (the graph
// contributes its own canonical key; rule defaults are resolved first).
func (s RunSpec) Key() string {
	trials := s.Trials
	if trials == 0 {
		trials = 1
	}
	engine := s.Engine
	if engine == "" {
		engine = "auto"
	}
	parts := []string{
		s.Graph.Key(),
		kv("delta", s.Delta),
		kv("trials", trials),
		kv("max_rounds", s.MaxRounds),
		kv("seed", s.Seed),
		kv("rule", s.Rule.Name()),
		kv("engine", engine),
	}
	if s.Rule != nil && s.Rule.Noise > 0 {
		// The rule name renders noise at %.3g precision, which would fold
		// distinct noise levels into one key; append the full-precision
		// value (conditionally, so pre-existing keys are unchanged).
		parts = append(parts, kv("noise", s.Rule.Noise))
	}
	if s.VariantName() != "sync" {
		// Non-default variants extend the key (conditionally, like noise,
		// so every pre-variant key is unchanged): the fragment carries the
		// name plus exactly the parameters the variant consumes, which is
		// what keeps a stubborn or plurality run from ever being answered
		// by a plain run's store record.
		parts = append(parts, kv("variant", s.Variant.key()))
	}
	return strings.Join(parts, "|")
}

// ContentKey returns the content address of the run: the hex SHA-256 of
// the canonical Key. Because trial outcomes are a pure function of the
// canonical spec (seed, trials, engine, and round cap included), two runs
// with equal content keys execute identical trials — which is what lets
// bo3serve's result store replay a recorded result instead of recomputing
// it, and lets bo3store verify audit any record offline.
func (s RunSpec) ContentKey() string {
	sum := sha256.Sum256([]byte(s.Key()))
	return hex.EncodeToString(sum[:])
}
