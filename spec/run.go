package spec

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/dynamics"
	"repro/internal/rng"
)

// RunSpec is the complete declarative description of one simulation job:
// Trials independent Best-of-k runs on one graph from an i.i.d. initial
// configuration with P(Blue) = 1/2 − Delta. It round-trips through JSON
// unchanged and is the request body of the bo3serve POST /v1/runs
// endpoint.
type RunSpec struct {
	Graph GraphSpec `json:"graph"`
	// Delta is the initial imbalance, in [0, 0.5].
	Delta float64 `json:"delta"`
	// Trials is the number of independent runs; 0 defaults to 1.
	Trials int `json:"trials,omitempty"`
	// MaxRounds caps each run; 0 uses the theory-derived default.
	MaxRounds int `json:"max_rounds,omitempty"`
	// Seed is the run seed. Trial i derives its seed as
	// rng.ChildSeed(Seed, i) — see TrialSeed — so a spec pins every
	// trial's randomness no matter which entry point executes it.
	Seed uint64 `json:"seed,omitempty"`
	// Rule selects the protocol; nil means Best-of-Three.
	Rule *RuleSpec `json:"rule,omitempty"`
}

// Normalize applies the documented defaults in place (Trials 0 → 1).
func (s *RunSpec) Normalize() {
	if s.Trials == 0 {
		s.Trials = 1
	}
}

// Validate checks the spec structurally (library/CLI contexts). It treats
// Trials = 0 as the default 1; call Normalize first to also persist the
// default.
func (s *RunSpec) Validate() error { return s.ValidateLimits(Unlimited()) }

// ValidateLimits checks the spec against the given limits. This is the one
// validation path shared by the library Runner, the CLIs, and the server.
func (s *RunSpec) ValidateLimits(l Limits) error {
	trials := s.Trials
	if trials == 0 {
		trials = 1
	}
	if trials < 0 || trials > l.MaxTrials {
		return fmt.Errorf("trials = %d outside [1, %d]", trials, l.MaxTrials)
	}
	if s.Delta < 0 || s.Delta > 0.5 {
		return fmt.Errorf("delta = %v outside [0, 0.5]", s.Delta)
	}
	if s.MaxRounds < 0 || s.MaxRounds > l.MaxRounds {
		return fmt.Errorf("max_rounds = %d outside [0, %d]", s.MaxRounds, l.MaxRounds)
	}
	if err := s.Rule.Validate(); err != nil {
		return err
	}
	return s.Graph.ValidateLimits(l)
}

// TrialSeed returns the deterministic seed of trial i: the ChildSeed tree
// rooted at the run seed. Every entry point derives trial seeds through
// this method, which is what makes a RunSpec's outcomes byte-identical
// across the library, the CLIs, and the server.
func (s RunSpec) TrialSeed(i int) uint64 { return rng.ChildSeed(s.Seed, uint64(i)) }

// DynamicsRule resolves the protocol with defaults applied.
func (s RunSpec) DynamicsRule() (dynamics.Rule, error) { return s.Rule.Rule() }

// Build materialises the topology (a convenience for Graph.Build).
func (s RunSpec) Build() (core.Topology, error) { return s.Graph.Build() }

// Key returns a canonical identity string for the whole run: two specs
// that would execute the identical trials render identically (the graph
// contributes its own canonical key; rule defaults are resolved first).
func (s RunSpec) Key() string {
	trials := s.Trials
	if trials == 0 {
		trials = 1
	}
	return strings.Join([]string{
		s.Graph.Key(),
		kv("delta", s.Delta),
		kv("trials", trials),
		kv("max_rounds", s.MaxRounds),
		kv("seed", s.Seed),
		kv("rule", s.Rule.Name()),
	}, "|")
}
