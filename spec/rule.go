package spec

import (
	"fmt"

	"repro/internal/dynamics"
)

// RuleSpec selects a Best-of-k protocol declaratively. The zero value (and
// a nil *RuleSpec) is the paper's Best-of-Three.
type RuleSpec struct {
	// K is the sample count; 0 defaults to 3 (the paper's protocol).
	K int `json:"k,omitempty"`
	// Tie is "keep" (default) or "random"; consulted only for even K.
	Tie string `json:"tie,omitempty"`
	// WithoutReplacement samples K distinct neighbours.
	WithoutReplacement bool `json:"without_replacement,omitempty"`
	// Noise is the per-sample misreporting probability in [0, 0.5].
	Noise float64 `json:"noise,omitempty"`
}

// Rule converts the spec to a dynamics.Rule, applying defaults and
// validating. A nil receiver is Best-of-Three.
func (r *RuleSpec) Rule() (dynamics.Rule, error) {
	if r == nil {
		return dynamics.BestOfThree, nil
	}
	out := dynamics.Rule{K: r.K, WithoutReplacement: r.WithoutReplacement, Noise: r.Noise}
	if out.K == 0 {
		out.K = 3
	}
	switch r.Tie {
	case "", "keep":
		out.Tie = dynamics.TieKeep
	case "random":
		out.Tie = dynamics.TieRandom
	default:
		return dynamics.Rule{}, fmt.Errorf("rule: unknown tie rule %q (want \"keep\" or \"random\")", r.Tie)
	}
	return out, out.Validate()
}

// Validate checks the rule spec without converting it.
func (r *RuleSpec) Validate() error {
	_, err := r.Rule()
	return err
}

// Name returns the resolved protocol name, e.g. "best-of-3".
func (r *RuleSpec) Name() string {
	rule, err := r.Rule()
	if err != nil {
		return "invalid"
	}
	return rule.Name()
}
