// Package spec is the single declarative description of a simulation run,
// shared by every entry point of the repository: the library Runner in the
// root package, the bo3sim and bo3sweep CLIs, and the bo3serve HTTP API all
// consume the same JSON-round-trippable GraphSpec, RuleSpec, RunSpec, and
// Grid types defined here.
//
// The package owns the canonical semantics of a run:
//
//   - Graph families live in one registry (Families), each with its own
//     validation, canonical cache key, edge estimate, and builder, so a new
//     family added here lights up in the library, both CLIs, and the server
//     at once.
//   - Validation is central: GraphSpec.Validate and RunSpec.Validate apply
//     the same structural checks (including the torus/hypercube overflow
//     guards) everywhere; servers tighten them with ValidateLimits.
//   - Seeds form one deterministic tree: a RunSpec with seed s executes
//     trial i with rng.ChildSeed(s, i) (RunSpec.TrialSeed), and a Grid
//     expanded with sweep seed s gives cell i the run seed
//     rng.ChildSeed(s, i) — identical across every entry point, so the same
//     spec produces byte-identical per-trial outcomes no matter which door
//     it walks through.
//   - Engine selection is part of the spec: RunSpec.Engine ("auto" default)
//     dispatches mean-field-eligible families (FamilyMeanField; the
//     complete-virtual K_n) to the O(1)-per-round fast path everywhere at
//     once, with "general" as the documented opt-out. Switching engines is
//     the one way a spec's outcomes change (different RNG streams, equal
//     distributions).
//
// The root package repro builds its Runner from a RunSpec; internal/serve
// aliases its wire types to the types here and adds only HTTP-specific
// limits.
package spec
