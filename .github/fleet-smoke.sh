#!/bin/sh
# Two-process shared-store smoke: two bo3serve workers pointed at one
# -store-dir run the identical sweep grid. The store's claim protocol
# must partition the cells so the fleet executes every trial exactly
# once (the sum of the two servers' trials_run equals the grid's trial
# count), and both sweeps must converge to byte-identical aggregates.
# This is the end-to-end, separate-OS-process check behind the
# in-process fleet tests in internal/serve.
set -eu
cd "$(dirname "$0")/.."

dir=$(mktemp -d)
bin=$(mktemp -d)
pa='' pb='' pc=''
cleanup() {
    [ -n "$pa" ] && kill "$pa" 2>/dev/null || true
    [ -n "$pb" ] && kill "$pb" 2>/dev/null || true
    [ -n "$pc" ] && kill "$pc" 2>/dev/null || true
    rm -rf "$dir" "$bin"
}
trap cleanup EXIT INT TERM

go build -o "$bin/bo3serve" ./cmd/bo3serve
go build -o "$bin/bo3store" ./cmd/bo3store
go build -o "$bin/bo3graph" ./cmd/bo3graph

"$bin/bo3serve" -addr 127.0.0.1:18080 -store-dir "$dir" -worker-id a -workers 2 &
pa=$!
"$bin/bo3serve" -addr 127.0.0.1:18081 -store-dir "$dir" -worker-id b -workers 2 &
pb=$!

wait_up() {
    i=0
    until curl -fsS "http://$1/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "fleet-smoke: server $1 never came up" >&2
            exit 1
        fi
        sleep 0.1
    done
}
wait_up 127.0.0.1:18080
wait_up 127.0.0.1:18081

# 4 cells x 8 trials; the explicit seed makes the two submissions the
# same content-addressed work, cell for cell.
grid='{"grid":{"graphs":[{"family":"cycle"}],"ns":[2048,4096],"deltas":[0,0.05],"trials":[8]},"max_rounds":400,"seed":4242}'
want_trials=32

# The server pretty-prints JSON; compact responses before pattern
# matching (no field this script reads contains whitespace).
fetch() { curl -fsS "$@" | tr -d ' \n\t'; }

submit() {
    fetch -X POST -d "$grid" "http://$1/v1/sweeps" |
        grep -o '"id":"[^"]*"' | head -n 1 | cut -d'"' -f4
}
ida=$(submit 127.0.0.1:18080)
idb=$(submit 127.0.0.1:18081)
case "$ida,$idb" in
sweep-a-*,sweep-b-*) ;;
*)
    echo "fleet-smoke: sweep IDs not worker-namespaced: $ida, $idb" >&2
    exit 1
    ;;
esac

wait_done() {
    i=0
    while :; do
        view=$(fetch "http://$1/v1/sweeps/$2")
        # The sweep's own state is the second field of the view; cells
        # carry "state" fields of their own, so substring matching over
        # the whole body would fire on the first finished cell.
        state=$(printf '%s' "$view" | sed 's/^{"id":"[^"]*","state":"\([a-z]*\)".*/\1/')
        case $state in
        done)
            printf '%s' "$view"
            return 0
            ;;
        running) ;;
        *)
            echo "fleet-smoke: sweep $2 did not complete (state $state)" >&2
            exit 1
            ;;
        esac
        i=$((i + 1))
        if [ "$i" -gt 600 ]; then
            echo "fleet-smoke: sweep $2 never finished" >&2
            exit 1
        fi
        sleep 0.1
    done
}
va=$(wait_done 127.0.0.1:18080 "$ida")
vb=$(wait_done 127.0.0.1:18081 "$idb")

# The aggregate object holds only scalar fields, so the first {...} after
# the key is the whole thing.
agga=$(printf '%s' "$va" | grep -o '"aggregate":{[^}]*}')
aggb=$(printf '%s' "$vb" | grep -o '"aggregate":{[^}]*}')
if [ -z "$agga" ] || [ "$agga" != "$aggb" ]; then
    echo "fleet-smoke: aggregates differ between the two workers:" >&2
    echo "  a: $agga" >&2
    echo "  b: $aggb" >&2
    exit 1
fi

trials_run() {
    fetch "http://$1/v1/stats" | grep -o '"trials_run":[0-9]*' | head -n 1 | cut -d: -f2
}
ta=$(trials_run 127.0.0.1:18080)
tb=$(trials_run 127.0.0.1:18081)
total=$((ta + tb))
if [ "$total" -ne "$want_trials" ]; then
    echo "fleet-smoke: fleet executed $total trials (a=$ta b=$tb), want exactly $want_trials" >&2
    exit 1
fi

# --- /metrics over the live fleet --------------------------------------
# Scrape both workers: the exposition must parse (every line a comment or
# `name[{labels}] value`, at least one TYPE, at least one histogram), and
# the fleet-wide jobs/trials totals must reconcile with the sweep grid —
# each worker completed all 4 cells (executed or store-cached), and the
# fleet executed exactly want_trials trials.
scrape() {
    curl -fsS "http://$1/metrics" >"$dir/metrics.$2"
    awk '
        /^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* / { if ($2 == "TYPE") types++; next }
        /^#/ { print "bad comment: " $0; bad = 1; next }
        /^[a-zA-Z_:][a-zA-Z0-9_:]*(\{.*\})? [-+0-9.eEInf]+$/ { samples++; next }
        { print "bad sample: " $0; bad = 1 }
        END { if (bad || types < 1 || samples < 1) exit 1 }
    ' "$dir/metrics.$2" || {
        echo "fleet-smoke: worker $2 /metrics exposition failed to parse" >&2
        exit 1
    }
    if ! grep -q '^# TYPE bo3_job_exec_seconds histogram$' "$dir/metrics.$2"; then
        echo "fleet-smoke: worker $2 /metrics is missing the job latency histogram" >&2
        exit 1
    fi
    if ! grep -q '^bo3_build_info{' "$dir/metrics.$2"; then
        echo "fleet-smoke: worker $2 /metrics is missing bo3_build_info" >&2
        exit 1
    fi
}
scrape 127.0.0.1:18080 a
scrape 127.0.0.1:18081 b

metric() { grep "^$2 " "$dir/metrics.$1" | cut -d' ' -f2; }
jobs_total=$(($(metric a bo3_jobs_completed_total) + $(metric b bo3_jobs_completed_total)))
if [ "$jobs_total" -ne 8 ]; then
    echo "fleet-smoke: fleet bo3_jobs_completed_total = $jobs_total, want 8 (4 cells x 2 sweeps)" >&2
    exit 1
fi
mtrials=$(($(metric a bo3_trials_total) + $(metric b bo3_trials_total)))
if [ "$mtrials" -ne "$want_trials" ]; then
    echo "fleet-smoke: fleet bo3_trials_total = $mtrials, want $want_trials" >&2
    exit 1
fi
echo "fleet-smoke: ok — /metrics parsed on both workers, fleet totals reconcile (jobs=$jobs_total trials=$mtrials)"

# Read-only inspection must work against the live fleet.
"$bin/bo3store" -dir "$dir" claims >/dev/null
"$bin/bo3store" -dir "$dir" ls >/dev/null

kill "$pa" "$pb"
wait "$pa" "$pb" 2>/dev/null || true
pa='' pb=''
echo "fleet-smoke: ok — $want_trials trials executed exactly once (a=$ta b=$tb), aggregates byte-identical"

# --- Artifact round-trip: preprocess → verify → serve -----------------
# bo3graph builds a topology offline, bo3graph verify audits the file,
# and a bo3serve started with -artifact-dir must serve a run on that
# topology from the preprocessed artifact (graphs_artifact_hits counts
# it), not the generator.
art="$dir/artifacts"
"$bin/bo3graph" build -graph cycle -n 2048 -dir "$art"
"$bin/bo3graph" verify "$art"/*.bo3g

"$bin/bo3serve" -addr 127.0.0.1:18082 -artifact-dir "$art" -workers 2 &
pc=$!
wait_up 127.0.0.1:18082

run='{"graph":{"family":"cycle","n":2048},"delta":0.05,"trials":4,"max_rounds":400,"seed":4242}'
rid=$(fetch -X POST -d "$run" "http://127.0.0.1:18082/v1/runs" |
    grep -o '"id":"[^"]*"' | head -n 1 | cut -d'"' -f4)
i=0
while :; do
    state=$(fetch "http://127.0.0.1:18082/v1/runs/$rid" |
        sed 's/^{"id":"[^"]*","state":"\([a-z]*\)".*/\1/')
    case $state in
    done) break ;;
    queued | running) ;;
    *)
        echo "fleet-smoke: artifact-served run ended state $state" >&2
        exit 1
        ;;
    esac
    i=$((i + 1))
    if [ "$i" -gt 600 ]; then
        echo "fleet-smoke: artifact-served run never finished" >&2
        exit 1
    fi
    sleep 0.1
done

stats=$(fetch "http://127.0.0.1:18082/v1/stats")
hits=$(printf '%s' "$stats" | grep -o '"graphs_artifact_hits":[0-9]*' | cut -d: -f2)
misses=$(printf '%s' "$stats" | grep -o '"graphs_artifact_misses":[0-9]*' | cut -d: -f2)
if [ -z "$hits" ] || [ "$hits" -lt 1 ] || [ "$misses" != 0 ]; then
    echo "fleet-smoke: artifact server hits=$hits misses=$misses, want >=1 hits and 0 misses" >&2
    exit 1
fi

# --- Live event stream over a real socket ------------------------------
# Subscribe to a sweep's /events endpoint while the sweep is executing:
# the NDJSON stream must deliver at least one live trajectory frame and
# the terminal sweep event, then EOF cleanly when the server closes the
# topic (curl exits 0). This is the separate-process check behind the
# in-process stream tests in internal/serve.
sweep='{"grid":{"graphs":[{"family":"cycle"}],"ns":[2048],"deltas":[0,0.05],"trials":[16]},"max_rounds":400,"seed":4242}'
sid=$(fetch -X POST -d "$sweep" "http://127.0.0.1:18082/v1/sweeps" |
    grep -o '"id":"[^"]*"' | head -n 1 | cut -d'"' -f4)
events="$dir/events.ndjson"
curl -fsSN "http://127.0.0.1:18082/v1/sweeps/$sid/events" >"$events" &
pe=$!
if ! wait "$pe"; then
    echo "fleet-smoke: events stream did not EOF cleanly" >&2
    exit 1
fi
rounds=$(grep -c '"type":"round"' "$events" || true)
if [ "$rounds" -lt 1 ]; then
    echo "fleet-smoke: events stream carried no trajectory frames" >&2
    exit 1
fi
if ! grep -q '"type":"sweep"' "$events"; then
    echo "fleet-smoke: events stream ended without the terminal sweep event" >&2
    exit 1
fi
echo "fleet-smoke: ok — live event stream delivered $rounds trajectory frames and a clean terminal EOF"

kill "$pc"
wait "$pc" 2>/dev/null || true
pc=''
echo "fleet-smoke: ok — artifact round-trip served the cycle topology from disk ($hits hit)"
