#!/bin/sh
# Fails if a route registered in internal/serve is missing from the wire
# reference in docs/API.md, so the docs cannot silently fall behind the
# handler table. Routes are the "METHOD /path" literals passed to
# mux.HandleFunc; the docs must contain each one verbatim (they appear as
# "## METHOD /path" section headings).
set -eu
cd "$(dirname "$0")/.."

routes=$(sed -n 's/.*HandleFunc("\([A-Z]* [^"]*\)".*/\1/p' internal/serve/serve.go)
if [ -z "$routes" ]; then
    echo "check-api-docs: no routes found in internal/serve/serve.go (pattern drift?)" >&2
    exit 1
fi

missing=0
while IFS= read -r route; do
    # Exact heading match: substring search would let "GET /v1/sweeps"
    # ride on the "## GET /v1/sweeps/{id}" heading after its own section
    # is deleted.
    if ! grep -qxF "## $route" docs/API.md; then
        echo "check-api-docs: route \"$route\" is registered in internal/serve/serve.go but has no \"## $route\" section in docs/API.md" >&2
        missing=1
    fi
done <<EOF
$routes
EOF

exit $missing
