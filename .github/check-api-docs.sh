#!/bin/sh
# Fails when docs/API.md or docs/PERFORMANCE.md drifts from the code it
# documents:
#   1. every route registered in internal/serve must have its own
#      "## METHOD /path" section,
#   2. the graph-family table must list exactly the families in the spec
#      registry (one row per family, no extras, none missing), and the
#      variant table likewise exactly the registered variants,
#   3. the docs/PERFORMANCE.md scenario table must list exactly the
#      scenarios cmd/bo3bench registers (bo3bench -list), and
#   4. the docs/API.md bo3store subcommand table must list exactly the
#      subcommands cmd/bo3store registers (bo3store -list),
#   5. the docs/API.md bo3graph subcommand table must list exactly the
#      subcommands cmd/bo3graph registers (bo3graph -list), and
#   6. every json field of the serve Stats struct (the GET /v1/stats
#      payload) must appear backticked somewhere in docs/API.md, so new
#      counters cannot ship undocumented, and
#   7. every metric family the service registers (go run
#      ./internal/tools/metricnames) must appear backticked in the
#      docs/API.md metrics reference table, so /metrics cannot grow
#      undocumented series.
# Also gates the spec layer with go vet + gofmt so a drifted or
# unformatted spec/cli package fails the same check.
set -eu
cd "$(dirname "$0")/.."

status=0

# --- 1. Route sections -------------------------------------------------
routes=$(sed -n 's/.*HandleFunc("\([A-Z]* [^"]*\)".*/\1/p' internal/serve/serve.go)
if [ -z "$routes" ]; then
    echo "check-api-docs: no routes found in internal/serve/serve.go (pattern drift?)" >&2
    exit 1
fi
while IFS= read -r route; do
    # Exact heading match: substring search would let "GET /v1/sweeps"
    # ride on the "## GET /v1/sweeps/{id}" heading after its own section
    # is deleted.
    if ! grep -qxF "## $route" docs/API.md; then
        echo "check-api-docs: route \"$route\" is registered in internal/serve/serve.go but has no \"## $route\" section in docs/API.md" >&2
        status=1
    fi
done <<EOF
$routes
EOF

# --- 2. Family table vs the spec registry ------------------------------
# Documented families: the first backticked cell of each row of the table
# headed "| Family | Parameters | Notes |" (and only that table).
doc_families=$(awk '
    /^\| Family \| Parameters \| Notes \|$/ { in_table = 1; next }
    in_table && /^\|-/ { next }
    in_table && /^\| `/ {
        if (match($0, /`[a-z0-9-]+`/)) print substr($0, RSTART + 1, RLENGTH - 2)
        next
    }
    in_table { exit }
' docs/API.md | sort)
reg_families=$(go run ./internal/tools/specfamilies | sort)
if [ -z "$doc_families" ]; then
    echo "check-api-docs: no family table rows found in docs/API.md (pattern drift?)" >&2
    status=1
elif [ "$doc_families" != "$reg_families" ]; then
    echo "check-api-docs: docs/API.md family table disagrees with the spec registry:" >&2
    echo "--- registry (go run ./internal/tools/specfamilies)" >&2
    echo "$reg_families" >&2
    echo "--- docs/API.md table" >&2
    echo "$doc_families" >&2
    status=1
fi

# --- 2b. Variant table vs the spec registry ----------------------------
# Documented variants: the first backticked cell of each row of the table
# headed "| Variant | Parameters | Notes |" (and only that table).
doc_variants=$(awk '
    /^\| Variant \| Parameters \| Notes \|$/ { in_table = 1; next }
    in_table && /^\|-/ { next }
    in_table && /^\| `/ {
        if (match($0, /`[a-z0-9-]+`/)) print substr($0, RSTART + 1, RLENGTH - 2)
        next
    }
    in_table { exit }
' docs/API.md | sort)
reg_variants=$(go run ./internal/tools/specvariants | sort)
if [ -z "$doc_variants" ]; then
    echo "check-api-docs: no variant table rows found in docs/API.md (pattern drift?)" >&2
    status=1
elif [ "$doc_variants" != "$reg_variants" ]; then
    echo "check-api-docs: docs/API.md variant table disagrees with the spec registry:" >&2
    echo "--- registry (go run ./internal/tools/specvariants)" >&2
    echo "$reg_variants" >&2
    echo "--- docs/API.md table" >&2
    echo "$doc_variants" >&2
    status=1
fi

# --- 3. Bench scenario table vs the bo3bench registry ------------------
# Documented scenarios: the first backticked cell of each row of the
# table headed "| Scenario | What it measures |" in docs/PERFORMANCE.md.
doc_scenarios=$(awk '
    /^\| Scenario \| What it measures \|$/ { in_table = 1; next }
    in_table && /^\|-/ { next }
    in_table && /^\| `/ {
        if (match($0, /`[a-z0-9\/-]+`/)) print substr($0, RSTART + 1, RLENGTH - 2)
        next
    }
    in_table { exit }
' docs/PERFORMANCE.md | sort)
reg_scenarios=$(go run ./cmd/bo3bench -list | sort)
if [ -z "$doc_scenarios" ]; then
    echo "check-api-docs: no scenario table rows found in docs/PERFORMANCE.md (pattern drift?)" >&2
    status=1
elif [ "$doc_scenarios" != "$reg_scenarios" ]; then
    echo "check-api-docs: docs/PERFORMANCE.md scenario table disagrees with cmd/bo3bench:" >&2
    echo "--- registry (go run ./cmd/bo3bench -list)" >&2
    echo "$reg_scenarios" >&2
    echo "--- docs/PERFORMANCE.md table" >&2
    echo "$doc_scenarios" >&2
    status=1
fi

# --- 4. bo3store subcommand table vs the bo3store registry -------------
# Documented subcommands: the first backticked cell of each row of the
# table headed "| Subcommand | What it does |" in docs/API.md.
doc_subs=$(awk '
    /^\| Subcommand \| What it does \|$/ { in_table = 1; next }
    in_table && /^\|-/ { next }
    in_table && /^\| `/ {
        if (match($0, /`[a-z-]+`/)) print substr($0, RSTART + 1, RLENGTH - 2)
        next
    }
    in_table { exit }
' docs/API.md | sort)
reg_subs=$(go run ./cmd/bo3store -list | sort)
if [ -z "$doc_subs" ]; then
    echo "check-api-docs: no bo3store subcommand table rows found in docs/API.md (pattern drift?)" >&2
    status=1
elif [ "$doc_subs" != "$reg_subs" ]; then
    echo "check-api-docs: docs/API.md bo3store subcommand table disagrees with cmd/bo3store:" >&2
    echo "--- registry (go run ./cmd/bo3store -list)" >&2
    echo "$reg_subs" >&2
    echo "--- docs/API.md table" >&2
    echo "$doc_subs" >&2
    status=1
fi

# --- 5. bo3graph subcommand table vs the bo3graph registry -------------
# Documented subcommands: the first backticked cell of each row of the
# table headed "| Subcommand | Purpose |" in docs/API.md (a distinct
# heading from bo3store's table, so the two scrapers never cross-match).
doc_gsubs=$(awk '
    /^\| Subcommand \| Purpose \|$/ { in_table = 1; next }
    in_table && /^\|-/ { next }
    in_table && /^\| `/ {
        if (match($0, /`[a-z-]+`/)) print substr($0, RSTART + 1, RLENGTH - 2)
        next
    }
    in_table { exit }
' docs/API.md | sort)
reg_gsubs=$(go run ./cmd/bo3graph -list | sort)
if [ -z "$doc_gsubs" ]; then
    echo "check-api-docs: no bo3graph subcommand table rows found in docs/API.md (pattern drift?)" >&2
    status=1
elif [ "$doc_gsubs" != "$reg_gsubs" ]; then
    echo "check-api-docs: docs/API.md bo3graph subcommand table disagrees with cmd/bo3graph:" >&2
    echo "--- registry (go run ./cmd/bo3graph -list)" >&2
    echo "$reg_gsubs" >&2
    echo "--- docs/API.md table" >&2
    echo "$doc_gsubs" >&2
    status=1
fi

# --- 6. Stats fields vs docs/API.md ------------------------------------
# Every json tag of the Stats struct must appear backticked in the docs
# (the stats table, or prose for nested/derived mentions).
stats_fields=$(awk '
    /^type Stats struct \{/ { in_struct = 1; next }
    in_struct && /^\}/ { exit }
    in_struct && match($0, /json:"[a-z_]+/) { print substr($0, RSTART + 6, RLENGTH - 6) }
' internal/serve/wire.go)
if [ -z "$stats_fields" ]; then
    echo "check-api-docs: no json tags found on serve.Stats (pattern drift?)" >&2
    status=1
fi
while IFS= read -r field; do
    [ -n "$field" ] || continue
    if ! grep -qF "\`$field\`" docs/API.md; then
        echo "check-api-docs: serve.Stats field \"$field\" is not documented (backticked) in docs/API.md" >&2
        status=1
    fi
done <<EOF
$stats_fields
EOF

# --- 7. Metric families vs docs/API.md ---------------------------------
# Every metric family the full service registers must appear backticked
# in the docs/API.md metrics reference table.
metric_names=$(go run ./internal/tools/metricnames)
if [ -z "$metric_names" ]; then
    echo "check-api-docs: no metric names from internal/tools/metricnames (pattern drift?)" >&2
    status=1
fi
while IFS= read -r metric; do
    [ -n "$metric" ] || continue
    if ! grep -qF "\`$metric\`" docs/API.md; then
        echo "check-api-docs: metric \"$metric\" is registered but not documented (backticked) in docs/API.md" >&2
        status=1
    fi
done <<EOF
$metric_names
EOF

# --- 8. vet + gofmt gate over the spec layer ---------------------------
go vet ./spec/... ./internal/cli/... || status=1
unformatted=$(gofmt -l spec internal/cli)
if [ -n "$unformatted" ]; then
    echo "check-api-docs: gofmt needed on:" >&2
    echo "$unformatted" >&2
    status=1
fi

exit $status
