package rng

import "math"

// Binomial returns a sample from Bin(n, p). For small n it sums Bernoulli
// trials; for large n it uses the BTRS transformed-rejection sampler of
// Hörmann (1993), which runs in O(1) expected time independent of n. The
// split keeps the small-n path exact and branch-predictable, which is the
// common case when sampling per-vertex collision counts.
func (s *Source) Binomial(n int, p float64) int {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	// Exploit symmetry so the rejection sampler works with p <= 1/2.
	if p > 0.5 {
		return n - s.Binomial(n, 1-p)
	}
	if float64(n)*p < 10 || n < 32 {
		return s.binomialDirect(n, p)
	}
	return s.binomialBTRS(n, p)
}

// binomialDirect sums n Bernoulli(p) draws. Exact and fast for small n·p.
func (s *Source) binomialDirect(n int, p float64) int {
	// Geometric skipping: the number of failures before the next success is
	// Geometric(p), so we jump between successes instead of testing every
	// trial. Expected work O(n·p + 1).
	if p < 0.1 {
		count := 0
		i := 0
		logq := math.Log1p(-p)
		for {
			// Number of failures until next success.
			skip := int(math.Floor(math.Log(1-s.Float64()) / logq))
			i += skip + 1
			if i > n {
				return count
			}
			count++
		}
	}
	count := 0
	for i := 0; i < n; i++ {
		if s.Float64() < p {
			count++
		}
	}
	return count
}

// binomialBTRS implements the BTRS algorithm (Hörmann, "The generation of
// binomial random variates", J. Stat. Comput. Simul. 46, 1993) for
// n·p >= 10 and p <= 1/2.
func (s *Source) binomialBTRS(n int, p float64) int {
	nf := float64(n)
	q := 1 - p
	spq := math.Sqrt(nf * p * q)

	b := 1.15 + 2.53*spq
	a := -0.0873 + 0.0248*b + 0.01*p
	c := nf*p + 0.5
	vr := 0.92 - 4.2/b

	alpha := (2.83 + 5.1/b) * spq
	lpq := math.Log(p / q)
	m := math.Floor((nf + 1) * p)
	h := lgamma(m+1) + lgamma(nf-m+1)

	for {
		u := s.Float64() - 0.5
		v := s.Float64()
		us := 0.5 - math.Abs(u)
		k := math.Floor((2*a/us+b)*u + c)
		if k < 0 || k > nf {
			continue
		}
		if us >= 0.07 && v <= vr {
			return int(k)
		}
		v = math.Log(v * alpha / (a/(us*us) + b))
		if v <= h-lgamma(k+1)-lgamma(nf-k+1)+(k-m)*lpq {
			return int(k)
		}
	}
}

// lgamma is math.Lgamma without the sign result; the arguments used here
// are always positive.
func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// Geometric returns the number of Bernoulli(p) failures before the first
// success, i.e. a sample from the geometric distribution on {0, 1, 2, ...}.
// It panics if p <= 0 or p > 1.
func (s *Source) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("rng: Geometric requires 0 < p <= 1")
	}
	if p == 1 {
		return 0
	}
	return int(math.Floor(math.Log(1-s.Float64()) / math.Log1p(-p)))
}

// NormFloat64 returns a standard normal sample via the polar (Marsaglia)
// method. Used for randomised test inputs, not in the dynamics hot path.
func (s *Source) NormFloat64() float64 {
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q > 0 && q < 1 {
			return u * math.Sqrt(-2*math.Log(q)/q)
		}
	}
}

// ExpFloat64 returns an Exp(1) sample by inversion.
func (s *Source) ExpFloat64() float64 {
	return -math.Log(1 - s.Float64())
}
