package rng

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams from equal seeds diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("seeds 1 and 2 produced %d equal outputs out of 100", same)
	}
}

func TestNewFromStreamsIndependent(t *testing.T) {
	a := NewFrom(7, 0)
	b := NewFrom(7, 1)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("streams 0 and 1 produced %d equal outputs out of 100", same)
	}
}

func TestReseedRestartsStream(t *testing.T) {
	s := New(99)
	first := make([]uint64, 16)
	for i := range first {
		first[i] = s.Uint64()
	}
	s.Reseed(99)
	for i := range first {
		if got := s.Uint64(); got != first[i] {
			t.Fatalf("after Reseed, output %d = %d, want %d", i, got, first[i])
		}
	}
}

func TestNormalizeZeroState(t *testing.T) {
	var s Source // all-zero state
	s.normalize()
	if s.s0|s.s1|s.s2|s.s3 == 0 {
		t.Fatal("normalize left an all-zero state")
	}
	// The generator must now produce non-constant output.
	x, y := s.Uint64(), s.Uint64()
	if x == y {
		t.Errorf("degenerate output after normalize: %d == %d", x, y)
	}
}

func TestUint64nBounds(t *testing.T) {
	s := New(3)
	for _, n := range []uint64{1, 2, 3, 7, 64, 1000, 1 << 40} {
		for i := 0; i < 200; i++ {
			if v := s.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	for _, n := range []int{0, -1, -100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Intn(%d) did not panic", n)
				}
			}()
			New(1).Intn(n)
		}()
	}
}

func TestUint64nUniformity(t *testing.T) {
	// Chi-squared-ish sanity check over 8 buckets.
	s := New(1234)
	const n, draws = 8, 80000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[s.Uint64n(n)]++
	}
	want := float64(draws) / n
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: count %d too far from expected %.0f", b, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(5)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(6)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestBernoulliExtremes(t *testing.T) {
	s := New(7)
	for i := 0; i < 100; i++ {
		if s.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !s.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
		if s.Bernoulli(-0.5) {
			t.Fatal("Bernoulli(-0.5) returned true")
		}
		if !s.Bernoulli(1.5) {
			t.Fatal("Bernoulli(1.5) returned false")
		}
	}
}

func TestBernoulliFrequency(t *testing.T) {
	s := New(8)
	const n = 100000
	for _, p := range []float64{0.1, 0.5, 0.9} {
		hits := 0
		for i := 0; i < n; i++ {
			if s.Bernoulli(p) {
				hits++
			}
		}
		got := float64(hits) / n
		if math.Abs(got-p) > 0.01 {
			t.Errorf("Bernoulli(%v) frequency = %v", p, got)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(9)
	for _, n := range []int{0, 1, 2, 5, 100} {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	s := New(10)
	const n, draws = 5, 50000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[s.Perm(n)[0]]++
	}
	want := float64(draws) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("Perm first element %d occurred %d times, want ~%.0f", v, c, want)
		}
	}
}

func TestShuffleSwapCount(t *testing.T) {
	s := New(11)
	calls := 0
	s.Shuffle(10, func(i, j int) { calls++ })
	if calls != 9 {
		t.Errorf("Shuffle(10) made %d swap calls, want 9", calls)
	}
	// n <= 1 must not call swap at all.
	calls = 0
	s.Shuffle(1, func(i, j int) { calls++ })
	s.Shuffle(0, func(i, j int) { calls++ })
	if calls != 0 {
		t.Errorf("Shuffle of size <= 1 called swap %d times", calls)
	}
}

func TestJumpIndependence(t *testing.T) {
	s := New(12)
	j := s.Jump()
	same := 0
	for i := 0; i < 100; i++ {
		if s.Uint64() == j.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("jumped stream matched parent %d/100 times", same)
	}
}

func TestBinomialBounds(t *testing.T) {
	s := New(13)
	cases := []struct {
		n int
		p float64
	}{{0, 0.5}, {1, 0.5}, {10, 0.0}, {10, 1.0}, {10, 0.3}, {1000, 0.01},
		{1000, 0.5}, {100000, 0.25}, {100000, 0.9}}
	for _, c := range cases {
		for i := 0; i < 50; i++ {
			v := s.Binomial(c.n, c.p)
			if v < 0 || v > c.n {
				t.Fatalf("Binomial(%d, %v) = %d out of range", c.n, c.p, v)
			}
		}
	}
}

func TestBinomialDegenerate(t *testing.T) {
	s := New(14)
	if v := s.Binomial(10, 0); v != 0 {
		t.Errorf("Binomial(10, 0) = %d", v)
	}
	if v := s.Binomial(10, 1); v != 10 {
		t.Errorf("Binomial(10, 1) = %d", v)
	}
	if v := s.Binomial(0, 0.7); v != 0 {
		t.Errorf("Binomial(0, 0.7) = %d", v)
	}
	if v := s.Binomial(-3, 0.7); v != 0 {
		t.Errorf("Binomial(-3, 0.7) = %d", v)
	}
}

func TestBinomialMoments(t *testing.T) {
	s := New(15)
	cases := []struct {
		n int
		p float64
	}{{20, 0.3}, {1000, 0.02}, {5000, 0.5}, {200, 0.85}}
	const draws = 20000
	for _, c := range cases {
		sum, sumsq := 0.0, 0.0
		for i := 0; i < draws; i++ {
			v := float64(s.Binomial(c.n, c.p))
			sum += v
			sumsq += v * v
		}
		mean := sum / draws
		wantMean := float64(c.n) * c.p
		sd := math.Sqrt(float64(c.n) * c.p * (1 - c.p))
		if math.Abs(mean-wantMean) > 6*sd/math.Sqrt(draws) {
			t.Errorf("Binomial(%d,%v) mean = %v, want %v", c.n, c.p, mean, wantMean)
		}
		variance := sumsq/draws - mean*mean
		wantVar := float64(c.n) * c.p * (1 - c.p)
		if math.Abs(variance-wantVar) > 0.15*wantVar+0.5 {
			t.Errorf("Binomial(%d,%v) var = %v, want %v", c.n, c.p, variance, wantVar)
		}
	}
}

func TestGeometricMean(t *testing.T) {
	s := New(16)
	for _, p := range []float64{0.1, 0.5, 0.9} {
		sum := 0.0
		const draws = 50000
		for i := 0; i < draws; i++ {
			sum += float64(s.Geometric(p))
		}
		mean := sum / draws
		want := (1 - p) / p
		if math.Abs(mean-want) > 0.1*want+0.02 {
			t.Errorf("Geometric(%v) mean = %v, want %v", p, mean, want)
		}
	}
}

func TestGeometricOne(t *testing.T) {
	s := New(17)
	for i := 0; i < 100; i++ {
		if v := s.Geometric(1); v != 0 {
			t.Fatalf("Geometric(1) = %d", v)
		}
	}
}

func TestGeometricPanics(t *testing.T) {
	for _, p := range []float64{0, -0.3, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Geometric(%v) did not panic", p)
				}
			}()
			New(1).Geometric(p)
		}()
	}
}

func TestNormFloat64Moments(t *testing.T) {
	s := New(18)
	sum, sumsq := 0.0, 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		v := s.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v", mean)
	}
	variance := sumsq/n - mean*mean
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	s := New(19)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += s.ExpFloat64()
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Errorf("exponential mean = %v", mean)
	}
}

// Property: Uint64n(n) < n for all n > 0 and all seeds.
func TestQuickUint64nInRange(t *testing.T) {
	f := func(seed uint64, n uint64) bool {
		if n == 0 {
			n = 1
		}
		s := New(seed)
		for i := 0; i < 20; i++ {
			if s.Uint64n(n) >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Perm always returns a valid permutation.
func TestQuickPermValid(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		p := New(seed).Perm(int(n))
		seen := make(map[int]bool, len(p))
		for _, v := range p {
			if v < 0 || v >= int(n) || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(p) == int(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Binomial stays within [0, n] for arbitrary (n, p).
func TestQuickBinomialInRange(t *testing.T) {
	f := func(seed uint64, n uint16, pRaw uint16) bool {
		p := float64(pRaw) / float64(math.MaxUint16)
		s := New(seed)
		v := s.Binomial(int(n), p)
		return v >= 0 && v <= int(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += s.Uint64()
	}
	_ = sink
}

func BenchmarkUint64n(b *testing.B) {
	s := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += s.Uint64n(12345)
	}
	_ = sink
}

func BenchmarkFloat64(b *testing.B) {
	s := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += s.Float64()
	}
	_ = sink
}

func BenchmarkBinomialSmall(b *testing.B) {
	s := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += s.Binomial(3, 0.3)
	}
	_ = sink
}

func BenchmarkBinomialLarge(b *testing.B) {
	s := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += s.Binomial(100000, 0.4)
	}
	_ = sink
}

func TestChildSeedDeterministicAndDistinct(t *testing.T) {
	if ChildSeed(1, 2, 3) != ChildSeed(1, 2, 3) {
		t.Fatal("ChildSeed is not deterministic")
	}
	seen := map[uint64]string{}
	record := func(name string, s uint64) {
		if prev, ok := seen[s]; ok {
			t.Fatalf("ChildSeed collision: %s and %s both map to %d", prev, name, s)
		}
		seen[s] = name
	}
	// Small labels, sibling paths, and path-vs-prefix must all separate.
	for i := uint64(0); i < 100; i++ {
		record(fmt.Sprintf("(7,%d)", i), ChildSeed(7, i))
	}
	record("(7)", ChildSeed(7))
	record("(7,0,0)", ChildSeed(7, 0, 0))
	record("(8,0)", ChildSeed(8, 0))
}

func TestChildSeedStreamsIndependent(t *testing.T) {
	a := New(ChildSeed(1, 0))
	b := New(ChildSeed(1, 1))
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("sibling child streams agreed on %d/64 draws", same)
	}
}

func TestFillMatchesSequentialUint64(t *testing.T) {
	a := New(99)
	b := New(99)
	var buf [300]uint64
	a.Fill(buf[:])
	for i, w := range buf {
		if got := b.Uint64(); got != w {
			t.Fatalf("Fill[%d] = %d, sequential Uint64 = %d", i, w, got)
		}
	}
	// State must line up afterwards too: the next draws agree.
	for i := 0; i < 16; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("states diverged after Fill at draw %d", i)
		}
	}
}

func TestFillEmpty(t *testing.T) {
	a := New(3)
	b := New(3)
	a.Fill(nil)
	if a.Uint64() != b.Uint64() {
		t.Error("Fill(nil) advanced the state")
	}
}
