// Package rng provides fast, deterministic, splittable pseudo-random number
// generation for the voting-dynamics simulators in this repository.
//
// The Best-of-Three dynamic draws three uniform random neighbours per vertex
// per round; a simulation of n = 2^17 vertices for a few dozen rounds
// therefore consumes tens of millions of uniform variates. The generator
// here is xoshiro256**, seeded through splitmix64, which passes standard
// statistical batteries, has a 2^256−1 period, and generates a 64-bit word
// in a handful of instructions with no locking. Independent streams for
// parallel workers are derived by jumping the seed through splitmix64, which
// guarantees distinct, well-separated initial states.
//
// All generators in this package are deterministic functions of their seed:
// every experiment in the repository is exactly reproducible.
package rng

import "math/bits"

// Source is a xoshiro256** pseudo-random generator. The zero value is not a
// valid generator; use New or NewFrom.
type Source struct {
	s0, s1, s2, s3 uint64
}

// splitmix64 advances the state x and returns the next splitmix64 output.
// It is used only for seeding: any 64-bit seed, including 0, expands into a
// full-entropy 256-bit xoshiro state.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from the given 64-bit seed. Equal seeds
// yield identical streams.
func New(seed uint64) *Source {
	var s Source
	s.Reseed(seed)
	return &s
}

// NewFrom returns a generator whose state is derived from both a seed and a
// stream index. Distinct (seed, stream) pairs yield independent streams;
// this is how per-worker and per-trial generators are created.
func NewFrom(seed, stream uint64) *Source {
	x := seed
	_ = splitmix64(&x)
	x ^= stream * 0xd1342543de82ef95 // odd multiplier spreads stream indices
	var s Source
	s.s0 = splitmix64(&x)
	s.s1 = splitmix64(&x)
	s.s2 = splitmix64(&x)
	s.s3 = splitmix64(&x)
	s.normalize()
	return &s
}

// Reseed resets the generator state as if it had been created by New(seed).
func (s *Source) Reseed(seed uint64) {
	x := seed
	s.s0 = splitmix64(&x)
	s.s1 = splitmix64(&x)
	s.s2 = splitmix64(&x)
	s.s3 = splitmix64(&x)
	s.normalize()
}

// normalize guards against the all-zero state, which is the single fixed
// point of xoshiro256**. It cannot occur from splitmix64 seeding in
// practice, but the guard makes the invariant local and checkable.
func (s *Source) normalize() {
	if s.s0|s.s1|s.s2|s.s3 == 0 {
		s.s0 = 0x9e3779b97f4a7c15
	}
}

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Source) Uint64() uint64 {
	result := bits.RotateLeft64(s.s1*5, 7) * 9
	t := s.s1 << 17
	s.s2 ^= s.s0
	s.s3 ^= s.s1
	s.s1 ^= s.s2
	s.s0 ^= s.s3
	s.s2 ^= t
	s.s3 = bits.RotateLeft64(s.s3, 45)
	return result
}

// Fill overwrites dst with len(dst) successive Uint64 outputs, exactly as
// if Uint64 had been called once per element. Keeping the state in locals
// for the whole block lets the compiler keep it in registers, which is the
// refill path of the dynamics engine's per-shard sample buffer.
func (s *Source) Fill(dst []uint64) {
	s0, s1, s2, s3 := s.s0, s.s1, s.s2, s.s3
	for i := range dst {
		dst[i] = bits.RotateLeft64(s1*5, 7) * 9
		t := s1 << 17
		s2 ^= s0
		s3 ^= s1
		s1 ^= s2
		s0 ^= s3
		s2 ^= t
		s3 = bits.RotateLeft64(s3, 45)
	}
	s.s0, s.s1, s.s2, s.s3 = s0, s1, s2, s3
}

// Uint64n returns a uniform integer in [0, n). It panics if n == 0.
// It uses Lemire's multiply-shift rejection method, which needs slightly
// more than one multiplication per draw on average and no division in the
// common case.
func (s *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with n == 0")
	}
	hi, lo := bits.Mul64(s.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(s.Uint64(), n)
		}
	}
	return hi
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with n <= 0")
	}
	return int(s.Uint64n(uint64(n)))
}

// Float64 returns a uniform float64 in [0, 1) with 53 random bits.
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bernoulli returns true with probability p. Probabilities outside [0, 1]
// are clamped.
func (s *Source) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Perm returns a uniformly random permutation of [0, n) as a fresh slice.
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	s.ShuffleInts(p)
	return p
}

// ShuffleInts permutes p uniformly at random in place (Fisher–Yates).
func (s *Source) ShuffleInts(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Shuffle permutes n elements in place using the provided swap function.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// Jump produces a new Source whose stream is independent of the receiver's
// continued output, by reseeding from two fresh words of the receiver. This
// gives a cheap split operation for spawning trial-local generators.
func (s *Source) Jump() *Source {
	return NewFrom(s.Uint64(), s.Uint64())
}

// ChildSeed deterministically derives a 64-bit seed from a parent seed and
// a path of labels, by folding each label into a splitmix64 walk. Distinct
// (seed, labels...) paths yield well-separated seeds, so a service can hand
// every job a seed derived from (serverSeed, jobIndex) and every trial a
// seed derived from (jobSeed, trialIndex) while keeping the whole tree
// reproducible from the root seed alone. ChildSeed(s) with no labels is a
// plain one-step mix of s.
func ChildSeed(seed uint64, labels ...uint64) uint64 {
	x := seed
	out := splitmix64(&x)
	for _, l := range labels {
		x ^= l * 0xd1342543de82ef95 // odd multiplier spreads small labels
		out = splitmix64(&x)
	}
	return out
}
