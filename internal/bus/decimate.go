package bus

// Decimator thins a monotone per-trial round stream to a bounded number
// of emitted frames so that watching a run costs O(frame budget), not
// O(rounds): a 10⁶-round trial under the default budget publishes ≤ 256
// trajectory frames.
//
// The stride is fixed up front from the run's effective round budget
// (core.RoundBudget — the cap the executor itself enforces, so the worst
// case is known before the first round): with T trials sharing one
// per-run frame budget F, each trial keeps rounds that are multiples of
//
//	stride = ceil(roundBudget · T / F)
//
// clamped so every trial keeps at least round 0 (its initial blue count).
// Runs that stop early — consensus long before the cap — emit
// proportionally fewer frames; the terminal lifecycle event carries the
// final outcome, so the trajectory stream never needs a special last
// frame. Keep is pure per (trial-ordered) stream: callers may invoke it
// from one goroutine per trial without synchronisation, and the kept set
// is a deterministic function of (roundBudget, trials, budget) alone,
// which is what makes watched and unwatched runs byte-identical
// everywhere downstream.
type Decimator struct {
	stride int
}

// DefaultFrameBudget is the per-run trajectory frame budget used by the
// serve layer and bo3sim -progress.
const DefaultFrameBudget = 256

// NewDecimator sizes a decimator for a run of `trials` trials, each
// capped at roundBudget rounds, sharing `frames` published frames (<= 0
// selects DefaultFrameBudget).
func NewDecimator(roundBudget, trials, frames int) *Decimator {
	if frames <= 0 {
		frames = DefaultFrameBudget
	}
	if trials < 1 {
		trials = 1
	}
	if roundBudget < 1 {
		roundBudget = 1
	}
	// ceil(roundBudget*trials/frames); the product fits comfortably:
	// admission caps rounds at 2^20 and trials at 2^12.
	stride := (roundBudget*trials + frames - 1) / frames
	if stride < 1 {
		stride = 1
	}
	return &Decimator{stride: stride}
}

// Stride exposes the resolved stride (for tests and progress banners).
func (d *Decimator) Stride() int { return d.stride }

// Keep reports whether the frame for this round should be emitted.
func (d *Decimator) Keep(round int) bool { return round%d.stride == 0 }
