package bus

import (
	"fmt"
	"testing"
)

// BenchmarkBusPublish measures the publisher-side cost of fan-out — the
// number that must stay flat-ish as watchers attach, since it is paid on
// the simulation's critical path. Subscribers here drain continuously
// except in the wedged case, which pins the cost of the drop-oldest
// overflow path (a stalled watcher must cost the publisher no more than a
// healthy one).
func BenchmarkBusPublish(b *testing.B) {
	for _, subs := range []int{0, 1, 64} {
		b.Run(fmt.Sprintf("subs=%d", subs), func(b *testing.B) {
			benchPublish(b, subs, false)
		})
	}
	b.Run("subs=1/wedged", func(b *testing.B) {
		benchPublish(b, 1, true)
	})
}

func benchPublish(b *testing.B, subs int, wedged bool) {
	bus := New()
	bus.Topic("t", 64)
	stop := make(chan struct{})
	done := make(chan struct{}, subs)
	for i := 0; i < subs; i++ {
		_, s, ok := bus.Subscribe("t", 256, 0)
		if !ok {
			b.Fatal("subscribe failed")
		}
		defer s.Cancel()
		if wedged {
			continue // never reads: every publish beyond the ring drops
		}
		go func(s *Subscription) {
			defer func() { done <- struct{}{} }()
			for {
				if _, ok := s.Next(); ok {
					continue
				}
				select {
				case <-stop:
					return
				case <-s.Ready():
				}
			}
		}(s)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bus.Publish("t", "round", i)
	}
	b.StopTimer()
	close(stop)
	if !wedged {
		for i := 0; i < subs; i++ {
			<-done
		}
	}
}
