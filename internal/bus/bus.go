// Package bus is a bounded-backpressure pub/sub event bus: the streaming
// telemetry layer between the simulation executor and its watchers.
//
// Topics are named streams ("run/run-000001", "sweep/sweep-000002",
// "metrics"); publishers append events, subscribers tail them. The design
// centre is the production traffic shape "one simulation, N watchers":
//
//   - A publisher NEVER blocks. Each subscriber owns a fixed-size ring
//     buffer; when a slow or wedged subscriber falls behind, the oldest
//     undelivered event is dropped and the next event the subscriber does
//     receive carries the count of what it missed (Event.Dropped). The
//     simulation's wall time is therefore independent of how many watchers
//     are attached and how slowly they read.
//
//   - Subscribe is snapshot-then-tail: each topic retains a bounded prefix
//     of its history (the serve layer bounds run trajectories by
//     decimation, so "bounded" is also "complete" there), and Subscribe
//     atomically returns the retained events newer than the caller's
//     resume point together with a live tail — a late joiner sees current
//     state, then the firehose, with no gap and no duplicates.
//
//   - Topics are closed when their stream is semantically finished (the
//     run reached a terminal state); subscribers drain what remains and
//     then see EOF. A closed topic still serves snapshots to late joiners
//     until it is dropped by its owner's retention policy.
//
// All methods are safe for concurrent use; the stress tests exercise
// subscriber churn against hot publishers under the race detector.
package bus

import (
	"strings"
	"sync"
	"time"

	"repro/internal/metrics"
)

// Event is one frame on a topic.
type Event struct {
	// Seq is the topic-local sequence number, assigned at publish,
	// starting at 1. Gaps in delivered Seq values are exactly the frames
	// the subscriber lost to overflow (also counted in Dropped) plus any
	// frames published as ephemeral (never retained, so absent from
	// snapshots too).
	Seq uint64 `json:"seq"`
	// Type names the frame ("state", "round", "cell", "sweep", "metrics",
	// "heartbeat"); the payload shape is per type and owned by the
	// publisher.
	Type string `json:"type"`
	// Dropped counts frames this subscriber lost to ring overflow since
	// the previous frame it received. Zero on loss-free delivery; never
	// set on snapshot events.
	Dropped uint64 `json:"dropped,omitempty"`
	// Data is the frame payload, marshalled as-is on the wire.
	Data any `json:"data,omitempty"`
}

// topic is one named stream.
type topic struct {
	seq       uint64
	retained  []Event // bounded prefix replayed to late joiners
	retainCap int
	subs      map[*Subscription]struct{}
	closed    bool
	// pubC and dropC are the topic-class counter children, resolved once
	// at topic creation so the publish hot path does no label lookups.
	pubC, dropC *metrics.Counter
}

// Bus is the set of topics plus bus-wide counters.
type Bus struct {
	mu     sync.Mutex
	topics map[string]*topic
	mx     *Metrics

	subs int
}

// DefaultRetain is the retained-history cap for topics created implicitly
// by Publish rather than explicitly by Topic.
const DefaultRetain = 256

// Metrics is the bus's instrument bundle. Published and dropped frames
// are counted per topic class — the prefix before the first "/" in the
// topic name ("run", "sweep", "metrics") — so a fleet of run topics is
// one wire series, not thousands.
type Metrics struct {
	// PublishSeconds is the full cost of one publish: lock, retention,
	// fan-out to every subscriber ring.
	PublishSeconds *metrics.Histogram
	// Published and Dropped count frames per topic class; Dropped counts
	// one per subscriber per lost frame, exactly like Stats.Dropped.
	Published *metrics.CounterVec
	Dropped   *metrics.CounterVec
}

// NewMetrics registers the bus instruments on reg.
func NewMetrics(reg *metrics.Registry) *Metrics {
	return &Metrics{
		PublishSeconds: reg.Histogram("bo3_bus_publish_seconds", "Event-bus publish latency (retention plus fan-out to all subscriber rings).", metrics.FastBuckets),
		Published:      reg.CounterVec("bo3_bus_published_total", "Events accepted onto the bus, by topic class.", "topic"),
		Dropped:        reg.CounterVec("bo3_bus_dropped_total", "Frames lost to subscriber-ring overflow, by topic class (one per subscriber per lost frame).", "topic"),
	}
}

// topicClass folds a topic name to its metrics label: the prefix before
// the first "/" ("run/run-000001" -> "run"), or the whole name.
func topicClass(name string) string {
	if i := strings.IndexByte(name, '/'); i >= 0 {
		return name[:i]
	}
	return name
}

// New returns an empty bus instrumented against a private registry (the
// counters still drive Stats; they are just not exported anywhere).
func New() *Bus {
	return NewInstrumented(NewMetrics(metrics.NewRegistry()))
}

// NewInstrumented returns an empty bus counting into m's instruments.
func NewInstrumented(m *Metrics) *Bus {
	return &Bus{topics: make(map[string]*topic), mx: m}
}

// Stats is a snapshot of the bus-wide counters.
type Stats struct {
	// Published counts events accepted by Publish/PublishEphemeral over
	// the bus's lifetime; Dropped counts subscriber-ring overflows (one
	// per subscriber per lost event — a frame missed by three slow
	// watchers counts three).
	Published, Dropped uint64
	// Subscribers is the number of currently attached subscriptions.
	Subscribers int
}

// Stats returns the current counters, read back from the metrics
// instruments (one source of truth for /v1/stats and /metrics).
func (b *Bus) Stats() Stats {
	b.mu.Lock()
	subs := b.subs
	b.mu.Unlock()
	var published, dropped uint64
	for _, v := range b.mx.Published.Values() {
		published += uint64(v)
	}
	for _, v := range b.mx.Dropped.Values() {
		dropped += uint64(v)
	}
	return Stats{Published: published, Dropped: dropped, Subscribers: subs}
}

// Topic ensures the named topic exists with the given retained-history
// cap (events beyond it are forgotten oldest-first, exactly like a slow
// subscriber's ring). Calling Topic on an existing topic only raises the
// cap, never lowers it mid-stream.
func (b *Bus) Topic(name string, retainCap int) {
	if retainCap <= 0 {
		retainCap = DefaultRetain
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	t := b.topicLocked(name, retainCap)
	if t.retainCap < retainCap {
		t.retainCap = retainCap
	}
}

// topicLocked returns the named topic, creating it if needed; callers
// hold b.mu.
func (b *Bus) topicLocked(name string, retainCap int) *topic {
	t, ok := b.topics[name]
	if !ok {
		cls := topicClass(name)
		t = &topic{
			retainCap: retainCap,
			subs:      make(map[*Subscription]struct{}),
			pubC:      b.mx.Published.With(cls),
			dropC:     b.mx.Dropped.With(cls),
		}
		b.topics[name] = t
	}
	return t
}

// Publish appends one event to the topic (created with DefaultRetain if
// unknown), retains it for late joiners, and fans it out to every
// subscriber. Publishing to a closed topic is a no-op: the stream has
// already delivered its terminal event.
func (b *Bus) Publish(name, typ string, data any) { b.publish(name, typ, data, true) }

// PublishEphemeral is Publish without retention: the event reaches only
// the subscribers attached right now and is absent from later snapshots.
// Used for frames that are dense and individually disposable (a sweep
// topic's per-round trajectory mirror), where replaying history must not
// crowd out the frames snapshots exist for.
func (b *Bus) PublishEphemeral(name, typ string, data any) { b.publish(name, typ, data, false) }

func (b *Bus) publish(name, typ string, data any, retain bool) {
	start := time.Now()
	b.mu.Lock()
	defer b.mu.Unlock()
	t := b.topicLocked(name, DefaultRetain)
	if t.closed {
		return
	}
	t.seq++
	ev := Event{Seq: t.seq, Type: typ, Data: data}
	t.pubC.Inc()
	if retain {
		if len(t.retained) >= t.retainCap {
			t.retained = append(t.retained[1:len(t.retained):len(t.retained)], ev)
		} else {
			t.retained = append(t.retained, ev)
		}
	}
	for s := range t.subs {
		if s.wants(typ) {
			s.pushLocked(ev, t.dropC)
		}
	}
	b.mx.PublishSeconds.ObserveSince(start)
}

// Close marks the topic terminal: attached subscribers drain their rings
// and then read EOF, and future publishes are dropped. The retained
// history stays available to late joiners (snapshot, then immediate EOF)
// until Drop. Closing an unknown or already-closed topic is a no-op.
func (b *Bus) Close(name string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	t, ok := b.topics[name]
	if !ok || t.closed {
		return
	}
	t.closed = true
	for s := range t.subs {
		s.closed = true
		s.wakeLocked()
	}
}

// Drop removes the topic entirely — retained history included — waking
// any attached subscribers into EOF (after draining what their rings
// already hold). The owner calls it when the underlying entity is evicted.
func (b *Bus) Drop(name string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	t, ok := b.topics[name]
	if !ok {
		return
	}
	delete(b.topics, name)
	for s := range t.subs {
		s.closed = true
		s.detached = true
		s.wakeLocked()
		b.subs--
	}
	t.subs = nil
}

// Subscribers reports how many subscriptions are attached to the topic.
func (b *Bus) Subscribers(name string) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	t, ok := b.topics[name]
	if !ok {
		return 0
	}
	return len(t.subs)
}

// Subscribe attaches to the topic and returns the retained events with
// Seq > afterSeq (the snapshot: pass 0 for everything, or a Last-Event-ID
// to resume) plus a live subscription whose ring holds at most buf events
// (<= 0 selects DefaultRetain). Snapshot and attach are atomic: an event
// published concurrently lands in exactly one of the two. ok is false for
// an unknown topic — the bus never invents streams for watchers, only for
// publishers.
//
// A non-empty types list restricts the subscription (snapshot and tail)
// to those event types; other frames neither occupy the ring nor count as
// drops. A consumer that must be lossless for a sparse event class on a
// topic that also carries a dense one (the sweep-results adapter, which
// needs every "cell" but no "round") filters here and sizes buf to the
// sparse class's worst case.
func (b *Bus) Subscribe(name string, buf int, afterSeq uint64, types ...string) (snapshot []Event, s *Subscription, ok bool) {
	if buf <= 0 {
		buf = DefaultRetain
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	t, exists := b.topics[name]
	if !exists {
		return nil, nil, false
	}
	s = &Subscription{
		bus:    b,
		topic:  t,
		name:   name,
		ring:   make([]Event, buf),
		ready:  make(chan struct{}, 1),
		closed: t.closed,
	}
	if len(types) > 0 {
		s.types = make(map[string]struct{}, len(types))
		for _, typ := range types {
			s.types[typ] = struct{}{}
		}
	}
	for _, ev := range t.retained {
		if ev.Seq > afterSeq && s.wants(ev.Type) {
			snapshot = append(snapshot, ev)
		}
	}
	t.subs[s] = struct{}{}
	b.subs++
	return snapshot, s, true
}

// Subscription is one subscriber's bounded view of a topic. Methods are
// safe for concurrent use, though a subscription normally has a single
// consumer goroutine.
type Subscription struct {
	bus   *Bus
	topic *topic
	name  string

	// Ring buffer of undelivered events; start indexes the oldest, n
	// counts the occupied slots. Guarded by bus.mu.
	ring     []Event
	start, n int
	// types, when non-nil, restricts delivery to those event types.
	types map[string]struct{}
	// dropped counts ring overflows since the last delivered event; the
	// next Next() stamps it onto the event and resets it.
	dropped uint64
	// closed: the topic reached EOF (Close or Drop); the ring is still
	// drained first. detached: Cancel or Drop already removed this
	// subscription from the topic.
	closed   bool
	detached bool

	ready chan struct{}
}

// wants reports whether the subscription's type filter admits typ; reads
// only immutable state, so it needs no lock.
func (s *Subscription) wants(typ string) bool {
	if s.types == nil {
		return true
	}
	_, ok := s.types[typ]
	return ok
}

// pushLocked appends one event to the ring, dropping the oldest on
// overflow; callers hold bus.mu.
func (s *Subscription) pushLocked(ev Event, dropC *metrics.Counter) {
	if s.n == len(s.ring) {
		s.start = (s.start + 1) % len(s.ring)
		s.n--
		s.dropped++
		dropC.Inc()
	}
	s.ring[(s.start+s.n)%len(s.ring)] = ev
	s.n++
	s.wakeLocked()
}

// wakeLocked signals Ready without blocking; callers hold bus.mu.
func (s *Subscription) wakeLocked() {
	select {
	case s.ready <- struct{}{}:
	default:
	}
}

// Ready returns a channel that receives a token whenever the subscription
// may have progressed (an event arrived, or the topic closed). The
// consumer loop is: drain Next until it returns ok=false, check Done,
// then wait on Ready (racing it against the client's context and the
// heartbeat timer).
func (s *Subscription) Ready() <-chan struct{} { return s.ready }

// Next pops the oldest undelivered event. ok is false when the ring is
// empty — which means "wait on Ready" unless Done also reports true. A
// returned event carries in Dropped the number of frames lost to overflow
// since the previous delivery.
func (s *Subscription) Next() (ev Event, ok bool) {
	s.bus.mu.Lock()
	defer s.bus.mu.Unlock()
	if s.n == 0 {
		return Event{}, false
	}
	ev = s.ring[s.start]
	s.ring[s.start] = Event{} // release the payload reference
	s.start = (s.start + 1) % len(s.ring)
	s.n--
	ev.Dropped = s.dropped
	s.dropped = 0
	return ev, true
}

// Done reports EOF: the topic is closed or dropped AND the ring is fully
// drained. Events still buffered are always deliverable first.
func (s *Subscription) Done() bool {
	s.bus.mu.Lock()
	defer s.bus.mu.Unlock()
	return s.closed && s.n == 0
}

// Cancel detaches the subscription from its topic. Idempotent; safe after
// Drop. The ring's remaining events stay readable, but nothing new
// arrives.
func (s *Subscription) Cancel() {
	s.bus.mu.Lock()
	defer s.bus.mu.Unlock()
	if s.detached {
		return
	}
	s.detached = true
	s.closed = true
	delete(s.topic.subs, s)
	s.bus.subs--
}
