package bus

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"
)

// drain pops everything currently buffered.
func drain(s *Subscription) []Event {
	var out []Event
	for {
		ev, ok := s.Next()
		if !ok {
			return out
		}
		out = append(out, ev)
	}
}

func TestPublishSubscribeTail(t *testing.T) {
	b := New()
	b.Topic("t", 16)
	snap, sub, ok := b.Subscribe("t", 8, 0)
	if !ok {
		t.Fatal("subscribe to explicit topic failed")
	}
	defer sub.Cancel()
	if len(snap) != 0 {
		t.Fatalf("snapshot of fresh topic = %d events, want 0", len(snap))
	}
	for i := 0; i < 3; i++ {
		b.Publish("t", "x", i)
	}
	got := drain(sub)
	if len(got) != 3 {
		t.Fatalf("tail delivered %d events, want 3", len(got))
	}
	for i, ev := range got {
		if ev.Seq != uint64(i+1) || ev.Type != "x" || ev.Data.(int) != i || ev.Dropped != 0 {
			t.Errorf("event %d = %+v", i, ev)
		}
	}
}

func TestSubscribeUnknownTopic(t *testing.T) {
	b := New()
	if _, _, ok := b.Subscribe("nope", 8, 0); ok {
		t.Fatal("subscribe to unknown topic succeeded")
	}
}

func TestSnapshotThenTailNoGapNoDup(t *testing.T) {
	b := New()
	for i := 0; i < 5; i++ {
		b.Publish("t", "x", i)
	}
	snap, sub, ok := b.Subscribe("t", 8, 0)
	if !ok {
		t.Fatal("subscribe failed")
	}
	defer sub.Cancel()
	b.Publish("t", "x", 5)
	all := append(append([]Event(nil), snap...), drain(sub)...)
	if len(all) != 6 {
		t.Fatalf("snapshot+tail delivered %d events, want 6", len(all))
	}
	for i, ev := range all {
		if ev.Seq != uint64(i+1) {
			t.Errorf("event %d has seq %d, want %d (gap or duplicate)", i, ev.Seq, i+1)
		}
	}
}

func TestResumeAfterSeq(t *testing.T) {
	b := New()
	for i := 0; i < 5; i++ {
		b.Publish("t", "x", i)
	}
	snap, sub, _ := b.Subscribe("t", 8, 3)
	defer sub.Cancel()
	if len(snap) != 2 || snap[0].Seq != 4 || snap[1].Seq != 5 {
		t.Fatalf("resume snapshot = %+v, want seqs 4,5", snap)
	}
}

func TestOverflowDropsOldestAndCounts(t *testing.T) {
	b := New()
	b.Topic("t", 64)
	_, sub, _ := b.Subscribe("t", 4, 0)
	defer sub.Cancel()
	for i := 0; i < 10; i++ {
		b.Publish("t", "x", i)
	}
	got := drain(sub)
	if len(got) != 4 {
		t.Fatalf("wedged subscriber drained %d events, want ring size 4", len(got))
	}
	// Oldest 6 dropped; survivors are 6..9, and the first delivered frame
	// reports the loss.
	if got[0].Data.(int) != 6 || got[0].Dropped != 6 {
		t.Errorf("first frame after overflow = %+v, want data 6 dropped 6", got[0])
	}
	for _, ev := range got[1:] {
		if ev.Dropped != 0 {
			t.Errorf("later frame carries dropped %d, want 0: %+v", ev.Dropped, ev)
		}
	}
	if st := b.Stats(); st.Dropped != 6 || st.Published != 10 {
		t.Errorf("bus stats = %+v, want 10 published 6 dropped", st)
	}
}

func TestRetentionCapDropsOldestFromSnapshot(t *testing.T) {
	b := New()
	b.Topic("t", 4)
	for i := 0; i < 10; i++ {
		b.Publish("t", "x", i)
	}
	snap, sub, _ := b.Subscribe("t", 8, 0)
	sub.Cancel()
	if len(snap) != 4 || snap[0].Seq != 7 || snap[3].Seq != 10 {
		t.Fatalf("snapshot after retention overflow = %+v, want seqs 7..10", snap)
	}
}

func TestEphemeralSkipsSnapshot(t *testing.T) {
	b := New()
	b.Topic("t", 16)
	_, live, _ := b.Subscribe("t", 8, 0)
	defer live.Cancel()
	b.Publish("t", "cell", 1)
	b.PublishEphemeral("t", "round", 2)
	if got := drain(live); len(got) != 2 {
		t.Fatalf("attached subscriber got %d events, want both", len(got))
	}
	snap, late, _ := b.Subscribe("t", 8, 0)
	late.Cancel()
	if len(snap) != 1 || snap[0].Type != "cell" {
		t.Fatalf("late snapshot = %+v, want only the retained cell event", snap)
	}
}

func TestTypeFilter(t *testing.T) {
	b := New()
	b.Topic("t", 16)
	b.Publish("t", "cell", 0)
	b.Publish("t", "round", 1)
	snap, sub, _ := b.Subscribe("t", 4, 0, "cell", "sweep")
	defer sub.Cancel()
	if len(snap) != 1 || snap[0].Type != "cell" {
		t.Fatalf("filtered snapshot = %+v, want the cell event only", snap)
	}
	for i := 0; i < 10; i++ {
		b.Publish("t", "round", i) // must not occupy the ring or count drops
	}
	b.Publish("t", "sweep", "fin")
	got := drain(sub)
	if len(got) != 1 || got[0].Type != "sweep" || got[0].Dropped != 0 {
		t.Fatalf("filtered tail = %+v, want one loss-free sweep event", got)
	}
}

func TestCloseDrainsThenEOF(t *testing.T) {
	b := New()
	b.Publish("t", "x", 0)
	_, sub, _ := b.Subscribe("t", 4, 0)
	b.Publish("t", "x", 1)
	b.Close("t")
	b.Publish("t", "x", 2) // after close: dropped on the floor
	got := drain(sub)
	if len(got) != 1 || got[0].Data.(int) != 1 {
		t.Fatalf("post-close drain = %+v, want just event 1", got)
	}
	if !sub.Done() {
		t.Fatal("subscription not Done after close and drain")
	}
	// Late joiner on the closed topic: snapshot then immediate EOF.
	snap, late, ok := b.Subscribe("t", 4, 0)
	if !ok {
		t.Fatal("closed topic must still serve snapshots")
	}
	defer late.Cancel()
	if len(snap) != 2 {
		t.Fatalf("late snapshot on closed topic = %d events, want 2", len(snap))
	}
	if !late.Done() {
		t.Fatal("late subscription on closed topic not Done")
	}
}

func TestDropWakesSubscribersIntoEOF(t *testing.T) {
	b := New()
	b.Publish("t", "x", 0)
	_, sub, _ := b.Subscribe("t", 4, 0)
	b.Drop("t")
	select {
	case <-sub.Ready():
	case <-time.After(time.Second):
		t.Fatal("Drop did not wake the subscriber")
	}
	if got := drain(sub); len(got) != 0 {
		t.Fatalf("ring survived Drop with %d events... want drained-to-empty ring to EOF", len(got))
	}
	if !sub.Done() {
		t.Fatal("subscription not Done after Drop")
	}
	if _, _, ok := b.Subscribe("t", 4, 0); ok {
		t.Fatal("dropped topic still subscribable")
	}
	sub.Cancel() // must be a safe no-op after Drop
	if st := b.Stats(); st.Subscribers != 0 {
		t.Errorf("subscribers = %d after drop+cancel, want 0", st.Subscribers)
	}
}

func TestCancelDetaches(t *testing.T) {
	b := New()
	b.Publish("t", "x", 0)
	_, sub, _ := b.Subscribe("t", 4, 0)
	if n := b.Subscribers("t"); n != 1 {
		t.Fatalf("subscribers = %d, want 1", n)
	}
	sub.Cancel()
	sub.Cancel() // idempotent
	if n := b.Subscribers("t"); n != 0 {
		t.Fatalf("subscribers after cancel = %d, want 0", n)
	}
	b.Publish("t", "x", 1)
	if got := drain(sub); len(got) != 0 {
		t.Fatalf("cancelled subscription received %d events", len(got))
	}
}

func TestReadySignalCoalesces(t *testing.T) {
	b := New()
	b.Topic("t", 4)
	_, sub, _ := b.Subscribe("t", 8, 0)
	defer sub.Cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-sub.Ready()
		for len(drain(sub)) < 3 {
			<-sub.Ready()
		}
	}()
	for i := 0; i < 3; i++ {
		b.Publish("t", "x", i)
	}
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("consumer never saw all three events")
	}
}

// TestChurnUnderFirehose is the race-detector stress: hot publishers on
// several topics while subscribers attach, read (some slowly), resubscribe
// with resume, and detach, with topic close/drop mixed in. Correctness
// asserted: every delivered (seq, dropped) stream per subscriber is
// gap-consistent — seq strictly increases and the dropped counter accounts
// for at least the frames missing between consecutive deliveries being
// plausible (<= gap).
func TestChurnUnderFirehose(t *testing.T) {
	b := New()
	topics := []string{"run/a", "run/b", "sweep/c"}
	for _, tp := range topics {
		b.Topic(tp, 128)
	}
	stop := make(chan struct{})
	var pubWG sync.WaitGroup
	for _, tp := range topics {
		for w := 0; w < 3; w++ {
			pubWG.Add(1)
			go func(tp string) {
				defer pubWG.Done()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					if i%7 == 0 {
						b.PublishEphemeral(tp, "round", i)
					} else {
						b.Publish(tp, "round", i)
					}
					if i%64 == 0 {
						runtime.Gosched() // keep the mutex contended, not starved
					}
				}
			}(tp)
		}
	}

	var subWG sync.WaitGroup
	for c := 0; c < 8; c++ {
		subWG.Add(1)
		go func(c int) {
			defer subWG.Done()
			for iter := 0; iter < 10; iter++ {
				tp := topics[(c+iter)%len(topics)]
				snap, sub, ok := b.Subscribe(tp, 16, uint64(iter)*3)
				if !ok {
					continue
				}
				last := uint64(0)
				check := func(ev Event) {
					if ev.Seq <= last {
						t.Errorf("topic %s: seq went %d -> %d", tp, last, ev.Seq)
					}
					last = ev.Seq
				}
				for _, ev := range snap {
					check(ev)
				}
				reads := 0
				for reads < 48 {
					ev, ok := sub.Next()
					if !ok {
						if sub.Done() {
							break
						}
						select {
						case <-sub.Ready():
						case <-time.After(10 * time.Millisecond):
						}
						continue
					}
					check(ev)
					reads++
					if c%3 == 0 && reads%24 == 0 {
						time.Sleep(time.Millisecond) // slow reader: forces overflow
					}
				}
				sub.Cancel()
			}
		}(c)
	}
	subWG.Wait()
	close(stop)
	pubWG.Wait()

	st := b.Stats()
	if st.Subscribers != 0 {
		t.Errorf("subscribers leaked: %d", st.Subscribers)
	}
	if st.Published == 0 {
		t.Error("stress published nothing")
	}

	// Churn against close/drop on a dedicated topic.
	for i := 0; i < 50; i++ {
		name := fmt.Sprintf("churn/%d", i)
		b.Topic(name, 8)
		var wg sync.WaitGroup
		for s := 0; s < 4; s++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				_, sub, ok := b.Subscribe(name, 4, 0)
				if !ok {
					return
				}
				for !sub.Done() {
					if _, ok := sub.Next(); !ok {
						select {
						case <-sub.Ready():
						case <-time.After(5 * time.Millisecond):
						}
					}
				}
				sub.Cancel()
			}()
		}
		for j := 0; j < 32; j++ {
			b.Publish(name, "x", j)
		}
		if i%2 == 0 {
			b.Close(name)
			b.Drop(name)
		} else {
			b.Drop(name)
		}
		wg.Wait()
	}
	if st := b.Stats(); st.Subscribers != 0 {
		t.Errorf("subscribers leaked after close/drop churn: %d", st.Subscribers)
	}
}

func TestDecimatorBudget(t *testing.T) {
	cases := []struct {
		roundBudget, trials, frames int
		wantStride                  int
	}{
		{1 << 20, 1, 256, 4096},
		{256, 1, 256, 1},
		{100, 1, 256, 1},
		{1000, 4, 256, 16},
		{1 << 20, 4096, 256, 16777216}, // stride > budget: only round 0 per trial
		{0, 0, 0, 1},
	}
	for _, c := range cases {
		d := NewDecimator(c.roundBudget, c.trials, c.frames)
		if d.Stride() != c.wantStride {
			t.Errorf("NewDecimator(%d, %d, %d).Stride() = %d, want %d",
				c.roundBudget, c.trials, c.frames, d.Stride(), c.wantStride)
		}
		if !d.Keep(0) {
			t.Errorf("round 0 must always be kept (stride %d)", d.Stride())
		}
	}

	// A full-budget run stays within the frame budget per trial.
	d := NewDecimator(1<<20, 1, 256)
	kept := 0
	for r := 0; r < 1<<20; r++ {
		if d.Keep(r) {
			kept++
		}
	}
	if kept > 256 {
		t.Errorf("decimated 2^20-round run emitted %d frames, budget 256", kept)
	}
	if kept < 128 {
		t.Errorf("decimated run emitted only %d frames — stride overshoots the budget", kept)
	}
}
