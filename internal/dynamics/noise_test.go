package dynamics

import (
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/opinion"
	"repro/internal/rng"
)

func TestNoiseValidation(t *testing.T) {
	if err := (Rule{K: 3, Noise: -0.1}).Validate(); err == nil {
		t.Error("negative noise accepted")
	}
	if err := (Rule{K: 3, Noise: 0.6}).Validate(); err == nil {
		t.Error("noise > 1/2 accepted")
	}
	if err := (Rule{K: 3, Noise: 0.5}).Validate(); err != nil {
		t.Errorf("noise = 1/2 rejected: %v", err)
	}
}

func TestNoiseName(t *testing.T) {
	got := (Rule{K: 3, Noise: 0.05}).Name()
	if !strings.Contains(got, "noise=0.05") {
		t.Errorf("Name = %q", got)
	}
}

func TestZeroNoiseMatchesNoiselessTrajectory(t *testing.T) {
	g := graph.RandomRegular(128, 8, rng.New(1))
	init := opinion.RandomConfig(128, 0.35, rng.New(2))
	a, _ := New(g, Rule{K: 3}, init, Options{Seed: 3, Workers: 1})
	b, _ := New(g, Rule{K: 3, Noise: 0}, init, Options{Seed: 3, Workers: 1})
	for i := 0; i < 10; i++ {
		a.Step()
		b.Step()
		if !a.Config().Equal(b.Config()) {
			t.Fatalf("noise=0 diverged from noiseless at round %d", i+1)
		}
	}
}

func TestSmallNoiseStillConvergesToMajority(t *testing.T) {
	// Mild noise does not stop the majority from winning on a dense graph,
	// though consensus is no longer absorbing: check majority dominance.
	g := graph.RandomRegular(1024, 64, rng.New(4))
	init := opinion.RandomConfig(1024, 0.35, rng.New(5))
	p, err := New(g, Rule{K: 3, Noise: 0.02}, init, Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		p.Step()
	}
	if frac := p.Config().BlueFraction(); frac > 0.1 {
		t.Errorf("blue fraction %v after 40 noisy rounds", frac)
	}
}

func TestHeavyNoiseDestroysConsensus(t *testing.T) {
	// At noise 1/2 every sample is a coin flip: the configuration stays
	// near half-half regardless of the initial majority.
	g := graph.RandomRegular(1024, 64, rng.New(7))
	init := opinion.RandomConfig(1024, 0.2, rng.New(8))
	p, err := New(g, Rule{K: 3, Noise: 0.5}, init, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		p.Step()
	}
	frac := p.Config().BlueFraction()
	if frac < 0.4 || frac > 0.6 {
		t.Errorf("blue fraction %v at max noise, want ~0.5", frac)
	}
}

func TestNoiseKeepsConfigurationDrifting(t *testing.T) {
	// From red consensus, noise keeps reintroducing blues: consensus is
	// not absorbing any more.
	g := graph.Complete(256)
	init := opinion.NewConfig(256) // all red
	p, err := New(g, Rule{K: 3, Noise: 0.1}, init, Options{Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	sawBlue := false
	for i := 0; i < 20 && !sawBlue; i++ {
		p.Step()
		if p.Config().Blues() > 0 {
			sawBlue = true
		}
	}
	if !sawBlue {
		t.Error("noise never reintroduced a blue opinion")
	}
}
