package dynamics_test

import (
	"fmt"

	"repro/internal/dynamics"
	"repro/internal/graph"
	"repro/internal/opinion"
	"repro/internal/rng"
)

// One full Best-of-Three run on a dense random regular graph: a 40% blue
// start collapses to red consensus in a handful of rounds.
func ExampleProcess_Run() {
	g := graph.RandomRegular(1024, 64, rng.New(1))
	init := opinion.RandomConfig(1024, 0.4, rng.New(2))
	p, err := dynamics.New(g, dynamics.BestOfThree, init, dynamics.Options{Seed: 3, Workers: 1})
	if err != nil {
		panic(err)
	}
	res := p.Run(100)
	fmt.Println("consensus:", res.Consensus)
	fmt.Println("winner:   ", res.Winner)
	fmt.Println("fast:     ", res.Rounds < 20)
	// Output:
	// consensus: true
	// winner:    R
	// fast:      true
}

// Protocol rules are value types; Name renders the full configuration.
func ExampleRule_Name() {
	fmt.Println(dynamics.BestOfThree.Name())
	fmt.Println(dynamics.BestOfTwo.Name())
	fmt.Println(dynamics.Rule{K: 3, Noise: 0.05}.Name())
	// Output:
	// best-of-3
	// best-of-2/keep
	// best-of-3/noise=0.05
}
