package dynamics

import (
	"fmt"

	"repro/internal/opinion"
	"repro/internal/rng"
)

// AsyncProcess is the asynchronous (sequential-activation) variant of
// Best-of-k: at each tick a single uniformly random vertex wakes up,
// samples k neighbours and updates. n ticks form one "sweep", the natural
// unit comparable to one synchronous round.
//
// The paper analyses the synchronous dynamic; the asynchronous variant is
// provided as an extension so that the examples can contrast the two
// activation models on the same workloads.
type AsyncProcess struct {
	g     Topology
	rule  Rule
	cfg   *opinion.Config
	src   *rng.Source
	ticks int
	blues int
}

// NewAsync returns an asynchronous process. The initial configuration is
// copied.
func NewAsync(g Topology, rule Rule, init *opinion.Config, seed uint64) (*AsyncProcess, error) {
	if err := rule.Validate(); err != nil {
		return nil, err
	}
	if rule.WithoutReplacement {
		return nil, fmt.Errorf("dynamics: the async process does not implement without-replacement sampling")
	}
	if g.N() != init.N() {
		return nil, fmt.Errorf("dynamics: graph has %d vertices, configuration has %d", g.N(), init.N())
	}
	if g.N() == 0 {
		return nil, fmt.Errorf("dynamics: async process requires a non-empty graph")
	}
	if g.MinDegree() == 0 {
		return nil, fmt.Errorf("dynamics: graph %s has an isolated vertex", g.Name())
	}
	cfg := init.Clone()
	return &AsyncProcess{g: g, rule: rule, cfg: cfg, src: rng.New(seed), blues: cfg.Blues()}, nil
}

// Config returns the current configuration. The returned value aliases
// live process state — do not mutate it — and is updated in place by the
// next Tick; Clone it to keep a snapshot.
func (a *AsyncProcess) Config() *opinion.Config { return a.cfg }

// Ticks returns the number of single-vertex updates performed.
func (a *AsyncProcess) Ticks() int { return a.ticks }

// Sweeps returns the number of completed sweeps (ticks / n).
func (a *AsyncProcess) Sweeps() int { return a.ticks / a.g.N() }

// Blues returns the current number of Blue vertices (tracked incrementally,
// so the read is O(1)).
func (a *AsyncProcess) Blues() int { return a.blues }

// Tick activates one uniformly random vertex.
func (a *AsyncProcess) Tick() {
	v := a.src.Intn(a.g.N())
	deg := a.g.Degree(v)
	k := a.rule.K
	blues := 0
	for i := 0; i < k; i++ {
		w := a.g.Neighbor(v, a.src.Intn(deg))
		if a.cfg.Get(w) == opinion.Blue {
			blues++
		}
	}
	if a.rule.Noise > 0 {
		// Same misreporting model as the synchronous scalar path: each of
		// the k observed opinions flips independently with probability Noise.
		blues += a.src.Binomial(k-blues, a.rule.Noise) - a.src.Binomial(blues, a.rule.Noise)
	}
	var col opinion.Colour
	switch {
	case 2*blues > k:
		col = opinion.Blue
	case 2*blues < k:
		col = opinion.Red
	default:
		if a.rule.Tie == TieKeep {
			col = a.cfg.Get(v)
		} else if a.src.Bernoulli(0.5) {
			col = opinion.Blue
		} else {
			col = opinion.Red
		}
	}
	old := a.cfg.Get(v)
	if old != col {
		if col == opinion.Blue {
			a.blues++
		} else {
			a.blues--
		}
		a.cfg.Set(v, col)
	}
	a.ticks++
}

// Run advances until consensus or maxSweeps·n ticks. The returned Rounds
// counts sweeps, with the tick remainder rounded up, so results are
// comparable to the synchronous engine.
func (a *AsyncProcess) Run(maxSweeps int) Result {
	n := a.g.N()
	maxTicks := maxSweeps * n
	for a.ticks < maxTicks {
		if a.blues == 0 || a.blues == n {
			break
		}
		a.Tick()
	}
	res := Result{Rounds: (a.ticks + n - 1) / n}
	if col, ok := a.cfg.IsConsensus(); ok {
		res.Consensus = true
		res.Winner = col
	} else {
		res.Winner = a.cfg.Majority()
	}
	return res
}
