package dynamics

import (
	"math"

	"repro/internal/stats"
)

// Mean-field fast path.
//
// On a mean-field-eligible topology (graph.Kn) every vertex draws its k
// samples uniformly from the other n−1 vertices, so conditional on the
// current blue count b all vertices update independently with colour-
// dependent probabilities: a Red holder sees b blue vertices among its
// n−1 neighbours, a Blue holder sees b−1 (self-exclusion). One synchronous
// round is therefore
//
//	B' ~ Bin(n−b, pAdopt(b, red)) + Bin(b, pAdopt(b, blue)),
//
// exactly the transition kernel of the internal/markov chain — the
// adoption probabilities below reuse stats.BinomialTail, the same function
// markov.New tabulates, so the two agree to the last bit for the paper's
// odd-k noiseless rules. The engine draws the two binomials in O(1)
// expected time (rng.Source.Binomial uses BTRS for large n·p), replacing
// Θ(n·k) per-sample work per round.

// stepMeanField advances one round on the blue-count chain. All draws come
// from shard 0's source; worker count is irrelevant to the stream.
func (p *Process) stepMeanField() {
	n := p.g.N()
	b := p.mfBlues
	src := p.shards[0].src
	pRed := p.adoptBlueProb(b, false)
	pBlue := p.adoptBlueProb(b, true)
	p.mfBlues = src.Binomial(n-b, pRed) + src.Binomial(b, pBlue)
	p.mfDirty = true
}

// adoptBlueProb returns the probability that a holder of the given colour
// ends the round Blue, given the pre-round blue count b. It honours the
// full Rule: sample count k, with/without replacement (falling back to
// with-replacement when k exceeds the degree, mirroring the general
// engine), per-sample noise, and both tie rules.
func (p *Process) adoptBlueProb(b int, holderBlue bool) float64 {
	k := p.rule.K
	deg := p.g.N() - 1
	sees := b
	if holderBlue {
		sees = b - 1
		if sees < 0 {
			sees = 0
		}
	}
	maj := k/2 + 1
	noise := p.rule.Noise

	if p.rule.WithoutReplacement && deg >= k {
		return p.majorityProbHypergeometric(sees, deg, k, noise, holderBlue)
	}

	// With replacement: each sample is independently observed Blue with
	// probability q = p·(1−η) + (1−p)·η (true-blue probability p, flip
	// probability η), so the observed blue count is Bin(k, q).
	q := float64(sees) / float64(deg)
	if noise > 0 {
		q = q*(1-noise) + (1-q)*noise
	}
	adopt := stats.BinomialTail(k, maj, q)
	if k%2 == 0 {
		adopt += p.tieBlueShare(holderBlue) * binomialPoint(k, k/2, q)
	}
	return clamp01(adopt)
}

// majorityProbHypergeometric handles sampling without replacement: the
// true blue count among k distinct samples is Hypergeometric(deg, sees, k)
// and each sample is then independently flipped with probability noise, so
// the observed count given j true blues is Bin(j, 1−η) + Bin(k−j, η).
// k is small, so the O(k³) convolution is negligible next to a general-
// engine round.
func (p *Process) majorityProbHypergeometric(sees, deg, k int, noise float64, holderBlue bool) float64 {
	maj := k/2 + 1
	adopt := 0.0
	tie := 0.0
	lo := k - (deg - sees)
	if lo < 0 {
		lo = 0
	}
	hi := k
	if sees < hi {
		hi = sees
	}
	for j := lo; j <= hi; j++ {
		w := math.Exp(lchoose(sees, j) + lchoose(deg-sees, k-j) - lchoose(deg, k))
		if w == 0 {
			continue
		}
		if noise == 0 {
			if 2*j >= 2*maj {
				adopt += w
			} else if k%2 == 0 && 2*j == k {
				tie += w
			}
			continue
		}
		// Observed blue count: convolution of Bin(j, 1−η) and Bin(k−j, η).
		for a := 0; a <= j; a++ {
			pa := binomialPoint(j, a, 1-noise)
			if pa == 0 {
				continue
			}
			for c := 0; c <= k-j; c++ {
				obs := a + c
				pc := pa * binomialPoint(k-j, c, noise)
				if 2*obs > k {
					adopt += w * pc
				} else if 2*obs == k && k%2 == 0 {
					tie += w * pc
				}
			}
		}
	}
	adopt += p.tieBlueShare(holderBlue) * tie
	return clamp01(adopt)
}

// tieBlueShare is the probability a tied even-k sample resolves Blue for
// the given holder colour: TieKeep keeps the holder's opinion, TieRandom
// flips a fair coin.
func (p *Process) tieBlueShare(holderBlue bool) float64 {
	if p.rule.Tie == TieRandom {
		return 0.5
	}
	if holderBlue {
		return 1
	}
	return 0
}

// binomialPoint is P(Bin(n, q) = j), via the log-gamma form for stability
// at any n.
func binomialPoint(n, j int, q float64) float64 {
	if j < 0 || j > n {
		return 0
	}
	if q <= 0 {
		if j == 0 {
			return 1
		}
		return 0
	}
	if q >= 1 {
		if j == n {
			return 1
		}
		return 0
	}
	return math.Exp(lchoose(n, j) + float64(j)*math.Log(q) + float64(n-j)*math.Log1p(-q))
}

func lchoose(n, k int) float64 {
	a, _ := math.Lgamma(float64(n + 1))
	b, _ := math.Lgamma(float64(k + 1))
	c, _ := math.Lgamma(float64(n - k + 1))
	return a - b - c
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
