// Package dynamics implements the synchronous Best-of-k opinion dynamics
// studied by the paper, together with the baseline protocols it compares
// against.
//
// In one round of Best-of-k, every vertex simultaneously samples k
// neighbours uniformly at random with replacement and adopts the majority
// opinion among the samples; ties (possible only for even k) are resolved
// by a configurable rule. Best-of-1 is the classical voter model and
// Best-of-3 is the paper's protocol.
//
// Two engines implement a round, selected by an automatic dispatch seam
// (see Engine):
//
//   - The general engine double-buffers the configuration and shards the
//     vertex range across a worker pool; each shard owns an independent RNG
//     stream fronted by a refill buffer (64-word blocks drawn at once,
//     Lemire bounded reduction per sample), opinions are read and written
//     word-at-a-time against the packed bitsets, and runs are deterministic
//     for a fixed (seed, worker count) pair with updates race-free by
//     construction. The buffered sampler consumes generator words in
//     exactly the order the scalar sampler would, so batching does not
//     change any trajectory.
//   - The mean-field engine advances topologies that declare mean-field
//     exchangeability (the virtual complete graph graph.Kn) in O(1) per
//     round: the blue count is a Markov chain, so one round is two binomial
//     draws with analytically exact adoption probabilities honouring K, tie
//     rules, sampling without replacement, and per-sample noise. Its
//     trajectories are distributionally identical to the general engine's
//     (and exactly the internal/markov chain) but follow a different RNG
//     stream.
package dynamics

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/opinion"
	"repro/internal/rng"
)

// Topology is the minimal neighbour-query interface the engine needs. Both
// *graph.Graph (CSR) and graph.Kn (virtual complete graph) satisfy it; the
// engine is deliberately agnostic so complete-graph experiments avoid the
// Θ(n²) edge list.
type Topology interface {
	// N returns the number of vertices.
	N() int
	// Degree returns the degree of vertex v.
	Degree(v int) int
	// Neighbor returns the i-th neighbour of v, 0 <= i < Degree(v).
	Neighbor(v, i int) int
	// MinDegree returns the minimum degree over all vertices.
	MinDegree() int
	// Name identifies the topology in logs and tables.
	Name() string
}

// MeanFielder is an optional Topology extension: a topology reporting
// MeanFieldEligible() == true asserts that every vertex's k samples are
// uniform over all other vertices, so a synchronous Best-of-k round
// depends on the configuration only through the global blue count.
// graph.Kn implements it; the engine dispatch (Engine, ResolveEngine) uses
// it to select the O(1)-per-round mean-field fast path.
type MeanFielder interface {
	Topology
	MeanFieldEligible() bool
}

// neighborSlicer is an optional Topology extension implemented by the CSR
// graph type: the neighbour row of v as a slice, letting the sampler index
// it directly instead of paying one interface call per sample. Detected
// dynamically so the engine still depends only on Topology.
type neighborSlicer interface {
	Neighbors(v int) []int32
}

// Engine selects the per-round update implementation.
type Engine uint8

const (
	// EngineAuto picks the mean-field fast path when the topology declares
	// mean-field eligibility (see MeanFielder) and the general sharded
	// engine otherwise. This is the default.
	EngineAuto Engine = iota
	// EngineGeneral forces the per-vertex sharded sampling engine, e.g. for
	// A/B validation against the mean-field path.
	EngineGeneral
	// EngineMeanField requires the mean-field fast path; New fails if the
	// topology does not declare eligibility.
	EngineMeanField
)

// String implements fmt.Stringer with the spec-level names.
func (e Engine) String() string {
	switch e {
	case EngineAuto:
		return "auto"
	case EngineGeneral:
		return "general"
	case EngineMeanField:
		return "mean-field"
	default:
		return fmt.Sprintf("Engine(%d)", uint8(e))
	}
}

// ParseEngine converts the spec-level engine name; "" means EngineAuto.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "", "auto":
		return EngineAuto, nil
	case "general":
		return EngineGeneral, nil
	case "mean-field":
		return EngineMeanField, nil
	default:
		return EngineAuto, fmt.Errorf("dynamics: unknown engine %q (want \"auto\", \"general\", or \"mean-field\")", s)
	}
}

// ResolveEngine reports which engine New selects for the requested mode on
// (g, rule): EngineAuto resolves to EngineMeanField exactly when the
// topology declares mean-field eligibility. The returned value is always
// EngineGeneral or EngineMeanField; a forced EngineMeanField is returned
// as requested even when ineligible (New then fails with the reason).
func ResolveEngine(e Engine, g Topology, rule Rule) Engine {
	switch e {
	case EngineGeneral:
		return EngineGeneral
	case EngineMeanField:
		return EngineMeanField
	default:
		if mf, ok := g.(MeanFielder); ok && mf.MeanFieldEligible() {
			return EngineMeanField
		}
		return EngineGeneral
	}
}

// TieRule determines the adopted opinion when the k sampled neighbours
// split evenly (even k only; for odd k the rule is never consulted).
type TieRule uint8

const (
	// TieKeep keeps the vertex's current opinion on a tie (rule (i) in the
	// paper's introduction).
	TieKeep TieRule = iota
	// TieRandom adopts a uniformly random opinion among the tied ones
	// (rule (ii)).
	TieRandom
)

// String implements fmt.Stringer.
func (t TieRule) String() string {
	switch t {
	case TieKeep:
		return "keep"
	case TieRandom:
		return "random"
	default:
		return fmt.Sprintf("TieRule(%d)", uint8(t))
	}
}

// Rule describes a Best-of-k protocol instance.
type Rule struct {
	// K is the number of neighbours sampled per vertex per round; must be
	// at least 1. K = 3 is the paper's protocol.
	K int
	// Tie is the tie-breaking rule for even K.
	Tie TieRule
	// WithoutReplacement samples K distinct neighbours instead of the
	// paper's with-replacement sampling. Vertices with degree < K fall
	// back to with-replacement sampling. Used by the ablation bench.
	WithoutReplacement bool
	// Noise is the per-sample misreporting probability: each sampled
	// opinion is independently flipped with this probability before the
	// majority is taken. 0 is the paper's noiseless protocol; the E19
	// extension sweeps the noise threshold. Must lie in [0, 1/2].
	Noise float64
}

// BestOfThree is the paper's protocol: 3 samples with replacement.
var BestOfThree = Rule{K: 3}

// Voter is the Best-of-1 baseline (the classical voter model).
var Voter = Rule{K: 1}

// BestOfTwo is the Best-of-2 baseline with the keep-own tie rule of
// Cooper–Elsässer–Radzik.
var BestOfTwo = Rule{K: 2, Tie: TieKeep}

// Validate reports whether the rule is well-formed.
func (r Rule) Validate() error {
	if r.K < 1 {
		return fmt.Errorf("dynamics: rule K = %d, want >= 1", r.K)
	}
	if r.Noise < 0 || r.Noise > 0.5 {
		return fmt.Errorf("dynamics: rule noise = %v, want in [0, 0.5]", r.Noise)
	}
	return nil
}

// Name returns a short identifier such as "best-of-3" or
// "best-of-2/random".
func (r Rule) Name() string {
	s := fmt.Sprintf("best-of-%d", r.K)
	if r.K%2 == 0 {
		s += "/" + r.Tie.String()
	}
	if r.WithoutReplacement {
		s += "/noreplace"
	}
	if r.Noise > 0 {
		s += fmt.Sprintf("/noise=%.3g", r.Noise)
	}
	return s
}

// Process is a running dynamic on a fixed graph. It owns two configuration
// buffers and a set of per-shard RNG streams. A Process is not safe for
// concurrent use by multiple goroutines; the internal parallelism of Step
// is self-contained.
type Process struct {
	g       Topology
	rule    Rule
	cur     *opinion.Config
	next    *opinion.Config
	shards  []shard
	round   int
	workers int
	engine  Engine

	// Mean-field state: the blue count is the whole configuration. cur is
	// materialised from it lazily (mfDirty tracks staleness) so Config()
	// stays correct while Step stays O(1).
	mfBlues int
	mfDirty bool
}

type shard struct {
	lo, hi int
	src    *rng.Source
	buf    sampleBuf
}

// Options configures a Process.
type Options struct {
	// Workers is the number of parallel shards; 0 means GOMAXPROCS.
	Workers int
	// Seed drives all sampling; equal seeds with equal worker counts give
	// identical trajectories.
	Seed uint64
	// Engine selects the per-round implementation; the zero value
	// (EngineAuto) uses the mean-field fast path on eligible topologies.
	Engine Engine
}

// New returns a Process evolving init under the rule on g. The initial
// configuration is copied; the caller's value is not mutated.
func New(g Topology, rule Rule, init *opinion.Config, opt Options) (*Process, error) {
	if err := rule.Validate(); err != nil {
		return nil, err
	}
	if g.N() != init.N() {
		return nil, fmt.Errorf("dynamics: graph has %d vertices, configuration has %d", g.N(), init.N())
	}
	if g.N() > 0 && g.MinDegree() == 0 {
		return nil, fmt.Errorf("dynamics: graph %s has an isolated vertex; every vertex must be able to sample a neighbour", g.Name())
	}
	w := opt.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > g.N() {
		w = g.N()
	}
	if w < 1 {
		w = 1
	}
	engine := ResolveEngine(opt.Engine, g, rule)
	if engine == EngineMeanField {
		mf, ok := g.(MeanFielder)
		if !ok || !mf.MeanFieldEligible() {
			return nil, fmt.Errorf("dynamics: engine %q requested but topology %s does not declare mean-field eligibility", EngineMeanField, g.Name())
		}
	}
	p := &Process{
		g:       g,
		rule:    rule,
		cur:     init.Clone(),
		next:    opinion.NewConfig(g.N()),
		workers: w,
		engine:  engine,
		mfBlues: init.Blues(),
	}
	n := g.N()
	// Shard boundaries are aligned to 64-vertex blocks: configurations are
	// packed bitsets, and two shards writing different bits of one word
	// would be a read-modify-write data race with lost updates.
	bounds := make([]int, w+1)
	for i := 1; i < w; i++ {
		bounds[i] = (i * n / w) &^ 63
		if bounds[i] < bounds[i-1] {
			bounds[i] = bounds[i-1]
		}
	}
	bounds[w] = n
	for i := 0; i < w; i++ {
		p.shards = append(p.shards, shard{
			lo:  bounds[i],
			hi:  bounds[i+1],
			src: rng.NewFrom(opt.Seed, uint64(i)),
		})
		p.shards[i].buf.src = p.shards[i].src
		p.shards[i].buf.pos = sampleBufWords
	}
	return p, nil
}

// Graph returns the underlying topology.
func (p *Process) Graph() Topology { return p.g }

// Rule returns the protocol being simulated.
func (p *Process) Rule() Rule { return p.rule }

// Round returns the number of completed rounds.
func (p *Process) Round() int { return p.round }

// Engine returns the resolved engine executing the rounds (EngineGeneral
// or EngineMeanField, never EngineAuto).
func (p *Process) Engine() Engine { return p.engine }

// Config returns the current configuration. The returned value aliases
// live process state — do not mutate it — and is invalidated by the next
// Step; Clone it to keep a snapshot. Under the mean-field engine the
// configuration is materialised on demand in canonical form (blue count b
// ⇒ vertices [0, b) blue), which is distribution-preserving because the
// topology is exchangeable; prefer Blues or Consensus when only counts are
// needed.
func (p *Process) Config() *opinion.Config {
	if p.mfDirty {
		p.cur.SetBluePrefix(p.mfBlues)
		p.mfDirty = false
	}
	return p.cur
}

// Blues returns the current number of Blue vertices: O(1) under the
// mean-field engine, a popcount otherwise.
func (p *Process) Blues() int {
	if p.engine == EngineMeanField {
		return p.mfBlues
	}
	return p.cur.Blues()
}

// Consensus reports whether every vertex holds one opinion, and which,
// without materialising mean-field state.
func (p *Process) Consensus() (opinion.Colour, bool) {
	if p.engine == EngineMeanField {
		switch p.mfBlues {
		case 0:
			return opinion.Red, true
		case p.g.N():
			return opinion.Blue, true
		default:
			return opinion.Red, false
		}
	}
	return p.cur.IsConsensus()
}

// SetBlueCount replaces the current configuration with the canonical one
// holding exactly b Blue vertices (vertices [0, b) blue). O(1) under the
// mean-field engine, O(n/64) otherwise. On exchangeable topologies this is
// the exact-count initial condition matching markov.Chain's
// PointDistribution; benchmarks use it to hold the process in a mixed
// state across timed rounds.
func (p *Process) SetBlueCount(b int) {
	if b < 0 || b > p.g.N() {
		panic("dynamics: SetBlueCount out of range")
	}
	p.mfBlues = b
	if p.engine == EngineMeanField {
		p.mfDirty = true
		return
	}
	p.cur.SetBluePrefix(b)
}

// Step performs one synchronous round. All vertices sample from the
// pre-round configuration, so the update is a simultaneous one as the paper
// requires.
func (p *Process) Step() {
	if p.g.N() == 0 {
		p.round++
		return
	}
	if p.engine == EngineMeanField {
		p.stepMeanField()
		p.round++
		return
	}
	if p.workers == 1 {
		p.stepRange(&p.shards[0])
	} else {
		var wg sync.WaitGroup
		for i := range p.shards {
			wg.Add(1)
			go func(s *shard) {
				defer wg.Done()
				p.stepRange(s)
			}(&p.shards[i])
		}
		wg.Wait()
	}
	p.cur, p.next = p.next, p.cur
	p.round++
}

// stepRange updates vertices [s.lo, s.hi) into p.next. Noise-free rules
// take the batched path (buffered RNG, word-at-a-time bitset access);
// noisy rules keep the scalar path, whose per-vertex Binomial draws pull
// from the raw source and must not interleave with a refill buffer.
func (p *Process) stepRange(s *shard) {
	if p.rule.Noise > 0 {
		p.stepRangeScalar(s.lo, s.hi, s.src)
		return
	}
	p.stepRangeBatched(s.lo, s.hi, &s.buf)
}

// stepRangeBatched is the noise-free hot path. Uniform words come from the
// shard's refill buffer (consumed in exactly the order the scalar path
// would draw them, so trajectories are unchanged), opinions are read by
// direct word indexing, and the 64 results of each aligned vertex block
// are assembled in a register and stored with one write. Shard bounds are
// 64-aligned, so blocks never straddle shards.
func (p *Process) stepRangeBatched(lo, hi int, buf *sampleBuf) {
	k := p.rule.K
	g := p.g
	ns, hasRows := g.(neighborSlicer)
	curWords := p.cur.BlueSet().Words()
	next := p.next.BlueSet()
	tieRandom := p.rule.Tie == TieRandom
	woRepl := p.rule.WithoutReplacement
	for base := lo; base < hi; base += 64 {
		end := base + 64
		if end > hi {
			end = hi
		}
		var out uint64
		for v := base; v < end; v++ {
			deg := g.Degree(v)
			blues := 0
			switch {
			case woRepl && deg >= k:
				blues = p.sampleDistinctBatched(v, deg, k, buf, curWords)
			case hasRows:
				row := ns.Neighbors(v)
				for i := 0; i < k; i++ {
					w := int(row[buf.intn(deg)])
					blues += int((curWords[w>>6] >> (uint(w) & 63)) & 1)
				}
			default:
				for i := 0; i < k; i++ {
					w := g.Neighbor(v, buf.intn(deg))
					blues += int((curWords[w>>6] >> (uint(w) & 63)) & 1)
				}
			}
			var bit uint64
			switch {
			case 2*blues > k:
				bit = 1
			case 2*blues < k:
				bit = 0
			case tieRandom:
				if buf.bernoulliHalf() {
					bit = 1
				}
			default: // TieKeep
				bit = (curWords[v>>6] >> (uint(v) & 63)) & 1
			}
			out |= bit << (uint(v) & 63)
		}
		next.SetWord(base>>6, out)
	}
}

// stepRangeScalar is the pre-batching update loop, kept for rules with
// per-sample noise: their Binomial draws consume the raw source directly,
// and the trajectory contract (fixed seed and workers ⇒ fixed outcome)
// pins this consumption order.
func (p *Process) stepRangeScalar(lo, hi int, src *rng.Source) {
	k := p.rule.K
	noise := p.rule.Noise
	for v := lo; v < hi; v++ {
		deg := p.g.Degree(v)
		blues := 0
		if p.rule.WithoutReplacement && deg >= k {
			blues = p.sampleDistinctScalar(v, deg, k, src)
		} else {
			for i := 0; i < k; i++ {
				w := p.g.Neighbor(v, src.Intn(deg))
				if p.cur.Get(w) == opinion.Blue {
					blues++
				}
			}
		}
		if noise > 0 {
			// Flip each of the k observed opinions independently: of the
			// `blues` blue samples, Bin(blues, noise) flip to red; of the
			// red samples, Bin(k−blues, noise) flip to blue.
			blues += src.Binomial(k-blues, noise) - src.Binomial(blues, noise)
		}
		var col opinion.Colour
		switch {
		case 2*blues > k:
			col = opinion.Blue
		case 2*blues < k:
			col = opinion.Red
		default: // tie, even k
			switch p.rule.Tie {
			case TieKeep:
				col = p.cur.Get(v)
			default: // TieRandom
				if src.Bernoulli(0.5) {
					col = opinion.Blue
				} else {
					col = opinion.Red
				}
			}
		}
		p.next.Set(v, col)
	}
}

// sampleDistinctBatched counts blue opinions among k distinct uniform
// neighbours of v via a partial Floyd sample drawing from the shard
// buffer. k is tiny in practice (≤ 5), so the rejection loop is cheap;
// k > 8 spills the seen-index scratch to the heap instead of overrunning
// it.
func (p *Process) sampleDistinctBatched(v, deg, k int, buf *sampleBuf, curWords []uint64) int {
	var chosenArr [8]int
	chosen := chosenArr[:0]
	if k > len(chosenArr) {
		chosen = make([]int, 0, k)
	}
	blues := 0
	for i := 0; i < k; i++ {
	retry:
		idx := buf.intn(deg)
		for _, c := range chosen {
			if c == idx {
				goto retry
			}
		}
		chosen = append(chosen, idx)
		w := p.g.Neighbor(v, idx)
		blues += int((curWords[w>>6] >> (uint(w) & 63)) & 1)
	}
	return blues
}

// sampleDistinctScalar is sampleDistinctBatched for the scalar (noisy)
// path, drawing from the raw source.
func (p *Process) sampleDistinctScalar(v, deg, k int, src *rng.Source) int {
	var chosenArr [8]int
	chosen := chosenArr[:0]
	if k > len(chosenArr) {
		chosen = make([]int, 0, k)
	}
	blues := 0
	for i := 0; i < k; i++ {
	retry:
		idx := src.Intn(deg)
		for _, c := range chosen {
			if c == idx {
				goto retry
			}
		}
		chosen = append(chosen, idx)
		if p.cur.Get(p.g.Neighbor(v, idx)) == opinion.Blue {
			blues++
		}
	}
	return blues
}

// Result summarises a completed run.
type Result struct {
	// Consensus reports whether every vertex held one opinion when the run
	// stopped.
	Consensus bool
	// Winner is the consensus opinion when Consensus is true; otherwise the
	// majority opinion at stop time.
	Winner opinion.Colour
	// Rounds is the number of rounds executed.
	Rounds int
	// BlueTrajectory records the number of blue vertices after each round,
	// starting with the initial count (index 0).
	BlueTrajectory []int
}

// Run advances the process until consensus or maxRounds, whichever comes
// first, recording the blue-count trajectory.
func (p *Process) Run(maxRounds int) Result {
	res := Result{BlueTrajectory: []int{p.Blues()}}
	for p.round < maxRounds {
		if col, ok := p.Consensus(); ok {
			res.Consensus = true
			res.Winner = col
			res.Rounds = p.round
			return res
		}
		p.Step()
		res.BlueTrajectory = append(res.BlueTrajectory, p.Blues())
	}
	res.Rounds = p.round
	if col, ok := p.Consensus(); ok {
		res.Consensus = true
		res.Winner = col
	} else {
		res.Winner = p.majority()
	}
	return res
}

// RunQuiet is Run without trajectory recording, for the benchmark hot path.
func (p *Process) RunQuiet(maxRounds int) Result {
	for p.round < maxRounds {
		if col, ok := p.Consensus(); ok {
			return Result{Consensus: true, Winner: col, Rounds: p.round}
		}
		p.Step()
	}
	res := Result{Rounds: p.round}
	if col, ok := p.Consensus(); ok {
		res.Consensus = true
		res.Winner = col
	} else {
		res.Winner = p.majority()
	}
	return res
}

// majority is Config().Majority() without forcing a mean-field
// materialisation.
func (p *Process) majority() opinion.Colour {
	if 2*p.Blues() > p.g.N() {
		return opinion.Blue
	}
	return opinion.Red
}
