// Package dynamics implements the synchronous Best-of-k opinion dynamics
// studied by the paper, together with the baseline protocols it compares
// against.
//
// In one round of Best-of-k, every vertex simultaneously samples k
// neighbours uniformly at random with replacement and adopts the majority
// opinion among the samples; ties (possible only for even k) are resolved
// by a configurable rule. Best-of-1 is the classical voter model and
// Best-of-3 is the paper's protocol.
//
// The engine double-buffers the configuration and shards the vertex range
// across a worker pool; each shard owns an independent RNG stream, so runs
// are deterministic for a fixed (seed, worker count) pair and configuration
// updates are race-free by construction.
package dynamics

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/opinion"
	"repro/internal/rng"
)

// Topology is the minimal neighbour-query interface the engine needs. Both
// *graph.Graph (CSR) and graph.Kn (virtual complete graph) satisfy it; the
// engine is deliberately agnostic so complete-graph experiments avoid the
// Θ(n²) edge list.
type Topology interface {
	// N returns the number of vertices.
	N() int
	// Degree returns the degree of vertex v.
	Degree(v int) int
	// Neighbor returns the i-th neighbour of v, 0 <= i < Degree(v).
	Neighbor(v, i int) int
	// MinDegree returns the minimum degree over all vertices.
	MinDegree() int
	// Name identifies the topology in logs and tables.
	Name() string
}

// TieRule determines the adopted opinion when the k sampled neighbours
// split evenly (even k only; for odd k the rule is never consulted).
type TieRule uint8

const (
	// TieKeep keeps the vertex's current opinion on a tie (rule (i) in the
	// paper's introduction).
	TieKeep TieRule = iota
	// TieRandom adopts a uniformly random opinion among the tied ones
	// (rule (ii)).
	TieRandom
)

// String implements fmt.Stringer.
func (t TieRule) String() string {
	switch t {
	case TieKeep:
		return "keep"
	case TieRandom:
		return "random"
	default:
		return fmt.Sprintf("TieRule(%d)", uint8(t))
	}
}

// Rule describes a Best-of-k protocol instance.
type Rule struct {
	// K is the number of neighbours sampled per vertex per round; must be
	// at least 1. K = 3 is the paper's protocol.
	K int
	// Tie is the tie-breaking rule for even K.
	Tie TieRule
	// WithoutReplacement samples K distinct neighbours instead of the
	// paper's with-replacement sampling. Vertices with degree < K fall
	// back to with-replacement sampling. Used by the ablation bench.
	WithoutReplacement bool
	// Noise is the per-sample misreporting probability: each sampled
	// opinion is independently flipped with this probability before the
	// majority is taken. 0 is the paper's noiseless protocol; the E19
	// extension sweeps the noise threshold. Must lie in [0, 1/2].
	Noise float64
}

// BestOfThree is the paper's protocol: 3 samples with replacement.
var BestOfThree = Rule{K: 3}

// Voter is the Best-of-1 baseline (the classical voter model).
var Voter = Rule{K: 1}

// BestOfTwo is the Best-of-2 baseline with the keep-own tie rule of
// Cooper–Elsässer–Radzik.
var BestOfTwo = Rule{K: 2, Tie: TieKeep}

// Validate reports whether the rule is well-formed.
func (r Rule) Validate() error {
	if r.K < 1 {
		return fmt.Errorf("dynamics: rule K = %d, want >= 1", r.K)
	}
	if r.Noise < 0 || r.Noise > 0.5 {
		return fmt.Errorf("dynamics: rule noise = %v, want in [0, 0.5]", r.Noise)
	}
	return nil
}

// Name returns a short identifier such as "best-of-3" or
// "best-of-2/random".
func (r Rule) Name() string {
	s := fmt.Sprintf("best-of-%d", r.K)
	if r.K%2 == 0 {
		s += "/" + r.Tie.String()
	}
	if r.WithoutReplacement {
		s += "/noreplace"
	}
	if r.Noise > 0 {
		s += fmt.Sprintf("/noise=%.3g", r.Noise)
	}
	return s
}

// Process is a running dynamic on a fixed graph. It owns two configuration
// buffers and a set of per-shard RNG streams. A Process is not safe for
// concurrent use by multiple goroutines; the internal parallelism of Step
// is self-contained.
type Process struct {
	g       Topology
	rule    Rule
	cur     *opinion.Config
	next    *opinion.Config
	shards  []shard
	round   int
	workers int
}

type shard struct {
	lo, hi int
	src    *rng.Source
}

// Options configures a Process.
type Options struct {
	// Workers is the number of parallel shards; 0 means GOMAXPROCS.
	Workers int
	// Seed drives all sampling; equal seeds with equal worker counts give
	// identical trajectories.
	Seed uint64
}

// New returns a Process evolving init under the rule on g. The initial
// configuration is copied; the caller's value is not mutated.
func New(g Topology, rule Rule, init *opinion.Config, opt Options) (*Process, error) {
	if err := rule.Validate(); err != nil {
		return nil, err
	}
	if g.N() != init.N() {
		return nil, fmt.Errorf("dynamics: graph has %d vertices, configuration has %d", g.N(), init.N())
	}
	if g.N() > 0 && g.MinDegree() == 0 {
		return nil, fmt.Errorf("dynamics: graph %s has an isolated vertex; every vertex must be able to sample a neighbour", g.Name())
	}
	w := opt.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > g.N() {
		w = g.N()
	}
	if w < 1 {
		w = 1
	}
	p := &Process{
		g:       g,
		rule:    rule,
		cur:     init.Clone(),
		next:    opinion.NewConfig(g.N()),
		workers: w,
	}
	n := g.N()
	// Shard boundaries are aligned to 64-vertex blocks: configurations are
	// packed bitsets, and two shards writing different bits of one word
	// would be a read-modify-write data race with lost updates.
	bounds := make([]int, w+1)
	for i := 1; i < w; i++ {
		bounds[i] = (i * n / w) &^ 63
		if bounds[i] < bounds[i-1] {
			bounds[i] = bounds[i-1]
		}
	}
	bounds[w] = n
	for i := 0; i < w; i++ {
		p.shards = append(p.shards, shard{
			lo:  bounds[i],
			hi:  bounds[i+1],
			src: rng.NewFrom(opt.Seed, uint64(i)),
		})
	}
	return p, nil
}

// Graph returns the underlying topology.
func (p *Process) Graph() Topology { return p.g }

// Rule returns the protocol being simulated.
func (p *Process) Rule() Rule { return p.rule }

// Round returns the number of completed rounds.
func (p *Process) Round() int { return p.round }

// Config returns the current configuration. The returned value aliases
// live process state — do not mutate it — and is invalidated by the next
// Step; Clone it to keep a snapshot.
func (p *Process) Config() *opinion.Config { return p.cur }

// Step performs one synchronous round. All vertices sample from the
// pre-round configuration, so the update is a simultaneous one as the paper
// requires.
func (p *Process) Step() {
	if p.g.N() == 0 {
		p.round++
		return
	}
	if p.workers == 1 {
		p.stepRange(p.shards[0].lo, p.shards[0].hi, p.shards[0].src)
	} else {
		var wg sync.WaitGroup
		for i := range p.shards {
			wg.Add(1)
			go func(s *shard) {
				defer wg.Done()
				p.stepRange(s.lo, s.hi, s.src)
			}(&p.shards[i])
		}
		wg.Wait()
	}
	p.cur, p.next = p.next, p.cur
	p.round++
}

// stepRange updates vertices [lo, hi) into p.next.
func (p *Process) stepRange(lo, hi int, src *rng.Source) {
	k := p.rule.K
	noise := p.rule.Noise
	for v := lo; v < hi; v++ {
		deg := p.g.Degree(v)
		blues := 0
		if p.rule.WithoutReplacement && deg >= k {
			blues = p.sampleDistinct(v, deg, k, src)
		} else {
			for i := 0; i < k; i++ {
				w := p.g.Neighbor(v, src.Intn(deg))
				if p.cur.Get(w) == opinion.Blue {
					blues++
				}
			}
		}
		if noise > 0 {
			// Flip each of the k observed opinions independently: of the
			// `blues` blue samples, Bin(blues, noise) flip to red; of the
			// red samples, Bin(k−blues, noise) flip to blue.
			blues += src.Binomial(k-blues, noise) - src.Binomial(blues, noise)
		}
		var col opinion.Colour
		switch {
		case 2*blues > k:
			col = opinion.Blue
		case 2*blues < k:
			col = opinion.Red
		default: // tie, even k
			switch p.rule.Tie {
			case TieKeep:
				col = p.cur.Get(v)
			default: // TieRandom
				if src.Bernoulli(0.5) {
					col = opinion.Blue
				} else {
					col = opinion.Red
				}
			}
		}
		p.next.Set(v, col)
	}
}

// sampleDistinct counts blue opinions among k distinct uniform neighbours
// of v via a partial Floyd sample. Only used for the ablation rule; k is
// tiny (≤ 5), so the rejection loop is cheap.
func (p *Process) sampleDistinct(v, deg, k int, src *rng.Source) int {
	var chosen [8]int
	blues := 0
	for i := 0; i < k; i++ {
	retry:
		idx := src.Intn(deg)
		for j := 0; j < i; j++ {
			if chosen[j] == idx {
				goto retry
			}
		}
		chosen[i] = idx
		if p.cur.Get(p.g.Neighbor(v, idx)) == opinion.Blue {
			blues++
		}
	}
	return blues
}

// Result summarises a completed run.
type Result struct {
	// Consensus reports whether every vertex held one opinion when the run
	// stopped.
	Consensus bool
	// Winner is the consensus opinion when Consensus is true; otherwise the
	// majority opinion at stop time.
	Winner opinion.Colour
	// Rounds is the number of rounds executed.
	Rounds int
	// BlueTrajectory records the number of blue vertices after each round,
	// starting with the initial count (index 0).
	BlueTrajectory []int
}

// Run advances the process until consensus or maxRounds, whichever comes
// first, recording the blue-count trajectory.
func (p *Process) Run(maxRounds int) Result {
	res := Result{BlueTrajectory: []int{p.cur.Blues()}}
	for p.round < maxRounds {
		if col, ok := p.cur.IsConsensus(); ok {
			res.Consensus = true
			res.Winner = col
			res.Rounds = p.round
			return res
		}
		p.Step()
		res.BlueTrajectory = append(res.BlueTrajectory, p.cur.Blues())
	}
	res.Rounds = p.round
	if col, ok := p.cur.IsConsensus(); ok {
		res.Consensus = true
		res.Winner = col
	} else {
		res.Winner = p.cur.Majority()
	}
	return res
}

// RunQuiet is Run without trajectory recording, for the benchmark hot path.
func (p *Process) RunQuiet(maxRounds int) Result {
	for p.round < maxRounds {
		if col, ok := p.cur.IsConsensus(); ok {
			return Result{Consensus: true, Winner: col, Rounds: p.round}
		}
		p.Step()
	}
	res := Result{Rounds: p.round}
	if col, ok := p.cur.IsConsensus(); ok {
		res.Consensus = true
		res.Winner = col
	} else {
		res.Winner = p.cur.Majority()
	}
	return res
}
