package dynamics

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/opinion"
	"repro/internal/rng"
)

func TestStubbornVerticesNeverFlip(t *testing.T) {
	g := graph.Complete(64)
	init := opinion.NewConfig(64) // all red
	init.Set(0, opinion.Blue)
	init.Set(1, opinion.Blue)
	s, err := NewStubborn(g, BestOfThree, init, []int{0, 1}, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		s.Step()
		if s.Config().Get(0) != opinion.Blue || s.Config().Get(1) != opinion.Blue {
			t.Fatalf("stubborn vertex flipped at round %d", i+1)
		}
	}
	if s.StubbornCount() != 2 {
		t.Errorf("StubbornCount = %d", s.StubbornCount())
	}
}

func TestStubbornRedVerticesHoldRed(t *testing.T) {
	// All-blue sea with two stubborn red vertices: the reds persist.
	g := graph.Complete(32)
	init := opinion.NewConfig(32)
	init.FillBlue()
	init.Set(5, opinion.Red)
	s, err := NewStubborn(g, BestOfThree, init, []int{5}, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run(50)
	if res.Consensus {
		t.Error("consensus impossible with an opposing stubborn vertex")
	}
	if s.Config().Get(5) != opinion.Red {
		t.Error("stubborn red vertex lost its opinion")
	}
}

func TestStubbornRejectsOutOfRange(t *testing.T) {
	g := graph.Complete(8)
	init := opinion.NewConfig(8)
	if _, err := NewStubborn(g, BestOfThree, init, []int{8}, Options{}); err == nil {
		t.Error("out-of-range stubborn vertex accepted")
	}
	if _, err := NewStubborn(g, BestOfThree, init, []int{-1}, Options{}); err == nil {
		t.Error("negative stubborn vertex accepted")
	}
}

func TestStubbornEmptySetBehavesLikePlain(t *testing.T) {
	g := graph.RandomRegular(128, 8, rng.New(3))
	init := opinion.RandomConfig(128, 0.3, rng.New(4))
	s, err := NewStubborn(g, BestOfThree, init, nil, Options{Seed: 5, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(g, BestOfThree, init, Options{Seed: 5, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		s.Step()
		p.Step()
		if !s.Config().Equal(p.Config()) {
			t.Fatalf("empty stubborn set diverged from plain process at round %d", i+1)
		}
	}
}

func TestStubbornRunStopsOnConsensusWhenPossible(t *testing.T) {
	// Stubborn vertices that agree with the majority do not block
	// consensus.
	g := graph.Complete(64)
	init := opinion.RandomConfig(64, 0.2, rng.New(6))
	init.Set(0, opinion.Red)
	s, err := NewStubborn(g, BestOfThree, init, []int{0}, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run(500)
	if !res.Consensus || res.Winner != opinion.Red {
		t.Errorf("result = %+v", res)
	}
}

func TestFewStubbornBlueCannotOverturnDenseMajority(t *testing.T) {
	// A handful of stubborn blue zealots on a dense graph: red still
	// dominates the final configuration (though consensus is impossible).
	g := graph.RandomRegular(512, 64, rng.New(8))
	init := opinion.RandomConfig(512, 0.35, rng.New(9))
	stub := []int{0, 1, 2, 3}
	for _, v := range stub {
		init.Set(v, opinion.Blue)
	}
	s, err := NewStubborn(g, BestOfThree, init, stub, Options{Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run(100)
	finalBlue := res.BlueTrajectory[len(res.BlueTrajectory)-1]
	if finalBlue > 30 {
		t.Errorf("final blue count %d: zealots overturned the majority", finalBlue)
	}
}
