package dynamics

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/opinion"
	"repro/internal/rng"
)

func TestEngineDispatch(t *testing.T) {
	kn := graph.NewKn(64)
	csr := graph.RandomRegular(64, 8, rng.New(1))
	init := opinion.RandomConfig(64, 0.4, rng.New(2))

	p, err := New(kn, BestOfThree, init, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if p.Engine() != EngineMeanField {
		t.Errorf("auto on Kn resolved %v, want mean-field", p.Engine())
	}
	p, err = New(kn, BestOfThree, init, Options{Seed: 3, Engine: EngineGeneral})
	if err != nil {
		t.Fatal(err)
	}
	if p.Engine() != EngineGeneral {
		t.Errorf("forced general resolved %v", p.Engine())
	}
	p, err = New(csr, BestOfThree, init, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if p.Engine() != EngineGeneral {
		t.Errorf("auto on CSR resolved %v, want general", p.Engine())
	}
	if _, err := New(csr, BestOfThree, init, Options{Seed: 3, Engine: EngineMeanField}); err == nil {
		t.Error("forced mean-field on a CSR graph not rejected")
	}
}

func TestParseEngine(t *testing.T) {
	for s, want := range map[string]Engine{"": EngineAuto, "auto": EngineAuto, "general": EngineGeneral, "mean-field": EngineMeanField} {
		got, err := ParseEngine(s)
		if err != nil || got != want {
			t.Errorf("ParseEngine(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseEngine("warp"); err == nil {
		t.Error("unknown engine accepted")
	}
	if got := EngineMeanField.String(); got != "mean-field" {
		t.Errorf("String = %q", got)
	}
}

func TestMeanFieldConsensusAbsorbing(t *testing.T) {
	n := 128
	kn := graph.NewKn(n)
	for _, blues := range []int{0, n} {
		cfg := opinion.NewConfig(n)
		if blues == n {
			cfg.FillBlue()
		}
		p, err := New(kn, BestOfThree, cfg, Options{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			p.Step()
		}
		if got := p.Blues(); got != blues {
			t.Errorf("absorbed state b=%d drifted to %d", blues, got)
		}
		col, ok := p.Consensus()
		if !ok || (col == opinion.Blue) != (blues == n) {
			t.Errorf("Consensus() = %v, %v from b=%d", col, ok, blues)
		}
	}
}

// TestAdoptBlueProbVoter checks the closed form for k = 1: a holder
// adopts Blue exactly when its single sample is blue (after noise).
func TestAdoptBlueProbVoter(t *testing.T) {
	n, b := 100, 37
	kn := graph.NewKn(n)
	mk := func(noise float64) *Process {
		p, err := New(kn, Rule{K: 1, Noise: noise}, opinion.NewConfig(n), Options{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	deg := float64(n - 1)
	p0 := mk(0)
	if got, want := p0.adoptBlueProb(b, false), float64(b)/deg; math.Abs(got-want) > 1e-12 {
		t.Errorf("red voter adopt = %v, want %v", got, want)
	}
	if got, want := p0.adoptBlueProb(b, true), float64(b-1)/deg; math.Abs(got-want) > 1e-12 {
		t.Errorf("blue voter adopt = %v, want %v", got, want)
	}
	eta := 0.1
	pn := mk(eta)
	q := float64(b)/deg*(1-eta) + (1-float64(b)/deg)*eta
	if got := pn.adoptBlueProb(b, false); math.Abs(got-q) > 1e-12 {
		t.Errorf("noisy red voter adopt = %v, want %v", got, q)
	}
}

// TestAdoptBlueProbBestOfThree checks k = 3 against a direct binomial
// enumeration independent of stats.BinomialTail.
func TestAdoptBlueProbBestOfThree(t *testing.T) {
	n, b := 50, 20
	kn := graph.NewKn(n)
	p, err := New(kn, BestOfThree, opinion.NewConfig(n), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	q := float64(b) / float64(n-1)
	want := 3*q*q*(1-q) + q*q*q // exactly 2 or 3 blue samples
	if got := p.adoptBlueProb(b, false); math.Abs(got-want) > 1e-12 {
		t.Errorf("best-of-3 adopt = %v, want %v", got, want)
	}
}

// TestAdoptBlueProbTieRules checks even k: a 1-1 split resolves by the
// tie rule.
func TestAdoptBlueProbTieRules(t *testing.T) {
	n, b := 40, 15
	kn := graph.NewKn(n)
	q := float64(b) / float64(n-1)
	qb := float64(b-1) / float64(n-1)
	pTie := 2 * q * (1 - q)
	pBoth := q * q

	mk := func(tie TieRule) *Process {
		p, err := New(kn, Rule{K: 2, Tie: tie}, opinion.NewConfig(n), Options{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	// TieRandom, red holder: both blue, or tie and the coin lands blue.
	if got, want := mk(TieRandom).adoptBlueProb(b, false), pBoth+0.5*pTie; math.Abs(got-want) > 1e-12 {
		t.Errorf("tie-random red adopt = %v, want %v", got, want)
	}
	// TieKeep, red holder: only both-blue flips it.
	if got := mk(TieKeep).adoptBlueProb(b, false); math.Abs(got-pBoth) > 1e-12 {
		t.Errorf("tie-keep red adopt = %v, want %v", got, pBoth)
	}
	// TieKeep, blue holder: stays blue on both-blue or tie (self-excluded
	// counts).
	pTieB := 2 * qb * (1 - qb)
	if got, want := mk(TieKeep).adoptBlueProb(b, true), qb*qb+pTieB; math.Abs(got-want) > 1e-12 {
		t.Errorf("tie-keep blue stay = %v, want %v", got, want)
	}
}

// TestAdoptBlueProbWithoutReplacement checks the hypergeometric branch for
// k = 2 on a tiny instance by enumerating ordered distinct pairs.
func TestAdoptBlueProbWithoutReplacement(t *testing.T) {
	n, b := 6, 3
	kn := graph.NewKn(n)
	p, err := New(kn, Rule{K: 2, Tie: TieRandom, WithoutReplacement: true}, opinion.NewConfig(n), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Red holder: 5 neighbours, 3 blue. P(both blue) = C(3,2)/C(5,2) = 3/10;
	// P(split) = 3·2/C(5,2) = 6/10; adopt = 3/10 + 0.5·6/10.
	want := 0.3 + 0.5*0.6
	if got := p.adoptBlueProb(b, false); math.Abs(got-want) > 1e-12 {
		t.Errorf("no-replacement adopt = %v, want %v", got, want)
	}
	// k > degree falls back to with-replacement, mirroring the general
	// engine.
	pBig, err := New(graph.NewKn(3), Rule{K: 5, WithoutReplacement: true}, opinion.NewConfig(3), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	q := 1.0 / 2.0 // b=1 of deg=2
	wantBig := 0.0
	for j := 3; j <= 5; j++ {
		wantBig += float64(choose(5, j)) * math.Pow(q, float64(j)) * math.Pow(1-q, float64(5-j))
	}
	if got := pBig.adoptBlueProb(1, false); math.Abs(got-wantBig) > 1e-12 {
		t.Errorf("degree fallback adopt = %v, want %v", got, wantBig)
	}
}

func choose(n, k int) int {
	c := 1
	for i := 0; i < k; i++ {
		c = c * (n - i) / (i + 1)
	}
	return c
}

func TestMeanFieldDeterminism(t *testing.T) {
	n := 512
	kn := graph.NewKn(n)
	cfg := opinion.RandomConfig(n, 0.42, rng.New(5))
	run := func() []int {
		p, err := New(kn, BestOfThree, cfg, Options{Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		return p.Run(50).BlueTrajectory
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("mean-field trajectories diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestMeanFieldConfigMaterialisation(t *testing.T) {
	n := 200
	kn := graph.NewKn(n)
	p, err := New(kn, BestOfThree, opinion.RandomConfig(n, 0.45, rng.New(6)), Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		p.Step()
		cfg := p.Config()
		if cfg.Blues() != p.Blues() {
			t.Fatalf("round %d: materialised blues %d != count %d", i, cfg.Blues(), p.Blues())
		}
		// Canonical prefix form: every blue vertex precedes every red one.
		for v := 1; v < n; v++ {
			if cfg.Get(v) == opinion.Blue && cfg.Get(v-1) == opinion.Red {
				t.Fatalf("round %d: materialised config not in prefix form at %d", i, v)
			}
		}
	}
	p.SetBlueCount(13)
	if p.Blues() != 13 || p.Config().Blues() != 13 {
		t.Errorf("SetBlueCount: Blues = %d, Config().Blues = %d", p.Blues(), p.Config().Blues())
	}
}

// TestMeanFieldOneRoundMoments compares the mean of one mean-field round
// against the analytic expectation n_red·pRed + n_blue·pBlue over many
// draws — a direct check that the two binomial draws target the right
// probabilities.
func TestMeanFieldOneRoundMoments(t *testing.T) {
	n, b := 1000, 350
	kn := graph.NewKn(n)
	p, err := New(kn, BestOfThree, opinion.NewConfig(n), Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	mean := float64(n-b)*p.adoptBlueProb(b, false) + float64(b)*p.adoptBlueProb(b, true)
	const reps = 4000
	sum := 0.0
	for i := 0; i < reps; i++ {
		p.SetBlueCount(b)
		p.Step()
		sum += float64(p.Blues())
	}
	got := sum / reps
	// Std of one draw is < sqrt(n)/2 ≈ 16; the mean of 4000 reps has SE
	// ≈ 0.25, so a ±1.5 window is ~6σ.
	if math.Abs(got-mean) > 1.5 {
		t.Errorf("one-round mean = %v, want %v", got, mean)
	}
}
