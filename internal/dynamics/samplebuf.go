package dynamics

import (
	"math/bits"

	"repro/internal/rng"
)

// sampleBufWords is the per-shard refill size: 64+ uniforms drawn per
// refill keeps the xoshiro state in registers for whole blocks (see
// rng.Source.Fill) while staying a few cache lines of working set per
// shard.
const sampleBufWords = 256

// sampleBuf fronts a shard's RNG with a block-refilled word buffer. It
// consumes source words in exactly the order scalar Uint64 calls would —
// leftover words persist across rounds, never discarded — so routing the
// engine's draws through the buffer leaves every trajectory byte-identical
// to the unbuffered engine; only the call pattern changes. The bounded
// reduction is Lemire's multiply-shift rejection, mirroring
// rng.Source.Uint64n word for word.
type sampleBuf struct {
	src *rng.Source
	pos int
	buf [sampleBufWords]uint64
}

// next returns the following source word, refilling the buffer in bulk
// when drained.
func (b *sampleBuf) next() uint64 {
	if b.pos == sampleBufWords {
		b.src.Fill(b.buf[:])
		b.pos = 0
	}
	v := b.buf[b.pos]
	b.pos++
	return v
}

// intn returns a uniform integer in [0, n) by Lemire reduction over
// buffered words. n must be positive; the engine guards degree ≥ 1.
func (b *sampleBuf) intn(n int) int {
	u := uint64(n)
	hi, lo := bits.Mul64(b.next(), u)
	if lo < u {
		thresh := -u % u
		for lo < thresh {
			hi, lo = bits.Mul64(b.next(), u)
		}
	}
	return int(hi)
}

// bernoulliHalf consumes one buffered word and reports a fair coin,
// computing exactly src.Bernoulli(0.5) (Float64() < 0.5 ⇔ the 53-bit
// mantissa is below 2⁵²).
func (b *sampleBuf) bernoulliHalf() bool {
	return b.next()>>11 < 1<<52
}
