package dynamics

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/opinion"
	"repro/internal/rng"
)

// refStep replicates the pre-batching scalar update loop exactly — raw
// per-sample Uint64n draws, bit-by-bit reads and writes — over the same
// shard layout and per-shard streams the engine uses. The batched engine
// must reproduce it byte for byte: buffering refills words in blocks but
// consumes them in the identical order, so the trajectory contract (fixed
// seed and workers ⇒ fixed outcome) survives the optimisation.
func refStep(g Topology, rule Rule, cur, next *opinion.Config, shards []struct {
	lo, hi int
	src    *rng.Source
}) {
	k := rule.K
	for _, s := range shards {
		for v := s.lo; v < s.hi; v++ {
			deg := g.Degree(v)
			blues := 0
			if rule.WithoutReplacement && deg >= k {
				chosen := make([]int, 0, k)
				for i := 0; i < k; i++ {
				retry:
					idx := s.src.Intn(deg)
					for _, c := range chosen {
						if c == idx {
							goto retry
						}
					}
					chosen = append(chosen, idx)
					if cur.Get(g.Neighbor(v, idx)) == opinion.Blue {
						blues++
					}
				}
			} else {
				for i := 0; i < k; i++ {
					if cur.Get(g.Neighbor(v, s.src.Intn(deg))) == opinion.Blue {
						blues++
					}
				}
			}
			var col opinion.Colour
			switch {
			case 2*blues > k:
				col = opinion.Blue
			case 2*blues < k:
				col = opinion.Red
			default:
				if rule.Tie == TieKeep {
					col = cur.Get(v)
				} else if s.src.Bernoulli(0.5) {
					col = opinion.Blue
				} else {
					col = opinion.Red
				}
			}
			next.Set(v, col)
		}
	}
}

// TestBatchedMatchesScalarReference pins the determinism contract of the
// batched general engine: for every rule shape and worker count, each
// round's configuration is byte-identical to the reference scalar
// implementation driven by the same (seed, workers) streams.
func TestBatchedMatchesScalarReference(t *testing.T) {
	const n, seed = 640, 77
	g := graph.RandomRegular(n, 12, rng.New(1))
	rules := []Rule{
		BestOfThree,
		Voter,
		{K: 2, Tie: TieKeep},
		{K: 2, Tie: TieRandom},
		{K: 3, WithoutReplacement: true},
		{K: 4, Tie: TieRandom, WithoutReplacement: true},
	}
	for _, rule := range rules {
		for _, workers := range []int{1, 3} {
			init := opinion.RandomConfig(n, 0.45, rng.New(2))
			p, err := New(g, rule, init, Options{Seed: seed, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if p.Engine() != EngineGeneral {
				t.Fatalf("%s: unexpected engine %v", rule.Name(), p.Engine())
			}
			// Mirror the engine's shard layout and streams.
			shards := make([]struct {
				lo, hi int
				src    *rng.Source
			}, len(p.shards))
			for i, s := range p.shards {
				shards[i].lo, shards[i].hi = s.lo, s.hi
				shards[i].src = rng.NewFrom(seed, uint64(i))
			}
			cur := init.Clone()
			next := opinion.NewConfig(n)
			for round := 0; round < 12; round++ {
				p.Step()
				refStep(g, rule, cur, next, shards)
				cur, next = next, cur
				if !p.Config().Equal(cur) {
					t.Fatalf("%s workers=%d: batched engine diverged from scalar reference at round %d (blues %d vs %d)",
						rule.Name(), workers, round+1, p.Config().Blues(), cur.Blues())
				}
			}
		}
	}
}

// TestBatchedKnMatchesReference covers the virtual-topology sampling path
// (no neighbour slices), forcing the general engine on K_n.
func TestBatchedKnMatchesReference(t *testing.T) {
	const n, seed = 320, 31
	g := graph.NewKn(n)
	init := opinion.RandomConfig(n, 0.4, rng.New(3))
	p, err := New(g, BestOfThree, init, Options{Seed: seed, Workers: 2, Engine: EngineGeneral})
	if err != nil {
		t.Fatal(err)
	}
	shards := make([]struct {
		lo, hi int
		src    *rng.Source
	}, len(p.shards))
	for i, s := range p.shards {
		shards[i].lo, shards[i].hi = s.lo, s.hi
		shards[i].src = rng.NewFrom(seed, uint64(i))
	}
	cur := init.Clone()
	next := opinion.NewConfig(n)
	for round := 0; round < 10; round++ {
		p.Step()
		refStep(g, BestOfThree, cur, next, shards)
		cur, next = next, cur
		if !p.Config().Equal(cur) {
			t.Fatalf("K_n general engine diverged from reference at round %d", round+1)
		}
	}
}

// TestNoiseDeterminism pins the scalar fallback: noisy rules remain a
// deterministic function of (seed, workers).
func TestNoiseDeterminism(t *testing.T) {
	g := graph.RandomRegular(256, 8, rng.New(4))
	cfg := opinion.RandomConfig(256, 0.4, rng.New(5))
	run := func() []int {
		p, err := New(g, Rule{K: 3, Noise: 0.05}, cfg, Options{Seed: 6, Workers: 3})
		if err != nil {
			t.Fatal(err)
		}
		return p.Run(30).BlueTrajectory
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("noisy trajectories diverge at round %d", i)
		}
	}
}
