package dynamics

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/opinion"
	"repro/internal/rng"
)

func TestRuleValidate(t *testing.T) {
	if err := (Rule{K: 0}).Validate(); err == nil {
		t.Error("K=0 should be invalid")
	}
	if err := (Rule{K: -2}).Validate(); err == nil {
		t.Error("negative K should be invalid")
	}
	for _, r := range []Rule{Voter, BestOfTwo, BestOfThree, {K: 5}} {
		if err := r.Validate(); err != nil {
			t.Errorf("%s invalid: %v", r.Name(), err)
		}
	}
}

func TestRuleNames(t *testing.T) {
	if got := BestOfThree.Name(); got != "best-of-3" {
		t.Errorf("Name = %q", got)
	}
	if got := BestOfTwo.Name(); got != "best-of-2/keep" {
		t.Errorf("Name = %q", got)
	}
	if got := (Rule{K: 2, Tie: TieRandom}).Name(); got != "best-of-2/random" {
		t.Errorf("Name = %q", got)
	}
	if got := (Rule{K: 3, WithoutReplacement: true}).Name(); got != "best-of-3/noreplace" {
		t.Errorf("Name = %q", got)
	}
	if got := (TieRule(9)).String(); got != "TieRule(9)" {
		t.Errorf("unknown tie rule String = %q", got)
	}
}

func TestNewRejectsMismatch(t *testing.T) {
	g := graph.Complete(5)
	cfg := opinion.NewConfig(4)
	if _, err := New(g, BestOfThree, cfg, Options{}); err == nil {
		t.Error("size mismatch not rejected")
	}
	if _, err := New(g, Rule{K: 0}, opinion.NewConfig(5), Options{}); err == nil {
		t.Error("invalid rule not rejected")
	}
}

func TestNewRejectsIsolatedVertex(t *testing.T) {
	g := graph.FromEdges(3, [][2]int{{0, 1}}, "isolated")
	if _, err := New(g, BestOfThree, opinion.NewConfig(3), Options{}); err == nil {
		t.Error("isolated vertex not rejected")
	}
}

func TestConsensusAbsorbing(t *testing.T) {
	// From a monochromatic configuration the dynamic never moves.
	g := graph.Complete(20)
	for _, col := range []opinion.Colour{opinion.Red, opinion.Blue} {
		cfg := opinion.NewConfig(20)
		if col == opinion.Blue {
			cfg.FillBlue()
		}
		p, err := New(g, BestOfThree, cfg, Options{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			p.Step()
		}
		got, ok := p.Config().IsConsensus()
		if !ok || got != col {
			t.Errorf("consensus %v not absorbing", col)
		}
	}
}

func TestRunStopsAtConsensus(t *testing.T) {
	g := graph.Complete(64)
	src := rng.New(7)
	cfg := opinion.RandomConfig(64, 0.25, src)
	p, err := New(g, BestOfThree, cfg, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	res := p.Run(1000)
	if !res.Consensus {
		t.Fatalf("no consensus on K64 after %d rounds", res.Rounds)
	}
	if res.Winner != opinion.Red {
		t.Errorf("winner = %v, want red from 25%% blue start", res.Winner)
	}
	if res.Rounds >= 1000 {
		t.Errorf("rounds = %d, expected quick consensus", res.Rounds)
	}
	if len(res.BlueTrajectory) != res.Rounds+1 {
		t.Errorf("trajectory length %d, rounds %d", len(res.BlueTrajectory), res.Rounds)
	}
	if res.BlueTrajectory[res.Rounds] != 0 {
		t.Errorf("final blue count = %d", res.BlueTrajectory[res.Rounds])
	}
}

func TestRunQuietMatchesRunStatistically(t *testing.T) {
	// Same seed, same workers → identical trajectory, so results agree.
	g := graph.RandomRegular(128, 16, rng.New(3))
	cfg := opinion.RandomConfig(128, 0.3, rng.New(4))
	p1, _ := New(g, BestOfThree, cfg, Options{Seed: 5, Workers: 2})
	p2, _ := New(g, BestOfThree, cfg, Options{Seed: 5, Workers: 2})
	r1 := p1.Run(500)
	r2 := p2.RunQuiet(500)
	if r1.Consensus != r2.Consensus || r1.Winner != r2.Winner || r1.Rounds != r2.Rounds {
		t.Errorf("Run %+v != RunQuiet %+v", r1, r2)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	g := graph.RandomRegular(256, 8, rng.New(10))
	cfg := opinion.RandomConfig(256, 0.4, rng.New(11))
	run := func() []int {
		p, err := New(g, BestOfThree, cfg, Options{Seed: 42, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		return p.Run(50).BlueTrajectory
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trajectory lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trajectories diverge at round %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestWorkerCountInvariance(t *testing.T) {
	// Different worker counts use different RNG stream layouts, so exact
	// trajectories may differ, but the one-round marginal behaviour must
	// stay sane: a heavily red configuration stays heavily red.
	g := graph.Complete(200)
	cfg := opinion.RandomConfig(200, 0.1, rng.New(12))
	for _, w := range []int{1, 3, 8} {
		p, err := New(g, BestOfThree, cfg, Options{Seed: 13, Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		p.Step()
		if frac := p.Config().BlueFraction(); frac > 0.2 {
			t.Errorf("workers=%d: blue fraction jumped to %v", w, frac)
		}
	}
}

func TestVoterModelOnTwoCliqueVertices(t *testing.T) {
	// Voter model on K2: each vertex copies the other; from (R,B) the
	// configuration either swaps or collapses, but counts stay in {0,1,2}.
	g := graph.Complete(2)
	cfg := opinion.FromColours([]opinion.Colour{opinion.Red, opinion.Blue})
	p, err := New(g, Voter, cfg, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		p.Step()
		b := p.Config().Blues()
		if b < 0 || b > 2 {
			t.Fatalf("blue count %d out of range", b)
		}
	}
}

func TestBestOfTwoTieKeepIsLazy(t *testing.T) {
	// On K2 with distinct opinions, best-of-2 with TieKeep: each vertex
	// samples the other vertex twice with replacement — both samples always
	// agree (the other's colour), so vertices always swap. Blue count is
	// conserved at 1.
	g := graph.Complete(2)
	cfg := opinion.FromColours([]opinion.Colour{opinion.Red, opinion.Blue})
	p, err := New(g, BestOfTwo, cfg, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		p.Step()
		if b := p.Config().Blues(); b != 1 {
			t.Fatalf("K2 best-of-2 blue count = %d at round %d, want 1", b, i+1)
		}
	}
}

func TestTieRandomEventuallyBreaksSymmetry(t *testing.T) {
	// On K2 no tie can occur (both samples hit the single neighbour), so use
	// K3 with one blue vertex: each vertex has two neighbours and a split
	// sample triggers the random tie rule, which must eventually collapse
	// the chain into consensus.
	g := graph.Complete(3)
	cfg := opinion.FromColours([]opinion.Colour{opinion.Red, opinion.Blue, opinion.Red})
	p, err := New(g, Rule{K: 2, Tie: TieRandom}, cfg, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	res := p.Run(10000)
	if !res.Consensus {
		t.Error("random tie-breaking never reached consensus on K3")
	}
}

func TestMajorityAmplification(t *testing.T) {
	// On a large complete graph with 30% blue, one best-of-3 round should
	// push the blue fraction down towards 3b²−2b³ = 0.216. The virtual
	// complete topology avoids materialising the Θ(n²) edge list.
	n := 20000
	g := graph.NewKn(n)
	cfg := opinion.RandomConfig(n, 0.3, rng.New(20))
	p, err := New(g, BestOfThree, cfg, Options{Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	p.Step()
	got := p.Config().BlueFraction()
	want := 3*0.3*0.3 - 2*0.3*0.3*0.3
	if got < want-0.02 || got > want+0.02 {
		t.Errorf("after one round blue fraction = %v, want ~%v", got, want)
	}
}

func TestRedWinsWHPFromMajority(t *testing.T) {
	// The paper's headline behaviour at laptop scale: δ = 0.1 on a dense
	// regular graph; red must win in every one of a handful of trials, and
	// quickly.
	g := graph.RandomRegular(2048, 128, rng.New(30))
	for trial := uint64(0); trial < 5; trial++ {
		cfg := opinion.RandomConfig(2048, 0.4, rng.New(100+trial))
		p, err := New(g, BestOfThree, cfg, Options{Seed: 200 + trial})
		if err != nil {
			t.Fatal(err)
		}
		res := p.RunQuiet(200)
		if !res.Consensus || res.Winner != opinion.Red {
			t.Errorf("trial %d: consensus=%v winner=%v rounds=%d", trial, res.Consensus, res.Winner, res.Rounds)
		}
		if res.Rounds > 30 {
			t.Errorf("trial %d: %d rounds, expected O(log log n) ≈ single digits", trial, res.Rounds)
		}
	}
}

func TestWithoutReplacementRuleRuns(t *testing.T) {
	g := graph.RandomRegular(512, 16, rng.New(40))
	cfg := opinion.RandomConfig(512, 0.35, rng.New(41))
	p, err := New(g, Rule{K: 3, WithoutReplacement: true}, cfg, Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	res := p.RunQuiet(300)
	if !res.Consensus || res.Winner != opinion.Red {
		t.Errorf("no-replacement variant: %+v", res)
	}
}

func TestWithoutReplacementLowDegreeFallback(t *testing.T) {
	// Degree 2 < K = 3 forces the with-replacement fallback; must not hang.
	g := graph.Cycle(50)
	cfg := opinion.RandomConfig(50, 0.2, rng.New(43))
	p, err := New(g, Rule{K: 3, WithoutReplacement: true}, cfg, Options{Seed: 44})
	if err != nil {
		t.Fatal(err)
	}
	p.Step()
}

func TestEmptyGraphProcess(t *testing.T) {
	g := graph.NewBuilder(0).Build()
	p, err := New(g, BestOfThree, opinion.NewConfig(0), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res := p.Run(3)
	if !res.Consensus || res.Winner != opinion.Red {
		t.Errorf("empty graph result = %+v", res)
	}
}

func TestMaxRoundsRespected(t *testing.T) {
	// Near-critical start on a sparse graph: run must stop at the cap.
	g := graph.Cycle(100)
	cfg := opinion.RandomConfig(100, 0.5, rng.New(50))
	p, err := New(g, Voter, cfg, Options{Seed: 51})
	if err != nil {
		t.Fatal(err)
	}
	res := p.Run(7)
	if res.Rounds > 7 {
		t.Errorf("rounds = %d exceeds cap", res.Rounds)
	}
}

func TestAsyncBasics(t *testing.T) {
	g := graph.Complete(64)
	cfg := opinion.RandomConfig(64, 0.25, rng.New(60))
	a, err := NewAsync(g, BestOfThree, cfg, 61)
	if err != nil {
		t.Fatal(err)
	}
	res := a.Run(500)
	if !res.Consensus {
		t.Fatalf("async no consensus: %+v", res)
	}
	if res.Winner != opinion.Red {
		t.Errorf("async winner = %v", res.Winner)
	}
	if a.Sweeps() > 500 {
		t.Errorf("sweeps = %d over budget", a.Sweeps())
	}
}

func TestAsyncRejectsBadInput(t *testing.T) {
	g := graph.Complete(4)
	if _, err := NewAsync(g, Rule{K: 0}, opinion.NewConfig(4), 1); err == nil {
		t.Error("bad rule accepted")
	}
	if _, err := NewAsync(g, Voter, opinion.NewConfig(3), 1); err == nil {
		t.Error("size mismatch accepted")
	}
	if _, err := NewAsync(graph.NewBuilder(0).Build(), Voter, opinion.NewConfig(0), 1); err == nil {
		t.Error("empty graph accepted for async")
	}
	iso := graph.FromEdges(3, [][2]int{{0, 1}}, "isolated")
	if _, err := NewAsync(iso, Voter, opinion.NewConfig(3), 1); err == nil {
		t.Error("isolated vertex accepted for async")
	}
}

func TestAsyncBlueCounterConsistent(t *testing.T) {
	g := graph.RandomRegular(100, 6, rng.New(70))
	cfg := opinion.RandomConfig(100, 0.5, rng.New(71))
	a, err := NewAsync(g, BestOfTwo, cfg, 72)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		a.Tick()
		if a.blues != a.cfg.Blues() {
			t.Fatalf("cached blue count %d != actual %d at tick %d", a.blues, a.cfg.Blues(), i)
		}
	}
}

// Property: one synchronous step never produces an out-of-range blue count
// and is monotone in the coupling sense for monochromatic inputs.
func TestQuickStepSanity(t *testing.T) {
	g := graph.RandomRegular(64, 8, rng.New(80))
	f := func(seed uint64, pRaw uint8) bool {
		cfg := opinion.RandomConfig(64, float64(pRaw)/255, rng.New(seed))
		p, err := New(g, BestOfThree, cfg, Options{Seed: seed})
		if err != nil {
			return false
		}
		p.Step()
		b := p.Config().Blues()
		return b >= 0 && b <= 64
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: the dynamic commutes with the colour swap symmetry. Flipping
// every opinion and swapping the tie rule target yields the flipped
// trajectory under the same randomness for odd k (no ties).
func TestQuickColourSymmetry(t *testing.T) {
	g := graph.RandomRegular(32, 4, rng.New(90))
	f := func(seed uint64) bool {
		cfg := opinion.RandomConfig(32, 0.5, rng.New(seed))
		flipped := cfg.Clone()
		flipped.BlueSet().FlipAll()

		p1, _ := New(g, BestOfThree, cfg, Options{Seed: seed, Workers: 1})
		p2, _ := New(g, BestOfThree, flipped, Options{Seed: seed, Workers: 1})
		p1.Step()
		p2.Step()
		// After one step with identical sampling randomness, p2 must be the
		// exact flip of p1.
		a := p1.Config().Clone()
		a.BlueSet().FlipAll()
		return a.Equal(p2.Config())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func BenchmarkStepComplete4096(b *testing.B) {
	g := graph.Complete(4096)
	cfg := opinion.RandomConfig(4096, 0.4, rng.New(1))
	p, err := New(g, BestOfThree, cfg, Options{Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Step()
	}
}

func BenchmarkStepRegular65536(b *testing.B) {
	g := graph.RandomRegular(65536, 64, rng.New(1))
	cfg := opinion.RandomConfig(65536, 0.4, rng.New(2))
	p, err := New(g, BestOfThree, cfg, Options{Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Step()
	}
}

func BenchmarkStepSequentialVsParallel(b *testing.B) {
	g := graph.RandomRegular(32768, 32, rng.New(1))
	cfg := opinion.RandomConfig(32768, 0.4, rng.New(2))
	for _, w := range []int{1, 4} {
		b.Run(map[int]string{1: "workers1", 4: "workers4"}[w], func(b *testing.B) {
			p, err := New(g, BestOfThree, cfg, Options{Seed: 3, Workers: w})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Step()
			}
		})
	}
}

func BenchmarkAsyncSweep(b *testing.B) {
	g := graph.RandomRegular(8192, 32, rng.New(1))
	cfg := opinion.RandomConfig(8192, 0.4, rng.New(2))
	a, err := NewAsync(g, BestOfThree, cfg, 3)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 8192; j++ {
			a.Tick()
		}
	}
}

func TestShardsWordAlignedAndCovering(t *testing.T) {
	// Regression test: shard boundaries must land on 64-vertex blocks, or
	// two shards would read-modify-write the same bitset word (a data race
	// with lost updates, caught by the race detector in
	// TestWorkerCountInvariance before the alignment fix).
	g := graph.Complete(3) // topology irrelevant; we only inspect shards
	for _, c := range []struct{ n, w int }{
		{200, 3}, {130, 2}, {64, 5}, {1000, 7}, {63, 4}, {1 << 12, 16},
	} {
		kn := graph.NewKn(c.n)
		p, err := New(kn, BestOfThree, opinion.NewConfig(c.n), Options{Workers: c.w, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		prevHi := 0
		for i, s := range p.shards {
			if s.lo != prevHi {
				t.Fatalf("n=%d w=%d: shard %d starts at %d, want %d (gap/overlap)", c.n, c.w, i, s.lo, prevHi)
			}
			if i > 0 && s.lo%64 != 0 {
				t.Fatalf("n=%d w=%d: shard %d boundary %d not word-aligned", c.n, c.w, i, s.lo)
			}
			if s.hi < s.lo {
				t.Fatalf("n=%d w=%d: shard %d inverted [%d,%d)", c.n, c.w, i, s.lo, s.hi)
			}
			prevHi = s.hi
		}
		if prevHi != c.n {
			t.Fatalf("n=%d w=%d: shards cover up to %d", c.n, c.w, prevHi)
		}
	}
	_ = g
}
