package dynamics

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/opinion"
)

// StubbornProcess is Best-of-k with a set of stubborn (zealot) vertices
// that never update their opinion. It is the dynamic analogue of the
// Sprinkling process's artificial always-Blue vertices (Section 3 of the
// paper): the analysis there majorises collisions by pretending some
// queried vertices are deterministically Blue, and this process realises
// that adversary in the forward dynamic. The E15 experiment measures how
// many stubborn Blue vertices the Red majority tolerates.
type StubbornProcess struct {
	*Process
	stubborn *bitset.Set
	frozen   *opinion.Config
}

// NewStubborn wraps a Process so the listed vertices keep their initial
// opinion forever. Duplicate vertices are allowed; out-of-range vertices
// are an error.
//
// The inner process always runs the general engine: the mean-field fast
// path models the configuration as an exchangeable blue count, and frozen
// vertices break exchangeability (restoring them after a mean-field step
// would silently mutate a stale materialisation). Requesting EngineMeanField
// explicitly is therefore an error; EngineAuto resolves to general here even
// on mean-field-eligible topologies.
func NewStubborn(g Topology, rule Rule, init *opinion.Config, stubborn []int, opt Options) (*StubbornProcess, error) {
	if opt.Engine == EngineMeanField {
		return nil, fmt.Errorf("dynamics: stubborn process requires the general engine (frozen vertices break mean-field exchangeability)")
	}
	opt.Engine = EngineGeneral
	p, err := New(g, rule, init, opt)
	if err != nil {
		return nil, err
	}
	set := bitset.New(g.N())
	for _, v := range stubborn {
		if v < 0 || v >= g.N() {
			return nil, fmt.Errorf("dynamics: stubborn vertex %d out of range [0,%d)", v, g.N())
		}
		set.Set(v)
	}
	return &StubbornProcess{Process: p, stubborn: set, frozen: init.Clone()}, nil
}

// StubbornCount returns the number of stubborn vertices.
func (s *StubbornProcess) StubbornCount() int { return s.stubborn.Count() }

// Step performs one synchronous round and then restores the stubborn
// vertices' frozen opinions. Restoring after the parallel update keeps the
// inner engine unchanged while giving exactly the zealot semantics: other
// vertices sampled the frozen opinions (the pre-round configuration), and
// the zealots themselves ignore their computed update.
func (s *StubbornProcess) Step() {
	s.Process.Step()
	s.stubborn.ForEach(func(v int) {
		s.cur.Set(v, s.frozen.Get(v))
	})
}

// Run advances until consensus or maxRounds. Note that with stubborn
// vertices of both colours present, consensus is impossible; Run then
// always exhausts the budget and reports the final majority.
func (s *StubbornProcess) Run(maxRounds int) Result {
	res := Result{BlueTrajectory: []int{s.cur.Blues()}}
	for s.round < maxRounds {
		if col, ok := s.cur.IsConsensus(); ok {
			res.Consensus = true
			res.Winner = col
			res.Rounds = s.round
			return res
		}
		s.Step()
		res.BlueTrajectory = append(res.BlueTrajectory, s.cur.Blues())
	}
	res.Rounds = s.round
	if col, ok := s.cur.IsConsensus(); ok {
		res.Consensus = true
		res.Winner = col
	} else {
		res.Winner = s.cur.Majority()
	}
	return res
}
