package sim

import (
	"context"
	"sync/atomic"
	"testing"

	"repro/internal/rng"
)

func TestRunTrialsOrderAndCount(t *testing.T) {
	out := RunTrials(100, 7, 4, func(i int, src *rng.Source) float64 {
		return float64(i) * 2
	})
	if len(out) != 100 {
		t.Fatalf("len = %d", len(out))
	}
	for i, v := range out {
		if v != float64(i)*2 {
			t.Fatalf("out[%d] = %v", i, v)
		}
	}
}

func TestRunTrialsDeterministicAcrossWorkerCounts(t *testing.T) {
	trial := func(i int, src *rng.Source) float64 {
		return float64(src.Uint64n(1 << 30))
	}
	a := RunTrials(50, 42, 1, trial)
	b := RunTrials(50, 42, 8, trial)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trial %d differs across worker counts: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestRunTrialsSeedSensitivity(t *testing.T) {
	trial := func(i int, src *rng.Source) float64 {
		return float64(src.Uint64n(1 << 30))
	}
	a := RunTrials(20, 1, 2, trial)
	b := RunTrials(20, 2, 2, trial)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds matched on %d/20 trials", same)
	}
}

func TestRunTrialsEdgeCases(t *testing.T) {
	if out := RunTrials(0, 1, 4, nil); out != nil {
		t.Error("zero trials should return nil")
	}
	if out := RunTrials(-5, 1, 4, nil); out != nil {
		t.Error("negative trials should return nil")
	}
	// workers > n must not deadlock or skip trials.
	out := RunTrials(3, 1, 100, func(i int, src *rng.Source) float64 { return 1 })
	if len(out) != 3 {
		t.Errorf("len = %d", len(out))
	}
}

func TestRunOutcomesAndHelpers(t *testing.T) {
	outs := RunOutcomes(10, 3, 2, func(i int, src *rng.Source) Outcome {
		return Outcome{Rounds: float64(i), Win: i%2 == 0}
	})
	if len(outs) != 10 {
		t.Fatalf("len = %d", len(outs))
	}
	if w := Wins(outs); w != 5 {
		t.Errorf("Wins = %d", w)
	}
	rounds := RoundsOf(outs)
	for i, r := range rounds {
		if r != float64(i) {
			t.Fatalf("rounds[%d] = %v", i, r)
		}
	}
	if out := RunOutcomes(0, 1, 1, nil); out != nil {
		t.Error("zero outcomes should return nil")
	}
}

func TestRunTrialsContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := RunTrialsContext(ctx, 100, 7, 4, func(i int, src *rng.Source) float64 {
		return 1
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	done := 0
	for _, v := range out {
		if v != 0 {
			done++
		}
	}
	// A pre-cancelled context may still let the first claimed trials run
	// (workers check before claiming), but must not run the whole batch.
	if done > 8 {
		t.Errorf("%d/100 trials ran under a cancelled context", done)
	}
}

func TestRunTrialsContextMidFlight(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	out, err := RunTrialsContext(ctx, 1000, 7, 4, func(i int, src *rng.Source) float64 {
		if started.Add(1) == 10 {
			cancel()
		}
		return 1
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(out) != 1000 {
		t.Fatalf("len = %d", len(out))
	}
	done := 0
	for _, v := range out {
		if v != 0 {
			done++
		}
	}
	if done >= 1000 {
		t.Error("cancellation mid-flight did not stop the batch")
	}
}

func TestRunOutcomesContextMatchesRunOutcomes(t *testing.T) {
	trial := func(i int, src *rng.Source) Outcome {
		return Outcome{Rounds: float64(src.Uint64n(100)), Win: i%2 == 0}
	}
	a := RunOutcomes(40, 3, 4, trial)
	b, err := RunOutcomesContext(context.Background(), 40, 3, 2, trial)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("outcome %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestTallyAddAndMerge(t *testing.T) {
	results := []struct {
		rounds         int
		win, consensus bool
	}{
		{5, true, true}, {9, false, true}, {3, true, false}, {12, true, true},
	}
	var whole Tally
	for _, r := range results {
		whole.Add(r.rounds, r.win, r.consensus)
	}
	if whole.Trials != 4 || whole.Wins != 3 || whole.Consensus != 3 {
		t.Errorf("counts = %+v, want 4 trials, 3 wins, 3 consensus", whole)
	}
	if whole.RoundSum != 29 || whole.MaxRounds != 12 {
		t.Errorf("rounds = %+v, want sum 29, max 12", whole)
	}
	if got, want := whole.MeanRounds(), 29.0/4; got != want {
		t.Errorf("MeanRounds = %v, want %v", got, want)
	}

	// Merging two halves reproduces the whole regardless of split point.
	for split := 0; split <= len(results); split++ {
		var a, b Tally
		for _, r := range results[:split] {
			a.Add(r.rounds, r.win, r.consensus)
		}
		for _, r := range results[split:] {
			b.Add(r.rounds, r.win, r.consensus)
		}
		a.Merge(b)
		if a != whole {
			t.Errorf("split %d: merged = %+v, want %+v", split, a, whole)
		}
	}

	if (Tally{}).MeanRounds() != 0 {
		t.Error("empty tally MeanRounds != 0")
	}
}
