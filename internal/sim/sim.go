// Package sim is the multi-trial experiment harness: it fans independent
// trials of a simulation out over a worker pool, gives every trial its own
// deterministic RNG stream, and aggregates the results.
//
// Every runner has a context-aware variant (RunTrialsContext,
// RunOutcomesContext) that stops claiming new trials once the context is
// cancelled and returns the partial results together with ctx.Err(); this
// is what lets the bo3serve job manager cancel queued work and shut down
// gracefully without abandoning goroutines.
package sim

import (
	"context"
	"runtime"
	"sync"

	"repro/internal/rng"
)

// Trial is a single randomized run: it receives the trial index and a
// dedicated RNG source and returns one float64 measurement.
type Trial func(i int, src *rng.Source) float64

// runIndexed executes n indexed trials over a worker pool. Trial i always
// receives the stream derived from (seed, i), so results are independent of
// scheduling and worker count. When ctx is cancelled, workers stop claiming
// new indices; already-started trials run to completion, untouched slots
// keep their zero value, and ctx.Err() is returned.
func runIndexed[T any](ctx context.Context, n int, seed uint64, workers int, trial func(i int, src *rng.Source) T) ([]T, error) {
	if n <= 0 {
		return nil, ctx.Err()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	out := make([]T, n)
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= n {
					return
				}
				out[i] = trial(i, rng.NewFrom(seed, uint64(i)))
			}
		}()
	}
	wg.Wait()
	return out, ctx.Err()
}

// RunTrials executes n independent trials, parallelised over workers
// goroutines (0 = GOMAXPROCS), and returns the n measurements in trial
// order. Every trial i draws randomness only from its own stream derived
// from (seed, i), so results are independent of scheduling and worker
// count.
func RunTrials(n int, seed uint64, workers int, trial Trial) []float64 {
	out, _ := runIndexed(context.Background(), n, seed, workers, trial)
	return out
}

// RunTrialsContext is RunTrials with cancellation: when ctx is cancelled it
// stops claiming new trials and returns the partial measurements (untouched
// slots are zero) along with ctx.Err().
func RunTrialsContext(ctx context.Context, n int, seed uint64, workers int, trial Trial) ([]float64, error) {
	return runIndexed(ctx, n, seed, workers, trial)
}

// Outcome is a generic per-trial record for experiments that measure more
// than one number.
type Outcome struct {
	// Rounds is the measured round count (or other primary metric).
	Rounds float64
	// Win reports whether the trial satisfied the experiment's success
	// predicate (e.g. "red won").
	Win bool
}

// RunOutcomes is RunTrials for Outcome-valued trials.
func RunOutcomes(n int, seed uint64, workers int, trial func(i int, src *rng.Source) Outcome) []Outcome {
	out, _ := runIndexed(context.Background(), n, seed, workers, trial)
	return out
}

// RunOutcomesContext is RunOutcomes with cancellation, mirroring
// RunTrialsContext.
func RunOutcomesContext(ctx context.Context, n int, seed uint64, workers int, trial func(i int, src *rng.Source) Outcome) ([]Outcome, error) {
	return runIndexed(ctx, n, seed, workers, trial)
}

// Tally is a streaming aggregate over trial results: the serve layer uses
// one Tally per job to summarise its trials and merges per-cell tallies
// into sweep-level aggregates. The zero value is ready to use. Every field
// is order-independent (counts, sums, max), so a tally is a deterministic
// function of the multiset of results folded in regardless of completion
// order — aggregates built from deterministic trials are reproducible even
// when the trials finish out of order.
type Tally struct {
	// Trials is the number of results folded in.
	Trials int
	// Wins counts results whose success predicate held (e.g. "red won").
	Wins int
	// Consensus counts results that reached a monochromatic state.
	Consensus int
	// RoundSum and MaxRounds summarise the per-result round counts.
	RoundSum  int
	MaxRounds int
}

// Add folds one trial result into the tally.
func (t *Tally) Add(rounds int, win, consensus bool) {
	t.Trials++
	if win {
		t.Wins++
	}
	if consensus {
		t.Consensus++
	}
	t.RoundSum += rounds
	if rounds > t.MaxRounds {
		t.MaxRounds = rounds
	}
}

// Merge folds another tally in, so per-cell tallies combine into a
// sweep-level one.
func (t *Tally) Merge(o Tally) {
	t.Trials += o.Trials
	t.Wins += o.Wins
	t.Consensus += o.Consensus
	t.RoundSum += o.RoundSum
	if o.MaxRounds > t.MaxRounds {
		t.MaxRounds = o.MaxRounds
	}
}

// MeanRounds is the mean round count, or 0 for an empty tally.
func (t Tally) MeanRounds() float64 {
	if t.Trials == 0 {
		return 0
	}
	return float64(t.RoundSum) / float64(t.Trials)
}

// Wins counts the outcomes with Win set.
func Wins(outs []Outcome) int {
	w := 0
	for _, o := range outs {
		if o.Win {
			w++
		}
	}
	return w
}

// RoundsOf extracts the Rounds fields.
func RoundsOf(outs []Outcome) []float64 {
	xs := make([]float64, len(outs))
	for i, o := range outs {
		xs[i] = o.Rounds
	}
	return xs
}
