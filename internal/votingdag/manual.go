package votingdag

import "fmt"

// ManualLevel describes one level of a hand-built DAG: each entry is a
// node's graph vertex and (for levels above 0) its three child indices.
type ManualLevel []ManualNode

// ManualNode is one node of a hand-built DAG level.
type ManualNode struct {
	V        int
	Children [3]int
}

// BuildManual constructs a DAG from explicit levels, leaves first; the last
// level must contain exactly one node (the root). Collision slots are
// derived the same way Build derives them: scanning each level's nodes in
// order and slot order, a child reference is a collision slot if that child
// was already referenced. This makes hand-built figures (such as the
// paper's Figure 1) behave identically to sampled DAGs under Sprinkle.
func BuildManual(levels []ManualLevel) *DAG {
	if len(levels) == 0 {
		panic("votingdag: BuildManual needs at least one level")
	}
	if len(levels[len(levels)-1]) != 1 {
		panic("votingdag: top level must have exactly one node")
	}
	d := &DAG{Levels: make([][]Node, len(levels))}
	d.Root = levels[len(levels)-1][0].V
	for t, lvl := range levels {
		d.Levels[t] = make([]Node, len(lvl))
		for i, mn := range lvl {
			d.Levels[t][i] = Node{V: int32(mn.V)}
		}
		if t == 0 {
			continue
		}
		seen := make(map[int]bool, 3*len(lvl))
		for i, mn := range lvl {
			for slot, c := range mn.Children {
				if c < 0 || c >= len(levels[t-1]) {
					panic(fmt.Sprintf("votingdag: node %d at level %d: child %d out of range", i, t, c))
				}
				d.Levels[t][i].Children[slot] = int32(c)
				if seen[c] {
					d.Levels[t][i].CollisionSlot[slot] = true
				}
				seen[c] = true
			}
		}
	}
	return d
}
