package votingdag

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/opinion"
	"repro/internal/rng"
)

func allRed(v int) opinion.Colour  { return opinion.Red }
func allBlue(v int) opinion.Colour { return opinion.Blue }

func TestBuildHeightZero(t *testing.T) {
	g := graph.Complete(4)
	d := Build(g, 2, 0, rng.New(1))
	if d.T() != 0 || d.NumNodes() != 1 {
		t.Fatalf("T=%d nodes=%d", d.T(), d.NumNodes())
	}
	if d.Root != 2 {
		t.Errorf("root = %d", d.Root)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	cols := d.Colour(allBlue)
	if cols.RootColour() != opinion.Blue {
		t.Error("height-0 root should take the leaf colour")
	}
}

func TestBuildStructure(t *testing.T) {
	g := graph.RandomRegular(100, 10, rng.New(2))
	d := Build(g, 0, 4, rng.New(3))
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	sizes := d.LevelSizes()
	if sizes[4] != 1 {
		t.Errorf("root level size = %d", sizes[4])
	}
	// Level t has at most 3^(T-t) nodes and at most 3·|level above|.
	want := 1
	for lvl := 4; lvl >= 0; lvl-- {
		if sizes[lvl] > want {
			t.Errorf("level %d has %d nodes, max %d", lvl, sizes[lvl], want)
		}
		want *= 3
	}
}

func TestBuildPanics(t *testing.T) {
	g := graph.Complete(3)
	for name, fn := range map[string]func(){
		"negative height": func() { Build(g, 0, -1, rng.New(1)) },
		"root range":      func() { Build(g, 3, 2, rng.New(1)) },
		"negative root":   func() { Build(g, -1, 2, rng.New(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestBuildDeterministic(t *testing.T) {
	g := graph.RandomRegular(64, 8, rng.New(4))
	a := Build(g, 5, 4, rng.New(9))
	b := Build(g, 5, 4, rng.New(9))
	if a.NumNodes() != b.NumNodes() {
		t.Fatal("same seed, different DAGs")
	}
	for t2 := range a.Levels {
		for i := range a.Levels[t2] {
			if a.Levels[t2][i] != b.Levels[t2][i] {
				t.Fatalf("node (%d,%d) differs", i, t2)
			}
		}
	}
}

func TestColourAllRedAllBlue(t *testing.T) {
	g := graph.RandomRegular(50, 6, rng.New(5))
	d := Build(g, 1, 3, rng.New(6))
	if got := d.Colour(allRed).RootColour(); got != opinion.Red {
		t.Errorf("all-red leaves gave %v root", got)
	}
	if got := d.Colour(allBlue).RootColour(); got != opinion.Blue {
		t.Errorf("all-blue leaves gave %v root", got)
	}
}

func TestColourMatchesMajorityByHand(t *testing.T) {
	// Two-level manual DAG: root has children (a, b, a) -> majority colour
	// of multiset {a, b, a} is colour(a).
	d := BuildManual([]ManualLevel{
		{{V: 10}, {V: 11}},
		{{V: 1, Children: [3]int{0, 1, 0}}},
	})
	cols := d.Colour(func(v int) opinion.Colour {
		if v == 10 {
			return opinion.Blue
		}
		return opinion.Red
	})
	if cols.RootColour() != opinion.Blue {
		t.Error("duplicated blue child should decide the root")
	}
	cols2 := d.Colour(func(v int) opinion.Colour {
		if v == 10 {
			return opinion.Red
		}
		return opinion.Blue
	})
	if cols2.RootColour() != opinion.Red {
		t.Error("duplicated red child should decide the root")
	}
}

func TestCollisionDetectionOnComplete(t *testing.T) {
	// On K3 each level has at most 3 distinct vertices (a vertex queries
	// only its 2 neighbours), so a DAG of a few levels must coalesce and
	// record collisions.
	g := graph.Complete(3)
	d := Build(g, 0, 5, rng.New(7))
	if d.CollisionLevelCount() == 0 {
		t.Error("K3 DAG of height 5 should have collision levels")
	}
	if d.IsTree() {
		t.Error("K3 DAG of height 5 cannot be a ternary tree")
	}
}

func TestNoCollisionsOnHugeGraph(t *testing.T) {
	// Birthday bound: with n = 2^16 and d = n-1, a height-3 DAG has ≤ 27
	// reveals per level; collisions are vanishingly rare but not impossible,
	// so average over seeds.
	g := graph.NewKn(1 << 16)
	collisions := 0
	for seed := uint64(0); seed < 20; seed++ {
		d := Build(g, 7, 3, rng.New(seed))
		collisions += d.CollisionLevelCount()
	}
	if collisions > 2 {
		t.Errorf("unexpectedly many collision levels on K_65536: %d", collisions)
	}
}

func TestManualFigure1Sprinkling(t *testing.T) {
	// The paper's Figure 1: a 2-level DAG where vertices at level 1 share
	// queried vertices at level 0. Build a root querying (a, a, b): slot 1
	// is a collision (a repeated) — sprinkling reroutes it to an artificial
	// blue node.
	d := BuildManual([]ManualLevel{
		{{V: 10}, {V: 11}},
		{{V: 1, Children: [3]int{0, 0, 1}}},
	})
	if d.CollisionLevelCount() != 1 {
		t.Fatalf("collision levels = %d, want 1", d.CollisionLevelCount())
	}
	s := d.Sprinkle(d.T())
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.ArtificialCount() != 1 {
		t.Fatalf("artificial nodes = %d, want 1", s.ArtificialCount())
	}
	if s.CollisionLevelCount() != 0 {
		t.Error("sprinkled DAG still has collision levels")
	}
	// Original must be untouched.
	if d.ArtificialCount() != 0 || d.CollisionLevelCount() != 1 {
		t.Error("Sprinkle mutated the receiver")
	}
	// With both real leaves red, H root is red but H' root is red too
	// (majority{red, blue, red}); with leaf a blue, H root = blue.
	colsH := s.Colour(allRed)
	if colsH.RootColour() != opinion.Red {
		t.Error("sprinkled root with all-red leaves should stay red (1 artificial blue of 3)")
	}
}

func TestSprinkleCouplingMajorisation(t *testing.T) {
	// The paper's coupling: X_H(v,t) <= X_H'(v,t) for all shared nodes,
	// under the same leaf colours. Blue = 1, so H' dominates.
	g := graph.Complete(8) // small and dense: many collisions
	for seed := uint64(0); seed < 50; seed++ {
		d := Build(g, 0, 4, rng.New(seed))
		s := d.Sprinkle(4)
		leaf := RandomLeafColouring(0.4, rng.New(seed+1000))
		colsH := d.Colour(leaf)
		colsS := s.Colour(leaf)
		for t2 := range d.Levels {
			for i := range d.Levels[t2] {
				if colsH[t2][i] == opinion.Blue && colsS[t2][i] != opinion.Blue {
					t.Fatalf("seed %d: coupling violated at node (%d,%d)", seed, i, t2)
				}
			}
		}
	}
}

func TestSprinklePartialHeight(t *testing.T) {
	g := graph.Complete(4)
	d := Build(g, 0, 5, rng.New(11))
	s := d.Sprinkle(2) // only levels 1..2 become collision-free
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	lv := s.CollisionLevels()
	if lv[1] || lv[2] {
		t.Error("levels <= tMax still have collisions after Sprinkle")
	}
	// tMax beyond T clamps.
	s2 := d.Sprinkle(100)
	if s2.CollisionLevelCount() != 0 {
		t.Error("Sprinkle(T+) left collisions")
	}
}

func TestRandomLeafColouringMemoises(t *testing.T) {
	leaf := RandomLeafColouring(0.5, rng.New(12))
	for v := 0; v < 100; v++ {
		a := leaf(v)
		for j := 0; j < 3; j++ {
			if leaf(v) != a {
				t.Fatalf("leaf colour of %d changed between queries", v)
			}
		}
	}
}

func TestTernaryRoot(t *testing.T) {
	B, R := opinion.Blue, opinion.Red
	cases := []struct {
		leaves []opinion.Colour
		want   opinion.Colour
	}{
		{[]opinion.Colour{R}, R},
		{[]opinion.Colour{B}, B},
		{[]opinion.Colour{B, B, R}, B},
		{[]opinion.Colour{B, R, R}, R},
		// Height 2: root children are maj(BBR)=B, maj(RRR)=R, maj(BRB)=B -> B.
		{[]opinion.Colour{B, B, R, R, R, R, B, R, B}, B},
	}
	for i, c := range cases {
		if got := TernaryRoot(c.leaves); got != c.want {
			t.Errorf("case %d: root = %v, want %v", i, got, c.want)
		}
	}
}

func TestTernaryRootPanics(t *testing.T) {
	for _, n := range []int{0, 2, 4, 6} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("TernaryRoot with %d leaves did not panic", n)
				}
			}()
			TernaryRoot(make([]opinion.Colour, n))
		}()
	}
}

func TestLemma5Threshold(t *testing.T) {
	// Exhaustive check at h = 2 (9 leaves): every colouring with a blue
	// root has >= 4 blue leaves.
	for mask := 0; mask < 1<<9; mask++ {
		leaves := make([]opinion.Colour, 9)
		blues := 0
		for i := range leaves {
			if mask>>i&1 == 1 {
				leaves[i] = opinion.Blue
				blues++
			}
		}
		if TernaryRoot(leaves) == opinion.Blue && blues < MinBlueLeavesForBlueRoot(2) {
			t.Fatalf("blue root with only %d blue leaves (mask %b)", blues, mask)
		}
	}
}

func TestLemma5ThresholdIsTight(t *testing.T) {
	// 2^h blue leaves suffice when placed adversarially: two blue children
	// per blue node along a recursive pattern.
	B, R := opinion.Blue, opinion.Red
	// h=2: blue at positions 0,1 (child 0) and 3,4 (child 1): children are
	// B, B, R -> root B with exactly 4 = 2^2 blues.
	leaves := []opinion.Colour{B, B, R, B, B, R, R, R, R}
	if TernaryRoot(leaves) != opinion.Blue {
		t.Fatal("tight construction should give a blue root")
	}
}

func TestMinBlueLeavesPanicsNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative height did not panic")
		}
	}()
	MinBlueLeavesForBlueRoot(-1)
}

func TestExpandToTreePreservesRootColour(t *testing.T) {
	g := graph.Complete(6)
	for seed := uint64(0); seed < 80; seed++ {
		d := Build(g, 0, 4, rng.New(seed))
		leaf := RandomLeafColouring(0.5, rng.New(seed+500))
		cols := d.Colour(leaf)
		exp := d.ExpandToTree(cols)
		if exp.RootColour != cols.RootColour() {
			t.Fatalf("seed %d: expansion root %v != DAG root %v", seed, exp.RootColour, cols.RootColour())
		}
		if exp.Height != d.T() {
			t.Fatalf("expansion height %d != %d", exp.Height, d.T())
		}
	}
}

func TestExpandToTreePathBound(t *testing.T) {
	// The always-valid form of Lemma 6: blue leaves of the expansion are at
	// most B0 · ∏ maxInDegree(level).
	g := graph.Complete(6)
	for seed := uint64(0); seed < 80; seed++ {
		d := Build(g, 0, 4, rng.New(seed))
		leaf := RandomLeafColouring(0.5, rng.New(seed+700))
		cols := d.Colour(leaf)
		exp := d.ExpandToTree(cols)
		if bound := d.PathCountBound(cols); exp.BlueLeaves > bound {
			t.Fatalf("seed %d: expansion has %d blue leaves > path bound %d", seed, exp.BlueLeaves, bound)
		}
	}
}

func TestExpandToTreeLemma6BoundBinaryCollisions(t *testing.T) {
	// The paper's B0·2^C bound, on the regime where its induction is valid:
	// every collision level has in-multiplicity at most 2.
	g := graph.Complete(6)
	checked := 0
	for seed := uint64(0); seed < 300; seed++ {
		d := Build(g, 0, 4, rng.New(seed))
		binary := true
		for _, m := range d.MaxInDegreePerLevel() {
			if m > 2 {
				binary = false
				break
			}
		}
		if !binary {
			continue
		}
		checked++
		leaf := RandomLeafColouring(0.5, rng.New(seed+700))
		cols := d.Colour(leaf)
		exp := d.ExpandToTree(cols)
		if bound := d.Lemma6Bound(cols); exp.BlueLeaves > bound {
			t.Fatalf("seed %d: expansion has %d blue leaves > 2^C bound %d", seed, exp.BlueLeaves, bound)
		}
	}
	if checked == 0 {
		t.Skip("no binary-collision samples drawn")
	}
}

func TestMaxInDegreePerLevel(t *testing.T) {
	// Root queries (a, a, b): node a has in-multiplicity 2 at level 1.
	d := BuildManual([]ManualLevel{
		{{V: 10}, {V: 11}},
		{{V: 1, Children: [3]int{0, 0, 1}}},
	})
	m := d.MaxInDegreePerLevel()
	if len(m) != 2 || m[0] != 1 || m[1] != 2 {
		t.Errorf("MaxInDegreePerLevel = %v, want [1 2]", m)
	}
	// Collision-free DAG has all entries 1.
	d2 := BuildManual([]ManualLevel{
		{{V: 10}, {V: 11}, {V: 12}},
		{{V: 1, Children: [3]int{0, 1, 2}}},
	})
	m2 := d2.MaxInDegreePerLevel()
	if m2[1] != 1 {
		t.Errorf("collision-free in-degree = %v", m2)
	}
}

func TestPathCountBoundTriplingCase(t *testing.T) {
	// A root querying (a, a, a) has path multiplicity 3 for a; with a blue,
	// the 2^C bound (B0·2 = 2) undercounts the pruned expansion (2 blue
	// leaves after case-i pruning), while the path bound (B0·3 = 3) holds.
	d := BuildManual([]ManualLevel{
		{{V: 10}},
		{{V: 1, Children: [3]int{0, 0, 0}}},
	})
	cols := d.Colour(allBlue)
	exp := d.ExpandToTree(cols)
	if pb := d.PathCountBound(cols); exp.BlueLeaves > pb {
		t.Errorf("expansion %d > path bound %d", exp.BlueLeaves, pb)
	}
}

func TestLemma5OnExpansion(t *testing.T) {
	// Combining Lemmas 5 and 6: a blue DAG root forces
	// expansion.BlueLeaves >= 2^h.
	g := graph.Complete(5)
	checked := 0
	for seed := uint64(0); seed < 300 && checked < 20; seed++ {
		d := Build(g, 0, 3, rng.New(seed))
		leaf := RandomLeafColouring(0.7, rng.New(seed+900)) // blue-heavy to get blue roots
		cols := d.Colour(leaf)
		if cols.RootColour() != opinion.Blue {
			continue
		}
		checked++
		exp := d.ExpandToTree(cols)
		if exp.BlueLeaves < MinBlueLeavesForBlueRoot(d.T()) {
			t.Fatalf("seed %d: blue root with %d < 2^%d expansion blue leaves", seed, exp.BlueLeaves, d.T())
		}
	}
	if checked == 0 {
		t.Fatal("no blue-rooted samples found; weaken the filter")
	}
}

func TestExpandToTreeRejectsSprinkled(t *testing.T) {
	g := graph.Complete(4)
	d := Build(g, 0, 3, rng.New(1)).Sprinkle(3)
	if d.ArtificialCount() == 0 {
		t.Skip("no collisions sampled; nothing to verify")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ExpandToTree accepted a sprinkled DAG")
		}
	}()
	d.ExpandToTree(d.Colour(allRed))
}

func TestLemma6BoundSaturates(t *testing.T) {
	// A fabricated DAG with a huge collision count must not overflow.
	d := BuildManual([]ManualLevel{
		{{V: 0}},
		{{V: 1, Children: [3]int{0, 0, 0}}},
	})
	cols := d.Colour(allBlue)
	if b := d.Lemma6Bound(cols); b < 1 {
		t.Errorf("bound = %d", b)
	}
}

func TestBuildManualPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"empty":       func() { BuildManual(nil) },
		"wide root":   func() { BuildManual([]ManualLevel{{{V: 0}}, {{V: 1}, {V: 2}}}) },
		"child range": func() { BuildManual([]ManualLevel{{{V: 0}}, {{V: 1, Children: [3]int{0, 5, 0}}}}) },
		"neg child":   func() { BuildManual([]ManualLevel{{{V: 0}}, {{V: 1, Children: [3]int{0, -1, 0}}}}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestIsTreeOnSparseSample(t *testing.T) {
	// On a huge complete graph a height-2 DAG is almost surely a tree.
	g := graph.NewKn(1 << 15)
	trees := 0
	for seed := uint64(0); seed < 10; seed++ {
		if Build(g, 3, 2, rng.New(seed)).IsTree() {
			trees++
		}
	}
	if trees < 8 {
		t.Errorf("only %d/10 height-2 DAGs on K_32768 were trees", trees)
	}
}

// Property: DAG root colour equals direct forward simulation... the DAG is
// the *definition* here, so instead check internal consistency: colouring
// twice gives identical results, and colours only depend on leaf values.
func TestQuickColouringDeterministic(t *testing.T) {
	g := graph.Complete(7)
	f := func(seed uint64) bool {
		d := Build(g, 0, 3, rng.New(seed))
		leaf := RandomLeafColouring(0.5, rng.New(seed^0xabc))
		c1 := d.Colour(leaf)
		c2 := d.Colour(leaf)
		return c1.RootColour() == c2.RootColour()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: sprinkling never decreases the number of blue nodes at any
// level (it only adds artificial blue leaves and reroutes edges to them).
func TestQuickSprinkleMonotone(t *testing.T) {
	g := graph.Complete(9)
	f := func(seed uint64, pRaw uint8) bool {
		p := float64(pRaw) / 255
		d := Build(g, 0, 3, rng.New(seed))
		s := d.Sprinkle(3)
		leaf := RandomLeafColouring(p, rng.New(seed^0x1234))
		colsH := d.Colour(leaf)
		colsS := s.Colour(leaf)
		// Root specifically: blue in H implies blue in H'.
		if colsH.RootColour() == opinion.Blue && colsS.RootColour() != opinion.Blue {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkBuildHeight6(b *testing.B) {
	g := graph.RandomRegular(4096, 64, rng.New(1))
	src := rng.New(2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Build(g, i%4096, 6, src)
	}
}

func BenchmarkColourHeight6(b *testing.B) {
	g := graph.RandomRegular(4096, 64, rng.New(1))
	d := Build(g, 0, 6, rng.New(2))
	src := rng.New(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		leaf := RandomLeafColouring(0.4, src)
		d.Colour(leaf)
	}
}

func BenchmarkSprinkle(b *testing.B) {
	g := graph.Complete(64)
	d := Build(g, 0, 6, rng.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Sprinkle(6)
	}
}
