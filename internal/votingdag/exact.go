package votingdag

import (
	"math"
	"math/bits"
)

// ExactRootBlueProb computes P(root is Blue | H = d) exactly when leaves
// are coloured i.i.d. Blue with probability pBlue, by enumerating all
// 2^L colourings of the L distinct normal leaves. The root colour is a
// deterministic monotone function of the leaf colouring, so the exact
// probability is Σ_{blue sets S forcing a blue root} p^|S|(1−p)^{L−|S|}.
//
// The enumeration is O(2^L · |V(H)|); it panics if the DAG has more than
// 24 distinct normal leaves. Conditional probabilities over many sampled
// DAGs give the unconditional P(ξ_T(v₀) = B) without leaf-level Monte
// Carlo noise — the estimator used by experiment E20.
func (d *DAG) ExactRootBlueProb(pBlue float64) float64 {
	var leafIdx []int32 // node indices of normal leaves at level 0
	for i, nd := range d.Levels[0] {
		if !nd.Artificial {
			leafIdx = append(leafIdx, int32(i))
		}
	}
	L := len(leafIdx)
	if L > 24 {
		panic("votingdag: ExactRootBlueProb limited to 24 distinct leaves")
	}
	if pBlue < 0 {
		pBlue = 0
	}
	if pBlue > 1 {
		pBlue = 1
	}

	// Colour buffers reused across masks.
	cols := make([][]uint8, len(d.Levels))
	for t := range d.Levels {
		cols[t] = make([]uint8, len(d.Levels[t]))
	}
	// Precompute log-weights? Direct products are fine for L <= 24.
	total := 0.0
	for mask := 0; mask < 1<<L; mask++ {
		// Level 0: artificial nodes are blue (1); normal leaves by mask.
		for i, nd := range d.Levels[0] {
			if nd.Artificial {
				cols[0][i] = 1
			} else {
				cols[0][i] = 0
			}
		}
		for j, idx := range leafIdx {
			if mask>>j&1 == 1 {
				cols[0][idx] = 1
			}
		}
		for t := 1; t < len(d.Levels); t++ {
			for i := range d.Levels[t] {
				nd := &d.Levels[t][i]
				if nd.Artificial {
					cols[t][i] = 1
					continue
				}
				sum := cols[t-1][nd.Children[0]] + cols[t-1][nd.Children[1]] + cols[t-1][nd.Children[2]]
				if sum >= 2 {
					cols[t][i] = 1
				} else {
					cols[t][i] = 0
				}
			}
		}
		if cols[len(cols)-1][0] == 1 {
			blues := bits.OnesCount(uint(mask))
			total += math.Pow(pBlue, float64(blues)) * math.Pow(1-pBlue, float64(L-blues))
		}
	}
	return total
}

// DistinctLeafCount returns the number of distinct normal (non-artificial)
// leaves at level 0 — the enumeration width of ExactRootBlueProb.
func (d *DAG) DistinctLeafCount() int {
	c := 0
	for _, nd := range d.Levels[0] {
		if !nd.Artificial {
			c++
		}
	}
	return c
}
