package votingdag

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/opinion"
	"repro/internal/rng"
)

func TestExactRootBlueProbSingleNode(t *testing.T) {
	g := graph.Complete(4)
	d := Build(g, 0, 0, rng.New(1))
	for _, p := range []float64{0, 0.3, 1} {
		if got := d.ExactRootBlueProb(p); math.Abs(got-p) > 1e-12 {
			t.Errorf("height-0 exact prob at p=%v: %v", p, got)
		}
	}
}

func TestExactRootBlueProbTernaryTree(t *testing.T) {
	// A collision-free height-1 DAG with three distinct leaves: the exact
	// probability is eq. (1): 3p² − 2p³.
	d := BuildManual([]ManualLevel{
		{{V: 10}, {V: 11}, {V: 12}},
		{{V: 1, Children: [3]int{0, 1, 2}}},
	})
	for _, p := range []float64{0.1, 0.4, 0.5, 0.9} {
		want := 3*p*p - 2*p*p*p
		if got := d.ExactRootBlueProb(p); math.Abs(got-want) > 1e-12 {
			t.Errorf("p=%v: exact %v, want %v", p, got, want)
		}
	}
}

func TestExactRootBlueProbDuplicatedChild(t *testing.T) {
	// Root queries (a, a, b): the root is blue iff a is blue, so the exact
	// probability is p regardless of b.
	d := BuildManual([]ManualLevel{
		{{V: 10}, {V: 11}},
		{{V: 1, Children: [3]int{0, 0, 1}}},
	})
	for _, p := range []float64{0.2, 0.7} {
		if got := d.ExactRootBlueProb(p); math.Abs(got-p) > 1e-12 {
			t.Errorf("p=%v: exact %v, want p", p, got)
		}
	}
}

func TestExactRootBlueProbSprinkledFigure(t *testing.T) {
	// After sprinkling, the figure DAG's root colour depends on fewer real
	// leaves plus always-blue artificial nodes; the exact probability must
	// majorise the unsprinkled one (the coupling) for every p.
	d := BuildManual([]ManualLevel{
		{{V: 20}, {V: 21}, {V: 22}},
		{{V: 10, Children: [3]int{0, 1, 0}}, {V: 11, Children: [3]int{1, 2, 2}}},
		{{V: 1, Children: [3]int{0, 1, 1}}},
	})
	s := d.Sprinkle(d.T())
	for _, p := range []float64{0, 0.1, 0.3, 0.5, 0.8, 1} {
		orig := d.ExactRootBlueProb(p)
		spr := s.ExactRootBlueProb(p)
		if spr < orig-1e-12 {
			t.Errorf("p=%v: sprinkled %v < original %v (coupling violated)", p, spr, orig)
		}
	}
}

func TestExactMatchesMonteCarloOnRandomDAGs(t *testing.T) {
	g := graph.Complete(10)
	src := rng.New(5)
	const p = 0.4
	for s := 0; s < 10; s++ {
		d := Build(g, src.Intn(10), 3, src)
		if d.DistinctLeafCount() > 24 {
			continue
		}
		exact := d.ExactRootBlueProb(p)
		const trials = 4000
		blue := 0
		for i := 0; i < trials; i++ {
			leaf := RandomLeafColouring(p, src)
			if d.Colour(leaf).RootColour() == opinion.Blue {
				blue++
			}
		}
		emp := float64(blue) / trials
		se := math.Sqrt(exact*(1-exact)/trials) + 1e-9
		if math.Abs(emp-exact) > 5*se+0.01 {
			t.Errorf("sample %d: exact %v vs MC %v", s, exact, emp)
		}
	}
}

func TestExactMonotoneInP(t *testing.T) {
	g := graph.Complete(8)
	d := Build(g, 0, 3, rng.New(9))
	prev := -1.0
	for p := 0.0; p <= 1.0001; p += 0.1 {
		cur := d.ExactRootBlueProb(p)
		if cur < prev-1e-12 {
			t.Fatalf("exact probability not monotone at p=%v", p)
		}
		prev = cur
	}
}

func TestExactPanicsOnTooManyLeaves(t *testing.T) {
	g := graph.NewKn(1 << 12)
	d := Build(g, 0, 3, rng.New(10)) // ~27 distinct leaves almost surely
	if d.DistinctLeafCount() <= 24 {
		t.Skip("sampled DAG unexpectedly small")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("oversized enumeration did not panic")
		}
	}()
	d.ExactRootBlueProb(0.5)
}

func BenchmarkExactRootBlueProb(b *testing.B) {
	g := graph.Complete(12)
	d := Build(g, 0, 3, rng.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.ExactRootBlueProb(0.4)
	}
}
