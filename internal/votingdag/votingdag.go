// Package votingdag implements the random voting-DAG of Section 2 of the
// paper: the time-reversed query structure that determines the opinion
// ξ_T(v₀) of a root vertex from the i.i.d. opinions at time 0.
//
// Level T holds the root (v₀, T); each node at level t+1 records the three
// neighbours (sampled with replacement) whose level-t opinions determine
// its colour; nodes at the same level that refer to the same graph vertex
// coalesce, which is what makes the object a DAG rather than a ternary
// tree. The package also implements the Sprinkling process of Section 3
// (re-routing colliding edges to artificial always-Blue leaves, yielding a
// collision-free — hence independent — lower structure) and the ternary-
// tree machinery of Section 4 (Lemmas 5 and 6).
package votingdag

import (
	"fmt"

	"repro/internal/opinion"
	"repro/internal/rng"
)

// Topology is the neighbour-query interface the builder needs; both
// *graph.Graph and graph.Kn satisfy it.
type Topology interface {
	N() int
	Degree(v int) int
	Neighbor(v, i int) int
}

// NoVertex marks an artificial node's vertex field.
const NoVertex int32 = -1

// Node is one vertex (v, t) of a voting-DAG. Nodes at level t > 0 that are
// not artificial have exactly three child slots pointing into level t−1;
// the slots form a multiset (with-replacement sampling can repeat a child).
type Node struct {
	// V is the graph vertex this node queries, or NoVertex for an
	// artificial node introduced by the Sprinkling process.
	V int32
	// Children are indices into the level below. Meaningless for level-0
	// nodes and artificial nodes (out-degree 0).
	Children [3]int32
	// CollisionSlot marks, per child slot, whether that reveal hit a
	// level-(t−1) vertex that had already been revealed when the builder
	// processed this level left to right — the paper's collision events.
	CollisionSlot [3]bool
	// Artificial marks a sprinkled node whose colour is deterministically
	// Blue and whose out-degree is zero.
	Artificial bool
}

// DAG is a realised voting-DAG of T+1 levels. Levels[0] are the leaves
// (time 0) and Levels[T][0] is the root (v₀, T).
type DAG struct {
	// Levels[t] lists the nodes at level t in reveal order.
	Levels [][]Node
	// Root is the graph vertex of the root node.
	Root int
}

// T returns the height (number of levels minus one).
func (d *DAG) T() int { return len(d.Levels) - 1 }

// NumNodes returns the total node count across all levels.
func (d *DAG) NumNodes() int {
	total := 0
	for _, lvl := range d.Levels {
		total += len(lvl)
	}
	return total
}

// LevelSizes returns the number of nodes per level, leaves first.
func (d *DAG) LevelSizes() []int {
	out := make([]int, len(d.Levels))
	for t, lvl := range d.Levels {
		out[t] = len(lvl)
	}
	return out
}

// CollisionLevels reports, for each level t = 1..T, whether revealing the
// children of level-t nodes produced at least one collision. Index 0 is
// always false (leaves reveal nothing).
func (d *DAG) CollisionLevels() []bool {
	out := make([]bool, len(d.Levels))
	for t := 1; t < len(d.Levels); t++ {
		for _, nd := range d.Levels[t] {
			if nd.Artificial {
				continue
			}
			if nd.CollisionSlot[0] || nd.CollisionSlot[1] || nd.CollisionSlot[2] {
				out[t] = true
				break
			}
		}
	}
	return out
}

// CollisionLevelCount returns C, the number of levels involving at least
// one collision (the random variable of Lemma 7).
func (d *DAG) CollisionLevelCount() int {
	c := 0
	for _, has := range d.CollisionLevels() {
		if has {
			c++
		}
	}
	return c
}

// IsTree reports whether the DAG is a ternary tree, i.e. no coalescing
// occurred anywhere: level t has exactly 3^(T−t) nodes.
func (d *DAG) IsTree() bool {
	want := 1
	for t := d.T(); t >= 0; t-- {
		if len(d.Levels[t]) != want {
			return false
		}
		if want > 1<<30/3 {
			return false // would overflow; such DAGs are never trees in practice
		}
		want *= 3
	}
	return true
}

// Build samples the random voting-DAG H(v₀) of T+1 levels: the trajectory
// of the paper's time-reversed query process (equivalently, per Remark 2, a
// T-step COBRA walk started at root). Nodes within a level coalesce by
// graph vertex; every reveal of an already-revealed vertex is recorded as a
// collision on its child slot.
func Build(g Topology, root, T int, src *rng.Source) *DAG {
	if T < 0 {
		panic("votingdag: negative height")
	}
	if root < 0 || root >= g.N() {
		panic(fmt.Sprintf("votingdag: root %d out of range [0,%d)", root, g.N()))
	}
	d := &DAG{Root: root, Levels: make([][]Node, T+1)}
	d.Levels[T] = []Node{{V: int32(root)}}
	for t := T; t >= 1; t-- {
		lower := make([]Node, 0, 3*len(d.Levels[t]))
		index := make(map[int32]int32, 3*len(d.Levels[t])) // vertex -> node index at level t-1
		for i := range d.Levels[t] {
			nd := &d.Levels[t][i]
			if nd.Artificial {
				continue
			}
			v := int(nd.V)
			deg := g.Degree(v)
			for slot := 0; slot < 3; slot++ {
				w := int32(g.Neighbor(v, src.Intn(deg)))
				if j, seen := index[w]; seen {
					nd.Children[slot] = j
					nd.CollisionSlot[slot] = true
					continue
				}
				j := int32(len(lower))
				index[w] = j
				lower = append(lower, Node{V: w})
				nd.Children[slot] = j
			}
		}
		d.Levels[t-1] = lower
	}
	return d
}

// Colouring is a per-level colour assignment matching a DAG's structure.
type Colouring [][]opinion.Colour

// Colour runs the paper's colouring process: level-0 normal nodes take
// leaf(v); artificial nodes are Blue; every higher node takes the majority
// colour of its three child slots. The returned Colouring is indexed like
// d.Levels.
func (d *DAG) Colour(leaf func(v int) opinion.Colour) Colouring {
	cols := make(Colouring, len(d.Levels))
	for t := range d.Levels {
		cols[t] = make([]opinion.Colour, len(d.Levels[t]))
		for i := range d.Levels[t] {
			nd := &d.Levels[t][i]
			switch {
			case nd.Artificial:
				cols[t][i] = opinion.Blue
			case t == 0:
				cols[t][i] = leaf(int(nd.V))
			default:
				blues := 0
				for _, c := range nd.Children {
					if cols[t-1][c] == opinion.Blue {
						blues++
					}
				}
				if blues >= 2 {
					cols[t][i] = opinion.Blue
				} else {
					cols[t][i] = opinion.Red
				}
			}
		}
	}
	return cols
}

// RootColour returns the colour assigned to the root node.
func (c Colouring) RootColour() opinion.Colour {
	top := c[len(c)-1]
	return top[0]
}

// BlueLeaves returns the number of Blue normal leaves at level 0 under c.
func (d *DAG) BlueLeaves(c Colouring) int {
	blues := 0
	for i, nd := range d.Levels[0] {
		if !nd.Artificial && c[0][i] == opinion.Blue {
			blues++
		}
	}
	return blues
}

// RandomLeafColouring returns a leaf-colour function where every graph
// vertex is independently Blue with probability pBlue — the paper's initial
// condition. Colours are memoised per vertex so coalesced queries agree.
func RandomLeafColouring(pBlue float64, src *rng.Source) func(v int) opinion.Colour {
	memo := make(map[int]opinion.Colour)
	return func(v int) opinion.Colour {
		if c, ok := memo[v]; ok {
			return c
		}
		c := opinion.Red
		if src.Bernoulli(pBlue) {
			c = opinion.Blue
		}
		memo[v] = c
		return c
	}
}

// Sprinkle applies the Sprinkling process of Section 3 to levels 1..tMax of
// d: every collision slot is re-routed to a fresh artificial node at the
// level below, whose colour is deterministically Blue. Levels above tMax
// are left untouched. The result is a new DAG H′ with V(H) ⊆ V(H′) whose
// levels 0..tMax−1 are collision-free, so (conditional on the structure)
// the opinions of its level-t nodes are independent for t ≤ tMax.
//
// Sprinkle copies d; the receiver is not modified.
func (d *DAG) Sprinkle(tMax int) *DAG {
	if tMax > d.T() {
		tMax = d.T()
	}
	s := &DAG{Root: d.Root, Levels: make([][]Node, len(d.Levels))}
	for t := range d.Levels {
		s.Levels[t] = append([]Node(nil), d.Levels[t]...)
	}
	for t := tMax; t >= 1; t-- {
		for i := range s.Levels[t] {
			nd := &s.Levels[t][i]
			if nd.Artificial {
				continue
			}
			for slot := 0; slot < 3; slot++ {
				if !nd.CollisionSlot[slot] {
					continue
				}
				j := int32(len(s.Levels[t-1]))
				s.Levels[t-1] = append(s.Levels[t-1], Node{V: NoVertex, Artificial: true})
				nd.Children[slot] = j
				nd.CollisionSlot[slot] = false
			}
		}
	}
	return s
}

// ArtificialCount returns the number of artificial (sprinkled) nodes.
func (d *DAG) ArtificialCount() int {
	c := 0
	for _, lvl := range d.Levels {
		for _, nd := range lvl {
			if nd.Artificial {
				c++
			}
		}
	}
	return c
}

// Validate checks structural invariants: child indices in range, leaves and
// artificial nodes childless in colouring (by construction), level sizes
// consistent. Returns the first violation.
func (d *DAG) Validate() error {
	if len(d.Levels) == 0 {
		return fmt.Errorf("votingdag: no levels")
	}
	if len(d.Levels[d.T()]) != 1 {
		return fmt.Errorf("votingdag: root level has %d nodes, want 1", len(d.Levels[d.T()]))
	}
	for t := 1; t < len(d.Levels); t++ {
		for i, nd := range d.Levels[t] {
			if nd.Artificial {
				continue
			}
			for _, c := range nd.Children {
				if int(c) < 0 || int(c) >= len(d.Levels[t-1]) {
					return fmt.Errorf("votingdag: node (%d,%d) child %d out of range", i, t, c)
				}
			}
		}
	}
	for t, lvl := range d.Levels {
		for i, nd := range lvl {
			if nd.Artificial && nd.V != NoVertex {
				return fmt.Errorf("votingdag: artificial node (%d,%d) has vertex %d", i, t, nd.V)
			}
			if !nd.Artificial && nd.V == NoVertex {
				return fmt.Errorf("votingdag: normal node (%d,%d) lacks a vertex", i, t)
			}
		}
	}
	return nil
}
