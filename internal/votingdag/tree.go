package votingdag

import (
	"fmt"

	"repro/internal/opinion"
)

// This file implements the ternary-tree machinery of Section 4.
//
// Lemma 5: in a ternary tree of h+1 levels, a Blue root forces at least 2^h
// Blue leaves (each Blue node needs ≥ 2 Blue children).
//
// Lemma 6: any coloured voting-DAG of h+1 levels can be expanded into a
// ternary tree of h+1 levels whose root gets the same colour and whose
// Blue-leaf count is at most B₀·2^C, where B₀ is the DAG's Blue-leaf count
// and C its number of collision levels. ExpandToTree performs that
// construction literally, duplicating shared sub-DAGs.

// TernaryRoot computes the root colour of a complete ternary tree of
// height h from its 3^h leaf colours (left-to-right order). It panics if
// len(leaves) != 3^h for any integer h >= 0.
func TernaryRoot(leaves []opinion.Colour) opinion.Colour {
	n := len(leaves)
	if n == 0 {
		panic("votingdag: TernaryRoot needs at least one leaf")
	}
	cur := append([]opinion.Colour(nil), leaves...)
	for len(cur) > 1 {
		if len(cur)%3 != 0 {
			panic(fmt.Sprintf("votingdag: %d leaves is not a power of three", n))
		}
		next := make([]opinion.Colour, len(cur)/3)
		for i := range next {
			blues := 0
			for j := 0; j < 3; j++ {
				if cur[3*i+j] == opinion.Blue {
					blues++
				}
			}
			if blues >= 2 {
				next[i] = opinion.Blue
			} else {
				next[i] = opinion.Red
			}
		}
		cur = next
	}
	return cur[0]
}

// MinBlueLeavesForBlueRoot returns the Lemma 5 threshold 2^h: a ternary
// tree of h+1 levels whose root is Blue has at least this many Blue leaves.
func MinBlueLeavesForBlueRoot(h int) int {
	if h < 0 {
		panic("votingdag: negative height")
	}
	return 1 << h
}

// TreeExpansion is the result of the Lemma 6 construction.
type TreeExpansion struct {
	// RootColour is the colour the expanded ternary tree assigns to its
	// root; Lemma 6 guarantees it equals the DAG root's colour.
	RootColour opinion.Colour
	// BlueLeaves is the number of Blue leaves in the expanded tree.
	BlueLeaves int
	// Height is the tree height h (the tree has Height+1 levels).
	Height int
}

// ExpandToTree applies the Lemma 6 construction to an *unsprinkled* DAG
// coloured by cols: it produces the parameters of a ternary tree of the
// same height whose root colour matches the DAG's root colour, counting
// Blue leaves without materialising the (exponential) tree.
//
// The construction follows the lemma's induction: at a node whose three
// child slots contain a duplicated child (a within-node collision), the
// tree places two copies of the duplicate's expansion plus one all-Red
// ternary tree; otherwise it places the three children's expansions side
// by side. Memoisation is impossible because copies must be counted
// separately, but the recursion visits each DAG node at most 3^T times and
// the experiments use small T.
func (d *DAG) ExpandToTree(cols Colouring) TreeExpansion {
	if d.ArtificialCount() > 0 {
		panic("votingdag: ExpandToTree requires an unsprinkled DAG")
	}
	h := d.T()
	col, blue := d.expand(cols, h, 0)
	return TreeExpansion{RootColour: col, BlueLeaves: blue, Height: h}
}

// expand returns the expanded-tree root colour and Blue-leaf count of the
// sub-DAG rooted at node i of level t.
func (d *DAG) expand(cols Colouring, t int, i int32) (opinion.Colour, int) {
	if t == 0 {
		c := cols[0][i]
		if c == opinion.Blue {
			return c, 1
		}
		return c, 0
	}
	nd := &d.Levels[t][i]
	c0, c1, c2 := nd.Children[0], nd.Children[1], nd.Children[2]
	// Case i) of the lemma: a duplicated child decides the majority alone.
	var dup int32 = -1
	switch {
	case c0 == c1 || c0 == c2:
		dup = c0
	case c1 == c2:
		dup = c1
	}
	if dup >= 0 {
		col, blue := d.expand(cols, t-1, dup)
		// Two copies of the duplicate's tree plus one all-Red ternary tree:
		// root colour = majority(col, col, red-tree root) = col.
		return col, 2 * blue
	}
	// Case ii): three distinct children.
	colA, blueA := d.expand(cols, t-1, c0)
	colB, blueB := d.expand(cols, t-1, c1)
	colC, blueC := d.expand(cols, t-1, c2)
	blues := 0
	for _, c := range []opinion.Colour{colA, colB, colC} {
		if c == opinion.Blue {
			blues++
		}
	}
	col := opinion.Red
	if blues >= 2 {
		col = opinion.Blue
	}
	return col, blueA + blueB + blueC
}

// Lemma6Bound returns B₀·2^C, the Lemma 6 upper bound on the expanded
// tree's Blue leaves as stated in the paper, where B₀ is the DAG's
// Blue-leaf count under cols and C its collision-level count. The returned
// value saturates at MaxInt on overflow.
//
// Reproduction note: the stated bound is valid when every collision level
// has maximum in-multiplicity 2 (each coalesced node shared by at most two
// reveals), which is the typical case on the paper's dense graphs where
// collisions are rare. When three or more reveals coalesce on one node at
// a single level, the leaf's path multiplicity triples while 2^C accounts
// for one doubling; the always-valid bound is PathCountBound. The
// experiment suite measures both.
func (d *DAG) Lemma6Bound(cols Colouring) int {
	b0 := d.BlueLeaves(cols)
	c := d.CollisionLevelCount()
	if c > 60 {
		return maxInt
	}
	bound := b0 << uint(c)
	if b0 != 0 && bound/b0 != 1<<uint(c) {
		return maxInt
	}
	return bound
}

const maxInt = int(^uint(0) >> 1)

// MaxInDegreePerLevel returns, for each level t = 1..T, the maximum
// in-multiplicity of level t−1 nodes: how many child slots of level-t nodes
// point at a single level t−1 node. Index 0 is 1 by convention. A level is
// collision-free exactly when its entry is 1.
func (d *DAG) MaxInDegreePerLevel() []int {
	out := make([]int, len(d.Levels))
	out[0] = 1
	for t := 1; t < len(d.Levels); t++ {
		indeg := make([]int, len(d.Levels[t-1]))
		for _, nd := range d.Levels[t] {
			if nd.Artificial {
				continue
			}
			for _, c := range nd.Children {
				indeg[c]++
			}
		}
		max := 1
		for _, v := range indeg {
			if v > max {
				max = v
			}
		}
		out[t] = max
	}
	return out
}

// PathCountBound returns B₀·∏ₜ maxInDegree(t), the always-valid analogue
// of the Lemma 6 bound: a leaf appears in the expanded tree once per
// directed root-to-leaf path, and the number of such paths is at most the
// product of per-level maximum in-multiplicities. Saturates at MaxInt.
func (d *DAG) PathCountBound(cols Colouring) int {
	bound := d.BlueLeaves(cols)
	for _, m := range d.MaxInDegreePerLevel() {
		if m <= 1 || bound == 0 {
			continue
		}
		if bound > maxInt/m {
			return maxInt
		}
		bound *= m
	}
	return bound
}
