package votingdag_test

import (
	"fmt"

	"repro/internal/opinion"
	"repro/internal/votingdag"
)

// Build the paper's Figure 1 by hand: a 2-level voting-DAG whose level-1
// vertices query overlapping level-0 vertices, then apply the Sprinkling
// process, which re-routes every colliding reveal to a fresh artificial
// always-Blue leaf.
func ExampleDAG_Sprinkle() {
	d := votingdag.BuildManual([]votingdag.ManualLevel{
		{{V: 20}, {V: 21}, {V: 22}},
		{{V: 10, Children: [3]int{0, 1, 0}}, {V: 11, Children: [3]int{1, 2, 2}}},
		{{V: 1, Children: [3]int{0, 1, 1}}},
	})
	fmt.Println("collision levels before:", d.CollisionLevelCount())
	s := d.Sprinkle(d.T())
	fmt.Println("collision levels after: ", s.CollisionLevelCount())
	fmt.Println("artificial blue leaves: ", s.ArtificialCount())
	// Output:
	// collision levels before: 2
	// collision levels after:  0
	// artificial blue leaves:  4
}

// The colouring process: leaves get i.i.d. colours, every higher node takes
// the majority of its three child slots (a duplicated child decides alone).
func ExampleDAG_Colour() {
	d := votingdag.BuildManual([]votingdag.ManualLevel{
		{{V: 10}, {V: 11}, {V: 12}},
		{{V: 1, Children: [3]int{0, 1, 2}}},
	})
	cols := d.Colour(func(v int) opinion.Colour {
		if v == 10 || v == 12 {
			return opinion.Blue
		}
		return opinion.Red
	})
	fmt.Println("root:", cols.RootColour())
	// Output:
	// root: B
}

// Lemma 5's threshold: a ternary tree of h+1 levels can only have a Blue
// root if at least 2^h leaves are Blue.
func ExampleMinBlueLeavesForBlueRoot() {
	for h := 1; h <= 4; h++ {
		fmt.Printf("h=%d: need >= %d blue leaves\n", h, votingdag.MinBlueLeavesForBlueRoot(h))
	}
	// Output:
	// h=1: need >= 2 blue leaves
	// h=2: need >= 4 blue leaves
	// h=3: need >= 8 blue leaves
	// h=4: need >= 16 blue leaves
}

// ExactRootBlueProb enumerates leaf colourings: a collision-free height-1
// DAG reproduces equation (1) exactly.
func ExampleDAG_ExactRootBlueProb() {
	d := votingdag.BuildManual([]votingdag.ManualLevel{
		{{V: 10}, {V: 11}, {V: 12}},
		{{V: 1, Children: [3]int{0, 1, 2}}},
	})
	p := 0.4
	fmt.Printf("exact: %.4f  eq(1): %.4f\n", d.ExactRootBlueProb(p), 3*p*p-2*p*p*p)
	// Output:
	// exact: 0.3520  eq(1): 0.3520
}
