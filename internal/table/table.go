// Package table renders experiment results as aligned ASCII tables and CSV.
// The sweep tool prints one table per reproduced claim, in the same shape a
// paper table would take.
package table

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned text table with an optional title.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// New returns a table with the given column headers.
func New(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// AddRow appends a row. Cells are formatted with %v; float64 cells use
// %.4g. Rows shorter than the header are padded, longer rows panic.
func (t *Table) AddRow(cells ...any) {
	if len(cells) > len(t.headers) {
		panic(fmt.Sprintf("table: row has %d cells, header has %d", len(cells), len(t.headers)))
	}
	row := make([]string, len(t.headers))
	for i, c := range cells {
		row[i] = formatCell(c)
	}
	t.rows = append(t.rows, row)
}

func formatCell(c any) string {
	switch v := c.(type) {
	case float64:
		return fmt.Sprintf("%.4g", v)
	case float32:
		return fmt.Sprintf("%.4g", v)
	case string:
		return v
	default:
		return fmt.Sprintf("%v", c)
	}
}

// NumRows returns the number of data rows added so far.
func (t *Table) NumRows() int { return len(t.rows) }

// Render writes the aligned table to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	rule := make([]string, len(t.headers))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	writeRow(rule)
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Render(&b) // Render to a Builder cannot fail
	return b.String()
}

// RenderCSV writes the table in CSV form (RFC-4180 quoting for cells that
// need it).
func (t *Table) RenderCSV(w io.Writer) error {
	writeRow := func(cells []string) error {
		for i, cell := range cells {
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if _, err := io.WriteString(w, csvEscape(cell)); err != nil {
				return err
			}
		}
		_, err := io.WriteString(w, "\n")
		return err
	}
	if err := writeRow(t.headers); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

func csvEscape(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}
