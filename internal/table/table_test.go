package table

import (
	"strings"
	"testing"
)

func TestRenderAlignment(t *testing.T) {
	tb := New("demo", "name", "value")
	tb.AddRow("a", 1)
	tb.AddRow("longer", 2.5)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if lines[0] != "demo" {
		t.Errorf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "name") {
		t.Errorf("header = %q", lines[1])
	}
	if !strings.Contains(lines[4], "2.5") {
		t.Errorf("row = %q", lines[4])
	}
	// All data rows align: "a" padded to width of "longer".
	if !strings.HasPrefix(lines[3], "a     ") {
		t.Errorf("row not padded: %q", lines[3])
	}
}

func TestNoTitle(t *testing.T) {
	tb := New("", "x")
	tb.AddRow(1)
	out := tb.String()
	if strings.HasPrefix(out, "\n") {
		t.Error("empty title should not emit a blank line")
	}
	if !strings.HasPrefix(out, "x") {
		t.Errorf("output = %q", out)
	}
}

func TestFloatFormatting(t *testing.T) {
	tb := New("", "v")
	tb.AddRow(0.123456789)
	if !strings.Contains(tb.String(), "0.1235") {
		t.Errorf("float not formatted with %%.4g: %q", tb.String())
	}
	tb2 := New("", "v")
	tb2.AddRow(float32(2.0))
	if !strings.Contains(tb2.String(), "2") {
		t.Errorf("float32 cell = %q", tb2.String())
	}
}

func TestShortRowPadded(t *testing.T) {
	tb := New("", "a", "b")
	tb.AddRow("only")
	if tb.NumRows() != 1 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
	// Should render without panic, second cell empty.
	if out := tb.String(); !strings.Contains(out, "only") {
		t.Errorf("output = %q", out)
	}
}

func TestLongRowPanics(t *testing.T) {
	tb := New("", "a")
	defer func() {
		if recover() == nil {
			t.Fatal("oversized row did not panic")
		}
	}()
	tb.AddRow(1, 2)
}

func TestRenderCSV(t *testing.T) {
	tb := New("ignored", "name", "note")
	tb.AddRow("x", "plain")
	tb.AddRow("y", `has "quotes", and comma`)
	var b strings.Builder
	if err := tb.RenderCSV(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := "name,note\nx,plain\ny,\"has \"\"quotes\"\", and comma\"\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

func TestCSVEscape(t *testing.T) {
	cases := map[string]string{
		"plain":   "plain",
		"a,b":     `"a,b"`,
		`q"q`:     `"q""q"`,
		"line\nx": "\"line\nx\"",
	}
	for in, want := range cases {
		if got := csvEscape(in); got != want {
			t.Errorf("csvEscape(%q) = %q, want %q", in, got, want)
		}
	}
}
