package store

import (
	"repro/internal/metrics"
)

// Metrics is the store's instrument bundle, covering both the log itself
// (read/write latency, bytes, compaction) and the fleet claim/lease
// protocol layered on it. Pass one via Options.Metrics to export these
// on a shared registry; a store opened without one counts into a private
// registry so the hot paths stay branch-free and Stats() always has a
// source to read from.
type Metrics struct {
	// ReadSeconds covers GetResult (index lookup plus the record read,
	// and in shared mode the tail refresh a miss triggers); WriteSeconds
	// covers one record append to the active segment.
	ReadSeconds  *metrics.Histogram
	WriteSeconds *metrics.Histogram
	// Hits/Misses count GetResult lookups; Appends counts records
	// written; BytesAppended counts their encoded size.
	Hits          *metrics.Counter
	Misses        *metrics.Counter
	Appends       *metrics.Counter
	BytesAppended *metrics.Counter
	// Compactions counts successful Compact runs.
	Compactions *metrics.Counter

	// Fleet claim/lease protocol.
	ClaimSeconds   *metrics.Histogram
	LeaseRenewals  *metrics.Counter
	LeaseTakeovers *metrics.Counter
	LeaseReleases  *metrics.Counter
}

// NewMetrics registers the store and fleet instruments on reg.
func NewMetrics(reg *metrics.Registry) *Metrics {
	return &Metrics{
		ReadSeconds:   reg.Histogram("bo3_store_read_seconds", "Result-store read latency (GetResult: index lookup, shared-mode tail refresh on miss, record read).", metrics.FastBuckets),
		WriteSeconds:  reg.Histogram("bo3_store_write_seconds", "Result-store append latency for one record.", metrics.FastBuckets),
		Hits:          reg.Counter("bo3_store_hits_total", "GetResult lookups answered from the store."),
		Misses:        reg.Counter("bo3_store_misses_total", "GetResult lookups that found no record."),
		Appends:       reg.Counter("bo3_store_appends_total", "Records appended to the log by this process."),
		BytesAppended: reg.Counter("bo3_store_bytes_appended_total", "Encoded bytes appended to the log by this process."),
		Compactions:   reg.Counter("bo3_store_compactions_total", "Successful Compact runs."),

		ClaimSeconds:   reg.Histogram("bo3_fleet_claim_seconds", "Claim call latency (shared-mode flock, tail refresh, grant append).", metrics.FastBuckets),
		LeaseRenewals:  reg.Counter("bo3_fleet_lease_renewals_total", "Successful cell-lease renewals."),
		LeaseTakeovers: reg.Counter("bo3_fleet_lease_takeovers_total", "Expired leases taken over from another worker."),
		LeaseReleases:  reg.Counter("bo3_fleet_lease_releases_total", "Leases released without a result (failed or abandoned execution)."),
	}
}
