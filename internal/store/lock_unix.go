//go:build unix

package store

import (
	"fmt"
	"os"
	"syscall"
)

// acquireLock takes a non-blocking exclusive flock on the store's LOCK
// file, excluding concurrent writers (a second server on the directory,
// or a compact against a live one) without blocking read-only opens,
// which take no lock at all. Advisory flocks die with the process, so a
// SIGKILLed server never leaves a stale lock behind — crash recovery
// stays lock-free.
func acquireLock(path string) (*os.File, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: %s is in use by another process (flock: %w)", path, err)
	}
	return f, nil
}
