//go:build unix

package store

import (
	"fmt"
	"os"
	"syscall"
)

// acquireLock takes a non-blocking exclusive flock on the store's LOCK
// file, excluding concurrent writers (a second server on the directory,
// or a compact against a live one) without blocking read-only opens,
// which take no lock at all. Advisory flocks die with the process, so a
// SIGKILLed server never leaves a stale lock behind — crash recovery
// stays lock-free.
func acquireLock(path string) (*os.File, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: %s is in use by another process (flock: %w)", path, err)
	}
	return f, nil
}

// openLockFile opens (creating if needed) the LOCK file without taking
// the lock — shared-mode stores lock per critical section instead of for
// the process lifetime.
func openLockFile(path string) (*os.File, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return f, nil
}

// flockEx blocks until this handle holds the exclusive directory lock.
// flock is per open file description, so two shared handles in one
// process exclude each other exactly like two processes do.
func flockEx(f *os.File) error {
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX); err != nil {
		return fmt.Errorf("store: flock: %w", err)
	}
	return nil
}

// flockUn drops the exclusive directory lock.
func flockUn(f *os.File) error {
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_UN); err != nil {
		return fmt.Errorf("store: funlock: %w", err)
	}
	return nil
}
