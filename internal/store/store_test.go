package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func mustOpen(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func specJSON(i int) []byte { return []byte(fmt.Sprintf(`{"graph":{"family":"cycle","n":%d}}`, 100+i)) }
func bodyJSON(i int) []byte { return []byte(fmt.Sprintf(`{"trials":%d,"red_wins":%d}`, i+1, i)) }
func key(i int) string      { return fmt.Sprintf("key-%04d", i) }
func putN(t *testing.T, s *Store, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if ok, err := s.PutResult(key(i), specJSON(i), bodyJSON(i)); err != nil || !ok {
			t.Fatalf("put %d: ok=%v err=%v", i, ok, err)
		}
	}
}

func TestPutGetRoundTripAndReopen(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	putN(t, s, 5)
	if err := s.PutSweep("sweep-000000", []byte(`{"state":"running"}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.PutSweep("sweep-000000", []byte(`{"state":"done"}`)); err != nil {
		t.Fatal(err)
	}

	check := func(s *Store, phase string) {
		t.Helper()
		for i := 0; i < 5; i++ {
			rec, ok, err := s.GetResult(key(i))
			if err != nil || !ok {
				t.Fatalf("%s: get %d: ok=%v err=%v", phase, i, ok, err)
			}
			if string(rec.Body) != string(bodyJSON(i)) || string(rec.Spec) != string(specJSON(i)) {
				t.Fatalf("%s: record %d = %+v", phase, i, rec)
			}
		}
		if _, ok, _ := s.GetResult("absent"); ok {
			t.Fatalf("%s: found a record that was never stored", phase)
		}
		sweeps, err := s.Sweeps()
		if err != nil || len(sweeps) != 1 {
			t.Fatalf("%s: sweeps = %v, err %v", phase, sweeps, err)
		}
		var body struct{ State string }
		if json.Unmarshal(sweeps[0].Body, &body); body.State != "done" {
			t.Errorf("%s: latest journal record = %s, want done", phase, sweeps[0].Body)
		}
		infos := s.Results()
		if len(infos) != 5 || infos[0].Key != key(0) || infos[4].Key != key(4) {
			t.Errorf("%s: listing = %v", phase, infos)
		}
	}
	check(s, "fresh")
	st := s.Stats()
	if st.Results != 5 || st.Sweeps != 1 || st.Appends != 7 || st.Corrupt != 0 {
		t.Errorf("stats = %+v", st)
	}
	s.Close()

	r := mustOpen(t, dir, Options{})
	check(r, "reopened")
	if st := r.Stats(); st.Results != 5 || st.Sweeps != 1 || st.Corrupt != 0 {
		t.Errorf("reopened stats = %+v", st)
	}
}

func TestDuplicatePutIsNoOp(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	putN(t, s, 1)
	before := s.Stats().Bytes
	ok, err := s.PutResult(key(0), specJSON(0), bodyJSON(0))
	if err != nil || ok {
		t.Fatalf("duplicate put: ok=%v err=%v", ok, err)
	}
	if s.Stats().Bytes != before {
		t.Error("duplicate put grew the log")
	}
}

// TestRecoverTruncatedTail kills the store mid-append: the active segment
// ends in a partial record. Reopen must recover every complete record,
// truncate the torn tail, and keep serving appends.
func TestRecoverTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	putN(t, s, 8)
	s.Close()

	seg := filepath.Join(dir, "seg-000001.jsonl")
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Cut into the middle of the last record.
	if err := os.WriteFile(seg, raw[:len(raw)-17], 0o644); err != nil {
		t.Fatal(err)
	}

	r := mustOpen(t, dir, Options{})
	st := r.Stats()
	if st.Results != 7 || st.Corrupt != 1 {
		t.Fatalf("recovered stats = %+v, want 7 results, 1 corrupt", st)
	}
	for i := 0; i < 7; i++ {
		if _, ok, err := r.GetResult(key(i)); !ok || err != nil {
			t.Fatalf("record %d lost in recovery: ok=%v err=%v", i, ok, err)
		}
	}
	// The truncated record is simply a miss; re-recording it works.
	if ok, err := r.PutResult(key(7), specJSON(7), bodyJSON(7)); err != nil || !ok {
		t.Fatalf("re-put after recovery: ok=%v err=%v", ok, err)
	}
	r.Close()

	// A third generation sees a clean log: 8 records, no corruption.
	g3 := mustOpen(t, dir, Options{})
	if st := g3.Stats(); st.Results != 8 || st.Corrupt != 0 {
		t.Fatalf("third-generation stats = %+v, want 8 clean results", st)
	}
}

// TestRecoverTornMiddleRecord corrupts a record in the middle of a
// segment (a torn page, not a truncated tail): every other record must
// survive, including those after the damage.
func TestRecoverTornMiddleRecord(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	putN(t, s, 6)
	s.Close()

	seg := filepath.Join(dir, "seg-000001.jsonl")
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	lines := 0
	for i, b := range raw {
		if b != '\n' {
			continue
		}
		lines++
		if lines == 3 { // zero out the heart of record 2, keeping line structure
			for j := i - 40; j < i-10; j++ {
				raw[j] = 'x'
			}
			break
		}
	}
	if err := os.WriteFile(seg, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	r := mustOpen(t, dir, Options{})
	st := r.Stats()
	if st.Results != 5 || st.Corrupt != 1 {
		t.Fatalf("recovered stats = %+v, want 5 results, 1 corrupt", st)
	}
	for _, i := range []int{0, 1, 3, 4, 5} {
		if _, ok, err := r.GetResult(key(i)); !ok || err != nil {
			t.Fatalf("record %d lost: ok=%v err=%v", i, ok, err)
		}
	}
	if _, ok, _ := r.GetResult(key(2)); ok {
		t.Error("corrupted record served as valid")
	}
}

func TestSegmentRollAndMaxBytesPruning(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{MaxSegmentBytes: 256, MaxBytes: 1024})
	putN(t, s, 40)
	st := s.Stats()
	if st.Segments < 2 {
		t.Fatalf("no segment roll at 256-byte segments: %+v", st)
	}
	if st.Bytes > 1024+256 { // one in-flight segment of slack at most
		t.Errorf("store exceeds max-bytes: %+v", st)
	}
	if st.Evicted == 0 || st.Results == 40 {
		t.Errorf("pruning evicted nothing: %+v", st)
	}
	// Newest records survive; listing and index agree.
	if _, ok, err := s.GetResult(key(39)); !ok || err != nil {
		t.Fatalf("newest record pruned: ok=%v err=%v", ok, err)
	}
	if got := len(s.Results()); got != st.Results {
		t.Errorf("listing has %d entries, index says %d", got, st.Results)
	}
	s.Close()
	r := mustOpen(t, dir, Options{MaxSegmentBytes: 256, MaxBytes: 1024})
	if got := r.Stats().Results; got != st.Results {
		t.Errorf("reopen after pruning: %d results, want %d", got, st.Results)
	}
}

func TestCompactDropsSupersededJournalRecords(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	putN(t, s, 3)
	for i := 0; i < 50; i++ {
		if err := s.PutSweep("sweep-000000", []byte(fmt.Sprintf(`{"rev":%d}`, i))); err != nil {
			t.Fatal(err)
		}
	}
	before := s.Stats().Bytes
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Bytes >= before {
		t.Errorf("compact did not shrink the log: %d -> %d", before, st.Bytes)
	}
	if st.Results != 3 || st.Sweeps != 1 {
		t.Errorf("compact lost records: %+v", st)
	}
	// Everything still readable, sequence order intact, and a reopen
	// replays the compacted log identically.
	for i := 0; i < 3; i++ {
		rec, ok, err := s.GetResult(key(i))
		if !ok || err != nil || string(rec.Body) != string(bodyJSON(i)) {
			t.Fatalf("post-compact get %d: ok=%v err=%v rec=%+v", i, ok, err, rec)
		}
	}
	sweeps, err := s.Sweeps()
	if err != nil || len(sweeps) != 1 || string(sweeps[0].Body) != `{"rev":49}` {
		t.Fatalf("post-compact sweeps = %v, err %v", sweeps, err)
	}
	s.Close()
	r := mustOpen(t, dir, Options{})
	if st := r.Stats(); st.Results != 3 || st.Sweeps != 1 || st.Corrupt != 0 {
		t.Errorf("reopen after compact: %+v", st)
	}
	if _, ok, err := r.GetResult(key(1)); !ok || err != nil {
		t.Errorf("record lost across compact+reopen: ok=%v err=%v", ok, err)
	}
}

// TestPruningRescuesSweepJournal: MaxBytes pruning may drop results (a
// future cache miss) but never a live sweep-journal record — it is the
// crash-resume state and must outlive any amount of result churn.
func TestPruningRescuesSweepJournal(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{MaxSegmentBytes: 256, MaxBytes: 1024})
	// The journal record lands in the very first segment...
	if err := s.PutSweep("sweep-000007", []byte(`{"state":"running"}`)); err != nil {
		t.Fatal(err)
	}
	// ...then result traffic rolls and prunes far past it.
	putN(t, s, 60)
	st := s.Stats()
	if st.Evicted == 0 {
		t.Fatalf("no pruning happened: %+v", st)
	}
	checkJournal := func(s *Store, phase string) {
		t.Helper()
		sweeps, err := s.Sweeps()
		if err != nil || len(sweeps) != 1 || sweeps[0].ID != "sweep-000007" {
			t.Fatalf("%s: journal record lost to pruning: %v, err %v", phase, sweeps, err)
		}
		if string(sweeps[0].Body) != `{"state":"running"}` {
			t.Fatalf("%s: journal body = %s", phase, sweeps[0].Body)
		}
	}
	checkJournal(s, "pruned")
	s.Close()
	r := mustOpen(t, dir, Options{MaxSegmentBytes: 256, MaxBytes: 1024})
	checkJournal(r, "reopened")
}

// TestReadOnlyOpen: inspection opens see every record, reject mutation,
// and never repair a torn tail — a subsequent writer open still finds
// and fixes it.
func TestReadOnlyOpen(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	putN(t, s, 4)
	s.Close()

	// Tear the tail, as a crash (or a concurrent writer mid-append) would.
	seg := filepath.Join(dir, "seg-000001.jsonl")
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg, raw[:len(raw)-9], 0o644); err != nil {
		t.Fatal(err)
	}

	ro := mustOpen(t, dir, Options{ReadOnly: true})
	if st := ro.Stats(); st.Results != 3 || st.Corrupt != 1 {
		t.Fatalf("read-only stats = %+v, want 3 results", st)
	}
	if _, ok, err := ro.GetResult(key(1)); !ok || err != nil {
		t.Fatalf("read-only get: ok=%v err=%v", ok, err)
	}
	if _, err := ro.PutResult("x", specJSON(0), bodyJSON(0)); err != ErrReadOnly {
		t.Errorf("PutResult on read-only store: %v, want ErrReadOnly", err)
	}
	if err := ro.PutSweep("sweep-000000", []byte(`{}`)); err != ErrReadOnly {
		t.Errorf("PutSweep on read-only store: %v, want ErrReadOnly", err)
	}
	if err := ro.Compact(); err != ErrReadOnly {
		t.Errorf("Compact on read-only store: %v, want ErrReadOnly", err)
	}
	// The torn tail was left on disk: the file is untouched.
	if now, _ := os.ReadFile(seg); len(now) != len(raw)-9 {
		t.Error("read-only open mutated the segment file")
	}
	ro.Close()

	// A writer open still performs the recovery truncation.
	w := mustOpen(t, dir, Options{})
	if now, _ := os.ReadFile(seg); len(now) >= len(raw)-9 {
		t.Error("writer open did not truncate the torn tail")
	}
	if st := w.Stats(); st.Results != 3 {
		t.Errorf("writer stats after recovery = %+v", st)
	}

	// Read-only coexists with a live writer: no lock conflict, and a
	// record appended by the writer is visible to a *fresh* read-only
	// open (the index is built at open time).
	if ok, err := w.PutResult(key(9), specJSON(9), bodyJSON(9)); err != nil || !ok {
		t.Fatalf("put alongside reader: ok=%v err=%v", ok, err)
	}
	ro2 := mustOpen(t, dir, Options{ReadOnly: true})
	if _, ok, err := ro2.GetResult(key(9)); !ok || err != nil {
		t.Errorf("fresh read-only open misses the writer's record: ok=%v err=%v", ok, err)
	}
}

// TestWriterLockExcludesSecondWriter: two writers on one directory would
// corrupt each other; the second open must fail while the first is live
// and succeed after it closes.
func TestWriterLockExcludesSecondWriter(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("second writer opened a locked store")
	}
	a.Close()
	b, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open after close: %v", err)
	}
	b.Close()
}

// TestConcurrentReadWrite exercises the store under the race detector:
// writers, readers, listers, and a compactor all interleaving.
func TestConcurrentReadWrite(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{MaxSegmentBytes: 4096})
	var wg sync.WaitGroup
	const writers, records = 4, 25
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < records; i++ {
				k := fmt.Sprintf("w%d-%d", w, i)
				if _, err := s.PutResult(k, specJSON(i), bodyJSON(i)); err != nil {
					t.Error(err)
					return
				}
				if _, _, err := s.GetResult(k); err != nil {
					t.Error(err)
					return
				}
				if err := s.PutSweep(fmt.Sprintf("sweep-%06d", w), bodyJSON(i)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			s.Results()
			s.Stats()
			if _, err := s.Sweeps(); err != nil {
				t.Error(err)
				return
			}
			if i%10 == 9 {
				if err := s.Compact(); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	wg.Wait()
	if st := s.Stats(); st.Results != writers*records || st.Sweeps != writers {
		t.Errorf("final stats = %+v, want %d results, %d sweeps", st, writers*records, writers)
	}
}
