package store

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

const ttl = time.Minute // comfortably unexpirable within a test run

func TestClaimLifecycle(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})

	fence, err := s.Claim("cell-a", "w1", ttl)
	if err != nil {
		t.Fatalf("claim: %v", err)
	}
	if st := s.Stats(); st.Claims != 1 {
		t.Fatalf("stats after claim = %+v", st)
	}

	// Another worker is excluded while the lease is live.
	if _, err := s.Claim("cell-a", "w2", ttl); !errors.Is(err, ErrClaimHeld) {
		t.Fatalf("second claim: %v, want ErrClaimHeld", err)
	}
	// The holder renews under its fence; a stale fence is rejected.
	if err := s.Renew("cell-a", "w1", fence, ttl); err != nil {
		t.Fatalf("renew: %v", err)
	}
	if err := s.Renew("cell-a", "w1", fence+1, ttl); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("renew with wrong fence: %v, want ErrLeaseLost", err)
	}
	// Re-claim by the holder extends the lease under the original fence.
	if f2, err := s.Claim("cell-a", "w1", ttl); err != nil || f2 != fence {
		t.Fatalf("re-claim by holder: fence=%d err=%v, want %d", f2, err, fence)
	}

	// A recorded result supersedes the claim: further claims see
	// ErrResultExists and the completion-path release is a no-op.
	if ok, err := s.PutResult("cell-a", specJSON(0), bodyJSON(0)); err != nil || !ok {
		t.Fatalf("put: ok=%v err=%v", ok, err)
	}
	if st := s.Stats(); st.Claims != 0 {
		t.Fatalf("claim outlived its result: %+v", st)
	}
	if _, err := s.Claim("cell-a", "w2", ttl); !errors.Is(err, ErrResultExists) {
		t.Fatalf("claim after result: %v, want ErrResultExists", err)
	}
	if err := s.Release("cell-a", "w1", fence); err != nil {
		t.Fatalf("release after result: %v, want no-op nil", err)
	}

	// Explicit release (the no-result failure path) frees the key.
	f3, err := s.Claim("cell-b", "w1", ttl)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Release("cell-b", "w1", f3); err != nil {
		t.Fatalf("release: %v", err)
	}
	if _, err := s.Claim("cell-b", "w2", ttl); err != nil {
		t.Fatalf("claim after release: %v", err)
	}
}

func TestClaimExpiryTakeover(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})

	// A negative TTL grants a lease that is expired from birth — the
	// deterministic stand-in for a worker that died mid-execution.
	f1, err := s.Claim("cell", "dead", -time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := s.Claim("cell", "live", ttl)
	if err != nil {
		t.Fatalf("takeover of expired lease: %v", err)
	}
	if f2 <= f1 {
		t.Fatalf("takeover fence %d not beyond the expired fence %d", f2, f1)
	}
	// The dead worker's fence is dead with it.
	if err := s.Renew("cell", "dead", f1, ttl); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("renew on a taken-over lease: %v, want ErrLeaseLost", err)
	}
	if err := s.Release("cell", "dead", f1); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("release on a taken-over lease: %v, want ErrLeaseLost", err)
	}
	// ...and the new holder's works.
	if err := s.Renew("cell", "live", f2, ttl); err != nil {
		t.Fatalf("new holder renew: %v", err)
	}
}

func TestClaimSurvivesReopenAndCompact(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	putN(t, s, 2)
	fence, err := s.Claim("cell", "w1", ttl)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Claims != 1 {
		t.Fatalf("compact dropped the held claim: %+v", st)
	}
	if err := s.Renew("cell", "w1", fence, ttl); err != nil {
		t.Fatalf("renew after compact: %v", err)
	}
	s.Close()

	r := mustOpen(t, dir, Options{})
	claims := r.Claims()
	if len(claims) != 1 || claims[0].Key != "cell" || claims[0].Worker != "w1" || claims[0].Fence != fence {
		t.Fatalf("claims after reopen = %+v", claims)
	}
	if _, err := r.Claim("cell", "w2", ttl); !errors.Is(err, ErrClaimHeld) {
		t.Fatalf("lease not enforced across reopen: %v", err)
	}
}

// TestSharedHandlesCoordinate runs the fleet protocol with two shared
// handles on one directory — flock is per open file description, so two
// handles in one process exclude each other exactly like two processes.
func TestSharedHandlesCoordinate(t *testing.T) {
	dir := t.TempDir()
	a := mustOpen(t, dir, Options{Shared: true})
	b := mustOpen(t, dir, Options{Shared: true})

	// Claims exclude across handles.
	fa, err := a.Claim("cell", "wa", ttl)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Claim("cell", "wb", ttl); !errors.Is(err, ErrClaimHeld) {
		t.Fatalf("b claimed a's cell: %v, want ErrClaimHeld", err)
	}

	// A result written by a is immediately visible to b (first write
	// wins fleet-wide) and moots the claim for everyone.
	if ok, err := a.PutResult("cell", specJSON(0), bodyJSON(0)); err != nil || !ok {
		t.Fatalf("a put: ok=%v err=%v", ok, err)
	}
	if rec, ok, err := b.GetResult("cell"); !ok || err != nil || string(rec.Body) != string(bodyJSON(0)) {
		t.Fatalf("b misses a's result: ok=%v err=%v", ok, err)
	}
	if ok, err := b.PutResult("cell", specJSON(0), bodyJSON(0)); err != nil || ok {
		t.Fatalf("duplicate put across handles not deduped: ok=%v err=%v", ok, err)
	}
	if _, err := b.Claim("cell", "wb", ttl); !errors.Is(err, ErrResultExists) {
		t.Fatalf("b claim after a's result: %v, want ErrResultExists", err)
	}
	_ = fa

	// Expired leases are taken over across handles, and the loser's
	// fence stops working.
	fdead, err := a.Claim("cell2", "wa", -time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Claim("cell2", "wb", ttl); err != nil {
		t.Fatalf("b takeover: %v", err)
	}
	if err := a.Renew("cell2", "wa", fdead, ttl); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("a renew after takeover: %v, want ErrLeaseLost", err)
	}

	// Sweep journal records and tombstones propagate.
	if err := a.PutSweep("s1", []byte(`{"state":"running"}`)); err != nil {
		t.Fatal(err)
	}
	if sweeps, err := b.Sweeps(); err != nil || len(sweeps) != 1 {
		t.Fatalf("b sweeps = %v, err %v", sweeps, err)
	}
	if err := b.DeleteSweep("s1"); err != nil {
		t.Fatal(err)
	}
	if sweeps, err := a.Sweeps(); err != nil || len(sweeps) != 0 {
		t.Fatalf("a sees tombstoned sweep: %v, err %v", sweeps, err)
	}

	// Claims listings refresh from the log too.
	if claims := a.Claims(); len(claims) != 1 || claims[0].Worker != "wb" {
		t.Fatalf("a claims listing = %+v, want wb's cell2 lease", claims)
	}
}

// TestSharedHandlesSeeRolledSegments drives one handle across several
// segment rolls and asserts the other discovers the new segments on
// refresh.
func TestSharedHandlesSeeRolledSegments(t *testing.T) {
	dir := t.TempDir()
	a := mustOpen(t, dir, Options{Shared: true, MaxSegmentBytes: 256})
	b := mustOpen(t, dir, Options{Shared: true, MaxSegmentBytes: 256})
	putN(t, a, 30)
	if st := a.Stats(); st.Segments < 2 {
		t.Fatalf("no segment roll: %+v", st)
	}
	if got := len(b.Results()); got != 30 {
		t.Fatalf("b sees %d results across rolled segments, want 30", got)
	}
	for i := 0; i < 30; i++ {
		if _, ok, err := b.GetResult(key(i)); !ok || err != nil {
			t.Fatalf("b get %d: ok=%v err=%v", i, ok, err)
		}
	}
	// And writes from b land in the discovered active segment.
	if ok, err := b.PutResult("extra", specJSON(99), bodyJSON(99)); err != nil || !ok {
		t.Fatalf("b put after discovery: ok=%v err=%v", ok, err)
	}
	if _, ok, err := a.GetResult("extra"); !ok || err != nil {
		t.Fatalf("a misses b's record: ok=%v err=%v", ok, err)
	}
}

func TestSharedModeRejectsExclusiveOnlyOps(t *testing.T) {
	dir := t.TempDir()
	if _, err := Open(dir, Options{Shared: true, MaxBytes: 1024}); !errors.Is(err, ErrShared) {
		t.Fatalf("shared open with MaxBytes: %v, want ErrShared", err)
	}
	s := mustOpen(t, dir, Options{Shared: true})
	if err := s.Compact(); !errors.Is(err, ErrShared) {
		t.Fatalf("shared compact: %v, want ErrShared", err)
	}
}

// TestTornClaimRecovery crash-injects appends at a range of byte budgets
// — nothing on disk, a handful of bytes, most of the record — and
// asserts each torn claim is invisible after recovery while every record
// before it survives.
func TestTornClaimRecovery(t *testing.T) {
	cases := []struct {
		name string
		cut  int64
		torn bool // bytes reach the disk (a torn tail exists)
	}{
		{"nothing-written", 0, false},
		{"one-byte", 1, true},
		{"mid-json", 24, true},
		{"most-of-record", 96, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			s := mustOpen(t, dir, Options{})
			putN(t, s, 2)
			if _, err := s.Claim("survivor", "w1", ttl); err != nil {
				t.Fatal(err)
			}
			s.failAfterBytes(tc.cut)
			if _, err := s.Claim("torn", "w1", ttl); !errors.Is(err, errCrashInjected) {
				t.Fatalf("injected claim: %v, want errCrashInjected", err)
			}
			s.Close()

			r := mustOpen(t, dir, Options{})
			st := r.Stats()
			wantCorrupt := int64(0)
			if tc.torn {
				wantCorrupt = 1
			}
			if st.Results != 2 || st.Claims != 1 || st.Corrupt != wantCorrupt {
				t.Fatalf("recovered stats = %+v, want 2 results, 1 claim, %d corrupt", st, wantCorrupt)
			}
			claims := r.Claims()
			if len(claims) != 1 || claims[0].Key != "survivor" {
				t.Fatalf("claims after recovery = %+v", claims)
			}
			// The torn key is unclaimed: any worker may take it.
			if _, err := r.Claim("torn", "w2", ttl); err != nil {
				t.Fatalf("claim of torn key after recovery: %v", err)
			}
		})
	}
}

// TestSharedPeerHealsTornTail: worker a dies mid-append; worker b's next
// mutation terminates the torn line under the flock and proceeds — no
// restart of a required.
func TestSharedPeerHealsTornTail(t *testing.T) {
	dir := t.TempDir()
	a := mustOpen(t, dir, Options{Shared: true})
	b := mustOpen(t, dir, Options{Shared: true})
	putN(t, a, 2)
	a.failAfterBytes(32)
	if _, err := a.Claim("cell", "wa", ttl); !errors.Is(err, errCrashInjected) {
		t.Fatalf("injected claim: %v, want errCrashInjected", err)
	}

	// b heals the tear and takes the cell.
	if _, err := b.Claim("cell", "wb", ttl); err != nil {
		t.Fatalf("b claim over torn tail: %v", err)
	}
	if ok, err := b.PutResult("cell", specJSON(5), bodyJSON(5)); err != nil || !ok {
		t.Fatalf("b put: ok=%v err=%v", ok, err)
	}

	// a recovers in place: disarm the hook, refresh past its own tear.
	a.failAfterBytes(-1)
	if rec, ok, err := a.GetResult("cell"); !ok || err != nil || string(rec.Body) != string(bodyJSON(5)) {
		t.Fatalf("a after heal: ok=%v err=%v", ok, err)
	}
	if ok, err := a.PutResult("other", specJSON(6), bodyJSON(6)); err != nil || !ok {
		t.Fatalf("a put after heal: ok=%v err=%v", ok, err)
	}

	// A fresh open replays the healed log cleanly.
	a.Close()
	b.Close()
	r := mustOpen(t, dir, Options{})
	if st := r.Stats(); st.Results != 4 || st.Corrupt != 1 {
		t.Fatalf("fresh open after heal: %+v, want 4 results, 1 corrupt line", st)
	}
}

// TestClaimStress hammers Claim/Renew/Release from many goroutines over
// two shared handles — run under -race, this is the memory-safety and
// protocol-sanity gate. The invariant checked: every key ends either
// resolved (result recorded) or unclaimed, and no two workers ever hold
// one key simultaneously (tracked via an atomic owner table).
func TestClaimStress(t *testing.T) {
	dir := t.TempDir()
	handles := []*Store{
		mustOpen(t, dir, Options{Shared: true}),
		mustOpen(t, dir, Options{Shared: true}),
	}
	const keys, workers, rounds = 8, 6, 15
	var mu sync.Mutex
	owner := make(map[string]string) // live leases: key -> worker

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			me := fmt.Sprintf("w%d", w)
			s := handles[w%len(handles)]
			for r := 0; r < rounds; r++ {
				k := fmt.Sprintf("cell-%d", (w+r)%keys)
				fence, err := s.Claim(k, me, ttl)
				switch {
				case errors.Is(err, ErrClaimHeld), errors.Is(err, ErrResultExists):
					continue
				case err != nil:
					t.Error(err)
					return
				}
				mu.Lock()
				if prev, live := owner[k]; live && prev != me {
					t.Errorf("key %s leased to %s and %s simultaneously", k, prev, me)
				}
				owner[k] = me
				mu.Unlock()
				if err := s.Renew(k, me, fence, ttl); err != nil {
					t.Errorf("renew %s: %v", k, err)
				}
				mu.Lock()
				delete(owner, k)
				mu.Unlock()
				if r%3 == 0 {
					if _, err := s.PutResult(k, specJSON(r), bodyJSON(r)); err != nil {
						t.Errorf("put %s: %v", k, err)
					}
				} else if err := s.Release(k, me, fence); err != nil {
					t.Errorf("release %s: %v", k, err)
				}
			}
		}(w)
	}
	wg.Wait()

	// Fleet-wide state is consistent: each handle agrees on results, and
	// no released lease lingers.
	n := len(handles[0].Results())
	if m := len(handles[1].Results()); m != n {
		t.Errorf("handles disagree: %d vs %d results", n, m)
	}
	for _, c := range handles[0].Claims() {
		if _, ok, _ := handles[0].GetResult(c.Key); ok {
			t.Errorf("claim on resolved key survived: %+v", c)
		}
	}
}

func BenchmarkClaim(b *testing.B) {
	s, err := Open(b.TempDir(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := fmt.Sprintf("cell-%d", i)
		fence, err := s.Claim(k, "bench", ttl)
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Release(k, "bench", fence); err != nil {
			b.Fatal(err)
		}
	}
}
