//go:build !unix

package store

import (
	"fmt"
	"os"
)

// acquireLock on platforms without flock: the LOCK file is still
// created as a marker, but writer exclusion is not enforced — run one
// writer per store directory.
func acquireLock(path string) (*os.File, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return f, nil
}

// openLockFile creates the LOCK marker; shared-mode coordination is not
// enforced without flock.
func openLockFile(path string) (*os.File, error) { return acquireLock(path) }

// flockEx without flock support is a no-op: shared mode degrades to
// best-effort on these platforms (run one writer per directory).
func flockEx(f *os.File) error { return nil }

// flockUn matches flockEx.
func flockUn(f *os.File) error { return nil }
