//go:build !unix

package store

import (
	"fmt"
	"os"
)

// acquireLock on platforms without flock: the LOCK file is still
// created as a marker, but writer exclusion is not enforced — run one
// writer per store directory.
func acquireLock(path string) (*os.File, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return f, nil
}
