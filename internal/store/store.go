// Package store is the persistent result store behind bo3serve: a
// crash-safe, append-only record log with an in-memory index, keyed by
// content. It turns the determinism contract of the spec layer — a run's
// outcome is a pure function of its canonical (spec, seed) key — into a
// correctness-preserving cache: a result recorded once never needs to be
// recomputed, and every record is auditable offline by re-executing its
// spec and diffing bytes (cmd/bo3store verify).
//
// # On-disk format
//
// A store directory holds numbered segments:
//
//	seg-000001.jsonl
//	seg-000002.jsonl        <- active (append) segment
//
// Each segment is a sequence of newline-terminated JSON records:
//
//	{"seq":12,"kind":"result","key":"4f2a…","spec":{…},"body":{…},"sum":2833443907}
//
// `sum` is a CRC-32C over (kind, key, spec, body), so a torn or corrupted
// line is detected even when it happens to remain valid JSON. Appends go
// to the active segment until it exceeds the segment size, then a new
// segment is started; with a total-bytes cap set, the oldest whole
// segments are dropped once the cap is exceeded.
//
// # Recovery
//
// Open replays every segment in order. A line that fails to parse or
// checksum is skipped (counted in Stats.Corrupt); a truncated tail —
// the signature of a crash mid-append — additionally truncates the active
// segment back to its last complete record so subsequent appends start on
// a clean boundary. Every complete record therefore survives any
// kill-at-any-instant crash, which is what lets a restarted server resume
// a half-finished sweep from the journal and serve every already-computed
// cell from the index.
//
// # Concurrency across processes
//
// Exclusive mode (the default) takes a non-blocking exclusive flock on
// the directory's LOCK file at Open, so two writers — a second server,
// or a compact against a live one — fail fast instead of corrupting each
// other. Read-only opens (Options.ReadOnly: used by bo3store's
// ls/get/verify) take no lock and never mutate the directory, which
// makes them safe against a live writer: records are immutable once
// written, and an in-flight append is just an unindexed tail.
//
// Shared mode (Options.Shared) is the fleet configuration: N writers —
// bo3serve worker processes pointed at one directory — coexist on one
// log. Every mutation briefly holds the exclusive flock for its critical
// section: refresh the index from the log's tail (picking up records
// other workers appended), heal a crashed writer's torn tail by
// terminating the partial line, then append. Because every complete
// record is immutable and appends are serialized by the lock, each
// worker's index is a consistent prefix of the shared history, and
// first-write-wins result semantics hold fleet-wide. Read misses refresh
// lock-free (a torn or in-flight tail simply stays unindexed until the
// next look). Size-bounded pruning and Compact are exclusive-mode
// operations and are rejected in shared mode.
//
// # Record kinds
//
// Three kinds share the log. KindResult records are immutable and
// content-addressed: the key is spec.RunSpec.ContentKey() and the first
// record for a key wins (duplicates are ignored — by determinism they
// carry identical bodies). KindSweep records journal sweep lifecycles
// under the sweep ID; the latest record per ID is the sweep's current
// state (a record with a null body is a tombstone that forgets the ID),
// and Compact rewrites the log keeping only live records. KindClaim
// records coordinate a worker fleet: a claim grants one worker a lease
// on a content key until a deadline, fenced by the record's sequence
// number, so two workers never execute the same cell concurrently — see
// claims.go for the protocol.
package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/metrics"
)

// Record kinds.
const (
	// KindResult is a content-addressed run result: Key is the canonical
	// content key of the spec, Spec the canonical spec JSON, Body the
	// deterministic result projection.
	KindResult = "result"
	// KindSweep is a sweep-journal entry: Key is the sweep ID, Body the
	// serve layer's journal payload. Later records supersede earlier ones;
	// a record with a null body tombstones the ID out of the journal.
	KindSweep = "sweep"
	// KindClaim is a lease record: Key is the claimed content key, Body a
	// claimBody (worker, state, deadline, fencing sequence). The latest
	// record per key is the claim's current state.
	KindClaim = "claim"
)

// Record is one log entry as it appears on disk.
type Record struct {
	// Seq is the store-wide append sequence, monotone across segments.
	Seq  uint64 `json:"seq"`
	Kind string `json:"kind"`
	Key  string `json:"key"`
	// Spec is the canonical spec JSON (results only).
	Spec json.RawMessage `json:"spec,omitempty"`
	// Body is the payload.
	Body json.RawMessage `json:"body"`
	// Sum is the CRC-32C over (kind, key, spec, body).
	Sum uint32 `json:"sum"`
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// checksum covers every content field of a record, so a line that was
// torn at a JSON-valid boundary or bit-flipped at rest still fails to
// verify.
func checksum(kind, key string, spec, body []byte) uint32 {
	h := crc32.New(crcTable)
	h.Write([]byte(kind))
	h.Write([]byte{0})
	h.Write([]byte(key))
	h.Write([]byte{0})
	h.Write(spec)
	h.Write([]byte{0})
	h.Write(body)
	return h.Sum32()
}

func (r Record) valid() bool {
	return (r.Kind == KindResult || r.Kind == KindSweep || r.Kind == KindClaim) &&
		r.Key != "" &&
		r.Sum == checksum(r.Kind, r.Key, r.Spec, r.Body)
}

// Options tune a store.
type Options struct {
	// MaxSegmentBytes rolls the active segment once it exceeds this size
	// (0 = 8 MiB). Rolling bounds both the recovery scan unit and the
	// granularity of MaxBytes pruning.
	MaxSegmentBytes int64
	// MaxBytes caps the store's total on-disk size; once exceeded, the
	// oldest whole segments (and the index entries into them) are dropped.
	// 0 = unbounded. The active segment is never dropped.
	MaxBytes int64
	// ReadOnly opens the store for inspection: segments are opened
	// read-only, torn tails are skipped but never truncated, no segment
	// or directory is created, and the mutating methods fail with
	// ErrReadOnly. Read-only opens take no lock and are safe against a
	// concurrently appending writer: records are immutable once written,
	// and a partially written tail is simply not indexed.
	ReadOnly bool
	// Shared opens the store for fleet use: multiple writer handles — in
	// one process or many — share the directory, serializing mutations
	// with a per-operation flock instead of a process-lifetime one, and
	// refreshing their index from the log tail before every decision.
	// MaxBytes pruning and Compact are unsupported in shared mode (they
	// delete segments other writers hold open) and fail with ErrShared.
	// Every writer on a directory must agree on the mode: a shared writer
	// blocks on an exclusive writer's lock until it closes.
	Shared bool
	// Metrics receives the store's latency histograms and counters
	// (store.NewMetrics on the server's shared registry). Nil counts into
	// a private registry: the instruments still back Stats(), they are
	// just not exported anywhere.
	Metrics *Metrics
	// Logger receives structured recovery and compaction logs. Nil
	// discards them.
	Logger *slog.Logger
}

// ErrReadOnly rejects mutations on a read-only store.
var ErrReadOnly = errors.New("store: opened read-only")

// ErrShared rejects segment-deleting operations on a shared store.
var ErrShared = errors.New("store: operation unsupported in shared mode")

const defaultSegmentBytes = 8 << 20

// Stats is a counter snapshot.
type Stats struct {
	// Results is the number of distinct result records indexed.
	Results int `json:"results"`
	// Sweeps is the number of distinct sweep IDs journaled.
	Sweeps int `json:"sweeps"`
	// Claims is the number of held claim leases indexed (expired ones
	// included until taken over or released).
	Claims int `json:"claims"`
	// Segments and Bytes describe the on-disk footprint.
	Segments int   `json:"segments"`
	Bytes    int64 `json:"bytes"`
	// Hits and Misses count GetResult lookups.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// Appends counts records written in this process.
	Appends int64 `json:"appends"`
	// Corrupt counts records dropped during recovery (torn tails,
	// checksum failures); Evicted counts records dropped by MaxBytes
	// segment pruning.
	Corrupt int64 `json:"corrupt"`
	Evicted int64 `json:"evicted"`
}

// segment is one on-disk log file.
type segment struct {
	id   uint64
	path string
	f    *os.File
	size int64
}

// loc is an index pointer to one record line.
type loc struct {
	seg *segment
	off int64
	n   int64
}

type resultEntry struct {
	loc
	seq  uint64
	spec json.RawMessage // held in memory for filtered listings
}

type sweepEntry struct {
	loc
	seq uint64
}

// claimEntry is the in-memory state of the latest held claim per key
// (released claims and claims superseded by a result are dropped from the
// index entirely).
type claimEntry struct {
	loc
	worker   string
	fence    uint64
	deadline int64 // UnixMilli
}

// Store is the handle. All methods are safe for concurrent use within
// one process; across processes, writers take an exclusive advisory lock
// on the directory (a second writer — another server, or a compact
// against a live one — fails to open), while read-only opens coexist
// with a writer freely.
type Store struct {
	dir  string
	opts Options
	// lock is the LOCK file handle: flocked for the store's lifetime in
	// exclusive mode, flocked per mutation in shared mode, nil when
	// read-only.
	lock *os.File

	mu         sync.RWMutex
	segs       []*segment
	nextSeg    uint64 // next segment id; never reused, even across Compact
	seq        uint64
	results    map[string]*resultEntry
	resultKeys []string // append order
	sweeps     map[string]*sweepEntry
	sweepKeys  []string // first-seen order
	claims     map[string]*claimEntry
	bytes      int64

	corrupt, evicted int64
	mx               *Metrics
	log              *slog.Logger

	// crashAfter (tests only, set via failAfterBytes) makes segment writes
	// stop after this many more bytes reach the file and return
	// errCrashInjected — the on-disk signature of a kill mid-append.
	crashArmed bool
	crashAfter int64
}

// errCrashInjected is returned by writes cut short by failAfterBytes.
var errCrashInjected = errors.New("store: injected crash after byte budget")

// failAfterBytes arms the crash-injection hook: subsequent appends write
// at most n more bytes to disk in total, then fail with errCrashInjected,
// leaving a torn tail exactly as a kill mid-append would. n < 0 disarms.
// Test-only; the hook is never armed in production paths.
func (s *Store) failAfterBytes(n int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.crashArmed = n >= 0
	s.crashAfter = n
}

// Open opens (or creates) the store at dir, replaying every segment into
// the in-memory index and recovering past torn writes.
func Open(dir string, opts Options) (*Store, error) {
	if opts.MaxSegmentBytes <= 0 {
		opts.MaxSegmentBytes = defaultSegmentBytes
	}
	if opts.Shared && opts.MaxBytes > 0 {
		// Pruning deletes segments other writers hold open.
		return nil, ErrShared
	}
	if opts.Metrics == nil {
		opts.Metrics = NewMetrics(metrics.NewRegistry())
	}
	if opts.Logger == nil {
		opts.Logger = slog.New(slog.DiscardHandler)
	}
	s := &Store{
		dir:     dir,
		opts:    opts,
		results: make(map[string]*resultEntry),
		sweeps:  make(map[string]*sweepEntry),
		claims:  make(map[string]*claimEntry),
		mx:      opts.Metrics,
		log:     opts.Logger,
	}
	if opts.ReadOnly {
		if _, err := os.Stat(dir); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	} else {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		// Shared handles only hold the flock per mutation (see
		// lockedMutation); exclusive ones hold it for their lifetime.
		var lock *os.File
		var err error
		if opts.Shared {
			lock, err = openLockFile(filepath.Join(dir, "LOCK"))
		} else {
			lock, err = acquireLock(filepath.Join(dir, "LOCK"))
		}
		if err != nil {
			return nil, err
		}
		s.lock = lock
	}
	paths, err := filepath.Glob(filepath.Join(dir, "seg-*.jsonl"))
	if err != nil {
		s.releaseLock()
		return nil, fmt.Errorf("store: %w", err)
	}
	sort.Strings(paths) // zero-padded ids sort numerically
	for i, path := range paths {
		seg, err := s.openSegment(path, i == len(paths)-1, true)
		if err != nil {
			s.closeSegmentsLocked()
			s.releaseLock()
			return nil, err
		}
		s.segs = append(s.segs, seg)
		s.bytes += seg.size
		if seg.id >= s.nextSeg {
			s.nextSeg = seg.id + 1
		}
	}
	if len(s.segs) == 0 && !opts.ReadOnly {
		if err := s.rollLocked(); err != nil {
			s.releaseLock()
			return nil, err
		}
	}
	if s.corrupt > 0 {
		s.log.Warn("store: recovery dropped corrupt records",
			"dir", dir, "corrupt", s.corrupt, "results", len(s.results), "sweeps", len(s.sweeps))
	}
	return s, nil
}

// releaseLock drops the writer lock, if held.
func (s *Store) releaseLock() {
	if s.lock != nil {
		s.lock.Close()
		s.lock = nil
	}
}

// openSegment reads one segment file, indexing every valid record.
// Corrupt lines are skipped; when active, the file is truncated back to
// the end of its last valid record so appends resume on a clean boundary.
// countTorn counts an unterminated tail in Stats.Corrupt (the initial
// open does; shared-mode refresh discovery does not — the tail may be a
// concurrent append in flight, not damage).
func (s *Store) openSegment(path string, active, countTorn bool) (*segment, error) {
	var id uint64
	if _, err := fmt.Sscanf(filepath.Base(path), "seg-%d.jsonl", &id); err != nil {
		return nil, fmt.Errorf("store: segment name %q: %w", filepath.Base(path), err)
	}
	mode := os.O_RDWR
	if s.opts.ReadOnly {
		mode = os.O_RDONLY
	}
	f, err := os.OpenFile(path, mode, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	seg := &segment{id: id, path: path, f: f}
	good, complete, err := s.scanSegment(seg, 0, countTorn)
	if err != nil {
		f.Close()
		return nil, err
	}
	if active && good < seg.size && !s.opts.ReadOnly && !s.opts.Shared {
		// Drop the torn tail so the next append starts a fresh line. A
		// read-only open leaves the file untouched — the torn tail is
		// simply not indexed, and may well be a concurrent writer's
		// append in flight. A shared open cannot truncate without the
		// directory lock; it records the last terminated-line boundary
		// and heals the tear under the flock at its first mutation
		// (appendLocked).
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: truncate %s: %w", path, err)
		}
		seg.size = good
	}
	if s.opts.Shared {
		// Shared handles track the consumed prefix, not the on-disk size:
		// refreshLocked rescans from here, so an unterminated tail is
		// re-examined once more bytes (or the healing newline) land.
		seg.size = complete
	}
	return seg, nil
}

// scanSegment parses and indexes the segment's records from offset from
// to EOF. It returns good, the end of the last valid record, and
// complete, the end of the last newline-terminated line; an unterminated
// tail — a crash or a concurrent append in flight — lies beyond complete
// and is never indexed. countTorn counts that tail in Stats.Corrupt (the
// initial open does; shared-mode refreshes do not, or every rescan of a
// still-in-flight tail would inflate the counter). seg.size is advanced
// to the scanned end of file.
func (s *Store) scanSegment(seg *segment, from int64, countTorn bool) (good, complete int64, err error) {
	r := bufio.NewReaderSize(io.NewSectionReader(seg.f, from, 1<<62), 1<<16)
	off := from
	good, complete = from, from
	for {
		line, err := r.ReadBytes('\n')
		if err != nil && err != io.EOF {
			return 0, 0, fmt.Errorf("store: read %s: %w", seg.path, err)
		}
		n := int64(len(line))
		torn := err == io.EOF && n > 0 // no trailing newline: mid-append crash
		if n > 0 {
			var rec Record
			switch {
			case torn:
				if countTorn {
					s.corrupt++
				}
			case json.Unmarshal(line, &rec) == nil && rec.valid():
				s.index(rec, loc{seg: seg, off: off, n: n})
				good = off + n
				complete = off + n
			default:
				s.corrupt++
				complete = off + n
			}
			off += n
		}
		if err == io.EOF {
			break
		}
	}
	seg.size = off
	return good, complete, nil
}

// index applies one replayed or appended record to the in-memory maps.
func (s *Store) index(rec Record, l loc) {
	if rec.Seq >= s.seq {
		s.seq = rec.Seq + 1
	}
	switch rec.Kind {
	case KindResult:
		// A recorded result supersedes any claim on the key: the work is
		// done, so the lease has nothing left to protect.
		delete(s.claims, rec.Key)
		if _, dup := s.results[rec.Key]; dup {
			return // first write wins; duplicates are byte-identical by determinism
		}
		s.results[rec.Key] = &resultEntry{loc: l, seq: rec.Seq, spec: append(json.RawMessage(nil), rec.Spec...)}
		s.resultKeys = append(s.resultKeys, rec.Key)
	case KindSweep:
		if isTombstone(rec.Body) {
			// A null body forgets the ID: the journal converges to the
			// high-water-mark record instead of one record per sweep ever
			// run (see the serve layer's ResumeSweeps).
			if _, ok := s.sweeps[rec.Key]; ok {
				delete(s.sweeps, rec.Key)
				s.dropSweepKey(rec.Key)
			}
			return
		}
		e, ok := s.sweeps[rec.Key]
		if !ok {
			e = &sweepEntry{}
			s.sweeps[rec.Key] = e
			s.sweepKeys = append(s.sweepKeys, rec.Key)
		}
		e.loc, e.seq = l, rec.Seq
	case KindClaim:
		var body claimBody
		if json.Unmarshal(rec.Body, &body) != nil {
			s.corrupt++
			return
		}
		if body.State == claimReleased {
			delete(s.claims, rec.Key)
			return
		}
		if _, done := s.results[rec.Key]; done {
			return // result already recorded; the claim is moot
		}
		s.claims[rec.Key] = &claimEntry{loc: l, worker: body.Worker, fence: body.Fence, deadline: body.Deadline}
	}
}

// isTombstone reports a sweep-journal body that deletes its ID.
func isTombstone(body json.RawMessage) bool {
	return len(body) == 0 || string(body) == "null"
}

// dropSweepKey removes one ID from the first-seen order slice.
func (s *Store) dropSweepKey(id string) {
	for i, k := range s.sweepKeys {
		if k == id {
			s.sweepKeys = append(s.sweepKeys[:i], s.sweepKeys[i+1:]...)
			return
		}
	}
}

// rollLocked starts a new active segment; callers hold s.mu.
func (s *Store) rollLocked() error {
	if s.nextSeg == 0 {
		s.nextSeg = 1
	}
	id := s.nextSeg
	s.nextSeg = id + 1
	path := filepath.Join(s.dir, fmt.Sprintf("seg-%06d.jsonl", id))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.segs = append(s.segs, &segment{id: id, path: path, f: f})
	return nil
}

// beginMutationLocked enters a mutation's critical section; callers hold
// s.mu. In shared mode it takes the directory flock (serializing against
// every other writer handle), refreshes the index from the log tail, and
// heals any crashed writer's torn tail so the coming append starts on a
// clean line. Exclusive and read-only handles need none of that. Callers
// must pair it with endMutationLocked.
func (s *Store) beginMutationLocked() error {
	if !s.opts.Shared {
		return nil
	}
	if err := flockEx(s.lock); err != nil {
		return err
	}
	if err := s.refreshLocked(true); err != nil {
		flockUn(s.lock)
		return err
	}
	return nil
}

// endMutationLocked leaves the critical section begun by
// beginMutationLocked; callers hold s.mu.
func (s *Store) endMutationLocked() {
	if s.opts.Shared {
		flockUn(s.lock)
	}
}

// refreshLocked brings a shared handle's index up to date with the log:
// it rescans the active segment's tail and opens segments other writers
// rolled. With heal set (mutation paths, which hold the directory flock),
// an unterminated tail — a writer killed mid-append; it cannot be an
// append in flight, because appends happen under the flock we hold — is
// terminated with a newline so it parses as one corrupt line and the next
// append starts cleanly. Without heal (read paths, lock-free), the tail
// is left alone and simply stays unindexed. Callers hold s.mu; no-op for
// non-shared handles.
func (s *Store) refreshLocked(heal bool) error {
	if !s.opts.Shared {
		return nil
	}
	// 1. Consume the known tail: anything appended to the last known
	// segment since the previous refresh.
	if err := s.rescanTailLocked(); err != nil {
		return err
	}
	// 2. Discover segments other writers rolled. A writer only rolls
	// after its last append to the old segment, so by the time a new
	// segment is visible the old one's content is final.
	paths, err := filepath.Glob(filepath.Join(s.dir, "seg-*.jsonl"))
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	sort.Strings(paths)
	known := uint64(0)
	if len(s.segs) > 0 {
		known = s.segs[len(s.segs)-1].id
	}
	grew := false
	for _, path := range paths {
		var id uint64
		if _, err := fmt.Sscanf(filepath.Base(path), "seg-%d.jsonl", &id); err != nil || id <= known {
			continue
		}
		seg, err := s.openSegment(path, false, false)
		if err != nil {
			return err
		}
		s.segs = append(s.segs, seg)
		s.bytes += seg.size
		if seg.id >= s.nextSeg {
			s.nextSeg = seg.id + 1
		}
		grew = true
	}
	if grew {
		// The freshly discovered last segment may itself have a tail.
		if err := s.rescanTailLocked(); err != nil {
			return err
		}
	}
	if !heal || len(s.segs) == 0 {
		return nil
	}
	// 3. Heal: if unconsumed bytes remain past the last terminated line,
	// they are a crashed writer's torn tail. Terminate it.
	active := s.segs[len(s.segs)-1]
	info, err := active.f.Stat()
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if disk := info.Size(); disk > active.size {
		if _, err := active.f.WriteAt([]byte{'\n'}, disk); err != nil {
			return fmt.Errorf("store: heal %s: %w", filepath.Base(active.path), err)
		}
		_, complete, err := s.scanSegment(active, active.size, false)
		if err != nil {
			return err
		}
		prev := active.size
		active.size = complete
		s.bytes += complete - prev
	}
	return nil
}

// rescanTailLocked indexes records appended to the last known segment
// since this handle last looked; callers hold s.mu, shared mode only.
func (s *Store) rescanTailLocked() error {
	if len(s.segs) == 0 {
		return nil
	}
	active := s.segs[len(s.segs)-1]
	info, err := active.f.Stat()
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if info.Size() <= active.size {
		return nil
	}
	prev := active.size
	_, complete, err := s.scanSegment(active, active.size, false)
	if err != nil {
		return err
	}
	active.size = complete
	s.bytes += complete - prev
	return nil
}

// appendLocked assigns the next sequence number, writes the record, and
// prunes; callers hold s.mu and, in shared mode, are inside a
// beginMutationLocked critical section. Returns the record's location.
func (s *Store) appendLocked(rec *Record) (loc, error) {
	rec.Seq = s.seq
	s.seq++
	l, err := s.writeLocked(rec)
	if err != nil {
		return loc{}, err
	}
	s.pruneLocked()
	return l, nil
}

// writeLocked writes one record to the active segment as-is (its Seq is
// the caller's — Compact replays history under original numbers), rolling
// beforehand when the segment is full; callers hold s.mu.
func (s *Store) writeLocked(rec *Record) (loc, error) {
	start := time.Now()
	rec.Sum = checksum(rec.Kind, rec.Key, rec.Spec, rec.Body)
	line, err := json.Marshal(rec)
	if err != nil {
		return loc{}, fmt.Errorf("store: %w", err)
	}
	line = append(line, '\n')
	active := s.segs[len(s.segs)-1]
	if active.size > 0 && active.size+int64(len(line)) > s.opts.MaxSegmentBytes {
		if err := s.rollLocked(); err != nil {
			return loc{}, err
		}
		active = s.segs[len(s.segs)-1]
	}
	if s.crashArmed {
		// Crash injection (tests): write only the remaining byte budget,
		// leaving the torn, unterminated tail a kill mid-append would.
		allowed := int64(len(line))
		if s.crashAfter < allowed {
			allowed = s.crashAfter
		}
		s.crashAfter -= allowed
		if allowed < int64(len(line)) {
			if allowed > 0 {
				if _, err := active.f.WriteAt(line[:allowed], active.size); err != nil {
					return loc{}, fmt.Errorf("store: append: %w", err)
				}
			}
			active.size += allowed
			s.bytes += allowed
			return loc{}, errCrashInjected
		}
	}
	if _, err := active.f.WriteAt(line, active.size); err != nil {
		return loc{}, fmt.Errorf("store: append: %w", err)
	}
	l := loc{seg: active, off: active.size, n: int64(len(line))}
	active.size += int64(len(line))
	s.bytes += int64(len(line))
	s.mx.Appends.Inc()
	s.mx.BytesAppended.Add(int64(len(line)))
	s.mx.WriteSeconds.ObserveSince(start)
	return l, nil
}

// pruneLocked drops the oldest whole segments while the store exceeds
// MaxBytes; callers hold s.mu. Result entries into dropped segments
// vanish with them — a pruned result is a future cache miss, nothing
// more. Sweep-journal records are different: they are the crash-resume
// state and the sweep-ID high-water mark, so the latest record per sweep
// is rewritten into the active segment (sequence preserved) before its
// segment is dropped, and survives any amount of pruning.
func (s *Store) pruneLocked() {
	if s.opts.MaxBytes <= 0 || s.opts.Shared {
		return
	}
	for s.bytes > s.opts.MaxBytes && len(s.segs) > 1 {
		victim := s.segs[0]
		s.rescueSweepsLocked(victim)
		s.segs = s.segs[1:]
		s.bytes -= victim.size
		s.dropEntriesIn(victim)
		victim.f.Close()
		os.Remove(victim.path)
	}
}

// rescueSweepsLocked rewrites the live sweep-journal records located in
// the segment about to be pruned into the active segment; callers hold
// s.mu. The victim is never the active segment (pruneLocked's len > 1
// guard), so the rewrite always moves records forward.
func (s *Store) rescueSweepsLocked(victim *segment) {
	for _, id := range s.sweepKeys {
		e := s.sweeps[id]
		if e.seg != victim {
			continue
		}
		rec, err := s.readLocked(e.loc)
		if err != nil {
			continue // unreadable: drop with the segment
		}
		if l, err := s.writeLocked(&rec); err == nil {
			e.loc = l
		}
	}
}

// dropEntriesIn removes every index entry located in seg.
func (s *Store) dropEntriesIn(seg *segment) {
	keep := s.resultKeys[:0]
	for _, k := range s.resultKeys {
		if s.results[k].seg == seg {
			delete(s.results, k)
			s.evicted++
			continue
		}
		keep = append(keep, k)
	}
	s.resultKeys = keep
	keepSweeps := s.sweepKeys[:0]
	for _, k := range s.sweepKeys {
		if s.sweeps[k].seg == seg {
			delete(s.sweeps, k)
			s.evicted++
			continue
		}
		keepSweeps = append(keepSweeps, k)
	}
	s.sweepKeys = keepSweeps
	for k, e := range s.claims {
		if e.seg == seg {
			delete(s.claims, k)
			s.evicted++
		}
	}
}

// readLocked fetches one record line; callers hold s.mu (read or write).
func (s *Store) readLocked(l loc) (Record, error) {
	buf := make([]byte, l.n)
	if _, err := l.seg.f.ReadAt(buf, l.off); err != nil {
		return Record{}, fmt.Errorf("store: read %s@%d: %w", filepath.Base(l.seg.path), l.off, err)
	}
	var rec Record
	if err := json.Unmarshal(bytes.TrimSuffix(buf, []byte{'\n'}), &rec); err != nil {
		return Record{}, fmt.Errorf("store: decode %s@%d: %w", filepath.Base(l.seg.path), l.off, err)
	}
	if !rec.valid() {
		return Record{}, fmt.Errorf("store: record %s@%d fails checksum", filepath.Base(l.seg.path), l.off)
	}
	return rec, nil
}

// PutResult records a result under its content key. The first record for
// a key wins: a duplicate put is a no-op (reported false) — by the
// determinism contract a re-executed spec produces the identical body.
func (s *Store) PutResult(key string, spec, body []byte) (written bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.opts.ReadOnly {
		return false, ErrReadOnly
	}
	if _, dup := s.results[key]; dup {
		return false, nil
	}
	if err := s.beginMutationLocked(); err != nil {
		return false, err
	}
	defer s.endMutationLocked()
	if _, dup := s.results[key]; dup {
		return false, nil // another worker recorded it first (shared-mode refresh)
	}
	rec := Record{Kind: KindResult, Key: key, Spec: spec, Body: body}
	l, err := s.appendLocked(&rec)
	if err != nil {
		return false, err
	}
	// Pruning inside appendLocked can only drop older segments, never the
	// active one just written.
	s.index(rec, l)
	return true, nil
}

// GetResult looks a result up by content key, reading the body from disk.
// In shared mode a miss refreshes the index from the log tail first, so a
// result another worker just recorded is a hit, not a miss.
func (s *Store) GetResult(key string) (Record, bool, error) {
	// The hit/miss counters are atomic instruments, so they need no lock
	// transitions; the latency histogram covers the whole lookup,
	// shared-mode refresh included.
	start := time.Now()
	defer s.mx.ReadSeconds.ObserveSince(start)
	s.mu.RLock()
	e, ok := s.results[key]
	if !ok && s.opts.Shared {
		s.mu.RUnlock()
		s.mu.Lock()
		if err := s.refreshLocked(false); err != nil {
			s.mu.Unlock()
			return Record{}, false, err
		}
		e, ok = s.results[key]
		if !ok {
			s.mu.Unlock()
			s.mx.Misses.Inc()
			return Record{}, false, nil
		}
		rec, err := s.readLocked(e.loc)
		s.mu.Unlock()
		if err != nil {
			return Record{}, false, err
		}
		s.mx.Hits.Inc()
		return rec, true, nil
	}
	if !ok {
		s.mu.RUnlock()
		s.mx.Misses.Inc()
		return Record{}, false, nil
	}
	rec, err := s.readLocked(e.loc)
	s.mu.RUnlock()
	if err != nil {
		return Record{}, false, err
	}
	s.mx.Hits.Inc()
	return rec, true, nil
}

// ResultInfo is one index entry of a listing: the content key, the append
// sequence, and the canonical spec (the body stays on disk; fetch it with
// GetResult).
type ResultInfo struct {
	Key  string
	Seq  uint64
	Spec json.RawMessage
}

// Results snapshots the result index in append order (oldest first). In
// shared mode the index is refreshed from the log tail first, so results
// other workers recorded are included.
func (s *Store) Results() []ResultInfo {
	if s.opts.Shared {
		s.mu.Lock()
		_ = s.refreshLocked(false) // best-effort; the listing is a snapshot anyway
		s.mu.Unlock()
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]ResultInfo, 0, len(s.resultKeys))
	for _, k := range s.resultKeys {
		e := s.results[k]
		out = append(out, ResultInfo{Key: k, Seq: e.seq, Spec: e.spec})
	}
	return out
}

// PutSweep appends one sweep-journal record under the sweep ID. Unlike
// results, every put is recorded: later records supersede earlier ones
// and Compact drops the superseded history.
func (s *Store) PutSweep(id string, body []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.opts.ReadOnly {
		return ErrReadOnly
	}
	if err := s.beginMutationLocked(); err != nil {
		return err
	}
	defer s.endMutationLocked()
	rec := Record{Kind: KindSweep, Key: id, Body: body}
	l, err := s.appendLocked(&rec)
	if err != nil {
		return err
	}
	s.index(rec, l)
	return nil
}

// DeleteSweep appends a null-body tombstone that forgets the sweep ID
// from the journal; Compact then drops the superseded history, and other
// shared-mode workers forget the ID at their next refresh. This is what
// keeps restart scans O(active sweeps): the serve layer collapses
// terminal sweep records into its high-water-mark record and tombstones
// the IDs. Deleting an unknown ID is a no-op.
func (s *Store) DeleteSweep(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.opts.ReadOnly {
		return ErrReadOnly
	}
	if err := s.beginMutationLocked(); err != nil {
		return err
	}
	defer s.endMutationLocked()
	if _, ok := s.sweeps[id]; !ok {
		return nil
	}
	// The explicit "null" (rather than a nil RawMessage) keeps the
	// checksum stable across the write/replay round trip.
	rec := Record{Kind: KindSweep, Key: id, Body: json.RawMessage("null")}
	l, err := s.appendLocked(&rec)
	if err != nil {
		return err
	}
	s.index(rec, l)
	return nil
}

// SweepInfo is the latest journal record for one sweep ID.
type SweepInfo struct {
	ID   string
	Seq  uint64
	Body json.RawMessage
}

// Sweeps returns the latest journal record per sweep ID, in first-seen
// order, reading bodies from disk. In shared mode the index is refreshed
// from the log tail first.
func (s *Store) Sweeps() ([]SweepInfo, error) {
	if s.opts.Shared {
		s.mu.Lock()
		err := s.refreshLocked(false)
		s.mu.Unlock()
		if err != nil {
			return nil, err
		}
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]SweepInfo, 0, len(s.sweepKeys))
	for _, id := range s.sweepKeys {
		e := s.sweeps[id]
		rec, err := s.readLocked(e.loc)
		if err != nil {
			return nil, err
		}
		out = append(out, SweepInfo{ID: id, Seq: e.seq, Body: rec.Body})
	}
	return out, nil
}

// Compact rewrites the log keeping only live records — every indexed
// result, the latest journal record per sweep, and every held claim —
// and deletes the old segments. Record sequence numbers are preserved,
// so compaction never reorders history. Unsupported (ErrShared) in
// shared mode: deleting segments would pull them out from under the
// other writers.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.opts.ReadOnly {
		return ErrReadOnly
	}
	if s.opts.Shared {
		return ErrShared
	}

	// Gather live records (reads go through the old segments).
	type liveRec struct {
		rec Record
		res *resultEntry
		sw  *sweepEntry
		cl  *claimEntry
	}
	live := make([]liveRec, 0, len(s.resultKeys)+len(s.sweepKeys)+len(s.claims))
	for _, k := range s.resultKeys {
		e := s.results[k]
		rec, err := s.readLocked(e.loc)
		if err != nil {
			return err
		}
		live = append(live, liveRec{rec: rec, res: e})
	}
	for _, id := range s.sweepKeys {
		e := s.sweeps[id]
		rec, err := s.readLocked(e.loc)
		if err != nil {
			return err
		}
		live = append(live, liveRec{rec: rec, sw: e})
	}
	// Held claims survive compaction (expired ones included — takeover
	// reads the fence from the log), iterated in sorted key order so the
	// rewrite is deterministic.
	claimKeys := make([]string, 0, len(s.claims))
	for k := range s.claims {
		claimKeys = append(claimKeys, k)
	}
	sort.Strings(claimKeys)
	for _, k := range claimKeys {
		e := s.claims[k]
		rec, err := s.readLocked(e.loc)
		if err != nil {
			return err
		}
		live = append(live, liveRec{rec: rec, cl: e})
	}
	sort.SliceStable(live, func(i, j int) bool { return live[i].rec.Seq < live[j].rec.Seq })

	old := s.segs
	oldBytes := s.bytes
	s.segs = nil
	s.bytes = 0
	if err := s.rollLocked(); err != nil {
		s.segs, s.bytes = old, oldBytes
		return err
	}
	for _, lr := range live {
		rec := lr.rec
		l, err := s.writeLocked(&rec)
		if err != nil {
			return err
		}
		switch {
		case lr.res != nil:
			lr.res.loc = l
		case lr.sw != nil:
			lr.sw.loc = l
		default:
			lr.cl.loc = l
		}
	}
	for _, seg := range old {
		seg.f.Close()
		os.Remove(seg.path)
	}
	s.mx.Compactions.Inc()
	s.log.Info("store: compacted log",
		"dir", s.dir, "records", len(live),
		"bytes_before", oldBytes, "bytes_after", s.bytes)
	return nil
}

// Stats returns a counter snapshot.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return Stats{
		Results:  len(s.results),
		Sweeps:   len(s.sweeps),
		Claims:   len(s.claims),
		Segments: len(s.segs),
		Bytes:    s.bytes,
		Hits:     s.mx.Hits.Value(),
		Misses:   s.mx.Misses.Value(),
		Appends:  s.mx.Appends.Value(),
		Corrupt:  s.corrupt,
		Evicted:  s.evicted,
	}
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// Close closes every segment file and releases the writer lock. The
// store is unusable afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.closeSegmentsLocked()
	s.releaseLock()
	return err
}

func (s *Store) closeSegmentsLocked() error {
	var first error
	for _, seg := range s.segs {
		if err := seg.f.Close(); err != nil && first == nil {
			first = err
		}
	}
	s.segs = nil
	return first
}
