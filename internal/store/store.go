// Package store is the persistent result store behind bo3serve: a
// crash-safe, append-only record log with an in-memory index, keyed by
// content. It turns the determinism contract of the spec layer — a run's
// outcome is a pure function of its canonical (spec, seed) key — into a
// correctness-preserving cache: a result recorded once never needs to be
// recomputed, and every record is auditable offline by re-executing its
// spec and diffing bytes (cmd/bo3store verify).
//
// # On-disk format
//
// A store directory holds numbered segments:
//
//	seg-000001.jsonl
//	seg-000002.jsonl        <- active (append) segment
//
// Each segment is a sequence of newline-terminated JSON records:
//
//	{"seq":12,"kind":"result","key":"4f2a…","spec":{…},"body":{…},"sum":2833443907}
//
// `sum` is a CRC-32C over (kind, key, spec, body), so a torn or corrupted
// line is detected even when it happens to remain valid JSON. Appends go
// to the active segment until it exceeds the segment size, then a new
// segment is started; with a total-bytes cap set, the oldest whole
// segments are dropped once the cap is exceeded.
//
// # Recovery
//
// Open replays every segment in order. A line that fails to parse or
// checksum is skipped (counted in Stats.Corrupt); a truncated tail —
// the signature of a crash mid-append — additionally truncates the active
// segment back to its last complete record so subsequent appends start on
// a clean boundary. Every complete record therefore survives any
// kill-at-any-instant crash, which is what lets a restarted server resume
// a half-finished sweep from the journal and serve every already-computed
// cell from the index.
//
// # Concurrency across processes
//
// Writers take a non-blocking exclusive flock on the directory's LOCK
// file, so two writers — a second server, or a compact against a live
// one — fail fast instead of corrupting each other. Read-only opens
// (Options.ReadOnly: used by bo3store's ls/get/verify) take no lock and
// never mutate the directory, which makes them safe against a live
// writer: records are immutable once written, and an in-flight append is
// just an unindexed tail.
//
// # Record kinds
//
// Two kinds share the log. KindResult records are immutable and
// content-addressed: the key is spec.RunSpec.ContentKey() and the first
// record for a key wins (duplicates are ignored — by determinism they
// carry identical bodies). KindSweep records journal sweep lifecycles
// under the sweep ID; the latest record per ID is the sweep's current
// state, and Compact rewrites the log keeping only live records.
package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Record kinds.
const (
	// KindResult is a content-addressed run result: Key is the canonical
	// content key of the spec, Spec the canonical spec JSON, Body the
	// deterministic result projection.
	KindResult = "result"
	// KindSweep is a sweep-journal entry: Key is the sweep ID, Body the
	// serve layer's journal payload. Later records supersede earlier ones.
	KindSweep = "sweep"
)

// Record is one log entry as it appears on disk.
type Record struct {
	// Seq is the store-wide append sequence, monotone across segments.
	Seq  uint64 `json:"seq"`
	Kind string `json:"kind"`
	Key  string `json:"key"`
	// Spec is the canonical spec JSON (results only).
	Spec json.RawMessage `json:"spec,omitempty"`
	// Body is the payload.
	Body json.RawMessage `json:"body"`
	// Sum is the CRC-32C over (kind, key, spec, body).
	Sum uint32 `json:"sum"`
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// checksum covers every content field of a record, so a line that was
// torn at a JSON-valid boundary or bit-flipped at rest still fails to
// verify.
func checksum(kind, key string, spec, body []byte) uint32 {
	h := crc32.New(crcTable)
	h.Write([]byte(kind))
	h.Write([]byte{0})
	h.Write([]byte(key))
	h.Write([]byte{0})
	h.Write(spec)
	h.Write([]byte{0})
	h.Write(body)
	return h.Sum32()
}

func (r Record) valid() bool {
	return (r.Kind == KindResult || r.Kind == KindSweep) &&
		r.Key != "" &&
		r.Sum == checksum(r.Kind, r.Key, r.Spec, r.Body)
}

// Options tune a store.
type Options struct {
	// MaxSegmentBytes rolls the active segment once it exceeds this size
	// (0 = 8 MiB). Rolling bounds both the recovery scan unit and the
	// granularity of MaxBytes pruning.
	MaxSegmentBytes int64
	// MaxBytes caps the store's total on-disk size; once exceeded, the
	// oldest whole segments (and the index entries into them) are dropped.
	// 0 = unbounded. The active segment is never dropped.
	MaxBytes int64
	// ReadOnly opens the store for inspection: segments are opened
	// read-only, torn tails are skipped but never truncated, no segment
	// or directory is created, and the mutating methods fail with
	// ErrReadOnly. Read-only opens take no lock and are safe against a
	// concurrently appending writer: records are immutable once written,
	// and a partially written tail is simply not indexed.
	ReadOnly bool
}

// ErrReadOnly rejects mutations on a read-only store.
var ErrReadOnly = errors.New("store: opened read-only")

const defaultSegmentBytes = 8 << 20

// Stats is a counter snapshot.
type Stats struct {
	// Results is the number of distinct result records indexed.
	Results int `json:"results"`
	// Sweeps is the number of distinct sweep IDs journaled.
	Sweeps int `json:"sweeps"`
	// Segments and Bytes describe the on-disk footprint.
	Segments int   `json:"segments"`
	Bytes    int64 `json:"bytes"`
	// Hits and Misses count GetResult lookups.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// Appends counts records written in this process.
	Appends int64 `json:"appends"`
	// Corrupt counts records dropped during recovery (torn tails,
	// checksum failures); Evicted counts records dropped by MaxBytes
	// segment pruning.
	Corrupt int64 `json:"corrupt"`
	Evicted int64 `json:"evicted"`
}

// segment is one on-disk log file.
type segment struct {
	id   uint64
	path string
	f    *os.File
	size int64
}

// loc is an index pointer to one record line.
type loc struct {
	seg *segment
	off int64
	n   int64
}

type resultEntry struct {
	loc
	seq  uint64
	spec json.RawMessage // held in memory for filtered listings
}

type sweepEntry struct {
	loc
	seq uint64
}

// Store is the handle. All methods are safe for concurrent use within
// one process; across processes, writers take an exclusive advisory lock
// on the directory (a second writer — another server, or a compact
// against a live one — fails to open), while read-only opens coexist
// with a writer freely.
type Store struct {
	dir  string
	opts Options
	lock *os.File // writer-exclusion flock; nil when read-only

	mu         sync.RWMutex
	segs       []*segment
	nextSeg    uint64 // next segment id; never reused, even across Compact
	seq        uint64
	results    map[string]*resultEntry
	resultKeys []string // append order
	sweeps     map[string]*sweepEntry
	sweepKeys  []string // first-seen order
	bytes      int64

	hits, misses, appends, corrupt, evicted int64
}

// Open opens (or creates) the store at dir, replaying every segment into
// the in-memory index and recovering past torn writes.
func Open(dir string, opts Options) (*Store, error) {
	if opts.MaxSegmentBytes <= 0 {
		opts.MaxSegmentBytes = defaultSegmentBytes
	}
	s := &Store{
		dir:     dir,
		opts:    opts,
		results: make(map[string]*resultEntry),
		sweeps:  make(map[string]*sweepEntry),
	}
	if opts.ReadOnly {
		if _, err := os.Stat(dir); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	} else {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		lock, err := acquireLock(filepath.Join(dir, "LOCK"))
		if err != nil {
			return nil, err
		}
		s.lock = lock
	}
	paths, err := filepath.Glob(filepath.Join(dir, "seg-*.jsonl"))
	if err != nil {
		s.releaseLock()
		return nil, fmt.Errorf("store: %w", err)
	}
	sort.Strings(paths) // zero-padded ids sort numerically
	for i, path := range paths {
		seg, err := s.openSegment(path, i == len(paths)-1)
		if err != nil {
			s.closeSegmentsLocked()
			s.releaseLock()
			return nil, err
		}
		s.segs = append(s.segs, seg)
		s.bytes += seg.size
		if seg.id >= s.nextSeg {
			s.nextSeg = seg.id + 1
		}
	}
	if len(s.segs) == 0 && !opts.ReadOnly {
		if err := s.rollLocked(); err != nil {
			s.releaseLock()
			return nil, err
		}
	}
	return s, nil
}

// releaseLock drops the writer lock, if held.
func (s *Store) releaseLock() {
	if s.lock != nil {
		s.lock.Close()
		s.lock = nil
	}
}

// openSegment reads one segment file, indexing every valid record.
// Corrupt lines are skipped; when active, the file is truncated back to
// the end of its last valid record so appends resume on a clean boundary.
func (s *Store) openSegment(path string, active bool) (*segment, error) {
	var id uint64
	if _, err := fmt.Sscanf(filepath.Base(path), "seg-%d.jsonl", &id); err != nil {
		return nil, fmt.Errorf("store: segment name %q: %w", filepath.Base(path), err)
	}
	mode := os.O_RDWR
	if s.opts.ReadOnly {
		mode = os.O_RDONLY
	}
	f, err := os.OpenFile(path, mode, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	seg := &segment{id: id, path: path, f: f}
	r := bufio.NewReaderSize(f, 1<<16)
	var off, good int64
	for {
		line, err := r.ReadBytes('\n')
		if err != nil && err != io.EOF {
			f.Close()
			return nil, fmt.Errorf("store: read %s: %w", path, err)
		}
		n := int64(len(line))
		torn := err == io.EOF && n > 0 // no trailing newline: mid-append crash
		if n > 0 {
			var rec Record
			if !torn && json.Unmarshal(line, &rec) == nil && rec.valid() {
				s.index(rec, loc{seg: seg, off: off, n: n})
				good = off + n
			} else {
				s.corrupt++
			}
			off += n
		}
		if err == io.EOF {
			break
		}
	}
	seg.size = off
	if active && good < off && !s.opts.ReadOnly {
		// Drop the torn tail so the next append starts a fresh line. A
		// read-only open leaves the file untouched — the torn tail is
		// simply not indexed, and may well be a concurrent writer's
		// append in flight.
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: truncate %s: %w", path, err)
		}
		seg.size = good
	}
	return seg, nil
}

// index applies one replayed or appended record to the in-memory maps.
func (s *Store) index(rec Record, l loc) {
	if rec.Seq >= s.seq {
		s.seq = rec.Seq + 1
	}
	switch rec.Kind {
	case KindResult:
		if _, dup := s.results[rec.Key]; dup {
			return // first write wins; duplicates are byte-identical by determinism
		}
		s.results[rec.Key] = &resultEntry{loc: l, seq: rec.Seq, spec: append(json.RawMessage(nil), rec.Spec...)}
		s.resultKeys = append(s.resultKeys, rec.Key)
	case KindSweep:
		e, ok := s.sweeps[rec.Key]
		if !ok {
			e = &sweepEntry{}
			s.sweeps[rec.Key] = e
			s.sweepKeys = append(s.sweepKeys, rec.Key)
		}
		e.loc, e.seq = l, rec.Seq
	}
}

// rollLocked starts a new active segment; callers hold s.mu.
func (s *Store) rollLocked() error {
	if s.nextSeg == 0 {
		s.nextSeg = 1
	}
	id := s.nextSeg
	s.nextSeg = id + 1
	path := filepath.Join(s.dir, fmt.Sprintf("seg-%06d.jsonl", id))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.segs = append(s.segs, &segment{id: id, path: path, f: f})
	return nil
}

// appendLocked assigns the next sequence number, writes the record, and
// prunes; callers hold s.mu. Returns the record's location.
func (s *Store) appendLocked(rec *Record) (loc, error) {
	rec.Seq = s.seq
	s.seq++
	l, err := s.writeLocked(rec)
	if err != nil {
		return loc{}, err
	}
	s.pruneLocked()
	return l, nil
}

// writeLocked writes one record to the active segment as-is (its Seq is
// the caller's — Compact replays history under original numbers), rolling
// beforehand when the segment is full; callers hold s.mu.
func (s *Store) writeLocked(rec *Record) (loc, error) {
	rec.Sum = checksum(rec.Kind, rec.Key, rec.Spec, rec.Body)
	line, err := json.Marshal(rec)
	if err != nil {
		return loc{}, fmt.Errorf("store: %w", err)
	}
	line = append(line, '\n')
	active := s.segs[len(s.segs)-1]
	if active.size > 0 && active.size+int64(len(line)) > s.opts.MaxSegmentBytes {
		if err := s.rollLocked(); err != nil {
			return loc{}, err
		}
		active = s.segs[len(s.segs)-1]
	}
	if _, err := active.f.WriteAt(line, active.size); err != nil {
		return loc{}, fmt.Errorf("store: append: %w", err)
	}
	l := loc{seg: active, off: active.size, n: int64(len(line))}
	active.size += int64(len(line))
	s.bytes += int64(len(line))
	s.appends++
	return l, nil
}

// pruneLocked drops the oldest whole segments while the store exceeds
// MaxBytes; callers hold s.mu. Result entries into dropped segments
// vanish with them — a pruned result is a future cache miss, nothing
// more. Sweep-journal records are different: they are the crash-resume
// state and the sweep-ID high-water mark, so the latest record per sweep
// is rewritten into the active segment (sequence preserved) before its
// segment is dropped, and survives any amount of pruning.
func (s *Store) pruneLocked() {
	if s.opts.MaxBytes <= 0 {
		return
	}
	for s.bytes > s.opts.MaxBytes && len(s.segs) > 1 {
		victim := s.segs[0]
		s.rescueSweepsLocked(victim)
		s.segs = s.segs[1:]
		s.bytes -= victim.size
		s.dropEntriesIn(victim)
		victim.f.Close()
		os.Remove(victim.path)
	}
}

// rescueSweepsLocked rewrites the live sweep-journal records located in
// the segment about to be pruned into the active segment; callers hold
// s.mu. The victim is never the active segment (pruneLocked's len > 1
// guard), so the rewrite always moves records forward.
func (s *Store) rescueSweepsLocked(victim *segment) {
	for _, id := range s.sweepKeys {
		e := s.sweeps[id]
		if e.seg != victim {
			continue
		}
		rec, err := s.readLocked(e.loc)
		if err != nil {
			continue // unreadable: drop with the segment
		}
		if l, err := s.writeLocked(&rec); err == nil {
			e.loc = l
		}
	}
}

// dropEntriesIn removes every index entry located in seg.
func (s *Store) dropEntriesIn(seg *segment) {
	keep := s.resultKeys[:0]
	for _, k := range s.resultKeys {
		if s.results[k].seg == seg {
			delete(s.results, k)
			s.evicted++
			continue
		}
		keep = append(keep, k)
	}
	s.resultKeys = keep
	keepSweeps := s.sweepKeys[:0]
	for _, k := range s.sweepKeys {
		if s.sweeps[k].seg == seg {
			delete(s.sweeps, k)
			s.evicted++
			continue
		}
		keepSweeps = append(keepSweeps, k)
	}
	s.sweepKeys = keepSweeps
}

// readLocked fetches one record line; callers hold s.mu (read or write).
func (s *Store) readLocked(l loc) (Record, error) {
	buf := make([]byte, l.n)
	if _, err := l.seg.f.ReadAt(buf, l.off); err != nil {
		return Record{}, fmt.Errorf("store: read %s@%d: %w", filepath.Base(l.seg.path), l.off, err)
	}
	var rec Record
	if err := json.Unmarshal(bytes.TrimSuffix(buf, []byte{'\n'}), &rec); err != nil {
		return Record{}, fmt.Errorf("store: decode %s@%d: %w", filepath.Base(l.seg.path), l.off, err)
	}
	if !rec.valid() {
		return Record{}, fmt.Errorf("store: record %s@%d fails checksum", filepath.Base(l.seg.path), l.off)
	}
	return rec, nil
}

// PutResult records a result under its content key. The first record for
// a key wins: a duplicate put is a no-op (reported false) — by the
// determinism contract a re-executed spec produces the identical body.
func (s *Store) PutResult(key string, spec, body []byte) (written bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.opts.ReadOnly {
		return false, ErrReadOnly
	}
	if _, dup := s.results[key]; dup {
		return false, nil
	}
	rec := Record{Kind: KindResult, Key: key, Spec: spec, Body: body}
	l, err := s.appendLocked(&rec)
	if err != nil {
		return false, err
	}
	// Pruning inside appendLocked can only drop older segments, never the
	// active one just written.
	s.index(rec, l)
	return true, nil
}

// GetResult looks a result up by content key, reading the body from disk.
func (s *Store) GetResult(key string) (Record, bool, error) {
	s.mu.RLock()
	e, ok := s.results[key]
	if !ok {
		s.mu.RUnlock()
		s.mu.Lock()
		s.misses++
		s.mu.Unlock()
		return Record{}, false, nil
	}
	rec, err := s.readLocked(e.loc)
	s.mu.RUnlock()
	if err != nil {
		return Record{}, false, err
	}
	s.mu.Lock()
	s.hits++
	s.mu.Unlock()
	return rec, true, nil
}

// ResultInfo is one index entry of a listing: the content key, the append
// sequence, and the canonical spec (the body stays on disk; fetch it with
// GetResult).
type ResultInfo struct {
	Key  string
	Seq  uint64
	Spec json.RawMessage
}

// Results snapshots the result index in append order (oldest first).
func (s *Store) Results() []ResultInfo {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]ResultInfo, 0, len(s.resultKeys))
	for _, k := range s.resultKeys {
		e := s.results[k]
		out = append(out, ResultInfo{Key: k, Seq: e.seq, Spec: e.spec})
	}
	return out
}

// PutSweep appends one sweep-journal record under the sweep ID. Unlike
// results, every put is recorded: later records supersede earlier ones
// and Compact drops the superseded history.
func (s *Store) PutSweep(id string, body []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.opts.ReadOnly {
		return ErrReadOnly
	}
	rec := Record{Kind: KindSweep, Key: id, Body: body}
	l, err := s.appendLocked(&rec)
	if err != nil {
		return err
	}
	s.index(rec, l)
	return nil
}

// SweepInfo is the latest journal record for one sweep ID.
type SweepInfo struct {
	ID   string
	Seq  uint64
	Body json.RawMessage
}

// Sweeps returns the latest journal record per sweep ID, in first-seen
// order, reading bodies from disk.
func (s *Store) Sweeps() ([]SweepInfo, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]SweepInfo, 0, len(s.sweepKeys))
	for _, id := range s.sweepKeys {
		e := s.sweeps[id]
		rec, err := s.readLocked(e.loc)
		if err != nil {
			return nil, err
		}
		out = append(out, SweepInfo{ID: id, Seq: e.seq, Body: rec.Body})
	}
	return out, nil
}

// Compact rewrites the log keeping only live records — every indexed
// result and the latest journal record per sweep — and deletes the old
// segments. Record sequence numbers are preserved, so compaction never
// reorders history.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.opts.ReadOnly {
		return ErrReadOnly
	}

	// Gather live records (reads go through the old segments).
	type liveRec struct {
		rec Record
		res *resultEntry
		sw  *sweepEntry
	}
	live := make([]liveRec, 0, len(s.resultKeys)+len(s.sweepKeys))
	for _, k := range s.resultKeys {
		e := s.results[k]
		rec, err := s.readLocked(e.loc)
		if err != nil {
			return err
		}
		live = append(live, liveRec{rec: rec, res: e})
	}
	for _, id := range s.sweepKeys {
		e := s.sweeps[id]
		rec, err := s.readLocked(e.loc)
		if err != nil {
			return err
		}
		live = append(live, liveRec{rec: rec, sw: e})
	}
	sort.SliceStable(live, func(i, j int) bool { return live[i].rec.Seq < live[j].rec.Seq })

	old := s.segs
	oldBytes := s.bytes
	s.segs = nil
	s.bytes = 0
	if err := s.rollLocked(); err != nil {
		s.segs, s.bytes = old, oldBytes
		return err
	}
	for _, lr := range live {
		rec := lr.rec
		l, err := s.writeLocked(&rec)
		if err != nil {
			return err
		}
		if lr.res != nil {
			lr.res.loc = l
		} else {
			lr.sw.loc = l
		}
	}
	for _, seg := range old {
		seg.f.Close()
		os.Remove(seg.path)
	}
	return nil
}

// Stats returns a counter snapshot.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return Stats{
		Results:  len(s.results),
		Sweeps:   len(s.sweeps),
		Segments: len(s.segs),
		Bytes:    s.bytes,
		Hits:     s.hits,
		Misses:   s.misses,
		Appends:  s.appends,
		Corrupt:  s.corrupt,
		Evicted:  s.evicted,
	}
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// Close closes every segment file and releases the writer lock. The
// store is unusable afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.closeSegmentsLocked()
	s.releaseLock()
	return err
}

func (s *Store) closeSegmentsLocked() error {
	var first error
	for _, seg := range s.segs {
		if err := seg.f.Close(); err != nil && first == nil {
			first = err
		}
	}
	s.segs = nil
	return first
}
