package store

import (
	"errors"
	"sort"
	"time"

	"encoding/json"
)

// Claim protocol
//
// A claim is a lease on a content key: it grants one worker the right to
// execute the key's spec until a deadline. The protocol exists so N
// bo3serve processes sharing one store directory partition a sweep's
// cells among themselves without duplicate execution — the claim is the
// scheduling signal; first-write-wins result records remain the
// correctness backstop if a lease is ever lost.
//
// The lifecycle is append-only, like everything else in the log:
//
//	{"kind":"claim","key":K,"body":{"worker":"a","state":"held","deadline_ms":T,"fence":F}}
//	... worker a executes the spec ...
//	{"kind":"result","key":K,...}                      <- supersedes the claim
//
// or, if the worker gives the key up without a result (execution failed):
//
//	{"kind":"claim","key":K,"body":{"worker":"a","state":"released","fence":F}}
//
// The fence F is the sequence number of the record that granted the
// lease. Sequence numbers are globally monotone across the fleet (every
// append happens under the directory flock after a refresh), so a fence
// uniquely identifies one grant: Renew and Release demand the caller's
// fence match the index, which makes a worker that lost its lease to
// takeover fail loudly (ErrLeaseLost) instead of silently extending the
// new holder's lease. The fence is stable across renewals — renewals
// extend the deadline under the original grant.
//
// Takeover: a held claim whose deadline has passed is up for grabs; the
// next Claim on the key replaces it with a fresh grant (new fence). A
// crashed worker therefore blocks its keys for at most one lease TTL.
// Deliberate shutdown mid-execution does NOT release claims — shutdown
// is indistinguishable from a crash to the rest of the fleet, and the
// expiry path covers both.

// Claim states as stored in a claim record's body.
const (
	claimHeld     = "held"
	claimReleased = "released"
)

// claimBody is the payload of a KindClaim record.
type claimBody struct {
	Worker string `json:"worker"`
	State  string `json:"state"`
	// Deadline is the lease expiry in Unix milliseconds (held only).
	Deadline int64 `json:"deadline_ms,omitempty"`
	// Fence is the sequence number of the grant record; stable across
	// renewals, fresh on takeover.
	Fence uint64 `json:"fence"`
}

// ErrResultExists is returned by Claim when the key already has a
// recorded result: there is nothing left to execute.
var ErrResultExists = errors.New("store: result already recorded for key")

// ErrClaimHeld is returned by Claim when another worker holds an
// unexpired lease on the key.
var ErrClaimHeld = errors.New("store: key is leased to another worker")

// ErrLeaseLost is returned by Renew and Release when the caller's lease
// is gone: expired and taken over, superseded by a result, or never
// granted. The caller must stop assuming exclusivity; any result it
// still writes is safe (first write wins) but may be discarded.
var ErrLeaseLost = errors.New("store: lease lost")

// ClaimInfo is one held claim, as listed by Claims.
type ClaimInfo struct {
	Key      string    `json:"key"`
	Worker   string    `json:"worker"`
	Fence    uint64    `json:"fence"`
	Deadline time.Time `json:"deadline"`
	// Expired marks a lease past its deadline at listing time — still
	// indexed, up for takeover by the next Claim.
	Expired bool `json:"expired,omitempty"`
}

// Claim leases the content key to worker for ttl. On success it returns
// the fencing token to pass to Renew and Release. Claiming a key this
// worker already holds renews it (same fence). Failure modes:
// ErrResultExists when the key's result is already recorded (skip the
// work, read the result), ErrClaimHeld when another worker's lease has
// not expired (retry after its deadline). An expired lease is taken over
// with a fresh fence.
func (s *Store) Claim(key, worker string, ttl time.Duration) (fence uint64, err error) {
	start := time.Now()
	defer s.mx.ClaimSeconds.ObserveSince(start)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.opts.ReadOnly {
		return 0, ErrReadOnly
	}
	if err := s.beginMutationLocked(); err != nil {
		return 0, err
	}
	defer s.endMutationLocked()
	if _, done := s.results[key]; done {
		return 0, ErrResultExists
	}
	now := time.Now()
	if e, held := s.claims[key]; held {
		if e.worker != worker && now.UnixMilli() <= e.deadline {
			return 0, ErrClaimHeld
		}
		if e.worker == worker {
			// Re-claim by the holder: extend under the original fence.
			return e.fence, s.putClaimLocked(key, worker, claimHeld, now.Add(ttl).UnixMilli(), e.fence)
		}
		// Expired: fall through to a fresh grant (takeover).
		s.mx.LeaseTakeovers.Inc()
		s.log.Info("store: lease takeover",
			"key", key, "worker", worker, "prev_worker", e.worker,
			"prev_fence", e.fence)
	}
	fence = s.seq // the grant record's sequence number
	return fence, s.putClaimLocked(key, worker, claimHeld, now.Add(ttl).UnixMilli(), fence)
}

// Renew extends worker's lease on key by ttl from now. The fence must be
// the one Claim returned; ErrLeaseLost if the lease is gone or was taken
// over.
func (s *Store) Renew(key, worker string, fence uint64, ttl time.Duration) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.opts.ReadOnly {
		return ErrReadOnly
	}
	if err := s.beginMutationLocked(); err != nil {
		return err
	}
	defer s.endMutationLocked()
	e, held := s.claims[key]
	if !held || e.worker != worker || e.fence != fence {
		return ErrLeaseLost
	}
	if err := s.putClaimLocked(key, worker, claimHeld, time.Now().Add(ttl).UnixMilli(), fence); err != nil {
		return err
	}
	s.mx.LeaseRenewals.Inc()
	return nil
}

// Release gives the lease up without a result (execution failed or was
// abandoned). Releasing a key whose result is recorded is a no-op — the
// result already superseded the claim, which is the normal completion
// path. ErrLeaseLost if the lease was taken over.
func (s *Store) Release(key, worker string, fence uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.opts.ReadOnly {
		return ErrReadOnly
	}
	if err := s.beginMutationLocked(); err != nil {
		return err
	}
	defer s.endMutationLocked()
	e, held := s.claims[key]
	if !held {
		if _, done := s.results[key]; done {
			return nil
		}
		return ErrLeaseLost
	}
	if e.worker != worker || e.fence != fence {
		return ErrLeaseLost
	}
	if err := s.putClaimLocked(key, worker, claimReleased, 0, fence); err != nil {
		return err
	}
	s.mx.LeaseReleases.Inc()
	return nil
}

// putClaimLocked appends and indexes one claim record; callers hold s.mu
// inside a mutation critical section.
func (s *Store) putClaimLocked(key, worker, state string, deadline int64, fence uint64) error {
	body, err := json.Marshal(claimBody{Worker: worker, State: state, Deadline: deadline, Fence: fence})
	if err != nil {
		return err
	}
	rec := Record{Kind: KindClaim, Key: key, Body: body}
	l, err := s.appendLocked(&rec)
	if err != nil {
		return err
	}
	s.index(rec, l)
	return nil
}

// Claims lists the held claims in key order. In shared mode the index is
// refreshed from the log tail first, so the listing reflects the whole
// fleet (bo3store claims uses a read-only handle and sees the same).
func (s *Store) Claims() []ClaimInfo {
	if s.opts.Shared {
		s.mu.Lock()
		_ = s.refreshLocked(false)
		s.mu.Unlock()
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	now := time.Now().UnixMilli()
	out := make([]ClaimInfo, 0, len(s.claims))
	for k, e := range s.claims {
		out = append(out, ClaimInfo{
			Key:      k,
			Worker:   e.worker,
			Fence:    e.fence,
			Deadline: time.UnixMilli(e.deadline),
			Expired:  e.deadline < now,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}
