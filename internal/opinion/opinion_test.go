package opinion

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestColourString(t *testing.T) {
	if Red.String() != "R" || Blue.String() != "B" {
		t.Errorf("colour strings: %q %q", Red, Blue)
	}
}

func TestNewConfigAllRed(t *testing.T) {
	c := NewConfig(100)
	if c.N() != 100 || c.Blues() != 0 || c.Reds() != 100 {
		t.Errorf("fresh config: N=%d B=%d R=%d", c.N(), c.Blues(), c.Reds())
	}
	col, ok := c.IsConsensus()
	if !ok || col != Red {
		t.Error("all-red config should be red consensus")
	}
}

func TestSetGet(t *testing.T) {
	c := NewConfig(10)
	c.Set(3, Blue)
	if c.Get(3) != Blue {
		t.Error("Get after Set(Blue)")
	}
	c.Set(3, Red)
	if c.Get(3) != Red {
		t.Error("Get after Set(Red)")
	}
}

func TestCountsAndFraction(t *testing.T) {
	c := NewConfig(8)
	for _, v := range []int{0, 1, 2} {
		c.Set(v, Blue)
	}
	if c.Blues() != 3 || c.Reds() != 5 {
		t.Errorf("B=%d R=%d", c.Blues(), c.Reds())
	}
	if got := c.BlueFraction(); got != 3.0/8 {
		t.Errorf("BlueFraction = %v", got)
	}
	if got := c.Delta(); math.Abs(got-(0.5-3.0/8)) > 1e-15 {
		t.Errorf("Delta = %v", got)
	}
}

func TestEmptyConfig(t *testing.T) {
	c := NewConfig(0)
	if c.BlueFraction() != 0 {
		t.Error("empty BlueFraction nonzero")
	}
	if col, ok := c.IsConsensus(); !ok || col != Red {
		t.Error("empty config should be red consensus")
	}
	if c.Majority() != Red {
		t.Error("empty majority should be red")
	}
}

func TestMajority(t *testing.T) {
	c := NewConfig(4)
	if c.Majority() != Red {
		t.Error("all red majority")
	}
	c.Set(0, Blue)
	c.Set(1, Blue)
	if c.Majority() != Red {
		t.Error("tie should go red")
	}
	c.Set(2, Blue)
	if c.Majority() != Blue {
		t.Error("3/4 blue majority")
	}
}

func TestIsConsensus(t *testing.T) {
	c := NewConfig(5)
	if _, ok := c.IsConsensus(); !ok {
		t.Error("all-red not consensus")
	}
	c.Set(2, Blue)
	if _, ok := c.IsConsensus(); ok {
		t.Error("mixed config reported consensus")
	}
	c.FillBlue()
	if col, ok := c.IsConsensus(); !ok || col != Blue {
		t.Error("all-blue not blue consensus")
	}
	c.FillRed()
	if col, ok := c.IsConsensus(); !ok || col != Red {
		t.Error("FillRed not red consensus")
	}
}

func TestRandomConfigFrequency(t *testing.T) {
	src := rng.New(1)
	const n = 100000
	for _, p := range []float64{0.0, 0.3, 0.5, 1.0} {
		c := RandomConfig(n, p, src)
		got := c.BlueFraction()
		if math.Abs(got-p) > 0.01 {
			t.Errorf("RandomConfig(p=%v) fraction = %v", p, got)
		}
	}
}

func TestCloneCopyEqual(t *testing.T) {
	src := rng.New(2)
	a := RandomConfig(200, 0.4, src)
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone differs")
	}
	b.Set(0, Blue)
	b.Set(1, Blue)
	a.Set(0, Red)
	a.Set(1, Red)
	if a.Equal(b) {
		t.Fatal("diverged configs reported equal")
	}
	c := NewConfig(200)
	c.CopyFrom(b)
	if !c.Equal(b) {
		t.Error("CopyFrom mismatch")
	}
}

func TestDominates(t *testing.T) {
	a := NewConfig(6)
	b := NewConfig(6)
	b.Set(2, Blue)
	// a (all red) does not dominate b (one blue): blue=1 order.
	if a.Dominates(b) {
		t.Error("all-red should not dominate a config with blues")
	}
	if !b.Dominates(a) {
		t.Error("b has superset of blues, should dominate")
	}
	a.Set(2, Blue)
	a.Set(4, Blue)
	if !a.Dominates(b) || b.Dominates(a) {
		t.Error("strict superset domination wrong")
	}
	if !a.Dominates(a) {
		t.Error("domination must be reflexive")
	}
	if a.Dominates(NewConfig(5)) {
		t.Error("size mismatch must not dominate")
	}
}

func TestFromColours(t *testing.T) {
	c := FromColours([]Colour{Red, Blue, Blue, Red})
	if c.N() != 4 || c.Blues() != 2 {
		t.Errorf("FromColours: N=%d B=%d", c.N(), c.Blues())
	}
	if c.Get(1) != Blue || c.Get(3) != Red {
		t.Error("FromColours wrong colours")
	}
}

func TestStringSmallAndLarge(t *testing.T) {
	c := FromColours([]Colour{Red, Blue, Red})
	if got := c.String(); got != "RBR" {
		t.Errorf("String = %q", got)
	}
	big := NewConfig(100)
	if got := big.String(); got != "config(n=100,blue=0)" {
		t.Errorf("big String = %q", got)
	}
}

// Property: Blues + Reds == N always.
func TestQuickCountsSum(t *testing.T) {
	f := func(seed uint64, nRaw uint16, pRaw uint8) bool {
		n := int(nRaw) % 2000
		c := RandomConfig(n, float64(pRaw)/255, rng.New(seed))
		return c.Blues()+c.Reds() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: Dominates is antisymmetric up to equality.
func TestQuickDominatesAntisymmetry(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		a := RandomConfig(64, 0.5, src)
		b := RandomConfig(64, 0.5, src)
		if a.Dominates(b) && b.Dominates(a) {
			return a.Equal(b)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkRandomConfig(b *testing.B) {
	src := rng.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		RandomConfig(1<<15, 0.45, src)
	}
}

func BenchmarkBlues(b *testing.B) {
	c := RandomConfig(1<<17, 0.45, rng.New(1))
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += c.Blues()
	}
	_ = sink
}

func TestSetBluePrefix(t *testing.T) {
	c := NewConfig(150)
	c.Set(149, Blue) // pre-dirty the tail
	c.SetBluePrefix(70)
	if got := c.Blues(); got != 70 {
		t.Fatalf("Blues = %d after SetBluePrefix(70)", got)
	}
	for v := 0; v < 150; v++ {
		want := Red
		if v < 70 {
			want = Blue
		}
		if c.Get(v) != want {
			t.Fatalf("vertex %d = %v after SetBluePrefix(70)", v, c.Get(v))
		}
	}
}
