// Package opinion represents two-party opinion configurations.
//
// Following the paper's convention, the two opinions are Red (the initial
// majority under P(blue) = 1/2 − δ with δ > 0) and Blue (the initial
// minority). Internally Blue is the value 1 and Red the value 0, matching
// Section 3 of the paper, so "counting blues" is a popcount.
package opinion

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/rng"
)

// Colour is a vertex opinion.
type Colour uint8

const (
	// Red is the paper's initial-majority opinion (numeric value 0).
	Red Colour = 0
	// Blue is the paper's initial-minority opinion (numeric value 1).
	Blue Colour = 1
)

// String returns "R" or "B".
func (c Colour) String() string {
	if c == Blue {
		return "B"
	}
	return "R"
}

// Config is an assignment of a Colour to each vertex 0..N-1, stored as a
// bitset of Blue positions.
type Config struct {
	blue *bitset.Set
}

// NewConfig returns an all-Red configuration on n vertices.
func NewConfig(n int) *Config {
	return &Config{blue: bitset.New(n)}
}

// RandomConfig returns a configuration where each vertex is independently
// Blue with probability pBlue, otherwise Red — the paper's initial
// condition with pBlue = 1/2 − δ.
func RandomConfig(n int, pBlue float64, src *rng.Source) *Config {
	c := NewConfig(n)
	for v := 0; v < n; v++ {
		if src.Bernoulli(pBlue) {
			c.blue.Set(v)
		}
	}
	return c
}

// N returns the number of vertices.
func (c *Config) N() int { return c.blue.Len() }

// Get returns the colour of vertex v.
func (c *Config) Get(v int) Colour {
	if c.blue.Get(v) {
		return Blue
	}
	return Red
}

// Set assigns colour col to vertex v.
func (c *Config) Set(v int, col Colour) {
	c.blue.SetTo(v, col == Blue)
}

// Blues returns the number of Blue vertices.
func (c *Config) Blues() int { return c.blue.Count() }

// Reds returns the number of Red vertices.
func (c *Config) Reds() int { return c.N() - c.Blues() }

// BlueFraction returns Blues/N, or 0 for an empty configuration.
func (c *Config) BlueFraction() float64 {
	if c.N() == 0 {
		return 0
	}
	return float64(c.Blues()) / float64(c.N())
}

// Delta returns the paper's imbalance parameter δ = 1/2 − (blue fraction).
// Positive δ means Red leads.
func (c *Config) Delta() float64 { return 0.5 - c.BlueFraction() }

// Majority returns the majority colour; ties go to Red, matching the
// paper's convention that Red is the (weak) majority at δ = 0.
func (c *Config) Majority() Colour {
	if 2*c.Blues() > c.N() {
		return Blue
	}
	return Red
}

// IsConsensus reports whether every vertex holds the same opinion, and that
// opinion. The empty configuration counts as Red consensus.
func (c *Config) IsConsensus() (Colour, bool) {
	b := c.Blues()
	switch {
	case b == 0:
		return Red, true
	case b == c.N():
		return Blue, true
	default:
		return Red, false
	}
}

// Clone returns a deep copy.
func (c *Config) Clone() *Config { return &Config{blue: c.blue.Clone()} }

// CopyFrom overwrites c with src. Sizes must match.
func (c *Config) CopyFrom(src *Config) { c.blue.CopyFrom(src.blue) }

// Equal reports whether two configurations agree on every vertex.
func (c *Config) Equal(o *Config) bool { return c.blue.Equal(o.blue) }

// FillRed sets every vertex to Red.
func (c *Config) FillRed() { c.blue.Reset() }

// FillBlue sets every vertex to Blue.
func (c *Config) FillBlue() { c.blue.Fill() }

// SetBluePrefix makes vertices [0, b) Blue and the rest Red, word-at-a-
// time. On exchangeable topologies (the complete graph) this is the
// canonical configuration with blue count b; the mean-field engine uses it
// to materialise count-only state on demand.
func (c *Config) SetBluePrefix(b int) { c.blue.SetFirstN(b) }

// BlueSet exposes the underlying Blue bitset (read-only use).
func (c *Config) BlueSet() *bitset.Set { return c.blue }

// Dominates reports whether c is vertex-wise ≥ o in the Blue-as-1 order:
// every Blue vertex of o is also Blue in c. This is the coupling order used
// by the Sprinkling majorisation argument (X ≤ X′).
func (c *Config) Dominates(o *Config) bool {
	if c.N() != o.N() {
		return false
	}
	// o \ c must be empty.
	diff := o.blue.Clone()
	diff.DifferenceWith(c.blue)
	return diff.None()
}

// String renders small configurations as a string of R/B runes; larger ones
// as a count summary.
func (c *Config) String() string {
	n := c.N()
	if n <= 64 {
		buf := make([]byte, n)
		for v := 0; v < n; v++ {
			buf[v] = c.Get(v).String()[0]
		}
		return string(buf)
	}
	return fmt.Sprintf("config(n=%d,blue=%d)", n, c.Blues())
}

// FromColours builds a configuration from an explicit colour slice.
func FromColours(cols []Colour) *Config {
	c := NewConfig(len(cols))
	for v, col := range cols {
		c.Set(v, col)
	}
	return c
}
