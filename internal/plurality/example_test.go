package plurality_test

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/plurality"
	"repro/internal/rng"
)

// Five opinions on a complete graph, opinion 0 holding 30% of the vertices
// (1.5x the balanced share): the q-opinion Best-of-Three dynamic drives the
// initial plurality to consensus.
func Example() {
	g := graph.NewKn(2048)
	init := plurality.RandomBiasedConfig(2048, 5, 0.30, rng.New(1))
	p, err := plurality.New(g, init, plurality.Options{Seed: 2, Tie: plurality.TieRandomSample, Workers: 1})
	if err != nil {
		panic(err)
	}
	res := p.Run(1000)
	fmt.Println("consensus:", res.Consensus)
	fmt.Println("winner is the initial plurality:", res.Winner == 0)
	fmt.Println("double-log-fast:", res.Rounds < 30)
	// Output:
	// consensus: true
	// winner is the initial plurality: true
	// double-log-fast: true
}
