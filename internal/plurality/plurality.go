// Package plurality extends the two-party Best-of-Three dynamic to q ≥ 2
// opinions — the plurality-consensus setting of Becchetti, Clementi,
// Natale, Pasquale, Silvestri and Trevisan (SPAA 2014), reference [2] of
// the paper. Every vertex samples three random neighbours; if at least two
// share an opinion the vertex adopts it, otherwise (three distinct
// opinions) a tie rule applies.
//
// The paper's Theorem 1 is the q = 2 case on dense graphs; this package
// lets the experiment suite reproduce the q-opinion claims the paper cites:
// the initial plurality wins w.h.p. given enough initial advantage, with
// consensus time growing with q.
package plurality

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/rng"
)

// Topology is the neighbour-query interface shared with the two-party
// engine.
type Topology interface {
	N() int
	Degree(v int) int
	Neighbor(v, i int) int
	MinDegree() int
	Name() string
}

// TieRule decides the adopted opinion when the three samples are pairwise
// distinct.
type TieRule uint8

const (
	// TieKeep keeps the current opinion (rule (i) of the paper's intro).
	TieKeep TieRule = iota
	// TieRandomSample adopts one of the three sampled opinions uniformly
	// (rule (ii); the rule analysed in [2]).
	TieRandomSample
)

// Config is an assignment of one of q opinions to each vertex.
type Config struct {
	opinions []uint8
	q        int
}

// NewConfig returns an all-zeros configuration with q possible opinions
// (2 ≤ q ≤ 256).
func NewConfig(n, q int) *Config {
	if q < 2 || q > 256 {
		panic("plurality: q must be in [2, 256]")
	}
	if n < 0 {
		panic("plurality: negative n")
	}
	return &Config{opinions: make([]uint8, n), q: q}
}

// N returns the number of vertices; Q the number of opinions.
func (c *Config) N() int { return len(c.opinions) }

// Q returns the opinion alphabet size.
func (c *Config) Q() int { return c.q }

// Get returns the opinion of vertex v.
func (c *Config) Get(v int) int { return int(c.opinions[v]) }

// Set assigns opinion op to vertex v.
func (c *Config) Set(v, op int) {
	if op < 0 || op >= c.q {
		panic(fmt.Sprintf("plurality: opinion %d out of range [0,%d)", op, c.q))
	}
	c.opinions[v] = uint8(op)
}

// Counts returns the per-opinion vertex counts.
func (c *Config) Counts() []int {
	counts := make([]int, c.q)
	for _, op := range c.opinions {
		counts[op]++
	}
	return counts
}

// Plurality returns the most frequent opinion (lowest index on ties) and
// its count.
func (c *Config) Plurality() (op, count int) {
	counts := c.Counts()
	for i, cnt := range counts {
		if cnt > count {
			op, count = i, cnt
		}
	}
	return op, count
}

// IsConsensus reports whether all vertices share one opinion, and which.
// An empty configuration counts as consensus on opinion 0.
func (c *Config) IsConsensus() (int, bool) {
	if len(c.opinions) == 0 {
		return 0, true
	}
	first := c.opinions[0]
	for _, op := range c.opinions[1:] {
		if op != first {
			return int(first), false
		}
	}
	return int(first), true
}

// Clone returns a deep copy.
func (c *Config) Clone() *Config {
	out := &Config{opinions: make([]uint8, len(c.opinions)), q: c.q}
	copy(out.opinions, c.opinions)
	return out
}

// RandomBiasedConfig draws each vertex's opinion i.i.d.: opinion 0 with
// probability share0, the remaining mass split evenly over opinions
// 1..q−1. share0 = 1/q is the balanced case; share0 > 1/q gives opinion 0
// the initial plurality (the analogue of the paper's 1/2 + δ).
func RandomBiasedConfig(n, q int, share0 float64, src *rng.Source) *Config {
	if share0 < 0 || share0 > 1 {
		panic("plurality: share0 outside [0,1]")
	}
	c := NewConfig(n, q)
	rest := (1 - share0) / float64(q-1)
	for v := 0; v < n; v++ {
		u := src.Float64()
		if u < share0 {
			continue // opinion 0
		}
		op := 1 + int((u-share0)/rest)
		if op >= q {
			op = q - 1
		}
		c.opinions[v] = uint8(op)
	}
	return c
}

// Process runs the q-opinion Best-of-Three dynamic. Like the two-party
// engine it double-buffers the configuration and shards the vertex range
// over deterministic per-shard RNG streams.
type Process struct {
	g       Topology
	tie     TieRule
	cur     *Config
	next    *Config
	shards  []shard
	round   int
	workers int
}

type shard struct {
	lo, hi int
	src    *rng.Source
}

// Options configures a Process.
type Options struct {
	Workers int
	Seed    uint64
	Tie     TieRule
}

// New returns a Process evolving init on g. The initial configuration is
// copied.
func New(g Topology, init *Config, opt Options) (*Process, error) {
	if g.N() != init.N() {
		return nil, fmt.Errorf("plurality: graph has %d vertices, configuration has %d", g.N(), init.N())
	}
	if g.N() > 0 && g.MinDegree() == 0 {
		return nil, fmt.Errorf("plurality: graph %s has an isolated vertex", g.Name())
	}
	w := opt.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > g.N() {
		w = g.N()
	}
	if w < 1 {
		w = 1
	}
	p := &Process{
		g:       g,
		tie:     opt.Tie,
		cur:     init.Clone(),
		next:    NewConfig(g.N(), init.Q()),
		workers: w,
	}
	n := g.N()
	for i := 0; i < w; i++ {
		p.shards = append(p.shards, shard{
			lo:  i * n / w,
			hi:  (i + 1) * n / w,
			src: rng.NewFrom(opt.Seed, uint64(i)),
		})
	}
	return p, nil
}

// Config returns the current configuration (aliased; clone to keep).
func (p *Process) Config() *Config { return p.cur }

// Round returns the number of completed rounds.
func (p *Process) Round() int { return p.round }

// Step performs one synchronous round.
func (p *Process) Step() {
	if p.g.N() == 0 {
		p.round++
		return
	}
	if p.workers == 1 {
		p.stepRange(p.shards[0].lo, p.shards[0].hi, p.shards[0].src)
	} else {
		var wg sync.WaitGroup
		for i := range p.shards {
			wg.Add(1)
			go func(s *shard) {
				defer wg.Done()
				p.stepRange(s.lo, s.hi, s.src)
			}(&p.shards[i])
		}
		wg.Wait()
	}
	p.cur, p.next = p.next, p.cur
	p.round++
}

func (p *Process) stepRange(lo, hi int, src *rng.Source) {
	for v := lo; v < hi; v++ {
		deg := p.g.Degree(v)
		a := p.cur.opinions[p.g.Neighbor(v, src.Intn(deg))]
		b := p.cur.opinions[p.g.Neighbor(v, src.Intn(deg))]
		c := p.cur.opinions[p.g.Neighbor(v, src.Intn(deg))]
		var adopt uint8
		switch {
		case a == b || a == c:
			adopt = a
		case b == c:
			adopt = b
		default: // three distinct opinions
			if p.tie == TieKeep {
				adopt = p.cur.opinions[v]
			} else {
				switch src.Intn(3) {
				case 0:
					adopt = a
				case 1:
					adopt = b
				default:
					adopt = c
				}
			}
		}
		p.next.opinions[v] = adopt
	}
}

// Result summarises a run.
type Result struct {
	Consensus bool
	Winner    int // consensus opinion, or current plurality at stop
	Rounds    int
}

// Run advances until consensus or maxRounds.
func (p *Process) Run(maxRounds int) Result {
	for p.round < maxRounds {
		if op, ok := p.cur.IsConsensus(); ok {
			return Result{Consensus: true, Winner: op, Rounds: p.round}
		}
		p.Step()
	}
	res := Result{Rounds: p.round}
	if op, ok := p.cur.IsConsensus(); ok {
		res.Consensus = true
		res.Winner = op
	} else {
		res.Winner, _ = p.cur.Plurality()
	}
	return res
}
