package plurality

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/rng"
)

func TestNewConfigPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"q too small": func() { NewConfig(4, 1) },
		"q too big":   func() { NewConfig(4, 257) },
		"negative n":  func() { NewConfig(-1, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestConfigBasics(t *testing.T) {
	c := NewConfig(5, 4)
	if c.N() != 5 || c.Q() != 4 {
		t.Fatalf("N=%d Q=%d", c.N(), c.Q())
	}
	c.Set(2, 3)
	if c.Get(2) != 3 {
		t.Error("Get after Set")
	}
	counts := c.Counts()
	if counts[0] != 4 || counts[3] != 1 {
		t.Errorf("Counts = %v", counts)
	}
	op, cnt := c.Plurality()
	if op != 0 || cnt != 4 {
		t.Errorf("Plurality = (%d, %d)", op, cnt)
	}
}

func TestConfigSetPanicsOutOfRange(t *testing.T) {
	c := NewConfig(3, 3)
	for _, op := range []int{-1, 3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Set(%d) did not panic", op)
				}
			}()
			c.Set(0, op)
		}()
	}
}

func TestIsConsensus(t *testing.T) {
	c := NewConfig(4, 3)
	if op, ok := c.IsConsensus(); !ok || op != 0 {
		t.Error("uniform config not consensus")
	}
	c.Set(1, 2)
	if _, ok := c.IsConsensus(); ok {
		t.Error("mixed config reported consensus")
	}
	if op, ok := NewConfig(0, 2).IsConsensus(); !ok || op != 0 {
		t.Error("empty config should be consensus on 0")
	}
}

func TestCloneIndependent(t *testing.T) {
	c := NewConfig(4, 3)
	c.Set(0, 1)
	d := c.Clone()
	d.Set(0, 2)
	if c.Get(0) != 1 {
		t.Error("clone mutation leaked")
	}
}

func TestRandomBiasedConfigShares(t *testing.T) {
	src := rng.New(1)
	const n, q = 100000, 5
	c := RandomBiasedConfig(n, q, 0.4, src)
	counts := c.Counts()
	if got := float64(counts[0]) / n; got < 0.38 || got > 0.42 {
		t.Errorf("opinion 0 share = %v, want ~0.4", got)
	}
	for op := 1; op < q; op++ {
		if got := float64(counts[op]) / n; got < 0.13 || got > 0.17 {
			t.Errorf("opinion %d share = %v, want ~0.15", op, got)
		}
	}
}

func TestRandomBiasedConfigPanics(t *testing.T) {
	for _, s := range []float64{-0.1, 1.1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("share %v did not panic", s)
				}
			}()
			RandomBiasedConfig(10, 3, s, rng.New(1))
		}()
	}
}

func TestNewRejectsBadInput(t *testing.T) {
	g := graph.Complete(4)
	if _, err := New(g, NewConfig(5, 3), Options{}); err == nil {
		t.Error("size mismatch accepted")
	}
	iso := graph.FromEdges(3, [][2]int{{0, 1}}, "isolated")
	if _, err := New(iso, NewConfig(3, 3), Options{}); err == nil {
		t.Error("isolated vertex accepted")
	}
}

func TestConsensusAbsorbing(t *testing.T) {
	g := graph.Complete(16)
	c := NewConfig(16, 4)
	for v := 0; v < 16; v++ {
		c.Set(v, 2)
	}
	p, err := New(g, c, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		p.Step()
	}
	if op, ok := p.Config().IsConsensus(); !ok || op != 2 {
		t.Error("consensus not absorbing")
	}
}

func TestPluralityWinsOnComplete(t *testing.T) {
	// Opinion 0 with a solid initial advantage must win on K_n.
	g := graph.NewKn(4096)
	wins := 0
	const trials = 10
	for trial := uint64(0); trial < trials; trial++ {
		src := rng.New(trial)
		init := RandomBiasedConfig(4096, 4, 0.45, src)
		p, err := New(g, init, Options{Seed: trial, Tie: TieRandomSample})
		if err != nil {
			t.Fatal(err)
		}
		res := p.Run(2000)
		if !res.Consensus {
			t.Fatalf("trial %d: no consensus", trial)
		}
		if res.Winner == 0 {
			wins++
		}
	}
	if wins < trials-1 {
		t.Errorf("plurality opinion won only %d/%d", wins, trials)
	}
}

func TestQEquals2MatchesTwoPartyShape(t *testing.T) {
	// q = 2 with a 60/40 split on a dense regular graph: consensus on the
	// majority within double-log-ish rounds, mirroring the two-party
	// engine.
	g := graph.RandomRegular(1024, 64, rng.New(3))
	init := RandomBiasedConfig(1024, 2, 0.6, rng.New(4))
	p, err := New(g, init, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	res := p.Run(300)
	if !res.Consensus || res.Winner != 0 {
		t.Errorf("result = %+v", res)
	}
	if res.Rounds > 30 {
		t.Errorf("rounds = %d", res.Rounds)
	}
}

func TestTieKeepVsRandomBothConverge(t *testing.T) {
	g := graph.Complete(128)
	for _, tie := range []TieRule{TieKeep, TieRandomSample} {
		init := RandomBiasedConfig(128, 3, 0.5, rng.New(6))
		p, err := New(g, init, Options{Seed: 7, Tie: tie})
		if err != nil {
			t.Fatal(err)
		}
		if res := p.Run(5000); !res.Consensus {
			t.Errorf("tie rule %d did not converge", tie)
		}
	}
}

func TestDeterminism(t *testing.T) {
	g := graph.RandomRegular(256, 8, rng.New(8))
	init := RandomBiasedConfig(256, 5, 0.3, rng.New(9))
	run := func() []int {
		p, err := New(g, init, Options{Seed: 10, Workers: 3})
		if err != nil {
			t.Fatal(err)
		}
		p.Run(20)
		return p.Config().Counts()
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverged: %v vs %v", a, b)
		}
	}
}

// Property: counts always sum to n and stay non-negative after any number
// of steps.
func TestQuickCountsConserved(t *testing.T) {
	g := graph.Complete(32)
	f := func(seed uint64, qRaw uint8) bool {
		q := int(qRaw)%6 + 2
		init := RandomBiasedConfig(32, q, 1/float64(q), rng.New(seed))
		p, err := New(g, init, Options{Seed: seed})
		if err != nil {
			return false
		}
		for i := 0; i < 5; i++ {
			p.Step()
		}
		total := 0
		for _, c := range p.Config().Counts() {
			if c < 0 {
				return false
			}
			total += c
		}
		return total == 32
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: opinions never leave the alphabet (adopted opinions are always
// sampled from neighbours).
func TestQuickOpinionsClosedUnderDynamics(t *testing.T) {
	g := graph.Cycle(24)
	f := func(seed uint64) bool {
		init := RandomBiasedConfig(24, 4, 0.25, rng.New(seed))
		present := map[int]bool{}
		for v := 0; v < 24; v++ {
			present[init.Get(v)] = true
		}
		p, err := New(g, init, Options{Seed: seed, Tie: TieRandomSample})
		if err != nil {
			return false
		}
		for i := 0; i < 10; i++ {
			p.Step()
		}
		for v := 0; v < 24; v++ {
			if !present[p.Config().Get(v)] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkStepQ5(b *testing.B) {
	g := graph.RandomRegular(1<<14, 32, rng.New(1))
	init := RandomBiasedConfig(1<<14, 5, 0.3, rng.New(2))
	p, err := New(g, init, Options{Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Step()
	}
}
