package experiments

// E17 verifies the central identity of Section 2 — P(ξ_T(v₀) = B) =
// P(X_H(v₀, T) = B) — by estimating both sides independently: the left by
// running the forward dynamic T rounds and reading vertex v₀'s opinion,
// the right by building the random voting-DAG of height T and running the
// colouring process. E18 contrasts the synchronous dynamic with the
// asynchronous (sequential-activation) variant. E19 sweeps communication
// noise, an extension of the protocol beyond the paper.

import (
	"fmt"
	"math"

	"repro/internal/dynamics"
	"repro/internal/graph"
	"repro/internal/opinion"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/table"
	"repro/internal/votingdag"
)

// E17Row compares the two estimators at one height.
type E17Row struct {
	T          int
	Forward    stats.Proportion // P(ξ_T(v0) = Blue) by forward simulation
	Backward   stats.Proportion // P(root Blue) by DAG colouring
	Compatible bool             // overlapping 95% intervals
}

// E17Result is the forward/backward duality experiment.
type E17Result struct {
	N, D  int
	Delta float64
	Rows  []E17Row
}

// E17ForwardBackwardDuality estimates the blue probability of a tagged
// vertex after T rounds both ways. The identity is exact (the DAG is the
// dependency structure of the forward process), so the two Monte Carlo
// estimates must agree within confidence intervals at every height.
func E17ForwardBackwardDuality(cfg Config) E17Result {
	n := cfg.MaxN / 2
	d := int(math.Ceil(math.Pow(float64(n), 0.6)))
	if (n*d)%2 != 0 {
		d++
	}
	const delta = 0.1
	src := rng.New(cfg.Seed)
	g := graph.RandomRegular(n, d, src)
	res := E17Result{N: n, D: d, Delta: delta}

	trials := cfg.Trials * 25
	for _, T := range []int{1, 2, 3, 4} {
		fwd := sim.RunOutcomes(trials, cfg.Seed^uint64(100+T), cfg.Workers, func(i int, s *rng.Source) sim.Outcome {
			init := opinion.RandomConfig(n, 0.5-delta, s)
			p, err := dynamics.New(g, dynamics.BestOfThree, init, dynamics.Options{Seed: s.Uint64(), Workers: 1})
			if err != nil {
				panic(err)
			}
			for t := 0; t < T; t++ {
				p.Step()
			}
			return sim.Outcome{Win: p.Config().Get(0) == opinion.Blue}
		})
		bwd := sim.RunOutcomes(trials, cfg.Seed^uint64(200+T), cfg.Workers, func(i int, s *rng.Source) sim.Outcome {
			dag := votingdag.Build(g, 0, T, s)
			leaf := votingdag.RandomLeafColouring(0.5-delta, s)
			return sim.Outcome{Win: dag.Colour(leaf).RootColour() == opinion.Blue}
		})
		f := stats.WilsonInterval(sim.Wins(fwd), trials, 1.96)
		bk := stats.WilsonInterval(sim.Wins(bwd), trials, 1.96)
		res.Rows = append(res.Rows, E17Row{
			T:          T,
			Forward:    f,
			Backward:   bk,
			Compatible: f.Lo <= bk.Hi && bk.Lo <= f.Hi,
		})
	}
	return res
}

// AllCompatible reports whether the two estimators agreed at every height.
func (r E17Result) AllCompatible() bool {
	for _, row := range r.Rows {
		if !row.Compatible {
			return false
		}
	}
	return true
}

// Table renders the result.
func (r E17Result) Table() *table.Table {
	t := table.New(
		fmt.Sprintf("E17 (Section 2 identity): forward P(xi_T(v)=B) vs voting-DAG root, regular n=%d d=%d", r.N, r.D),
		"T", "forward P(B)", "forward CI", "DAG P(B)", "DAG CI", "compatible")
	for _, row := range r.Rows {
		t.AddRow(row.T, row.Forward.P,
			fmt.Sprintf("[%.4f,%.4f]", row.Forward.Lo, row.Forward.Hi),
			row.Backward.P,
			fmt.Sprintf("[%.4f,%.4f]", row.Backward.Lo, row.Backward.Hi),
			row.Compatible)
	}
	return t
}

// E18Row is one activation model.
type E18Row struct {
	Model      string
	MeanRounds float64 // synchronous rounds / asynchronous sweeps
	RedWins    stats.Proportion
}

// E18Result contrasts synchronous rounds with asynchronous sweeps.
type E18Result struct {
	N, D int
	Rows []E18Row
}

// E18AsyncVsSync runs Best-of-Three under both activation models on the
// same dense workload. One asynchronous sweep (n single-vertex updates)
// plays the role of one synchronous round; the asynchronous variant is
// expected to be in the same double-log regime, with a modest constant
// penalty because late updaters see a mix of old and new opinions.
func E18AsyncVsSync(cfg Config) E18Result {
	n := cfg.MaxN
	d := int(math.Ceil(math.Pow(float64(n), 0.6)))
	if (n*d)%2 != 0 {
		d++
	}
	const delta = 0.1
	res := E18Result{N: n, D: d}

	syncOuts := sim.RunOutcomes(cfg.Trials, cfg.Seed+1, cfg.Workers, func(i int, s *rng.Source) sim.Outcome {
		g := graph.RandomRegular(n, d, s)
		init := opinion.RandomConfig(n, 0.5-delta, s)
		p, err := dynamics.New(g, dynamics.BestOfThree, init, dynamics.Options{Seed: s.Uint64(), Workers: 1})
		if err != nil {
			panic(err)
		}
		r := p.RunQuiet(maxRounds)
		return sim.Outcome{Rounds: float64(r.Rounds), Win: r.Consensus && r.Winner == opinion.Red}
	})
	res.Rows = append(res.Rows, E18Row{
		Model:      "synchronous (rounds)",
		MeanRounds: stats.Summarize(sim.RoundsOf(syncOuts)).Mean,
		RedWins:    stats.WilsonInterval(sim.Wins(syncOuts), len(syncOuts), 1.96),
	})

	asyncOuts := sim.RunOutcomes(cfg.Trials, cfg.Seed+2, cfg.Workers, func(i int, s *rng.Source) sim.Outcome {
		g := graph.RandomRegular(n, d, s)
		init := opinion.RandomConfig(n, 0.5-delta, s)
		a, err := dynamics.NewAsync(g, dynamics.BestOfThree, init, s.Uint64())
		if err != nil {
			panic(err)
		}
		r := a.Run(maxRounds)
		return sim.Outcome{Rounds: float64(r.Rounds), Win: r.Consensus && r.Winner == opinion.Red}
	})
	res.Rows = append(res.Rows, E18Row{
		Model:      "asynchronous (sweeps)",
		MeanRounds: stats.Summarize(sim.RoundsOf(asyncOuts)).Mean,
		RedWins:    stats.WilsonInterval(sim.Wins(asyncOuts), len(asyncOuts), 1.96),
	})
	return res
}

// Table renders the result.
func (r E18Result) Table() *table.Table {
	t := table.New(
		fmt.Sprintf("E18 (extension): activation models on regular n=%d d=%d, delta=0.1", r.N, r.D),
		"model", "mean rounds/sweeps", "red wins")
	for _, row := range r.Rows {
		t.AddRow(row.Model, row.MeanRounds, row.RedWins.P)
	}
	return t
}

// E19Row is one noise level.
type E19Row struct {
	Noise         float64
	FinalBlueFrac float64
	RedDominates  stats.Proportion
}

// E19Result is the communication-noise experiment.
type E19Result struct {
	N, D int
	Rows []E19Row
}

// E19NoiseThreshold sweeps the per-sample misreporting probability. The
// noiseless dynamic drives blue mass to 0; with noise η, the all-red state
// leaks ~3η(1−η)² per vertex per round, so the stationary blue mass grows
// with η and majority dominance finally breaks near η = 1/2. The
// experiment locates the practical threshold on a dense graph.
func E19NoiseThreshold(cfg Config) E19Result {
	n := cfg.MaxN
	d := int(math.Ceil(math.Pow(float64(n), 0.6)))
	if (n*d)%2 != 0 {
		d++
	}
	const delta = 0.1
	const rounds = 50
	res := E19Result{N: n, D: d}
	for _, noise := range []float64{0, 0.01, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5} {
		outs := sim.RunOutcomes(cfg.Trials, cfg.Seed+uint64(noise*1000), cfg.Workers, func(i int, s *rng.Source) sim.Outcome {
			g := graph.RandomRegular(n, d, s)
			init := opinion.RandomConfig(n, 0.5-delta, s)
			p, err := dynamics.New(g, dynamics.Rule{K: 3, Noise: noise}, init, dynamics.Options{Seed: s.Uint64(), Workers: 1})
			if err != nil {
				panic(err)
			}
			for t := 0; t < rounds; t++ {
				p.Step()
			}
			frac := p.Config().BlueFraction()
			return sim.Outcome{Rounds: frac, Win: frac < 0.25}
		})
		res.Rows = append(res.Rows, E19Row{
			Noise:         noise,
			FinalBlueFrac: stats.Summarize(sim.RoundsOf(outs)).Mean,
			RedDominates:  stats.WilsonInterval(sim.Wins(outs), len(outs), 1.96),
		})
	}
	return res
}

// Table renders the result.
func (r E19Result) Table() *table.Table {
	t := table.New(
		fmt.Sprintf("E19 (extension): per-sample noise on regular n=%d d=%d, delta=0.1, 50 rounds", r.N, r.D),
		"noise", "final blue frac", "red dominates (<25%% blue)")
	for _, row := range r.Rows {
		t.AddRow(row.Noise, row.FinalBlueFrac, row.RedDominates.P)
	}
	return t
}
