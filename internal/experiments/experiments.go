// Package experiments implements the reproduction suite: one experiment per
// quantitative claim of the paper (see DESIGN.md's per-experiment index).
// Each experiment is a pure function of a Config and returns both the
// structured measurements and a rendered table, so the same code backs the
// cmd/bo3sweep CLI, the root-level benchmarks, and EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"math"

	"repro/internal/dynamics"
	"repro/internal/graph"
	"repro/internal/opinion"
	"repro/internal/rng"
	"repro/internal/sim"
)

// Config scales an experiment. The zero value is not valid; use Default or
// Quick.
type Config struct {
	// Trials is the number of independent repetitions per parameter point.
	Trials int
	// MaxN caps the largest graph size used in sweeps.
	MaxN int
	// Workers bounds harness parallelism (0 = GOMAXPROCS).
	Workers int
	// Seed drives all randomness; fixed seed = identical tables.
	Seed uint64
}

// Default is the configuration used for EXPERIMENTS.md (minutes of CPU on
// a single core).
func Default() Config { return Config{Trials: 40, MaxN: 1 << 13, Seed: 1} }

// Quick is a reduced configuration for benchmarks and smoke tests
// (sub-second per experiment).
func Quick() Config { return Config{Trials: 12, MaxN: 1 << 11, Seed: 1} }

// maxRounds is the per-trial round budget: far above any double-log
// prediction, so hitting it signals non-convergence rather than truncation.
const maxRounds = 4000

// GraphKind selects a topology family for the dynamics experiments.
type GraphKind int

const (
	// KindRegular is a random d-regular graph with d = n^alpha.
	KindRegular GraphKind = iota
	// KindGnp is an Erdős–Rényi graph with p = n^(alpha-1).
	KindGnp
	// KindComplete is the (virtual) complete graph.
	KindComplete
	// KindTorus is the 2D torus (constant degree 4): outside the paper's
	// dense class; used by the density-gate experiment.
	KindTorus
	// KindCycle is the n-cycle (constant degree 2).
	KindCycle
	// KindHypercube is the log n-degree hypercube.
	KindHypercube
)

// String implements fmt.Stringer.
func (k GraphKind) String() string {
	switch k {
	case KindRegular:
		return "regular"
	case KindGnp:
		return "gnp"
	case KindComplete:
		return "complete"
	case KindTorus:
		return "torus"
	case KindCycle:
		return "cycle"
	case KindHypercube:
		return "hypercube"
	default:
		return fmt.Sprintf("GraphKind(%d)", int(k))
	}
}

// makeGraph builds a family member with n vertices and density exponent
// alpha (ignored by the constant-degree and complete families). The
// returned topology satisfies dynamics.Topology.
func makeGraph(kind GraphKind, n int, alpha float64, src *rng.Source) dynamics.Topology {
	switch kind {
	case KindRegular:
		d := int(math.Ceil(math.Pow(float64(n), alpha)))
		if d >= n {
			return graph.NewKn(n)
		}
		if (n*d)%2 != 0 {
			d++
		}
		if d >= n {
			return graph.NewKn(n)
		}
		return graph.RandomRegular(n, d, src)
	case KindGnp:
		p := math.Pow(float64(n), alpha-1)
		// Keep expected min degree comfortably positive: p >= 8 ln n / n.
		if min := 8 * math.Log(float64(n)) / float64(n); p < min {
			p = min
		}
		for {
			g := graph.Gnp(n, p, src)
			if g.MinDegree() > 0 {
				return g
			}
		}
	case KindComplete:
		return graph.NewKn(n)
	case KindTorus:
		side := int(math.Round(math.Sqrt(float64(n))))
		if side < 3 {
			side = 3
		}
		return graph.Torus2D(side, side)
	case KindCycle:
		if n < 3 {
			n = 3
		}
		return graph.Cycle(n)
	case KindHypercube:
		dim := int(math.Round(math.Log2(float64(n))))
		if dim < 2 {
			dim = 2
		}
		return graph.Hypercube(dim)
	default:
		panic(fmt.Sprintf("experiments: unknown graph kind %d", int(kind)))
	}
}

// runConsensusTrials measures Best-of-k consensus on fresh graphs: each
// trial generates its own graph (for random families), draws the initial
// configuration with P(blue) = 1/2 − δ, and runs to consensus or the round
// budget. The Outcome's Rounds is the consensus time (maxRounds when the
// budget is exhausted) and Win reports red consensus.
func runConsensusTrials(cfg Config, kind GraphKind, n int, alpha, delta float64, rule dynamics.Rule, budget int) []sim.Outcome {
	if budget <= 0 {
		budget = maxRounds
	}
	return sim.RunOutcomes(cfg.Trials, cfg.Seed, cfg.Workers, func(i int, src *rng.Source) sim.Outcome {
		g := makeGraph(kind, n, alpha, src)
		init := opinion.RandomConfig(g.N(), 0.5-delta, src)
		p, err := dynamics.New(g, rule, init, dynamics.Options{Seed: src.Uint64(), Workers: 1})
		if err != nil {
			panic(err) // experiment configs are validated by construction
		}
		res := p.RunQuiet(budget)
		return sim.Outcome{
			Rounds: float64(res.Rounds),
			Win:    res.Consensus && res.Winner == opinion.Red,
		}
	})
}
