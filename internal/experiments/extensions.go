package experiments

// Extension experiments beyond the paper's headline claims: the q-opinion
// plurality setting of reference [2] (E14), stubborn always-Blue zealots —
// the forward-dynamic realisation of the Sprinkling adversary (E15) — and
// adversarial initial placement, the setting of reference [5] that the
// paper explicitly contrasts with its i.i.d. hypothesis (E16).

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/dynamics"
	"repro/internal/graph"
	"repro/internal/opinion"
	"repro/internal/plurality"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/table"
)

// E14Row is one q point of the plurality experiment.
type E14Row struct {
	Q             int
	Share0        float64
	MeanRounds    float64
	PluralityWins stats.Proportion
}

// E14Result is the q-opinion plurality-consensus experiment.
type E14Result struct {
	N    int
	Rows []E14Row
}

// E14PluralityConsensus runs the q-opinion Best-of-Three dynamic on a
// complete graph with opinion 0 holding a constant relative advantage, and
// measures consensus time and the plurality win rate as q grows: the
// q = 2 row is the paper's setting; larger q reproduces the shape of [2]
// (slower consensus, plurality still winning given the advantage).
func E14PluralityConsensus(cfg Config) E14Result {
	n := cfg.MaxN
	res := E14Result{N: n}
	for _, q := range []int{2, 3, 5, 8, 12} {
		// Opinion 0 gets 1.5x the balanced share.
		share0 := math.Min(0.9, 1.5/float64(q))
		outs := sim.RunOutcomes(cfg.Trials, cfg.Seed+uint64(q), cfg.Workers, func(i int, src *rng.Source) sim.Outcome {
			init := plurality.RandomBiasedConfig(n, q, share0, src)
			p, err := plurality.New(graph.NewKn(n), init, plurality.Options{
				Seed: src.Uint64(), Tie: plurality.TieRandomSample, Workers: 1,
			})
			if err != nil {
				panic(err)
			}
			r := p.Run(maxRounds)
			return sim.Outcome{Rounds: float64(r.Rounds), Win: r.Consensus && r.Winner == 0}
		})
		res.Rows = append(res.Rows, E14Row{
			Q:             q,
			Share0:        share0,
			MeanRounds:    stats.Summarize(sim.RoundsOf(outs)).Mean,
			PluralityWins: stats.WilsonInterval(sim.Wins(outs), len(outs), 1.96),
		})
	}
	return res
}

// RoundsIncreaseWithQ reports whether mean rounds grow monotonically-ish
// (allowing one inversion) across the q sweep.
func (r E14Result) RoundsIncreaseWithQ() bool {
	inversions := 0
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].MeanRounds < r.Rows[i-1].MeanRounds {
			inversions++
		}
	}
	return inversions <= 1
}

// Table renders the result.
func (r E14Result) Table() *table.Table {
	t := table.New(
		fmt.Sprintf("E14 (extension, ref [2]): q-opinion plurality on K_%d, opinion 0 at 1.5x balanced share", r.N),
		"q", "share of op 0", "mean rounds", "plurality wins")
	for _, row := range r.Rows {
		t.AddRow(row.Q, row.Share0, row.MeanRounds, row.PluralityWins.P)
	}
	return t
}

// E15Row is one zealot-count point.
type E15Row struct {
	StubbornBlue  int
	StubbornFrac  float64
	FinalBlueFrac float64 // mean final blue fraction (excluding consensus impossibility)
	RedDominates  stats.Proportion
}

// E15Result is the stubborn-zealot experiment.
type E15Result struct {
	N, D int
	Rows []E15Row
}

// E15StubbornZealots plants f permanently-Blue vertices in a red-majority
// dense graph and measures the final blue mass: the forward analogue of the
// Sprinkling process's artificial Blue vertices. The paper's machinery
// tolerates ~ε·n ≈ 3^T·n/d artificial blues; the dynamic correspondingly
// absorbs small zealot sets without losing the red majority, while a
// zealot mass comparable to δ·n flips the outcome.
func E15StubbornZealots(cfg Config) E15Result {
	n := cfg.MaxN
	d := int(math.Ceil(math.Pow(float64(n), 0.6)))
	if (n*d)%2 != 0 {
		d++
	}
	const delta = 0.1
	const rounds = 60
	res := E15Result{N: n, D: d}
	for _, frac := range []float64{0, 0.001, 0.01, 0.05, 0.1, 0.2} {
		f := int(frac * float64(n))
		outs := sim.RunOutcomes(cfg.Trials, cfg.Seed+uint64(f), cfg.Workers, func(i int, src *rng.Source) sim.Outcome {
			g := graph.RandomRegular(n, d, src)
			init := opinion.RandomConfig(n, 0.5-delta, src)
			stub := make([]int, f)
			for j := range stub {
				stub[j] = src.Intn(n) // duplicates fine; set semantics below
				init.Set(stub[j], opinion.Blue)
			}
			p, err := dynamics.NewStubborn(g, dynamics.BestOfThree, init, stub, dynamics.Options{
				Seed: src.Uint64(), Workers: 1,
			})
			if err != nil {
				panic(err)
			}
			r := p.Run(rounds)
			final := float64(r.BlueTrajectory[len(r.BlueTrajectory)-1]) / float64(n)
			return sim.Outcome{Rounds: final, Win: final < 0.5}
		})
		finals := sim.RoundsOf(outs)
		res.Rows = append(res.Rows, E15Row{
			StubbornBlue:  f,
			StubbornFrac:  frac,
			FinalBlueFrac: stats.Summarize(finals).Mean,
			RedDominates:  stats.WilsonInterval(sim.Wins(outs), len(outs), 1.96),
		})
	}
	return res
}

// Table renders the result.
func (r E15Result) Table() *table.Table {
	t := table.New(
		fmt.Sprintf("E15 (extension, Sprinkling adversary): stubborn blue zealots on regular n=%d d=%d, delta=0.1", r.N, r.D),
		"zealots", "zealot frac", "final blue frac", "red majority holds")
	for _, row := range r.Rows {
		t.AddRow(row.StubbornBlue, row.StubbornFrac, row.FinalBlueFrac, row.RedDominates.P)
	}
	return t
}

// E16Row is one (placement, topology) cell.
type E16Row struct {
	Kind       GraphKind
	Placement  string
	MeanRounds float64
	RedWins    stats.Proportion
}

// E16Result is the adversarial-placement experiment.
type E16Result struct {
	N         int
	BlueCount int
	Rows      []E16Row
}

// E16AdversarialPlacement fixes the *number* of blue vertices (the
// adversarial model of Cooper et al. [5]) and compares i.i.d.-equivalent
// random placement against an adversarially clustered placement (blues
// packed into a ball around a vertex). On dense regular graphs placement
// barely matters — one round mixes the samples — while on the sparse torus
// a clustered minority survives far longer, illustrating why the paper's
// i.i.d. hypothesis and density assumption buy the double-log speed that
// adversarial analyses cannot.
func E16AdversarialPlacement(cfg Config) E16Result {
	n := cfg.MaxN
	const blueFrac = 0.4
	blueCount := int(blueFrac * float64(n))
	res := E16Result{N: n, BlueCount: blueCount}
	budget := maxRounds
	for _, kind := range []GraphKind{KindRegular, KindTorus} {
		for _, placement := range []string{"random", "clustered"} {
			placement := placement
			outs := sim.RunOutcomes(cfg.Trials, cfg.Seed+uint64(len(res.Rows)), cfg.Workers, func(i int, src *rng.Source) sim.Outcome {
				g := makeGraph(kind, n, 0.6, src)
				init := placeBlues(g, blueCount, placement == "clustered", src)
				p, err := dynamics.New(g, dynamics.BestOfThree, init, dynamics.Options{Seed: src.Uint64(), Workers: 1})
				if err != nil {
					panic(err)
				}
				r := p.RunQuiet(budget)
				return sim.Outcome{Rounds: float64(r.Rounds), Win: r.Consensus && r.Winner == opinion.Red}
			})
			res.Rows = append(res.Rows, E16Row{
				Kind:       kind,
				Placement:  placement,
				MeanRounds: stats.Summarize(sim.RoundsOf(outs)).Mean,
				RedWins:    stats.WilsonInterval(sim.Wins(outs), len(outs), 1.96),
			})
		}
	}
	return res
}

// placeBlues colours exactly count vertices blue: uniformly at random, or
// clustered as a BFS ball around a random centre.
func placeBlues(g dynamics.Topology, count int, clustered bool, src *rng.Source) *opinion.Config {
	n := g.N()
	init := opinion.NewConfig(n)
	if count >= n {
		init.FillBlue()
		return init
	}
	if !clustered {
		// Partial Fisher-Yates over vertex ids.
		perm := src.Perm(n)
		for _, v := range perm[:count] {
			init.Set(v, opinion.Blue)
		}
		return init
	}
	// BFS ball from a random centre until count vertices are collected.
	centre := src.Intn(n)
	seen := make([]bool, n)
	queue := []int{centre}
	seen[centre] = true
	collected := 0
	for len(queue) > 0 && collected < count {
		v := queue[0]
		queue = queue[1:]
		init.Set(v, opinion.Blue)
		collected++
		deg := g.Degree(v)
		// Deterministic neighbour order keeps the ball compact.
		nbrs := make([]int, deg)
		for i := 0; i < deg; i++ {
			nbrs[i] = g.Neighbor(v, i)
		}
		sort.Ints(nbrs)
		for _, w := range nbrs {
			if !seen[w] {
				seen[w] = true
				queue = append(queue, w)
			}
		}
	}
	return init
}

// SlowdownOnTorus returns mean rounds clustered/random on the torus, the
// experiment's headline ratio.
func (r E16Result) SlowdownOnTorus() float64 {
	var clustered, random float64
	for _, row := range r.Rows {
		if row.Kind != KindTorus {
			continue
		}
		if row.Placement == "clustered" {
			clustered = row.MeanRounds
		} else {
			random = row.MeanRounds
		}
	}
	if random == 0 {
		return math.NaN()
	}
	return clustered / random
}

// Table renders the result.
func (r E16Result) Table() *table.Table {
	t := table.New(
		fmt.Sprintf("E16 (extension, ref [5] contrast): placement of %d blues on n=%d", r.BlueCount, r.N),
		"family", "placement", "mean rounds", "red wins")
	for _, row := range r.Rows {
		t.AddRow(row.Kind.String(), row.Placement, row.MeanRounds, row.RedWins.P)
	}
	return t
}
