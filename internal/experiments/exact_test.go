package experiments

import "testing"

func TestE20ExactValidation(t *testing.T) {
	res := E20ExactChainValidation(quickCfg())
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if !res.AllWithinIntervals() {
		t.Errorf("simulator disagrees with the exact chain:\n%s", res.Table())
	}
	for _, row := range res.Rows {
		// Exact values themselves: symmetric start near 1/2, strong red
		// advantage from pBlue < 1/2 at large n.
		if row.PBlue == 0.5 && (row.ExactRedWin < 0.4 || row.ExactRedWin > 0.65) {
			t.Errorf("n=%d symmetric exact red win %v", row.N, row.ExactRedWin)
		}
		// At these small n the initial binomial sample flips the majority
		// with probability ~Φ(−2δ√n/1): e.g. the exact value at n = 256,
		// pBlue = 0.45 is 0.884. Demand a clear advantage, not w.h.p.
		if row.PBlue <= 0.47 && row.PBlue < 0.5 && row.N >= 256 && row.ExactRedWin < 0.8 {
			t.Errorf("n=%d pBlue=%v exact red win %v", row.N, row.PBlue, row.ExactRedWin)
		}
		// Mean rounds double-log-ish in both columns.
		if row.ExactMeanT > 25 || row.SimMeanT > 25 {
			t.Errorf("n=%d mean rounds exact %v sim %v", row.N, row.ExactMeanT, row.SimMeanT)
		}
	}
}

func TestE21ConditionCoverage(t *testing.T) {
	res := E21SpectralComparison(quickCfg())
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	byName := map[string]E21Row{}
	for _, row := range res.Rows {
		byName[row.Graph] = row
	}
	dense := byName["dense regular (n^0.6)"]
	if !dense.DensityHolds {
		t.Errorf("dense instance fails the density condition: %+v", dense)
	}
	if dense.RedWins.P < 0.9 || dense.MeanRounds > 40 {
		t.Errorf("dense instance did not converge fast: %+v", dense)
	}
	// The torus satisfies neither condition and is slow.
	torus := byName["torus"]
	if torus.DensityHolds || torus.SpectralHolds {
		t.Errorf("torus should satisfy neither condition: %+v", torus)
	}
	if torus.MeanRounds < 2*dense.MeanRounds {
		t.Errorf("torus (%.1f) not clearly slower than dense (%.1f)", torus.MeanRounds, dense.MeanRounds)
	}
	// The constant-degree expander fails the paper's density condition but
	// has a real spectral gap (lambda2 bounded away from 1).
	exp := byName["expander (d=16)"]
	if exp.DensityHolds {
		t.Errorf("constant-degree expander should fail the density condition: %+v", exp)
	}
	if exp.Lambda2 > 0.9 {
		t.Errorf("expander lambda2 = %v, want a gap", exp.Lambda2)
	}
}
