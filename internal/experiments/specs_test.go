package experiments

import (
	"testing"

	"repro/spec"
)

// TestGridsAreServable: every registry grid validates, stays under the
// server's default sweep cap, and expands into cells that pass the same
// admission limits bo3serve applies — so `bo3sweep -serve -grid <id>` can
// never submit a grid the server rejects.
func TestGridsAreServable(t *testing.T) {
	limits := spec.Limits{MaxN: 1 << 22, MaxEdges: 1 << 27, MaxTrials: 4096, MaxRounds: 1 << 20}
	const maxSweepCells = 4096
	for _, cfg := range []Config{Quick(), Default()} {
		for id, grid := range Grids(cfg) {
			grid.Normalize()
			if err := grid.Validate(); err != nil {
				t.Errorf("%s: grid invalid: %v", id, err)
				continue
			}
			count, err := grid.CellCount()
			if err != nil || count == 0 || count > maxSweepCells {
				t.Errorf("%s: cell count %d, err %v", id, count, err)
				continue
			}
			cells := grid.Expand(cfg.Seed, 0)
			if len(cells) != count {
				t.Errorf("%s: expanded %d cells, count says %d", id, len(cells), count)
			}
			for i := range cells {
				if err := cells[i].ValidateLimits(limits); err != nil {
					t.Errorf("%s: cell %d: %v", id, i, err)
					break
				}
			}
		}
	}
	if ids := GridIDs(Quick()); len(ids) == 0 {
		t.Error("no sweepable grids registered")
	}
}

// TestLoadTestGrid: n-parameterised templates cross the size axis;
// fixed-size families drop it.
func TestLoadTestGrid(t *testing.T) {
	rr := LoadTestGrid(spec.GraphSpec{Family: "random-regular", D: 32, Seed: 1}, true, 8)
	if len(rr.NS) == 0 || len(rr.Deltas) == 0 || rr.Trials[0] != 8 {
		t.Errorf("load-test grid malformed: %+v", rr)
	}
	sbm := LoadTestGrid(spec.GraphSpec{Family: "sbm", A: 256, B: 256, PIn: 0.1, POut: 0.02, Seed: 1}, true, 4)
	if len(sbm.NS) != 0 {
		t.Errorf("sbm template kept the NS axis: %+v", sbm)
	}
	if err := sbm.Validate(); err != nil {
		t.Errorf("sbm load-test grid invalid: %v", err)
	}
}
