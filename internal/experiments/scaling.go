package experiments

import (
	"fmt"
	"math"

	"repro/internal/dynamics"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/table"
	"repro/internal/theory"
)

// E1Row is one parameter point of the consensus-scaling experiment.
type E1Row struct {
	Kind              GraphKind
	N                 int
	Alpha, Delta      float64
	MeanRounds        float64
	MaxRounds         float64
	RedWins           stats.Proportion
	PredictedRounds   int
	LogLogN           float64
	RoundsPerLogLogN  float64
	ConsensusFraction float64
}

// E1Result is the Theorem 1 headline experiment: consensus time versus n on
// dense families.
type E1Result struct {
	Rows []E1Row
}

// E1ConsensusScaling sweeps n over powers of two on the dense families and
// measures Best-of-Three consensus time and the red win rate, against the
// Theorem 1 prediction O(log log n + log δ⁻¹).
func E1ConsensusScaling(cfg Config) E1Result {
	const alpha, delta = 0.6, 0.05
	var res E1Result
	for _, kind := range []GraphKind{KindRegular, KindGnp, KindComplete} {
		for n := 1 << 10; n <= cfg.MaxN; n <<= 1 {
			outs := runConsensusTrials(cfg, kind, n, alpha, delta, dynamics.BestOfThree, 0)
			rounds := sim.RoundsOf(outs)
			sum := stats.Summarize(rounds)
			lln := math.Log(math.Log(float64(n)))
			row := E1Row{
				Kind:              kind,
				N:                 n,
				Alpha:             alpha,
				Delta:             delta,
				MeanRounds:        sum.Mean,
				MaxRounds:         sum.Max,
				RedWins:           stats.WilsonInterval(sim.Wins(outs), len(outs), 1.96),
				PredictedRounds:   theory.PredictedRounds(n, math.Pow(float64(n), alpha), delta),
				LogLogN:           lln,
				RoundsPerLogLogN:  sum.Mean / lln,
				ConsensusFraction: consensusFraction(rounds),
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res
}

func consensusFraction(rounds []float64) float64 {
	if len(rounds) == 0 {
		return 0
	}
	ok := 0
	for _, r := range rounds {
		if r < maxRounds {
			ok++
		}
	}
	return float64(ok) / float64(len(rounds))
}

// FitExponent fits rounds ~ c·(log log n)^e over the rows of one kind; an
// exponent near 1 (and far below what a log n fit would need) supports the
// double-logarithmic claim.
func (r E1Result) FitExponent(kind GraphKind) (exponent, r2 float64) {
	var xs, ys []float64
	for _, row := range r.Rows {
		if row.Kind == kind && row.MeanRounds > 0 {
			xs = append(xs, row.LogLogN)
			ys = append(ys, row.MeanRounds)
		}
	}
	e, _, rr := stats.FitPower(xs, ys)
	return e, rr
}

// Table renders the result.
func (r E1Result) Table() *table.Table {
	t := table.New(
		"E1 (Theorem 1): Best-of-3 consensus time vs n, delta=0.05, d=n^0.6",
		"family", "n", "mean rounds", "max rounds", "pred rounds", "rounds/loglog n", "red wins", "95% CI")
	for _, row := range r.Rows {
		t.AddRow(row.Kind.String(), row.N, row.MeanRounds, row.MaxRounds,
			row.PredictedRounds, row.RoundsPerLogLogN, row.RedWins.P,
			fmt.Sprintf("[%.3f,%.3f]", row.RedWins.Lo, row.RedWins.Hi))
	}
	return t
}

// E2Row is one δ point of the imbalance sweep.
type E2Row struct {
	Delta      float64
	LogInvD    float64
	MeanRounds float64
	RedWins    stats.Proportion
	Predicted  int
}

// E2Result measures the additive O(log δ⁻¹) term of Theorem 1.
type E2Result struct {
	N     int
	Alpha float64
	Rows  []E2Row
}

// E2DeltaSweep fixes a dense graph size and sweeps the initial imbalance δ
// downwards; mean consensus time should grow like log δ⁻¹ (linear in the
// LogInvD column), not explode.
func E2DeltaSweep(cfg Config) E2Result {
	n := cfg.MaxN
	const alpha = 0.6
	res := E2Result{N: n, Alpha: alpha}
	for _, delta := range []float64{0.2, 0.1, 0.05, 0.02, 0.01, 0.005} {
		outs := runConsensusTrials(cfg, KindRegular, n, alpha, delta, dynamics.BestOfThree, 0)
		res.Rows = append(res.Rows, E2Row{
			Delta:      delta,
			LogInvD:    math.Log(1 / delta),
			MeanRounds: stats.Summarize(sim.RoundsOf(outs)).Mean,
			RedWins:    stats.WilsonInterval(sim.Wins(outs), len(outs), 1.96),
			Predicted:  theory.PredictedRounds(n, math.Pow(float64(n), alpha), delta),
		})
	}
	return res
}

// SlopePerLogInvDelta fits mean rounds against log δ⁻¹ and returns the
// slope: Theorem 1 predicts a bounded positive slope (each 5/4-growth step
// buys a constant factor of δ).
func (r E2Result) SlopePerLogInvDelta() stats.LinearFit {
	var xs, ys []float64
	for _, row := range r.Rows {
		xs = append(xs, row.LogInvD)
		ys = append(ys, row.MeanRounds)
	}
	return stats.FitLine(xs, ys)
}

// Table renders the result.
func (r E2Result) Table() *table.Table {
	t := table.New(
		fmt.Sprintf("E2 (Theorem 1, delta term): rounds vs delta on regular n=%d d=n^%.1f", r.N, r.Alpha),
		"delta", "log(1/delta)", "mean rounds", "pred rounds", "red wins")
	for _, row := range r.Rows {
		t.AddRow(row.Delta, row.LogInvD, row.MeanRounds, row.Predicted, row.RedWins.P)
	}
	return t
}
