package experiments

import (
	"fmt"
	"math"

	"repro/internal/dynamics"
	"repro/internal/graph"
	"repro/internal/opinion"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/table"
	"repro/internal/theory"
)

// E3Row compares one round of the empirical complete-graph trajectory with
// equation (1).
type E3Row struct {
	Round          int
	EmpiricalBlue  float64 // mean blue fraction over trials
	RecursionBlue  float64 // b_t from eq. (1)
	AbsError       float64
	EmpiricalStdev float64
}

// E3Result is the ideal-recursion tracking experiment.
type E3Result struct {
	N     int
	Delta float64
	Rows  []E3Row
}

// E3IdealRecursion runs Best-of-Three on a large complete graph and checks
// that the per-round blue fraction tracks b_t = 3b² − 2b³ (equation 1): on
// K_n every vertex samples from the same pool, so the voting-DAG is a tree
// in the limit and the recursion is exact up to O(1/√n) fluctuations.
func E3IdealRecursion(cfg Config) E3Result {
	n := cfg.MaxN * 4 // complete graphs are virtual; larger n tightens concentration
	const delta = 0.1
	const rounds = 12
	res := E3Result{N: n, Delta: delta}

	// Collect per-round blue fractions across trials. Trials run
	// sequentially; each Process parallelises its own rounds internally.
	perRound := make([][]float64, rounds+1)
	for t := range perRound {
		perRound[t] = make([]float64, 0, cfg.Trials)
	}
	// The recursion checks here (and in E8/E13/E20) validate the
	// per-vertex sampling engine against analytic ground truth, so they
	// force EngineGeneral: the mean-field fast path draws from the same
	// kernel the recursion computes, which would make the comparison
	// circular.
	for i := 0; i < cfg.Trials; i++ {
		src := rng.NewFrom(cfg.Seed, uint64(i))
		g := graph.NewKn(n)
		init := opinion.RandomConfig(n, 0.5-delta, src)
		p, err := dynamics.New(g, dynamics.BestOfThree, init, dynamics.Options{Seed: src.Uint64(), Workers: 0, Engine: dynamics.EngineGeneral})
		if err != nil {
			panic(err)
		}
		r := p.Run(rounds)
		for t := 0; t <= rounds; t++ {
			var frac float64
			if t < len(r.BlueTrajectory) {
				frac = float64(r.BlueTrajectory[t]) / float64(n)
			} // consensus before round t: blue fraction is 0 (red won)
			perRound[t] = append(perRound[t], frac)
		}
	}

	pred := theory.IdealRecursion(0.5-delta, rounds)
	for t := 0; t <= rounds; t++ {
		sum := stats.Summarize(perRound[t])
		res.Rows = append(res.Rows, E3Row{
			Round:          t,
			EmpiricalBlue:  sum.Mean,
			RecursionBlue:  pred[t],
			AbsError:       math.Abs(sum.Mean - pred[t]),
			EmpiricalStdev: sum.Std,
		})
	}
	return res
}

// MaxAbsError returns the largest |empirical − recursion| across rounds.
func (r E3Result) MaxAbsError() float64 {
	max := 0.0
	for _, row := range r.Rows {
		if row.AbsError > max {
			max = row.AbsError
		}
	}
	return max
}

// Table renders the result.
func (r E3Result) Table() *table.Table {
	t := table.New(
		fmt.Sprintf("E3 (equation 1): complete-graph blue fraction vs recursion, n=%d delta=%.2f", r.N, r.Delta),
		"round", "empirical b_t", "recursion b_t", "|error|", "stdev")
	for _, row := range r.Rows {
		t.AddRow(row.Round, row.EmpiricalBlue, row.RecursionBlue, row.AbsError, row.EmpiricalStdev)
	}
	return t
}

// E8Row is one step of the δ-growth comparison.
type E8Row struct {
	Round          int
	EmpiricalDelta float64
	RecursionDelta float64
	GrowthFactor   float64 // empirical δ_t/δ_{t−1}
}

// E8Result verifies the (5/4)-growth phase of equations (4)–(5).
type E8Result struct {
	N    int
	Rows []E8Row
}

// E8DeltaGrowth measures the per-round growth of δ_t = 1/2 − b_t on a
// complete graph started at small δ, against the recursion
// δ ← δ + δ/2 − 2δ³ (ε = 0 on K_n) and the 5/4 lower bound.
func E8DeltaGrowth(cfg Config) E8Result {
	n := cfg.MaxN * 4
	const delta0 = 0.02
	const rounds = 14
	res := E8Result{N: n}

	perRound := make([]float64, rounds+1)
	for i := 0; i < cfg.Trials; i++ {
		src := rng.NewFrom(cfg.Seed, uint64(i))
		init := opinion.RandomConfig(n, 0.5-delta0, src)
		p, err := dynamics.New(graph.NewKn(n), dynamics.BestOfThree, init, dynamics.Options{Seed: src.Uint64(), Workers: 0, Engine: dynamics.EngineGeneral})
		if err != nil {
			panic(err)
		}
		r := p.Run(rounds)
		for t := 0; t <= rounds; t++ {
			frac := 0.0
			if t < len(r.BlueTrajectory) {
				frac = float64(r.BlueTrajectory[t]) / float64(n)
			}
			perRound[t] += 0.5 - frac
		}
	}
	for t := range perRound {
		perRound[t] /= float64(cfg.Trials)
	}

	recDelta := delta0
	for t := 0; t <= rounds; t++ {
		row := E8Row{Round: t, EmpiricalDelta: perRound[t], RecursionDelta: recDelta}
		if t > 0 && perRound[t-1] > 1e-9 {
			row.GrowthFactor = perRound[t] / perRound[t-1]
		}
		res.Rows = append(res.Rows, row)
		recDelta = theory.DeltaStep(recDelta, 0)
		if recDelta > 0.5 {
			recDelta = 0.5
		}
	}
	return res
}

// MinGrowthBelowFixedPoint returns the smallest empirical growth factor
// among rounds where δ was below the fixed point 1/(2√3) (and above noise).
func (r E8Result) MinGrowthBelowFixedPoint() float64 {
	min := math.Inf(1)
	for _, row := range r.Rows {
		if row.Round == 0 || row.GrowthFactor == 0 {
			continue
		}
		prev := r.Rows[row.Round-1].EmpiricalDelta
		if prev > 0.005 && prev < theory.DeltaFixedPoint {
			if row.GrowthFactor < min {
				min = row.GrowthFactor
			}
		}
	}
	return min
}

// Table renders the result.
func (r E8Result) Table() *table.Table {
	t := table.New(
		fmt.Sprintf("E8 (equations 4-5): delta growth on complete graph, n=%d", r.N),
		"round", "empirical delta", "recursion delta", "growth factor")
	for _, row := range r.Rows {
		t.AddRow(row.Round, row.EmpiricalDelta, row.RecursionDelta, row.GrowthFactor)
	}
	return t
}

// E13Row is one phase of the Lemma 4 schedule comparison.
type E13Row struct {
	Phase     string
	Predicted int
	Measured  int
}

// E13Result compares the Lemma 4 phase schedule with measured phase
// boundaries of a complete-graph trajectory.
type E13Result struct {
	N     int
	Delta float64
	Rows  []E13Row
}

// E13PhaseSchedule segments the measured mean trajectory into the paper's
// three phases — growth (δ below the fixed point), collapse (blue fraction
// falling to ~1/d), finish (to zero) — and compares each length with the
// Schedule prediction.
func E13PhaseSchedule(cfg Config) E13Result {
	n := cfg.MaxN * 4
	const delta0 = 0.02
	res := E13Result{N: n, Delta: delta0}
	d := float64(n - 1) // complete graph degree

	const rounds = 40
	traj := make([]float64, rounds+1)
	for i := 0; i < cfg.Trials; i++ {
		src := rng.NewFrom(cfg.Seed, uint64(i))
		init := opinion.RandomConfig(n, 0.5-delta0, src)
		p, err := dynamics.New(graph.NewKn(n), dynamics.BestOfThree, init, dynamics.Options{Seed: src.Uint64(), Workers: 0, Engine: dynamics.EngineGeneral})
		if err != nil {
			panic(err)
		}
		r := p.Run(rounds)
		for t := 0; t <= rounds; t++ {
			frac := 0.0
			if t < len(r.BlueTrajectory) {
				frac = float64(r.BlueTrajectory[t]) / float64(n)
			}
			traj[t] += frac
		}
	}
	for t := range traj {
		traj[t] /= float64(cfg.Trials)
	}

	// Measured boundaries.
	growthEnd := rounds
	for t, b := range traj {
		if 0.5-b >= theory.DeltaFixedPoint {
			growthEnd = t
			break
		}
	}
	collapseEnd := rounds
	for t := growthEnd; t <= rounds; t++ {
		if traj[t] <= 12.0/d {
			collapseEnd = t
			break
		}
	}
	finishEnd := rounds
	for t := collapseEnd; t <= rounds; t++ {
		if traj[t] <= 1e-9 {
			finishEnd = t
			break
		}
	}

	sched := theory.Schedule(d, delta0, 1)
	res.Rows = []E13Row{
		{Phase: "growth (T3)", Predicted: sched.T3, Measured: growthEnd},
		{Phase: "collapse (T2)", Predicted: sched.T2, Measured: collapseEnd - growthEnd},
		{Phase: "finish (T1)", Predicted: sched.T1, Measured: finishEnd - collapseEnd},
		{Phase: "total", Predicted: sched.Total, Measured: finishEnd},
	}
	return res
}

// Table renders the result.
func (r E13Result) Table() *table.Table {
	t := table.New(
		fmt.Sprintf("E13 (Lemma 4): phase schedule vs measured boundaries, complete n=%d delta=%.2f", r.N, r.Delta),
		"phase", "predicted rounds", "measured rounds")
	for _, row := range r.Rows {
		t.AddRow(row.Phase, row.Predicted, row.Measured)
	}
	return t
}
