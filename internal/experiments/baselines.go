package experiments

import (
	"fmt"
	"math"

	"repro/internal/cobra"
	"repro/internal/dynamics"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/table"
	"repro/internal/votingdag"
)

// E9Row is one protocol on one topology.
type E9Row struct {
	Rule        string
	Kind        GraphKind
	N           int
	MeanRounds  float64
	RedWins     stats.Proportion
	ConsensusOK float64 // fraction of trials reaching consensus in budget
}

// E9Result compares Best-of-1/2/3/5 on the same workloads.
type E9Result struct {
	Delta float64
	Rows  []E9Row
}

// E9BaselineComparison reproduces the introduction's comparison: the voter
// model (Best-of-1) reaches consensus slowly and wins only in proportion to
// the initial share, while Best-of-2/3 amplify the majority and converge in
// double-log time.
func E9BaselineComparison(cfg Config) E9Result {
	const delta = 0.1
	res := E9Result{Delta: delta}
	n := cfg.MaxN
	rules := []dynamics.Rule{dynamics.Voter, dynamics.BestOfTwo, dynamics.BestOfThree, {K: 5}}
	// The voter model needs Θ(n) rounds on dense graphs; cap its budget so
	// the experiment terminates and report the consensus fraction honestly.
	budgets := map[int]int{1: 6 * n, 2: maxRounds, 3: maxRounds, 5: maxRounds}
	for _, kind := range []GraphKind{KindComplete, KindRegular} {
		for _, rule := range rules {
			// The voter model needs ~n rounds per trial (coalescing time),
			// three orders of magnitude more work than Best-of-k; a quarter
			// of the trials keeps its row affordable without blurring the
			// orders-of-magnitude comparison.
			ruleCfg := cfg
			if rule.K == 1 {
				ruleCfg.Trials = max(6, cfg.Trials/4)
			}
			outs := runConsensusTrials(ruleCfg, kind, n, 0.6, delta, rule, budgets[rule.K])
			consensus := 0
			for _, o := range outs {
				if o.Rounds < float64(budgets[rule.K]) {
					consensus++
				}
			}
			res.Rows = append(res.Rows, E9Row{
				Rule:        rule.Name(),
				Kind:        kind,
				N:           n,
				MeanRounds:  stats.Summarize(sim.RoundsOf(outs)).Mean,
				RedWins:     stats.WilsonInterval(sim.Wins(outs), len(outs), 1.96),
				ConsensusOK: float64(consensus) / float64(len(outs)),
			})
		}
	}
	return res
}

// MeanRoundsFor returns the mean rounds of one (rule, kind) row, or NaN.
func (r E9Result) MeanRoundsFor(rule string, kind GraphKind) float64 {
	for _, row := range r.Rows {
		if row.Rule == rule && row.Kind == kind {
			return row.MeanRounds
		}
	}
	return math.NaN()
}

// Table renders the result.
func (r E9Result) Table() *table.Table {
	t := table.New(
		fmt.Sprintf("E9 (baselines): protocol comparison at delta=%.2f", r.Delta),
		"protocol", "family", "n", "mean rounds", "red wins", "consensus frac")
	for _, row := range r.Rows {
		t.AddRow(row.Rule, row.Kind.String(), row.N, row.MeanRounds, row.RedWins.P, row.ConsensusOK)
	}
	return t
}

// E10Row is one topology of the density-gate experiment.
type E10Row struct {
	Kind       GraphKind
	N          int
	MinDegree  int
	Alpha      float64
	MeanRounds float64
	RedWins    stats.Proportion
	DenseClass bool // does the paper's density condition hold?
}

// E10Result is the density-gate experiment: Theorem 1's d = n^Ω(1/loglog n)
// requirement.
type E10Result struct {
	Rows []E10Row
}

// E10DensityGate runs Best-of-Three at the same (n, δ) on graphs inside and
// outside the paper's dense class. Dense graphs must finish in near-double-
// log rounds with red winning; constant-degree graphs converge much more
// slowly (and on the cycle, often to the wrong opinion locally — blue
// enclaves survive for a long time).
func E10DensityGate(cfg Config) E10Result {
	const delta = 0.1
	n := cfg.MaxN
	var res E10Result
	for _, kind := range []GraphKind{KindComplete, KindRegular, KindHypercube, KindTorus, KindCycle} {
		outs := runConsensusTrials(cfg, kind, n, 0.6, delta, dynamics.BestOfThree, 0)
		src := rng.New(cfg.Seed)
		g := makeGraph(kind, n, 0.6, src)
		minDeg := g.MinDegree()
		alpha := 0.0
		if minDeg > 0 && g.N() > 1 {
			alpha = math.Log(float64(minDeg)) / math.Log(float64(g.N()))
		}
		res.Rows = append(res.Rows, E10Row{
			Kind:       kind,
			N:          g.N(),
			MinDegree:  minDeg,
			Alpha:      alpha,
			MeanRounds: stats.Summarize(sim.RoundsOf(outs)).Mean,
			RedWins:    stats.WilsonInterval(sim.Wins(outs), len(outs), 1.96),
			DenseClass: kind == KindComplete || kind == KindRegular,
		})
	}
	return res
}

// Table renders the result.
func (r E10Result) Table() *table.Table {
	t := table.New(
		"E10 (density gate): Best-of-3 inside vs outside the dense class, delta=0.1",
		"family", "n", "min degree", "alpha", "mean rounds", "red wins", "in dense class")
	for _, row := range r.Rows {
		t.AddRow(row.Kind.String(), row.N, row.MinDegree, row.Alpha, row.MeanRounds, row.RedWins.P, row.DenseClass)
	}
	return t
}

// E11Row is one time step of the duality comparison.
type E11Row struct {
	Step         int
	WalkMeanOcc  float64
	DAGMeanLevel float64
	RelError     float64
}

// E11Result is the Remark 2 duality experiment.
type E11Result struct {
	N, D int
	Rows []E11Row
}

// E11CobraDuality compares the mean occupancy trajectory of a k = 3 COBRA
// walk with the mean level sizes of voting-DAGs on the same graph: Remark 2
// says level T−t of the DAG is exactly the walk's occupied set at time t,
// so the distributions (hence means) must agree.
func E11CobraDuality(cfg Config) E11Result {
	n := cfg.MaxN
	alpha := 0.6
	d := int(math.Ceil(math.Pow(float64(n), alpha)))
	if (n*d)%2 != 0 {
		d++
	}
	src := rng.New(cfg.Seed)
	g := graph.RandomRegular(n, d, src)
	const T = 6
	trials := cfg.Trials * 5

	walkSum := make([]float64, T+1)
	dagSum := make([]float64, T+1)
	for i := 0; i < trials; i++ {
		s := rng.NewFrom(cfg.Seed, uint64(i))
		w := cobra.New(g, 3, []int{s.Intn(n)}, s)
		tr := w.Trajectory(T)
		dag := votingdag.Build(g, s.Intn(n), T, s)
		sizes := dag.LevelSizes()
		for t := 0; t <= T; t++ {
			walkSum[t] += float64(tr[t])
			dagSum[t] += float64(sizes[T-t])
		}
	}
	res := E11Result{N: n, D: d}
	for t := 0; t <= T; t++ {
		wm := walkSum[t] / float64(trials)
		dm := dagSum[t] / float64(trials)
		rel := 0.0
		if dm > 0 {
			rel = math.Abs(wm-dm) / dm
		}
		res.Rows = append(res.Rows, E11Row{Step: t, WalkMeanOcc: wm, DAGMeanLevel: dm, RelError: rel})
	}
	return res
}

// MaxRelError returns the worst relative disagreement across steps.
func (r E11Result) MaxRelError() float64 {
	max := 0.0
	for _, row := range r.Rows {
		if row.RelError > max {
			max = row.RelError
		}
	}
	return max
}

// Table renders the result.
func (r E11Result) Table() *table.Table {
	t := table.New(
		fmt.Sprintf("E11 (Remark 2): COBRA occupancy vs voting-DAG level sizes, regular n=%d d=%d", r.N, r.D),
		"step t", "walk mean occupancy", "DAG mean level size", "rel error")
	for _, row := range r.Rows {
		t.AddRow(row.Step, row.WalkMeanOcc, row.DAGMeanLevel, row.RelError)
	}
	return t
}
