package experiments

// E20 validates the simulator against the exact Markov chain of the
// complete-graph dynamic; E21 compares the paper's density condition with
// the spectral condition of Cooper–Elsässer–Radzik–Rivera–Shiraga [5] that
// the introduction contrasts it against.

import (
	"fmt"
	"math"

	"repro/internal/dynamics"
	"repro/internal/graph"
	"repro/internal/markov"
	"repro/internal/opinion"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/table"
)

// E20Row is one (n, pBlue) point.
type E20Row struct {
	N              int
	PBlue          float64
	ExactRedWin    float64
	ExactMeanT     float64
	SimRedWin      stats.Proportion
	SimMeanT       float64
	WithinInterval bool
}

// E20Result validates simulation against the exact chain.
type E20Result struct {
	Rows []E20Row
}

// E20ExactChainValidation computes the exact red-win probability and mean
// absorption time of Best-of-Three on K_n (by iterating the full blue-count
// distribution) and checks the simulator lands inside the implied
// confidence band. This pins the simulator to ground truth with no
// asymptotics involved — the general per-vertex engine is forced, because
// the mean-field fast path samples the exact chain's own kernel and would
// make the validation circular (the fast path itself is pinned against
// both in internal/markov's engine tests).
func E20ExactChainValidation(cfg Config) E20Result {
	var res E20Result
	for _, c := range []struct {
		n     int
		pBlue float64
	}{{64, 0.40}, {64, 0.50}, {256, 0.45}, {256, 0.50}, {1024, 0.47}} {
		chain := markov.New(c.n, 3)
		abs := chain.Absorb(chain.InitialDistribution(c.pBlue), 1e-12, 4000)

		trials := cfg.Trials * 5
		outs := sim.RunOutcomes(trials, cfg.Seed+uint64(c.n), cfg.Workers, func(i int, s *rng.Source) sim.Outcome {
			init := opinion.RandomConfig(c.n, c.pBlue, s)
			p, err := dynamics.New(graph.NewKn(c.n), dynamics.BestOfThree, init, dynamics.Options{Seed: s.Uint64(), Workers: 1, Engine: dynamics.EngineGeneral})
			if err != nil {
				panic(err)
			}
			r := p.RunQuiet(4000)
			return sim.Outcome{Rounds: float64(r.Rounds), Win: r.Consensus && r.Winner == opinion.Red}
		})
		// 99% intervals: a validation table with several rows should not flag
		// the expected one-in-twenty 95%-CI misses as disagreement.
		prop := stats.WilsonInterval(sim.Wins(outs), trials, 2.576)
		res.Rows = append(res.Rows, E20Row{
			N:              c.n,
			PBlue:          c.pBlue,
			ExactRedWin:    abs.RedWins,
			ExactMeanT:     abs.MeanRounds,
			SimRedWin:      prop,
			SimMeanT:       stats.Summarize(sim.RoundsOf(outs)).Mean,
			WithinInterval: prop.Lo <= abs.RedWins && abs.RedWins <= prop.Hi,
		})
	}
	return res
}

// AllWithinIntervals reports whether the exact value fell inside the
// simulation confidence interval at every point.
func (r E20Result) AllWithinIntervals() bool {
	for _, row := range r.Rows {
		if !row.WithinInterval {
			return false
		}
	}
	return true
}

// Table renders the result.
func (r E20Result) Table() *table.Table {
	t := table.New(
		"E20 (validation): exact K_n Markov chain vs simulator",
		"n", "P(blue)", "exact red win", "sim red win", "sim 99% CI", "exact mean T", "sim mean T", "agree")
	for _, row := range r.Rows {
		t.AddRow(row.N, row.PBlue, row.ExactRedWin, row.SimRedWin.P,
			fmt.Sprintf("[%.4f,%.4f]", row.SimRedWin.Lo, row.SimRedWin.Hi),
			row.ExactMeanT, row.SimMeanT, row.WithinInterval)
	}
	return t
}

// E21Row is one instance's condition check.
type E21Row struct {
	Graph           string
	N               int
	Alpha           float64
	Lambda2         float64
	DensityHolds    bool // the paper's condition (E10's gate)
	SpectralHolds   bool // d(R0) − d(B0) >= 4·λ2·d(V) for the E21 δ
	MeanRounds      float64
	RedWins         stats.Proportion
	PredictedByWhom string
}

// E21Result compares the two sufficient conditions from the literature.
type E21Result struct {
	Delta float64
	Rows  []E21Row
}

// E21SpectralComparison evaluates, on a spread of instances, the paper's
// density condition (min degree n^Ω(1/loglog n)) and the spectral condition
// of [5] (initial degree-weighted gap ≥ 4λ₂·d(V), for Best-of-2), then runs
// Best-of-Three to see which instances actually converge fast. The paper's
// point: the conditions are incomparable — dense graphs with tiny δ satisfy
// the density condition but not the Ω(n) gap; expanders with huge δ satisfy
// the spectral one at degrees the density condition rejects.
func E21SpectralComparison(cfg Config) E21Result {
	const delta = 0.05
	res := E21Result{Delta: delta}
	n := cfg.MaxN / 4 // λ2 estimation is O(iters·m); keep m moderate

	type inst struct {
		name  string
		build func(src *rng.Source) *graph.Graph
	}
	d1 := int(math.Ceil(math.Pow(float64(n), 0.6)))
	if (n*d1)%2 != 0 {
		d1++
	}
	instances := []inst{
		{"dense regular (n^0.6)", func(src *rng.Source) *graph.Graph { return graph.RandomRegular(n, d1, src) }},
		{"expander (d=16)", func(src *rng.Source) *graph.Graph { return graph.RandomRegular(n, 16, src) }},
		{"torus", func(src *rng.Source) *graph.Graph {
			side := int(math.Round(math.Sqrt(float64(n))))
			return graph.Torus2D(side, side)
		}},
		{"small world (beta=0.2)", func(src *rng.Source) *graph.Graph { return graph.WattsStrogatz(n, 4, 0.2, src) }},
	}

	for _, in := range instances {
		src := rng.New(cfg.Seed)
		g := in.build(src)
		l2 := g.SecondEigenvalue(150)

		// The spectral condition of [5] on the expected initial split:
		// d(R0) − d(B0) = 2δ·d(V) in expectation under i.i.d. opinions, so
		// it holds iff 2δ ≥ 4λ₂.
		spectral := 2*delta >= 4*l2
		alpha := g.DensityExponent()
		density := alpha >= 1/math.Log(math.Log(float64(g.N())))

		outs := sim.RunOutcomes(cfg.Trials, cfg.Seed+uint64(len(res.Rows)), cfg.Workers, func(i int, s *rng.Source) sim.Outcome {
			gg := in.build(s)
			init := opinion.RandomConfig(gg.N(), 0.5-delta, s)
			p, err := dynamics.New(gg, dynamics.BestOfThree, init, dynamics.Options{Seed: s.Uint64(), Workers: 1})
			if err != nil {
				panic(err)
			}
			r := p.RunQuiet(maxRounds)
			return sim.Outcome{Rounds: float64(r.Rounds), Win: r.Consensus && r.Winner == opinion.Red}
		})

		who := "neither"
		switch {
		case density && spectral:
			who = "both"
		case density:
			who = "density (paper)"
		case spectral:
			who = "spectral [5]"
		}
		res.Rows = append(res.Rows, E21Row{
			Graph:           in.name,
			N:               g.N(),
			Alpha:           alpha,
			Lambda2:         l2,
			DensityHolds:    density,
			SpectralHolds:   spectral,
			MeanRounds:      stats.Summarize(sim.RoundsOf(outs)).Mean,
			RedWins:         stats.WilsonInterval(sim.Wins(outs), len(outs), 1.96),
			PredictedByWhom: who,
		})
	}
	return res
}

// Table renders the result.
func (r E21Result) Table() *table.Table {
	t := table.New(
		fmt.Sprintf("E21 (paper vs ref [5]): which sufficient condition covers which instance, delta=%.2f", r.Delta),
		"graph", "n", "alpha", "lambda2", "covered by", "mean rounds", "red wins")
	for _, row := range r.Rows {
		t.AddRow(row.Graph, row.N, row.Alpha, row.Lambda2, row.PredictedByWhom, row.MeanRounds, row.RedWins.P)
	}
	return t
}
