package experiments

import "testing"

func TestE17DualityCompatible(t *testing.T) {
	res := E17ForwardBackwardDuality(quickCfg())
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if !res.AllCompatible() {
		t.Errorf("forward and backward estimators disagree:\n%s", res.Table())
	}
	// Blue probability must shrink with T (the dynamic amplifies red).
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].Forward.P > res.Rows[i-1].Forward.P+0.05 {
			t.Errorf("forward blue probability rose at T=%d:\n%s", res.Rows[i].T, res.Table())
		}
	}
}

func TestE18BothModelsConvergeRed(t *testing.T) {
	res := E18AsyncVsSync(quickCfg())
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.RedWins.P < 0.9 {
			t.Errorf("%s: red wins %.2f", row.Model, row.RedWins.P)
		}
		if row.MeanRounds > 60 {
			t.Errorf("%s: %.1f rounds, not double-log-ish", row.Model, row.MeanRounds)
		}
	}
	// Both in the same regime: within a factor 4 of each other.
	a, b := res.Rows[0].MeanRounds, res.Rows[1].MeanRounds
	if a > 4*b || b > 4*a {
		t.Errorf("activation models diverged: %.1f vs %.1f", a, b)
	}
}

func TestE19NoiseShape(t *testing.T) {
	res := E19NoiseThreshold(quickCfg())
	if len(res.Rows) < 6 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Noiseless: blue mass gone; red dominates.
	if res.Rows[0].FinalBlueFrac > 0.01 || res.Rows[0].RedDominates.P < 0.95 {
		t.Errorf("noiseless row wrong: %+v", res.Rows[0])
	}
	// Max noise: half-half, red cannot dominate.
	last := res.Rows[len(res.Rows)-1]
	if last.FinalBlueFrac < 0.4 || last.FinalBlueFrac > 0.6 {
		t.Errorf("max-noise blue frac %.2f, want ~0.5", last.FinalBlueFrac)
	}
	if last.RedDominates.P > 0.2 {
		t.Errorf("red dominates %.2f at max noise", last.RedDominates.P)
	}
	// Blue mass grows with noise (allow one inversion for sampling noise).
	inversions := 0
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].FinalBlueFrac < res.Rows[i-1].FinalBlueFrac-0.01 {
			inversions++
		}
	}
	if inversions > 1 {
		t.Errorf("blue mass not monotone in noise:\n%s", res.Table())
	}
}
