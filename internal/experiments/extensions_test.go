package experiments

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

func TestE14PluralityShape(t *testing.T) {
	res := E14PluralityConsensus(quickCfg())
	if len(res.Rows) < 4 {
		t.Fatal("too few rows")
	}
	// q = 2 must behave like the paper's setting: fast, plurality wins.
	first := res.Rows[0]
	if first.Q != 2 || first.PluralityWins.P < 0.9 {
		t.Errorf("q=2 row: %+v", first)
	}
	// Consensus time grows with q (shape claim of [2]); allow one noise
	// inversion.
	if !res.RoundsIncreaseWithQ() {
		t.Errorf("rounds not increasing with q:\n%s", res.Table())
	}
	// With a 1.5x advantage the plurality should win essentially always.
	for _, row := range res.Rows {
		if row.PluralityWins.P < 0.8 {
			t.Errorf("q=%d: plurality wins %.2f", row.Q, row.PluralityWins.P)
		}
	}
}

func TestE15ZealotPhase(t *testing.T) {
	res := E15StubbornZealots(quickCfg())
	if len(res.Rows) < 4 {
		t.Fatal("too few rows")
	}
	// No zealots: blue mass collapses to ~0.
	if res.Rows[0].FinalBlueFrac > 0.01 {
		t.Errorf("zero-zealot final blue frac %.3f", res.Rows[0].FinalBlueFrac)
	}
	// Small zealot sets (<= 1%) cannot overturn the red majority.
	for _, row := range res.Rows {
		if row.StubbornFrac <= 0.01 && row.RedDominates.P < 0.9 {
			t.Errorf("zealot frac %.3f: red dominates only %.2f", row.StubbornFrac, row.RedDominates.P)
		}
	}
	// Final blue mass grows monotonically-ish with the zealot mass.
	last := res.Rows[len(res.Rows)-1]
	if last.FinalBlueFrac <= res.Rows[0].FinalBlueFrac {
		t.Errorf("zealots had no effect:\n%s", res.Table())
	}
}

func TestE16PlacementEffect(t *testing.T) {
	res := E16AdversarialPlacement(quickCfg())
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Dense regular graph: both placements fast and red-won.
	for _, row := range res.Rows {
		if row.Kind == KindRegular {
			if row.MeanRounds > 60 {
				t.Errorf("regular/%s: %.1f rounds", row.Placement, row.MeanRounds)
			}
			if row.RedWins.P < 0.9 {
				t.Errorf("regular/%s: red wins %.2f", row.Placement, row.RedWins.P)
			}
		}
	}
	// Torus: clustered placement must be dramatically slower than random.
	if ratio := res.SlowdownOnTorus(); ratio < 2 {
		t.Errorf("torus clustered/random slowdown = %.2f, want >= 2:\n%s", ratio, res.Table())
	}
}

func TestPlaceBluesExactCountAndClustering(t *testing.T) {
	src := rng.New(1)
	g := graph.Torus2D(32, 32)
	for _, clustered := range []bool{false, true} {
		cfgp := placeBlues(g, 100, clustered, src)
		if got := cfgp.Blues(); got != 100 {
			t.Errorf("clustered=%v: blues = %d, want 100", clustered, got)
		}
	}
	// Clustered placement on the torus must have far fewer red-blue
	// boundary edges than random placement.
	boundary := func(clustered bool) int {
		cfgp := placeBlues(g, 100, clustered, rng.New(7))
		cut := 0
		for v := 0; v < g.N(); v++ {
			for i := 0; i < g.Degree(v); i++ {
				w := g.Neighbor(v, i)
				if v < w && cfgp.Get(v) != cfgp.Get(w) {
					cut++
				}
			}
		}
		return cut
	}
	if bc, br := boundary(true), boundary(false); bc >= br/2 {
		t.Errorf("clustered boundary %d not much smaller than random %d", bc, br)
	}
}

func TestPlaceBluesFullGraph(t *testing.T) {
	g := graph.Complete(10)
	cfgp := placeBlues(g, 15, true, rng.New(2))
	if cfgp.Blues() != 10 {
		t.Errorf("overfull placement blues = %d", cfgp.Blues())
	}
}
