package experiments

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/opinion"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/table"
	"repro/internal/theory"
	"repro/internal/votingdag"
)

// E4Row compares the sprinkled-DAG blue probability with the equation (2)
// recursion at one height.
type E4Row struct {
	Height        int
	EmpiricalBlue stats.Proportion // P(sprinkled root is blue)
	RecursionP    float64          // p_T from eq. (2), exact form
	RelaxedP      float64          // relaxed inequality form
	Majorised     bool             // empirical upper CI <= recursion value?
}

// E4Result is the Proposition 3 majorisation experiment.
type E4Result struct {
	N, D  int
	Delta float64
	Rows  []E4Row
}

// E4SprinklingMajorisation builds sprinkled voting-DAGs of increasing
// height on a dense regular graph, colours their leaves i.i.d. with
// p = 1/2 − δ, and checks that the empirical probability of a blue root is
// majorised by the p_T recursion of equation (2).
func E4SprinklingMajorisation(cfg Config) E4Result {
	n := cfg.MaxN
	alpha := 0.8
	d := int(math.Ceil(math.Pow(float64(n), alpha)))
	if (n*d)%2 != 0 {
		d++
	}
	const delta = 0.1
	res := E4Result{N: n, D: d, Delta: delta}
	src := rng.New(cfg.Seed)
	g := graph.RandomRegular(n, d, src)

	trials := cfg.Trials * 10 // root colour is a cheap Bernoulli sample
	for _, T := range []int{2, 3, 4, 5} {
		blues := sim.RunOutcomes(trials, cfg.Seed+uint64(T), cfg.Workers, func(i int, s *rng.Source) sim.Outcome {
			dag := votingdag.Build(g, s.Intn(n), T, s)
			spr := dag.Sprinkle(T)
			leaf := votingdag.RandomLeafColouring(0.5-delta, s)
			cols := spr.Colour(leaf)
			return sim.Outcome{Win: cols.RootColour() == opinion.Blue}
		})
		rec := theory.SprinkleRecursion(0.5-delta, T, float64(d), false)
		relaxed := theory.SprinkleRecursion(0.5-delta, T, float64(d), true)
		prop := stats.WilsonInterval(sim.Wins(blues), trials, 1.96)
		res.Rows = append(res.Rows, E4Row{
			Height:        T,
			EmpiricalBlue: prop,
			RecursionP:    rec[T],
			RelaxedP:      relaxed[T],
			Majorised:     prop.Lo <= rec[T],
		})
	}
	return res
}

// AllMajorised reports whether every height satisfied the majorisation.
func (r E4Result) AllMajorised() bool {
	for _, row := range r.Rows {
		if !row.Majorised {
			return false
		}
	}
	return true
}

// Table renders the result.
func (r E4Result) Table() *table.Table {
	t := table.New(
		fmt.Sprintf("E4 (Prop. 3 / eq. 2): sprinkled root blue prob vs recursion, regular n=%d d=%d delta=%.2f", r.N, r.D, r.Delta),
		"height T", "empirical P(blue)", "95% CI", "recursion p_T", "relaxed p_T", "majorised")
	for _, row := range r.Rows {
		t.AddRow(row.Height, row.EmpiricalBlue.P,
			fmt.Sprintf("[%.4f,%.4f]", row.EmpiricalBlue.Lo, row.EmpiricalBlue.Hi),
			row.RecursionP, row.RelaxedP, row.Majorised)
	}
	return t
}

// E5Row is one height of the ternary-threshold experiment.
type E5Row struct {
	Height          int
	Threshold       int // 2^h
	Samples         int
	BlueRoots       int
	MinBlueLeaves   int // min blue leaves observed among blue-rooted samples
	ViolationsFound int
}

// E5Result verifies Lemma 5 by sampling random leaf colourings.
type E5Result struct {
	Rows []E5Row
}

// E5TernaryThreshold samples random colourings of complete ternary trees
// and verifies that every blue root has at least 2^h blue leaves.
func E5TernaryThreshold(cfg Config) E5Result {
	var res E5Result
	for _, h := range []int{1, 2, 3, 4, 5, 6} {
		leaves := 1
		for i := 0; i < h; i++ {
			leaves *= 3
		}
		src := rng.New(cfg.Seed + uint64(h))
		row := E5Row{Height: h, Threshold: 1 << h, MinBlueLeaves: leaves + 1}
		samples := cfg.Trials * 20
		for s := 0; s < samples; s++ {
			// Blue-heavy colourings to reach blue roots often.
			cols := make([]opinion.Colour, leaves)
			blues := 0
			for i := range cols {
				if src.Bernoulli(0.62) {
					cols[i] = opinion.Blue
					blues++
				}
			}
			if votingdag.TernaryRoot(cols) != opinion.Blue {
				continue
			}
			row.BlueRoots++
			if blues < row.MinBlueLeaves {
				row.MinBlueLeaves = blues
			}
			if blues < row.Threshold {
				row.ViolationsFound++
			}
		}
		row.Samples = samples
		res.Rows = append(res.Rows, row)
	}
	return res
}

// Violations sums violations across heights; Lemma 5 says it must be 0.
func (r E5Result) Violations() int {
	v := 0
	for _, row := range r.Rows {
		v += row.ViolationsFound
	}
	return v
}

// Table renders the result.
func (r E5Result) Table() *table.Table {
	t := table.New(
		"E5 (Lemma 5): blue ternary root needs >= 2^h blue leaves",
		"height h", "threshold 2^h", "samples", "blue roots", "min blue leaves seen", "violations")
	for _, row := range r.Rows {
		t.AddRow(row.Height, row.Threshold, row.Samples, row.BlueRoots, row.MinBlueLeaves, row.ViolationsFound)
	}
	return t
}

// E6Row is one graph-density point of the collision-transform experiment.
type E6Row struct {
	GraphN          int
	Height          int
	Samples         int
	RootMatches     int // expansion root colour == DAG root colour
	PathBoundHolds  int // expansion blue leaves <= B0·prod(maxInDeg)
	TwoPowCHolds    int // expansion blue leaves <= B0·2^C (paper's bound)
	TwoPowCEligible int // samples where all collision levels are binary
}

// E6Result verifies Lemma 6 (and documents where the literal 2^C constant
// holds).
type E6Result struct {
	Rows []E6Row
}

// E6CollisionTransform builds DAGs on small dense graphs (to force
// collisions), expands them per Lemma 6, and verifies root-colour
// preservation and the leaf bounds.
func E6CollisionTransform(cfg Config) E6Result {
	var res E6Result
	for _, gn := range []int{5, 8, 16, 64, 256} {
		g := graph.Complete(gn)
		src := rng.New(cfg.Seed + uint64(gn))
		row := E6Row{GraphN: gn, Height: 4}
		samples := cfg.Trials * 5
		for s := 0; s < samples; s++ {
			d := votingdag.Build(g, src.Intn(gn), row.Height, src)
			leaf := votingdag.RandomLeafColouring(0.5, src)
			cols := d.Colour(leaf)
			exp := d.ExpandToTree(cols)
			if exp.RootColour == cols.RootColour() {
				row.RootMatches++
			}
			if exp.BlueLeaves <= d.PathCountBound(cols) {
				row.PathBoundHolds++
			}
			binary := true
			for _, m := range d.MaxInDegreePerLevel() {
				if m > 2 {
					binary = false
					break
				}
			}
			if binary {
				row.TwoPowCEligible++
				if exp.BlueLeaves <= d.Lemma6Bound(cols) {
					row.TwoPowCHolds++
				}
			}
		}
		row.Samples = samples
		res.Rows = append(res.Rows, row)
	}
	return res
}

// AllSound reports whether root preservation and the path bound held on
// every sample.
func (r E6Result) AllSound() bool {
	for _, row := range r.Rows {
		if row.RootMatches != row.Samples || row.PathBoundHolds != row.Samples {
			return false
		}
		if row.TwoPowCHolds != row.TwoPowCEligible {
			return false
		}
	}
	return true
}

// Table renders the result.
func (r E6Result) Table() *table.Table {
	t := table.New(
		"E6 (Lemma 6): DAG-to-tree expansion soundness (height 4)",
		"graph n", "samples", "root preserved", "path bound holds", "2^C holds / eligible")
	for _, row := range r.Rows {
		t.AddRow(row.GraphN, row.Samples, row.RootMatches, row.PathBoundHolds,
			fmt.Sprintf("%d/%d", row.TwoPowCHolds, row.TwoPowCEligible))
	}
	return t
}

// E7Row is one (degree, height) point of the collision-tail experiment.
type E7Row struct {
	D              int
	Height         int
	MeanCollisions float64
	EmpTail        stats.Proportion // P(C > h/2) measured
	BinomialTail   float64          // exact Bin(h, 9^h/d) tail
	PaperBound     float64          // (2e·9^h/d)^{h/2}
	Majorised      bool
}

// E7Result is the Lemma 7 collision-tail experiment.
type E7Result struct {
	N    int
	Rows []E7Row
}

// E7CollisionTail measures the number of collision levels C of voting-DAGs
// on regular graphs of increasing degree and compares P(C > h/2) with the
// binomial majorisation and the paper's closed-form bound.
func E7CollisionTail(cfg Config) E7Result {
	n := cfg.MaxN
	res := E7Result{N: n}
	// Sweep (degree, height) pairs. The paper's per-level bound 9^h/d is
	// non-vacuous only while 9^h < d, so heights are chosen per degree:
	// the h = 2 rows exercise the bound in its meaningful regime and the
	// larger-h rows document where it saturates at laptop-scale degrees.
	for _, p := range []struct {
		alpha float64
		h     int
	}{{0.5, 2}, {0.65, 2}, {0.8, 2}, {0.8, 3}, {0.8, 4}} {
		d := int(math.Ceil(math.Pow(float64(n), p.alpha)))
		if (n*d)%2 != 0 {
			d++
		}
		src := rng.New(cfg.Seed + uint64(d))
		g := graph.RandomRegular(n, d, src)
		h := p.h
		trials := cfg.Trials * 10
		exceed := 0
		totalC := 0
		outs := sim.RunOutcomes(trials, cfg.Seed+uint64(d), cfg.Workers, func(i int, s *rng.Source) sim.Outcome {
			dag := votingdag.Build(g, s.Intn(n), h, s)
			c := dag.CollisionLevelCount()
			return sim.Outcome{Rounds: float64(c), Win: float64(c) > float64(h)/2}
		})
		for _, o := range outs {
			totalC += int(o.Rounds)
			if o.Win {
				exceed++
			}
		}
		emp := stats.WilsonInterval(exceed, trials, 1.96)
		pLevel := theory.CollisionLevelProb(h, float64(d))
		binTail := stats.BinomialTail(h, h/2+1, pLevel)
		res.Rows = append(res.Rows, E7Row{
			D:              d,
			Height:         h,
			MeanCollisions: float64(totalC) / float64(trials),
			EmpTail:        emp,
			BinomialTail:   binTail,
			PaperBound:     theory.CollisionTailBound(h, float64(d)),
			Majorised:      emp.Lo <= binTail,
		})
	}
	return res
}

// AllMajorised reports whether the binomial majorisation held at every
// degree.
func (r E7Result) AllMajorised() bool {
	for _, row := range r.Rows {
		if !row.Majorised {
			return false
		}
	}
	return true
}

// Table renders the result.
func (r E7Result) Table() *table.Table {
	t := table.New(
		fmt.Sprintf("E7 (Lemma 7): collision levels C on regular graphs, n=%d", r.N),
		"d", "height h", "mean C", "P(C>h/2) emp", "Bin tail", "paper bound", "majorised")
	for _, row := range r.Rows {
		t.AddRow(row.D, row.Height, row.MeanCollisions, row.EmpTail.P,
			row.BinomialTail, row.PaperBound, row.Majorised)
	}
	return t
}

// E12Result is the Figure 1 walkthrough: a deterministic 2-level DAG with a
// collision, before and after sprinkling.
type E12Result struct {
	CollisionLevelsBefore int
	CollisionLevelsAfter  int
	ArtificialAdded       int
	CouplingHolds         bool
}

// E12SprinklingFigure reproduces Figure 1 structurally: a 2-level DAG whose
// level-1 vertices share level-0 queries; sprinkling must remove the
// collisions by adding artificial blue leaves, and the coupling
// X_H ≤ X_H' must hold for every leaf colouring (checked exhaustively).
func E12SprinklingFigure(cfg Config) E12Result {
	// Level 0: three distinct queried vertices; level 1: two vertices
	// querying overlapping triples (as in the figure); level 2: the root.
	d := votingdag.BuildManual([]votingdag.ManualLevel{
		{{V: 20}, {V: 21}, {V: 22}},
		{{V: 10, Children: [3]int{0, 1, 0}}, {V: 11, Children: [3]int{1, 2, 2}}},
		{{V: 1, Children: [3]int{0, 1, 1}}},
	})
	s := d.Sprinkle(d.T())
	res := E12Result{
		CollisionLevelsBefore: d.CollisionLevelCount(),
		CollisionLevelsAfter:  s.CollisionLevelCount(),
		ArtificialAdded:       s.ArtificialCount(),
		CouplingHolds:         true,
	}
	// All 8 colourings of the three real leaves.
	for mask := 0; mask < 8; mask++ {
		leaf := func(v int) opinion.Colour {
			if mask>>(v-20)&1 == 1 {
				return opinion.Blue
			}
			return opinion.Red
		}
		ch := d.Colour(leaf)
		cs := s.Colour(leaf)
		if ch.RootColour() == opinion.Blue && cs.RootColour() != opinion.Blue {
			res.CouplingHolds = false
		}
	}
	return res
}

// Table renders the result.
func (r E12Result) Table() *table.Table {
	t := table.New(
		"E12 (Figure 1): sprinkling a 2-level DAG with collisions",
		"metric", "value")
	t.AddRow("collision levels before", r.CollisionLevelsBefore)
	t.AddRow("collision levels after", r.CollisionLevelsAfter)
	t.AddRow("artificial blue nodes added", r.ArtificialAdded)
	t.AddRow("coupling X_H <= X_H' (all 8 colourings)", r.CouplingHolds)
	return t
}
