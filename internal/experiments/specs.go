package experiments

import (
	"sort"

	"repro/spec"
)

// This file expresses the experiment suite's parameter grids as spec.Grid
// values — the same type POST /v1/sweeps consumes — so the registry's
// "sweep grid" column in DESIGN.md is executable code rather than prose,
// and the CLIs, the server, and the suite enumerate cells from one type.

// Grids returns the server-sweepable slice of the E1–E21 registry as
// spec grids, scaled by cfg (trials per cell, largest n, seed). Entries
// built on dual objects or per-round trajectories are library-only and
// absent here; DESIGN.md's registry table records why, entry by entry.
// The opinion dynamics ride the grids' Variants axis — the same
// spec.VariantSpec values POST /v1/sweeps accepts.
func Grids(cfg Config) map[string]spec.Grid {
	ns := nsUpTo(cfg.MaxN)
	trials := []int{cfg.Trials}
	return map[string]spec.Grid{
		// E1: consensus time vs n across the dense families.
		"E1": {
			Graphs: []spec.GraphSpec{
				{Family: "dense", Alpha: 0.6, Seed: cfg.Seed},
				{Family: "gnp", P: 0.05, Seed: cfg.Seed},
				{Family: "complete-virtual"},
			},
			NS:     ns,
			Deltas: []float64{0.05},
			Trials: trials,
		},
		// E2: δ-dependence at fixed n.
		"E2": {
			Graphs: []spec.GraphSpec{{Family: "dense", N: cfg.MaxN, Alpha: 0.6, Seed: cfg.Seed}},
			Deltas: []float64{0.2, 0.1, 0.05, 0.02, 0.01},
			Trials: trials,
		},
		// E9: protocol baselines; the generous round cap keeps the k = 1
		// voter model from being cut off.
		"E9": {
			Graphs: []spec.GraphSpec{
				{Family: "complete-virtual"},
				{Family: "random-regular", D: 32, Seed: cfg.Seed},
			},
			NS:     ns[len(ns)-1:],
			Deltas: []float64{0.1},
			Ks:     []int{1, 2, 3, 5},
			Trials: trials,
		},
		// E10: density gate — inside vs outside the paper's class.
		"E10": {
			Graphs: []spec.GraphSpec{
				{Family: "dense", Alpha: 0.7, Seed: cfg.Seed},
				{Family: "dense", Alpha: 0.3, Seed: cfg.Seed},
				{Family: "cycle"},
			},
			NS:     ns[len(ns)-1:],
			Deltas: []float64{0.05},
			Trials: trials,
		},
		// E14: q-opinion plurality — the variants axis sweeps q on a
		// materialised K_n (plurality always runs on the general engine).
		"E14": {
			Graphs: []spec.GraphSpec{{Family: "complete", N: 512}},
			Deltas: []float64{0.05},
			Variants: []spec.VariantSpec{
				{Name: "plurality", Q: 2},
				{Name: "plurality", Q: 3},
				{Name: "plurality", Q: 5},
				{Name: "plurality", Q: 8},
			},
			Trials: trials,
		},
		// E15: stubborn (zealot) tolerance — frozen-Red fractions vs the
		// plain protocol on one regular instance.
		"E15": {
			Graphs: []spec.GraphSpec{{Family: "random-regular", N: cfg.MaxN, D: 64, Seed: cfg.Seed}},
			Deltas: []float64{0.05},
			Variants: []spec.VariantSpec{
				{Name: "sync"},
				{Name: "stubborn", StubbornFrac: 0.01},
				{Name: "stubborn", StubbornFrac: 0.05},
				{Name: "stubborn", StubbornFrac: 0.2},
			},
			Trials: trials,
		},
		// E18: synchronous rounds vs sequential single-vertex sweeps on
		// the same instances (an async "round" is n activations, so round
		// counts are directly comparable).
		"E18": {
			Graphs: []spec.GraphSpec{{Family: "random-regular", D: 32, Seed: cfg.Seed}},
			NS:     ns[len(ns)-1:],
			Deltas: []float64{0.1, 0.05},
			Variants: []spec.VariantSpec{
				{Name: "sync"},
				{Name: "async"},
			},
			Trials: trials,
		},
		// E19: per-sample communication noise threshold — the noises axis
		// brackets the regime where misreported samples stall consensus
		// (heavily noised cells run to the theory-derived round cap; that
		// is the measurement, not a failure), crossed with the sync/async
		// dynamic: the threshold location must not depend on the update
		// schedule.
		"E19": {
			Graphs: []spec.GraphSpec{
				{Family: "complete-virtual"},
				{Family: "random-regular", D: 32, Seed: cfg.Seed},
			},
			NS:     ns[len(ns)-1:],
			Deltas: []float64{0.1},
			Noises: []float64{0, 0.02, 0.05, 0.1, 0.2, 0.3},
			Variants: []spec.VariantSpec{
				{Name: "sync"},
				{Name: "async"},
			},
			Trials: trials,
		},
		// E20: the simulated side of the exact-chain validation.
		"E20": {
			Graphs: []spec.GraphSpec{{Family: "complete-virtual"}},
			NS:     []int{256, 512, 1024},
			Deltas: []float64{0.05},
			Trials: trials,
		},
	}
}

// GridIDs returns the sweepable experiment ids, sorted.
func GridIDs(cfg Config) []string {
	grids := Grids(cfg)
	ids := make([]string, 0, len(grids))
	for id := range grids {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// nsUpTo lists the power-of-two size axis 2^10 … maxN the scaling
// experiments sweep.
func nsUpTo(maxN int) []int {
	var ns []int
	for n := 1 << 10; n <= maxN; n <<= 1 {
		ns = append(ns, n)
	}
	if len(ns) == 0 {
		ns = []int{maxN}
	}
	return ns
}

// LoadTestGrid is the n × δ grid bo3sweep replays against a running
// bo3serve instance — as one /v1/sweeps request or as per-cell /v1/runs
// calls — built around an arbitrary topology template from the spec
// registry. Templates of n-parameterised families are crossed with the
// size axis; fixed-size families (torus, hypercube, sbm) sweep δ only.
func LoadTestGrid(template spec.GraphSpec, quick bool, trials int) spec.Grid {
	g := spec.Grid{
		Graphs: []spec.GraphSpec{template},
		NS:     []int{1 << 10, 1 << 12, 1 << 14},
		Deltas: []float64{0.02, 0.05, 0.1, 0.2},
		Trials: []int{trials},
	}
	if quick {
		g.NS = []int{1 << 9, 1 << 10}
		g.Deltas = []float64{0.05, 0.2}
	}
	if !spec.FamilyUsesN(template.Family) {
		g.NS = nil
	}
	return g
}
