package experiments

import (
	"math"
	"strings"
	"testing"

	"repro/internal/rng"
)

// The experiment tests run the Quick configuration and assert the *shape*
// claims of the paper: who wins, by what order, where the gates fall. They
// double as end-to-end integration tests of graph + dynamics + votingdag +
// theory + sim.

func quickCfg() Config {
	c := Quick()
	c.Workers = 4
	return c
}

func TestMakeGraphFamilies(t *testing.T) {
	src := rng.New(1)
	for _, kind := range []GraphKind{KindRegular, KindGnp, KindComplete, KindTorus, KindCycle, KindHypercube} {
		g := makeGraph(kind, 512, 0.6, src)
		if g.N() < 3 {
			t.Errorf("%v: n = %d", kind, g.N())
		}
		if g.MinDegree() < 1 {
			t.Errorf("%v: isolated vertex", kind)
		}
	}
}

func TestMakeGraphPanicsOnUnknownKind(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown kind did not panic")
		}
	}()
	makeGraph(GraphKind(99), 16, 0.5, rng.New(1))
}

func TestGraphKindStrings(t *testing.T) {
	if KindRegular.String() != "regular" || KindGnp.String() != "gnp" ||
		KindComplete.String() != "complete" || KindTorus.String() != "torus" ||
		KindCycle.String() != "cycle" || KindHypercube.String() != "hypercube" {
		t.Error("kind strings wrong")
	}
	if !strings.Contains(GraphKind(42).String(), "42") {
		t.Error("unknown kind string")
	}
}

func TestE1ShapeClaims(t *testing.T) {
	res := E1ConsensusScaling(quickCfg())
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range res.Rows {
		// Red must essentially always win at delta = 0.05 on dense graphs.
		if row.RedWins.P < 0.9 {
			t.Errorf("%v n=%d: red win rate %.2f", row.Kind, row.N, row.RedWins.P)
		}
		// Rounds must stay tiny (double-log, single-to-low-double digits).
		if row.MeanRounds > 40 {
			t.Errorf("%v n=%d: mean rounds %.1f not double-log-ish", row.Kind, row.N, row.MeanRounds)
		}
		if row.ConsensusFraction < 0.99 {
			t.Errorf("%v n=%d: consensus fraction %.2f", row.Kind, row.N, row.ConsensusFraction)
		}
	}
	if res.Table().NumRows() != len(res.Rows) {
		t.Error("table row mismatch")
	}
}

func TestE2DeltaDependenceIsLogarithmic(t *testing.T) {
	cfg := quickCfg()
	res := E2DeltaSweep(cfg)
	if len(res.Rows) < 4 {
		t.Fatal("too few rows")
	}
	fit := res.SlopePerLogInvDelta()
	// Rounds grow with log(1/delta): positive bounded slope. The 5/4
	// growth predicts ~1/log(5/4) ≈ 4.5 rounds per e-fold; allow slack.
	if fit.Slope <= 0 || fit.Slope > 12 {
		t.Errorf("slope per log(1/delta) = %v, want in (0, 12]", fit.Slope)
	}
	// Red must win w.h.p. wherever the imbalance clears the finite-size
	// noise floor: the initial blue count has standard deviation ~√n/2, so
	// δ ≳ 4/√n is needed for the signal to dominate at laptop scale (the
	// paper's δ ≥ (log d)^−C condition is asymptotic).
	floor := 4 / math.Sqrt(float64(res.N))
	for _, row := range res.Rows {
		if row.Delta >= floor && row.RedWins.P < 0.85 {
			t.Errorf("red win rate %.2f at delta=%.3f (noise floor %.3f)", row.RedWins.P, row.Delta, floor)
		}
	}
	if res.Table().NumRows() != len(res.Rows) {
		t.Error("table row mismatch")
	}
}

func TestE3RecursionTracksSimulation(t *testing.T) {
	res := E3IdealRecursion(quickCfg())
	// On K_n the recursion is exact up to sampling noise O(1/sqrt(n·trials))
	// plus the accumulated drift; 0.02 absolute is generous.
	if err := res.MaxAbsError(); err > 0.02 {
		t.Errorf("max |empirical - recursion| = %v", err)
	}
	// The trajectory must actually collapse to 0.
	lastRow := res.Rows[len(res.Rows)-1]
	if lastRow.EmpiricalBlue > 0.001 {
		t.Errorf("blue fraction did not collapse: %v", lastRow.EmpiricalBlue)
	}
}

func TestE4MajorisationHolds(t *testing.T) {
	res := E4SprinklingMajorisation(quickCfg())
	if !res.AllMajorised() {
		t.Errorf("equation (2) majorisation violated:\n%s", res.Table())
	}
	// The recursion decreases while the bottom-level error 3^T/d stays
	// small; once 3^T ≳ d the ε terms dominate and the bound degrades
	// gracefully towards 1 (still a valid majorant). Check only the small-
	// height rows where the regime applies.
	if res.Rows[0].RecursionP >= 0.5-0.01 {
		t.Errorf("height-2 recursion %v did not contract", res.Rows[0].RecursionP)
	}
}

func TestE5NoViolations(t *testing.T) {
	res := E5TernaryThreshold(quickCfg())
	if res.Violations() != 0 {
		t.Errorf("Lemma 5 violations found:\n%s", res.Table())
	}
	// Make sure the experiment actually exercised blue roots.
	total := 0
	for _, row := range res.Rows {
		total += row.BlueRoots
	}
	if total == 0 {
		t.Error("no blue roots sampled; experiment vacuous")
	}
}

func TestE6TransformSound(t *testing.T) {
	res := E6CollisionTransform(quickCfg())
	if !res.AllSound() {
		t.Errorf("Lemma 6 soundness violated:\n%s", res.Table())
	}
}

func TestE7CollisionTailMajorised(t *testing.T) {
	res := E7CollisionTail(quickCfg())
	if !res.AllMajorised() {
		t.Errorf("Lemma 7 majorisation violated:\n%s", res.Table())
	}
	// At fixed height (the h = 2 rows), collisions must become rarer as the
	// degree rises; at fixed degree, more levels mean more collisions.
	var h2 []E7Row
	for _, row := range res.Rows {
		if row.Height == 2 {
			h2 = append(h2, row)
		}
	}
	for i := 1; i < len(h2); i++ {
		if h2[i].D > h2[i-1].D && h2[i].MeanCollisions > h2[i-1].MeanCollisions+0.3 {
			t.Errorf("mean collisions rose with degree at h=2: %v -> %v",
				h2[i-1].MeanCollisions, h2[i].MeanCollisions)
		}
	}
}

func TestE8GrowthFactor(t *testing.T) {
	res := E8DeltaGrowth(quickCfg())
	min := res.MinGrowthBelowFixedPoint()
	// The paper proves >= 5/4 for the recursion; the empirical factor on
	// K_n concentrates near the recursion value 3/2 - O(delta^2). Allow
	// noise above 5/4's vicinity.
	if min < 1.2 {
		t.Errorf("min empirical growth factor %v < 1.2:\n%s", min, res.Table())
	}
	if math.IsInf(min, 1) {
		t.Error("no growth rounds measured")
	}
}

func TestE9BaselineOrdering(t *testing.T) {
	res := E9BaselineComparison(quickCfg())
	for _, kind := range []GraphKind{KindComplete, KindRegular} {
		voter := res.MeanRoundsFor("best-of-1", kind)
		bo3 := res.MeanRoundsFor("best-of-3", kind)
		bo2 := res.MeanRoundsFor("best-of-2/keep", kind)
		if math.IsNaN(voter) || math.IsNaN(bo3) || math.IsNaN(bo2) {
			t.Fatalf("%v: missing rows\n%s", kind, res.Table())
		}
		// The introduction's claim: best-of-k (k>=2) is much faster than the
		// voter model.
		if bo3 >= voter/5 {
			t.Errorf("%v: best-of-3 (%.1f) not ≫ faster than voter (%.1f)", kind, bo3, voter)
		}
		if bo2 >= voter/2 {
			t.Errorf("%v: best-of-2 (%.1f) not faster than voter (%.1f)", kind, bo2, voter)
		}
	}
	// Best-of-3 must win red w.h.p.
	for _, row := range res.Rows {
		if row.Rule == "best-of-3" && row.RedWins.P < 0.9 {
			t.Errorf("best-of-3 red wins %.2f on %v", row.RedWins.P, row.Kind)
		}
	}
}

func TestE10DensityGateOrdering(t *testing.T) {
	res := E10DensityGate(quickCfg())
	var dense, sparse []float64
	for _, row := range res.Rows {
		if row.DenseClass {
			dense = append(dense, row.MeanRounds)
		} else if row.Kind == KindCycle || row.Kind == KindTorus {
			sparse = append(sparse, row.MeanRounds)
		}
		// Red must win on the dense families.
		if row.DenseClass && row.RedWins.P < 0.9 {
			t.Errorf("%v: red wins %.2f", row.Kind, row.RedWins.P)
		}
	}
	if len(dense) == 0 || len(sparse) == 0 {
		t.Fatal("missing rows")
	}
	maxDense, minSparse := 0.0, math.Inf(1)
	for _, v := range dense {
		maxDense = math.Max(maxDense, v)
	}
	for _, v := range sparse {
		minSparse = math.Min(minSparse, v)
	}
	if minSparse < 2*maxDense {
		t.Errorf("sparse graphs (%.1f rounds) not clearly slower than dense (%.1f):\n%s",
			minSparse, maxDense, res.Table())
	}
}

func TestE11DualityAgreement(t *testing.T) {
	res := E11CobraDuality(quickCfg())
	if res.MaxRelError() > 0.15 {
		t.Errorf("duality max relative error %v:\n%s", res.MaxRelError(), res.Table())
	}
	// Occupancy must grow roughly like 3^t before saturation.
	if res.Rows[1].WalkMeanOcc < 2.5 || res.Rows[2].WalkMeanOcc < 6 {
		t.Errorf("occupancy growth too slow:\n%s", res.Table())
	}
}

func TestE12FigureWalkthrough(t *testing.T) {
	res := E12SprinklingFigure(quickCfg())
	if res.CollisionLevelsBefore == 0 {
		t.Error("figure DAG should contain collisions")
	}
	if res.CollisionLevelsAfter != 0 {
		t.Error("sprinkling left collisions")
	}
	// The figure DAG has 4 colliding slots: node 10 repeats leaf 0; node 11
	// re-reveals leaf 1 and repeats leaf 2; the root repeats node 1.
	if res.ArtificialAdded != 4 {
		t.Errorf("artificial nodes = %d, want 4 (one per colliding slot)", res.ArtificialAdded)
	}
	if !res.CouplingHolds {
		t.Error("coupling X_H <= X_H' violated on the figure DAG")
	}
}

func TestE13ScheduleMagnitudes(t *testing.T) {
	res := E13PhaseSchedule(quickCfg())
	var total E13Row
	for _, row := range res.Rows {
		if row.Phase == "total" {
			total = row
		}
	}
	if total.Measured <= 0 {
		t.Fatalf("no measured total:\n%s", res.Table())
	}
	// Prediction and measurement must agree in order of magnitude (both
	// double-log-ish, low double digits).
	ratio := float64(total.Predicted) / float64(total.Measured)
	if ratio < 0.3 || ratio > 5 {
		t.Errorf("schedule prediction %d vs measured %d (ratio %.2f):\n%s",
			total.Predicted, total.Measured, ratio, res.Table())
	}
}
