// Package stats provides the small statistical toolkit used by the
// experiment harness: summary statistics, confidence intervals for
// proportions, histograms, and least-squares fits for scaling exponents.
package stats

import (
	"math"
	"sort"
)

// Summary holds the usual batch statistics of a sample.
type Summary struct {
	N              int
	Mean, Variance float64 // Variance is the unbiased (n−1) estimator
	Std            float64
	Min, Max       float64
	Median         float64
}

// Summarize computes a Summary of xs. An empty sample yields a zero Summary.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = xs[0], xs[0]
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Variance = ss / float64(s.N-1)
		s.Std = math.Sqrt(s.Variance)
	}
	s.Median = Quantile(xs, 0.5)
	return s
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. It does not modify xs. An empty
// sample yields NaN.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// MeanInt is a convenience mean for integer samples.
func MeanInt(xs []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	return float64(sum) / float64(len(xs))
}

// Floats converts an int slice to float64 for use with Summarize.
func Floats(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}

// Proportion is an observed success proportion with a Wilson score
// confidence interval.
type Proportion struct {
	Successes, Trials int
	P                 float64 // point estimate
	Lo, Hi            float64 // Wilson interval bounds
}

// WilsonInterval returns the Wilson score interval for k successes in n
// trials at the given z (z = 1.96 for 95%). Zero trials yields the vacuous
// interval [0, 1].
func WilsonInterval(k, n int, z float64) Proportion {
	pr := Proportion{Successes: k, Trials: n, Lo: 0, Hi: 1}
	if n == 0 {
		pr.P = math.NaN()
		return pr
	}
	p := float64(k) / float64(n)
	pr.P = p
	nf := float64(n)
	z2 := z * z
	denom := 1 + z2/nf
	centre := (p + z2/(2*nf)) / denom
	half := z * math.Sqrt(p*(1-p)/nf+z2/(4*nf*nf)) / denom
	pr.Lo = math.Max(0, centre-half)
	pr.Hi = math.Min(1, centre+half)
	return pr
}

// LinearFit holds the least-squares line y = Slope·x + Intercept with the
// coefficient of determination.
type LinearFit struct {
	Slope, Intercept, R2 float64
}

// FitLine fits a least-squares line through (x, y). It panics on mismatched
// lengths and returns a zero fit for fewer than 2 points.
func FitLine(x, y []float64) LinearFit {
	if len(x) != len(y) {
		panic("stats: FitLine length mismatch")
	}
	n := float64(len(x))
	if len(x) < 2 {
		return LinearFit{}
	}
	var sx, sy, sxx, sxy, syy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
		syy += y[i] * y[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return LinearFit{}
	}
	slope := (n*sxy - sx*sy) / den
	intercept := (sy - slope*sx) / n
	// R² from explained variance.
	ssTot := syy - sy*sy/n
	ssRes := 0.0
	for i := range x {
		r := y[i] - (slope*x[i] + intercept)
		ssRes += r * r
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return LinearFit{Slope: slope, Intercept: intercept, R2: r2}
}

// FitPower fits y = c·x^e by least squares in log-log space and returns
// (e, c, R²). All inputs must be positive; non-positive pairs are skipped.
func FitPower(x, y []float64) (exponent, coeff, r2 float64) {
	var lx, ly []float64
	for i := range x {
		if x[i] > 0 && y[i] > 0 {
			lx = append(lx, math.Log(x[i]))
			ly = append(ly, math.Log(y[i]))
		}
	}
	fit := FitLine(lx, ly)
	return fit.Slope, math.Exp(fit.Intercept), fit.R2
}

// Histogram counts xs into nbins equal-width bins over [min, max]. Values
// outside the range are clamped into the end bins. It returns the counts
// and the bin edges (nbins+1 values).
func Histogram(xs []float64, nbins int, min, max float64) (counts []int, edges []float64) {
	if nbins < 1 {
		panic("stats: Histogram requires nbins >= 1")
	}
	if max <= min {
		panic("stats: Histogram requires max > min")
	}
	counts = make([]int, nbins)
	edges = make([]float64, nbins+1)
	width := (max - min) / float64(nbins)
	for i := range edges {
		edges[i] = min + float64(i)*width
	}
	for _, x := range xs {
		b := int((x - min) / width)
		if b < 0 {
			b = 0
		}
		if b >= nbins {
			b = nbins - 1
		}
		counts[b]++
	}
	return counts, edges
}

// BinomialTail returns P(X >= k) for X ~ Bin(n, p), computed by summing the
// pmf in log space for numerical stability. Used to check the Lemma 7
// bounds against the exact binomial tail.
func BinomialTail(n, k int, p float64) float64 {
	if k <= 0 {
		return 1
	}
	if k > n || p <= 0 {
		return 0
	}
	if p >= 1 {
		return 1
	}
	total := 0.0
	lp, lq := math.Log(p), math.Log1p(-p)
	for i := k; i <= n; i++ {
		lc := lchoose(n, i)
		total += math.Exp(lc + float64(i)*lp + float64(n-i)*lq)
	}
	if total > 1 {
		total = 1
	}
	return total
}

// lchoose returns log(n choose k).
func lchoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	a, _ := math.Lgamma(float64(n + 1))
	b, _ := math.Lgamma(float64(k + 1))
	c, _ := math.Lgamma(float64(n - k + 1))
	return a - b - c
}
