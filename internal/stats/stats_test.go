package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummarizeBasic(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Errorf("summary = %+v", s)
	}
	if !almost(s.Variance, 2.5, 1e-12) {
		t.Errorf("variance = %v, want 2.5", s.Variance)
	}
	if !almost(s.Std, math.Sqrt(2.5), 1e-12) {
		t.Errorf("std = %v", s.Std)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Errorf("empty summary N = %d", s.N)
	}
	s := Summarize([]float64{7})
	if s.Mean != 7 || s.Variance != 0 || s.Median != 7 || s.Min != 7 || s.Max != 7 {
		t.Errorf("single summary = %+v", s)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2} // unsorted on purpose
	if q := Quantile(xs, 0); q != 1 {
		t.Errorf("q0 = %v", q)
	}
	if q := Quantile(xs, 1); q != 4 {
		t.Errorf("q1 = %v", q)
	}
	if q := Quantile(xs, 0.5); !almost(q, 2.5, 1e-12) {
		t.Errorf("median = %v", q)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty quantile should be NaN")
	}
	// Quantile must not mutate its input.
	if xs[0] != 4 {
		t.Error("Quantile sorted the caller's slice")
	}
}

func TestMeanIntAndFloats(t *testing.T) {
	if m := MeanInt([]int{1, 2, 3}); m != 2 {
		t.Errorf("MeanInt = %v", m)
	}
	if m := MeanInt(nil); m != 0 {
		t.Errorf("MeanInt(nil) = %v", m)
	}
	f := Floats([]int{1, 2})
	if len(f) != 2 || f[0] != 1 || f[1] != 2 {
		t.Errorf("Floats = %v", f)
	}
}

func TestWilsonInterval(t *testing.T) {
	p := WilsonInterval(50, 100, 1.96)
	if !almost(p.P, 0.5, 1e-12) {
		t.Errorf("P = %v", p.P)
	}
	if p.Lo >= 0.5 || p.Hi <= 0.5 {
		t.Errorf("interval [%v, %v] should straddle 0.5", p.Lo, p.Hi)
	}
	if p.Lo < 0.40 || p.Hi > 0.60 {
		t.Errorf("interval [%v, %v] too wide for n=100", p.Lo, p.Hi)
	}
	// Extreme: all successes keeps Hi = 1 but Lo close to 1 for big n.
	q := WilsonInterval(1000, 1000, 1.96)
	if q.Lo < 0.99 {
		t.Errorf("all-success Lo = %v", q.Lo)
	}
	// Zero trials: vacuous.
	z := WilsonInterval(0, 0, 1.96)
	if z.Lo != 0 || z.Hi != 1 || !math.IsNaN(z.P) {
		t.Errorf("zero-trial interval = %+v", z)
	}
}

func TestWilsonMonotoneInN(t *testing.T) {
	// More trials at the same proportion must narrow the interval.
	small := WilsonInterval(5, 10, 1.96)
	large := WilsonInterval(500, 1000, 1.96)
	if large.Hi-large.Lo >= small.Hi-small.Lo {
		t.Errorf("interval did not narrow: %v vs %v", large, small)
	}
}

func TestFitLineExact(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	y := []float64{1, 3, 5, 7} // y = 2x + 1
	f := FitLine(x, y)
	if !almost(f.Slope, 2, 1e-12) || !almost(f.Intercept, 1, 1e-12) || !almost(f.R2, 1, 1e-12) {
		t.Errorf("fit = %+v", f)
	}
}

func TestFitLineDegenerate(t *testing.T) {
	if f := FitLine(nil, nil); f.Slope != 0 {
		t.Error("empty fit should be zero")
	}
	if f := FitLine([]float64{1}, []float64{2}); f.Slope != 0 {
		t.Error("single-point fit should be zero")
	}
	// Vertical data (all same x) must not divide by zero.
	f := FitLine([]float64{2, 2, 2}, []float64{1, 2, 3})
	if f.Slope != 0 {
		t.Errorf("vertical fit slope = %v", f.Slope)
	}
}

func TestFitLinePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	FitLine([]float64{1}, []float64{1, 2})
}

func TestFitPower(t *testing.T) {
	// y = 3·x^1.5
	x := []float64{1, 2, 4, 8, 16}
	y := make([]float64, len(x))
	for i := range x {
		y[i] = 3 * math.Pow(x[i], 1.5)
	}
	e, c, r2 := FitPower(x, y)
	if !almost(e, 1.5, 1e-9) || !almost(c, 3, 1e-9) || !almost(r2, 1, 1e-9) {
		t.Errorf("power fit: e=%v c=%v r2=%v", e, c, r2)
	}
}

func TestFitPowerSkipsNonPositive(t *testing.T) {
	x := []float64{1, 2, -1, 4}
	y := []float64{2, 4, 9, 8} // y = 2x on the positive pairs
	e, c, _ := FitPower(x, y)
	if !almost(e, 1, 1e-9) || !almost(c, 2, 1e-9) {
		t.Errorf("power fit with skip: e=%v c=%v", e, c)
	}
}

func TestHistogram(t *testing.T) {
	counts, edges := Histogram([]float64{0.1, 0.2, 0.8, 1.5, -4}, 2, 0, 1)
	if len(counts) != 2 || len(edges) != 3 {
		t.Fatalf("sizes: %v %v", counts, edges)
	}
	// -4 clamps into bin 0; 1.5 clamps into bin 1.
	if counts[0] != 3 || counts[1] != 2 {
		t.Errorf("counts = %v", counts)
	}
	if edges[0] != 0 || !almost(edges[1], 0.5, 1e-12) || edges[2] != 1 {
		t.Errorf("edges = %v", edges)
	}
}

func TestHistogramPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero bins":   func() { Histogram(nil, 0, 0, 1) },
		"bad range":   func() { Histogram(nil, 2, 1, 1) },
		"inverse rng": func() { Histogram(nil, 2, 2, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestBinomialTail(t *testing.T) {
	// P(X >= 1) for Bin(2, 0.5) = 3/4.
	if got := BinomialTail(2, 1, 0.5); !almost(got, 0.75, 1e-12) {
		t.Errorf("tail = %v, want 0.75", got)
	}
	// P(X >= 2) for Bin(3, p) = 3p²(1−p) + p³ — the paper's eq. (1).
	p := 0.3
	want := 3*p*p*(1-p) + p*p*p
	if got := BinomialTail(3, 2, p); !almost(got, want, 1e-12) {
		t.Errorf("best-of-three tail = %v, want %v", got, want)
	}
	// Boundary cases.
	if BinomialTail(5, 0, 0.5) != 1 || BinomialTail(5, -1, 0.5) != 1 {
		t.Error("k <= 0 tail should be 1")
	}
	if BinomialTail(5, 6, 0.5) != 0 {
		t.Error("k > n tail should be 0")
	}
	if BinomialTail(5, 3, 0) != 0 || BinomialTail(5, 3, 1) != 1 {
		t.Error("degenerate p tails wrong")
	}
}

func TestBinomialTailMonotoneInK(t *testing.T) {
	prev := 1.0
	for k := 0; k <= 20; k++ {
		cur := BinomialTail(20, k, 0.4)
		if cur > prev+1e-12 {
			t.Fatalf("tail increased at k=%d: %v > %v", k, cur, prev)
		}
		prev = cur
	}
}

// Property: Wilson interval always contains the point estimate.
func TestQuickWilsonContainsP(t *testing.T) {
	f := func(kRaw, nRaw uint16) bool {
		n := int(nRaw)%1000 + 1
		k := int(kRaw) % (n + 1)
		pr := WilsonInterval(k, n, 1.96)
		return pr.Lo <= pr.P+1e-12 && pr.P <= pr.Hi+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: Summarize min <= median <= max and min <= mean <= max.
func TestQuickSummaryOrdering(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			// Bound magnitudes so the running sum cannot overflow; the
			// property under test is ordering, not extreme-value handling.
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e300 {
				clean = append(clean, math.Mod(x, 1e6))
			}
		}
		if len(clean) == 0 {
			return true
		}
		s := Summarize(clean)
		return s.Min <= s.Median && s.Median <= s.Max && s.Min <= s.Mean && s.Mean <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: histogram counts sum to the sample size.
func TestQuickHistogramTotal(t *testing.T) {
	f := func(xs []float64, nbRaw uint8) bool {
		nb := int(nbRaw)%20 + 1
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) {
				clean = append(clean, x)
			}
		}
		counts, _ := Histogram(clean, nb, -1, 1)
		total := 0
		for _, c := range counts {
			total += c
		}
		return total == len(clean)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
