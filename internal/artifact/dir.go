package artifact

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Ext is the artifact file extension.
const Ext = ".bo3g"

// staleTmpAge is how old an orphaned temp file must be before Sweep
// removes it: young temp files may belong to a peer process mid-write.
const staleTmpAge = 10 * time.Minute

// ErrNotFound reports that the directory holds no artifact for a key.
var ErrNotFound = errors.New("artifact: not found")

// errCrashInjected is returned by the test-only crash hook.
var errCrashInjected = errors.New("artifact: injected crash")

// Dir is a directory of graph artifacts shared by a fleet of processes:
// the disk tier under the serve-time in-memory GraphCache, and the
// output target of `bo3graph build -dir`. Files are content-addressed by
// the SHA-256 of the graph-spec key, written to a unique temp file and
// renamed into place, and gated on their final whole-file checksum at
// load — so concurrent writers are idempotent (same key ⇒ same bytes)
// and readers can never observe a torn artifact.
type Dir struct {
	root     string
	maxBytes int64 // 0 = unbounded

	mu sync.Mutex // serializes eviction scans within this process

	// evictions counts files removed by the byte-bound eviction scan;
	// exported by the serve layer as a counter metric.
	evictions atomic.Int64

	// failAfterBytes, when >= 0, makes the next Store abandon the temp
	// file after writing that many bytes without renaming — the
	// crash-injection hook for torn-write tests, mirroring the
	// internal/store pattern.
	failAfterBytes int64
}

// OpenDir opens (creating if needed) an artifact directory. maxBytes > 0
// bounds the directory's total artifact size: after each write the
// least-recently-used files (by modification time) are evicted until the
// bound holds. Stale temp files from crashed writers are swept on open.
func OpenDir(root string, maxBytes int64) (*Dir, error) {
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("artifact: %w", err)
	}
	d := &Dir{root: root, maxBytes: maxBytes, failAfterBytes: -1}
	d.Sweep()
	return d, nil
}

// Root returns the directory path.
func (d *Dir) Root() string { return d.root }

// Path returns the file path an artifact for key lives at (whether or
// not it exists): root/sha256(key).bo3g.
func (d *Dir) Path(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(d.root, hex.EncodeToString(sum[:])+Ext)
}

// Load reads, checksums, and decodes the artifact for key. It returns
// ErrNotFound when no file exists. A file that fails decoding — torn,
// bit-flipped, or recorded under a different key — is removed so the
// caller's rebuild can write a fresh one, and the decode error is
// returned. A newer-format file (ErrVersion) is NOT removed: in a
// mixed-version fleet it is a valid artifact written by an upgraded
// peer, and deleting it would make old and new binaries churn the
// shared cache against each other through a rolling upgrade.
func (d *Dir) Load(key string) (*Artifact, error) {
	path := d.Path(key)
	data, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, ErrNotFound
		}
		return nil, fmt.Errorf("artifact: %w", err)
	}
	a, err := Decode(data)
	if err == nil && a.Key != key {
		err = fmt.Errorf("artifact: file %s records key %q, expected %q", filepath.Base(path), a.Key, key)
	}
	if err != nil {
		if !errors.Is(err, ErrVersion) {
			os.Remove(path)
		}
		return nil, err
	}
	// Touch the file so mtime approximates recency-of-use and the
	// eviction scan drops cold artifacts first. Best-effort: a read-only
	// directory still serves loads.
	now := time.Now()
	_ = os.Chtimes(path, now, now)
	return a, nil
}

// Store encodes the artifact and publishes it under its key via a unique
// temp file and an atomic rename, so fleet peers reading or writing the
// same key concurrently see either nothing or a complete, checksummed
// file. It then evicts least-recently-used artifacts if the directory
// exceeds its byte bound. Returns the published path.
func (d *Dir) Store(a *Artifact) (string, error) {
	data, err := a.Encode()
	if err != nil {
		return "", err
	}
	path := d.Path(a.Key)
	tmp, err := os.CreateTemp(d.root, filepath.Base(path)+".*.tmp")
	if err != nil {
		return "", fmt.Errorf("artifact: %w", err)
	}
	if n := d.takeFailAfter(); n >= 0 {
		// Crash injection: write a prefix, keep the temp file, skip the
		// rename — exactly what a process death mid-publish leaves behind.
		if n > int64(len(data)) {
			n = int64(len(data))
		}
		tmp.Write(data[:n])
		tmp.Close()
		return "", errCrashInjected
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return "", fmt.Errorf("artifact: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return "", fmt.Errorf("artifact: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return "", fmt.Errorf("artifact: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return "", fmt.Errorf("artifact: %w", err)
	}
	d.evict(path)
	return path, nil
}

func (d *Dir) takeFailAfter() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := d.failAfterBytes
	d.failAfterBytes = -1
	return n
}

// Sweep removes orphaned temp files older than staleTmpAge and returns
// how many it removed. Fresh temp files are left alone — they may be a
// live peer's in-flight write.
func (d *Dir) Sweep() int {
	entries, err := os.ReadDir(d.root)
	if err != nil {
		return 0
	}
	removed := 0
	cutoff := time.Now().Add(-staleTmpAge)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".tmp") {
			continue
		}
		info, err := e.Info()
		if err != nil || info.ModTime().After(cutoff) {
			continue
		}
		if os.Remove(filepath.Join(d.root, e.Name())) == nil {
			removed++
		}
	}
	return removed
}

// evict enforces the byte bound, removing least-recently-used artifacts
// (oldest mtime first) until the directory fits. The just-published file
// is never evicted, even if it alone exceeds the bound.
func (d *Dir) evict(keep string) {
	if d.maxBytes <= 0 {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	entries, err := os.ReadDir(d.root)
	if err != nil {
		return
	}
	type file struct {
		path  string
		size  int64
		mtime time.Time
	}
	var files []file
	var total int64
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), Ext) {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		files = append(files, file{filepath.Join(d.root, e.Name()), info.Size(), info.ModTime()})
		total += info.Size()
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mtime.Before(files[j].mtime) })
	for _, f := range files {
		if total <= d.maxBytes {
			return
		}
		if f.path == keep {
			continue
		}
		if os.Remove(f.path) == nil {
			total -= f.size
			d.evictions.Add(1)
		}
	}
}

// Evictions returns how many artifacts the byte-bound eviction scan has
// removed over this Dir's lifetime.
func (d *Dir) Evictions() int64 { return d.evictions.Load() }

// Len returns how many artifacts the directory currently holds.
func (d *Dir) Len() int {
	entries, err := os.ReadDir(d.root)
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), Ext) {
			n++
		}
	}
	return n
}
