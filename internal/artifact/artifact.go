// Package artifact is the binary graph-artifact layer behind the
// preprocess→serve split: an offline builder (cmd/bo3graph) serializes a
// generated CSR topology to a versioned, checksummed file keyed by its
// canonical spec key, and the serve-time artifact cache (internal/serve,
// bo3serve -artifact-dir) loads it near-instantly instead of re-running
// the generator path on every cold process.
//
// # On-disk format (version 1)
//
// All integers are little-endian. The file is three checksummed sections
// plus a whole-file checksum:
//
//	offset  size      field
//	0       8         magic "BO3GRAPH"
//	8       2         format version (uint16) = 1
//	10      2         reserved (0)
//	12      8         n, vertex count (uint64)
//	20      8         m, undirected edge count (uint64)
//	28      4         keyLen (uint32)
//	32      4         nameLen (uint32)
//	36      keyLen    graph-spec key (spec.GraphSpec.Key(), UTF-8)
//	…       nameLen   graph name (UTF-8)
//	…       4         header CRC-32C (over every byte above)
//	…       0–7       zero padding to an 8-byte boundary
//	…       (n+1)·4   CSR offsets (int32 array)
//	…       4         offsets CRC-32C
//	…       2m·4      CSR adjacency (int32 array)
//	…       4         adjacency CRC-32C
//	…       4         whole-file CRC-32C (over every byte above)
//
// The declared sizes must account for the file exactly: a truncated,
// padded, or inconsistent file fails decoding before any size-dependent
// allocation, so hostile input can neither panic nor balloon memory.
//
// Versioning policy: the version field is checked before anything else
// (even the header checksum), and any version other than 1 is rejected —
// old binaries refuse new artifacts loudly instead of misreading them.
// Any layout change, however small, bumps the version; version 1 files
// are byte-for-byte pinned by the golden fixtures in testdata/.
//
// # Zero-copy loads
//
// The array sections are aligned so that on little-endian hosts Decode
// returns int32 views directly into the read buffer — loading a graph is
// one file read plus three checksum passes, no per-element work and no
// second allocation. Big-endian (or misaligned) hosts fall back to an
// explicit conversion.
package artifact

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"unsafe"

	"repro/internal/graph"
)

// Magic identifies an artifact file; Version is the current (only) format
// version.
const (
	Magic   = "BO3GRAPH"
	Version = 1
)

const (
	headerFixed = 36      // magic through nameLen
	maxKeyLen   = 1 << 16 // sanity caps, checked before any allocation
	maxNameLen  = 1 << 16
	// maxN keeps n+1 (and every offset) inside int32, the CSR index type.
	maxN = math.MaxInt32 - 1
)

// ErrVersion wraps version-mismatch failures, so callers can distinguish
// "newer format" from corruption.
var ErrVersion = errors.New("artifact: unsupported format version")

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Artifact is a decoded (or to-be-encoded) graph artifact: the canonical
// spec key it was built for and the CSR topology itself.
type Artifact struct {
	// Key is the canonical graph-spec key (spec.GraphSpec.Key()) the
	// artifact answers for. The serve-time cache addresses files by its
	// hash and rejects a decoded artifact whose recorded key disagrees.
	Key string
	// Graph is the CSR topology. After Decode it may alias the read
	// buffer (zero-copy) and must be treated as immutable, exactly like
	// every other built graph.
	Graph *graph.Graph
}

// New wraps a built CSR graph and its spec key as an artifact.
func New(key string, g *graph.Graph) *Artifact { return &Artifact{Key: key, Graph: g} }

// hostLittle reports whether this host is little-endian (the on-disk byte
// order); set once at init.
var hostLittle = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// int32Bytes views an int32 slice as raw bytes on little-endian hosts
// (nil, false otherwise).
func int32Bytes(s []int32) ([]byte, bool) {
	if !hostLittle {
		return nil, false
	}
	if len(s) == 0 {
		return []byte{}, true
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*4), true
}

// int32View views a byte slice as int32s without copying when the host is
// little-endian and the base is 4-byte aligned (ok = false otherwise; the
// caller then converts explicitly).
func int32View(b []byte) ([]int32, bool) {
	if !hostLittle {
		return nil, false
	}
	if len(b) == 0 {
		return []int32{}, true
	}
	if uintptr(unsafe.Pointer(&b[0]))%4 != 0 {
		return nil, false
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), len(b)/4), true
}

// appendInt32s appends the array section's little-endian bytes.
func appendInt32s(dst []byte, s []int32) []byte {
	if raw, ok := int32Bytes(s); ok {
		return append(dst, raw...)
	}
	for _, v := range s {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(v))
	}
	return dst
}

// decodeInt32s converts an array section read from disk, zero-copy when
// the platform allows.
func decodeInt32s(b []byte) []int32 {
	if view, ok := int32View(b); ok {
		return view
	}
	out := make([]int32, len(b)/4)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out
}

func crc(b []byte) uint32 { return crc32.Checksum(b, crcTable) }

// pad8 returns how many zero bytes pad position p to the next 8-byte
// boundary.
func pad8(p int) int { return (8 - p%8) % 8 }

// EncodedSize returns the exact file size Encode produces for a graph
// with the given key.
func (a *Artifact) EncodedSize() int {
	offsets, adj := a.Graph.CSR()
	head := headerFixed + len(a.Key) + len(a.Graph.Name()) + 4
	return head + pad8(head) + len(offsets)*4 + 4 + len(adj)*4 + 4 + 4
}

// Encode serializes the artifact to the version-1 byte layout. Encoding
// is canonical: equal artifacts produce byte-identical files, which is
// what the golden-format tests pin.
func (a *Artifact) Encode() ([]byte, error) {
	g := a.Graph
	if g == nil {
		return nil, errors.New("artifact: nil graph")
	}
	name := g.Name()
	if len(a.Key) == 0 || len(a.Key) > maxKeyLen {
		return nil, fmt.Errorf("artifact: key length %d outside [1, %d]", len(a.Key), maxKeyLen)
	}
	if len(name) > maxNameLen {
		return nil, fmt.Errorf("artifact: name length %d exceeds %d", len(name), maxNameLen)
	}
	if g.N() > maxN {
		return nil, fmt.Errorf("artifact: n = %d exceeds the format limit %d", g.N(), maxN)
	}
	offsets, adj := g.CSR()

	out := make([]byte, 0, a.EncodedSize())
	out = append(out, Magic...)
	out = binary.LittleEndian.AppendUint16(out, Version)
	out = binary.LittleEndian.AppendUint16(out, 0)
	out = binary.LittleEndian.AppendUint64(out, uint64(g.N()))
	out = binary.LittleEndian.AppendUint64(out, uint64(g.M()))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(a.Key)))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(name)))
	out = append(out, a.Key...)
	out = append(out, name...)
	out = binary.LittleEndian.AppendUint32(out, crc(out))
	for i := pad8(len(out)); i > 0; i-- {
		out = append(out, 0)
	}
	mark := len(out)
	out = appendInt32s(out, offsets)
	out = binary.LittleEndian.AppendUint32(out, crc(out[mark:]))
	mark = len(out)
	out = appendInt32s(out, adj)
	out = binary.LittleEndian.AppendUint32(out, crc(out[mark:]))
	out = binary.LittleEndian.AppendUint32(out, crc(out))
	return out, nil
}

// Decode parses an encoded artifact, verifying the format version, every
// section checksum, the whole-file checksum, and the cheap CSR structural
// invariants. On little-endian hosts the returned graph's arrays alias
// data (zero-copy), so the buffer must stay untouched for the graph's
// lifetime. Decode never panics and never allocates more than O(len
// (data)) regardless of input: every declared size is validated against
// the actual byte count first.
func Decode(data []byte) (*Artifact, error) {
	if len(data) < headerFixed+4 {
		return nil, fmt.Errorf("artifact: %d bytes is shorter than any valid artifact", len(data))
	}
	if string(data[:8]) != Magic {
		return nil, errors.New("artifact: bad magic (not an artifact file)")
	}
	if v := binary.LittleEndian.Uint16(data[8:]); v != Version {
		return nil, fmt.Errorf("%w %d (this binary reads version %d)", ErrVersion, v, Version)
	}
	n := binary.LittleEndian.Uint64(data[12:])
	m := binary.LittleEndian.Uint64(data[20:])
	keyLen := binary.LittleEndian.Uint32(data[28:])
	nameLen := binary.LittleEndian.Uint32(data[32:])
	if keyLen == 0 || keyLen > maxKeyLen || nameLen > maxNameLen {
		return nil, fmt.Errorf("artifact: implausible key/name lengths %d/%d", keyLen, nameLen)
	}
	if n > maxN || 2*m > math.MaxInt32 {
		return nil, fmt.Errorf("artifact: n = %d, m = %d exceed the format limits", n, m)
	}
	// The exact size the declared dimensions demand; everything below is
	// uint64 arithmetic on values already bounded above, so it cannot
	// overflow. Only after this check do the section boundaries exist.
	headEnd := uint64(headerFixed) + uint64(keyLen) + uint64(nameLen)
	offStart := headEnd + 4 + uint64(pad8(int(headEnd+4)))
	offEnd := offStart + (n+1)*4
	adjStart := offEnd + 4
	adjEnd := adjStart + 2*m*4
	total := adjEnd + 4 + 4
	if uint64(len(data)) != total {
		return nil, fmt.Errorf("artifact: file is %d bytes, but the header describes %d", len(data), total)
	}
	if got, want := crc(data[:headEnd]), binary.LittleEndian.Uint32(data[headEnd:]); got != want {
		return nil, fmt.Errorf("artifact: header checksum mismatch (got %08x, want %08x)", got, want)
	}
	// The padding bytes must be zero, not merely CRC-consistent: encoding
	// is canonical, and Decode alone must reject non-canonical files
	// rather than leaving that to Verify's re-encode pass.
	for i := headEnd + 4; i < offStart; i++ {
		if data[i] != 0 {
			return nil, fmt.Errorf("artifact: nonzero padding byte at offset %d", i)
		}
	}
	if got, want := crc(data[offStart:offEnd]), binary.LittleEndian.Uint32(data[offEnd:]); got != want {
		return nil, fmt.Errorf("artifact: offsets checksum mismatch (got %08x, want %08x)", got, want)
	}
	if got, want := crc(data[adjStart:adjEnd]), binary.LittleEndian.Uint32(data[adjEnd:]); got != want {
		return nil, fmt.Errorf("artifact: adjacency checksum mismatch (got %08x, want %08x)", got, want)
	}
	if got, want := crc(data[:total-4]), binary.LittleEndian.Uint32(data[total-4:]); got != want {
		return nil, fmt.Errorf("artifact: whole-file checksum mismatch (got %08x, want %08x)", got, want)
	}
	key := string(data[headerFixed : headerFixed+uint64(keyLen)])
	name := string(data[headerFixed+uint64(keyLen) : headEnd])
	offsets := decodeInt32s(data[offStart:offEnd])
	adj := decodeInt32s(data[adjStart:adjEnd])
	g, err := graph.NewCSR(offsets, adj, name)
	if err != nil {
		return nil, err
	}
	if uint64(g.M()) != m {
		return nil, fmt.Errorf("artifact: header claims %d edges, adjacency holds %d", m, g.M())
	}
	return &Artifact{Key: key, Graph: g}, nil
}

// Verify is the offline audit behind `bo3graph verify`: Decode (which
// checks every checksum) plus the full CSR invariant set — sortedness,
// symmetry, no parallel edges — and a re-encode that must reproduce the
// input byte-for-byte, proving the file is a canonical encoding.
func Verify(data []byte) (*Artifact, error) {
	a, err := Decode(data)
	if err != nil {
		return nil, err
	}
	if err := a.Graph.Validate(); err != nil {
		return nil, fmt.Errorf("artifact: %w", err)
	}
	enc, err := a.Encode()
	if err != nil {
		return nil, err
	}
	if len(enc) != len(data) {
		return nil, errors.New("artifact: file is not a canonical encoding (re-encode size differs)")
	}
	for i := range enc {
		if enc[i] != data[i] {
			return nil, fmt.Errorf("artifact: file is not a canonical encoding (first divergence at byte %d)", i)
		}
	}
	return a, nil
}
