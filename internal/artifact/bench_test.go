package artifact

import (
	"os"
	"path/filepath"
	"testing"

	"repro/spec"
)

// benchSpec is a generator-heavy family at a serving-relevant size: the
// random-regular pairing model with retries is the path the artifact
// tier exists to amortise.
var benchSpec = spec.GraphSpec{Family: "random-regular", N: 1 << 15, D: 16, Seed: 1}

// BenchmarkGraphBuild is the baseline the artifact load competes with:
// the full in-process generator path for the bench topology.
func BenchmarkGraphBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchSpec.Build(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkArtifactLoad measures the serve-time cold path with an
// artifact present: one file read plus checksums plus the zero-copy
// decode. Compare with BenchmarkGraphBuild — the ratio is the
// preprocess→serve speedup recorded in BENCH_engine.json.
func BenchmarkArtifactLoad(b *testing.B) {
	a, err := FromSpec(benchSpec)
	if err != nil {
		b.Fatal(err)
	}
	d, err := OpenDir(b.TempDir(), 0)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := d.Store(a); err != nil {
		b.Fatal(err)
	}
	enc, _ := a.Encode()
	b.SetBytes(int64(len(enc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Load(a.Key); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkArtifactDecode isolates the in-memory decode (checksum passes
// + zero-copy views) from the file read.
func BenchmarkArtifactDecode(b *testing.B) {
	a, err := FromSpec(benchSpec)
	if err != nil {
		b.Fatal(err)
	}
	enc, err := a.Encode()
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(enc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkArtifactEncode measures the build-side serialization.
func BenchmarkArtifactEncode(b *testing.B) {
	a, err := FromSpec(benchSpec)
	if err != nil {
		b.Fatal(err)
	}
	enc, err := a.Encode()
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(enc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Encode(); err != nil {
			b.Fatal(err)
		}
	}
}

// TestBenchArtifactRoundTrip keeps the bench spec honest: the artifact
// written by the bench setup must verify and survive a directory reopen
// (the bench measures real loads, not a broken fixture).
func TestBenchArtifactRoundTrip(t *testing.T) {
	a, err := FromSpec(spec.GraphSpec{Family: "random-regular", N: 1 << 10, D: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	d, err := OpenDir(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	p, err := d.Store(a)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Verify(data); err != nil {
		t.Fatal(err)
	}
	if filepath.Dir(p) != dir {
		t.Fatalf("stored outside the directory: %s", p)
	}
}
