package artifact

import (
	"fmt"

	"repro/internal/graph"
	"repro/spec"
)

// FromSpec validates the spec, runs its generator, and wraps the result
// as an artifact under the spec's canonical key — the shared build path
// of `bo3graph build` and the serve-time write-through. Virtual families
// (complete-virtual's O(1) arithmetic topology) have no CSR arrays to
// serialize and are rejected with a descriptive error; they are cheaper
// to rebuild than to load anyway.
func FromSpec(s spec.GraphSpec) (*Artifact, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	topo, err := s.Build()
	if err != nil {
		return nil, err
	}
	g, ok := topo.(*graph.Graph)
	if !ok {
		return nil, fmt.Errorf("artifact: family %q builds a virtual topology with no CSR arrays; nothing to preprocess", s.Family)
	}
	return New(s.Key(), g), nil
}
