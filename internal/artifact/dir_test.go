package artifact

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/spec"
)

func testArtifact(t *testing.T, n int) *Artifact {
	t.Helper()
	a, err := FromSpec(spec.GraphSpec{Family: "cycle", N: n})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestDirStoreLoad(t *testing.T) {
	d, err := OpenDir(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	a := testArtifact(t, 16)
	if _, err := d.Load(a.Key); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Load before Store = %v, want ErrNotFound", err)
	}
	path, err := d.Store(a)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Dir(path) != d.Root() || !strings.HasSuffix(path, Ext) {
		t.Fatalf("stored at %q, want a %s file in %s", path, Ext, d.Root())
	}
	got, err := d.Load(a.Key)
	if err != nil {
		t.Fatal(err)
	}
	assertSameGraph(t, got.Graph, a.Graph)
	if d.Len() != 1 {
		t.Fatalf("Len = %d, want 1", d.Len())
	}
	// Idempotent re-store: same key, same bytes, still one file.
	if _, err := d.Store(a); err != nil {
		t.Fatal(err)
	}
	if d.Len() != 1 {
		t.Fatalf("Len after re-store = %d, want 1", d.Len())
	}
}

// TestDirCrashInjection is the torn-write drill: a writer that dies
// after a partial temp-file write (no rename) must leave the published
// namespace untouched — the next load simply misses, the rebuild path
// writes a fresh artifact, and the stale temp file is swept once old
// enough. This mirrors the internal/store torn-tail injection tests.
func TestDirCrashInjection(t *testing.T) {
	d, err := OpenDir(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	a := testArtifact(t, 32)

	d.failAfterBytes = 10 // die 10 bytes into the temp file
	if _, err := d.Store(a); !errors.Is(err, errCrashInjected) {
		t.Fatalf("Store under injection = %v, want errCrashInjected", err)
	}
	// The crash left a torn temp file but published nothing.
	tmps, _ := filepath.Glob(filepath.Join(d.Root(), "*.tmp"))
	if len(tmps) != 1 {
		t.Fatalf("found %d temp files after crash, want 1", len(tmps))
	}
	if d.Len() != 0 {
		t.Fatalf("crash published %d artifacts, want 0", d.Len())
	}
	if _, err := d.Load(a.Key); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Load after crash = %v, want ErrNotFound (no partial artifact visible)", err)
	}

	// The rebuild path: a clean Store succeeds and loads back intact.
	if _, err := d.Store(a); err != nil {
		t.Fatalf("Store after crash: %v", err)
	}
	got, err := d.Load(a.Key)
	if err != nil {
		t.Fatalf("Load after rebuild: %v", err)
	}
	assertSameGraph(t, got.Graph, a.Graph)

	// Sweep ignores the young temp file (it could be a live peer's
	// write), then removes it once stale.
	if n := d.Sweep(); n != 0 {
		t.Fatalf("Sweep removed %d young temp files, want 0", n)
	}
	old := time.Now().Add(-2 * staleTmpAge)
	if err := os.Chtimes(tmps[0], old, old); err != nil {
		t.Fatal(err)
	}
	if n := d.Sweep(); n != 1 {
		t.Fatalf("Sweep removed %d stale temp files, want 1", n)
	}
	tmps, _ = filepath.Glob(filepath.Join(d.Root(), "*.tmp"))
	if len(tmps) != 0 {
		t.Fatalf("directory not clean after sweep: %v", tmps)
	}
}

// TestDirCorruptArtifactRemoved: a torn or bit-flipped published file —
// e.g. a crash mid-rename on a non-atomic filesystem, or disk rot — must
// be rejected by its checksums, deleted, and replaced by the rebuild.
func TestDirCorruptArtifactRemoved(t *testing.T) {
	d, err := OpenDir(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	a := testArtifact(t, 32)
	path, err := d.Store(a)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Truncate: the torn-file shape.
	if err := os.WriteFile(path, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Load(a.Key); err == nil || errors.Is(err, ErrNotFound) {
		t.Fatalf("Load(torn) = %v, want a decode error", err)
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("torn artifact was not removed")
	}
	if _, err := d.Load(a.Key); !errors.Is(err, ErrNotFound) {
		t.Fatalf("second Load = %v, want ErrNotFound (directory clean)", err)
	}
	// Bit-flip inside the adjacency section.
	if _, err := d.Store(a); err != nil {
		t.Fatal(err)
	}
	flipped := bytes.Clone(data)
	flipped[len(flipped)-20] ^= 0x40
	if err := os.WriteFile(path, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Load(a.Key); err == nil || errors.Is(err, ErrNotFound) {
		t.Fatalf("Load(bit-flipped) = %v, want a decode error", err)
	}
	if d.Len() != 0 {
		t.Fatal("bit-flipped artifact was not removed")
	}
}

// TestDirKeyMismatchRemoved: a file renamed onto the wrong content
// address decodes fine but records the wrong key; Load must refuse and
// remove it rather than serve a different topology than asked for.
func TestDirKeyMismatchRemoved(t *testing.T) {
	d, err := OpenDir(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	a := testArtifact(t, 16)
	b := testArtifact(t, 24)
	if _, err := d.Store(a); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(d.Path(a.Key), d.Path(b.Key)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Load(b.Key); err == nil || errors.Is(err, ErrNotFound) {
		t.Fatalf("Load(mismatched) = %v, want a key-mismatch error", err)
	}
	if d.Len() != 0 {
		t.Fatal("mismatched artifact was not removed")
	}
}

// TestDirEviction: with a byte bound set, storing past it evicts the
// least-recently-used artifacts, never the one just written.
func TestDirEviction(t *testing.T) {
	a := testArtifact(t, 64)
	enc, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	// Budget for two artifacts of this size, not three.
	d, err := OpenDir(t.TempDir(), int64(len(enc))*5/2)
	if err != nil {
		t.Fatal(err)
	}
	arts := []*Artifact{testArtifact(t, 64), testArtifact(t, 66), testArtifact(t, 68)}
	var paths []string
	for i, art := range arts {
		p, err := d.Store(art)
		if err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
		// Separate mtimes so LRU order is unambiguous on coarse clocks.
		ts := time.Now().Add(time.Duration(i-10) * time.Second)
		if err := os.Chtimes(p, ts, ts); err != nil {
			t.Fatal(err)
		}
	}
	d.evict(paths[2])
	if d.Len() != 2 {
		t.Fatalf("Len = %d, want 2 after eviction", d.Len())
	}
	if _, err := d.Load(arts[0].Key); !errors.Is(err, ErrNotFound) {
		t.Fatalf("oldest artifact should be evicted, Load = %v", err)
	}
	if _, err := d.Load(arts[2].Key); err != nil {
		t.Fatalf("just-written artifact evicted: %v", err)
	}
}

// TestOpenDirSweepsStaleTmp: opening a directory sweeps temp files left
// by long-dead writers.
func TestOpenDirSweepsStaleTmp(t *testing.T) {
	root := t.TempDir()
	stale := filepath.Join(root, "dead.0.tmp")
	if err := os.WriteFile(stale, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-2 * staleTmpAge)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDir(root, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("stale temp file survived OpenDir")
	}
}

// TestDirVersionMismatchKept: a newer-format artifact (written by an
// upgraded fleet peer) must be reported as ErrVersion but NOT deleted —
// an old binary repeatedly deleting valid v2 files while new binaries
// rewrite them would churn the shared cache through a rolling upgrade.
func TestDirVersionMismatchKept(t *testing.T) {
	d, err := OpenDir(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	a := testArtifact(t, 16)
	path, err := d.Store(a)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Bump the version byte in place. The version check fires before any
	// checksum, so the now-stale CRCs never enter the picture.
	data[8] = 2
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Load(a.Key); !errors.Is(err, ErrVersion) {
		t.Fatalf("Load(v2 file) = %v, want ErrVersion", err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("newer-format artifact was removed: %v", err)
	}
	if d.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (file kept for upgraded peers)", d.Len())
	}
}
