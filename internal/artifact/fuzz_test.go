package artifact

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzArtifactDecode feeds arbitrary bytes to Decode: truncations,
// bit-flips, and hostile headers must all return an error — never panic,
// never allocate beyond the input's own size (the header's declared
// dimensions are validated against the byte count before any
// allocation). Seeded from the committed golden fixtures so mutation
// starts from structurally valid files, the highest-yield corpus.
func FuzzArtifactDecode(f *testing.F) {
	fixtures, _ := filepath.Glob(filepath.Join("testdata", "*.bo3g"))
	for _, fix := range fixtures {
		if data, err := os.ReadFile(fix); err == nil {
			f.Add(data)
			// Also seed a truncation and a bit-flip of each fixture so
			// the interesting rejection paths are explored from round one.
			f.Add(data[:len(data)/2])
			mut := append([]byte(nil), data...)
			mut[len(mut)/2] ^= 1
			f.Add(mut)
		}
	}
	f.Add([]byte{})
	f.Add([]byte(Magic))
	// Checksum-valid but structurally hostile seeds: mutation alone never
	// reaches these (it breaks the CRCs first). The [0, 100, 0] offsets
	// case is the regression seed for the NewCSR slice-bounds panic.
	f.Add(encodeRaw("spec", "bad", 2, 0, []int32{0, 100, 0}, nil, 0))
	f.Add(encodeRaw("spec", "bad", 2, 1, []int32{0, 100, 2}, []int32{1, 0}, 0))
	f.Add(encodeRaw("k", "", 2, 1, []int32{0, 1, 2}, []int32{1, 0}, 0xAA))
	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := Decode(data)
		if err != nil {
			return
		}
		// The rare mutation that still decodes must yield a usable graph:
		// accessors must not panic and the shape must be self-consistent.
		if a.Graph == nil || a.Key == "" {
			t.Fatalf("Decode returned no error but key=%q graph=%v", a.Key, a.Graph)
		}
		n := a.Graph.N()
		for v := 0; v < n; v++ {
			a.Graph.Degree(v)
		}
	})
}
