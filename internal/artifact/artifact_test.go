package artifact

import (
	"bytes"
	"encoding/binary"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/spec"
)

// -update regenerates the golden fixtures under testdata/ from the
// current encoder. Run it only when the format version is deliberately
// bumped; the whole point of the fixtures is to make accidental layout
// drift fail loudly.
var update = flag.Bool("update", false, "rewrite golden artifact fixtures")

// goldenSpecs are the deterministic specs behind the committed fixtures:
// small, covering a deterministic family, a seeded generator, and a
// non-n-parameterised family.
var goldenSpecs = []struct {
	file string
	spec spec.GraphSpec
}{
	{"cycle_n8.bo3g", spec.GraphSpec{Family: "cycle", N: 8}},
	{"regular_n8_d3.bo3g", spec.GraphSpec{Family: "random-regular", N: 8, D: 3, Seed: 7}},
	{"torus_3x3.bo3g", spec.GraphSpec{Family: "torus", Rows: 3, Cols: 3}},
}

func goldenPath(file string) string { return filepath.Join("testdata", file) }

// TestGoldenFixtures pins format v1 byte-for-byte: encoding each golden
// spec must reproduce the committed file exactly, and decoding the
// committed file must round-trip through a byte-identical re-encode.
// Any intentional format change must bump Version and regenerate with
// -update; anything else failing here is an accidental format break.
func TestGoldenFixtures(t *testing.T) {
	for _, g := range goldenSpecs {
		t.Run(g.file, func(t *testing.T) {
			a, err := FromSpec(g.spec)
			if err != nil {
				t.Fatalf("FromSpec: %v", err)
			}
			enc, err := a.Encode()
			if err != nil {
				t.Fatalf("Encode: %v", err)
			}
			if *update {
				if err := os.WriteFile(goldenPath(g.file), enc, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath(g.file))
			if err != nil {
				t.Fatalf("missing fixture (regenerate with -update): %v", err)
			}
			if !bytes.Equal(enc, want) {
				t.Fatalf("encoding diverged from the committed v%d fixture: got %d bytes, fixture %d bytes; if the format change is intentional, bump Version and regenerate", Version, len(enc), len(want))
			}
			dec, err := Verify(want)
			if err != nil {
				t.Fatalf("Verify(fixture): %v", err)
			}
			if dec.Key != g.spec.Key() {
				t.Fatalf("decoded key %q, want %q", dec.Key, g.spec.Key())
			}
			if dec.Graph.N() != a.Graph.N() || dec.Graph.M() != a.Graph.M() {
				t.Fatalf("decoded shape n=%d m=%d, want n=%d m=%d", dec.Graph.N(), dec.Graph.M(), a.Graph.N(), a.Graph.M())
			}
		})
	}
}

// TestVersionRejection proves forward-version rejection: a fixture whose
// version field is bumped must be refused with ErrVersion — before any
// checksum complaint, so operators see "newer format", not "corrupt".
func TestVersionRejection(t *testing.T) {
	data, err := os.ReadFile(goldenPath("cycle_n8_v2.bo3g"))
	if err != nil {
		t.Fatalf("missing bumped-version fixture (regenerate with -update): %v", err)
	}
	_, err = Decode(data)
	if !errors.Is(err, ErrVersion) {
		t.Fatalf("Decode(v2 fixture) = %v, want ErrVersion", err)
	}
	if !strings.Contains(err.Error(), "version 2") {
		t.Fatalf("error should name the file's version: %v", err)
	}
}

// TestUpdateVersionFixture regenerates the bumped-version fixture
// alongside -update: the golden cycle fixture with its version field set
// to 2 and nothing else touched (checksums now stale, which is the
// point — the version check must fire first).
func TestUpdateVersionFixture(t *testing.T) {
	if !*update {
		t.Skip("only runs with -update")
	}
	data, err := os.ReadFile(goldenPath("cycle_n8.bo3g"))
	if err != nil {
		t.Fatal(err)
	}
	data[8] = 2
	if err := os.WriteFile(goldenPath("cycle_n8_v2.bo3g"), data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestRoundTripAllFamilies round-trips every CSR family in the registry
// through encode→decode→Validate and checks the decoded graph is
// structurally identical to the generated one.
func TestRoundTripAllFamilies(t *testing.T) {
	for _, s := range testSpecs(t) {
		t.Run(s.Family, func(t *testing.T) {
			a, err := FromSpec(s)
			if err != nil {
				t.Fatalf("FromSpec: %v", err)
			}
			enc, err := a.Encode()
			if err != nil {
				t.Fatalf("Encode: %v", err)
			}
			got, err := Verify(enc)
			if err != nil {
				t.Fatalf("Verify: %v", err)
			}
			if got.Key != s.Key() {
				t.Fatalf("key %q, want %q", got.Key, s.Key())
			}
			assertSameGraph(t, got.Graph, a.Graph)
		})
	}
}

// testSpecs returns one small spec per CSR family in the registry,
// failing the test if a newly registered family has no entry here (the
// compiler cannot catch that; this keeps coverage honest).
func testSpecs(t *testing.T) []spec.GraphSpec {
	t.Helper()
	specs := map[string]spec.GraphSpec{
		"complete":       {Family: "complete", N: 16},
		"random-regular": {Family: "random-regular", N: 16, D: 4, Seed: 3},
		"gnp":            {Family: "gnp", N: 32, P: 0.4, Seed: 3},
		"dense":          {Family: "dense", N: 32, Alpha: 0.7, Seed: 3},
		"sbm":            {Family: "sbm", A: 16, B: 16, PIn: 0.6, POut: 0.2, Seed: 3},
		"cycle":          {Family: "cycle", N: 16},
		"torus":          {Family: "torus", Rows: 4, Cols: 4},
		"hypercube":      {Family: "hypercube", Dim: 4},
	}
	var out []spec.GraphSpec
	for _, fam := range spec.Families() {
		if fam == "complete-virtual" {
			continue // virtual: no CSR, rejected by FromSpec (covered below)
		}
		s, ok := specs[fam]
		if !ok {
			t.Fatalf("family %q registered but has no artifact round-trip spec; add one", fam)
		}
		out = append(out, s)
	}
	return out
}

func assertSameGraph(t *testing.T, got, want *graph.Graph) {
	t.Helper()
	if got.Name() != want.Name() {
		t.Fatalf("name %q, want %q", got.Name(), want.Name())
	}
	go1, ga1 := got.CSR()
	go2, ga2 := want.CSR()
	if !intsEqual(go1, go2) || !intsEqual(ga1, ga2) {
		t.Fatal("decoded CSR arrays differ from the source graph")
	}
}

func intsEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestVirtualFamilyRejected: complete-virtual has no CSR arrays; the
// build path must say so instead of writing a meaningless file.
func TestVirtualFamilyRejected(t *testing.T) {
	_, err := FromSpec(spec.GraphSpec{Family: "complete-virtual", N: 16})
	if err == nil || !strings.Contains(err.Error(), "virtual topology") {
		t.Fatalf("FromSpec(complete-virtual) = %v, want virtual-topology error", err)
	}
}

// TestDecodeRejectsCorruption flips every byte of a small artifact in
// turn; each flip must fail decoding (no byte of the format is dead
// weight), and none may panic.
func TestDecodeRejectsCorruption(t *testing.T) {
	a, err := FromSpec(spec.GraphSpec{Family: "cycle", N: 8})
	if err != nil {
		t.Fatal(err)
	}
	enc, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	for i := range enc {
		mut := bytes.Clone(enc)
		mut[i] ^= 0xff
		if _, err := Decode(mut); err == nil {
			t.Fatalf("flipping byte %d went undetected", i)
		}
	}
	for cut := 0; cut < len(enc); cut++ {
		if _, err := Decode(enc[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes went undetected", cut)
		}
	}
}

// TestDecodeHugeClaims: headers that declare enormous n/m against a tiny
// file must fail on the size check without attempting the allocation.
func TestDecodeHugeClaims(t *testing.T) {
	a, err := FromSpec(spec.GraphSpec{Family: "cycle", N: 8})
	if err != nil {
		t.Fatal(err)
	}
	enc, _ := a.Encode()
	for _, off := range []int{12, 20} { // n, m fields
		mut := bytes.Clone(enc)
		for i := 0; i < 8; i++ {
			mut[off+i] = 0xff
		}
		if _, err := Decode(mut); err == nil {
			t.Fatalf("huge claim at offset %d went undetected", off)
		}
	}
}

// encodeRaw builds artifact bytes in the v1 layout with valid CRCs but
// no structural validation — the adversary's encoder, producing
// checksum-valid files Encode itself would refuse. Fuzzing never finds
// these (random mutation breaks the CRCs first), so the structurally
// hostile cases are pinned here and seeded into FuzzArtifactDecode.
func encodeRaw(key, name string, n, m uint64, offsets, adj []int32, padByte byte) []byte {
	out := []byte(Magic)
	out = binary.LittleEndian.AppendUint16(out, Version)
	out = binary.LittleEndian.AppendUint16(out, 0)
	out = binary.LittleEndian.AppendUint64(out, n)
	out = binary.LittleEndian.AppendUint64(out, m)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(key)))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(name)))
	out = append(out, key...)
	out = append(out, name...)
	out = binary.LittleEndian.AppendUint32(out, crc(out))
	for i := pad8(len(out)); i > 0; i-- {
		out = append(out, padByte)
	}
	mark := len(out)
	out = appendInt32s(out, offsets)
	out = binary.LittleEndian.AppendUint32(out, crc(out[mark:]))
	mark = len(out)
	out = appendInt32s(out, adj)
	out = binary.LittleEndian.AppendUint32(out, crc(out[mark:]))
	out = binary.LittleEndian.AppendUint32(out, crc(out))
	return out
}

// TestDecodeRejectsMalformedOffsets: checksum-valid files whose offsets
// arrays are not valid CSR slice bounds must fail decoding with an
// error, never panic. The [0, 100, 0]-with-empty-adjacency case is the
// regression: it passes the offsets[0]==0 and offsets[n]==len(adj)
// endpoint checks, and a graph.NewCSR that sliced while checking
// monotonicity pairwise panicked on it — so a single such file in a
// shared artifact dir crashed every server that loaded it.
func TestDecodeRejectsMalformedOffsets(t *testing.T) {
	cases := []struct {
		name    string
		n, m    uint64
		offsets []int32
		adj     []int32
	}{
		{"spike-then-drop", 2, 0, []int32{0, 100, 0}, nil},
		{"negative-dip", 2, 0, []int32{0, -4, 0}, nil},
		{"spike-past-adj", 2, 1, []int32{0, 100, 2}, []int32{1, 0}},
		{"self-loop", 2, 1, []int32{0, 1, 2}, []int32{0, 1}},
		{"out-of-range-neighbour", 2, 1, []int32{0, 1, 2}, []int32{1, 9}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Decode panicked: %v", r)
				}
			}()
			data := encodeRaw("spec", "bad", tc.n, tc.m, tc.offsets, tc.adj, 0)
			if _, err := Decode(data); err == nil {
				t.Fatal("Decode accepted a checksum-valid file with malformed CSR arrays")
			}
		})
	}
}

// TestDecodeRejectsNonzeroPadding: the header-to-offsets padding is part
// of the canonical encoding; Decode alone (not just Verify's re-encode
// pass) must reject files whose padding bytes are nonzero.
func TestDecodeRejectsNonzeroPadding(t *testing.T) {
	// Key length 1 makes the header end at 41 bytes ⇒ 7 padding bytes.
	good := encodeRaw("k", "", 2, 1, []int32{0, 1, 2}, []int32{1, 0}, 0)
	if _, err := Decode(good); err != nil {
		t.Fatalf("canonical raw file should decode: %v", err)
	}
	bad := encodeRaw("k", "", 2, 1, []int32{0, 1, 2}, []int32{1, 0}, 0xAA)
	if _, err := Decode(bad); err == nil || !strings.Contains(err.Error(), "padding") {
		t.Fatalf("Decode(nonzero padding) = %v, want a padding error", err)
	}
}
