// Package bitset implements a fixed-length packed bit vector.
//
// Opinion configurations and COBRA-walk occupancy sets are vectors of n
// booleans that are read and written in tight loops and counted every round.
// Packing them 64 per machine word keeps the working set of an n = 2^17
// simulation inside L2 cache and lets counting run at one POPCNT per 64
// vertices.
package bitset

import "math/bits"

// Set is a fixed-length bit vector. The zero value is an empty set of
// length 0; use New to create one with a given length.
type Set struct {
	words []uint64
	n     int
}

// New returns a Set of n bits, all zero. It panics if n is negative.
func New(n int) *Set {
	if n < 0 {
		panic("bitset: negative length")
	}
	return &Set{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the number of bits in the set.
func (s *Set) Len() int { return s.n }

// Get reports whether bit i is set. It panics if i is out of range.
func (s *Set) Get(i int) bool {
	if i < 0 || i >= s.n {
		panic("bitset: index out of range")
	}
	return s.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// Set sets bit i to 1. It panics if i is out of range.
func (s *Set) Set(i int) {
	if i < 0 || i >= s.n {
		panic("bitset: index out of range")
	}
	s.words[i>>6] |= 1 << (uint(i) & 63)
}

// Clear sets bit i to 0. It panics if i is out of range.
func (s *Set) Clear(i int) {
	if i < 0 || i >= s.n {
		panic("bitset: index out of range")
	}
	s.words[i>>6] &^= 1 << (uint(i) & 63)
}

// SetTo sets bit i to the given value.
func (s *Set) SetTo(i int, v bool) {
	if v {
		s.Set(i)
	} else {
		s.Clear(i)
	}
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Any reports whether at least one bit is set.
func (s *Set) Any() bool {
	for _, w := range s.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// None reports whether no bit is set.
func (s *Set) None() bool { return !s.Any() }

// All reports whether every bit is set. An empty set vacuously satisfies All.
func (s *Set) All() bool { return s.Count() == s.n }

// Reset clears every bit.
func (s *Set) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Fill sets every bit.
func (s *Set) Fill() {
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	s.trim()
}

// SetFirstN sets bits [0, k) and clears bits [k, n), word-at-a-time. It
// panics if k is out of [0, n]. This is the O(n/64) materialisation path
// for count-only engine states (k blue vertices in canonical prefix
// positions).
func (s *Set) SetFirstN(k int) {
	if k < 0 || k > s.n {
		panic("bitset: SetFirstN count out of range")
	}
	full := k >> 6
	for i := 0; i < full; i++ {
		s.words[i] = ^uint64(0)
	}
	if rem := uint(k) & 63; rem != 0 {
		s.words[full] = (1 << rem) - 1
		full++
	}
	for i := full; i < len(s.words); i++ {
		s.words[i] = 0
	}
}

// SetWord overwrites the wi-th 64-bit word (bits [64·wi, 64·wi+64)) in one
// store, masking any bits beyond the set's length so the canonical
// trailing-zero invariant survives. It panics if wi is out of range. This
// is the bulk-write path for engines that assemble 64 vertex updates into
// one word before touching shared memory.
func (s *Set) SetWord(wi int, w uint64) {
	if wi < 0 || wi >= len(s.words) {
		panic("bitset: SetWord index out of range")
	}
	if wi == len(s.words)-1 {
		if rem := uint(s.n) & 63; rem != 0 {
			w &= (1 << rem) - 1
		}
	}
	s.words[wi] = w
}

// trim zeroes the unused high bits of the last word so Count and Equal see
// a canonical representation.
func (s *Set) trim() {
	if rem := uint(s.n) & 63; rem != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= (1 << rem) - 1
	}
}

// Clone returns a deep copy of s.
func (s *Set) Clone() *Set {
	c := &Set{words: make([]uint64, len(s.words)), n: s.n}
	copy(c.words, s.words)
	return c
}

// CopyFrom overwrites s with the contents of src. Both sets must have the
// same length; CopyFrom panics otherwise.
func (s *Set) CopyFrom(src *Set) {
	if s.n != src.n {
		panic("bitset: CopyFrom length mismatch")
	}
	copy(s.words, src.words)
}

// Equal reports whether s and o contain exactly the same bits. Sets of
// different lengths are never equal.
func (s *Set) Equal(o *Set) bool {
	if s.n != o.n {
		return false
	}
	for i, w := range s.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}

// UnionWith sets s to s ∪ o. Lengths must match.
func (s *Set) UnionWith(o *Set) {
	if s.n != o.n {
		panic("bitset: UnionWith length mismatch")
	}
	for i := range s.words {
		s.words[i] |= o.words[i]
	}
}

// IntersectWith sets s to s ∩ o. Lengths must match.
func (s *Set) IntersectWith(o *Set) {
	if s.n != o.n {
		panic("bitset: IntersectWith length mismatch")
	}
	for i := range s.words {
		s.words[i] &= o.words[i]
	}
}

// DifferenceWith sets s to s \ o. Lengths must match.
func (s *Set) DifferenceWith(o *Set) {
	if s.n != o.n {
		panic("bitset: DifferenceWith length mismatch")
	}
	for i := range s.words {
		s.words[i] &^= o.words[i]
	}
}

// FlipAll inverts every bit.
func (s *Set) FlipAll() {
	for i := range s.words {
		s.words[i] = ^s.words[i]
	}
	s.trim()
}

// ForEach calls fn for the index of every set bit, in increasing order.
func (s *Set) ForEach(fn func(i int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi*64 + b)
			w &= w - 1
		}
	}
}

// Ones returns the indices of all set bits in increasing order.
func (s *Set) Ones() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(i int) { out = append(out, i) })
	return out
}

// NextSet returns the index of the first set bit at or after i, and whether
// one exists.
func (s *Set) NextSet(i int) (int, bool) {
	if i < 0 {
		i = 0
	}
	if i >= s.n {
		return 0, false
	}
	wi := i >> 6
	w := s.words[wi] >> (uint(i) & 63)
	if w != 0 {
		return i + bits.TrailingZeros64(w), true
	}
	for wi++; wi < len(s.words); wi++ {
		if s.words[wi] != 0 {
			return wi*64 + bits.TrailingZeros64(s.words[wi]), true
		}
	}
	return 0, false
}

// Words exposes the underlying word slice for read-only bulk operations
// such as SIMD-friendly counting in callers. Mutating the returned slice
// breaks the Set's invariants.
func (s *Set) Words() []uint64 { return s.words }
