package bitset

import (
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 1000} {
		s := New(n)
		if s.Len() != n {
			t.Fatalf("New(%d).Len() = %d", n, s.Len())
		}
		if s.Count() != 0 {
			t.Fatalf("New(%d).Count() = %d", n, s.Count())
		}
		if s.Any() {
			t.Fatalf("New(%d).Any() = true", n)
		}
		if !s.None() {
			t.Fatalf("New(%d).None() = false", n)
		}
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestSetGetClear(t *testing.T) {
	s := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if s.Get(i) {
			t.Fatalf("fresh bit %d set", i)
		}
		s.Set(i)
		if !s.Get(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
		s.Clear(i)
		if s.Get(i) {
			t.Fatalf("bit %d set after Clear", i)
		}
	}
}

func TestSetToAndCount(t *testing.T) {
	s := New(200)
	for i := 0; i < 200; i += 3 {
		s.SetTo(i, true)
	}
	want := 0
	for i := 0; i < 200; i += 3 {
		want++
	}
	if got := s.Count(); got != want {
		t.Errorf("Count = %d, want %d", got, want)
	}
	for i := 0; i < 200; i += 3 {
		s.SetTo(i, false)
	}
	if got := s.Count(); got != 0 {
		t.Errorf("Count after clearing = %d", got)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	s := New(10)
	for name, fn := range map[string]func(){
		"Get(-1)":   func() { s.Get(-1) },
		"Get(10)":   func() { s.Get(10) },
		"Set(-1)":   func() { s.Set(-1) },
		"Set(10)":   func() { s.Set(10) },
		"Clear(-1)": func() { s.Clear(-1) },
		"Clear(10)": func() { s.Clear(10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestFillAndAll(t *testing.T) {
	for _, n := range []int{1, 63, 64, 65, 129} {
		s := New(n)
		s.Fill()
		if got := s.Count(); got != n {
			t.Errorf("Fill on len %d: Count = %d", n, got)
		}
		if !s.All() {
			t.Errorf("Fill on len %d: All = false", n)
		}
	}
}

func TestAllEmptySet(t *testing.T) {
	if !New(0).All() {
		t.Error("empty set All() = false, want vacuous true")
	}
}

func TestFlipAllTrims(t *testing.T) {
	s := New(70)
	s.FlipAll()
	if got := s.Count(); got != 70 {
		t.Errorf("FlipAll of empty 70-bit set: Count = %d, want 70", got)
	}
	s.FlipAll()
	if got := s.Count(); got != 0 {
		t.Errorf("double FlipAll: Count = %d, want 0", got)
	}
}

func TestReset(t *testing.T) {
	s := New(100)
	s.Fill()
	s.Reset()
	if s.Any() {
		t.Error("Reset left bits set")
	}
}

func TestCloneIndependent(t *testing.T) {
	s := New(64)
	s.Set(5)
	c := s.Clone()
	if !c.Equal(s) {
		t.Fatal("clone not equal to original")
	}
	c.Set(6)
	if s.Get(6) {
		t.Error("mutating clone changed original")
	}
}

func TestCopyFrom(t *testing.T) {
	a, b := New(100), New(100)
	a.Set(3)
	a.Set(99)
	b.CopyFrom(a)
	if !b.Equal(a) {
		t.Error("CopyFrom did not copy")
	}
	mismatch := New(50)
	defer func() {
		if recover() == nil {
			t.Error("CopyFrom length mismatch did not panic")
		}
	}()
	b.CopyFrom(mismatch)
}

func TestEqualDifferentLengths(t *testing.T) {
	if New(10).Equal(New(11)) {
		t.Error("sets of different lengths reported equal")
	}
}

func TestSetOps(t *testing.T) {
	a, b := New(130), New(130)
	a.Set(1)
	a.Set(64)
	b.Set(64)
	b.Set(100)

	u := a.Clone()
	u.UnionWith(b)
	if got := u.Ones(); len(got) != 3 || got[0] != 1 || got[1] != 64 || got[2] != 100 {
		t.Errorf("union = %v", got)
	}

	i := a.Clone()
	i.IntersectWith(b)
	if got := i.Ones(); len(got) != 1 || got[0] != 64 {
		t.Errorf("intersection = %v", got)
	}

	d := a.Clone()
	d.DifferenceWith(b)
	if got := d.Ones(); len(got) != 1 || got[0] != 1 {
		t.Errorf("difference = %v", got)
	}
}

func TestSetOpsLengthMismatchPanics(t *testing.T) {
	a, b := New(10), New(20)
	for name, fn := range map[string]func(){
		"UnionWith":      func() { a.UnionWith(b) },
		"IntersectWith":  func() { a.IntersectWith(b) },
		"DifferenceWith": func() { a.DifferenceWith(b) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s length mismatch did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestForEachOrder(t *testing.T) {
	s := New(300)
	want := []int{0, 63, 64, 65, 128, 299}
	for _, i := range want {
		s.Set(i)
	}
	var got []int
	s.ForEach(func(i int) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach visited %v, want %v", got, want)
		}
	}
}

func TestNextSet(t *testing.T) {
	s := New(300)
	s.Set(5)
	s.Set(64)
	s.Set(250)

	cases := []struct {
		from   int
		want   int
		wantOK bool
	}{
		{0, 5, true}, {5, 5, true}, {6, 64, true}, {64, 64, true},
		{65, 250, true}, {250, 250, true}, {251, 0, false}, {-3, 5, true},
		{300, 0, false}, {10000, 0, false},
	}
	for _, c := range cases {
		got, ok := s.NextSet(c.from)
		if ok != c.wantOK || (ok && got != c.want) {
			t.Errorf("NextSet(%d) = (%d, %v), want (%d, %v)", c.from, got, ok, c.want, c.wantOK)
		}
	}
}

func TestWordsReflectsBits(t *testing.T) {
	s := New(64)
	s.Set(0)
	s.Set(63)
	w := s.Words()
	if len(w) != 1 || w[0] != 1|1<<63 {
		t.Errorf("Words() = %#x", w)
	}
}

// Property: Count equals the number of distinct indices set.
func TestQuickCountMatchesSets(t *testing.T) {
	f := func(idx []uint16) bool {
		s := New(1 << 16)
		uniq := make(map[int]bool)
		for _, i := range idx {
			s.Set(int(i))
			uniq[int(i)] = true
		}
		return s.Count() == len(uniq)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: union count is |a| + |b| - |a ∩ b|.
func TestQuickInclusionExclusion(t *testing.T) {
	f := func(ai, bi []uint8) bool {
		a, b := New(256), New(256)
		for _, i := range ai {
			a.Set(int(i))
		}
		for _, i := range bi {
			b.Set(int(i))
		}
		inter := a.Clone()
		inter.IntersectWith(b)
		union := a.Clone()
		union.UnionWith(b)
		return union.Count() == a.Count()+b.Count()-inter.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: FlipAll twice is the identity.
func TestQuickDoubleFlipIdentity(t *testing.T) {
	f := func(idx []uint8, nRaw uint16) bool {
		n := int(nRaw)%500 + 1
		s := New(n)
		for _, i := range idx {
			s.Set(int(i) % n)
		}
		orig := s.Clone()
		s.FlipAll()
		s.FlipAll()
		return s.Equal(orig)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkCount(b *testing.B) {
	s := New(1 << 17)
	for i := 0; i < s.Len(); i += 7 {
		s.Set(i)
	}
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += s.Count()
	}
	_ = sink
}

func BenchmarkSetGet(b *testing.B) {
	s := New(1 << 17)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx := i & (1<<17 - 1)
		s.Set(idx)
		if !s.Get(idx) {
			b.Fatal("bit not set")
		}
	}
}

func BenchmarkForEach(b *testing.B) {
	s := New(1 << 17)
	for i := 0; i < s.Len(); i += 13 {
		s.Set(i)
	}
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		s.ForEach(func(j int) { sink += j })
	}
	_ = sink
}

func TestSetFirstN(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 130, 256} {
		s := New(n)
		for _, k := range []int{0, 1, n / 2, n} {
			if k > n {
				continue
			}
			// Pre-dirty the set so SetFirstN must clear the tail.
			for i := 0; i < n; i += 3 {
				s.Set(i)
			}
			s.SetFirstN(k)
			if got := s.Count(); got != k {
				t.Fatalf("n=%d SetFirstN(%d): count = %d", n, k, got)
			}
			for i := 0; i < n; i++ {
				if s.Get(i) != (i < k) {
					t.Fatalf("n=%d SetFirstN(%d): bit %d = %v", n, k, i, s.Get(i))
				}
			}
		}
	}
}

func TestSetFirstNPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("SetFirstN out of range did not panic")
		}
	}()
	New(10).SetFirstN(11)
}

func TestSetWord(t *testing.T) {
	s := New(100)
	s.SetWord(0, ^uint64(0))
	if got := s.Count(); got != 64 {
		t.Fatalf("count after full word = %d", got)
	}
	// The last word is masked to the set length: bits ≥ 100 must not leak
	// into Count.
	s.SetWord(1, ^uint64(0))
	if got := s.Count(); got != 100 {
		t.Fatalf("count after masked last word = %d", got)
	}
	s.SetWord(0, 0b1011)
	if !s.Get(0) || !s.Get(1) || s.Get(2) || !s.Get(3) {
		t.Error("SetWord bit pattern wrong")
	}
}

func TestSetWordPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("SetWord out of range did not panic")
		}
	}()
	New(64).SetWord(1, 1)
}
