// Package buildinfo resolves the binary's version identity once and
// exposes it to /healthz, -version output, and the build_info metric.
//
// Resolution order per field: ldflags override (-X repro/internal/
// buildinfo.Version=...), then runtime/debug.ReadBuildInfo (module
// version, vcs.revision, vcs.modified), then "unknown". Plain `go
// build` with no tags and no VCS metadata yields Version "(devel)" or
// "unknown" — still well-formed, never empty.
package buildinfo

import (
	"runtime"
	"runtime/debug"
	"sync"
)

// Overridable at link time:
//
//	go build -ldflags "-X repro/internal/buildinfo.Version=v1.2.3 -X repro/internal/buildinfo.Commit=abc1234"
var (
	Version string
	Commit  string
)

// Info is the resolved build identity.
type Info struct {
	Version   string `json:"version"`
	Commit    string `json:"commit"`
	GoVersion string `json:"go_version"`
	Modified  bool   `json:"modified,omitempty"` // VCS tree was dirty at build
}

var get = sync.OnceValue(func() Info {
	info := Info{Version: Version, Commit: Commit, GoVersion: runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if ok {
		if info.Version == "" {
			info.Version = bi.Main.Version
		}
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				if info.Commit == "" {
					info.Commit = s.Value
				}
			case "vcs.modified":
				info.Modified = s.Value == "true"
			}
		}
	}
	if info.Version == "" {
		info.Version = "unknown"
	}
	if info.Commit == "" {
		info.Commit = "unknown"
	}
	return info
})

// Get returns the build identity; resolved once, safe for concurrent use.
func Get() Info { return get() }

// Short returns "version (commit)" for -version banners.
func Short() string {
	i := Get()
	c := i.Commit
	if len(c) > 12 {
		c = c[:12]
	}
	if i.Modified {
		c += "+dirty"
	}
	return i.Version + " (" + c + ", " + i.GoVersion + ")"
}
