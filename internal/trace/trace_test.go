package trace

import (
	"strings"
	"testing"
	"testing/quick"
)

func sample() *Run {
	return &Run{
		Graph:      "regular(n=8,d=3)",
		Protocol:   "best-of-3",
		N:          8,
		Delta:      0.1,
		Seed:       42,
		Consensus:  true,
		RedWon:     true,
		Rounds:     3,
		BlueCounts: []int{3, 2, 1, 0},
	}
}

func TestValidateAcceptsGoodRun(t *testing.T) {
	if err := sample().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := map[string]func(*Run){
		"negative n":       func(r *Run) { r.N = -1 },
		"negative rounds":  func(r *Run) { r.Rounds = -1 },
		"length mismatch":  func(r *Run) { r.BlueCounts = []int{1, 2} },
		"count out of max": func(r *Run) { r.BlueCounts = []int{3, 2, 1, 9} },
		"negative count":   func(r *Run) { r.BlueCounts = []int{3, 2, 1, -1} },
	}
	for name, mutate := range cases {
		r := sample()
		mutate(r)
		if err := r.Validate(); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	r := sample()
	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Graph != r.Graph || got.Seed != r.Seed || got.Rounds != r.Rounds {
		t.Errorf("round trip changed metadata: %+v", got)
	}
	for i := range r.BlueCounts {
		if got.BlueCounts[i] != r.BlueCounts[i] {
			t.Fatalf("round trip changed counts: %v", got.BlueCounts)
		}
	}
}

func TestReadJSONRejectsInvalid(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{")); err == nil {
		t.Error("truncated JSON accepted")
	}
	// Valid JSON, inconsistent content.
	bad := `{"n": 4, "rounds": 2, "blue_counts": [1]}`
	if _, err := ReadJSON(strings.NewReader(bad)); err == nil {
		t.Error("inconsistent run accepted")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	r := sample()
	var b strings.Builder
	if err := r.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "# graph=regular(n=8,d=3)") {
		t.Errorf("missing metadata header: %q", out)
	}
	counts, err := ReadCSV(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(counts) != len(r.BlueCounts) {
		t.Fatalf("counts = %v", counts)
	}
	for i := range counts {
		if counts[i] != r.BlueCounts[i] {
			t.Fatalf("counts = %v", counts)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"wrong fields":   "round,blue_count\n0,1,2\n",
		"bad round":      "x,1\n",
		"bad count":      "0,x\n",
		"order violated": "1,5\n",
	}
	for name, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

// Property: JSON round trip preserves arbitrary valid trajectories.
func TestQuickJSONRoundTrip(t *testing.T) {
	f := func(counts []uint8, seed uint64) bool {
		bc := make([]int, len(counts))
		for i, c := range counts {
			bc[i] = int(c)
		}
		r := &Run{N: 256, Seed: seed, BlueCounts: bc}
		if len(bc) > 0 {
			r.Rounds = len(bc) - 1
		}
		var b strings.Builder
		if err := r.WriteJSON(&b); err != nil {
			return false
		}
		got, err := ReadJSON(strings.NewReader(b.String()))
		if err != nil {
			return false
		}
		if len(got.BlueCounts) != len(bc) {
			return false
		}
		for i := range bc {
			if got.BlueCounts[i] != bc[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
