// Package trace records voting-dynamics runs as structured, serialisable
// artifacts: per-round trajectories plus run metadata, with CSV and JSON
// encodings. The CLI tools use it to persist runs for external plotting,
// and the round-trip property is tested so archived traces stay readable.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Run is one recorded simulation run.
type Run struct {
	// Graph names the topology (e.g. "regular(n=8192,d=223)").
	Graph string `json:"graph"`
	// Protocol names the rule (e.g. "best-of-3").
	Protocol string `json:"protocol"`
	// N is the vertex count.
	N int `json:"n"`
	// Delta is the initial imbalance parameter.
	Delta float64 `json:"delta"`
	// Seed reproduces the run.
	Seed uint64 `json:"seed"`
	// Consensus and RedWon summarise the outcome.
	Consensus bool `json:"consensus"`
	RedWon    bool `json:"red_won"`
	// Rounds is the executed round count.
	Rounds int `json:"rounds"`
	// BlueCounts is the per-round number of blue vertices, starting with
	// the initial configuration.
	BlueCounts []int `json:"blue_counts"`
}

// Validate checks internal consistency of a (possibly deserialised) run.
func (r *Run) Validate() error {
	if r.N < 0 {
		return fmt.Errorf("trace: negative n")
	}
	if r.Rounds < 0 {
		return fmt.Errorf("trace: negative rounds")
	}
	if len(r.BlueCounts) > 0 && len(r.BlueCounts) != r.Rounds+1 {
		return fmt.Errorf("trace: %d blue counts for %d rounds", len(r.BlueCounts), r.Rounds)
	}
	for i, b := range r.BlueCounts {
		if b < 0 || b > r.N {
			return fmt.Errorf("trace: blue count %d at round %d outside [0,%d]", b, i, r.N)
		}
	}
	return nil
}

// WriteJSON writes the run as indented JSON.
func (r *Run) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadJSON parses a run written by WriteJSON and validates it.
func ReadJSON(rd io.Reader) (*Run, error) {
	var r Run
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("trace: decoding run: %w", err)
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return &r, nil
}

// WriteCSV writes the trajectory as a two-column CSV (round, blue_count)
// with a comment header carrying the metadata.
func (r *Run) WriteCSV(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "# graph=%s protocol=%s n=%d delta=%g seed=%d consensus=%v red_won=%v\n",
		r.Graph, r.Protocol, r.N, r.Delta, r.Seed, r.Consensus, r.RedWon)
	b.WriteString("round,blue_count\n")
	for t, bc := range r.BlueCounts {
		b.WriteString(strconv.Itoa(t))
		b.WriteByte(',')
		b.WriteString(strconv.Itoa(bc))
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// ReadCSV parses the trajectory columns of a WriteCSV stream. Metadata in
// the comment header is not reconstructed; only round/blue pairs are
// returned, in order.
func ReadCSV(rd io.Reader) ([]int, error) {
	data, err := io.ReadAll(rd)
	if err != nil {
		return nil, fmt.Errorf("trace: reading CSV: %w", err)
	}
	var counts []int
	for lineNo, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "round,") {
			continue
		}
		parts := strings.Split(line, ",")
		if len(parts) != 2 {
			return nil, fmt.Errorf("trace: line %d: want 2 fields, got %d", lineNo+1, len(parts))
		}
		round, err := strconv.Atoi(parts[0])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad round: %w", lineNo+1, err)
		}
		if round != len(counts) {
			return nil, fmt.Errorf("trace: line %d: round %d out of order", lineNo+1, round)
		}
		bc, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad blue count: %w", lineNo+1, err)
		}
		counts = append(counts, bc)
	}
	return counts, nil
}
