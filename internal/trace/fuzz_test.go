package trace

import (
	"strings"
	"testing"
)

// FuzzReadCSV feeds arbitrary text into the CSV parser: it must never
// panic, and whatever it accepts must be a well-formed monotone-round
// trajectory by construction of the parser.
func FuzzReadCSV(f *testing.F) {
	f.Add("round,blue_count\n0,5\n1,3\n")
	f.Add("# header\n0,1\n")
	f.Add("")
	f.Add("0,1\n2,3\n")
	f.Fuzz(func(t *testing.T, in string) {
		counts, err := ReadCSV(strings.NewReader(in))
		if err != nil {
			return
		}
		for _, c := range counts {
			_ = c // any int is acceptable; rounds ordering is enforced by the parser
		}
	})
}

// FuzzReadJSON feeds arbitrary text into the JSON decoder: never panic, and
// accepted runs must pass Validate (ReadJSON enforces it).
func FuzzReadJSON(f *testing.F) {
	f.Add(`{"n":4,"rounds":1,"blue_counts":[2,0]}`)
	f.Add(`{}`)
	f.Add(`{"n":-1}`)
	f.Fuzz(func(t *testing.T, in string) {
		r, err := ReadJSON(strings.NewReader(in))
		if err != nil {
			return
		}
		if err := r.Validate(); err != nil {
			t.Fatalf("ReadJSON returned an invalid run: %v", err)
		}
	})
}
