// Package theory evaluates the paper's analytical objects exactly: the
// ideal ternary-tree recursion (equation 1), the Sprinkling recursion with
// its collision error terms (equation 2), the δ-growth recursion (equations
// 4–5), the three-phase schedule of Lemma 4, the collision tail bound of
// Lemma 7, and the predicted consensus time of Theorem 1. The experiment
// suite compares these predictions against simulation.
package theory

import "math"

// IdealStep applies equation (1): b ↦ 3b² − 2b³, the blue-probability map
// when the voting-DAG is a ternary tree (no collisions). Fixed points are
// 0, 1/2 and 1.
func IdealStep(b float64) float64 { return 3*b*b - 2*b*b*b }

// IdealRecursion iterates equation (1) for the given number of steps,
// returning the whole trajectory b_0, b_1, …, b_steps.
func IdealRecursion(b0 float64, steps int) []float64 {
	out := make([]float64, steps+1)
	out[0] = b0
	for t := 1; t <= steps; t++ {
		out[t] = IdealStep(out[t-1])
	}
	return out
}

// IdealStepsToBelow returns the first t with IdealRecursion(b0)[t] < target,
// or -1 if the recursion does not cross within maxSteps. Used to check the
// T = O(log log n + log δ⁻¹) claim numerically.
func IdealStepsToBelow(b0, target float64, maxSteps int) int {
	b := b0
	for t := 0; t <= maxSteps; t++ {
		if b < target {
			return t
		}
		b = IdealStep(b)
	}
	return -1
}

// Epsilon returns the paper's collision error ε_{t−1} = 3^{T−t+1}/d for a
// DAG of T levels on a graph of minimum degree d (Proposition 3). The
// value is clamped to 1, the trivial probability bound.
func Epsilon(T, t int, d float64) float64 {
	e := math.Pow(3, float64(T-t+1)) / d
	if e > 1 {
		return 1
	}
	return e
}

// SprinkleStep applies one step of equation (2), the exact (pre-relaxation)
// form:
//
//	p_t = (3p² − 2p³)(1−ε)³ + (2p − p²)·3ε(1−ε)² + 3ε²(1−ε) + ε³ ,
//
// with p = p_{t−1} and ε = ε_{t−1}: term by term, no collision & ≥2 blue,
// one collision & ≥1 blue of two, and two or three collisions (certain
// blue).
func SprinkleStep(p, eps float64) float64 {
	q := 1 - eps
	return (3*p*p-2*p*p*p)*q*q*q +
		(2*p-p*p)*3*eps*q*q +
		3*eps*eps*q + eps*eps*eps
}

// SprinkleStepRelaxed applies the relaxed inequality form of equation (2):
// p_t ≤ 3p² − 2p³ + 6pε + 3ε² + ε³. It upper-bounds SprinkleStep.
func SprinkleStepRelaxed(p, eps float64) float64 {
	v := 3*p*p - 2*p*p*p + 6*p*eps + 3*eps*eps + eps*eps*eps
	if v > 1 {
		return 1
	}
	return v
}

// SprinkleRecursion iterates equation (2) from p0 = 1/2 − δ up T levels on
// a graph with minimum degree d, returning p_0..p_T. relaxed selects the
// inequality form (the one the paper's proofs manipulate) instead of the
// exact mixture form.
func SprinkleRecursion(p0 float64, T int, d float64, relaxed bool) []float64 {
	out := make([]float64, T+1)
	out[0] = p0
	for t := 1; t <= T; t++ {
		eps := Epsilon(T, t, d)
		if relaxed {
			out[t] = SprinkleStepRelaxed(out[t-1], eps)
		} else {
			out[t] = SprinkleStep(out[t-1], eps)
		}
	}
	return out
}

// DeltaFixedPoint is 1/(2√3), the positive fixed point of f(x) = x/2 − 2x³
// in equation (5): once δ_t exceeds this value, the paper switches from the
// growth phase (Lemma 4 step i) to the collapse phase (step ii).
var DeltaFixedPoint = 1 / (2 * math.Sqrt(3))

// DeltaStep applies the growth recursion of equation (4):
// δ_t = δ + (δ/2 − 2δ³ − 4ε). The paper proves δ_t ≥ (5/4)·δ_{t−1} while
// δ < DeltaFixedPoint and δ ≥ 12ε.
func DeltaStep(delta, eps float64) float64 {
	return delta + delta/2 - 2*delta*delta*delta - 4*eps
}

// DeltaGrowthFactorHolds reports whether the preconditions for the 5/4
// growth of equation (5) hold at this (δ, ε): δ ≥ 48ε and δ < 1/(2√3).
//
// Reproduction note: the paper states the precondition as δ ≥ 12ε, but its
// equation (4) subtracts 4ε, so bounding the relative loss by 1/12 needs
// 4ε/δ ≤ 1/12, i.e. δ ≥ 48ε; at δ ≥ 12ε and δ near the fixed point the
// claimed δ_t ≥ (5/4)δ_{t−1} fails numerically (DeltaStep(0.28, 0.28/12) ≈
// 1.01·δ). The slip is harmless for the theorem — ε decays geometrically
// while δ grows, so δ ≫ 48ε after O(1) extra levels — but the constant in
// the stated precondition is off by 4. The experiment suite verifies the
// corrected form.
func DeltaGrowthFactorHolds(delta, eps float64) bool {
	return delta >= 48*eps && delta < DeltaFixedPoint
}

// PhaseSchedule is the decomposition of Lemma 4: a voting-DAG of height
// T = T1 + T2 + T3 where phase 3 (closest to the leaves) grows δ to the
// fixed point, phase 2 collapses the blue probability to polylog(d)/d, and
// phase 1 (one final level plus the a·loglog d buffer) brings it to o(1/d).
type PhaseSchedule struct {
	T1, T2, T3 int
	// Total is T1 + T2 + T3.
	Total int
}

// Schedule computes the paper's phase lengths for minimum degree d and
// initial imbalance δ:
//
//	T3 = min{t : δ_t ≥ 1/(2√3)}            — O(log δ⁻¹) by the 5/4 growth,
//	T2 = min{t : p_t ≤ 12ε_t} ≤ 2·log₂log d — the quadratic collapse,
//	T1 = ⌊a·log log d⌋ + 1                  — the finishing buffer.
//
// The T3 and T2 entries are computed by iterating the paper's recursions
// with the ε error pinned at its phase-top value (the form the proofs use).
func Schedule(d float64, delta float64, a float64) PhaseSchedule {
	if d <= math.E {
		d = math.E + 1 // degenerate degrees: keep logs positive
	}
	loglogd := math.Log(math.Log(d))
	t1 := int(a*loglogd) + 1
	if t1 < 1 {
		t1 = 1
	}

	// Phase 3: grow δ to the fixed point with the 5/4 lower bound on the
	// multiplier (ε ≪ δ on the paper's graphs, so iterate the clean form).
	t3 := 0
	dl := delta
	capT3 := int(10*math.Log(1/delta)/math.Log(1.25)) + 10
	for dl < DeltaFixedPoint && t3 < capT3 {
		dl = dl + dl/2 - 2*dl*dl*dl
		t3++
	}

	// Phase 2: collapse p via p_t ≤ 4p² until p ≤ 12ε. The paper pins
	// ε ≤ 3^{h₁}/d = polylog(d)/d with h₁ = ⌊a·log log d⌋ + 1; use that
	// exact form (the (log d)^{a·log 3} polylog) so the schedule is
	// meaningful at finite d. T2 is capped at 2·log₂log d as in Lemma 4.
	eps := math.Pow(3, float64(t1+1)) / d
	if eps > 1 {
		eps = 1
	}
	p := 0.5 - DeltaFixedPoint
	t2 := 0
	capT2 := int(2*math.Log2(math.Log2(d))) + 1
	if capT2 < 1 {
		capT2 = 1
	}
	for p > 12*eps && t2 < capT2 {
		p = 4 * p * p
		t2++
	}

	return PhaseSchedule{T1: t1, T2: t2, T3: t3, Total: t1 + t2 + t3}
}

// PredictedRounds returns the Theorem 1 prediction for the number of rounds
// to red consensus on a graph of n vertices with minimum degree d and
// initial imbalance δ: the Lemma 4 schedule with a = 1 plus the upper-level
// buffer h = log log n (Section 4).
func PredictedRounds(n int, d float64, delta float64) int {
	if n < 3 {
		return 1
	}
	s := Schedule(d, delta, 1)
	h := int(math.Ceil(math.Log(math.Log(float64(n))))) + 1
	return s.Total + h
}

// CollisionLevelProb returns the paper's per-level collision probability
// bound from Lemma 7: P(level i has a collision) ≤ min(1, 9^h/d), where h
// is the DAG height.
func CollisionLevelProb(h int, d float64) float64 {
	p := math.Pow(9, float64(h)) / d
	if p > 1 {
		return 1
	}
	return p
}

// CollisionTailBound returns the Lemma 7 bound
// P(C > h/2) ≤ (2e·9^h/d)^{h/2} (equation 7), clamped to [0, 1].
func CollisionTailBound(h int, d float64) float64 {
	base := 2 * math.E * math.Pow(9, float64(h)) / d
	if base >= 1 {
		return 1
	}
	return math.Pow(base, float64(h)/2)
}

// RootBlueBound evaluates the Section 4 decomposition (equation 6): for a
// voting-DAG of h+1 levels on minimum degree d whose leaves are
// independently blue with probability leafP,
//
//	P(root blue) ≤ P(C > h/2) + P(B ≥ 2^{h/2}) ,
//
// where C ≼ Bin(h, min(1, 9^h/d)) counts collision levels and
// B ≼ Bin(3^h, leafP) counts blue leaves. Both tails are evaluated
// exactly; the binomial tail function is injected to avoid an import cycle
// with the stats package's callers (pass stats.BinomialTail).
func RootBlueBound(h int, d, leafP float64, binTail func(n, k int, p float64) float64) float64 {
	if h < 0 {
		panic("theory: negative height")
	}
	if h == 0 {
		return leafP
	}
	pLevel := CollisionLevelProb(h, d)
	collisionTail := binTail(h, h/2+1, pLevel)
	leaves := 1
	for i := 0; i < h && leaves < 1<<30; i++ {
		leaves *= 3
	}
	threshold := 1 << uint(h/2)
	leafTail := binTail(leaves, threshold, leafP)
	bound := collisionTail + leafTail
	if bound > 1 {
		return 1
	}
	return bound
}

// MinAlpha returns the paper's density threshold: Theorem 1 needs
// α = Ω(1/log log n); this helper returns c/log log n for the given
// constant, the boundary the density-gate experiment sweeps across.
func MinAlpha(n int, c float64) float64 {
	if n < 16 {
		return 1
	}
	return c / math.Log(math.Log(float64(n)))
}

// MinDelta returns the paper's imbalance threshold (log d)^{-C}.
func MinDelta(d float64, C float64) float64 {
	if d <= 1 {
		return 0.5
	}
	return math.Pow(math.Log(d), -C)
}
