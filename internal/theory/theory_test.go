package theory

import (
	"math"
	"testing"
	"testing/quick"
)

func TestIdealStepFixedPoints(t *testing.T) {
	for _, b := range []float64{0, 0.5, 1} {
		if got := IdealStep(b); math.Abs(got-b) > 1e-15 {
			t.Errorf("IdealStep(%v) = %v, want fixed point", b, got)
		}
	}
}

func TestIdealStepContractsBelowHalf(t *testing.T) {
	// For b in (0, 1/2) the map strictly decreases b.
	for _, b := range []float64{0.05, 0.2, 0.4, 0.49} {
		if got := IdealStep(b); got >= b {
			t.Errorf("IdealStep(%v) = %v, want < input", b, got)
		}
	}
	// And symmetric expansion above 1/2.
	for _, b := range []float64{0.51, 0.7, 0.95} {
		if got := IdealStep(b); got <= b {
			t.Errorf("IdealStep(%v) = %v, want > input", b, got)
		}
	}
}

func TestIdealStepSymmetry(t *testing.T) {
	// f(1-b) = 1 - f(b): the dynamic treats the colours symmetrically.
	for _, b := range []float64{0.1, 0.3, 0.45} {
		if got, want := IdealStep(1-b), 1-IdealStep(b); math.Abs(got-want) > 1e-12 {
			t.Errorf("symmetry broken at %v: %v vs %v", b, got, want)
		}
	}
}

func TestIdealRecursionTrajectory(t *testing.T) {
	tr := IdealRecursion(0.4, 5)
	if len(tr) != 6 || tr[0] != 0.4 {
		t.Fatalf("trajectory = %v", tr)
	}
	for i := 1; i < len(tr); i++ {
		if tr[i] >= tr[i-1] {
			t.Errorf("trajectory not decreasing at %d: %v", i, tr)
		}
	}
}

func TestIdealStepsToBelowDoublyLog(t *testing.T) {
	// Doubly-logarithmic collapse: the step count to reach 1/n grows very
	// slowly in n. Starting from δ = 0.1:
	t16 := IdealStepsToBelow(0.4, 1.0/65536, 1000)
	t32 := IdealStepsToBelow(0.4, 1.0/(65536*65536), 1000)
	if t16 < 0 || t32 < 0 {
		t.Fatal("recursion did not cross")
	}
	// Squaring the target n should add O(1) steps (roughly one doubling of
	// the exponent per step in the quadratic regime).
	if t32-t16 > 3 {
		t.Errorf("steps(n²) − steps(n) = %d, want ≤ 3 (double-log growth)", t32-t16)
	}
}

func TestIdealStepsToBelowNoCross(t *testing.T) {
	// From exactly 1/2 the recursion is stuck at the unstable fixed point.
	if got := IdealStepsToBelow(0.5, 0.01, 50); got != -1 {
		t.Errorf("stuck recursion returned %d", got)
	}
}

func TestEpsilonValues(t *testing.T) {
	// ε_{t−1} = 3^{T−t+1}/d; at t = T it is 3/d.
	if got := Epsilon(5, 5, 300); math.Abs(got-0.01) > 1e-12 {
		t.Errorf("Epsilon(T,T) = %v, want 3/d", got)
	}
	// At t = 1 it is 3^T/d.
	if got := Epsilon(3, 1, 270); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("Epsilon(3,1,270) = %v, want 27/270", got)
	}
	// Clamps at 1.
	if got := Epsilon(10, 1, 2); got != 1 {
		t.Errorf("Epsilon clamp = %v", got)
	}
}

func TestEpsilonDecreasesUpLevels(t *testing.T) {
	d := 1e6
	prev := math.Inf(1)
	for tt := 1; tt <= 8; tt++ {
		e := Epsilon(8, tt, d)
		if e > prev {
			t.Fatalf("epsilon increased at t=%d", tt)
		}
		prev = e
	}
}

func TestSprinkleStepZeroEpsIsIdeal(t *testing.T) {
	for _, p := range []float64{0, 0.2, 0.5, 0.9} {
		if got, want := SprinkleStep(p, 0), IdealStep(p); math.Abs(got-want) > 1e-12 {
			t.Errorf("SprinkleStep(%v, 0) = %v, want %v", p, got, want)
		}
	}
}

func TestSprinkleStepMonotoneInEps(t *testing.T) {
	// More collisions -> more forced blue: p_t increases with ε.
	p := 0.3
	prev := -1.0
	for _, eps := range []float64{0, 0.01, 0.05, 0.1, 0.3} {
		v := SprinkleStep(p, eps)
		if v < prev {
			t.Fatalf("SprinkleStep not monotone in eps at %v", eps)
		}
		prev = v
	}
}

func TestSprinkleRelaxedDominatesExact(t *testing.T) {
	for _, p := range []float64{0.05, 0.2, 0.4, 0.49} {
		for _, eps := range []float64{0.001, 0.01, 0.1} {
			exact := SprinkleStep(p, eps)
			relaxed := SprinkleStepRelaxed(p, eps)
			if relaxed < exact-1e-12 {
				t.Errorf("relaxed(%v,%v) = %v < exact %v", p, eps, relaxed, exact)
			}
		}
	}
}

func TestSprinkleStepIsProbability(t *testing.T) {
	for _, p := range []float64{0, 0.25, 0.5, 0.75, 1} {
		for _, eps := range []float64{0, 0.3, 1} {
			v := SprinkleStep(p, eps)
			if v < -1e-12 || v > 1+1e-12 {
				t.Errorf("SprinkleStep(%v, %v) = %v outside [0,1]", p, eps, v)
			}
		}
	}
}

func TestSprinkleRecursionConvergesOnDenseGraph(t *testing.T) {
	// The recursion needs 3^T ≪ d for its bottom-level error ε₀ = 3^T/d to
	// be small — the paper's dense regime. At d = 10^7, T = 10 levels from
	// δ = 0.2 must collapse p below 1/d. (With δ = 0.45, T = 16 and
	// d = 10^9 the same holds; the monolithic recursion legitimately
	// stalls when 3^T ≳ d, which is why Lemma 4 chains separate DAGs.)
	d := 1e7
	tr := SprinkleRecursion(0.3, 10, d, false)
	final := tr[len(tr)-1]
	if final > 1.0/d {
		t.Errorf("recursion stalled at %v, want < 1/d = %v", final, 1.0/d)
	}
	tr2 := SprinkleRecursion(0.45, 16, 1e9, false)
	if tr2[len(tr2)-1] > 1e-9 {
		t.Errorf("deep recursion stalled at %v", tr2[len(tr2)-1])
	}
}

func TestSprinkleRecursionLengthAndStart(t *testing.T) {
	tr := SprinkleRecursion(0.4, 6, 1e5, true)
	if len(tr) != 7 || tr[0] != 0.4 {
		t.Fatalf("trajectory = %v", tr)
	}
}

func TestDeltaFixedPointValue(t *testing.T) {
	// f(x) = x/2 − 2x³ has derivative zero at 1/(2√3) ≈ 0.2887.
	if math.Abs(DeltaFixedPoint-0.288675) > 1e-5 {
		t.Errorf("DeltaFixedPoint = %v", DeltaFixedPoint)
	}
	// It maximises f on [0, 1/2].
	f := func(x float64) float64 { return x/2 - 2*x*x*x }
	for _, x := range []float64{0.1, 0.2, 0.25, 0.35, 0.45} {
		if f(x) > f(DeltaFixedPoint)+1e-12 {
			t.Errorf("f(%v) exceeds f(fixed point)", x)
		}
	}
}

func TestDeltaStepGrowth(t *testing.T) {
	// With the corrected precondition δ ≥ 48ε (see DeltaGrowthFactorHolds)
	// and δ below the fixed point, one step multiplies δ by at least 5/4.
	for _, d0 := range []float64{0.01, 0.05, 0.1, 0.2, 0.28} {
		eps := d0 / 48 // boundary of the corrected precondition
		if !DeltaGrowthFactorHolds(d0, eps) {
			t.Fatalf("precondition check failed at δ=%v", d0)
		}
		if got := DeltaStep(d0, eps); got < 1.25*d0-1e-12 {
			t.Errorf("DeltaStep(%v) = %v < 5/4·δ", d0, got)
		}
	}
}

func TestDeltaStepPaperConstantFails(t *testing.T) {
	// Documents the paper's factor-4 slip: at the stated precondition
	// δ = 12ε with δ near the fixed point, the 5/4 growth does NOT hold.
	d0 := 0.28
	got := DeltaStep(d0, d0/12)
	if got >= 1.25*d0 {
		t.Errorf("expected the paper's constant to fail here, got %v >= %v", got, 1.25*d0)
	}
}

func TestDeltaGrowthFactorPreconditions(t *testing.T) {
	if DeltaGrowthFactorHolds(0.3, 0.001) {
		t.Error("δ above fixed point should fail the precondition")
	}
	if DeltaGrowthFactorHolds(0.01, 0.01) {
		t.Error("δ < 48ε should fail the precondition")
	}
	if !DeltaGrowthFactorHolds(0.096, 0.001) {
		t.Error("valid parameters rejected")
	}
}

func TestScheduleShape(t *testing.T) {
	s := Schedule(1e4, 0.05, 1)
	if s.Total != s.T1+s.T2+s.T3 {
		t.Errorf("Total mismatch: %+v", s)
	}
	if s.T1 < 1 || s.T2 < 1 || s.T3 < 1 {
		t.Errorf("degenerate schedule: %+v", s)
	}
	if s.Total > 40 {
		t.Errorf("schedule implausibly long: %+v", s)
	}
}

func TestScheduleT3GrowsWithSmallerDelta(t *testing.T) {
	a := Schedule(1e5, 0.1, 1)
	b := Schedule(1e5, 0.001, 1)
	if b.T3 <= a.T3 {
		t.Errorf("T3 should grow as δ shrinks: %d vs %d", a.T3, b.T3)
	}
	// O(log δ⁻¹): halving δ adds O(1) steps. log(100x) factor ≈
	// log(100)/log(1.25) ≈ 20 steps.
	if b.T3-a.T3 > 30 {
		t.Errorf("T3 growth too fast: %d -> %d", a.T3, b.T3)
	}
}

func TestScheduleT2DoubleLog(t *testing.T) {
	// T2 is capped by 2·log₂log₂ d and grows extremely slowly: an 8-order-
	// of-magnitude jump in d adds only a handful of collapse steps.
	small := Schedule(1e4, 0.1, 1)
	large := Schedule(1e12, 0.1, 1)
	if large.T2-small.T2 > 6 {
		t.Errorf("T2 grew too fast: %d -> %d", small.T2, large.T2)
	}
	if large.T2 > 2*int(math.Log2(math.Log2(1e12)))+1 {
		t.Errorf("T2 = %d exceeds the paper's cap", large.T2)
	}
}

func TestScheduleDegenerateDegree(t *testing.T) {
	// Very small d must not produce NaN or panic.
	s := Schedule(2, 0.1, 1)
	if s.Total < 1 {
		t.Errorf("degenerate schedule: %+v", s)
	}
}

func TestPredictedRoundsSanity(t *testing.T) {
	// Predictions are small (double-log) and grow with shrinking δ.
	p1 := PredictedRounds(1<<16, math.Pow(1<<16, 0.7), 0.1)
	p2 := PredictedRounds(1<<16, math.Pow(1<<16, 0.7), 0.001)
	if p1 < 3 || p1 > 60 {
		t.Errorf("PredictedRounds δ=0.1: %d out of plausible band", p1)
	}
	if p2 <= p1 {
		t.Errorf("prediction should grow as δ shrinks: %d vs %d", p1, p2)
	}
	if got := PredictedRounds(2, 1, 0.1); got != 1 {
		t.Errorf("tiny-n prediction = %d", got)
	}
}

func TestCollisionLevelProb(t *testing.T) {
	if got := CollisionLevelProb(2, 810); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("CollisionLevelProb = %v, want 81/810", got)
	}
	if got := CollisionLevelProb(5, 10); got != 1 {
		t.Errorf("clamp failed: %v", got)
	}
}

func TestCollisionTailBound(t *testing.T) {
	// Large d: bound decays fast in h.
	d := 1e12
	b3 := CollisionTailBound(3, d)
	b5 := CollisionTailBound(5, d)
	if b3 <= 0 || b3 >= 1 {
		t.Errorf("bound(3) = %v", b3)
	}
	if b5 >= b3 {
		t.Errorf("bound should shrink with h while 9^h << d: %v vs %v", b3, b5)
	}
	// Small d: vacuous bound 1.
	if got := CollisionTailBound(5, 10); got != 1 {
		t.Errorf("vacuous bound = %v", got)
	}
}

func TestMinAlphaMinDelta(t *testing.T) {
	a := MinAlpha(1<<20, 1)
	if a <= 0 || a >= 1 {
		t.Errorf("MinAlpha = %v", a)
	}
	if MinAlpha(4, 1) != 1 {
		t.Error("tiny n should clamp alpha to 1")
	}
	d := MinDelta(1e6, 1)
	if d <= 0 || d >= 0.5 {
		t.Errorf("MinDelta = %v", d)
	}
	if MinDelta(0.5, 1) != 0.5 {
		t.Error("degenerate degree should clamp δ")
	}
}

// Property: IdealStep maps [0,1] into [0,1] and preserves order (it is
// monotone increasing on [0,1]).
func TestQuickIdealStepMonotoneBounded(t *testing.T) {
	f := func(aRaw, bRaw uint16) bool {
		a := float64(aRaw) / math.MaxUint16
		b := float64(bRaw) / math.MaxUint16
		fa, fb := IdealStep(a), IdealStep(b)
		if fa < -1e-12 || fa > 1+1e-12 {
			return false
		}
		if a <= b && fa > fb+1e-12 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: SprinkleStep is bounded by the relaxed form for all (p, ε) in
// the unit square.
func TestQuickRelaxedDominates(t *testing.T) {
	f := func(pRaw, eRaw uint16) bool {
		p := float64(pRaw) / math.MaxUint16
		e := float64(eRaw) / math.MaxUint16
		return SprinkleStepRelaxed(p, e) >= SprinkleStep(p, e)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestRootBlueBoundShape(t *testing.T) {
	binTail := stubBinomialTail
	// Height 0: the bound is the leaf probability itself.
	if got := RootBlueBound(0, 1e6, 0.3, binTail); got != 0.3 {
		t.Errorf("h=0 bound = %v", got)
	}
	// Vacuous regime: tiny degree makes the collision tail saturate.
	if got := RootBlueBound(4, 10, 0.001, binTail); got != 1 {
		t.Errorf("small-d bound = %v, want 1 (vacuous)", got)
	}
	// Dense regime with o(1/d) leaves: the bound is small and shrinks as
	// the leaf probability shrinks.
	d := 1e8
	b1 := RootBlueBound(3, d, 1e-4, binTail)
	b2 := RootBlueBound(3, d, 1e-6, binTail)
	if b1 >= 1 || b2 >= b1 {
		t.Errorf("dense bounds not shrinking: %v -> %v", b1, b2)
	}
}

func TestRootBlueBoundPanicsNegativeHeight(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative height did not panic")
		}
	}()
	RootBlueBound(-1, 10, 0.1, stubBinomialTail)
}

// stubBinomialTail is an exact Bin(n, p) upper tail for the small n used in
// these tests (mirrors stats.BinomialTail without importing it).
func stubBinomialTail(n, k int, p float64) float64 {
	if k <= 0 {
		return 1
	}
	if k > n || p <= 0 {
		return 0
	}
	if p >= 1 {
		return 1
	}
	total := 0.0
	lp, lq := math.Log(p), math.Log1p(-p)
	for i := k; i <= n; i++ {
		a, _ := math.Lgamma(float64(n + 1))
		b, _ := math.Lgamma(float64(i + 1))
		c, _ := math.Lgamma(float64(n - i + 1))
		total += math.Exp(a - b - c + float64(i)*lp + float64(n-i)*lq)
	}
	if total > 1 {
		return 1
	}
	return total
}
