package theory_test

import (
	"fmt"

	"repro/internal/theory"
)

// The ideal recursion of equation (1): starting from a 40% blue share, the
// blue probability collapses doubly exponentially once below 1/2.
func ExampleIdealRecursion() {
	for t, b := range theory.IdealRecursion(0.4, 6) {
		fmt.Printf("b_%d = %.6f\n", t, b)
	}
	// Output:
	// b_0 = 0.400000
	// b_1 = 0.352000
	// b_2 = 0.284484
	// b_3 = 0.196746
	// b_4 = 0.100895
	// b_5 = 0.028485
	// b_6 = 0.002388
}

// The paper's Theorem 1 time scale: rounds grow with log log n plus
// log(1/δ), so predictions stay in low double digits across huge n ranges.
func ExamplePredictedRounds() {
	for _, n := range []int{1 << 10, 1 << 20} {
		fmt.Println(theory.PredictedRounds(n, 256, 0.05) > 0)
	}
	// Output:
	// true
	// true
}

// The 5/4-growth phase of equations (4)-(5): with negligible collision
// error, one round multiplies the imbalance by at least 5/4 until the
// fixed point 1/(2*sqrt(3)) is passed.
func ExampleDeltaStep() {
	delta := 0.02
	for t := 0; t < 4; t++ {
		fmt.Printf("delta_%d = %.4f\n", t, delta)
		delta = theory.DeltaStep(delta, 0)
	}
	// Output:
	// delta_0 = 0.0200
	// delta_1 = 0.0300
	// delta_2 = 0.0449
	// delta_3 = 0.0672
}
