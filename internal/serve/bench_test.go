package serve

import (
	"context"
	"testing"

	"repro/internal/store"
)

// BenchmarkSubmitStoreHit measures the memoised submit path: a job whose
// content key is already recorded is answered with one index lookup and
// one segment read, never touching the worker pool. This is the hot path
// a store-backed server takes for every repeated spec; the CI bench smoke
// (-benchtime=1x) keeps it compiling and running, and cmd/bo3bench's
// serve/cached-jobs scenario measures the same path end-to-end over HTTP.
func BenchmarkSubmitStoreHit(b *testing.B) {
	st, err := store.Open(b.TempDir(), store.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	m := NewManager(Config{Workers: 2, Retention: 64, Store: st})
	defer m.Close(context.Background())

	req := RunRequest{Graph: GraphSpec{Family: "complete-virtual", N: 256}, Delta: 0.2, Trials: 4, Seed: 17}
	v, err := m.Submit(req)
	if err != nil {
		b.Fatal(err)
	}
	for {
		cur, ok := m.Get(v.ID)
		if !ok {
			b.Fatal("warmup job disappeared")
		}
		if cur.State == StateDone {
			break
		}
		if cur.State == StateFailed || cur.State == StateCancelled {
			b.Fatalf("warmup job %s: %s", v.ID, cur.Error)
		}
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hit, err := m.Submit(req)
		if err != nil {
			b.Fatal(err)
		}
		if hit.State != StateDone || hit.Result == nil || !hit.Result.Cached {
			b.Fatalf("iteration %d missed the store: %+v", i, hit.State)
		}
	}
}
