package serve

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"repro/internal/artifact"
	"repro/internal/metrics"
	"repro/internal/store"
)

// scrapeMetrics GETs /metrics and returns the parsed samples keyed by
// their full sample name ("bo3_jobs_completed_total",
// `bo3_jobs_engine_total{engine="general"}`), after checking the
// content type and linting the exposition.
func scrapeMetrics(t *testing.T, base string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != metrics.ContentType {
		t.Fatalf("content type = %q, want %q", ct, metrics.ContentType)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	if err := metrics.Lint(text); err != nil {
		t.Fatalf("exposition failed lint: %v", err)
	}
	samples := make(map[string]float64)
	for _, line := range strings.Split(strings.TrimSuffix(text, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("bad sample line %q: %v", line, err)
		}
		samples[line[:i]] = v
	}
	return samples
}

// sumFamily sums every sample of one labelled family.
func sumFamily(samples map[string]float64, name string) float64 {
	var total float64
	for k, v := range samples {
		if k == name || strings.HasPrefix(k, name+"{") {
			total += v
		}
	}
	return total
}

// TestStatsMetricsConsistency runs a mixed workload — executed, cached,
// rejected, and cancelled jobs, a sweep, a deduped sweep resubmission, an
// events subscriber — then asserts every /v1/stats counter equals its
// /metrics counterpart. The two are read from the same registry, so any
// disagreement means the read-through wiring regressed.
func TestStatsMetricsConsistency(t *testing.T) {
	reg := metrics.NewRegistry()
	st, err := store.Open(t.TempDir(), store.Options{Metrics: store.NewMetrics(reg)})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	arts, err := artifact.OpenDir(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	mgr := NewManager(Config{Workers: 2, Metrics: reg, Store: st, Artifacts: arts})
	ts := httptest.NewServer(NewServer(mgr))
	defer ts.Close()
	defer mgr.Close(context.Background())

	// Executed CSR job (touches the artifact tier), then the identical
	// resubmission answered from the store.
	csr := RunRequest{
		Graph:  GraphSpec{Family: "random-regular", N: 256, D: 8, Seed: 3},
		Delta:  0.2,
		Trials: 2,
		Seed:   9,
	}
	var v JobView
	doJSON(t, http.MethodPost, ts.URL+"/v1/runs", csr, http.StatusAccepted, &v)
	pollDone(t, ts.URL, v.ID)
	doJSON(t, http.MethodPost, ts.URL+"/v1/runs", csr, http.StatusAccepted, &v)
	if got := pollDone(t, ts.URL, v.ID); got.Result == nil || !got.Result.Cached {
		t.Fatalf("resubmission not answered from the store: %+v", got.Result)
	}

	// A rejected submission.
	doJSON(t, http.MethodPost, ts.URL+"/v1/runs",
		RunRequest{Graph: GraphSpec{Family: "no-such-family"}, Trials: 1},
		http.StatusBadRequest, nil)

	// A cancel attempt on a long-running job; whether it lands as
	// cancelled or done, both views must agree.
	doJSON(t, http.MethodPost, ts.URL+"/v1/runs", RunRequest{
		Graph: GraphSpec{Family: "cycle", N: 4096}, Delta: 0,
		Trials: 2000, MaxRounds: 50, Seed: 1,
	}, http.StatusAccepted, &v)
	doJSON(t, http.MethodDelete, ts.URL+"/v1/runs/"+v.ID, nil, http.StatusOK, nil)
	pollDone(t, ts.URL, v.ID)

	// A sweep, then its identical resubmission (deduped, cells cached).
	sweepReq := SweepRequest{
		Grid: SweepGrid{
			Graphs: []GraphSpec{{Family: "complete-virtual"}},
			NS:     []int{64, 96},
			Deltas: []float64{0.2},
			Trials: []int{2},
		},
		Seed: 11,
	}
	var sv SweepView
	doJSON(t, http.MethodPost, ts.URL+"/v1/sweeps", sweepReq, http.StatusAccepted, &sv)
	pollSweepDone(t, ts.URL, sv.ID)
	doJSON(t, http.MethodPost, ts.URL+"/v1/sweeps", sweepReq, http.StatusAccepted, &sv)
	pollSweepDone(t, ts.URL, sv.ID)

	// Workload quiesced: everything is terminal, so the two scrapes see
	// one frozen counter state (HTTP and uptime series keep moving, but
	// those have no JSON counterpart to compare).
	var stats Stats
	doJSON(t, http.MethodGet, ts.URL+"/v1/stats", nil, http.StatusOK, &stats)
	samples := scrapeMetrics(t, ts.URL)

	pairs := []struct {
		field string
		want  float64
		got   float64
	}{
		{"submitted", float64(stats.Submitted), samples["bo3_jobs_submitted_total"]},
		{"completed", float64(stats.Completed), samples["bo3_jobs_completed_total"]},
		{"failed", float64(stats.Failed), samples["bo3_jobs_failed_total"]},
		{"cancelled", float64(stats.Cancelled), samples["bo3_jobs_cancelled_total"]},
		{"rejected", float64(stats.Rejected), samples["bo3_jobs_rejected_total"]},
		{"jobs_cached", float64(stats.JobsCached), samples["bo3_jobs_cached_total"]},
		{"trials_run", float64(stats.TrialsRun), samples["bo3_trials_total"]},
		{"rounds_run", float64(stats.RoundsRun), samples["bo3_rounds_total"]},
		{"jobs_mean_field", float64(stats.JobsMeanField), samples[`bo3_jobs_engine_total{engine="mean-field"}`]},
		{"jobs_general", float64(stats.JobsGeneral), samples[`bo3_jobs_engine_total{engine="general"}`]},
		{"store_errors", float64(stats.StoreErrors), samples["bo3_store_errors_total"]},
		{"workers", float64(stats.Workers), samples["bo3_workers"]},
		{"sweeps_submitted", float64(stats.SweepsSubmitted), samples["bo3_sweeps_submitted_total"]},
		{"sweeps_completed", float64(stats.SweepsCompleted), samples["bo3_sweeps_completed_total"]},
		{"sweeps_cancelled", float64(stats.SweepsCancelled), samples["bo3_sweeps_cancelled_total"]},
		{"sweeps_rejected", float64(stats.SweepsRejected), samples["bo3_sweeps_rejected_total"]},
		{"sweep_cells_finished", float64(stats.SweepCellsFinished), samples["bo3_sweep_cells_finished_total"]},
		{"cells_cached", float64(stats.CellsCached), samples["bo3_sweep_cells_cached_total"]},
		{"sweeps_deduped", float64(stats.SweepsDeduped), samples["bo3_sweeps_deduped_total"]},
		{"events_published", float64(stats.EventsPublished), sumFamily(samples, "bo3_bus_published_total")},
		{"events_dropped", float64(stats.EventsDropped), sumFamily(samples, "bo3_bus_dropped_total")},
		{"subscribers", float64(stats.Subscribers), samples["bo3_bus_subscribers"]},
		{"graph_cache.hits", float64(stats.Cache.Hits), samples["bo3_graph_pool_hits_total"]},
		{"graph_cache.misses", float64(stats.Cache.Misses), samples["bo3_graph_pool_misses_total"]},
		{"graph_cache.evictions", float64(stats.Cache.Evictions), samples["bo3_graph_pool_evictions_total"]},
		{"graphs_artifact_hits", float64(stats.GraphsArtifactHits), samples["bo3_artifact_hits_total"]},
		{"graphs_artifact_misses", float64(stats.GraphsArtifactMisses), samples["bo3_artifact_misses_total"]},
		{"result_store.hits", float64(stats.ResultStore.Hits), samples["bo3_store_hits_total"]},
		{"result_store.misses", float64(stats.ResultStore.Misses), samples["bo3_store_misses_total"]},
		{"result_store.appends", float64(stats.ResultStore.Appends), samples["bo3_store_appends_total"]},
	}
	for _, p := range pairs {
		if p.want != p.got {
			t.Errorf("%s: /v1/stats = %v, /metrics = %v", p.field, p.want, p.got)
		}
	}
	for variant, n := range stats.JobsByVariant {
		key := fmt.Sprintf("bo3_jobs_variant_total{variant=%q}", variant)
		if got := samples[key]; got != float64(n) {
			t.Errorf("jobs_by_variant[%s]: /v1/stats = %d, /metrics = %v", variant, n, got)
		}
	}

	// Sanity on the workload itself: the mixed phases all registered.
	if stats.JobsCached < 1 || stats.Rejected < 1 || stats.SweepsDeduped != 1 || stats.SweepsCompleted != 2 {
		t.Errorf("workload did not exercise all counters: %+v", stats)
	}
	if stats.GraphsArtifactMisses < 1 {
		t.Errorf("CSR job did not touch the artifact tier: misses = %d", stats.GraphsArtifactMisses)
	}
}

// TestMetricsCoverage asserts the exposition covers every subsystem with
// at least one latency histogram, and that the executed-workload
// histograms carry observations.
func TestMetricsCoverage(t *testing.T) {
	reg := metrics.NewRegistry()
	st, err := store.Open(t.TempDir(), store.Options{Metrics: store.NewMetrics(reg)})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	mgr := NewManager(Config{Workers: 1, Metrics: reg, Store: st})
	ts := httptest.NewServer(NewServer(mgr))
	defer ts.Close()
	defer mgr.Close(context.Background())

	var v JobView
	doJSON(t, http.MethodPost, ts.URL+"/v1/runs", smallRun(5), http.StatusAccepted, &v)
	pollDone(t, ts.URL, v.ID)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(raw)

	// One histogram per subsystem: serve (HTTP + job stages), graph pool,
	// artifact tier, bus, store, fleet.
	histograms := []string{
		"bo3_http_request_seconds",
		"bo3_job_queue_wait_seconds",
		"bo3_job_exec_seconds",
		"bo3_job_graph_seconds",
		"bo3_job_persist_seconds",
		"bo3_graph_build_seconds",
		"bo3_graph_coalesce_wait_seconds",
		"bo3_artifact_load_seconds",
		"bo3_bus_publish_seconds",
		"bo3_store_read_seconds",
		"bo3_store_write_seconds",
		"bo3_fleet_claim_seconds",
	}
	for _, h := range histograms {
		if !strings.Contains(text, "# TYPE "+h+" histogram") {
			t.Errorf("exposition missing histogram %s", h)
		}
	}

	samples := scrapeMetrics(t, ts.URL)
	// The executed job must have observed into the per-stage histograms
	// and the store append path.
	for _, h := range []string{"bo3_job_exec_seconds", "bo3_job_graph_seconds", "bo3_job_persist_seconds", "bo3_store_write_seconds", "bo3_bus_publish_seconds"} {
		if sumFamily(samples, h+"_count") == 0 {
			t.Errorf("histogram %s has no observations after an executed job", h)
		}
	}
	if samples["bo3_build_info"] == 0 && sumFamily(samples, "bo3_build_info") != 1 {
		t.Errorf("bo3_build_info not exposed as 1")
	}
}

// TestMetricsRouteLabelUsesPattern asserts the HTTP middleware labels by
// route pattern, not raw path: two different run IDs must land in one
// series, and an unregistered path in "unmatched".
func TestMetricsRouteLabelUsesPattern(t *testing.T) {
	mgr := NewManager(Config{Workers: 1})
	ts := httptest.NewServer(NewServer(mgr))
	defer ts.Close()
	defer mgr.Close(context.Background())

	for _, path := range []string{"/v1/runs/run-000000", "/v1/runs/run-000001", "/no/such/route"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	samples := scrapeMetrics(t, ts.URL)
	if got := samples[`bo3_http_requests_total{route="GET /v1/runs/{id}",code="4xx"}`]; got != 2 {
		t.Errorf("pattern-labelled series = %v, want 2 (both IDs in one series)", got)
	}
	if got := sumFamily(samples, "bo3_http_requests_total"); got < 3 {
		t.Errorf("total http requests = %v, want >= 3", got)
	}
	found := false
	for k := range samples {
		if strings.HasPrefix(k, `bo3_http_requests_total{route="unmatched"`) {
			found = true
		}
	}
	if !found {
		t.Error("no unmatched route series for an unregistered path")
	}
}
