package serve

import (
	"bytes"
	"context"
	"os"
	"testing"

	"repro/internal/artifact"
	"repro/internal/graph"
)

func artifactCache(t *testing.T, dir string, capacity int) *GraphCache {
	t.Helper()
	d, err := artifact.OpenDir(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	c := NewGraphCache(capacity)
	c.UseArtifacts(d)
	return c
}

// TestArtifactWriteThroughAndHit: process one builds cold and writes
// through; process two (a fresh cache over the same directory — exactly
// a server restart or a fleet peer) loads the artifact instead of
// rebuilding, and both serve the identical topology.
func TestArtifactWriteThroughAndHit(t *testing.T) {
	dir := t.TempDir()
	spec := GraphSpec{Family: "random-regular", N: 64, D: 6, Seed: 9}

	c1 := artifactCache(t, dir, 4)
	g1, _, err := c1.Get(spec)
	if err != nil {
		t.Fatal(err)
	}
	if h, m := c1.ArtifactStats(); h != 0 || m != 1 {
		t.Fatalf("cold build: artifact hits=%d misses=%d, want 0/1", h, m)
	}

	c2 := artifactCache(t, dir, 4)
	g2, _, err := c2.Get(spec)
	if err != nil {
		t.Fatal(err)
	}
	if h, m := c2.ArtifactStats(); h != 1 || m != 0 {
		t.Fatalf("warm process: artifact hits=%d misses=%d, want 1/0", h, m)
	}

	o1, a1 := g1.(*graph.Graph).CSR()
	o2, a2 := g2.(*graph.Graph).CSR()
	if len(o1) != len(o2) || len(a1) != len(a2) {
		t.Fatal("loaded topology shape differs from built")
	}
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatal("loaded offsets differ from built")
		}
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatal("loaded adjacency differs from built")
		}
	}
	if g1.(*graph.Graph).Name() != g2.(*graph.Graph).Name() {
		t.Fatal("loaded graph name differs from built")
	}

	// The in-memory tier still fronts the disk tier: a second Get in the
	// same process is a pool hit, not another artifact load.
	if _, hit, err := c2.Get(spec); err != nil || !hit {
		t.Fatalf("in-memory hit = %v, err = %v", hit, err)
	}
	if h, _ := c2.ArtifactStats(); h != 1 {
		t.Fatalf("pool hit went to disk: artifact hits = %d, want 1", h)
	}
}

// TestArtifactCorruptFallsBackToBuild: a damaged artifact must degrade
// to the generator path — rebuild, re-publish — never surface an error
// to the job.
func TestArtifactCorruptFallsBackToBuild(t *testing.T) {
	dir := t.TempDir()
	spec := GraphSpec{Family: "cycle", N: 32}
	d, err := artifact.OpenDir(dir, 0)
	if err != nil {
		t.Fatal(err)
	}

	c1 := artifactCache(t, dir, 4)
	if _, _, err := c1.Get(spec); err != nil {
		t.Fatal(err)
	}
	path := d.Path(spec.Key())
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-10] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	c2 := artifactCache(t, dir, 4)
	g, _, err := c2.Get(spec)
	if err != nil {
		t.Fatalf("Get over corrupt artifact: %v", err)
	}
	if g.N() != 32 {
		t.Fatalf("rebuilt graph has n = %d, want 32", g.N())
	}
	if h, m := c2.ArtifactStats(); h != 0 || m != 1 {
		t.Fatalf("corrupt load: artifact hits=%d misses=%d, want 0/1 (rebuild)", h, m)
	}
	// The rebuild re-published a good artifact; the next process hits.
	c3 := artifactCache(t, dir, 4)
	if _, _, err := c3.Get(spec); err != nil {
		t.Fatal(err)
	}
	if h, _ := c3.ArtifactStats(); h != 1 {
		t.Fatalf("re-published artifact not served: hits = %d, want 1", h)
	}
}

// TestArtifactVirtualFamilyBypasses: complete-virtual builds an O(1)
// arithmetic topology with no CSR; the artifact tier must neither write
// a file for it nor count it against the artifact counters.
func TestArtifactVirtualFamilyBypasses(t *testing.T) {
	dir := t.TempDir()
	c := artifactCache(t, dir, 4)
	if _, _, err := c.Get(GraphSpec{Family: "complete-virtual", N: 64}); err != nil {
		t.Fatal(err)
	}
	if h, m := c.ArtifactStats(); h != 0 || m != 0 {
		t.Fatalf("virtual family touched artifact counters: hits=%d misses=%d", h, m)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("virtual family wrote %d files to the artifact dir", len(entries))
	}
}

// TestManagerStatsExposeArtifacts: the manager surfaces the disk-tier
// counters in the /v1/stats payload fields.
func TestManagerStatsExposeArtifacts(t *testing.T) {
	d, err := artifact.OpenDir(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(Config{Workers: 1, Artifacts: d})
	defer m.Close(context.Background())
	m.Cache().Get(GraphSpec{Family: "cycle", N: 16})

	st := m.Stats()
	if !st.ArtifactsEnabled {
		t.Fatal("ArtifactsEnabled = false with a directory attached")
	}
	if st.GraphsArtifactHits != 0 || st.GraphsArtifactMisses != 1 {
		t.Fatalf("stats artifact hits=%d misses=%d, want 0/1", st.GraphsArtifactHits, st.GraphsArtifactMisses)
	}
}

// TestArtifactNewerFormatKept is the mixed-version fleet drill: a key
// whose artifact file carries a newer format version (written by an
// upgraded peer) must be rebuilt in-process — counted as a miss — while
// the peer's file stays on disk byte-for-byte: neither deleted by the
// failed load nor overwritten by write-through, or old and new binaries
// would churn the shared key against each other through a rolling
// upgrade.
func TestArtifactNewerFormatKept(t *testing.T) {
	dir := t.TempDir()
	spec := GraphSpec{Family: "cycle", N: 32}
	d, err := artifact.OpenDir(dir, 0)
	if err != nil {
		t.Fatal(err)
	}

	c1 := artifactCache(t, dir, 4)
	if _, _, err := c1.Get(spec); err != nil {
		t.Fatal(err)
	}
	path := d.Path(spec.Key())
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Bump the version byte: to this binary the file is now "from the
	// future" (version check fires before any checksum).
	v2 := append([]byte(nil), data...)
	v2[8]++
	if err := os.WriteFile(path, v2, 0o644); err != nil {
		t.Fatal(err)
	}

	c2 := artifactCache(t, dir, 4)
	g, _, err := c2.Get(spec)
	if err != nil {
		t.Fatalf("Get over newer-format artifact: %v", err)
	}
	if g.N() != 32 {
		t.Fatalf("rebuilt graph has n = %d, want 32", g.N())
	}
	if h, m := c2.ArtifactStats(); h != 0 || m != 1 {
		t.Fatalf("newer-format load: artifact hits=%d misses=%d, want 0/1 (rebuild)", h, m)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("newer-format artifact was deleted: %v", err)
	}
	if !bytes.Equal(after, v2) {
		t.Fatal("newer-format artifact was overwritten by write-through")
	}
}
