package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"sync"
	"time"

	"repro/internal/artifact"
	"repro/internal/bus"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/spec"
)

// Limits bound what a single request may ask of the server. The
// graph/rule/run checks themselves live in the spec package; these are
// only the admission ceilings this server plugs into them.
type Limits struct {
	// MaxN is the largest admissible vertex count.
	MaxN int
	// MaxEdges is the largest admissible materialised edge count.
	MaxEdges int64
	// MaxTrials caps trials per job.
	MaxTrials int
	// MaxRounds caps the per-run round budget a client may request.
	MaxRounds int
	// MaxSweepCells caps how many child runs one sweep grid may expand
	// into.
	MaxSweepCells int
}

// spec converts the admission ceilings to the spec package's limit type.
func (l Limits) spec() spec.Limits {
	return spec.Limits{MaxN: l.MaxN, MaxEdges: l.MaxEdges, MaxTrials: l.MaxTrials, MaxRounds: l.MaxRounds}
}

// DefaultLimits are sized for a few GiB of RAM: the largest admissible CSR
// graph is ~1 GiB of adjacency.
func DefaultLimits() Limits {
	return Limits{
		MaxN:          1 << 22,
		MaxEdges:      1 << 27,
		MaxTrials:     4096,
		MaxRounds:     1 << 20,
		MaxSweepCells: 4096,
	}
}

// Config configures a Manager.
type Config struct {
	// Workers is the number of jobs executed concurrently (0 =
	// GOMAXPROCS).
	Workers int
	// QueueDepth is the bounded backlog; submissions beyond it are
	// rejected with ErrQueueFull (0 = 256).
	QueueDepth int
	// CacheCapacity is the graph-pool size in graphs (0 = 16).
	CacheCapacity int
	// RootSeed derives job seeds for requests that leave Seed zero:
	// job k gets rng.ChildSeed(RootSeed, k). The effective seed is
	// recorded in the result, so such jobs stay reproducible.
	RootSeed uint64
	// TrialParallelism is the per-job sim worker count. 0 derives
	// max(1, GOMAXPROCS/Workers) so that the whole pool running
	// multi-trial jobs keeps total trial goroutines near GOMAXPROCS
	// instead of Workers × GOMAXPROCS.
	TrialParallelism int
	// Retention caps how many finished jobs stay queryable; the oldest
	// finished jobs beyond it are evicted (0 = 1024). Finished sweeps are
	// retained under the same cap.
	Retention int
	// SweepConcurrency is the default cap on a sweep's in-flight child
	// runs (0 = Workers). A sweep request may lower it per sweep, never
	// raise it.
	SweepConcurrency int
	// Limits defaults to DefaultLimits when zero.
	Limits Limits
	// Artifacts is the disk-backed graph artifact directory (nil =
	// disabled; bo3serve opens it from -artifact-dir). With a directory
	// attached, a graph-pool miss loads the topology from its
	// preprocessed artifact when one exists (bo3graph build, or a fleet
	// peer's write-through) instead of running the generator, and freshly
	// generated CSR topologies are written through for the next process.
	// The manager does not own the directory.
	Artifacts *artifact.Dir
	// Store is the persistent result store (nil = disabled). With a store
	// attached, a submission whose content key is already recorded is
	// answered from disk without touching the worker pool, every executed
	// job is persisted on completion, and sweeps journal their lifecycle
	// so ResumeSweeps can finish them after a crash. The manager does not
	// own the store: the caller closes it after Close.
	Store *store.Store
	// WorkerID names this process in a fleet of servers sharing one store
	// directory (store must be opened with store.Options.Shared). With an
	// ID set, sweep cells are partitioned through the store's claim/lease
	// protocol — no two workers execute the same cell concurrently — and
	// sweep IDs are namespaced "sweep-<id>-NNNNNN" so fleets never collide
	// in the shared journal. Empty disables claims (the single-process
	// default).
	WorkerID string
	// LeaseTTL is how long a cell claim lives without renewal (0 = 1
	// minute). A worker that dies mid-cell blocks that cell for at most
	// one TTL before a peer takes the lease over.
	LeaseTTL time.Duration
	// LeasePoll is how often a scheduler blocked on another worker's
	// lease re-checks for its result or expiry (0 = LeaseTTL/20, clamped
	// to [5ms, 500ms]).
	LeasePoll time.Duration
	// EventBuffer is the per-subscriber ring size on the /events streams
	// (0 = 256). A subscriber that falls further behind than this loses
	// oldest frames first and is told how many (the `dropped` field on the
	// next frame it receives); the publishing simulation never waits.
	EventBuffer int
	// FrameBudget caps the trajectory frames one run publishes across all
	// its trials (0 = bus.DefaultFrameBudget = 256): rounds are decimated
	// to a fixed stride derived from the run's round budget, so watching a
	// 10⁶-round run costs O(FrameBudget), not O(rounds).
	FrameBudget int
	// Heartbeat is the idle keep-alive interval on /events streams (0 =
	// 15s).
	Heartbeat time.Duration
	// MetricsInterval is how often the server-wide metrics topic publishes
	// a stats frame while it has subscribers (0 = 1s).
	MetricsInterval time.Duration
	// Metrics is the registry every subsystem instrument registers on —
	// the one GET /metrics exposes (nil = a private registry; counters
	// still work, nothing is exported). The same registry should be passed
	// to store.Options.Metrics so the store and fleet families share the
	// exposition.
	Metrics *metrics.Registry
	// Logger receives the manager's structured logs (nil = discard). With
	// WorkerID set, every line carries a worker_id attribute.
	Logger *slog.Logger
	// SlowThreshold makes the manager log any job whose engine stage runs
	// longer than this, with its spec key and the full queue → graph →
	// engine → persist timing breakdown (0 = disabled).
	SlowThreshold time.Duration
}

// Sentinel errors mapped to HTTP status codes by the handlers.
var (
	// ErrQueueFull rejects submissions when the backlog is at capacity.
	ErrQueueFull = errors.New("serve: job queue is full")
	// ErrClosed rejects submissions after shutdown has begun.
	ErrClosed = errors.New("serve: manager is shut down")
)

// job is the internal mutable record behind a JobView.
type job struct {
	id  string
	seq uint64
	req RunRequest
	// effSeed is the seed the job actually runs with: the request's, or
	// one derived from the root seed at admission for requests that left
	// it zero. Fixed at enqueue so the job's content key is known before
	// it executes.
	effSeed uint64
	// key is the content address (spec.RunSpec.ContentKey of the request
	// with effSeed applied); "" when the manager has no store.
	key string
	// claimed marks a sweep cell executing under a store lease; the
	// worker renews the lease while running and releases it (fenced by
	// claimFence) if execution fails without a result.
	claimed    bool
	claimFence uint64
	sweep      string // owning sweep ID, "" for standalone runs
	state      string
	err        error
	result     *RunResult
	created    time.Time
	started    time.Time
	finished   time.Time
	// Per-stage wall times, written by the executing worker before the
	// terminal transition; they feed the stage histograms and the slowlog
	// breakdown.
	graphDur   time.Duration
	engineDur  time.Duration
	persistDur time.Duration
	cancel     context.CancelFunc // set while running
	done       chan struct{}      // closed exactly once, at the terminal transition
}

// Manager owns the job table, the bounded worker pool, and the graph pool.
// All exported methods are safe for concurrent use.
type Manager struct {
	cfg    Config
	cache  *GraphCache
	bus    *bus.Bus
	reg    *metrics.Registry
	mx     *serveMetrics
	logger *slog.Logger

	baseCtx     context.Context
	cancelBase  context.CancelFunc
	queue       chan *job
	metricsStop chan struct{}
	wg          sync.WaitGroup

	sweepWG sync.WaitGroup // sweep scheduler goroutines

	mu     sync.Mutex
	closed bool
	jobs   map[string]*job
	order  []string // submission order, for listing
	seq    uint64

	sweeps     map[string]*sweep
	sweepOrder []string
	sweepSeq   uint64
	// doneSweepKeys maps completed sweeps' grid content keys to their
	// IDs — the dedupe memory behind repeated POST /v1/sweeps. Populated
	// at each terminal transition and, across restarts, from the journal's
	// high-water-mark record.
	doneSweepKeys map[string]string

	// Instantaneous pool state; guarded by mu, exported as gauge funcs.
	// The lifecycle counters the old int64 fields held live in m.mx now —
	// Stats() reads the instruments back, so /v1/stats and /metrics share
	// one source of truth.
	queued, running int
	startTime       time.Time
}

// NewManager starts the worker pool and returns the manager.
func NewManager(cfg Config) *Manager {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 256
	}
	if cfg.CacheCapacity <= 0 {
		cfg.CacheCapacity = 16
	}
	if cfg.TrialParallelism <= 0 {
		cfg.TrialParallelism = max(1, runtime.GOMAXPROCS(0)/cfg.Workers)
	}
	if cfg.Retention <= 0 {
		cfg.Retention = 1024
	}
	if cfg.Limits == (Limits{}) {
		cfg.Limits = DefaultLimits()
	}
	if cfg.Limits.MaxSweepCells <= 0 {
		cfg.Limits.MaxSweepCells = DefaultLimits().MaxSweepCells
	}
	if cfg.SweepConcurrency <= 0 {
		cfg.SweepConcurrency = cfg.Workers
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = time.Minute
	}
	if cfg.LeasePoll <= 0 {
		cfg.LeasePoll = min(max(cfg.LeaseTTL/20, 5*time.Millisecond), 500*time.Millisecond)
	}
	if cfg.EventBuffer <= 0 {
		cfg.EventBuffer = 256
	}
	if cfg.FrameBudget <= 0 {
		cfg.FrameBudget = bus.DefaultFrameBudget
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = 15 * time.Second
	}
	if cfg.MetricsInterval <= 0 {
		cfg.MetricsInterval = time.Second
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.DiscardHandler)
	}
	logger := cfg.Logger
	if cfg.WorkerID != "" {
		logger = logger.With("worker_id", cfg.WorkerID)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cache := NewGraphCache(cfg.CacheCapacity)
	cache.UseArtifacts(cfg.Artifacts)
	cache.instrument(cfg.Metrics)
	m := &Manager{
		cfg:           cfg,
		cache:         cache,
		bus:           bus.NewInstrumented(bus.NewMetrics(cfg.Metrics)),
		reg:           cfg.Metrics,
		mx:            newServeMetrics(cfg.Metrics),
		logger:        logger,
		baseCtx:       ctx,
		cancelBase:    cancel,
		queue:         make(chan *job, cfg.QueueDepth),
		metricsStop:   make(chan struct{}),
		jobs:          make(map[string]*job),
		sweeps:        make(map[string]*sweep),
		doneSweepKeys: make(map[string]string),
		startTime:     time.Now(),
	}
	m.mx.workers.Set(int64(cfg.Workers))
	m.registerFuncMetrics(cfg.Metrics)
	m.bus.Topic(MetricsTopic, metricsRetain)
	m.wg.Add(1)
	go m.metricsLoop()
	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// Bus exposes the event bus (for tests and embedding consumers).
func (m *Manager) Bus() *bus.Bus { return m.bus }

// Cache exposes the graph pool (for stats and tests).
func (m *Manager) Cache() *GraphCache { return m.cache }

// Submit validates the request, assigns an ID, and enqueues the job. The
// returned view is in state "queued" — unless the persistent result store
// already holds the request's content key, in which case the job is born
// "done" with the recorded result and never touches the worker pool. A
// full queue fails fast with ErrQueueFull rather than blocking the
// client.
func (m *Manager) Submit(req RunRequest) (JobView, error) {
	if err := validateRun(&req, m.cfg.Limits); err != nil {
		m.mx.jobsRejected.Inc()
		return JobView{}, err
	}
	cached := m.lookupStored(req)
	m.mu.Lock()
	j, err := m.enqueueLocked(req, "", cached)
	if err != nil {
		m.mx.jobsRejected.Inc()
		m.mu.Unlock()
		return JobView{}, err
	}
	v := m.viewLocked(j)
	m.mu.Unlock()
	return v, nil
}

// contentKey renders the request's content address with the effective
// seed applied, matching the canonical spec the store records.
func contentKey(req RunRequest, effSeed uint64) string {
	req.Seed = effSeed
	return req.ContentKey()
}

// lookupStored consults the result store for a recorded result of this
// exact request. Requests that omit the seed always miss — their
// effective seed is minted fresh at admission — so only explicit-seed
// requests pay the disk read. Called without m.mu held: the read must not
// stall snapshot readers.
func (m *Manager) lookupStored(req RunRequest) *RunResult {
	if m.cfg.Store == nil || req.Seed == 0 {
		return nil
	}
	rec, ok, err := m.cfg.Store.GetResult(contentKey(req, req.Seed))
	if !ok || err != nil {
		return nil
	}
	var r RunResult
	if json.Unmarshal(rec.Body, &r) != nil {
		return nil
	}
	r.Cached = true
	return &r
}

// enqueueLocked creates the job record and places it on the bounded queue
// — or, when cached carries a stored result, registers it directly in
// state done. Callers hold m.mu and have already validated the request;
// sweepID tags child runs of a sweep ("" for standalone submissions).
func (m *Manager) enqueueLocked(req RunRequest, sweepID string, cached *RunResult) (*job, error) {
	if m.closed {
		return nil, ErrClosed
	}
	effSeed := req.Seed
	if effSeed == 0 {
		effSeed = rng.ChildSeed(m.cfg.RootSeed, m.seq)
	}
	j := &job{
		id:      fmt.Sprintf("run-%06d", m.seq),
		seq:     m.seq,
		req:     req,
		effSeed: effSeed,
		sweep:   sweepID,
		state:   StateQueued,
		created: time.Now(),
		done:    make(chan struct{}),
	}
	if m.cfg.Store != nil {
		j.key = contentKey(req, effSeed)
	}
	if cached != nil {
		// Store hit: the job is born done. It still gets a gapless ID and
		// a listing entry — it is a real job from the client's point of
		// view — but skips the queue entirely, so a hit costs one disk
		// read regardless of pool pressure. Prune before registering:
		// born finished, the job is immediately evictable, and a
		// retention table full of protected sweep children would
		// otherwise evict it in this very call — answering 202 with an ID
		// that instantly 404s.
		m.pruneLocked()
		j.state = StateDone
		j.result = cached
		j.started, j.finished = j.created, j.created
		close(j.done)
		m.seq++
		m.jobs[j.id] = j
		m.order = append(m.order, j.id)
		m.mx.jobsCompleted.Inc()
		m.mx.jobsCached.Inc()
		// Born done: the topic's whole life is one terminal state event
		// (with the cached result attached) followed by EOF.
		m.bus.Topic(runTopic(j.id), m.cfg.FrameBudget+16)
		m.publishJobState(j)
		return j, nil
	}
	select {
	case m.queue <- j:
		// The sequence number (= Stats.Submitted) only advances for jobs
		// actually accepted, so IDs stay gapless and the counters
		// reconcile: submitted = queued + running + terminal states.
		m.seq++
		m.jobs[j.id] = j
		m.order = append(m.order, j.id)
		m.queued++
		// The retained prefix must hold a full decimated trajectory plus
		// the lifecycle frames, so a late joiner replays the whole run.
		m.bus.Topic(runTopic(j.id), m.cfg.FrameBudget+16)
		m.publishJobState(j)
		m.pruneLocked()
		return j, nil
	default:
		return nil, ErrQueueFull
	}
}

// pruneLocked evicts the oldest finished jobs beyond the retention cap so
// a long-lived server does not accumulate every job ever run; callers
// hold m.mu. Queued and running jobs are never evicted, and neither are
// children of a still-running sweep — a cap-sized grid can exceed the
// retention cap, and evicting its finished cells mid-sweep would break
// the per-trial drill-down (GET /v1/runs/{job_id}) the sweep view
// promises. Such children become evictable once their sweep finishes.
func (m *Manager) pruneLocked() {
	excess := len(m.order) - m.cfg.Retention
	if excess <= 0 {
		return
	}
	kept := m.order[:0]
	for _, id := range m.order {
		j := m.jobs[id]
		finished := j.state == StateDone || j.state == StateFailed || j.state == StateCancelled
		if s, ok := m.sweeps[j.sweep]; ok && s.state == StateRunning {
			finished = false
		}
		if excess > 0 && finished {
			delete(m.jobs, id)
			m.bus.Drop(runTopic(id))
			excess--
			continue
		}
		kept = append(kept, id)
	}
	m.order = kept
}

// Get returns a snapshot of the job.
func (m *Manager) Get(id string) (JobView, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return JobView{}, false
	}
	return m.viewLocked(j), true
}

// List returns snapshots of the most recent jobs, newest first, up to max
// (0 = 100).
func (m *Manager) List(max int) []JobView {
	if max <= 0 {
		max = 100
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]JobView, 0, min(max, len(m.order)))
	for i := len(m.order) - 1; i >= 0 && len(out) < max; i-- {
		out = append(out, m.viewLocked(m.jobs[m.order[i]]))
	}
	return out
}

// Cancel requests cancellation of a queued or running job. It returns the
// post-cancel snapshot, or ok = false for an unknown ID. Cancelling a
// finished job is a no-op.
func (m *Manager) Cancel(id string) (JobView, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return JobView{}, false
	}
	m.cancelJobLocked(j)
	return m.viewLocked(j), true
}

// cancelJobLocked cancels one queued or running job; callers hold m.mu.
func (m *Manager) cancelJobLocked(j *job) {
	switch j.state {
	case StateQueued:
		// The worker that eventually pops it observes the state and drops
		// it without running.
		j.state = StateCancelled
		j.finished = time.Now()
		m.queued--
		m.mx.jobsCancelled.Inc()
		m.publishJobState(j)
		close(j.done)
	case StateRunning:
		j.cancel() // the worker finalises state when the run returns
	}
}

// Stats returns a counter snapshot including the graph pool's. The wire
// counters are read back from the same registry instruments /metrics
// exposes — one source of truth, so the JSON and the exposition can
// never drift apart.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	active := 0
	for _, s := range m.sweeps {
		if s.state == StateRunning {
			active++
		}
	}
	st := Stats{
		Submitted:          int64(m.seq),
		Completed:          m.mx.jobsCompleted.Value(),
		Failed:             m.mx.jobsFailed.Value(),
		Cancelled:          m.mx.jobsCancelled.Value(),
		Rejected:           m.mx.jobsRejected.Value(),
		Queued:             m.queued,
		Running:            m.running,
		TrialsRun:          m.mx.trialsRun.Value(),
		RoundsRun:          m.mx.roundsRun.Value(),
		JobsMeanField:      m.mx.jobsEngine.With("mean-field").Value(),
		JobsGeneral:        m.mx.jobsEngine.With("general").Value(),
		JobsCached:         m.mx.jobsCached.Value(),
		StoreErrors:        m.mx.storeErrors.Value(),
		SweepsSubmitted:    int64(m.sweepSeq),
		SweepsCompleted:    m.mx.sweepsCompleted.Value(),
		SweepsCancelled:    m.mx.sweepsCancelled.Value(),
		SweepsRejected:     m.mx.sweepsRejected.Value(),
		SweepsActive:       active,
		SweepCellsFinished: m.mx.sweepCellsFinished.Value(),
		CellsCached:        m.mx.cellsCached.Value(),
		SweepsDeduped:      m.mx.sweepsDeduped.Value(),
		WorkerID:           m.cfg.WorkerID,
		Cache:              m.cache.Stats(),
		ArtifactsEnabled:   m.cfg.Artifacts != nil,
		UptimeSeconds:      time.Since(m.startTime).Seconds(),
		Workers:            m.cfg.Workers,
	}
	// The variant vec only ever holds series for variants that executed,
	// so this reproduces the old lazily-built map (nil until a job runs).
	if vs := m.mx.jobsVariant.Values(); len(vs) > 0 {
		st.JobsByVariant = vs
	}
	bs := m.bus.Stats()
	st.EventsPublished = int64(bs.Published)
	st.EventsDropped = int64(bs.Dropped)
	st.Subscribers = bs.Subscribers
	st.GraphsArtifactHits, st.GraphsArtifactMisses = m.cache.ArtifactStats()
	if m.cfg.Store != nil {
		ss := m.cfg.Store.Stats()
		st.ResultStore = &ss
	}
	return st
}

// Close shuts the manager down: no new submissions are accepted, queued
// and running jobs are given until ctx expires to drain, then everything
// still in flight is cancelled. Close always waits for the workers to
// exit; it returns ctx.Err() if the deadline forced cancellation.
func (m *Manager) Close(ctx context.Context) error {
	m.mu.Lock()
	if !m.closed {
		m.closed = true
		close(m.queue)
		close(m.metricsStop)
	}
	m.mu.Unlock()

	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		m.sweepWG.Wait() // schedulers exit once their children finish
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		m.cancelBase()
		<-done
		return ctx.Err()
	}
}

// viewLocked snapshots a job; callers hold m.mu. The result pointer is
// shared but written exactly once before the state becomes done, so
// readers never observe mutation.
func (m *Manager) viewLocked(j *job) JobView {
	v := JobView{
		ID:      j.id,
		State:   j.state,
		Request: j.req,
		Sweep:   j.sweep,
		Result:  j.result,
		Created: j.created,
	}
	if j.err != nil {
		v.Error = j.err.Error()
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
	}
	return v
}

// worker drains the queue until Close.
func (m *Manager) worker() {
	defer m.wg.Done()
	for j := range m.queue {
		m.mu.Lock()
		if j.state != StateQueued { // cancelled while queued
			m.mu.Unlock()
			continue
		}
		ctx, cancel := context.WithCancel(m.baseCtx)
		j.state = StateRunning
		j.started = time.Now()
		j.cancel = cancel
		m.queued--
		m.running++
		m.publishJobState(j)
		m.mu.Unlock()

		var stopRenew chan struct{}
		if j.claimed {
			stopRenew = make(chan struct{})
			go m.renewLease(j, stopRenew)
		}
		result, err := m.run(ctx, j)
		cancel()
		if stopRenew != nil {
			close(stopRenew)
		}
		switch {
		case err == nil:
			// Record before the terminal transition: once a client can see
			// the job done, its result is already replayable from the
			// store (and a crash between the two recomputes, never loses).
			// The result record also supersedes any claim on the key, so
			// the completion path never writes a release.
			pStart := time.Now()
			m.persistResult(j, result)
			j.persistDur = time.Since(pStart)
		case j.claimed && !errors.Is(err, context.Canceled):
			// Failed execution under a lease: give the key up so a peer may
			// retry. Cancellation deliberately does NOT release — shutdown
			// is indistinguishable from a crash fleet-wide, and the expiry
			// path covers both.
			if rerr := m.cfg.Store.Release(j.key, m.cfg.WorkerID, j.claimFence); rerr != nil && !errors.Is(rerr, store.ErrLeaseLost) {
				m.mx.storeErrors.Inc()
				m.logger.Warn("serve: lease release failed", "job_id", j.id, "key", j.key, "sweep_id", j.sweep, "err", rerr)
			}
		}

		m.mu.Lock()
		j.finished = time.Now()
		j.cancel = nil
		m.running--
		switch {
		case err == nil:
			j.state = StateDone
			result.QueueMS = j.started.Sub(j.created).Milliseconds()
			j.result = result
			m.mx.jobsCompleted.Inc()
			m.mx.trialsRun.Add(int64(result.Trials))
			for _, r := range result.Reports {
				m.mx.roundsRun.Add(int64(r.Rounds))
			}
			m.mx.jobsEngine.With(result.Engine).Inc()
			// The wire result omits the sync default; the counter spells it
			// out so the stats split always sums to the executed jobs.
			variant := result.Variant
			if variant == "" {
				variant = "sync"
			}
			m.mx.jobsVariant.With(variant).Inc()
			m.observeStages(j, result.Engine, variant)
		case errors.Is(err, context.Canceled):
			j.state = StateCancelled
			m.mx.jobsCancelled.Inc()
		default:
			j.state = StateFailed
			j.err = err
			m.mx.jobsFailed.Inc()
			m.logger.Warn("serve: job failed", "job_id", j.id, "key", j.key, "sweep_id", j.sweep, "err", err)
		}
		m.publishJobState(j) // terminal: closes the run topic
		close(j.done)        // wakes the sweep watcher, if any
		m.mu.Unlock()
	}
}

// observeStages feeds an executed job's per-stage wall times into the
// latency histograms and, when the engine stage exceeded the slowlog
// threshold, logs the full breakdown. Called at the done transition with
// m.mu held (the instruments themselves are lock-free).
func (m *Manager) observeStages(j *job, engine, variant string) {
	queueWait := j.started.Sub(j.created)
	m.mx.queueWaitSeconds.With(engine, variant).Observe(queueWait.Seconds())
	m.mx.execSeconds.With(engine, variant).Observe(j.engineDur.Seconds())
	m.mx.graphSeconds.Observe(j.graphDur.Seconds())
	m.mx.persistSeconds.Observe(j.persistDur.Seconds())
	if t := m.cfg.SlowThreshold; t > 0 && j.engineDur > t {
		m.logger.Warn("serve: slow job",
			"job_id", j.id, "key", j.key, "sweep_id", j.sweep,
			"engine", engine, "variant", variant,
			"queue_ms", queueWait.Milliseconds(),
			"graph_ms", j.graphDur.Milliseconds(),
			"engine_ms", j.engineDur.Milliseconds(),
			"persist_ms", j.persistDur.Milliseconds(),
			"threshold_ms", t.Milliseconds())
	}
}

// renewLease extends the job's cell lease every LeaseTTL/3 until stop
// closes. A failed renewal means the lease expired under scheduling
// pressure and a peer took it over: execution continues — the duplicated
// work is wasted, not wrong, because results are first-write-wins — but
// renewing stops.
func (m *Manager) renewLease(j *job, stop <-chan struct{}) {
	t := time.NewTicker(max(m.cfg.LeaseTTL/3, time.Millisecond))
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			if err := m.cfg.Store.Renew(j.key, m.cfg.WorkerID, j.claimFence, m.cfg.LeaseTTL); err != nil {
				return
			}
		}
	}
}

// claimsEnabled reports whether sweep cells go through the store's
// claim/lease protocol: a store is attached and this process has a fleet
// identity.
func (m *Manager) claimsEnabled() bool {
	return m.cfg.Store != nil && m.cfg.WorkerID != ""
}

// run executes one job: fetch the graph from the pool and hand the spec
// (with the effective seed fixed at admission) to the shared execution
// path. Because that path is the same repro.Runner the library and the
// CLIs execute, a job's per-trial outcomes are byte-identical to running
// its spec anywhere else.
func (m *Manager) run(ctx context.Context, j *job) (*RunResult, error) {
	gStart := time.Now()
	g, cacheHit, err := m.cache.Get(j.req.Graph)
	j.graphDur = time.Since(gStart)
	if err != nil {
		return nil, err
	}
	runSpec := j.req
	runSpec.Seed = j.effSeed
	eStart := time.Now()
	res, err := executeSpec(ctx, runSpec, g, m.cfg.TrialParallelism, m.trajectoryObserver(j, g, runSpec))
	j.engineDur = time.Since(eStart)
	if err != nil {
		return nil, err
	}
	res.CacheHit = cacheHit
	return res, nil
}

// persistResult records a completed job's canonical (spec, result) pair
// under its content key. Store failures are counted, never propagated:
// the result is correct whether or not it was recorded.
func (m *Manager) persistResult(j *job, res *RunResult) {
	if m.cfg.Store == nil {
		return
	}
	specJSON, err := json.Marshal(canonicalSpec(j.req, j.effSeed))
	if err == nil {
		var bodyJSON []byte
		if bodyJSON, err = json.Marshal(CanonicalResult(*res)); err == nil {
			_, err = m.cfg.Store.PutResult(j.key, specJSON, bodyJSON)
		}
	}
	if err != nil {
		m.mx.storeErrors.Inc()
		m.logger.Warn("serve: result persist failed", "job_id", j.id, "key", j.key, "sweep_id", j.sweep, "err", err)
	}
}

// canonicalSpec is the spec the store records: the request with its
// documented defaults applied and the effective seed filled in, so the
// stored JSON is exactly a request any entry point replays bit-for-bit.
func canonicalSpec(req RunRequest, effSeed uint64) RunRequest {
	req.Seed = effSeed
	req.Normalize()
	return req
}

// tallyReports folds per-trial reports into a sim.Tally; sweeps rebuild the
// same tally per cell so job- and sweep-level aggregates agree exactly.
func tallyReports(reports []TrialReport) sim.Tally {
	var tl sim.Tally
	for _, r := range reports {
		tl.Add(r.Rounds, r.RedWon, r.Consensus)
	}
	return tl
}
