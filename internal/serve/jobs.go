package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/spec"
)

// Limits bound what a single request may ask of the server. The
// graph/rule/run checks themselves live in the spec package; these are
// only the admission ceilings this server plugs into them.
type Limits struct {
	// MaxN is the largest admissible vertex count.
	MaxN int
	// MaxEdges is the largest admissible materialised edge count.
	MaxEdges int64
	// MaxTrials caps trials per job.
	MaxTrials int
	// MaxRounds caps the per-run round budget a client may request.
	MaxRounds int
	// MaxSweepCells caps how many child runs one sweep grid may expand
	// into.
	MaxSweepCells int
}

// spec converts the admission ceilings to the spec package's limit type.
func (l Limits) spec() spec.Limits {
	return spec.Limits{MaxN: l.MaxN, MaxEdges: l.MaxEdges, MaxTrials: l.MaxTrials, MaxRounds: l.MaxRounds}
}

// DefaultLimits are sized for a few GiB of RAM: the largest admissible CSR
// graph is ~1 GiB of adjacency.
func DefaultLimits() Limits {
	return Limits{
		MaxN:          1 << 22,
		MaxEdges:      1 << 27,
		MaxTrials:     4096,
		MaxRounds:     1 << 20,
		MaxSweepCells: 4096,
	}
}

// Config configures a Manager.
type Config struct {
	// Workers is the number of jobs executed concurrently (0 =
	// GOMAXPROCS).
	Workers int
	// QueueDepth is the bounded backlog; submissions beyond it are
	// rejected with ErrQueueFull (0 = 256).
	QueueDepth int
	// CacheCapacity is the graph-pool size in graphs (0 = 16).
	CacheCapacity int
	// RootSeed derives job seeds for requests that leave Seed zero:
	// job k gets rng.ChildSeed(RootSeed, k). The effective seed is
	// recorded in the result, so such jobs stay reproducible.
	RootSeed uint64
	// TrialParallelism is the per-job sim worker count. 0 derives
	// max(1, GOMAXPROCS/Workers) so that the whole pool running
	// multi-trial jobs keeps total trial goroutines near GOMAXPROCS
	// instead of Workers × GOMAXPROCS.
	TrialParallelism int
	// Retention caps how many finished jobs stay queryable; the oldest
	// finished jobs beyond it are evicted (0 = 1024). Finished sweeps are
	// retained under the same cap.
	Retention int
	// SweepConcurrency is the default cap on a sweep's in-flight child
	// runs (0 = Workers). A sweep request may lower it per sweep, never
	// raise it.
	SweepConcurrency int
	// Limits defaults to DefaultLimits when zero.
	Limits Limits
}

// Sentinel errors mapped to HTTP status codes by the handlers.
var (
	// ErrQueueFull rejects submissions when the backlog is at capacity.
	ErrQueueFull = errors.New("serve: job queue is full")
	// ErrClosed rejects submissions after shutdown has begun.
	ErrClosed = errors.New("serve: manager is shut down")
)

// job is the internal mutable record behind a JobView.
type job struct {
	id       string
	seq      uint64
	req      RunRequest
	sweep    string // owning sweep ID, "" for standalone runs
	state    string
	err      error
	result   *RunResult
	created  time.Time
	started  time.Time
	finished time.Time
	cancel   context.CancelFunc // set while running
	done     chan struct{}      // closed exactly once, at the terminal transition
}

// Manager owns the job table, the bounded worker pool, and the graph pool.
// All exported methods are safe for concurrent use.
type Manager struct {
	cfg   Config
	cache *GraphCache

	baseCtx    context.Context
	cancelBase context.CancelFunc
	queue      chan *job
	wg         sync.WaitGroup

	sweepWG sync.WaitGroup // sweep scheduler goroutines

	mu     sync.Mutex
	closed bool
	jobs   map[string]*job
	order  []string // submission order, for listing
	seq    uint64

	sweeps     map[string]*sweep
	sweepOrder []string
	sweepSeq   uint64

	// Counters; guarded by mu.
	completed, failed, cancelled, rejected           int64
	trialsRun, roundsRun                             int64
	jobsMeanField, jobsGeneral                       int64
	queued, running                                  int
	sweepsCompleted, sweepsCancelled, sweepsRejected int64
	sweepCellsFinished                               int64
	startTime                                        time.Time
}

// NewManager starts the worker pool and returns the manager.
func NewManager(cfg Config) *Manager {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 256
	}
	if cfg.CacheCapacity <= 0 {
		cfg.CacheCapacity = 16
	}
	if cfg.TrialParallelism <= 0 {
		cfg.TrialParallelism = max(1, runtime.GOMAXPROCS(0)/cfg.Workers)
	}
	if cfg.Retention <= 0 {
		cfg.Retention = 1024
	}
	if cfg.Limits == (Limits{}) {
		cfg.Limits = DefaultLimits()
	}
	if cfg.Limits.MaxSweepCells <= 0 {
		cfg.Limits.MaxSweepCells = DefaultLimits().MaxSweepCells
	}
	if cfg.SweepConcurrency <= 0 {
		cfg.SweepConcurrency = cfg.Workers
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		cfg:        cfg,
		cache:      NewGraphCache(cfg.CacheCapacity),
		baseCtx:    ctx,
		cancelBase: cancel,
		queue:      make(chan *job, cfg.QueueDepth),
		jobs:       make(map[string]*job),
		sweeps:     make(map[string]*sweep),
		startTime:  time.Now(),
	}
	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// Cache exposes the graph pool (for stats and tests).
func (m *Manager) Cache() *GraphCache { return m.cache }

// Submit validates the request, assigns an ID, and enqueues the job. The
// returned view is in state "queued". A full queue fails fast with
// ErrQueueFull rather than blocking the client.
func (m *Manager) Submit(req RunRequest) (JobView, error) {
	if err := validateRun(&req, m.cfg.Limits); err != nil {
		m.mu.Lock()
		m.rejected++
		m.mu.Unlock()
		return JobView{}, err
	}
	m.mu.Lock()
	j, err := m.enqueueLocked(req, "")
	if err != nil {
		m.rejected++
		m.mu.Unlock()
		return JobView{}, err
	}
	v := m.viewLocked(j)
	m.mu.Unlock()
	return v, nil
}

// enqueueLocked creates the job record and places it on the bounded queue;
// callers hold m.mu and have already validated the request. sweepID tags
// child runs of a sweep ("" for standalone submissions).
func (m *Manager) enqueueLocked(req RunRequest, sweepID string) (*job, error) {
	if m.closed {
		return nil, ErrClosed
	}
	j := &job{
		id:      fmt.Sprintf("run-%06d", m.seq),
		seq:     m.seq,
		req:     req,
		sweep:   sweepID,
		state:   StateQueued,
		created: time.Now(),
		done:    make(chan struct{}),
	}
	select {
	case m.queue <- j:
		// The sequence number (= Stats.Submitted) only advances for jobs
		// actually accepted, so IDs stay gapless and the counters
		// reconcile: submitted = queued + running + terminal states.
		m.seq++
		m.jobs[j.id] = j
		m.order = append(m.order, j.id)
		m.queued++
		m.pruneLocked()
		return j, nil
	default:
		return nil, ErrQueueFull
	}
}

// pruneLocked evicts the oldest finished jobs beyond the retention cap so
// a long-lived server does not accumulate every job ever run; callers
// hold m.mu. Queued and running jobs are never evicted, and neither are
// children of a still-running sweep — a cap-sized grid can exceed the
// retention cap, and evicting its finished cells mid-sweep would break
// the per-trial drill-down (GET /v1/runs/{job_id}) the sweep view
// promises. Such children become evictable once their sweep finishes.
func (m *Manager) pruneLocked() {
	excess := len(m.order) - m.cfg.Retention
	if excess <= 0 {
		return
	}
	kept := m.order[:0]
	for _, id := range m.order {
		j := m.jobs[id]
		finished := j.state == StateDone || j.state == StateFailed || j.state == StateCancelled
		if s, ok := m.sweeps[j.sweep]; ok && s.state == StateRunning {
			finished = false
		}
		if excess > 0 && finished {
			delete(m.jobs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	m.order = kept
}

// Get returns a snapshot of the job.
func (m *Manager) Get(id string) (JobView, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return JobView{}, false
	}
	return m.viewLocked(j), true
}

// List returns snapshots of the most recent jobs, newest first, up to max
// (0 = 100).
func (m *Manager) List(max int) []JobView {
	if max <= 0 {
		max = 100
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]JobView, 0, min(max, len(m.order)))
	for i := len(m.order) - 1; i >= 0 && len(out) < max; i-- {
		out = append(out, m.viewLocked(m.jobs[m.order[i]]))
	}
	return out
}

// Cancel requests cancellation of a queued or running job. It returns the
// post-cancel snapshot, or ok = false for an unknown ID. Cancelling a
// finished job is a no-op.
func (m *Manager) Cancel(id string) (JobView, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return JobView{}, false
	}
	m.cancelJobLocked(j)
	return m.viewLocked(j), true
}

// cancelJobLocked cancels one queued or running job; callers hold m.mu.
func (m *Manager) cancelJobLocked(j *job) {
	switch j.state {
	case StateQueued:
		// The worker that eventually pops it observes the state and drops
		// it without running.
		j.state = StateCancelled
		j.finished = time.Now()
		m.queued--
		m.cancelled++
		close(j.done)
	case StateRunning:
		j.cancel() // the worker finalises state when the run returns
	}
}

// Stats returns a counter snapshot including the graph pool's.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	active := 0
	for _, s := range m.sweeps {
		if s.state == StateRunning {
			active++
		}
	}
	return Stats{
		Submitted:          int64(m.seq),
		Completed:          m.completed,
		Failed:             m.failed,
		Cancelled:          m.cancelled,
		Rejected:           m.rejected,
		Queued:             m.queued,
		Running:            m.running,
		TrialsRun:          m.trialsRun,
		RoundsRun:          m.roundsRun,
		JobsMeanField:      m.jobsMeanField,
		JobsGeneral:        m.jobsGeneral,
		SweepsSubmitted:    int64(m.sweepSeq),
		SweepsCompleted:    m.sweepsCompleted,
		SweepsCancelled:    m.sweepsCancelled,
		SweepsRejected:     m.sweepsRejected,
		SweepsActive:       active,
		SweepCellsFinished: m.sweepCellsFinished,
		Cache:              m.cache.Stats(),
		UptimeSeconds:      time.Since(m.startTime).Seconds(),
		Workers:            m.cfg.Workers,
	}
}

// Close shuts the manager down: no new submissions are accepted, queued
// and running jobs are given until ctx expires to drain, then everything
// still in flight is cancelled. Close always waits for the workers to
// exit; it returns ctx.Err() if the deadline forced cancellation.
func (m *Manager) Close(ctx context.Context) error {
	m.mu.Lock()
	if !m.closed {
		m.closed = true
		close(m.queue)
	}
	m.mu.Unlock()

	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		m.sweepWG.Wait() // schedulers exit once their children finish
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		m.cancelBase()
		<-done
		return ctx.Err()
	}
}

// viewLocked snapshots a job; callers hold m.mu. The result pointer is
// shared but written exactly once before the state becomes done, so
// readers never observe mutation.
func (m *Manager) viewLocked(j *job) JobView {
	v := JobView{
		ID:      j.id,
		State:   j.state,
		Request: j.req,
		Sweep:   j.sweep,
		Result:  j.result,
		Created: j.created,
	}
	if j.err != nil {
		v.Error = j.err.Error()
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
	}
	return v
}

// worker drains the queue until Close.
func (m *Manager) worker() {
	defer m.wg.Done()
	for j := range m.queue {
		m.mu.Lock()
		if j.state != StateQueued { // cancelled while queued
			m.mu.Unlock()
			continue
		}
		ctx, cancel := context.WithCancel(m.baseCtx)
		j.state = StateRunning
		j.started = time.Now()
		j.cancel = cancel
		m.queued--
		m.running++
		m.mu.Unlock()

		result, err := m.run(ctx, j)
		cancel()

		m.mu.Lock()
		j.finished = time.Now()
		j.cancel = nil
		m.running--
		switch {
		case err == nil:
			j.state = StateDone
			result.QueueMS = j.started.Sub(j.created).Milliseconds()
			j.result = result
			m.completed++
			m.trialsRun += int64(result.Trials)
			for _, r := range result.Reports {
				m.roundsRun += int64(r.Rounds)
			}
			if result.Engine == "mean-field" {
				m.jobsMeanField++
			} else {
				m.jobsGeneral++
			}
		case errors.Is(err, context.Canceled):
			j.state = StateCancelled
			m.cancelled++
		default:
			j.state = StateFailed
			j.err = err
			m.failed++
		}
		close(j.done) // wakes the sweep watcher, if any
		m.mu.Unlock()
	}
}

// run executes one job: fetch the graph from the pool, hand the spec to
// the shared repro.Runner (which derives per-trial seeds from the job seed
// via the ChildSeed tree), and aggregate. Because the Runner is the same
// code path the library and the CLIs execute, a job's per-trial outcomes
// are byte-identical to running its spec anywhere else.
func (m *Manager) run(ctx context.Context, j *job) (*RunResult, error) {
	req := j.req
	g, cacheHit, err := m.cache.Get(req.Graph)
	if err != nil {
		return nil, err
	}
	jobSeed := req.Seed
	if jobSeed == 0 {
		jobSeed = rng.ChildSeed(m.cfg.RootSeed, j.seq)
	}
	runSpec := req
	runSpec.Seed = jobSeed
	// The Runner's canonical engine configuration (one engine worker per
	// trial) is deliberately left in place: it is what makes a job's
	// outcomes byte-identical to the same spec run through the library or
	// bo3sim, at the cost of in-engine parallelism for single-trial jobs
	// (trial-level parallelism is unaffected).
	runner, err := repro.NewRunner(runSpec,
		repro.WithTopology(g),
		repro.WithWorkers(m.cfg.TrialParallelism))
	if err != nil {
		return nil, err
	}
	runSpec = runner.Spec()

	// Consume the trial stream rather than the aggregate report: each
	// trial's trajectory is dropped as soon as its summary is recorded, so
	// a max-size job holds O(TrialParallelism) trajectories in memory, not
	// all of them at once.
	start := time.Now()
	stream, err := runner.Stream(ctx)
	if err != nil {
		return nil, err
	}
	reports := make([]TrialReport, runSpec.Trials)
	var firstErr error
	var predicted int
	var pre string
	var preOK bool
	for tr := range stream {
		if tr.Err != nil {
			if firstErr == nil {
				firstErr = tr.Err
			}
			continue
		}
		reports[tr.Trial] = TrialReport{RedWon: tr.Report.RedWon, Consensus: tr.Report.Consensus, Rounds: tr.Report.Rounds}
		// Instance-level diagnostics are identical across trials; keep one.
		predicted = tr.Report.PredictedRounds
		pre = tr.Report.Precondition.String()
		preOK = tr.Report.Precondition.Satisfied()
	}
	if firstErr == nil {
		firstErr = ctx.Err()
	}
	if firstErr != nil {
		return nil, firstErr
	}
	rule, err := runSpec.DynamicsRule()
	if err != nil {
		return nil, err
	}
	engine, err := runner.EngineName()
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	res := &RunResult{
		Trials:          runSpec.Trials,
		PredictedRounds: predicted,
		Precondition:    pre,
		PreconditionOK:  preOK,
		Seed:            jobSeed,
		GraphName:       g.Name(),
		Rule:            rule.Name(),
		Engine:          engine,
		CacheHit:        cacheHit,
		ElapsedMS:       elapsed.Milliseconds(),
		Reports:         reports,
	}
	tl := tallyReports(reports)
	res.RedWins = tl.Wins
	res.Consensus = tl.Consensus
	res.MeanRounds = tl.MeanRounds()
	res.MaxRounds = tl.MaxRounds
	if secs := elapsed.Seconds(); secs > 0 {
		res.RoundsPerSec = float64(tl.RoundSum) / secs
	}
	return res, nil
}

// tallyReports folds per-trial reports into a sim.Tally; sweeps rebuild the
// same tally per cell so job- and sweep-level aggregates agree exactly.
func tallyReports(reports []TrialReport) sim.Tally {
	var tl sim.Tally
	for _, r := range reports {
		tl.Add(r.Rounds, r.RedWon, r.Consensus)
	}
	return tl
}
