package serve

import (
	"context"
	"net/http"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/metrics"
	"repro/internal/store"
)

// This file is the serve layer's metrics surface: the instrument bundle
// every subsystem counter lives in, the func-backed metrics that read
// manager state at scrape time, and the HTTP middleware behind the
// per-route request histograms. GET /v1/stats is a read-through view
// over the same instruments (see Manager.Stats), so the JSON counters
// and the /metrics exposition can never disagree.

// serveMetrics bundles the serve layer's pushed instruments. Everything
// here is updated at the same sites that used to bump the Manager's
// private int64 counters; Stats() reads the instruments back.
type serveMetrics struct {
	// HTTP surface.
	httpRequests *metrics.CounterVec   // {route, code-class}
	httpSeconds  *metrics.HistogramVec // {route}

	// Job lifecycle.
	jobsCompleted *metrics.Counter
	jobsFailed    *metrics.Counter
	jobsCancelled *metrics.Counter
	jobsRejected  *metrics.Counter
	jobsCached    *metrics.Counter
	jobsEngine    *metrics.CounterVec // {engine}
	jobsVariant   *metrics.CounterVec // {variant}
	trialsRun     *metrics.Counter
	roundsRun     *metrics.Counter
	storeErrors   *metrics.Counter
	workers       *metrics.Gauge

	// Per-stage job latencies, split where the stage identity matters.
	queueWaitSeconds *metrics.HistogramVec // {engine, variant}
	execSeconds      *metrics.HistogramVec // {engine, variant}
	graphSeconds     *metrics.Histogram    // graph-pool fetch, incl. coalesce waits
	persistSeconds   *metrics.Histogram    // store write of the finished result

	// Sweep lifecycle.
	sweepsCompleted    *metrics.Counter
	sweepsCancelled    *metrics.Counter
	sweepsRejected     *metrics.Counter
	sweepCellsFinished *metrics.Counter
	cellsCached        *metrics.Counter
	sweepsDeduped      *metrics.Counter
}

func newServeMetrics(reg *metrics.Registry) *serveMetrics {
	bi := buildinfo.Get()
	reg.GaugeVec("bo3_build_info", "Build identity; value is always 1, the labels carry the information.",
		"version", "commit", "go_version").With(bi.Version, bi.Commit, bi.GoVersion).Set(1)
	m := &serveMetrics{
		httpRequests: reg.CounterVec("bo3_http_requests_total", "HTTP requests served, by route pattern and status class.", "route", "code"),
		httpSeconds:  reg.HistogramVec("bo3_http_request_seconds", "HTTP request latency by route pattern.", metrics.DefBuckets, "route"),

		jobsCompleted: reg.Counter("bo3_jobs_completed_total", "Jobs that reached state done (store-cached answers included)."),
		jobsFailed:    reg.Counter("bo3_jobs_failed_total", "Jobs that reached state failed."),
		jobsCancelled: reg.Counter("bo3_jobs_cancelled_total", "Jobs cancelled while queued or running."),
		jobsRejected:  reg.Counter("bo3_jobs_rejected_total", "Submissions rejected at admission (validation or full queue)."),
		jobsCached:    reg.Counter("bo3_jobs_cached_total", "Jobs answered from the persistent result store without executing."),
		jobsEngine:    reg.CounterVec("bo3_jobs_engine_total", "Executed jobs by round engine.", "engine"),
		jobsVariant:   reg.CounterVec("bo3_jobs_variant_total", "Executed jobs by opinion-dynamic variant.", "variant"),
		trialsRun:     reg.Counter("bo3_trials_total", "Protocol trials executed."),
		roundsRun:     reg.Counter("bo3_rounds_total", "Protocol rounds executed."),
		storeErrors:   reg.Counter("bo3_store_errors_total", "Failed result-store writes observed by the serve layer (the affected jobs still completed)."),
		workers:       reg.Gauge("bo3_workers", "Job worker-pool width."),

		queueWaitSeconds: reg.HistogramVec("bo3_job_queue_wait_seconds", "Time between job admission and execution start, by engine and variant.", metrics.DefBuckets, "engine", "variant"),
		execSeconds:      reg.HistogramVec("bo3_job_exec_seconds", "Job execution time (engine stage only), by engine and variant.", metrics.DefBuckets, "engine", "variant"),
		graphSeconds:     reg.Histogram("bo3_job_graph_seconds", "Graph-pool fetch time per executed job: cache hit, artifact load, generator build, or coalesced wait.", metrics.DefBuckets),
		persistSeconds:   reg.Histogram("bo3_job_persist_seconds", "Result-store write time per completed job.", metrics.DefBuckets),

		sweepsCompleted:    reg.Counter("bo3_sweeps_completed_total", "Sweeps that reached state done."),
		sweepsCancelled:    reg.Counter("bo3_sweeps_cancelled_total", "Sweeps cancelled before completion."),
		sweepsRejected:     reg.Counter("bo3_sweeps_rejected_total", "Sweep submissions rejected at admission."),
		sweepCellsFinished: reg.Counter("bo3_sweep_cells_finished_total", "Sweep child runs that reached a terminal state."),
		cellsCached:        reg.Counter("bo3_sweep_cells_cached_total", "Sweep cells answered from the persistent result store."),
		sweepsDeduped:      reg.Counter("bo3_sweeps_deduped_total", "Sweep submissions answered entirely from a previously completed identical grid."),
	}
	// Pre-create the two engine series so the exposition (and the Stats
	// read-through) is deterministic from the first scrape, not from the
	// first executed job.
	m.jobsEngine.With("mean-field")
	m.jobsEngine.With("general")
	return m
}

// registerFuncMetrics registers the scrape-time metrics that read live
// manager state: gauges for instantaneous values, counter-funcs for
// monotone sequence numbers another mechanism owns (m.seq doubles as the
// gapless job-ID mint; m.sweepSeq also advances from journal ID
// reservation on resume, so neither can be a plain pushed counter).
// Called once from NewManager; the closures lock m.mu at scrape.
func (m *Manager) registerFuncMetrics(reg *metrics.Registry) {
	reg.CounterFunc("bo3_jobs_submitted_total", "Jobs admitted (the job-ID sequence number).", func() float64 {
		m.mu.Lock()
		defer m.mu.Unlock()
		return float64(m.seq)
	})
	reg.CounterFunc("bo3_sweeps_submitted_total", "Sweeps admitted (the sweep-ID sequence number, journal reservations included).", func() float64 {
		m.mu.Lock()
		defer m.mu.Unlock()
		return float64(m.sweepSeq)
	})
	reg.GaugeFunc("bo3_jobs_queued", "Jobs waiting on the bounded queue.", func() float64 {
		m.mu.Lock()
		defer m.mu.Unlock()
		return float64(m.queued)
	})
	reg.GaugeFunc("bo3_jobs_running", "Jobs currently executing.", func() float64 {
		m.mu.Lock()
		defer m.mu.Unlock()
		return float64(m.running)
	})
	reg.GaugeFunc("bo3_workers_busy", "Workers currently executing a job (worker-pool utilization together with bo3_workers).", func() float64 {
		m.mu.Lock()
		defer m.mu.Unlock()
		return float64(m.running)
	})
	reg.GaugeFunc("bo3_sweeps_active", "Sweeps currently running.", func() float64 {
		m.mu.Lock()
		defer m.mu.Unlock()
		n := 0
		for _, s := range m.sweeps {
			if s.state == StateRunning {
				n++
			}
		}
		return float64(n)
	})
	reg.GaugeFunc("bo3_uptime_seconds", "Seconds since manager start.", func() float64 {
		return time.Since(m.startTime).Seconds()
	})
	reg.GaugeFunc("bo3_bus_subscribers", "Event-stream subscribers currently attached.", func() float64 {
		return float64(m.bus.Stats().Subscribers)
	})
	reg.CounterFunc("bo3_artifact_evictions_total", "Artifact files evicted from the disk tier by its byte bound.", func() float64 {
		if m.cfg.Artifacts == nil {
			return 0
		}
		return float64(m.cfg.Artifacts.Evictions())
	})
}

// Registry exposes the manager's metrics registry (the one behind
// GET /metrics).
func (m *Manager) Registry() *metrics.Registry { return m.reg }

// AllMetricNames registers every metric family the full service can
// expose — serve, graph pool, bus, store/fleet — on a throwaway registry
// and returns the names. This is the source of truth the
// check-api-docs.sh doc-drift check scrapes (via internal/tools/
// metricnames) to require each metric documented in docs/API.md.
func AllMetricNames() []string {
	reg := metrics.NewRegistry()
	store.NewMetrics(reg)
	m := NewManager(Config{Workers: 1, Metrics: reg})
	defer m.Close(context.Background())
	return reg.Names()
}

// statusClass folds an HTTP status code to its exposition label ("2xx",
// "4xx", ...), keeping the route×code cardinality bounded.
func statusClass(code int) string {
	switch {
	case code < 200:
		return "1xx"
	case code < 300:
		return "2xx"
	case code < 400:
		return "3xx"
	case code < 500:
		return "4xx"
	default:
		return "5xx"
	}
}

// statusWriter captures the response status for the request counters. It
// always implements http.Flusher, forwarding when the underlying writer
// can flush — the /events streaming handlers depend on the capability
// probe succeeding through this wrapper.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}
