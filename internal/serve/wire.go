package serve

import (
	"time"

	"repro/internal/store"
	"repro/spec"
)

// The request vocabulary of the wire API is the spec package verbatim: the
// server defines no graph/rule/run shapes or validation of its own, so a
// spec that works in the library or the CLIs is byte-for-byte the JSON a
// client POSTs here. Only HTTP-specific concerns remain in this package:
// admission limits (Limits), job/sweep lifecycle views, and counters.
type (
	// GraphSpec names a topology for a simulation job; see spec.GraphSpec.
	GraphSpec = spec.GraphSpec
	// RuleSpec selects a Best-of-k protocol over the wire; see
	// spec.RuleSpec.
	RuleSpec = spec.RuleSpec
	// RunRequest is the body of POST /v1/runs; it is exactly a
	// spec.RunSpec. Trial i of a job with seed s runs with
	// rng.ChildSeed(s, i); a zero seed is replaced by a server-derived one,
	// recorded in the response, so every job is reproducible after the
	// fact.
	RunRequest = spec.RunSpec
	// SweepGrid is the cross-product grid of POST /v1/sweeps; see
	// spec.Grid.
	SweepGrid = spec.Grid
)

// validateRun applies the spec defaults and checks the request against the
// server's admission limits. All graph/rule/parameter validation is the
// spec package's; only the limit values are the server's.
func validateRun(r *RunRequest, limits Limits) error {
	r.Normalize()
	return r.ValidateLimits(limits.spec())
}

// TrialReport is the per-trial slice of a result.
type TrialReport struct {
	// RedWon reports whether the final (consensus or majority) opinion was
	// Red, the initial majority.
	RedWon bool `json:"red_won"`
	// Consensus reports whether the run reached a monochromatic state.
	Consensus bool `json:"consensus"`
	// Rounds is the number of rounds executed.
	Rounds int `json:"rounds"`
}

// RunResult is the aggregate outcome of a completed job.
type RunResult struct {
	Trials    int `json:"trials"`
	RedWins   int `json:"red_wins"`
	Consensus int `json:"consensus"`
	// MeanRounds and MaxRounds summarise the per-trial round counts.
	MeanRounds float64 `json:"mean_rounds"`
	MaxRounds  int     `json:"max_rounds"`
	// PredictedRounds is the Theorem 1 estimate for the instance.
	PredictedRounds int `json:"predicted_rounds"`
	// Precondition is the one-line Theorem 1 hypothesis diagnostic.
	Precondition string `json:"precondition"`
	// PreconditionOK reports whether both Theorem 1 hypotheses hold.
	PreconditionOK bool `json:"precondition_ok"`
	// Seed is the effective job seed (assigned by the server when the
	// request left it zero); replaying the same request with this seed
	// reproduces the result exactly.
	Seed uint64 `json:"seed"`
	// GraphName is the engine's name for the topology.
	GraphName string `json:"graph_name"`
	// Rule is the resolved protocol name, e.g. "best-of-3".
	Rule string `json:"rule"`
	// Engine is the resolved round engine the trials executed on:
	// "mean-field" (the O(1)-per-round complete-graph fast path) or
	// "general" (per-vertex sharded sampling). Requests opt out of the
	// fast path with `"engine": "general"` on the RunRequest.
	Engine string `json:"engine"`
	// Variant is the resolved opinion dynamic the trials executed
	// ("async", "stubborn", "plurality"); omitted for the synchronous
	// default, so results of plain runs — including every record the
	// result store persisted before the variant axis existed — are
	// byte-identical to the pre-variant wire format.
	Variant string `json:"variant,omitempty"`
	// CacheHit reports whether the graph came from the pool.
	CacheHit bool `json:"cache_hit"`
	// Cached reports that the result was served from the persistent
	// result store instead of being executed: the job never touched the
	// worker pool, and the timing fields below are zero (the store records
	// the deterministic projection of a result — see CanonicalResult).
	Cached bool `json:"cached,omitempty"`
	// ElapsedMS is the job's execution wall time in milliseconds.
	ElapsedMS int64 `json:"elapsed_ms"`
	// QueueMS is how long the job waited between submission and the start
	// of execution, in milliseconds.
	QueueMS int64 `json:"queue_ms"`
	// RoundsPerSec is the executed protocol rounds divided by the
	// execution wall time (0 when the job finished under the timer
	// resolution).
	RoundsPerSec float64 `json:"rounds_per_sec"`
	// Reports lists the per-trial outcomes in trial order.
	Reports []TrialReport `json:"reports"`
}

// Job states.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// JobView is the externally visible snapshot of a job, returned by the
// submit, get, and list endpoints.
type JobView struct {
	ID    string `json:"id"`
	State string `json:"state"`
	// Sweep is the owning sweep ID for runs expanded from a sweep grid.
	Sweep   string     `json:"sweep,omitempty"`
	Request RunRequest `json:"request"`
	// Error is set for failed jobs.
	Error string `json:"error,omitempty"`
	// Result is set for done jobs.
	Result   *RunResult `json:"result,omitempty"`
	Created  time.Time  `json:"created"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`
}

// Stats is the GET /v1/stats payload.
type Stats struct {
	// Job counters.
	Submitted int64 `json:"submitted"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Cancelled int64 `json:"cancelled"`
	Rejected  int64 `json:"rejected"`
	Queued    int   `json:"queued"`
	Running   int   `json:"running"`
	// TrialsRun is the total number of protocol runs executed.
	TrialsRun int64 `json:"trials_run"`
	// RoundsRun is the total number of protocol rounds executed.
	RoundsRun int64 `json:"rounds_run"`
	// JobsMeanField and JobsGeneral split executed jobs by the round
	// engine that ran them; JobsCached counts jobs answered from the
	// persistent result store without executing (counted in Completed,
	// absent from the engine split and from TrialsRun/RoundsRun).
	JobsMeanField int64 `json:"jobs_mean_field"`
	JobsGeneral   int64 `json:"jobs_general"`
	JobsCached    int64 `json:"jobs_cached"`
	// JobsByVariant splits executed jobs by the opinion dynamic that ran
	// them ("sync", "async", "stubborn", "plurality"). Like the engine
	// split, cached jobs are not counted. Absent until the first job
	// executes.
	JobsByVariant map[string]int64 `json:"jobs_by_variant,omitempty"`
	// Sweep counters. SweepCellsFinished counts child runs that reached a
	// terminal state (done, failed, or cancelled).
	SweepsSubmitted    int64 `json:"sweeps_submitted"`
	SweepsCompleted    int64 `json:"sweeps_completed"`
	SweepsCancelled    int64 `json:"sweeps_cancelled"`
	SweepsRejected     int64 `json:"sweeps_rejected"`
	SweepsActive       int   `json:"sweeps_active"`
	SweepCellsFinished int64 `json:"sweep_cells_finished"`
	// CellsCached counts sweep cells answered from the persistent result
	// store without executing (a resumed sweep's pre-crash cells, a
	// repeated grid's entire expansion, or cells a fleet peer computed
	// first); SweepsDeduped counts sweep submissions whose grid content
	// key was already completed (every cell of such a sweep is cached).
	CellsCached   int64 `json:"cells_cached"`
	SweepsDeduped int64 `json:"sweeps_deduped"`
	// WorkerID is this process's fleet identity; empty outside fleet mode.
	WorkerID string `json:"worker_id,omitempty"`
	// Cache is the graph-pool snapshot.
	Cache CacheStats `json:"graph_cache"`
	// ArtifactsEnabled reports whether a disk artifact directory is
	// attached (-artifact-dir); GraphsArtifactHits counts graph-pool
	// misses served by loading a preprocessed artifact from it, and
	// GraphsArtifactMisses counts CSR builds that found no artifact and
	// wrote one through. Both stay zero without a directory.
	ArtifactsEnabled     bool  `json:"artifacts_enabled,omitempty"`
	GraphsArtifactHits   int64 `json:"graphs_artifact_hits"`
	GraphsArtifactMisses int64 `json:"graphs_artifact_misses"`
	// ResultStore is the persistent result store's snapshot; absent when
	// the server runs without one (no -store-dir). StoreErrors counts
	// failed store writes (the affected jobs still completed normally;
	// they just were not recorded).
	ResultStore *store.Stats `json:"result_store,omitempty"`
	StoreErrors int64        `json:"store_errors,omitempty"`
	// Event-bus counters. EventsPublished counts frames accepted onto the
	// bus; EventsDropped counts per-subscriber ring overflows (slow /events
	// watchers shedding load — the publishing simulations were unaffected);
	// Subscribers is the number of currently attached event streams.
	EventsPublished int64 `json:"events_published"`
	EventsDropped   int64 `json:"events_dropped"`
	Subscribers     int   `json:"subscribers"`
	// UptimeSeconds counts from manager start.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Workers is the job-pool width.
	Workers int `json:"workers"`
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}
