package serve

import (
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dynamics"
	"repro/internal/graph"
	"repro/internal/rng"
)

// GraphSpec names a topology for a simulation job. Family selects the
// generator; the remaining fields are family-specific parameters. Seed
// drives the random generators, so equal specs describe (and the graph
// pool shares) the identical graph.
type GraphSpec struct {
	// Family is one of "complete", "complete-virtual", "random-regular",
	// "gnp", "dense", "cycle", "torus", "hypercube".
	Family string `json:"family"`
	// N is the vertex count (complete, complete-virtual, random-regular,
	// gnp, dense, cycle).
	N int `json:"n,omitempty"`
	// D is the degree for random-regular.
	D int `json:"d,omitempty"`
	// P is the edge probability for gnp.
	P float64 `json:"p,omitempty"`
	// Alpha is the density exponent for dense (min degree ⌈n^alpha⌉).
	Alpha float64 `json:"alpha,omitempty"`
	// Rows and Cols size the torus.
	Rows int `json:"rows,omitempty"`
	Cols int `json:"cols,omitempty"`
	// Dim is the hypercube dimension.
	Dim int `json:"dim,omitempty"`
	// Seed drives the random generators (random-regular, gnp, dense).
	Seed uint64 `json:"seed,omitempty"`
}

// Key returns the canonical cache key for the spec: two specs that would
// build the same graph render identically. Only the parameters the family
// actually consumes are included — a stray "d" on a cycle spec, or a seed
// on a deterministic family, does not split cache entries.
func (s GraphSpec) Key() string {
	parts := []string{"family=" + s.Family}
	add := func(k string, v any) {
		parts = append(parts, fmt.Sprintf("%s=%v", k, v))
	}
	switch s.Family {
	case "complete", "complete-virtual", "cycle":
		add("n", s.N)
	case "random-regular":
		add("n", s.N)
		add("d", s.D)
		add("seed", s.Seed)
	case "gnp":
		add("n", s.N)
		add("p", s.P)
		add("seed", s.Seed)
	case "dense":
		add("n", s.N)
		add("alpha", s.Alpha)
		add("seed", s.Seed)
	case "torus":
		add("rows", s.Rows)
		add("cols", s.Cols)
	case "hypercube":
		add("dim", s.Dim)
	}
	return strings.Join(parts, ",")
}

// edgeEstimate approximates the number of edges the spec materialises, for
// the admission limit. Virtual families cost O(1).
func (s GraphSpec) edgeEstimate() int64 {
	switch s.Family {
	case "complete":
		return int64(s.N) * int64(s.N-1) / 2
	case "complete-virtual":
		return 0
	case "random-regular":
		return int64(s.N) * int64(s.D) / 2
	case "gnp":
		return int64(float64(s.N) * float64(s.N-1) / 2 * s.P)
	case "dense":
		// min degree ⌈n^alpha⌉ regular-ish
		d := math.Pow(float64(s.N), s.Alpha)
		return int64(float64(s.N) * d / 2)
	case "cycle":
		return int64(s.N)
	case "torus":
		return 2 * int64(s.Rows) * int64(s.Cols)
	case "hypercube":
		return int64(s.Dim) << (s.Dim - 1)
	default:
		return 0
	}
}

// validate checks the spec against the server's size limits and returns a
// client-facing error.
func (s GraphSpec) validate(limits Limits) error {
	needN := func() error {
		if s.N < 3 {
			return fmt.Errorf("graph: family %q needs n >= 3, got %d", s.Family, s.N)
		}
		if s.N > limits.MaxN {
			return fmt.Errorf("graph: n = %d exceeds the server limit %d", s.N, limits.MaxN)
		}
		return nil
	}
	switch s.Family {
	case "complete", "complete-virtual", "cycle":
		return needN()
	case "random-regular":
		if err := needN(); err != nil {
			return err
		}
		if s.D < 1 || s.D >= s.N {
			return fmt.Errorf("graph: random-regular needs 1 <= d < n, got d = %d, n = %d", s.D, s.N)
		}
		if s.N*s.D%2 != 0 {
			return fmt.Errorf("graph: random-regular needs n·d even, got n = %d, d = %d", s.N, s.D)
		}
	case "gnp":
		if err := needN(); err != nil {
			return err
		}
		if s.P <= 0 || s.P > 1 {
			return fmt.Errorf("graph: gnp needs 0 < p <= 1, got %v", s.P)
		}
	case "dense":
		if err := needN(); err != nil {
			return err
		}
		if s.Alpha <= 0 || s.Alpha > 1 {
			return fmt.Errorf("graph: dense needs 0 < alpha <= 1, got %v", s.Alpha)
		}
	case "torus":
		if s.Rows < 3 || s.Cols < 3 {
			return fmt.Errorf("graph: torus needs rows, cols >= 3, got %d×%d", s.Rows, s.Cols)
		}
		// Bound each dimension before multiplying: with both ≤ MaxN the
		// int64 product cannot wrap, whereas rows = cols = 2^32 would
		// overflow straight past the limit.
		if s.Rows > limits.MaxN || s.Cols > limits.MaxN ||
			int64(s.Rows)*int64(s.Cols) > int64(limits.MaxN) {
			return fmt.Errorf("graph: torus %d×%d exceeds the server limit of %d vertices", s.Rows, s.Cols, limits.MaxN)
		}
	case "hypercube":
		// Bound dim itself before shifting: 1<<63 is negative and 1<<64
		// wraps to zero, either of which would sail past the limit check.
		if s.Dim < 2 || s.Dim > 30 || 1<<s.Dim > limits.MaxN {
			return fmt.Errorf("graph: hypercube needs 2 <= dim <= 30 and 2^dim <= %d, got dim = %d", limits.MaxN, s.Dim)
		}
	case "":
		return fmt.Errorf("graph: family is required")
	default:
		return fmt.Errorf("graph: unknown family %q", s.Family)
	}
	if est := s.edgeEstimate(); est > limits.MaxEdges {
		return fmt.Errorf("graph: estimated %d edges exceeds the server limit %d", est, limits.MaxEdges)
	}
	return nil
}

// build materialises the graph. It is called at most once per cache key.
func (s GraphSpec) build() (core.Topology, error) {
	switch s.Family {
	case "complete":
		return graph.Complete(s.N), nil
	case "complete-virtual":
		return graph.NewKn(s.N), nil
	case "random-regular":
		return graph.RandomRegular(s.N, s.D, rng.New(s.Seed)), nil
	case "gnp":
		g := graph.Gnp(s.N, s.P, rng.New(s.Seed))
		if g.MinDegree() == 0 {
			return nil, fmt.Errorf("graph: gnp(n=%d, p=%v, seed=%d) has an isolated vertex; raise p or change the seed", s.N, s.P, s.Seed)
		}
		return g, nil
	case "dense":
		return graph.DenseMinDegree(s.N, s.Alpha, rng.New(s.Seed)), nil
	case "cycle":
		return graph.Cycle(s.N), nil
	case "torus":
		return graph.Torus2D(s.Rows, s.Cols), nil
	case "hypercube":
		return graph.Hypercube(s.Dim), nil
	default:
		return nil, fmt.Errorf("graph: unknown family %q", s.Family)
	}
}

// RuleSpec selects a Best-of-k protocol over the wire.
type RuleSpec struct {
	// K is the sample count; 0 defaults to 3 (the paper's protocol).
	K int `json:"k,omitempty"`
	// Tie is "keep" (default) or "random"; consulted only for even K.
	Tie string `json:"tie,omitempty"`
	// WithoutReplacement samples K distinct neighbours.
	WithoutReplacement bool `json:"without_replacement,omitempty"`
	// Noise is the per-sample misreporting probability in [0, 0.5].
	Noise float64 `json:"noise,omitempty"`
}

// rule converts the wire spec to a dynamics.Rule, applying defaults.
func (r *RuleSpec) rule() (dynamics.Rule, error) {
	if r == nil {
		return dynamics.BestOfThree, nil
	}
	out := dynamics.Rule{K: r.K, WithoutReplacement: r.WithoutReplacement, Noise: r.Noise}
	if out.K == 0 {
		out.K = 3
	}
	switch r.Tie {
	case "", "keep":
		out.Tie = dynamics.TieKeep
	case "random":
		out.Tie = dynamics.TieRandom
	default:
		return dynamics.Rule{}, fmt.Errorf("rule: unknown tie rule %q (want \"keep\" or \"random\")", r.Tie)
	}
	return out, out.Validate()
}

// RunRequest is the body of POST /v1/runs: simulate Trials independent
// Best-of-k runs on the named graph from an i.i.d. initial configuration
// with P(Blue) = 1/2 − Delta.
type RunRequest struct {
	Graph GraphSpec `json:"graph"`
	// Delta is the initial imbalance, in [0, 0.5].
	Delta float64 `json:"delta"`
	// Trials is the number of independent runs; 0 defaults to 1.
	Trials int `json:"trials,omitempty"`
	// MaxRounds caps each run; 0 uses the theory-derived default.
	MaxRounds int `json:"max_rounds,omitempty"`
	// Seed is the job seed. Trial i derives its seed as
	// rng.ChildSeed(Seed, i); a zero seed is replaced by a seed derived
	// from the server's root seed and the job index, recorded in the
	// response, so every job is reproducible after the fact.
	Seed uint64 `json:"seed,omitempty"`
	// Rule selects the protocol; nil means Best-of-Three.
	Rule *RuleSpec `json:"rule,omitempty"`
}

// validate applies defaults and checks the request against the limits.
func (r *RunRequest) validate(limits Limits) error {
	if r.Trials == 0 {
		r.Trials = 1
	}
	if r.Trials < 0 || r.Trials > limits.MaxTrials {
		return fmt.Errorf("trials = %d outside [1, %d]", r.Trials, limits.MaxTrials)
	}
	if r.Delta < 0 || r.Delta > 0.5 {
		return fmt.Errorf("delta = %v outside [0, 0.5]", r.Delta)
	}
	if r.MaxRounds < 0 || r.MaxRounds > limits.MaxRounds {
		return fmt.Errorf("max_rounds = %d outside [0, %d]", r.MaxRounds, limits.MaxRounds)
	}
	if _, err := r.Rule.rule(); err != nil {
		return err
	}
	return r.Graph.validate(limits)
}

// TrialReport is the per-trial slice of a result.
type TrialReport struct {
	// RedWon reports whether the final (consensus or majority) opinion was
	// Red, the initial majority.
	RedWon bool `json:"red_won"`
	// Consensus reports whether the run reached a monochromatic state.
	Consensus bool `json:"consensus"`
	// Rounds is the number of rounds executed.
	Rounds int `json:"rounds"`
}

// RunResult is the aggregate outcome of a completed job.
type RunResult struct {
	Trials    int `json:"trials"`
	RedWins   int `json:"red_wins"`
	Consensus int `json:"consensus"`
	// MeanRounds and MaxRounds summarise the per-trial round counts.
	MeanRounds float64 `json:"mean_rounds"`
	MaxRounds  int     `json:"max_rounds"`
	// PredictedRounds is the Theorem 1 estimate for the instance.
	PredictedRounds int `json:"predicted_rounds"`
	// Precondition is the one-line Theorem 1 hypothesis diagnostic.
	Precondition string `json:"precondition"`
	// PreconditionOK reports whether both Theorem 1 hypotheses hold.
	PreconditionOK bool `json:"precondition_ok"`
	// Seed is the effective job seed (assigned by the server when the
	// request left it zero); replaying the same request with this seed
	// reproduces the result exactly.
	Seed uint64 `json:"seed"`
	// GraphName is the engine's name for the topology.
	GraphName string `json:"graph_name"`
	// Rule is the resolved protocol name, e.g. "best-of-3".
	Rule string `json:"rule"`
	// CacheHit reports whether the graph came from the pool.
	CacheHit bool `json:"cache_hit"`
	// ElapsedMS is the job's execution wall time in milliseconds.
	ElapsedMS int64 `json:"elapsed_ms"`
	// Reports lists the per-trial outcomes in trial order.
	Reports []TrialReport `json:"reports"`
}

// Job states.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// JobView is the externally visible snapshot of a job, returned by the
// submit, get, and list endpoints.
type JobView struct {
	ID    string `json:"id"`
	State string `json:"state"`
	// Sweep is the owning sweep ID for runs expanded from a sweep grid.
	Sweep   string     `json:"sweep,omitempty"`
	Request RunRequest `json:"request"`
	// Error is set for failed jobs.
	Error string `json:"error,omitempty"`
	// Result is set for done jobs.
	Result   *RunResult `json:"result,omitempty"`
	Created  time.Time  `json:"created"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`
}

// Stats is the GET /v1/stats payload.
type Stats struct {
	// Job counters.
	Submitted int64 `json:"submitted"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Cancelled int64 `json:"cancelled"`
	Rejected  int64 `json:"rejected"`
	Queued    int   `json:"queued"`
	Running   int   `json:"running"`
	// TrialsRun is the total number of protocol runs executed.
	TrialsRun int64 `json:"trials_run"`
	// RoundsRun is the total number of protocol rounds executed.
	RoundsRun int64 `json:"rounds_run"`
	// Sweep counters. SweepCellsFinished counts child runs that reached a
	// terminal state (done, failed, or cancelled).
	SweepsSubmitted    int64 `json:"sweeps_submitted"`
	SweepsCompleted    int64 `json:"sweeps_completed"`
	SweepsCancelled    int64 `json:"sweeps_cancelled"`
	SweepsRejected     int64 `json:"sweeps_rejected"`
	SweepsActive       int   `json:"sweeps_active"`
	SweepCellsFinished int64 `json:"sweep_cells_finished"`
	// Cache is the graph-pool snapshot.
	Cache CacheStats `json:"graph_cache"`
	// UptimeSeconds counts from manager start.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Workers is the job-pool width.
	Workers int `json:"workers"`
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}
