package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"testing"

	"repro"
	"repro/spec"
)

// TestSweepVariantAxis drives the variant axis through the full server
// sweep path: one grid crossing every registered variant expands into one
// cell per variant, every cell's outcomes are byte-identical to running
// its expanded spec through the library Runner, results and retained event
// frames carry the variant, and the stats split accounts each executed
// variant exactly once.
func TestSweepVariantAxis(t *testing.T) {
	ts, mgr := newTestServer(t, Config{Workers: 2})

	req := SweepRequest{
		Grid: SweepGrid{
			Graphs: []GraphSpec{{Family: "random-regular", N: 64, D: 8, Seed: 3}},
			Deltas: []float64{0.1},
			Trials: []int{2},
			Variants: []spec.VariantSpec{
				{Name: "sync"},
				{Name: "async"},
				{Name: "stubborn", StubbornFrac: 0.1},
				{Name: "plurality", Q: 4},
			},
		},
		MaxRounds: 64,
		Seed:      11,
	}
	var accepted SweepView
	doJSON(t, http.MethodPost, ts.URL+"/v1/sweeps", req, http.StatusAccepted, &accepted)
	if len(accepted.Cells) != 4 {
		t.Fatalf("variant grid expanded to %d cells, want 4", len(accepted.Cells))
	}

	v := pollSweepDone(t, ts.URL, accepted.ID)
	if v.State != StateDone {
		t.Fatalf("sweep ended %s, want done", v.State)
	}
	seen := map[string]bool{}
	for i, c := range v.Cells {
		if c.State != StateDone || c.Result == nil {
			t.Fatalf("cell %d = %+v, want done with result", i, c)
		}
		name := c.Request.VariantName()
		seen[name] = true
		wantWire := name
		if wantWire == "sync" {
			wantWire = ""
		}
		if c.Result.Variant != wantWire {
			t.Errorf("cell %d result variant = %q, want %q", i, c.Result.Variant, wantWire)
		}

		// The full result lives on the child run; its per-trial outcomes
		// must be byte-identical to the library running the expanded spec —
		// the sweep path is just another entry point.
		var jv JobView
		doJSON(t, http.MethodGet, ts.URL+"/v1/runs/"+c.JobID, nil, http.StatusOK, &jv)
		if jv.Result == nil {
			t.Fatalf("cell %d job %s has no result", i, c.JobID)
		}
		if jv.Result.Variant != wantWire {
			t.Errorf("cell %d run result variant = %q, want %q", i, jv.Result.Variant, wantWire)
		}
		if jv.Result.Engine != "general" {
			t.Errorf("cell %d engine = %q, want general (random-regular)", i, jv.Result.Engine)
		}
		runner, err := repro.NewRunner(c.Request)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := runner.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		for tr, o := range rep.Outcomes {
			got := jv.Result.Reports[tr]
			if got.RedWon != o.RedWon || got.Consensus != o.Consensus || got.Rounds != o.Rounds {
				t.Errorf("cell %d (%s) trial %d: server %+v vs library %+v", i, name, tr, got, o)
			}
		}

		// The run topic's retained trajectory frames carry the variant
		// (omitted for the sync default).
		snap, sub, ok := mgr.SubscribeRun(c.JobID, 0)
		if !ok {
			t.Fatalf("cell %d job topic missing", i)
		}
		sub.Cancel()
		rounds := 0
		for _, ev := range snap {
			if ev.Type != EventRound {
				continue
			}
			rounds++
			var f RoundFrame
			if err := json.Unmarshal(mustJSON(t, ev.Data), &f); err != nil {
				t.Fatal(err)
			}
			if f.Variant != wantWire {
				t.Errorf("cell %d round frame variant = %q, want %q", i, f.Variant, wantWire)
			}
		}
		if rounds == 0 {
			t.Errorf("cell %d (%s) retained no trajectory frames", i, name)
		}
	}
	for _, name := range spec.Variants() {
		if !seen[name] {
			t.Errorf("registered variant %q missing from the expanded sweep", name)
		}
	}

	st := mgr.Stats()
	for _, name := range spec.Variants() {
		if got := st.JobsByVariant[name]; got != 1 {
			t.Errorf("jobs_by_variant[%s] = %d, want 1", name, got)
		}
	}
}

// mustJSON round-trips an event payload to raw JSON so the test can decode
// it into the concrete frame type regardless of how the bus stored it.
func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestSubmitVariantValidation: the server rejects unsupported
// engine×variant and parameter combinations at admission with 400s, one
// per registered non-sync variant.
func TestSubmitVariantValidation(t *testing.T) {
	ts, _ := newTestServer(t, Config{Workers: 1})
	bad := []RunRequest{
		{Graph: GraphSpec{Family: "complete-virtual", N: 64}, Delta: 0.1, Engine: "mean-field", Variant: &spec.VariantSpec{Name: "async"}},
		{Graph: GraphSpec{Family: "complete-virtual", N: 64}, Delta: 0.1, Engine: "mean-field", Variant: &spec.VariantSpec{Name: "stubborn", StubbornFrac: 0.1}},
		{Graph: GraphSpec{Family: "complete-virtual", N: 64}, Delta: 0.1, Engine: "mean-field", Variant: &spec.VariantSpec{Name: "plurality", Q: 4}},
		{Graph: GraphSpec{Family: "complete", N: 64}, Delta: 0.1, Variant: &spec.VariantSpec{Name: "nope"}},
		{Graph: GraphSpec{Family: "complete", N: 64}, Delta: 0.1, Variant: &spec.VariantSpec{Name: "stubborn"}},
		{Graph: GraphSpec{Family: "complete", N: 64}, Delta: 0.1, Variant: &spec.VariantSpec{Name: "plurality", Q: 1}},
	}
	for i, req := range bad {
		var eb errorBody
		doJSON(t, http.MethodPost, ts.URL+"/v1/runs", req, http.StatusBadRequest, &eb)
		if eb.Error == "" {
			t.Errorf("bad request %d accepted without an error body", i)
		}
	}
}
