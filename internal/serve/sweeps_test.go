package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"
)

func pollSweepDone(t *testing.T, base, id string) SweepView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	var v SweepView
	for time.Now().Before(deadline) {
		doJSON(t, http.MethodGet, base+"/v1/sweeps/"+id, nil, http.StatusOK, &v)
		if v.State != StateRunning {
			return v
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("sweep %s did not finish over HTTP", id)
	return v
}

// slowSweep is a grid whose cells never reach consensus (cycle at δ = 0)
// and therefore burn their full round budget, keeping the sweep running
// long enough to observe and cancel mid-flight.
func slowSweep(seed uint64) SweepRequest {
	return SweepRequest{
		Grid: SweepGrid{
			Graphs: []GraphSpec{{Family: "cycle"}},
			NS:     []int{4096},
			Deltas: []float64{0},
			Trials: []int{400},
		},
		MaxRounds: 100,
		Seed:      seed,
	}
}

// TestSweepEndToEnd is the acceptance-criterion flow: a 3×2×2 grid expands
// into 12 child cells, all complete, and the aggregate reconciles with the
// per-cell results.
func TestSweepEndToEnd(t *testing.T) {
	ts, mgr := newTestServer(t, Config{Workers: 4})

	req := SweepRequest{
		Grid: SweepGrid{
			Graphs: []GraphSpec{{Family: "complete-virtual"}},
			NS:     []int{64, 96, 128},
			Deltas: []float64{0.1, 0.2},
			Trials: []int{2, 3},
		},
		Seed: 11,
	}
	var accepted SweepView
	doJSON(t, http.MethodPost, ts.URL+"/v1/sweeps", req, http.StatusAccepted, &accepted)
	if accepted.ID != "sweep-000000" || accepted.State != StateRunning {
		t.Fatalf("accepted = %s/%s, want sweep-000000 running", accepted.ID, accepted.State)
	}
	if len(accepted.Cells) != 12 {
		t.Fatalf("3×2×2 grid expanded to %d cells, want 12", len(accepted.Cells))
	}

	v := pollSweepDone(t, ts.URL, accepted.ID)
	if v.State != StateDone {
		t.Fatalf("sweep ended %s, want done", v.State)
	}
	agg := v.Aggregate
	if agg.Cells != 12 || agg.Done != 12 || agg.Pending+agg.Failed+agg.Cancelled != 0 {
		t.Fatalf("aggregate counts = %+v, want 12 done", agg)
	}
	wantTrials := 3 * 2 * (2 + 3) // graphs×ns axis (3) × deltas (2) × trial axis sum
	if agg.Trials != wantTrials {
		t.Errorf("aggregate trials = %d, want %d", agg.Trials, wantTrials)
	}
	trials, redWins := 0, 0
	seeds := map[uint64]bool{}
	for i, c := range v.Cells {
		if c.Index != i || c.State != StateDone || c.Result == nil || c.JobID == "" {
			t.Fatalf("cell %d = %+v, want done with result and job id", i, c)
		}
		trials += c.Result.Trials
		redWins += c.Result.RedWins
		if c.Request.Seed == 0 || seeds[c.Request.Seed] {
			t.Errorf("cell %d seed %d is zero or duplicated", i, c.Request.Seed)
		}
		seeds[c.Request.Seed] = true
		// The child run is queryable and attributed to the sweep.
		var jv JobView
		doJSON(t, http.MethodGet, ts.URL+"/v1/runs/"+c.JobID, nil, http.StatusOK, &jv)
		if jv.Sweep != v.ID {
			t.Errorf("cell %d job %s has sweep = %q, want %q", i, c.JobID, jv.Sweep, v.ID)
		}
	}
	if trials != agg.Trials || redWins != agg.RedWins {
		t.Errorf("aggregate (%d trials, %d wins) does not reconcile with cells (%d, %d)",
			agg.Trials, agg.RedWins, trials, redWins)
	}
	if agg.RedWinHi < agg.RedWinRate || agg.RedWinLo > agg.RedWinRate || agg.MeanRounds <= 0 {
		t.Errorf("aggregate stats implausible: %+v", agg)
	}

	// All 12 cells share one topology axis of 3 graphs: at most 3 builds,
	// at least 9 pool hits.
	if hits := mgr.Cache().Stats().Hits; hits < 9 {
		t.Errorf("graph pool hits = %d, want >= 9 for a shared-topology grid", hits)
	}

	var stats Stats
	doJSON(t, http.MethodGet, ts.URL+"/v1/stats", nil, http.StatusOK, &stats)
	if stats.SweepsSubmitted != 1 || stats.SweepsCompleted != 1 || stats.SweepCellsFinished != 12 {
		t.Errorf("sweep stats = %+v", stats)
	}
	if stats.Submitted != 12 {
		t.Errorf("child runs submitted = %d, want 12", stats.Submitted)
	}
}

// TestSweepDeterministicAggregate submits the same sweep twice and demands
// byte-identical aggregates and per-cell seeds: the acceptance criterion
// for server-side determinism.
func TestSweepDeterministicAggregate(t *testing.T) {
	ts, _ := newTestServer(t, Config{Workers: 4})
	req := SweepRequest{
		Grid: SweepGrid{
			Graphs: []GraphSpec{{Family: "random-regular", D: 16, Seed: 3}},
			NS:     []int{256, 512},
			Deltas: []float64{0.05, 0.15},
			Trials: []int{4},
		},
		Seed:        77,
		Concurrency: 2,
	}
	var aggs [2][]byte
	var views [2]SweepView
	for round := range aggs {
		var accepted SweepView
		doJSON(t, http.MethodPost, ts.URL+"/v1/sweeps", req, http.StatusAccepted, &accepted)
		views[round] = pollSweepDone(t, ts.URL, accepted.ID)
		b, err := json.Marshal(views[round].Aggregate)
		if err != nil {
			t.Fatal(err)
		}
		aggs[round] = b
	}
	if !bytes.Equal(aggs[0], aggs[1]) {
		t.Errorf("same seed produced different aggregates:\n%s\n%s", aggs[0], aggs[1])
	}
	for i := range views[0].Cells {
		a, b := views[0].Cells[i], views[1].Cells[i]
		if a.Request.Seed != b.Request.Seed {
			t.Errorf("cell %d seeds differ across identical sweeps: %d vs %d", i, a.Request.Seed, b.Request.Seed)
		}
		if a.Result == nil || b.Result == nil {
			t.Fatalf("cell %d missing result", i)
		}
		if a.Result.RedWins != b.Result.RedWins || a.Result.MeanRounds != b.Result.MeanRounds {
			t.Errorf("cell %d results differ: %+v vs %+v", i, a.Result, b.Result)
		}
	}
}

func TestSweepValidation(t *testing.T) {
	ts, _ := newTestServer(t, Config{Workers: 1, Limits: Limits{MaxSweepCells: 8}})
	cases := map[string]SweepRequest{
		"no graphs": {Grid: SweepGrid{Deltas: []float64{0.1}}},
		"no deltas": {Grid: SweepGrid{Graphs: []GraphSpec{{Family: "cycle", N: 8}}}},
		"ns on torus": {Grid: SweepGrid{
			Graphs: []GraphSpec{{Family: "torus", Rows: 4, Cols: 4}},
			NS:     []int{16},
			Deltas: []float64{0.1},
		}},
		"server cap": {Grid: SweepGrid{
			Graphs: []GraphSpec{{Family: "cycle"}},
			NS:     []int{8, 16, 32},
			Deltas: []float64{0.1, 0.2, 0.3},
		}},
		"request cap": {
			Grid: SweepGrid{
				Graphs: []GraphSpec{{Family: "cycle"}},
				NS:     []int{8, 16},
				Deltas: []float64{0.1, 0.2},
			},
			MaxCells: 3,
		},
		"bad cell": {Grid: SweepGrid{
			Graphs: []GraphSpec{{Family: "cycle", N: 8}},
			Deltas: []float64{0.1},
			Ties:   []string{"coin"},
		}},
	}
	for name, req := range cases {
		var e errorBody
		doJSON(t, http.MethodPost, ts.URL+"/v1/sweeps", req, http.StatusBadRequest, &e)
		if e.Error == "" {
			t.Errorf("%s: empty error body", name)
		}
	}
	var stats Stats
	doJSON(t, http.MethodGet, ts.URL+"/v1/stats", nil, http.StatusOK, &stats)
	if int(stats.SweepsRejected) != len(cases) || stats.SweepsSubmitted != 0 {
		t.Errorf("rejected = %d, submitted = %d, want %d rejected", stats.SweepsRejected, stats.SweepsSubmitted, len(cases))
	}
}

func TestSweepUnknownID(t *testing.T) {
	ts, _ := newTestServer(t, Config{Workers: 1})
	doJSON(t, http.MethodGet, ts.URL+"/v1/sweeps/sweep-999999", nil, http.StatusNotFound, nil)
	doJSON(t, http.MethodGet, ts.URL+"/v1/sweeps/sweep-999999/results", nil, http.StatusNotFound, nil)
	doJSON(t, http.MethodDelete, ts.URL+"/v1/sweeps/sweep-999999", nil, http.StatusNotFound, nil)
}

// TestSweepResultsStreaming tails a running sweep over NDJSON and checks
// the stream delivers every cell exactly once and terminates with the
// sweep summary event.
func TestSweepResultsStreaming(t *testing.T) {
	ts, _ := newTestServer(t, Config{Workers: 2})
	req := SweepRequest{
		Grid: SweepGrid{
			Graphs: []GraphSpec{{Family: "complete-virtual"}},
			NS:     []int{64, 96},
			Deltas: []float64{0.1, 0.2},
			Trials: []int{2},
		},
		Seed: 5,
	}
	var accepted SweepView
	doJSON(t, http.MethodPost, ts.URL+"/v1/sweeps", req, http.StatusAccepted, &accepted)

	resp, err := http.Get(ts.URL + "/v1/sweeps/" + accepted.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q, want application/x-ndjson", ct)
	}
	seen := map[int]bool{}
	var final *SweepView
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev SweepEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		switch {
		case ev.Cell != nil:
			if seen[ev.Cell.Index] {
				t.Errorf("cell %d streamed twice", ev.Cell.Index)
			}
			seen[ev.Cell.Index] = true
			if ev.Cell.State != StateDone || ev.Cell.Result == nil {
				t.Errorf("streamed cell %d = %s with result %v, want done", ev.Cell.Index, ev.Cell.State, ev.Cell.Result)
			}
		case ev.Sweep != nil:
			final = ev.Sweep
		default:
			t.Errorf("empty event line %q", sc.Text())
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 4 {
		t.Errorf("streamed %d cells, want 4", len(seen))
	}
	if final == nil || final.State != StateDone || final.Aggregate.Done != 4 {
		t.Errorf("final sweep event = %+v, want done with 4 cells", final)
	}
}

// TestSweepResultsClientCancellation cuts the client off mid-stream and
// checks the handler unwinds without wedging the server.
func TestSweepResultsClientCancellation(t *testing.T) {
	ts, _ := newTestServer(t, Config{Workers: 1, TrialParallelism: 1})
	var accepted SweepView
	doJSON(t, http.MethodPost, ts.URL+"/v1/sweeps", slowSweep(2), http.StatusAccepted, &accepted)

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/sweeps/"+accepted.ID+"/results", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// The sweep is still running, so the stream must be open with no
	// terminal event yet; cancel the request out from under it.
	cancel()
	resp.Body.Close()

	// The server must stay fully functional: cancel the sweep and drain it.
	var v SweepView
	doJSON(t, http.MethodDelete, ts.URL+"/v1/sweeps/"+accepted.ID, nil, http.StatusOK, &v)
	v = pollSweepDone(t, ts.URL, accepted.ID)
	if v.State != StateCancelled {
		t.Errorf("sweep ended %s after cancel, want cancelled", v.State)
	}
}

// TestSweepCancelMidRun cancels a running sweep and checks the stream
// terminates with a cancelled summary and the cells report a mix of
// terminal states rather than hanging.
func TestSweepCancelMidRun(t *testing.T) {
	ts, _ := newTestServer(t, Config{Workers: 1, TrialParallelism: 1})
	var accepted SweepView
	doJSON(t, http.MethodPost, ts.URL+"/v1/sweeps", slowSweep(3), http.StatusAccepted, &accepted)

	resp, err := http.Get(ts.URL + "/v1/sweeps/" + accepted.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	var cancelled SweepView
	doJSON(t, http.MethodDelete, ts.URL+"/v1/sweeps/"+accepted.ID, nil, http.StatusOK, &cancelled)

	// The NDJSON stream must terminate on its own with the final event.
	var final *SweepView
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev SweepEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line: %v", err)
		}
		if ev.Sweep != nil {
			final = ev.Sweep
		}
	}
	if final == nil || final.State != StateCancelled {
		t.Fatalf("stream did not end with a cancelled sweep event: %+v", final)
	}
	agg := final.Aggregate
	if agg.Pending != 0 || agg.Done+agg.Failed+agg.Cancelled != agg.Cells {
		t.Errorf("cancelled sweep left non-terminal cells: %+v", agg)
	}

	var stats Stats
	doJSON(t, http.MethodGet, ts.URL+"/v1/stats", nil, http.StatusOK, &stats)
	if stats.SweepsCancelled != 1 {
		t.Errorf("sweeps_cancelled = %d, want 1", stats.SweepsCancelled)
	}
}

func TestSweepListNewestFirstWithoutCells(t *testing.T) {
	ts, _ := newTestServer(t, Config{Workers: 2})
	small := SweepRequest{
		Grid: SweepGrid{
			Graphs: []GraphSpec{{Family: "complete-virtual", N: 50}},
			Deltas: []float64{0.2},
		},
		Seed: 1,
	}
	var ids []string
	for i := 0; i < 3; i++ {
		var v SweepView
		doJSON(t, http.MethodPost, ts.URL+"/v1/sweeps", small, http.StatusAccepted, &v)
		ids = append(ids, v.ID)
	}
	for _, id := range ids {
		pollSweepDone(t, ts.URL, id)
	}
	var list []SweepView
	doJSON(t, http.MethodGet, ts.URL+"/v1/sweeps", nil, http.StatusOK, &list)
	if len(list) != 3 {
		t.Fatalf("list has %d entries, want 3", len(list))
	}
	for i, v := range list {
		if want := ids[len(ids)-1-i]; v.ID != want {
			t.Errorf("list[%d] = %s, want %s (newest first)", i, v.ID, want)
		}
		if v.Cells != nil {
			t.Errorf("list[%d] includes %d cells; the list endpoint omits them", i, len(v.Cells))
		}
	}
}

// TestSweepChildrenSurviveRetention pins the pruning exemption: children
// of a still-running sweep are not evicted even when the grid is larger
// than the retention cap, so per-cell job drill-down works for the whole
// sweep.
func TestSweepChildrenSurviveRetention(t *testing.T) {
	ts, _ := newTestServer(t, Config{Workers: 1, Retention: 2})
	req := SweepRequest{
		Grid: SweepGrid{
			Graphs: []GraphSpec{{Family: "complete-virtual", N: 64}},
			Deltas: []float64{0.1, 0.15, 0.2, 0.25, 0.3, 0.35},
		},
		Seed:        13,
		Concurrency: 1, // sequential, so early cells finish before late enqueues prune
	}
	var accepted SweepView
	doJSON(t, http.MethodPost, ts.URL+"/v1/sweeps", req, http.StatusAccepted, &accepted)
	v := pollSweepDone(t, ts.URL, accepted.ID)
	if v.State != StateDone || v.Aggregate.Done != 6 {
		t.Fatalf("sweep = %s with %+v, want 6 done", v.State, v.Aggregate)
	}
	for _, c := range v.Cells {
		doJSON(t, http.MethodGet, ts.URL+"/v1/runs/"+c.JobID, nil, http.StatusOK, nil)
	}
}

// TestSweepConcurrencyClamp checks per-sweep concurrency never exceeds the
// server default even when the request asks for more.
func TestSweepConcurrencyClamp(t *testing.T) {
	mgr := NewManager(Config{Workers: 2, SweepConcurrency: 2})
	defer mgr.Close(context.Background())
	req := SweepRequest{
		Grid: SweepGrid{
			Graphs: []GraphSpec{{Family: "complete-virtual", N: 64}},
			Deltas: []float64{0.2},
		},
		Seed:        9,
		Concurrency: 64,
	}
	v, err := mgr.SubmitSweep(req)
	if err != nil {
		t.Fatal(err)
	}
	if v.Request.Concurrency != 2 {
		t.Errorf("effective concurrency = %d, want clamped to 2", v.Request.Concurrency)
	}
}
