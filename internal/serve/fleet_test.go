package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/store"
)

// The fleet tests run several Managers over one shared store directory —
// the in-process equivalent of N bo3serve processes with -worker-id —
// and pin the coordination contract: exactly-once cell execution under
// contention, lease takeover after a kill, and journal-level dedupe of
// repeated grids.

func openShared(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir, store.Options{Shared: true})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func fleetConfig(st *store.Store, worker string) Config {
	return Config{
		Workers:          2,
		TrialParallelism: 1,
		Store:            st,
		WorkerID:         worker,
		LeaseTTL:         time.Minute,
		LeasePoll:        time.Millisecond,
	}
}

// TestFleetSharedSweepExactlyOnce is the contention acceptance test: two
// workers race the identical grid (same seed, so identical cell content
// keys) over one store directory. The claim protocol must partition the
// cells — the sum of executed trials across the fleet is exactly the
// grid's trial count — and both sweeps must converge to byte-identical
// aggregates.
func TestFleetSharedSweepExactlyOnce(t *testing.T) {
	dir := t.TempDir()
	stA := openShared(t, dir)
	defer stA.Close()
	stB := openShared(t, dir)
	defer stB.Close()
	mA := NewManager(fleetConfig(stA, "a"))
	defer mA.Close(context.Background())
	mB := NewManager(fleetConfig(stB, "b"))
	defer mB.Close(context.Background())

	req := sweepReqForResume()
	vA, err := mA.SubmitSweep(req)
	if err != nil {
		t.Fatal(err)
	}
	vB, err := mB.SubmitSweep(req)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(vA.ID, "sweep-a-") || !strings.HasPrefix(vB.ID, "sweep-b-") {
		t.Fatalf("sweep IDs not worker-namespaced: %q, %q", vA.ID, vB.ID)
	}
	finalA := waitSweepDone(t, mA, vA.ID)
	finalB := waitSweepDone(t, mB, vB.ID)
	if finalA.State != StateDone || finalB.State != StateDone {
		t.Fatalf("states: %s, %s", finalA.State, finalB.State)
	}

	// Identical content keys, identical aggregates — however the cells
	// were partitioned.
	if finalA.ContentKey == "" || finalA.ContentKey != finalB.ContentKey {
		t.Errorf("content keys: %q vs %q", finalA.ContentKey, finalB.ContentKey)
	}
	aggA, _ := json.Marshal(finalA.Aggregate)
	aggB, _ := json.Marshal(finalB.Aggregate)
	if !bytes.Equal(aggA, aggB) {
		t.Errorf("fleet aggregates differ:\n a %s\n b %s", aggA, aggB)
	}

	// Exactly-once: every cell executed on exactly one worker, so the
	// fleet-wide executed trial count is the grid's total, and each cell
	// was served cached on exactly the worker that lost the race.
	cells := finalA.Aggregate.Cells
	wantTrials := int64(finalA.Aggregate.Trials)
	sA, sB := mA.Stats(), mB.Stats()
	if got := sA.TrialsRun + sB.TrialsRun; got != wantTrials {
		t.Errorf("fleet executed %d trials (a %d + b %d), want exactly %d",
			got, sA.TrialsRun, sB.TrialsRun, wantTrials)
	}
	if got := sA.CellsCached + sB.CellsCached; got != int64(cells) {
		t.Errorf("fleet cached %d cells (a %d + b %d), want exactly %d",
			got, sA.CellsCached, sB.CellsCached, cells)
	}
	if sA.WorkerID != "a" || sB.WorkerID != "b" {
		t.Errorf("stats worker IDs: %q, %q", sA.WorkerID, sB.WorkerID)
	}
	// One result record per cell, fleet-wide: first write won, the loser's
	// bytes were never appended.
	if got := len(stA.Results()); got != cells {
		t.Errorf("store holds %d results, want %d", got, cells)
	}

	// Reference: the same request on a solo server, fresh store.
	stRef := openStore(t, t.TempDir())
	defer stRef.Close()
	mRef := NewManager(Config{Workers: 2, TrialParallelism: 1, Store: stRef})
	defer mRef.Close(context.Background())
	ref, err := mRef.SubmitSweep(sweepReqForResume())
	if err != nil {
		t.Fatal(err)
	}
	refFinal := waitSweepDone(t, mRef, ref.ID)
	wantAgg, _ := json.Marshal(refFinal.Aggregate)
	if !bytes.Equal(aggA, wantAgg) {
		t.Errorf("fleet aggregate differs from solo run:\n got %s\nwant %s", aggA, wantAgg)
	}
}

// TestFleetLeaseTakeoverAfterKill: worker a dies mid-sweep holding cell
// leases; worker b resumes the journaled sweep under its original ID,
// serves a's finished cells from the store, waits out a's leases (TTL,
// never renewed by the dead worker), takes them over, and finishes — to
// the same aggregate as an uninterrupted run.
func TestFleetLeaseTakeoverAfterKill(t *testing.T) {
	dir := t.TempDir()
	stA := openShared(t, dir)
	cfgA := fleetConfig(stA, "a")
	cfgA.Workers = 1
	cfgA.LeaseTTL = 100 * time.Millisecond
	mA := NewManager(cfgA)

	req := sweepReqForResume()
	view, err := mA.SubmitSweep(req)
	if err != nil {
		t.Fatal(err)
	}
	id := view.ID
	total := view.Aggregate.Cells
	deadline := time.Now().Add(30 * time.Second)
	for {
		v, ok := mA.GetSweep(id)
		if !ok {
			t.Fatal("sweep disappeared")
		}
		if v.Aggregate.Done >= 1 {
			break
		}
		if v.State != StateRunning || time.Now().After(deadline) {
			t.Fatalf("sweep state %s, done %d; never reached a partial state", v.State, v.Aggregate.Done)
		}
		time.Sleep(time.Millisecond)
	}
	expired, cancel := context.WithCancel(context.Background())
	cancel()
	mA.Close(expired)
	interrupted, _ := mA.GetSweep(id)
	if interrupted.Aggregate.Done == total {
		t.Skip("every cell finished before the kill landed; nothing to take over on this machine")
	}
	// The kill path must not release: fleet-wide, shutdown is
	// indistinguishable from a crash, and only expiry may free the lease.
	for _, c := range stA.Claims() {
		if c.Worker != "a" {
			t.Errorf("claim %s held by %q, want only worker a before takeover", c.Key, c.Worker)
		}
	}
	stA.Close()

	stB := openShared(t, dir)
	defer stB.Close()
	cfgB := fleetConfig(stB, "b")
	cfgB.Workers = 1
	cfgB.LeaseTTL = 100 * time.Millisecond
	mB := NewManager(cfgB)
	defer mB.Close(context.Background())
	resumed, err := mB.ResumeSweeps()
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if resumed != 1 {
		t.Fatalf("resumed %d sweeps, want 1", resumed)
	}
	final := waitSweepDone(t, mB, id)
	if final.State != StateDone || final.Aggregate.Done != total {
		t.Fatalf("taken-over sweep: state %s, done %d/%d", final.State, final.Aggregate.Done, total)
	}

	stRef := openStore(t, t.TempDir())
	defer stRef.Close()
	mRef := NewManager(Config{Workers: 1, TrialParallelism: 1, Store: stRef})
	defer mRef.Close(context.Background())
	ref, err := mRef.SubmitSweep(sweepReqForResume())
	if err != nil {
		t.Fatal(err)
	}
	refFinal := waitSweepDone(t, mRef, ref.ID)
	gotAgg, _ := json.Marshal(final.Aggregate)
	wantAgg, _ := json.Marshal(refFinal.Aggregate)
	if !bytes.Equal(gotAgg, wantAgg) {
		t.Errorf("taken-over aggregate differs from uninterrupted run:\n got %s\nwant %s", gotAgg, wantAgg)
	}
}

// TestRepeatedSweepDeduped: resubmitting a completed grid (same seed and
// round cap) is answered entirely from the journal — the view is marked
// deduped, every cell is cached, and nothing executes. The memory
// survives a restart through the high-water-mark record, which also
// collapses the terminal journal records it subsumes.
func TestRepeatedSweepDeduped(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	m := NewManager(Config{Workers: 2, TrialParallelism: 1, Store: st})
	req := sweepReqForResume()
	first, err := m.SubmitSweep(req)
	if err != nil {
		t.Fatal(err)
	}
	firstFinal := waitSweepDone(t, m, first.ID)
	if firstFinal.State != StateDone {
		t.Fatalf("first sweep: %s", firstFinal.State)
	}
	cells := firstFinal.Aggregate.Cells
	base := m.Stats()

	second, err := m.SubmitSweep(req)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Deduped {
		t.Error("repeated submission not marked deduped at admission")
	}
	secondFinal := waitSweepDone(t, m, second.ID)
	if secondFinal.State != StateDone || !secondFinal.Deduped {
		t.Fatalf("deduped sweep: state %s, deduped %v", secondFinal.State, secondFinal.Deduped)
	}
	if secondFinal.CellsCached != cells {
		t.Errorf("cells_cached = %d, want every one of %d", secondFinal.CellsCached, cells)
	}
	if secondFinal.ContentKey == "" || secondFinal.ContentKey != firstFinal.ContentKey {
		t.Errorf("content keys: %q vs %q", secondFinal.ContentKey, firstFinal.ContentKey)
	}
	aggFirst, _ := json.Marshal(firstFinal.Aggregate)
	aggSecond, _ := json.Marshal(secondFinal.Aggregate)
	if !bytes.Equal(aggFirst, aggSecond) {
		t.Errorf("deduped aggregate differs:\n got %s\nwant %s", aggSecond, aggFirst)
	}
	after := m.Stats()
	if after.TrialsRun != base.TrialsRun || after.RoundsRun != base.RoundsRun {
		t.Errorf("deduped sweep executed trials: %d -> %d", base.TrialsRun, after.TrialsRun)
	}
	if after.SweepsDeduped != 1 {
		t.Errorf("sweeps_deduped = %d, want 1", after.SweepsDeduped)
	}
	if after.JobsCached != base.JobsCached+int64(cells) {
		t.Errorf("jobs_cached = %d, want %d", after.JobsCached, base.JobsCached+int64(cells))
	}
	if after.CellsCached != int64(cells) {
		t.Errorf("stats cells_cached = %d, want %d", after.CellsCached, cells)
	}
	m.Close(context.Background())
	st.Close()

	// Generation 2: ResumeSweeps folds both terminal records into the
	// high-water mark — the journal scan stays O(active sweeps) — and the
	// dedupe memory rides along, so the resubmission is deduped again.
	st2 := openStore(t, dir)
	defer st2.Close()
	m2 := NewManager(Config{Workers: 2, TrialParallelism: 1, Store: st2})
	defer m2.Close(context.Background())
	if n, err := m2.ResumeSweeps(); n != 0 || err != nil {
		t.Fatalf("resumed %d (err %v), want a settled journal", n, err)
	}
	infos, err := st2.Sweeps()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].ID != "hwm" {
		ids := make([]string, len(infos))
		for i, info := range infos {
			ids[i] = info.ID
		}
		t.Errorf("journal after collapse holds %v, want only the hwm record", ids)
	}
	third, err := m2.SubmitSweep(req)
	if err != nil {
		t.Fatal(err)
	}
	if !third.Deduped {
		t.Error("dedupe memory did not survive the restart")
	}
	if third.ID == first.ID || third.ID == second.ID {
		t.Errorf("sweep ID %s reused a collapsed record's", third.ID)
	}
	thirdFinal := waitSweepDone(t, m2, third.ID)
	if thirdFinal.CellsCached != cells {
		t.Errorf("restarted dedupe: cells_cached = %d, want %d", thirdFinal.CellsCached, cells)
	}
	aggThird, _ := json.Marshal(thirdFinal.Aggregate)
	if !bytes.Equal(aggFirst, aggThird) {
		t.Errorf("post-restart aggregate differs:\n got %s\nwant %s", aggThird, aggFirst)
	}
	if got := m2.Stats().TrialsRun; got != 0 {
		t.Errorf("post-restart deduped sweep executed %d trials", got)
	}
}
