package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/store"
	"repro/spec"
)

func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestSubmitServesStoredResult is the memoisation acceptance test:
// resubmitting an identical spec returns the recorded result without
// scheduling a job — jobs_cached increments, the engine counters and
// trial totals do not.
func TestSubmitServesStoredResult(t *testing.T) {
	st := openStore(t, t.TempDir())
	defer st.Close()
	m := NewManager(Config{Workers: 2, Store: st})
	defer m.Close(context.Background())

	req := smallRun(77)
	first, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	firstView := waitState(t, m, first.ID)
	if firstView.State != StateDone {
		t.Fatalf("first run: %s (%s)", firstView.State, firstView.Error)
	}
	before := m.Stats()
	if before.JobsCached != 0 {
		t.Fatalf("jobs_cached = %d before any resubmission", before.JobsCached)
	}

	second, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	// The view returned by Submit itself is already terminal: the job
	// never entered the queue.
	if second.State != StateDone || second.Result == nil {
		t.Fatalf("resubmission state = %s, result = %v; want an immediately done job", second.State, second.Result)
	}
	if !second.Result.Cached {
		t.Error("resubmission result not marked cached")
	}
	if second.Result.Seed != 77 || len(second.Result.Reports) != len(firstView.Result.Reports) {
		t.Fatalf("cached result = %+v", second.Result)
	}
	for i := range second.Result.Reports {
		if second.Result.Reports[i] != firstView.Result.Reports[i] {
			t.Fatalf("trial %d differs between executed and cached result", i)
		}
	}
	after := m.Stats()
	if after.JobsCached != 1 {
		t.Errorf("jobs_cached = %d, want 1", after.JobsCached)
	}
	if after.Completed != before.Completed+1 {
		t.Errorf("completed = %d, want %d (cached jobs still complete)", after.Completed, before.Completed+1)
	}
	if after.JobsMeanField != before.JobsMeanField || after.JobsGeneral != before.JobsGeneral {
		t.Errorf("engine counters moved on a cached job: %+v -> %+v", before, after)
	}
	if after.TrialsRun != before.TrialsRun || after.RoundsRun != before.RoundsRun {
		t.Errorf("trial/round counters moved on a cached job")
	}

	// A spec that omits the seed gets a fresh effective seed per job and
	// must never be answered from the store.
	for i := 0; i < 2; i++ {
		v, err := m.Submit(smallRun(0))
		if err != nil {
			t.Fatal(err)
		}
		if v.State == StateDone {
			t.Fatal("seedless submission served from the store")
		}
		waitState(t, m, v.ID)
	}
	if got := m.Stats().JobsCached; got != 1 {
		t.Errorf("jobs_cached = %d after seedless submissions, want still 1", got)
	}
}

// TestStoredResultSurvivesRestart: a result computed by one manager
// generation is a cache hit in the next one, straight from disk.
func TestStoredResultSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	m := NewManager(Config{Workers: 2, Store: st})
	req := smallRun(31)
	v, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	executed := waitState(t, m, v.ID)
	m.Close(context.Background())
	st.Close()

	st2 := openStore(t, dir)
	defer st2.Close()
	m2 := NewManager(Config{Workers: 2, Store: st2})
	defer m2.Close(context.Background())
	hit, err := m2.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if hit.State != StateDone || hit.Result == nil || !hit.Result.Cached {
		t.Fatalf("restarted manager did not serve from the store: %+v", hit)
	}
	for i := range hit.Result.Reports {
		if hit.Result.Reports[i] != executed.Result.Reports[i] {
			t.Fatalf("trial %d differs across restart", i)
		}
	}
}

func sweepReqForResume() SweepRequest {
	return SweepRequest{
		Grid: SweepGrid{
			Graphs: []GraphSpec{{Family: "cycle"}},
			NS:     []int{2048, 4096},
			Deltas: []float64{0, 0.05},
			Ks:     []int{3},
			Trials: []int{8},
		},
		MaxRounds:   400,
		Seed:        4242,
		Concurrency: 1,
	}
}

// TestSweepResumesAfterKill is the crash-safety acceptance test: a server
// stopped mid-sweep and restarted over the same store directory completes
// the sweep executing only the unfinished cells, and the terminal sweep
// view's aggregate marshals byte-identical to an uninterrupted run with
// the same seed and grid.
func TestSweepResumesAfterKill(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	m1 := NewManager(Config{Workers: 1, TrialParallelism: 1, Store: st})

	req := sweepReqForResume()
	view, err := m1.SubmitSweep(req)
	if err != nil {
		t.Fatal(err)
	}
	id := view.ID
	total := view.Aggregate.Cells

	// Let some — not all — cells finish, then kill the server: an
	// already-expired context forces immediate cancellation of whatever
	// is in flight, the moral equivalent of a crash for everything except
	// the store's torn-tail handling (exercised in internal/store).
	deadline := time.Now().Add(30 * time.Second)
	for {
		v, ok := m1.GetSweep(id)
		if !ok {
			t.Fatal("sweep disappeared")
		}
		if v.Aggregate.Done >= 1 {
			break
		}
		if v.State != StateRunning || time.Now().After(deadline) {
			t.Fatalf("sweep state %s, done %d; never reached a partial state", v.State, v.Aggregate.Done)
		}
		time.Sleep(time.Millisecond)
	}
	expired, cancel := context.WithCancel(context.Background())
	cancel()
	m1.Close(expired)
	interrupted, _ := m1.GetSweep(id)
	if interrupted.Aggregate.Done == total {
		t.Skip("every cell finished before the kill landed; nothing to resume on this machine")
	}
	doneBeforeKill := interrupted.Aggregate.Done
	st.Close()

	// Generation 2: same store directory, resume.
	st2 := openStore(t, dir)
	defer st2.Close()
	m2 := NewManager(Config{Workers: 1, TrialParallelism: 1, Store: st2})
	defer m2.Close(context.Background())
	resumed, err := m2.ResumeSweeps()
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if resumed != 1 {
		t.Fatalf("resumed %d sweeps, want 1", resumed)
	}
	final := waitSweepDone(t, m2, id)
	if final.State != StateDone || final.Aggregate.Done != total {
		t.Fatalf("resumed sweep: state %s, done %d/%d", final.State, final.Aggregate.Done, total)
	}
	st2Stats := m2.Stats()
	if st2Stats.JobsCached < int64(doneBeforeKill) {
		t.Errorf("resume cached %d cells, want >= the %d finished before the kill", st2Stats.JobsCached, doneBeforeKill)
	}
	if st2Stats.JobsCached >= int64(total) {
		t.Errorf("resume executed nothing (%d cached of %d cells); the kill should have left work", st2Stats.JobsCached, total)
	}

	// Reference: the same request, uninterrupted, over a fresh store.
	st3 := openStore(t, t.TempDir())
	defer st3.Close()
	m3 := NewManager(Config{Workers: 1, TrialParallelism: 1, Store: st3})
	defer m3.Close(context.Background())
	ref, err := m3.SubmitSweep(sweepReqForResume())
	if err != nil {
		t.Fatal(err)
	}
	refFinal := waitSweepDone(t, m3, ref.ID)

	gotAgg, _ := json.Marshal(final.Aggregate)
	wantAgg, _ := json.Marshal(refFinal.Aggregate)
	if !bytes.Equal(gotAgg, wantAgg) {
		t.Errorf("resumed aggregate differs from uninterrupted run:\n got %s\nwant %s", gotAgg, wantAgg)
	}
	if len(final.Cells) != len(refFinal.Cells) {
		t.Fatalf("cell counts differ: %d vs %d", len(final.Cells), len(refFinal.Cells))
	}
	for i := range final.Cells {
		got, want := final.Cells[i], refFinal.Cells[i]
		gotReq, _ := json.Marshal(got.Request)
		wantReq, _ := json.Marshal(want.Request)
		if got.State != want.State || !bytes.Equal(gotReq, wantReq) {
			t.Errorf("cell %d: state %s vs %s, request %s vs %s", i, got.State, want.State, gotReq, wantReq)
			continue
		}
		// The deterministic slice of the cell results must agree; the
		// timing and provenance fields legitimately differ (a resumed
		// cell is served from the store).
		if got.Result == nil || want.Result == nil {
			t.Errorf("cell %d missing result", i)
			continue
		}
		g, w := *got.Result, *want.Result
		g.CacheHit, g.ElapsedMS = false, 0
		w.CacheHit, w.ElapsedMS = false, 0
		if g != w {
			t.Errorf("cell %d result differs: %+v vs %+v", i, g, w)
		}
	}

	// After the resumed sweep finished, a third generation finds nothing
	// to resume: the journal records it done.
	m2.Close(context.Background())
	st2.Close()
	st4 := openStore(t, dir)
	defer st4.Close()
	m4 := NewManager(Config{Workers: 1, Store: st4})
	defer m4.Close(context.Background())
	if n, err := m4.ResumeSweeps(); err != nil || n != 0 {
		t.Errorf("third generation resumed %d sweeps (err %v), want 0", n, err)
	}
	// The done record has been collapsed into the high-water-mark record,
	// so the journal scan stays O(active sweeps) across generations.
	infos, err := st4.Sweeps()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].ID != "hwm" {
		ids := make([]string, len(infos))
		for i, info := range infos {
			ids[i] = info.ID
		}
		t.Errorf("journal after collapse holds %v, want only the hwm record", ids)
	}
	// The collapsed ID stays reserved through the high-water mark.
	v, err := m4.SubmitSweep(sweepReqForResume())
	if err != nil {
		t.Fatal(err)
	}
	if v.ID == id {
		t.Errorf("new sweep reused collapsed ID %s", id)
	}
	waitSweepDone(t, m4, v.ID)
}

func waitSweepDone(t *testing.T, m *Manager, id string) SweepView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		v, ok := m.GetSweep(id)
		if !ok {
			t.Fatalf("sweep %s disappeared", id)
		}
		if v.State != StateRunning {
			return v
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("sweep %s did not finish", id)
	return SweepView{}
}

// TestUserCancelledSweepIsNotResumed: a client DELETE is a terminal
// decision; the journal records it and a restart leaves it alone.
func TestUserCancelledSweepIsNotResumed(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	m := NewManager(Config{Workers: 1, TrialParallelism: 1, Store: st})
	req := sweepReqForResume()
	view, err := m.SubmitSweep(req)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.CancelSweep(view.ID); !ok {
		t.Fatal("cancel failed")
	}
	final := waitSweepDone(t, m, view.ID)
	if final.State != StateCancelled {
		t.Fatalf("state = %s after cancel", final.State)
	}
	m.Close(context.Background())
	st.Close()

	st2 := openStore(t, dir)
	defer st2.Close()
	m2 := NewManager(Config{Workers: 1, Store: st2})
	defer m2.Close(context.Background())
	if n, err := m2.ResumeSweeps(); err != nil || n != 0 {
		t.Errorf("resumed %d (err %v) after a user cancel, want 0", n, err)
	}
	// The cancelled ID stays reserved: the next sweep gets a fresh one.
	v, err := m2.SubmitSweep(sweepReqForResume())
	if err != nil {
		t.Fatal(err)
	}
	if v.ID == view.ID {
		t.Errorf("new sweep reused journaled ID %s", v.ID)
	}
	waitSweepDone(t, m2, v.ID)
}

// TestRefusedResumeIsTombstoned: a journaled sweep the restarted server
// can no longer admit (tighter limits) is refused ONCE — the refusal
// writes a cancelled tombstone so later restarts do not replay it.
func TestRefusedResumeIsTombstoned(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	m1 := NewManager(Config{Workers: 1, TrialParallelism: 1, Store: st})
	view, err := m1.SubmitSweep(sweepReqForResume()) // 4 cells
	if err != nil {
		t.Fatal(err)
	}
	// Interrupt it so the journal stays "running".
	expired, cancel := context.WithCancel(context.Background())
	cancel()
	m1.Close(expired)
	st.Close()

	// Generation 2 admits at most 2 cells: the resume must be refused
	// and tombstoned, not retried forever.
	tight := DefaultLimits()
	tight.MaxSweepCells = 2
	st2 := openStore(t, dir)
	m2 := NewManager(Config{Workers: 1, Store: st2, Limits: tight})
	n, err := m2.ResumeSweeps()
	if n != 0 || err == nil {
		t.Fatalf("resumed %d, err %v; want a refusal", n, err)
	}
	// The refusal stays queryable: a cancelled, cell-less sweep whose view
	// pins the reason instead of a 404 that swallows recorded history.
	refused, ok := m2.GetSweep(view.ID)
	if !ok {
		t.Fatal("refused sweep not registered")
	}
	if refused.State != StateCancelled || refused.ResumeRefused == "" || len(refused.Cells) != 0 {
		t.Errorf("refused sweep view = state %s, resume_refused %q, %d cells; want cancelled with a reason and no cells",
			refused.State, refused.ResumeRefused, len(refused.Cells))
	}
	m2.Close(context.Background())
	st2.Close()

	// Generation 3 (same tight limits): the tombstone has settled the
	// journal — no error, nothing to resume, and the ID stays reserved.
	st3 := openStore(t, dir)
	defer st3.Close()
	m3 := NewManager(Config{Workers: 1, Store: st3, Limits: tight})
	defer m3.Close(context.Background())
	if n, err := m3.ResumeSweeps(); n != 0 || err != nil {
		t.Errorf("third generation: resumed %d, err %v; want a settled journal", n, err)
	}
	small := SweepRequest{Grid: SweepGrid{Graphs: []GraphSpec{{Family: "cycle"}}, NS: []int{64}, Deltas: []float64{0.1}, Trials: []int{1}}, MaxRounds: 16, Seed: 5}
	v, err := m3.SubmitSweep(small)
	if err != nil {
		t.Fatal(err)
	}
	if v.ID == view.ID {
		t.Errorf("new sweep reused the tombstoned ID %s", v.ID)
	}
	waitSweepDone(t, m3, v.ID)
}

// TestVerifyEveryStoredRecord is the offline-audit acceptance test: every
// record a workload produced re-executes through serve.Execute to the
// byte-identical stored body — the same check `bo3store verify` runs.
func TestVerifyEveryStoredRecord(t *testing.T) {
	st := openStore(t, t.TempDir())
	defer st.Close()
	m := NewManager(Config{Workers: 4, Store: st})

	reqs := []RunRequest{
		smallRun(101),
		{Graph: GraphSpec{Family: "random-regular", N: 256, D: 8, Seed: 3}, Delta: 0.1, Trials: 3, Seed: 102},
		{Graph: GraphSpec{Family: "cycle", N: 128}, Delta: 0.2, Trials: 2, MaxRounds: 64, Seed: 103},
		{Graph: GraphSpec{Family: "complete-virtual", N: 300}, Delta: 0.1, Trials: 2, Seed: 104,
			Rule: &RuleSpec{K: 5, Noise: 0.01}},
		{Graph: GraphSpec{Family: "complete-virtual", N: 200}, Delta: 0.2, Trials: 2, Seed: 105, Engine: "general"},
	}
	for _, req := range reqs {
		v, err := m.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		if v = waitState(t, m, v.ID); v.State != StateDone {
			t.Fatalf("job %s: %s (%s)", v.ID, v.State, v.Error)
		}
	}
	m.Close(context.Background())

	infos := st.Results()
	if len(infos) != len(reqs) {
		t.Fatalf("store holds %d records, want %d", len(infos), len(reqs))
	}
	for _, info := range infos {
		rec, ok, err := st.GetResult(info.Key)
		if !ok || err != nil {
			t.Fatalf("get %s: ok=%v err=%v", info.Key, ok, err)
		}
		var rs spec.RunSpec
		if err := json.Unmarshal(rec.Spec, &rs); err != nil {
			t.Fatalf("stored spec: %v", err)
		}
		if got := rs.ContentKey(); got != info.Key {
			t.Errorf("record key %s does not match its spec's content key %s", info.Key, got)
		}
		res, err := Execute(context.Background(), rs)
		if err != nil {
			t.Fatalf("re-execute %s: %v", info.Key, err)
		}
		fresh, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(fresh, rec.Body) {
			t.Errorf("record %s does not verify:\nstored %s\nfresh  %s", info.Key, rec.Body, fresh)
		}
	}
}

// TestResultsEndpoints covers the /v1/results wire surface.
func TestResultsEndpoints(t *testing.T) {
	st := openStore(t, t.TempDir())
	defer st.Close()
	m := NewManager(Config{Workers: 2, Store: st})
	defer m.Close(context.Background())
	srv := httptest.NewServer(NewServer(m))
	defer srv.Close()

	seeds := []uint64{11, 12, 13}
	for _, seed := range seeds {
		v, err := m.Submit(smallRun(seed))
		if err != nil {
			t.Fatal(err)
		}
		waitState(t, m, v.ID)
	}
	v, err := m.Submit(RunRequest{Graph: GraphSpec{Family: "cycle", N: 64}, Delta: 0.1, Trials: 2, MaxRounds: 32, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, v.ID)

	getJSON := func(path string, out any) int {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return resp.StatusCode
	}

	var list ResultList
	if code := getJSON("/v1/results", &list); code != http.StatusOK {
		t.Fatalf("list status %d", code)
	}
	if list.Total != 4 || list.Count != 4 {
		t.Fatalf("list = %+v, want 4 records", list)
	}
	// Newest first: the cycle job was submitted last.
	if list.Results[0].Spec.Graph.Family != "cycle" {
		t.Errorf("listing not newest-first: %+v", list.Results[0].Spec)
	}

	// Family filter and pagination.
	if getJSON("/v1/results?family=complete-virtual", &list); list.Total != 3 {
		t.Errorf("family filter: total = %d, want 3", list.Total)
	}
	if getJSON("/v1/results?family=complete-virtual&limit=2&offset=2", &list); list.Total != 3 || list.Count != 1 {
		t.Errorf("pagination: %+v, want total 3, count 1", list)
	}
	if getJSON("/v1/results?family=torus", &list); list.Total != 0 {
		t.Errorf("non-matching family filter returned %d", list.Total)
	}
	if getJSON("/v1/results?n=64", &list); list.Total != 1 {
		t.Errorf("n filter: total = %d, want 1", list.Total)
	}

	// Pagination edges: an offset past the end still reports the full
	// total with an empty window; limit=0 means "default", not "nothing";
	// offsets count matches, not records, when a filter is active.
	if getJSON("/v1/results?offset=10", &list); list.Total != 4 || list.Count != 0 || len(list.Results) != 0 {
		t.Errorf("offset past end: %+v, want total 4, count 0", list)
	}
	if getJSON("/v1/results?limit=0", &list); list.Total != 4 || list.Count != 4 {
		t.Errorf("limit=0: %+v, want the default window (all 4)", list)
	}
	if getJSON("/v1/results?family=complete-virtual&offset=3", &list); list.Total != 3 || list.Count != 0 {
		t.Errorf("filter+offset past end: %+v, want total 3, count 0", list)
	}
	if getJSON("/v1/results?family=complete-virtual&offset=2&limit=0", &list); list.Total != 3 || list.Count != 1 {
		t.Errorf("filter+offset+default limit: %+v, want total 3, count 1", list)
	}
	if getJSON("/v1/results?offset=3&limit=5", &list); list.Total != 4 || list.Count != 1 {
		t.Errorf("window over the tail: %+v, want total 4, count 1", list)
	}

	// Point lookup round-trips the stored spec and result; posting the
	// spec back is a cache hit.
	key := contentKey(canonicalSpec(smallRun(11), 11), 11)
	var view ResultView
	if code := getJSON("/v1/results/"+key, &view); code != http.StatusOK {
		t.Fatalf("get status %d", code)
	}
	if view.Key != key || view.Spec.Seed != 11 || view.Result.Trials != 4 {
		t.Fatalf("result view = %+v", view)
	}
	if view.Result.ElapsedMS != 0 || view.Result.CacheHit {
		t.Errorf("stored result is not the deterministic projection: %+v", view.Result)
	}
	body, _ := json.Marshal(view.Spec)
	resp, err := http.Post(srv.URL+"/v1/runs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var job JobView
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if job.State != StateDone || job.Result == nil || !job.Result.Cached {
		t.Errorf("replaying a stored spec did not hit the store: %+v", job)
	}

	var errBody map[string]any
	if code := getJSON("/v1/results/deadbeef", &errBody); code != http.StatusNotFound {
		t.Errorf("unknown key status %d, want 404", code)
	}
	resp, err = http.Get(srv.URL + "/v1/results?limit=nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad limit status %d, want 400", resp.StatusCode)
	}

	// Stats expose the store.
	var stats Stats
	getJSON("/v1/stats", &stats)
	if stats.ResultStore == nil || stats.ResultStore.Results != 4 {
		t.Errorf("stats.result_store = %+v, want 4 results", stats.ResultStore)
	}
	if stats.JobsCached != 1 {
		t.Errorf("jobs_cached = %d, want 1", stats.JobsCached)
	}
}

// TestResultsEndpointsWithoutStore: the endpoints keep their shape on a
// storeless server.
func TestResultsEndpointsWithoutStore(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	defer m.Close(context.Background())
	srv := httptest.NewServer(NewServer(m))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/v1/results")
	if err != nil {
		t.Fatal(err)
	}
	var list ResultList
	err = json.NewDecoder(resp.Body).Decode(&list)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK || list.Total != 0 {
		t.Errorf("storeless list: status %d, err %v, %+v", resp.StatusCode, err, list)
	}
	resp, err = http.Get(srv.URL + "/v1/results/" + fmt.Sprintf("%064d", 0))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("storeless get: status %d, want 404", resp.StatusCode)
	}
}
