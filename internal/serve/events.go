package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro"
	"repro/internal/bus"
	"repro/internal/core"
)

// This file is the serve layer's face of the event bus (internal/bus):
// topic naming, the event payload shapes, the publishing hooks the job and
// sweep lifecycles call, and the SSE/NDJSON streaming handlers behind
// GET /v1/runs/{id}/events, /v1/sweeps/{id}/events, and /v1/events.

// Event type vocabulary. Every frame on the wire is a bus.Event whose Type
// is one of these; Data's shape is fixed per type.
const (
	// EventState marks a lifecycle transition: a run's Data is a
	// RunStateEvent; a sweep's is a SweepView summary (cells omitted).
	EventState = "state"
	// EventRound is a decimated trajectory frame (RoundFrame).
	EventRound = "round"
	// EventCell is a sweep cell reaching a terminal state (SweepCellView).
	EventCell = "cell"
	// EventSweep is a sweep's terminal summary (SweepView, cells omitted) —
	// always the last event on a sweep topic.
	EventSweep = "sweep"
	// EventMetrics is a server-wide counter frame (Stats) on MetricsTopic.
	EventMetrics = "metrics"
	// EventHeartbeat is the NDJSON idle keep-alive line; SSE streams use a
	// comment line instead, so the type never appears there.
	EventHeartbeat = "heartbeat"
)

// MetricsTopic is the server-wide metrics stream behind GET /v1/events.
const MetricsTopic = "metrics"

// metricsRetain bounds the metrics topic's snapshot: each frame is a full
// Stats payload and only the freshest matters, so late joiners replay a
// handful, not DefaultRetain of them.
const metricsRetain = 4

func runTopic(id string) string   { return "run/" + id }
func sweepTopic(id string) string { return "sweep/" + id }

// RunStateEvent is the payload of a run topic's EventState frames.
type RunStateEvent struct {
	Job   string `json:"job"`
	State string `json:"state"`
	// Sweep is the owning sweep ID for sweep-expanded runs.
	Sweep string `json:"sweep,omitempty"`
	// Error is set on failed terminal transitions.
	Error string `json:"error,omitempty"`
	// Result summarises a done run: the RunResult with the per-trial
	// Reports slice dropped, so a terminal frame stays O(1) regardless of
	// the trial count (the full breakdown remains on GET /v1/runs/{id}).
	Result *RunResult `json:"result,omitempty"`
}

// RoundFrame is the payload of EventRound frames: one decimated point of a
// trial's blue-count trajectory.
type RoundFrame struct {
	// Job names the run; set only on sweep-topic mirrors, where frames
	// from concurrent cells interleave.
	Job string `json:"job,omitempty"`
	// Trial and Round locate the point; Blues is the blue count after that
	// round, out of N vertices.
	Trial int `json:"trial"`
	Round int `json:"round"`
	Blues int `json:"blues"`
	N     int `json:"n"`
	// Variant is the run's opinion dynamic; omitted for the synchronous
	// default, so pre-variant watchers see unchanged frames.
	Variant string `json:"variant,omitempty"`
}

// publishJobState publishes a run lifecycle transition; callers hold m.mu.
// Terminal states attach the result summary and close the topic — watchers
// drain and see EOF, and late joiners still get the retained history until
// retention prunes the job.
func (m *Manager) publishJobState(j *job) {
	ev := RunStateEvent{Job: j.id, State: j.state, Sweep: j.sweep}
	if j.err != nil {
		ev.Error = j.err.Error()
	}
	terminal := j.state == StateDone || j.state == StateFailed || j.state == StateCancelled
	if terminal && j.result != nil {
		summary := *j.result
		summary.Reports = nil
		ev.Result = &summary
	}
	m.bus.Publish(runTopic(j.id), EventState, &ev)
	if terminal {
		m.bus.Close(runTopic(j.id))
	}
}

// trajectoryObserver builds the per-round observer a worker installs for
// one job: it publishes round-decimated RoundFrames to the run's topic
// (retained, so late joiners replay the trajectory so far) and mirrors
// them ephemerally to the owning sweep's topic. The stride is fixed up
// front from the exact round budget core.Run will enforce, which keeps
// Keep pure — trial goroutines share it without synchronisation — and the
// kept set independent of watchers, so a watched run stays byte-identical
// to an unwatched one.
func (m *Manager) trajectoryObserver(j *job, g core.Topology, runSpec RunRequest) repro.RoundObserver {
	budget := core.RoundBudget(g, runSpec.Delta, runSpec.MaxRounds)
	dec := bus.NewDecimator(budget, runSpec.Trials, m.cfg.FrameBudget)
	n := g.N()
	variant := ""
	if v := runSpec.VariantName(); v != "sync" {
		variant = v
	}
	topic := runTopic(j.id)
	sweepTp := ""
	if j.sweep != "" {
		sweepTp = sweepTopic(j.sweep)
	}
	return func(trial, round, blues int) {
		if !dec.Keep(round) {
			return
		}
		f := RoundFrame{Trial: trial, Round: round, Blues: blues, N: n, Variant: variant}
		m.bus.Publish(topic, EventRound, &f)
		if sweepTp != "" {
			mirror := f
			mirror.Job = j.id
			m.bus.PublishEphemeral(sweepTp, EventRound, &mirror)
		}
	}
}

// PublishMetrics publishes one Stats frame to the metrics topic. The
// /v1/events handler calls it on subscribe so every joiner starts with a
// fresh frame; metricsLoop keeps the stream live while anyone watches.
func (m *Manager) PublishMetrics() {
	st := m.Stats()
	m.bus.Publish(MetricsTopic, EventMetrics, &st)
}

// metricsLoop publishes periodic metrics frames while the topic has
// subscribers; an unwatched server publishes nothing.
func (m *Manager) metricsLoop() {
	defer m.wg.Done()
	t := time.NewTicker(m.cfg.MetricsInterval)
	defer t.Stop()
	for {
		select {
		case <-m.metricsStop:
			return
		case <-t.C:
			if m.bus.Subscribers(MetricsTopic) > 0 {
				m.PublishMetrics()
			}
		}
	}
}

// SubscribeRun attaches to a run's event stream, resuming after afterSeq.
// ok is false for an unknown (or already pruned) run.
func (m *Manager) SubscribeRun(id string, afterSeq uint64) ([]bus.Event, *bus.Subscription, bool) {
	return m.bus.Subscribe(runTopic(id), m.cfg.EventBuffer, afterSeq)
}

// SubscribeSweepEvents attaches to a sweep's full event stream (state,
// cell, round mirrors, terminal summary), resuming after afterSeq.
func (m *Manager) SubscribeSweepEvents(id string, afterSeq uint64) ([]bus.Event, *bus.Subscription, bool) {
	return m.bus.Subscribe(sweepTopic(id), m.cfg.EventBuffer, afterSeq)
}

// SubscribeMetrics attaches to the server-wide metrics stream, publishing
// a fresh frame first so the snapshot is never stale.
func (m *Manager) SubscribeMetrics(afterSeq uint64) ([]bus.Event, *bus.Subscription, bool) {
	m.PublishMetrics()
	return m.bus.Subscribe(MetricsTopic, m.cfg.EventBuffer, afterSeq)
}

// SubscribeSweepResults is the lossless adapter behind the PR 2 NDJSON
// results stream: a type-filtered subscription delivering every EventCell
// and the terminal EventSweep, with the ring sized to the sweep's cell
// count so a reader that keeps up with the network loses nothing — the
// dense EventRound mirrors are filtered out before they can crowd the
// ring. Subscribing through the manager (not the bus directly) sizes the
// buffer under m.mu, atomically with the existence check.
func (m *Manager) SubscribeSweepResults(id string) ([]bus.Event, *bus.Subscription, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.sweeps[id]
	if !ok {
		return nil, nil, false
	}
	return m.bus.Subscribe(sweepTopic(id), len(s.cells)+16, 0, EventCell, EventSweep)
}

// eventCursor extracts the resume point of a stream request: the SSE
// Last-Event-ID header, or the ?after= query parameter (for NDJSON
// clients, which have no header convention). Zero means "from the start
// of the retained snapshot".
func eventCursor(r *http.Request) uint64 {
	raw := r.Header.Get("Last-Event-ID")
	if raw == "" {
		raw = r.URL.Query().Get("after")
	}
	if raw == "" {
		return 0
	}
	v, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		return 0
	}
	return v
}

// wantsSSE reports whether the client negotiated Server-Sent Events;
// anything else gets NDJSON, which `curl -N | jq` consumes directly.
func wantsSSE(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), "text/event-stream")
}

func (s *Server) handleRunEvents(w http.ResponseWriter, r *http.Request) {
	snap, sub, ok := s.mgr.SubscribeRun(r.PathValue("id"), eventCursor(r))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("serve: no such run"))
		return
	}
	s.streamEvents(w, r, snap, sub)
}

func (s *Server) handleSweepEvents(w http.ResponseWriter, r *http.Request) {
	snap, sub, ok := s.mgr.SubscribeSweepEvents(r.PathValue("id"), eventCursor(r))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("serve: no such sweep"))
		return
	}
	s.streamEvents(w, r, snap, sub)
}

func (s *Server) handleMetricsEvents(w http.ResponseWriter, r *http.Request) {
	snap, sub, ok := s.mgr.SubscribeMetrics(eventCursor(r))
	if !ok {
		// The metrics topic exists from manager start; this is unreachable
		// short of shutdown races.
		writeError(w, http.StatusNotFound, errors.New("serve: metrics stream unavailable"))
		return
	}
	s.streamEvents(w, r, snap, sub)
}

// streamEvents writes the snapshot, then tails the subscription until the
// topic closes (clean EOF), the client disconnects, or a write fails. The
// consumer loop never blocks the bus: a stalled client wedges here, in its
// own handler goroutine, while the ring drops oldest-first and the next
// delivered frame carries the count.
func (s *Server) streamEvents(w http.ResponseWriter, r *http.Request, snapshot []bus.Event, sub *bus.Subscription) {
	defer sub.Cancel()
	sse := wantsSSE(r)
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.WriteHeader(http.StatusOK)
	flusher, canFlush := w.(http.Flusher)
	flush := func() {
		if canFlush {
			flusher.Flush()
		}
	}
	write := func(ev bus.Event) bool {
		body, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		if sse {
			_, err = fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, body)
		} else {
			_, err = fmt.Fprintf(w, "%s\n", body)
		}
		return err == nil
	}
	heartbeat := func() bool {
		var err error
		if sse {
			_, err = fmt.Fprint(w, ": heartbeat\n\n")
		} else {
			_, err = fmt.Fprintf(w, "{\"type\":%q}\n", EventHeartbeat)
		}
		return err == nil
	}
	for _, ev := range snapshot {
		if !write(ev) {
			return
		}
	}
	timer := time.NewTimer(s.mgr.cfg.Heartbeat)
	defer timer.Stop()
	for {
		for {
			ev, ok := sub.Next()
			if !ok {
				break
			}
			if !write(ev) {
				return
			}
		}
		if sub.Done() {
			flush()
			return
		}
		flush()
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(s.mgr.cfg.Heartbeat)
		select {
		case <-sub.Ready():
		case <-timer.C:
			if !heartbeat() {
				return
			}
			flush()
		case <-r.Context().Done():
			return
		}
	}
}
