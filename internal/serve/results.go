package serve

import (
	"encoding/json"
	"errors"
	"fmt"
)

// This file is the wire surface over the persistent result store: listing
// and point lookups of recorded results by content key. The store itself
// is internal/store; the manager only decodes specs for filtering and
// never mutates records.

// ErrNoStore is returned by the result-query methods when the server runs
// without a persistent store (no -store-dir).
var ErrNoStore = errors.New("serve: no result store configured")

// ResultMeta is one listing entry of GET /v1/results: the content key and
// the canonical spec. The result body stays on disk until a point lookup.
type ResultMeta struct {
	// Key is the content address — spec.RunSpec.ContentKey() of Spec.
	Key string `json:"key"`
	// Seq is the store's append sequence (listings are newest first, i.e.
	// descending Seq).
	Seq uint64 `json:"seq"`
	// Spec is the canonical recorded spec: defaults applied, effective
	// seed filled in. POSTing it to /v1/runs reproduces the result.
	Spec RunRequest `json:"spec"`
}

// ResultList is the GET /v1/results payload.
type ResultList struct {
	// Total counts every stored record matching the filters; Offset and
	// Count describe the returned window.
	Total   int          `json:"total"`
	Offset  int          `json:"offset"`
	Count   int          `json:"count"`
	Results []ResultMeta `json:"results"`
}

// ResultView is the GET /v1/results/{key} payload: the full stored
// record. The result is the deterministic projection (see
// CanonicalResult), so re-executing Spec anywhere reproduces Result
// byte-for-byte.
type ResultView struct {
	Key    string     `json:"key"`
	Spec   RunRequest `json:"spec"`
	Result RunResult  `json:"result"`
}

// ResultFilter narrows a listing. Zero values match everything.
type ResultFilter struct {
	// Family matches the graph family exactly.
	Family string
	// N matches the graph's vertex count (> 0 to apply).
	N int
}

func (f ResultFilter) matches(spec RunRequest) bool {
	if f.Family != "" && spec.Graph.Family != f.Family {
		return false
	}
	if f.N > 0 && spec.Graph.N != f.N {
		return false
	}
	return true
}

// ListResults pages through the stored results, newest first. limit <= 0
// defaults to 100 and is capped at 1000; offset skips matches. Records
// whose spec no longer decodes (a foreign or corrupt store directory) are
// skipped rather than failing the listing.
func (m *Manager) ListResults(filter ResultFilter, offset, limit int) (ResultList, error) {
	if m.cfg.Store == nil {
		return ResultList{}, ErrNoStore
	}
	if limit <= 0 {
		limit = 100
	}
	if limit > 1000 {
		limit = 1000
	}
	if offset < 0 {
		offset = 0
	}
	infos := m.cfg.Store.Results() // append order: oldest first
	out := ResultList{Offset: offset, Results: []ResultMeta{}}
	unfiltered := filter == ResultFilter{}
	for i := len(infos) - 1; i >= 0; i-- {
		// With no filter set, every record matches and only the returned
		// window needs its spec decoded — a constant-size page stays
		// O(page), not O(store), per request. Filtered listings must
		// decode each candidate to match against it.
		if unfiltered && (out.Total < offset || len(out.Results) >= limit) {
			out.Total++
			continue
		}
		var spec RunRequest
		if err := json.Unmarshal(infos[i].Spec, &spec); err != nil {
			continue
		}
		if !filter.matches(spec) {
			continue
		}
		if out.Total >= offset && len(out.Results) < limit {
			out.Results = append(out.Results, ResultMeta{Key: infos[i].Key, Seq: infos[i].Seq, Spec: spec})
		}
		out.Total++
	}
	out.Count = len(out.Results)
	return out, nil
}

// GetResult fetches one stored record by content key. ok = false for an
// unknown (or pruned) key.
func (m *Manager) GetResult(key string) (ResultView, bool, error) {
	if m.cfg.Store == nil {
		return ResultView{}, false, ErrNoStore
	}
	rec, ok, err := m.cfg.Store.GetResult(key)
	if err != nil || !ok {
		return ResultView{}, false, err
	}
	v := ResultView{Key: rec.Key}
	if err := json.Unmarshal(rec.Spec, &v.Spec); err != nil {
		return ResultView{}, false, fmt.Errorf("serve: stored spec for %s: %w", key, err)
	}
	if err := json.Unmarshal(rec.Body, &v.Result); err != nil {
		return ResultView{}, false, fmt.Errorf("serve: stored result for %s: %w", key, err)
	}
	return v, true, nil
}
