// Package serve turns the Best-of-Three engine into a long-running
// HTTP/JSON simulation service. Clients submit jobs (a graph spec, an
// imbalance δ, a Best-of-k rule, and a trial count), the Manager executes
// them on a bounded worker pool reusing the sharded engine in
// internal/dynamics through the internal/sim trial harness, and an LRU
// graph pool keyed by the canonical graph spec lets repeated sweeps over
// one topology skip the generator path.
//
// Parameter grids are first-class: a sweep request expands a grid
// (topologies × n × δ × k × tie × noise × trials) into child runs scheduled on the
// same pool under one sweep ID, with aggregate progress and an NDJSON
// stream of per-cell results.
//
// Endpoints (full wire reference in docs/API.md):
//
//	POST   /v1/runs                 submit a job (202 + JobView)
//	GET    /v1/runs                 list recent jobs, newest first
//	GET    /v1/runs/{id}            poll one job
//	DELETE /v1/runs/{id}            cancel a queued or running job
//	POST   /v1/sweeps               expand a grid into child runs (202 + SweepView)
//	GET    /v1/sweeps               list recent sweeps, newest first
//	GET    /v1/sweeps/{id}          poll one sweep (per-cell status + aggregate)
//	GET    /v1/sweeps/{id}/results  stream completed cells as NDJSON
//	DELETE /v1/sweeps/{id}          cancel a sweep and its children
//	GET    /v1/runs/{id}/events     live run telemetry (SSE or NDJSON)
//	GET    /v1/sweeps/{id}/events   live sweep telemetry (SSE or NDJSON)
//	GET    /v1/events               server-wide metrics frames (SSE or NDJSON)
//	GET    /v1/results              list stored results (family/n filters, pagination)
//	GET    /v1/results/{key}        fetch one stored result by content key
//	GET    /v1/stats                job, sweep, trial, graph-pool, and store counters
//	GET    /metrics                 Prometheus text exposition of the same counters
//	GET    /healthz                 liveness + build identity
//
// The /events endpoints stream from the bounded-backpressure event bus
// (internal/bus): lifecycle transitions, round-decimated trajectory
// frames, and per-cell sweep results, with snapshot-then-tail semantics,
// Last-Event-ID resume, and drop-oldest overflow for slow readers — a
// stalled watcher never slows the simulation.
//
// Determinism: a job with seed s runs trial i from rng.ChildSeed(s, i),
// and a sweep with seed s runs cell i with job seed rng.ChildSeed(s, i);
// requests that omit the seed get one derived from the server's root seed,
// recorded in the result. Replaying a request with the recorded seed
// reproduces the result bit-for-bit.
//
// That determinism contract is what the persistent result store
// (internal/store, enabled by bo3serve -store-dir) exploits: completed
// jobs are recorded under their spec's content key, a resubmitted
// identical spec is answered from disk without executing (jobs_cached in
// /v1/stats), sweeps journal their lifecycle so Manager.ResumeSweeps
// finishes interrupted grids after a restart, and GET /v1/results exposes
// the recorded history for offline audit (cmd/bo3store).
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/bus"
)

// Server is the http.Handler for the bo3serve API.
type Server struct {
	mgr *Manager
	mux *http.ServeMux
}

// NewServer wires the routes around the manager.
func NewServer(mgr *Manager) *Server {
	s := &Server{mgr: mgr, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/runs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/runs", s.handleList)
	s.mux.HandleFunc("GET /v1/runs/{id}", s.handleGet)
	s.mux.HandleFunc("DELETE /v1/runs/{id}", s.handleCancel)
	s.mux.HandleFunc("POST /v1/sweeps", s.handleSweepSubmit)
	s.mux.HandleFunc("GET /v1/sweeps", s.handleSweepList)
	s.mux.HandleFunc("GET /v1/sweeps/{id}", s.handleSweepGet)
	s.mux.HandleFunc("GET /v1/sweeps/{id}/results", s.handleSweepResults)
	s.mux.HandleFunc("DELETE /v1/sweeps/{id}", s.handleSweepCancel)
	s.mux.HandleFunc("GET /v1/runs/{id}/events", s.handleRunEvents)
	s.mux.HandleFunc("GET /v1/sweeps/{id}/events", s.handleSweepEvents)
	s.mux.HandleFunc("GET /v1/events", s.handleMetricsEvents)
	s.mux.HandleFunc("GET /v1/results", s.handleResultList)
	s.mux.HandleFunc("GET /v1/results/{key}", s.handleResultGet)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	return s
}

// ServeHTTP implements http.Handler. Every request passes through the
// metrics middleware: latency observed per route pattern (so /v1/runs/{id}
// stays one series regardless of ID), requests counted per route × status
// class. The pattern must come from the mux — the request the outer
// handler sees is not the copy ServeMux annotates for the inner one.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	_, route := s.mux.Handler(r)
	if route == "" {
		route = "unmatched"
	}
	sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
	s.mux.ServeHTTP(sw, r)
	mx := s.mgr.mx
	mx.httpRequests.With(route, statusClass(sw.code)).Inc()
	mx.httpSeconds.With(route).ObserveSince(start)
}

// Manager exposes the underlying manager (for shutdown wiring).
func (s *Server) Manager() *Manager { return s.mgr }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the status line is already out; nothing to recover
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	view, err := s.mgr.Submit(req)
	switch {
	case err == nil:
		writeJSON(w, http.StatusAccepted, view)
	case errors.Is(err, ErrQueueFull):
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, err)
	default:
		writeError(w, http.StatusBadRequest, err)
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.mgr.List(0))
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	view, ok := s.mgr.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("serve: no such run"))
		return
	}
	writeJSON(w, http.StatusOK, view)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	view, ok := s.mgr.Cancel(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("serve: no such run"))
		return
	}
	writeJSON(w, http.StatusOK, view)
}

func (s *Server) handleSweepSubmit(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	view, err := s.mgr.SubmitSweep(req)
	switch {
	case err == nil:
		writeJSON(w, http.StatusAccepted, view)
	case errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, err)
	default:
		writeError(w, http.StatusBadRequest, err)
	}
}

func (s *Server) handleSweepList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.mgr.ListSweeps(0))
}

func (s *Server) handleSweepGet(w http.ResponseWriter, r *http.Request) {
	view, ok := s.mgr.GetSweep(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("serve: no such sweep"))
		return
	}
	writeJSON(w, http.StatusOK, view)
}

func (s *Server) handleSweepCancel(w http.ResponseWriter, r *http.Request) {
	view, ok := s.mgr.CancelSweep(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("serve: no such sweep"))
		return
	}
	writeJSON(w, http.StatusOK, view)
}

// handleSweepResults streams the sweep's cells as NDJSON, one SweepEvent
// per line in completion order, ending with a sweep event carrying the
// final aggregate. Since PR 8 it is a thin adapter over the event bus: a
// type-filtered subscription (cell and sweep events only, ring sized to
// the cell count) replays the retained history and tails the live stream,
// so late-subscriber replay is one mechanism shared with /events. The
// stream ends when the sweep is terminal or the client goes away.
func (s *Server) handleSweepResults(w http.ResponseWriter, r *http.Request) {
	snapshot, sub, ok := s.mgr.SubscribeSweepResults(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("serve: no such sweep"))
		return
	}
	defer sub.Cancel()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, canFlush := w.(http.Flusher)
	enc := json.NewEncoder(w)
	// emit maps one bus event to a legacy NDJSON line; stop is true after
	// the terminal sweep event or a failed write (client gone).
	emit := func(ev bus.Event) (stop bool) {
		var line SweepEvent
		switch data := ev.Data.(type) {
		case *SweepCellView:
			line.Cell = data
		case *SweepView:
			line.Sweep = data
		default:
			return false
		}
		if err := enc.Encode(line); err != nil {
			return true
		}
		return line.Sweep != nil
	}
	for _, ev := range snapshot {
		if emit(ev) {
			return
		}
	}
	for {
		for {
			ev, ok := sub.Next()
			if !ok {
				break
			}
			if emit(ev) {
				return
			}
		}
		if sub.Done() { // evicted mid-stream
			return
		}
		if canFlush {
			flusher.Flush()
		}
		select {
		case <-sub.Ready():
		case <-r.Context().Done():
			return
		}
	}
}

// handleResultList pages through the persistent result store, newest
// first, with optional exact-match filters. A storeless server answers
// with an empty listing rather than an error: the endpoint's shape does
// not depend on deployment flags.
func (s *Server) handleResultList(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var filter ResultFilter
	filter.Family = q.Get("family")
	var offset, limit int
	for name, dst := range map[string]*int{"n": &filter.N, "offset": &offset, "limit": &limit} {
		if raw := q.Get(name); raw != "" {
			v, err := strconv.Atoi(raw)
			if err != nil || v < 0 {
				writeError(w, http.StatusBadRequest, fmt.Errorf("serve: query parameter %s=%q is not a non-negative integer", name, raw))
				return
			}
			*dst = v
		}
	}
	list, err := s.mgr.ListResults(filter, offset, limit)
	if errors.Is(err, ErrNoStore) {
		list = ResultList{Results: []ResultMeta{}}
	} else if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, list)
}

func (s *Server) handleResultGet(w http.ResponseWriter, r *http.Request) {
	view, ok, err := s.mgr.GetResult(r.PathValue("key"))
	switch {
	case errors.Is(err, ErrNoStore) || (err == nil && !ok):
		writeError(w, http.StatusNotFound, errors.New("serve: no such stored result"))
	case err != nil:
		writeError(w, http.StatusInternalServerError, err)
	default:
		writeJSON(w, http.StatusOK, view)
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.mgr.Stats())
}

// handleMetrics serves the Prometheus text exposition of the manager's
// registry — the same instruments /v1/stats reads.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mgr.Registry().Handler().ServeHTTP(w, r)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	bi := buildinfo.Get()
	writeJSON(w, http.StatusOK, map[string]string{
		"status":     "ok",
		"version":    bi.Version,
		"commit":     bi.Commit,
		"go_version": bi.GoVersion,
	})
}
