package serve

import (
	"context"
	"time"

	"repro"
	"repro/internal/core"
)

// executeSpec runs one spec (effective seed already applied) through the
// shared repro.Runner and folds the trial stream into a RunResult. g, when
// non-nil, is a pre-built topology (the manager's graph pool); nil lets
// the Runner build it. workers > 0 sets trial parallelism — it never
// changes outcomes, only wall time. obs, when non-nil, observes every
// recorded blue count (the manager installs the event bus's decimated
// trajectory publisher here); observation never changes outcomes either.
func executeSpec(ctx context.Context, runSpec RunRequest, g core.Topology, workers int, obs repro.RoundObserver) (*RunResult, error) {
	// The Runner's canonical engine configuration (one engine worker per
	// trial) is deliberately left in place: it is what makes outcomes
	// byte-identical to the same spec run through the library or bo3sim,
	// at the cost of in-engine parallelism for single-trial jobs
	// (trial-level parallelism is unaffected).
	opts := []repro.RunnerOption{}
	if g != nil {
		opts = append(opts, repro.WithTopology(g))
	}
	if workers > 0 {
		opts = append(opts, repro.WithWorkers(workers))
	}
	if obs != nil {
		opts = append(opts, repro.WithObserver(obs))
	}
	runner, err := repro.NewRunner(runSpec, opts...)
	if err != nil {
		return nil, err
	}
	runSpec = runner.Spec()
	topo, err := runner.Topology()
	if err != nil {
		return nil, err
	}

	// Consume the trial stream rather than the aggregate report: each
	// trial's trajectory is dropped as soon as its summary is recorded, so
	// a max-size job holds O(workers) trajectories in memory, not all of
	// them at once.
	start := time.Now()
	stream, err := runner.Stream(ctx)
	if err != nil {
		return nil, err
	}
	reports := make([]TrialReport, runSpec.Trials)
	var firstErr error
	var predicted int
	var pre string
	var preOK bool
	for tr := range stream {
		if tr.Err != nil {
			if firstErr == nil {
				firstErr = tr.Err
			}
			continue
		}
		reports[tr.Trial] = TrialReport{RedWon: tr.Report.RedWon, Consensus: tr.Report.Consensus, Rounds: tr.Report.Rounds}
		// Instance-level diagnostics are identical across trials; keep one.
		predicted = tr.Report.PredictedRounds
		pre = tr.Report.Precondition.String()
		preOK = tr.Report.Precondition.Satisfied()
	}
	if firstErr == nil {
		firstErr = ctx.Err()
	}
	if firstErr != nil {
		return nil, firstErr
	}
	rule, err := runSpec.DynamicsRule()
	if err != nil {
		return nil, err
	}
	engine, err := runner.EngineName()
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	res := &RunResult{
		Trials:          runSpec.Trials,
		PredictedRounds: predicted,
		Precondition:    pre,
		PreconditionOK:  preOK,
		Seed:            runSpec.Seed,
		GraphName:       topo.Name(),
		Rule:            rule.Name(),
		Engine:          engine,
		ElapsedMS:       elapsed.Milliseconds(),
		Reports:         reports,
	}
	if v := runner.VariantName(); v != "sync" {
		// The sync default is omitted (omitempty) so plain-run results —
		// and every pre-variant store record — keep their exact bytes.
		res.Variant = v
	}
	tl := tallyReports(reports)
	res.RedWins = tl.Wins
	res.Consensus = tl.Consensus
	res.MeanRounds = tl.MeanRounds()
	res.MaxRounds = tl.MaxRounds
	if secs := elapsed.Seconds(); secs > 0 {
		res.RoundsPerSec = float64(tl.RoundSum) / secs
	}
	return res, nil
}

// Execute runs a spec exactly as a bo3serve worker would — same Runner,
// same ChildSeed tree, same canonical engine configuration — and returns
// the deterministic result projection. It is the re-execution path behind
// `bo3store verify`: marshalling the returned result reproduces a stored
// record's body byte-for-byte. The spec must carry an explicit seed
// (stored canonical specs always do).
func Execute(ctx context.Context, req RunRequest) (*RunResult, error) {
	req.Normalize()
	if err := req.Validate(); err != nil {
		return nil, err
	}
	res, err := executeSpec(ctx, req, nil, 0, nil)
	if err != nil {
		return nil, err
	}
	*res = CanonicalResult(*res)
	return res, nil
}

// CanonicalResult is the deterministic projection of a result: the
// load-dependent observables — timings, throughput, cache and store
// provenance — zeroed, leaving exactly the fields that are pure functions
// of the canonical spec. The result store records this projection, which
// is what makes both the memoised submit path and `bo3store verify`'s
// byte-for-byte comparison sound.
func CanonicalResult(r RunResult) RunResult {
	r.CacheHit = false
	r.Cached = false
	r.ElapsedMS = 0
	r.QueueMS = 0
	r.RoundsPerSec = 0
	return r
}
