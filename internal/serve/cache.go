package serve

import (
	"container/list"
	"errors"
	"sync"
	"time"

	"repro/internal/artifact"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/metrics"
)

// GraphCache is an LRU pool of built topologies keyed by GraphSpec.Key().
// Sweeps typically hammer one (family, n, d, seed) point with many (δ,
// rule, trials) variations; the expensive generator path — random-regular
// pairing-model retries, G(n,p) sampling — then runs once per topology
// instead of once per job.
//
// Concurrent requests for the same key are coalesced: one caller builds,
// the rest wait for its result, so a burst of identical submissions cannot
// stampede the generator. Built graphs are immutable (the engine only
// reads them), so a single shared instance serves any number of jobs.
type GraphCache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List               // front = most recently used
	items    map[string]*list.Element // key -> *entry element
	building map[string]*buildCall

	// mx holds the pool's instruments (counters and latency histograms);
	// NewGraphCache starts it on a private registry so a bare pool still
	// counts, and instrument() moves it onto the shared one before serving.
	mx *cacheMetrics

	// artifacts is the optional disk tier under the in-memory pool
	// (bo3serve -artifact-dir): a cold build checks the artifact directory
	// before invoking the generator and writes through on a miss, so a
	// preprocessed (or fleet-peer-built) topology costs one checksummed
	// file read instead of a full generator run. Nil = disabled.
	artifacts *artifact.Dir
}

// cacheMetrics is the graph pool's instrument bundle: the in-memory LRU
// tier, the build/coalesce paths behind a miss, and the disk artifact
// tier below it.
type cacheMetrics struct {
	hits      *metrics.Counter
	misses    *metrics.Counter
	evictions *metrics.Counter

	buildSeconds    *metrics.Histogram // generator runs
	coalesceSeconds *metrics.Histogram // waits on another caller's build

	artifactHits   *metrics.Counter
	artifactMisses *metrics.Counter
	loadSeconds    *metrics.Histogram // artifact file reads (hit or not)
}

func newCacheMetrics(reg *metrics.Registry) *cacheMetrics {
	return &cacheMetrics{
		hits:      reg.Counter("bo3_graph_pool_hits_total", "Graph requests served from the in-memory pool."),
		misses:    reg.Counter("bo3_graph_pool_misses_total", "Graph requests that missed the in-memory pool (coalesced waiters included)."),
		evictions: reg.Counter("bo3_graph_pool_evictions_total", "Graphs evicted from the in-memory pool by its capacity bound."),

		buildSeconds:    reg.Histogram("bo3_graph_build_seconds", "Generator build time for one topology (artifact write-through included).", metrics.DefBuckets),
		coalesceSeconds: reg.Histogram("bo3_graph_coalesce_wait_seconds", "Time a graph request waited on a concurrent build of the same key.", metrics.DefBuckets),

		artifactHits:   reg.Counter("bo3_artifact_hits_total", "Graph builds served from the disk artifact tier."),
		artifactMisses: reg.Counter("bo3_artifact_misses_total", "CSR builds that missed the disk artifact tier (and were written through)."),
		loadSeconds:    reg.Histogram("bo3_artifact_load_seconds", "Artifact file load time (read, decode, checksum).", metrics.DefBuckets),
	}
}

type entry struct {
	key string
	g   core.Topology
}

// buildCall coalesces concurrent builds of one key.
type buildCall struct {
	done chan struct{}
	g    core.Topology
	err  error
}

// CacheStats is a counter snapshot.
type CacheStats struct {
	Size      int   `json:"size"`
	Capacity  int   `json:"capacity"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

// NewGraphCache returns a pool holding at most capacity graphs (minimum 1).
func NewGraphCache(capacity int) *GraphCache {
	if capacity < 1 {
		capacity = 1
	}
	return &GraphCache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
		building: make(map[string]*buildCall),
		mx:       newCacheMetrics(metrics.NewRegistry()),
	}
}

// instrument re-registers the pool's instruments on reg (NewManager calls
// it with the shared registry before any Get) and adds the pool-size
// gauge. Counts accumulated on the private registry are discarded — call
// before serving.
func (c *GraphCache) instrument(reg *metrics.Registry) {
	c.mx = newCacheMetrics(reg)
	reg.GaugeFunc("bo3_graph_pool_size", "Graphs resident in the in-memory pool.", func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return float64(c.ll.Len())
	})
}

// Get returns the graph for the spec, building it on a miss. The second
// return reports whether the graph came from the pool (true) or was built
// by this call or a concurrent one (false).
func (c *GraphCache) Get(spec GraphSpec) (core.Topology, bool, error) {
	key := spec.Key()

	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.mx.hits.Inc()
		g := el.Value.(*entry).g
		c.mu.Unlock()
		return g, true, nil
	}
	c.mx.misses.Inc()
	if call, ok := c.building[key]; ok {
		// Someone else is already building this key; wait for them.
		c.mu.Unlock()
		start := time.Now()
		<-call.done
		c.mx.coalesceSeconds.ObserveSince(start)
		return call.g, false, call.err
	}
	call := &buildCall{done: make(chan struct{})}
	c.building[key] = call
	c.mu.Unlock()

	call.g, call.err = c.buildOrLoad(spec, key)
	close(call.done)

	c.mu.Lock()
	delete(c.building, key)
	if call.err == nil {
		c.insert(key, call.g)
	}
	c.mu.Unlock()
	return call.g, false, call.err
}

// UseArtifacts attaches a disk artifact directory as the tier below the
// in-memory pool. Call before serving; nil detaches.
func (c *GraphCache) UseArtifacts(d *artifact.Dir) { c.artifacts = d }

// buildOrLoad materialises the topology for one coalesced cache miss:
// from the artifact directory when an artifact for the key exists and
// passes its checksums, otherwise via the spec's generator, writing the
// freshly built CSR back through to disk. Virtual topologies (no CSR
// arrays) always take the generator path and touch neither disk nor the
// artifact counters — they are O(1) to rebuild. Corrupt artifacts are
// deleted by Load and silently rebuilt: a damaged disk tier degrades to
// the generator path, never to an error. A newer-format artifact
// (ErrVersion, written by an upgraded fleet peer) is also rebuilt
// in-process but neither deleted nor overwritten: write-through would
// replace the peer's file with this binary's older format and the two
// fleet halves would churn the shared key against each other.
func (c *GraphCache) buildOrLoad(spec GraphSpec, key string) (core.Topology, error) {
	newerFormat := false
	if c.artifacts != nil {
		start := time.Now()
		a, err := c.artifacts.Load(key)
		c.mx.loadSeconds.ObserveSince(start)
		if err == nil {
			c.mx.artifactHits.Inc()
			return a.Graph, nil
		}
		newerFormat = errors.Is(err, artifact.ErrVersion)
	}
	start := time.Now()
	g, err := spec.Build()
	c.mx.buildSeconds.ObserveSince(start)
	if err != nil || c.artifacts == nil {
		return g, err
	}
	if cg, ok := g.(*graph.Graph); ok {
		c.mx.artifactMisses.Inc()
		// Best-effort write-through: the graph is correct whether or not
		// it was persisted, and a concurrent peer writing the same key
		// produces identical bytes, so last-rename-wins is harmless.
		if !newerFormat {
			_, _ = c.artifacts.Store(artifact.New(key, cg))
		}
	}
	return g, nil
}

// ArtifactStats returns the disk-tier counters: loads served from the
// artifact directory and CSR builds that missed it (and were written
// through). Both are zero when no directory is attached.
func (c *GraphCache) ArtifactStats() (hits, misses int64) {
	return c.mx.artifactHits.Value(), c.mx.artifactMisses.Value()
}

// insert adds the entry and evicts from the LRU tail; callers hold c.mu.
func (c *GraphCache) insert(key string, g core.Topology) {
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*entry).g = g
		return
	}
	c.items[key] = c.ll.PushFront(&entry{key: key, g: g})
	for c.ll.Len() > c.capacity {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.items, back.Value.(*entry).key)
		c.mx.evictions.Inc()
	}
}

// Contains reports whether the key is resident, without touching LRU order
// or counters. Exposed for tests.
func (c *GraphCache) Contains(spec GraphSpec) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.items[spec.Key()]
	return ok
}

// Stats returns a counter snapshot.
func (c *GraphCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Size:      c.ll.Len(),
		Capacity:  c.capacity,
		Hits:      c.mx.hits.Value(),
		Misses:    c.mx.misses.Value(),
		Evictions: c.mx.evictions.Value(),
	}
}
