package serve

import (
	"container/list"
	"sync"

	"repro/internal/core"
)

// GraphCache is an LRU pool of built topologies keyed by GraphSpec.Key().
// Sweeps typically hammer one (family, n, d, seed) point with many (δ,
// rule, trials) variations; the expensive generator path — random-regular
// pairing-model retries, G(n,p) sampling — then runs once per topology
// instead of once per job.
//
// Concurrent requests for the same key are coalesced: one caller builds,
// the rest wait for its result, so a burst of identical submissions cannot
// stampede the generator. Built graphs are immutable (the engine only
// reads them), so a single shared instance serves any number of jobs.
type GraphCache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List               // front = most recently used
	items    map[string]*list.Element // key -> *entry element
	building map[string]*buildCall

	hits, misses, evictions int64
}

type entry struct {
	key string
	g   core.Topology
}

// buildCall coalesces concurrent builds of one key.
type buildCall struct {
	done chan struct{}
	g    core.Topology
	err  error
}

// CacheStats is a counter snapshot.
type CacheStats struct {
	Size      int   `json:"size"`
	Capacity  int   `json:"capacity"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

// NewGraphCache returns a pool holding at most capacity graphs (minimum 1).
func NewGraphCache(capacity int) *GraphCache {
	if capacity < 1 {
		capacity = 1
	}
	return &GraphCache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
		building: make(map[string]*buildCall),
	}
}

// Get returns the graph for the spec, building it on a miss. The second
// return reports whether the graph came from the pool (true) or was built
// by this call or a concurrent one (false).
func (c *GraphCache) Get(spec GraphSpec) (core.Topology, bool, error) {
	key := spec.Key()

	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		g := el.Value.(*entry).g
		c.mu.Unlock()
		return g, true, nil
	}
	c.misses++
	if call, ok := c.building[key]; ok {
		// Someone else is already building this key; wait for them.
		c.mu.Unlock()
		<-call.done
		return call.g, false, call.err
	}
	call := &buildCall{done: make(chan struct{})}
	c.building[key] = call
	c.mu.Unlock()

	call.g, call.err = spec.Build()
	close(call.done)

	c.mu.Lock()
	delete(c.building, key)
	if call.err == nil {
		c.insert(key, call.g)
	}
	c.mu.Unlock()
	return call.g, false, call.err
}

// insert adds the entry and evicts from the LRU tail; callers hold c.mu.
func (c *GraphCache) insert(key string, g core.Topology) {
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*entry).g = g
		return
	}
	c.items[key] = c.ll.PushFront(&entry{key: key, g: g})
	for c.ll.Len() > c.capacity {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.items, back.Value.(*entry).key)
		c.evictions++
	}
}

// Contains reports whether the key is resident, without touching LRU order
// or counters. Exposed for tests.
func (c *GraphCache) Contains(spec GraphSpec) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.items[spec.Key()]
	return ok
}

// Stats returns a counter snapshot.
func (c *GraphCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Size:      c.ll.Len(),
		Capacity:  c.capacity,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
}
