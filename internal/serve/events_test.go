package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/bus"
)

// readEvents consumes an NDJSON event stream to EOF, decoding each line
// into a bus.Event (heartbeat lines included).
func readEvents(t *testing.T, body *bufio.Scanner) []bus.Event {
	t.Helper()
	var out []bus.Event
	for body.Scan() {
		var ev bus.Event
		if err := json.Unmarshal(body.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", body.Text(), err)
		}
		out = append(out, ev)
	}
	return out
}

// TestRunEventsStream drives the full run-events lifecycle over NDJSON:
// queued → running → ≥1 trajectory frame → terminal state with the result
// summary, then a clean EOF.
func TestRunEventsStream(t *testing.T) {
	ts, _ := newTestServer(t, Config{Workers: 1})
	var job JobView
	doJSON(t, http.MethodPost, ts.URL+"/v1/runs", RunRequest{
		Graph: GraphSpec{Family: "cycle", N: 512}, Delta: 0, Trials: 2, MaxRounds: 50, Seed: 7,
	}, http.StatusAccepted, &job)

	resp, err := http.Get(ts.URL + "/v1/runs/" + job.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q, want NDJSON without an SSE Accept", ct)
	}
	events := readEvents(t, bufio.NewScanner(resp.Body))
	if len(events) == 0 {
		t.Fatal("empty event stream")
	}

	states := []string{}
	rounds := 0
	var lastSeq uint64
	for _, ev := range events {
		if ev.Seq <= lastSeq {
			t.Errorf("seq not increasing: %d after %d", ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		switch ev.Type {
		case EventState:
			var st RunStateEvent
			remarshal(t, ev.Data, &st)
			states = append(states, st.State)
			if st.Job != job.ID {
				t.Errorf("state event for job %q, want %q", st.Job, job.ID)
			}
			if st.State == StateDone {
				if st.Result == nil || st.Result.Trials != 2 {
					t.Errorf("terminal state lacks result summary: %+v", st)
				}
				if st.Result != nil && st.Result.Reports != nil {
					t.Error("terminal frame carries per-trial reports; summary must stay O(1)")
				}
			}
		case EventRound:
			var f RoundFrame
			remarshal(t, ev.Data, &f)
			if f.N != 512 || f.Blues < 0 || f.Blues > f.N {
				t.Errorf("implausible round frame %+v", f)
			}
			rounds++
		}
	}
	if want := []string{StateQueued, StateRunning, StateDone}; strings.Join(states, ",") != strings.Join(want, ",") {
		t.Errorf("lifecycle states = %v, want %v", states, want)
	}
	if rounds == 0 {
		t.Error("no trajectory frames on the run stream")
	}
}

// remarshal round-trips an any-typed Data payload into a concrete view.
func remarshal(t *testing.T, data any, out any) {
	t.Helper()
	raw, err := json.Marshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, out); err != nil {
		t.Fatal(err)
	}
}

// TestRunEventsSSEAndResume checks content negotiation (Accept:
// text/event-stream selects SSE framing with id:/event:/data: lines) and
// Last-Event-ID resume: a reconnect sees exactly the events after its
// cursor.
func TestRunEventsSSEAndResume(t *testing.T) {
	ts, _ := newTestServer(t, Config{Workers: 1})
	var job JobView
	doJSON(t, http.MethodPost, ts.URL+"/v1/runs", RunRequest{
		Graph: GraphSpec{Family: "complete-virtual", N: 64}, Delta: 0.2, Trials: 1, Seed: 3,
	}, http.StatusAccepted, &job)
	pollDone(t, ts.URL, job.ID)

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/runs/"+job.ID+"/events", nil)
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}
	var ids []string
	sc := bufio.NewScanner(resp.Body)
	sawData := false
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "id: ") {
			ids = append(ids, strings.TrimPrefix(line, "id: "))
		}
		if strings.HasPrefix(line, "data: ") {
			sawData = true
			var ev bus.Event
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
				t.Fatalf("SSE data line is not an event: %v", err)
			}
		}
	}
	if len(ids) < 3 || !sawData {
		t.Fatalf("SSE stream had %d id: lines (sawData=%v), want the full lifecycle", len(ids), sawData)
	}

	// Resume after the second event: only later events replay.
	req2, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/runs/"+job.ID+"/events", nil)
	req2.Header.Set("Last-Event-ID", ids[1])
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	events := readEvents(t, bufio.NewScanner(resp2.Body))
	if len(events) == 0 {
		t.Fatal("resumed stream is empty")
	}
	if events[0].Seq != 3 {
		t.Errorf("resume after seq 2 replayed from seq %d", events[0].Seq)
	}
}

// TestMetricsEvents subscribes to the server-wide stream and expects an
// immediate metrics frame carrying the stats payload.
func TestMetricsEvents(t *testing.T) {
	ts, _ := newTestServer(t, Config{Workers: 1})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatal("no first frame on /v1/events")
	}
	var ev bus.Event
	if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Type != EventMetrics {
		t.Fatalf("first frame type = %q, want metrics", ev.Type)
	}
	var st Stats
	remarshal(t, ev.Data, &st)
	// The frame is published just before the subscriber attaches, so its
	// own subscriber count excludes the joiner; workers pins the payload.
	if st.Workers != 1 {
		t.Errorf("metrics frame stats = workers %d, want 1", st.Workers)
	}
}

// TestEventsUnknownIDs pins the 404 contract.
func TestEventsUnknownIDs(t *testing.T) {
	ts, _ := newTestServer(t, Config{Workers: 1})
	for _, path := range []string{"/v1/runs/run-999999/events", "/v1/sweeps/sweep-999999/events"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", path, resp.StatusCode)
		}
	}
}

// wedgedWriter is an http.ResponseWriter whose first Write blocks until
// the test releases it — a client that connected and then stopped reading
// entirely, with zero socket buffer.
type wedgedWriter struct {
	header  http.Header
	release chan struct{}
	once    sync.Once
	wedged  chan struct{} // closed when the first Write has blocked
}

func newWedgedWriter() *wedgedWriter {
	return &wedgedWriter{header: make(http.Header), release: make(chan struct{}), wedged: make(chan struct{})}
}

func (w *wedgedWriter) Header() http.Header { return w.header }
func (w *wedgedWriter) WriteHeader(int)     {}
func (w *wedgedWriter) Write(p []byte) (int, error) {
	w.once.Do(func() { close(w.wedged) })
	<-w.release
	return len(p), nil
}

// TestWedgedSubscriberNeverBlocksSweep is the PR's acceptance pin: one
// completely wedged events client (tiny ring, never reads) coexists with
// a completing sweep, the sweep's aggregate stays byte-identical to the
// same sweep run on an unwatched manager, and the shed load is visible in
// events_dropped.
func TestWedgedSubscriberNeverBlocksSweep(t *testing.T) {
	req := SweepRequest{
		Grid: SweepGrid{
			Graphs: []GraphSpec{{Family: "cycle"}},
			NS:     []int{512, 1024},
			Deltas: []float64{0, 0.1},
			Trials: []int{8},
		},
		MaxRounds: 200,
		Seed:      42,
	}

	// Watched manager: EventBuffer 4 guarantees overflow under the
	// sweep's event volume.
	mgr := NewManager(Config{Workers: 2, EventBuffer: 4})
	defer mgr.Close(context.Background())
	srv := NewServer(mgr)
	view, err := mgr.SubmitSweep(req)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancelReq := context.WithCancel(context.Background())
	w := newWedgedWriter()
	handlerDone := make(chan struct{})
	go func() {
		defer close(handlerDone)
		r := httptest.NewRequest(http.MethodGet, "/v1/sweeps/"+view.ID+"/events", nil).WithContext(ctx)
		srv.ServeHTTP(w, r)
	}()
	select {
	case <-w.wedged:
	case <-time.After(10 * time.Second):
		t.Fatal("events handler never started writing")
	}

	// The sweep must complete while the client stays wedged.
	deadline := time.Now().Add(60 * time.Second)
	var watched SweepView
	for {
		var ok bool
		watched, ok = mgr.GetSweep(view.ID)
		if !ok {
			t.Fatal("sweep vanished")
		}
		if watched.State != StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sweep did not complete while a subscriber was wedged — the publisher blocked")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st := mgr.Stats(); st.EventsDropped == 0 {
		t.Error("wedged subscriber shed no load: events_dropped = 0")
	}
	cancelReq()
	close(w.release)
	<-handlerDone

	// Unwatched control run on a fresh manager: byte-identical aggregate.
	ctrl := NewManager(Config{Workers: 2})
	defer ctrl.Close(context.Background())
	cv, err := ctrl.SubmitSweep(req)
	if err != nil {
		t.Fatal(err)
	}
	var unwatched SweepView
	for {
		unwatched, _ = ctrl.GetSweep(cv.ID)
		if unwatched.State != StateRunning {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	got, _ := json.Marshal(watched.Aggregate)
	want, _ := json.Marshal(unwatched.Aggregate)
	if string(got) != string(want) {
		t.Errorf("watched aggregate diverged from unwatched:\n  watched   %s\n  unwatched %s", got, want)
	}
}

// TestEventsSubscriberChurnDuringSweep churns HTTP subscribers —
// attach, read a little, disconnect — against a live sweep; run under
// -race in CI. After the dust settles no subscriptions may leak.
func TestEventsSubscriberChurnDuringSweep(t *testing.T) {
	ts, mgr := newTestServer(t, Config{Workers: 4, EventBuffer: 8})
	view := SweepView{}
	// Non-consensing cells sized to outlive the churn without blowing the
	// race detector's time budget.
	doJSON(t, http.MethodPost, ts.URL+"/v1/sweeps", SweepRequest{
		Grid: SweepGrid{
			Graphs: []GraphSpec{{Family: "cycle"}},
			NS:     []int{1024},
			Deltas: []float64{0},
			Trials: []int{32, 64},
		},
		MaxRounds: 100,
		Seed:      9,
	}, http.StatusAccepted, &view)

	var wg sync.WaitGroup
	for c := 0; c < 6; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for iter := 0; iter < 8; iter++ {
				ctx, cancel := context.WithCancel(context.Background())
				req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/sweeps/"+view.ID+"/events", nil)
				if c%2 == 0 {
					req.Header.Set("Accept", "text/event-stream")
				}
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					cancel()
					continue
				}
				sc := bufio.NewScanner(resp.Body)
				for i := 0; i < (c+iter)%5; i++ {
					if !sc.Scan() {
						break
					}
					if c%3 == 0 {
						time.Sleep(time.Millisecond) // slow reader
					}
				}
				cancel()
				resp.Body.Close()
			}
		}(c)
	}
	wg.Wait()
	pollSweepDone(t, ts.URL, view.ID)

	deadline := time.Now().Add(5 * time.Second)
	for {
		if st := mgr.Stats(); st.Subscribers == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("subscriptions leaked after churn: %d", mgr.Stats().Subscribers)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSweepEventsCarryCellsAndTerminal attaches late — after completion —
// and still replays the lifecycle from the retained snapshot: the initial
// state event, every cell exactly once, the terminal sweep summary, then
// EOF.
func TestSweepEventsCarryCellsAndTerminal(t *testing.T) {
	ts, _ := newTestServer(t, Config{Workers: 2})
	var view SweepView
	doJSON(t, http.MethodPost, ts.URL+"/v1/sweeps", SweepRequest{
		Grid: SweepGrid{
			Graphs: []GraphSpec{{Family: "complete-virtual"}},
			NS:     []int{64, 96},
			Deltas: []float64{0.1},
			Trials: []int{2},
		},
		Seed: 5,
	}, http.StatusAccepted, &view)
	pollSweepDone(t, ts.URL, view.ID)

	resp, err := http.Get(ts.URL + "/v1/sweeps/" + view.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	events := readEvents(t, bufio.NewScanner(resp.Body))
	seenCells := map[int]int{}
	terminal := false
	for _, ev := range events {
		switch ev.Type {
		case EventCell:
			var cv SweepCellView
			remarshal(t, ev.Data, &cv)
			seenCells[cv.Index]++
		case EventSweep:
			var sv SweepView
			remarshal(t, ev.Data, &sv)
			if sv.State != StateDone {
				t.Errorf("terminal sweep event state = %q", sv.State)
			}
			terminal = true
		}
	}
	if len(seenCells) != 2 {
		t.Errorf("snapshot replayed %d distinct cells, want 2", len(seenCells))
	}
	for idx, n := range seenCells {
		if n != 1 {
			t.Errorf("cell %d replayed %d times", idx, n)
		}
	}
	if !terminal {
		t.Error("no terminal sweep event before EOF")
	}
}
