package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/store"
)

// SweepRequest is the body of POST /v1/sweeps: expand Grid (a spec.Grid;
// the experiment suite enumerates the very same type) into child runs and
// execute them on the job pool under one sweep ID.
type SweepRequest struct {
	Grid SweepGrid `json:"grid"`
	// MaxRounds caps every cell's runs; 0 uses the theory-derived default.
	MaxRounds int `json:"max_rounds,omitempty"`
	// Seed is the sweep seed; cell i runs with rng.ChildSeed(Seed, i). A
	// zero seed is replaced by one derived from the server's root seed and
	// the sweep index, recorded in the SweepView, so every sweep is
	// reproducible after the fact.
	Seed uint64 `json:"seed,omitempty"`
	// MaxCells optionally lowers the server's grid-size cap for this
	// request, failing fast on accidental blow-ups.
	MaxCells int `json:"max_cells,omitempty"`
	// Concurrency caps this sweep's in-flight child runs; 0 uses the
	// server default, and values above the server default are clamped.
	Concurrency int `json:"concurrency,omitempty"`
}

// CellResult is the compact per-cell outcome embedded in sweep views; the
// full per-trial breakdown stays on the child run (GET /v1/runs/{job_id}).
type CellResult struct {
	Trials          int     `json:"trials"`
	RedWins         int     `json:"red_wins"`
	Consensus       int     `json:"consensus"`
	MeanRounds      float64 `json:"mean_rounds"`
	MaxRounds       int     `json:"max_rounds"`
	PredictedRounds int     `json:"predicted_rounds"`
	// Variant is the cell's opinion dynamic; omitted for the synchronous
	// default, so pre-variant sweep views keep their exact bytes.
	Variant   string `json:"variant,omitempty"`
	CacheHit  bool   `json:"cache_hit"`
	ElapsedMS int64  `json:"elapsed_ms"`
}

// SweepCellView is one expanded grid cell and its status.
type SweepCellView struct {
	// Index is the cell's position in expansion order (and its seed label:
	// the cell seed is ChildSeed(sweep seed, Index)).
	Index int `json:"index"`
	// JobID names the child run once scheduled.
	JobID string `json:"job_id,omitempty"`
	// State is "pending" until the cell is handed to the job pool, then
	// the child run's state.
	State   string      `json:"state"`
	Request RunRequest  `json:"request"`
	Error   string      `json:"error,omitempty"`
	Result  *CellResult `json:"result,omitempty"`
}

// SweepAggregate summarises a sweep's completed cells. Every field is a
// deterministic function of the cell results (no timings), so two sweeps
// with the same seed and grid produce byte-identical aggregates.
type SweepAggregate struct {
	// Cell counts by state; Pending includes queued and running cells.
	Cells     int `json:"cells"`
	Pending   int `json:"pending"`
	Done      int `json:"done"`
	Failed    int `json:"failed"`
	Cancelled int `json:"cancelled"`
	// Trial tallies over the done cells.
	Trials    int `json:"trials"`
	RedWins   int `json:"red_wins"`
	Consensus int `json:"consensus"`
	// Rates over the done trials, with 95% Wilson intervals.
	RedWinRate    float64 `json:"red_win_rate"`
	RedWinLo      float64 `json:"red_win_lo"`
	RedWinHi      float64 `json:"red_win_hi"`
	ConsensusRate float64 `json:"consensus_rate"`
	ConsensusLo   float64 `json:"consensus_lo"`
	ConsensusHi   float64 `json:"consensus_hi"`
	// MeanRounds and MaxRounds summarise rounds across all done trials.
	MeanRounds float64 `json:"mean_rounds"`
	MaxRounds  int     `json:"max_rounds"`
}

// SweepView is the externally visible snapshot of a sweep. The list
// endpoint omits Cells.
type SweepView struct {
	ID string `json:"id"`
	// State is "running" until every cell is terminal, then "done" or
	// "cancelled".
	State     string          `json:"state"`
	Request   SweepRequest    `json:"request"`
	Aggregate SweepAggregate  `json:"aggregate"`
	Cells     []SweepCellView `json:"cells,omitempty"`
	// CellsCached counts cells answered from the persistent result store
	// without executing — a resumed sweep's pre-crash cells, a repeated
	// grid's entire expansion, or cells a fleet peer computed first. It
	// lives outside Aggregate deliberately: the aggregate is a
	// deterministic function of the cell outcomes, identical however the
	// cells were obtained, while CellsCached describes scheduling.
	CellsCached int `json:"cells_cached"`
	// ContentKey is the sweep-level content address (the grid's canonical
	// key hashed with the effective seed and round cap); two sweeps with
	// equal keys compute identical aggregates. Present once the sweep has
	// an effective seed, i.e. always on responses.
	ContentKey string `json:"content_key,omitempty"`
	// Deduped marks a submission whose content key was already completed
	// by this server (or, fleet-wide, recorded in the shared journal):
	// the sweep ran entirely from the result store.
	Deduped bool `json:"deduped,omitempty"`
	// ResumeRefused records why a journaled sweep could not be resumed
	// after a restart (a server restarted with tighter limits, say); such
	// sweeps surface as cancelled with zero cells.
	ResumeRefused string     `json:"resume_refused,omitempty"`
	Created       time.Time  `json:"created"`
	Finished      *time.Time `json:"finished,omitempty"`
}

// SweepEvent is one NDJSON line of GET /v1/sweeps/{id}/results: cell
// events as cells reach a terminal state, then a final sweep event with
// the aggregate once the sweep itself is terminal.
type SweepEvent struct {
	Cell  *SweepCellView `json:"cell,omitempty"`
	Sweep *SweepView     `json:"sweep,omitempty"`
}

// StateCellPending marks a sweep cell not yet handed to the job pool.
const StateCellPending = "pending"

// sweepSeedDomain separates the sweep seed-derivation tree from the plain
// job tree: sweep s gets ChildSeed(root, sweepSeedDomain, s) while job k
// gets ChildSeed(root, k), so the two never reuse a stream.
const sweepSeedDomain = 0x53574545 // "SWEE"

// sweepCell is the internal mutable record behind a SweepCellView.
type sweepCell struct {
	req    RunRequest
	jobID  string
	state  string
	err    string
	result *CellResult
	tally  sim.Tally // per-trial tally of a done cell, for aggregation
}

// sweep is the internal mutable record behind a SweepView.
type sweep struct {
	id          string
	req         SweepRequest
	cells       []sweepCell
	jobs        []*job // indexed like cells; nil until scheduled
	state       string
	created     time.Time
	finished    time.Time
	concurrency int

	// cellsCached counts cells answered from the result store; contentKey
	// is the sweep-level content address; deduped marks a submission whose
	// key was already completed; resumeRefused records why a journaled
	// sweep could not be re-registered (see SweepView).
	cellsCached   int
	contentKey    string
	deduped       bool
	resumeRefused string

	ctx       context.Context
	cancel    context.CancelFunc
	cancelled bool // cancel requested or scheduling aborted (shutdown)
	// userCancelled distinguishes a client DELETE (a terminal decision,
	// journaled) from a shutdown interruption (which leaves the journal
	// record "running" so a restarted server resumes the sweep).
	userCancelled bool
	agg           *SweepAggregate // memoised at the terminal transition
}

// SubmitSweep validates and expands the grid, registers the sweep, and
// starts its scheduler. The returned view is in state "running" with every
// cell pending.
func (m *Manager) SubmitSweep(req SweepRequest) (SweepView, error) {
	view, err := m.submitSweep(req)
	if err != nil {
		m.mx.sweepsRejected.Inc()
	}
	return view, err
}

func (m *Manager) submitSweep(req SweepRequest) (SweepView, error) {
	reqs, err := m.expandSweep(&req)
	if err != nil {
		return SweepView{}, err
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return SweepView{}, ErrClosed
	}
	if req.Seed == 0 {
		req.Seed = rng.ChildSeed(m.cfg.RootSeed, sweepSeedDomain, m.sweepSeq)
		for i := range reqs {
			reqs[i].Seed = rng.ChildSeed(req.Seed, uint64(i))
		}
	}
	id := m.mintSweepIDLocked()
	s := m.registerSweepLocked(id, req, reqs)
	if _, done := m.doneSweepKeys[s.contentKey]; done {
		// The grid (with this seed and round cap) already completed:
		// every cell is in the result store, so the sweep runs entirely
		// from the journal — no claims, no queue, cells_cached == cells.
		s.deduped = true
		m.mx.sweepsDeduped.Inc()
	}
	entry := m.journalEntryLocked(s)
	view := m.sweepViewLocked(s, true)
	m.mu.Unlock()
	m.startSweep(s, entry)
	return view, nil
}

// expandSweep normalizes and caps the request, then expands and validates
// every cell. Run outside the lock: the grid is capped, but a few
// thousand validations still should not stall every snapshot reader.
// Cell seeds for seedless requests are assigned under the lock, where the
// sweep index that feeds the sweep seed is reserved.
func (m *Manager) expandSweep(req *SweepRequest) ([]RunRequest, error) {
	req.Grid.Normalize()
	if err := req.Grid.Validate(); err != nil {
		return nil, err
	}
	count, err := req.Grid.CellCount()
	if err != nil {
		return nil, err
	}
	limit := m.cfg.Limits.MaxSweepCells
	if req.MaxCells > 0 && req.MaxCells < limit {
		limit = req.MaxCells
	}
	if count > limit {
		return nil, fmt.Errorf("sweep: grid expands to %d cells, exceeding the cap of %d", count, limit)
	}
	if req.Concurrency <= 0 || req.Concurrency > m.cfg.SweepConcurrency {
		req.Concurrency = m.cfg.SweepConcurrency
	}
	reqs := req.Grid.Expand(req.Seed, req.MaxRounds)
	for i := range reqs {
		if err := validateRun(&reqs[i], m.cfg.Limits); err != nil {
			return nil, fmt.Errorf("sweep: cell %d: %w", i, err)
		}
	}
	return reqs, nil
}

// registerSweepLocked creates the sweep record under the given ID and
// reserves its scheduler slot; callers hold m.mu, have reserved the ID,
// and must call startSweep after releasing the lock. The WaitGroup add
// happens here, under the same lock as the closed check, so Close can
// never begin waiting between registration and scheduler start.
func (m *Manager) registerSweepLocked(id string, req SweepRequest, reqs []RunRequest) *sweep {
	ctx, cancel := context.WithCancel(m.baseCtx)
	s := &sweep{
		id:          id,
		req:         req,
		cells:       make([]sweepCell, len(reqs)),
		jobs:        make([]*job, len(reqs)),
		state:       StateRunning,
		created:     time.Now(),
		concurrency: req.Concurrency,
		contentKey:  req.Grid.ContentKey(req.Seed, req.MaxRounds),
		ctx:         ctx,
		cancel:      cancel,
	}
	for i := range reqs {
		s.cells[i] = sweepCell{req: reqs[i], state: StateCellPending}
	}
	m.sweeps[s.id] = s
	m.sweepOrder = append(m.sweepOrder, s.id)
	m.pruneSweepsLocked()
	m.sweepWG.Add(1)
	// The retained prefix must replay every cell event to a late joiner —
	// the results adapter's losslessness rests on it — plus lifecycle
	// frames. The dense per-round mirrors are published ephemerally, so
	// they never count against this cap.
	m.bus.Topic(sweepTopic(s.id), len(reqs)+16)
	view := m.sweepViewLocked(s, false)
	m.bus.Publish(sweepTopic(s.id), EventState, &view)
	return s
}

// startSweep writes the sweep's "running" journal record and launches
// the scheduler; called without m.mu held. The record hits disk before
// any cell can be scheduled, so the journal never shows a result for a
// sweep it has not recorded.
func (m *Manager) startSweep(s *sweep, entry []byte) {
	m.writeJournal(s.id, entry)
	go m.runSweep(s)
}

// sweepJournal is the store's journal payload for one sweep: enough to
// re-expand and finish the sweep after a restart. The request always
// carries the effective seed, so a resumed expansion reproduces every
// cell (and its content key) exactly.
type sweepJournal struct {
	ID      string       `json:"id"`
	State   string       `json:"state"`
	Request SweepRequest `json:"request"`
	// ContentKey is the sweep-level content address; terminal "done"
	// records feed it into the dedupe memory (doneSweepKeys) before the
	// journal collapse forgets the record itself.
	ContentKey string `json:"content_key,omitempty"`
	// Error records why a resume was refused, on the tombstone record a
	// refusal leaves behind.
	Error string `json:"error,omitempty"`
}

// mintSweepIDLocked returns the next sweep ID and advances the sequence;
// callers hold m.mu. With a fleet identity configured the ID carries the
// worker's namespace, so N workers minting against one shared journal
// never collide.
func (m *Manager) mintSweepIDLocked() string {
	id := fmt.Sprintf("sweep-%06d", m.sweepSeq)
	if m.cfg.WorkerID != "" {
		id = fmt.Sprintf("sweep-%s-%06d", m.cfg.WorkerID, m.sweepSeq)
	}
	m.sweepSeq++
	return id
}

// journalEntryLocked marshals the sweep's current lifecycle record;
// callers hold m.mu and hand the bytes to writeJournal after releasing
// it — store I/O stays off the manager lock, like persistResult's.
// Returns nil when there is nothing to write.
func (m *Manager) journalEntryLocked(s *sweep) []byte {
	if m.cfg.Store == nil {
		return nil
	}
	body, err := json.Marshal(sweepJournal{ID: s.id, State: s.state, Request: s.req, ContentKey: s.contentKey})
	if err != nil {
		m.mx.storeErrors.Inc()
		return nil
	}
	return body
}

// writeJournal appends a record built by journalEntryLocked; called
// without m.mu held. Best-effort like result persistence: a failed
// journal write costs crash-resumability, not correctness.
func (m *Manager) writeJournal(id string, body []byte) {
	if body == nil {
		return
	}
	if err := m.cfg.Store.PutSweep(id, body); err != nil {
		m.mx.storeErrors.Inc()
	}
}

// sweepHWM is the journal's high-water-mark record: the collapsed residue
// of every terminal sweep record this worker has retired. NextSeq keeps
// new sweep IDs collision-free with forgotten history; DoneKeys carries
// the completed grids' content keys (the dedupe memory) across restarts.
// The record lives under the worker-namespaced key "hwm" / "hwm-<id>",
// one per fleet member.
type sweepHWM struct {
	NextSeq  uint64            `json:"next_seq"`
	DoneKeys map[string]string `json:"done_keys,omitempty"` // grid content key -> sweep ID
}

// hwmCap bounds the dedupe memory persisted in the high-water-mark
// record; beyond it, arbitrary oldest entries are forgotten (a forgotten
// key just re-runs as an all-cached sweep — cells_cached == cells).
const hwmCap = 1024

// hwmKey is this worker's high-water-mark record ID.
func (m *Manager) hwmKey() string {
	if m.cfg.WorkerID != "" {
		return "hwm-" + m.cfg.WorkerID
	}
	return "hwm"
}

// ResumeSweeps replays the store's sweep journal: every sweep whose
// latest record is still "running" — submitted before a crash or an
// unclean shutdown and never finalised — is re-registered under its
// original ID and re-executed. Cells whose results were persisted before
// the crash are answered from the store without executing, so a resumed
// sweep runs only the missing cells and converges to the same
// byte-identical aggregate as an uninterrupted run with that seed and
// grid. Terminal journal records are collapsed into the high-water-mark
// record — their ID advances the sequence and their content key joins
// the dedupe memory, then the record itself is tombstoned — so restart
// scans stay O(active sweeps), not O(sweeps ever run). A record that
// refuses to resume (a server restarted with tighter limits, say) is
// registered as a cancelled sweep whose view carries the reason in
// resume_refused, and tombstoned in the journal so the failure does not
// replay on every start. Call once, after NewManager and before serving
// traffic; returns how many sweeps were resumed.
func (m *Manager) ResumeSweeps() (int, error) {
	if m.cfg.Store == nil {
		return 0, nil
	}
	infos, err := m.cfg.Store.Sweeps()
	if err != nil {
		return 0, err
	}
	resumed := 0
	var errs []error
	var collapse []string // terminal records to fold into the high-water mark
	for _, info := range infos {
		if strings.HasPrefix(info.ID, "hwm") {
			// Merge every fleet member's dedupe memory; only our own
			// record advances our sequence.
			m.loadHWM(info.Body, info.ID == m.hwmKey())
			continue
		}
		owned := m.reserveSweepID(info.ID)
		var entry sweepJournal
		if err := json.Unmarshal(info.Body, &entry); err != nil {
			errs = append(errs, fmt.Errorf("sweep %s: corrupt journal record: %w", info.ID, err))
			collapse = append(collapse, info.ID)
			continue
		}
		if entry.State != StateRunning {
			if entry.State == StateDone && entry.ContentKey != "" {
				m.mu.Lock()
				m.doneSweepKeys[entry.ContentKey] = info.ID
				m.mu.Unlock()
			}
			if owned {
				collapse = append(collapse, info.ID)
			}
			continue
		}
		if err := m.resumeSweep(info.ID, entry.Request); err != nil {
			errs = append(errs, fmt.Errorf("sweep %s: %w", info.ID, err))
			// A refusal is terminal: without a tombstone, every future
			// restart would re-expand and re-fail the same record
			// forever. Shutdown and double-resume are transient, not
			// refusals. The refused sweep stays queryable in memory as
			// cancelled, with the reason on the wire.
			if !errors.Is(err, ErrClosed) && !errors.Is(err, errSweepRegistered) {
				m.registerRefusedSweep(info.ID, entry.Request, err)
				m.tombstoneSweep(info.ID, entry.Request, err)
			}
			continue
		}
		resumed++
	}
	// The high-water mark hits disk before the terminal records are
	// deleted: a crash between the two leaves both, and the next restart
	// re-collapses idempotently.
	m.writeHWM()
	for _, id := range collapse {
		if err := m.cfg.Store.DeleteSweep(id); err != nil {
			m.mx.storeErrors.Inc()
		}
	}
	return resumed, errors.Join(errs...)
}

// loadHWM merges one high-water-mark record into the manager; seq
// reports whether the record is this worker's own (only then does
// NextSeq advance the sequence).
func (m *Manager) loadHWM(body json.RawMessage, seq bool) {
	var hwm sweepHWM
	if json.Unmarshal(body, &hwm) != nil {
		m.mx.storeErrors.Inc()
		return
	}
	m.mu.Lock()
	if seq && hwm.NextSeq > m.sweepSeq {
		m.sweepSeq = hwm.NextSeq
	}
	for ck, id := range hwm.DoneKeys {
		m.doneSweepKeys[ck] = id
	}
	m.mu.Unlock()
}

// writeHWM persists this worker's high-water-mark record. Best-effort
// like every store write.
func (m *Manager) writeHWM() {
	m.mu.Lock()
	hwm := sweepHWM{NextSeq: m.sweepSeq, DoneKeys: make(map[string]string, len(m.doneSweepKeys))}
	for ck, id := range m.doneSweepKeys {
		if len(hwm.DoneKeys) >= hwmCap {
			break
		}
		hwm.DoneKeys[ck] = id
	}
	m.mu.Unlock()
	body, err := json.Marshal(hwm)
	if err == nil {
		err = m.cfg.Store.PutSweep(m.hwmKey(), body)
	}
	if err != nil {
		m.mx.storeErrors.Inc()
	}
}

// registerRefusedSweep surfaces a journaled sweep that could not be
// resumed as a cancelled, cell-less sweep whose view records the reason
// — GET /v1/sweeps/{id} answers with resume_refused instead of a 404
// that silently swallows recorded history.
func (m *Manager) registerRefusedSweep(id string, req SweepRequest, cause error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.sweeps[id]; dup {
		return
	}
	now := time.Now()
	s := &sweep{
		id:            id,
		req:           req,
		state:         StateCancelled,
		created:       now,
		finished:      now,
		resumeRefused: cause.Error(),
		agg:           &SweepAggregate{},
	}
	m.sweeps[id] = s
	m.sweepOrder = append(m.sweepOrder, id)
	m.pruneSweepsLocked()
	// Born terminal: the topic's whole life is the refusal summary.
	view := m.sweepViewLocked(s, false)
	m.bus.Publish(sweepTopic(id), EventSweep, &view)
	m.bus.Close(sweepTopic(id))
}

// errSweepRegistered reports a resume of a sweep that is already live
// (ResumeSweeps called twice).
var errSweepRegistered = errors.New("already registered")

// tombstoneSweep journals a refused resume as cancelled, recording why,
// so the journal converges instead of replaying the failure on every
// start. Best-effort like every store write.
func (m *Manager) tombstoneSweep(id string, req SweepRequest, cause error) {
	body, err := json.Marshal(sweepJournal{ID: id, State: StateCancelled, Request: req, Error: cause.Error()})
	if err == nil {
		err = m.cfg.Store.PutSweep(id, body)
	}
	if err != nil {
		m.mx.storeErrors.Inc()
	}
}

// reserveSweepID advances the sweep sequence past a journaled ID so new
// sweeps never reuse stored history's names. Only IDs in this worker's
// namespace are parsed (a fleet peer's "sweep-other-000003" neither
// advances our sequence nor is ours to collapse); the return value
// reports ownership.
func (m *Manager) reserveSweepID(id string) (owned bool) {
	pattern := "sweep-%d"
	if m.cfg.WorkerID != "" {
		pattern = "sweep-" + m.cfg.WorkerID + "-%d"
	}
	var n uint64
	if _, err := fmt.Sscanf(id, pattern, &n); err != nil {
		return false
	}
	m.mu.Lock()
	if n >= m.sweepSeq {
		m.sweepSeq = n + 1
	}
	m.mu.Unlock()
	return true
}

// resumeSweep re-registers one journaled sweep under its original ID.
// The request is re-validated against the current limits: a server
// restarted with a tighter cap refuses the resume rather than running an
// inadmissible grid.
func (m *Manager) resumeSweep(id string, req SweepRequest) error {
	if req.Seed == 0 {
		return fmt.Errorf("journal record has no effective seed")
	}
	reqs, err := m.expandSweep(&req)
	if err != nil {
		return err
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return ErrClosed
	}
	if _, dup := m.sweeps[id]; dup {
		m.mu.Unlock()
		return errSweepRegistered
	}
	s := m.registerSweepLocked(id, req, reqs)
	entry := m.journalEntryLocked(s)
	m.mu.Unlock()
	m.startSweep(s, entry)
	return nil
}

// pruneSweepsLocked evicts the oldest finished sweeps beyond the retention
// cap; callers hold m.mu. Running sweeps are never evicted.
func (m *Manager) pruneSweepsLocked() {
	excess := len(m.sweepOrder) - m.cfg.Retention
	if excess <= 0 {
		return
	}
	kept := m.sweepOrder[:0]
	for _, id := range m.sweepOrder {
		s := m.sweeps[id]
		if excess > 0 && s.state != StateRunning {
			delete(m.sweeps, id)
			m.bus.Drop(sweepTopic(id))
			excess--
			continue
		}
		kept = append(kept, id)
	}
	m.sweepOrder = kept
}

// runSweep feeds the sweep's cells to the job pool, at most s.concurrency
// in flight, and finalises each cell as its child run finishes. Cells are
// fed in expansion order, so cells sharing a topology run back to back and
// reuse the pooled graph (concurrent first-misses on one key coalesce in
// the cache).
func (m *Manager) runSweep(s *sweep) {
	defer m.sweepWG.Done()
	sem := make(chan struct{}, s.concurrency)
	var watchers sync.WaitGroup
	for i := range s.cells {
		select {
		case sem <- struct{}{}:
		case <-s.ctx.Done():
		}
		if s.ctx.Err() != nil {
			break
		}
		j, err := m.scheduleCell(s, i)
		if err != nil {
			// Only shutdown or cancellation get here (queue pressure is
			// waited out); finalizeSweep cancels the unscheduled rest.
			<-sem
			break
		}
		watchers.Add(1)
		go func(i int, j *job) {
			defer watchers.Done()
			<-j.done
			m.finalizeCell(s, i, j)
			<-sem
		}(i, j)
	}
	watchers.Wait()
	m.finalizeSweep(s)
}

// scheduleCell enqueues one cell's child run, waiting out transient queue
// pressure. Cells whose content key is already in the result store come
// back as born-done jobs without touching the queue — on a resumed sweep
// that is every cell that finished before the crash; on a deduped
// re-submission, the whole grid. In fleet mode a store miss goes through
// the claim protocol first, so no two workers execute one cell
// concurrently. A non-transient failure records the cell as failed (or
// cancelled for shutdown) and is returned.
func (m *Manager) scheduleCell(s *sweep, i int) (*job, error) {
	// The store read happens before the lock, like Submit's.
	cached := m.lookupStored(s.cells[i].req)
	var fence uint64
	claimed := false
	if cached == nil && m.claimsEnabled() {
		claimed, fence, cached = m.claimCell(s, i)
	}
	for {
		m.mu.Lock()
		// Re-check cancellation under the lock: CancelSweep cancels the
		// jobs in s.jobs while holding m.mu, so a cell enqueued after a
		// cancel it did not see would escape it entirely.
		if s.cancelled || s.ctx.Err() != nil {
			m.markCellLocked(s, i, StateCancelled, "")
			m.mu.Unlock()
			return nil, context.Canceled
		}
		j, err := m.enqueueLocked(s.cells[i].req, s.id, cached)
		if err == nil {
			// The claim fields are set in the same critical section as the
			// enqueue: the worker that pops this job first takes m.mu, so
			// it always observes them.
			j.claimed, j.claimFence = claimed, fence
			if cached != nil {
				s.cellsCached++
				m.mx.cellsCached.Inc()
			}
			s.cells[i].jobID = j.id
			s.cells[i].state = StateQueued
			s.jobs[i] = j
			m.mu.Unlock()
			return j, nil
		}
		if !errors.Is(err, ErrQueueFull) {
			// Shutdown: the sweep was interrupted, so it must finalise as
			// cancelled, not report a partial grid as done.
			s.cancelled = true
			m.markCellLocked(s, i, StateCancelled, "")
			m.mu.Unlock()
			return nil, err
		}
		m.mu.Unlock()
		select {
		case <-time.After(2 * time.Millisecond):
		case <-s.ctx.Done():
			m.mu.Lock()
			m.markCellLocked(s, i, StateCancelled, "")
			m.mu.Unlock()
			return nil, s.ctx.Err()
		}
	}
}

// claimCell runs the fleet claim protocol for one cell: lease the cell's
// content key, or — when a peer holds it — poll until the peer's result
// lands (serve it cached) or its lease expires (take it over). Returns
// either a live claim (claimed, fence) or a cached result, or neither:
// cancellation and store errors fall back to unclaimed execution, which
// is always safe because results are first-write-wins. Called without
// m.mu held — every path does store I/O.
func (m *Manager) claimCell(s *sweep, i int) (claimed bool, fence uint64, cached *RunResult) {
	req := s.cells[i].req
	key := contentKey(req, req.Seed) // sweep cells always carry explicit seeds
	for {
		f, err := m.cfg.Store.Claim(key, m.cfg.WorkerID, m.cfg.LeaseTTL)
		switch {
		case err == nil:
			return true, f, nil
		case errors.Is(err, store.ErrResultExists):
			// A peer finished the cell between our lookup and the claim.
			return false, 0, m.lookupStored(req)
		case errors.Is(err, store.ErrClaimHeld):
			select {
			case <-time.After(m.cfg.LeasePoll):
			case <-s.ctx.Done():
				return false, 0, nil
			}
			if c := m.lookupStored(req); c != nil {
				return false, 0, c
			}
		default:
			// Store trouble never fails the sweep; execute unclaimed.
			m.mx.storeErrors.Inc()
			return false, 0, nil
		}
	}
}

// markCellLocked moves a cell to a terminal state and publishes the cell
// event on the sweep's topic; callers hold m.mu. Publication is retained:
// a watcher attaching later replays every cell exactly once from the
// topic's snapshot.
func (m *Manager) markCellLocked(s *sweep, i int, state, errMsg string) {
	c := &s.cells[i]
	c.state = state
	c.err = errMsg
	m.mx.sweepCellsFinished.Inc()
	cv := m.cellViewLocked(s, i)
	m.bus.Publish(sweepTopic(s.id), EventCell, &cv)
}

// finalizeCell copies the finished child run's outcome into the cell.
func (m *Manager) finalizeCell(s *sweep, i int, j *job) {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := &s.cells[i]
	errMsg := ""
	if j.err != nil {
		errMsg = j.err.Error()
	}
	if r := j.result; r != nil {
		c.tally = tallyReports(r.Reports)
		c.result = &CellResult{
			Trials:          r.Trials,
			RedWins:         r.RedWins,
			Consensus:       r.Consensus,
			MeanRounds:      r.MeanRounds,
			MaxRounds:       r.MaxRounds,
			PredictedRounds: r.PredictedRounds,
			Variant:         r.Variant,
			CacheHit:        r.CacheHit,
			ElapsedMS:       r.ElapsedMS,
		}
	}
	m.markCellLocked(s, i, j.state, errMsg)
}

// finalizeSweep marks the sweep terminal once the scheduler and every
// watcher have exited. Cells never handed to the pool become cancelled.
func (m *Manager) finalizeSweep(s *sweep) {
	m.mu.Lock()
	for i := range s.cells {
		if s.cells[i].state == StateCellPending {
			m.markCellLocked(s, i, StateCancelled, "")
		}
	}
	if s.cancelled || s.ctx.Err() != nil {
		s.state = StateCancelled
		m.mx.sweepsCancelled.Inc()
	} else {
		s.state = StateDone
		m.mx.sweepsCompleted.Inc()
		if s.contentKey != "" {
			// Remember the completed grid: a repeated POST of this content
			// key is answered entirely from the store, and the journal's
			// high-water-mark record carries the memory across restarts.
			m.doneSweepKeys[s.contentKey] = s.id
		}
	}
	s.finished = time.Now()
	s.cancel()
	// Journal the terminal state — except when shutdown interrupted a
	// sweep nobody cancelled: its record stays "running" so the next
	// server generation resumes it from the store.
	var entry []byte
	if s.state == StateDone || s.userCancelled {
		entry = m.journalEntryLocked(s)
	}
	// The aggregate is immutable from here on; memoise it so snapshot
	// reads of finished sweeps stop paying the O(cells) fold under m.mu.
	agg := m.foldAggregateLocked(s)
	s.agg = &agg
	// Only CancelSweep reads s.jobs, and it is a no-op on a terminal
	// sweep; dropping the references lets pruneLocked evictions actually
	// free the child jobs (and their per-trial reports).
	s.jobs = nil
	// The terminal summary is always the topic's last event; Close turns
	// attached watchers' streams into EOF once they drain it.
	view := m.sweepViewLocked(s, false)
	m.bus.Publish(sweepTopic(s.id), EventSweep, &view)
	m.bus.Close(sweepTopic(s.id))
	m.mu.Unlock()
	// The write happens before runSweep returns (and so before Close's
	// sweepWG wait can complete), off the manager lock like every other
	// store access.
	m.writeJournal(s.id, entry)
}

// GetSweep returns a full snapshot of the sweep, cells included.
func (m *Manager) GetSweep(id string) (SweepView, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.sweeps[id]
	if !ok {
		return SweepView{}, false
	}
	return m.sweepViewLocked(s, true), true
}

// GetSweepSummary is GetSweep without the per-cell views — for consumers
// that only need the state and aggregate, like the final stream event.
func (m *Manager) GetSweepSummary(id string) (SweepView, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.sweeps[id]
	if !ok {
		return SweepView{}, false
	}
	return m.sweepViewLocked(s, false), true
}

// ListSweeps returns snapshots of the most recent sweeps, newest first and
// without cells, up to max (0 = 100).
func (m *Manager) ListSweeps(max int) []SweepView {
	if max <= 0 {
		max = 100
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]SweepView, 0, min(max, len(m.sweepOrder)))
	for i := len(m.sweepOrder) - 1; i >= 0 && len(out) < max; i-- {
		out = append(out, m.sweepViewLocked(m.sweeps[m.sweepOrder[i]], false))
	}
	return out
}

// CancelSweep stops scheduling new cells and cancels the sweep's queued
// and running children. It returns the post-cancel snapshot, or ok = false
// for an unknown ID; cancelling a finished sweep is a no-op.
func (m *Manager) CancelSweep(id string) (SweepView, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.sweeps[id]
	if !ok {
		return SweepView{}, false
	}
	if s.state == StateRunning && !s.cancelled {
		s.cancelled = true
		s.userCancelled = true
		s.cancel()
		for _, j := range s.jobs {
			if j != nil {
				m.cancelJobLocked(j)
			}
		}
	}
	return m.sweepViewLocked(s, true), true
}

// cellViewLocked snapshots one cell; callers hold m.mu. Until
// finalizeCell records the terminal state, the live child job is the
// source of truth, so an executing cell shows "running" rather than the
// stale "queued" set at scheduling time.
func (m *Manager) cellViewLocked(s *sweep, i int) SweepCellView {
	c := &s.cells[i]
	v := SweepCellView{
		Index:   i,
		JobID:   c.jobID,
		State:   c.state,
		Request: c.req,
		Error:   c.err,
	}
	if v.State == StateQueued && s.jobs != nil && s.jobs[i] != nil && s.jobs[i].state == StateRunning {
		v.State = StateRunning
	}
	if c.result != nil {
		r := *c.result
		v.Result = &r
	}
	return v
}

// sweepViewLocked snapshots a sweep; callers hold m.mu.
func (m *Manager) sweepViewLocked(s *sweep, includeCells bool) SweepView {
	v := SweepView{
		ID:            s.id,
		State:         s.state,
		Request:       s.req,
		Aggregate:     m.aggregateLocked(s),
		CellsCached:   s.cellsCached,
		ContentKey:    s.contentKey,
		Deduped:       s.deduped,
		ResumeRefused: s.resumeRefused,
		Created:       s.created,
	}
	if !s.finished.IsZero() {
		t := s.finished
		v.Finished = &t
	}
	if includeCells {
		v.Cells = make([]SweepCellView, len(s.cells))
		for i := range s.cells {
			v.Cells[i] = m.cellViewLocked(s, i)
		}
	}
	return v
}

// aggregateLocked returns the sweep aggregate, memoised for terminal
// sweeps; callers hold m.mu.
func (m *Manager) aggregateLocked(s *sweep) SweepAggregate {
	if s.agg != nil {
		return *s.agg
	}
	return m.foldAggregateLocked(s)
}

// foldAggregateLocked folds the cells into the sweep aggregate; callers
// hold m.mu. Iteration is in cell-index order and every tally field is
// order-independent, so the aggregate is deterministic for a given seed
// even though cells finish in scheduling order.
func (m *Manager) foldAggregateLocked(s *sweep) SweepAggregate {
	agg := SweepAggregate{Cells: len(s.cells)}
	var tl sim.Tally
	for i := range s.cells {
		switch s.cells[i].state {
		case StateDone:
			agg.Done++
			tl.Merge(s.cells[i].tally)
		case StateFailed:
			agg.Failed++
		case StateCancelled:
			agg.Cancelled++
		default:
			agg.Pending++
		}
	}
	agg.Trials = tl.Trials
	agg.RedWins = tl.Wins
	agg.Consensus = tl.Consensus
	agg.MeanRounds = tl.MeanRounds()
	agg.MaxRounds = tl.MaxRounds
	if tl.Trials > 0 {
		w := stats.WilsonInterval(tl.Wins, tl.Trials, 1.96)
		agg.RedWinRate, agg.RedWinLo, agg.RedWinHi = w.P, w.Lo, w.Hi
		c := stats.WilsonInterval(tl.Consensus, tl.Trials, 1.96)
		agg.ConsensusRate, agg.ConsensusLo, agg.ConsensusHi = c.P, c.Lo, c.Hi
	}
	return agg
}
